/**
 * @file
 * Counter-driven scheduling (the paper's motivation from Torres et
 * al.): use K-LEB's online MPKI classification to decide container
 * placement, then measure the consequence of a good vs. bad
 * placement on the simulated machine.
 *
 * Phase 1 characterizes four containers with short probe runs.
 * Phase 2 runs them pairwise on two cores under two policies:
 *   - counter-guided: each core gets one memory-intensive and one
 *     computation-intensive container;
 *   - naive: both memory-intensive containers share a core.
 * The shared LLC makes the naive placement slower: the two
 * memory-hungry processes interleave on one core and thrash each
 * other's (and the machine's) cache state.
 */

#include <cstdio>
#include <vector>

#include "kernel/system.hh"
#include "kleb/session.hh"
#include "stats/time_series.hh"
#include "workload/docker.hh"

using namespace klebsim;
using namespace klebsim::ticks_literals;

namespace
{

constexpr std::uint64_t probeInstructions = 60000000;
constexpr std::uint64_t runInstructions = 250000000;

double
probeMpki(const std::string &image)
{
    kernel::System sys;
    workload::DockerImageSpec spec = workload::dockerImage(image);
    spec.instructions = probeInstructions;
    auto wl = workload::makeDockerWorkload(spec, 0x200000000ULL,
                                           sys.forkRng(5));
    kernel::Process *p =
        sys.kernel().createWorkload(image, wl.get(), 0);

    kleb::Session::Options opts;
    opts.events = {hw::HwEvent::instRetired, hw::HwEvent::llcMiss};
    opts.period = 500_us;
    opts.controllerCore = 1;
    kleb::Session session(sys, opts);
    session.monitor(p);
    sys.run();
    hw::EventVector totals = session.finalTotals();
    return stats::mpki(
        static_cast<double>(at(totals, hw::HwEvent::llcMiss)),
        static_cast<double>(at(totals, hw::HwEvent::instRetired)));
}

/** Run 4 images with a given core assignment; return makespan. */
double
runPlacement(const std::vector<std::string> &images,
             const std::vector<CoreId> &cores)
{
    kernel::System sys;
    std::vector<std::unique_ptr<workload::PhaseWorkload>> wls;
    std::vector<kernel::Process *> procs;
    for (std::size_t i = 0; i < images.size(); ++i) {
        workload::DockerImageSpec spec =
            workload::dockerImage(images[i]);
        spec.instructions = runInstructions;
        wls.push_back(workload::makeDockerWorkload(
            spec, 0x200000000ULL + (static_cast<Addr>(i) << 32),
            sys.forkRng(40 + i)));
        procs.push_back(sys.kernel().createWorkload(
            images[i], wls.back().get(), cores[i]));
    }
    for (kernel::Process *p : procs)
        sys.kernel().startProcess(p);
    sys.run();
    Tick makespan = 0;
    for (kernel::Process *p : procs)
        makespan = std::max(makespan, p->exitTick());
    return ticksToMs(makespan);
}

} // namespace

int
main()
{
    const std::vector<std::string> images = {"tomcat", "apache",
                                             "golang", "ruby"};

    std::printf("phase 1: online characterization (K-LEB probe "
                "runs)\n");
    std::vector<std::pair<std::string, double>> mpki;
    for (const auto &image : images) {
        double m = probeMpki(image);
        mpki.emplace_back(image, m);
        std::printf("  %-8s MPKI %6.2f -> %s\n", image.c_str(), m,
                    m > workload::memoryIntensiveMpki
                        ? "memory-intensive"
                        : "computation-intensive");
    }

    std::printf("\nphase 2: placement comparison on 2 cores\n");
    // Counter-guided: split the memory-intensive pair across cores.
    double guided = runPlacement(images, {0, 1, 0, 1});
    // Naive: both memory-intensive containers on core 0.
    double naive = runPlacement(images, {0, 0, 1, 1});

    std::printf("  counter-guided placement  (tomcat+golang | "
                "apache+ruby): %8.2f ms\n",
                guided);
    std::printf("  naive placement           (tomcat+apache | "
                "golang+ruby): %8.2f ms\n",
                naive);
    std::printf("\nguided placement improves makespan by %.1f%% — "
                "the decision K-LEB's low-overhead online data "
                "enables.\n",
                (naive - guided) / naive * 100.0);
    return 0;
}
