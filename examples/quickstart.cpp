/**
 * @file
 * Quickstart: monitor a program with K-LEB and read its counter
 * time series.
 *
 * This is the 60-second tour of the public API:
 *   1. build a simulated machine (kernel::System);
 *   2. create the workload process;
 *   3. open a kleb::Session (loads the module, spawns the
 *      controller) and monitor() the process;
 *   4. run the simulation and read the sampled series.
 */

#include <cstdio>

#include "kernel/system.hh"
#include "kleb/session.hh"
#include "workload/matmul.hh"

using namespace klebsim;
using namespace klebsim::ticks_literals;

int
main()
{
    // 1. A simulated Intel i7-920 machine (4 cores, 8 MB LLC).
    kernel::System sys;

    // 2. A workload: n=400 naive matrix multiply (~150 ms).
    auto matmul = workload::makeMatMulLoop({400}, 0x100000000ULL,
                                           sys.forkRng(1));
    kernel::Process *proc =
        sys.kernel().createWorkload("matmul", matmul.get(), 0);

    // 3. Monitor it: 4 events, 100 us sampling — 100x faster than
    //    perf's user-space timer floor.
    kleb::Session::Options opts;
    opts.events = {hw::HwEvent::instRetired,
                   hw::HwEvent::llcReference, hw::HwEvent::llcMiss,
                   hw::HwEvent::branchRetired};
    opts.period = 100_us;
    kleb::Session session(sys, opts);
    session.monitor(proc); // starts proc under monitoring

    // 4. Run to completion and inspect the results.
    sys.run();

    std::printf("workload ran %.2f ms, %zu samples collected\n",
                ticksToMs(proc->lifetime()),
                session.samples().size());

    hw::EventVector totals = session.finalTotals();
    std::printf("totals: %lu instructions, %lu LLC refs, %lu LLC "
                "misses, %lu branches\n",
                at(totals, hw::HwEvent::instRetired),
                at(totals, hw::HwEvent::llcReference),
                at(totals, hw::HwEvent::llcMiss),
                at(totals, hw::HwEvent::branchRetired));

    // Per-interval deltas, e.g. the first few samples:
    stats::TimeSeries deltas = session.deltaSeries();
    std::printf("\nfirst samples (per-100us deltas):\n");
    std::printf("%10s %12s %10s %10s\n", "t (us)", "inst",
                "llc_ref", "llc_miss");
    for (std::size_t i = 0; i < std::min<std::size_t>(8,
                                                      deltas.size());
         ++i) {
        std::printf("%10.0f %12.0f %10.0f %10.0f\n",
                    ticksToUs(deltas.timeAt(i)),
                    deltas.valueAt(i, 0), deltas.valueAt(i, 1),
                    deltas.valueAt(i, 2));
    }

    kleb::KLebStatus st = session.status();
    std::printf("\nmodule status: %lu samples recorded, %lu "
                "dropped, %lu buffer pauses\n",
                st.samplesRecorded, st.samplesDropped,
                st.pauseEpisodes);
    return 0;
}
