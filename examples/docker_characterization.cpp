/**
 * @file
 * Docker workload characterization (paper case study IV-B).
 *
 * Launches each catalog image as a real container (containerd-shim
 * parent + entrypoint child), monitors the *shim* PID with
 * descendant tracing, and classifies the image by LLC MPKI — then
 * prints the co-location advice the paper derives from it: pair a
 * computation-intensive container with a memory-intensive one on
 * the same core, never two memory-intensive ones.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "kernel/system.hh"
#include "kleb/session.hh"
#include "stats/time_series.hh"
#include "workload/docker.hh"

using namespace klebsim;
using namespace klebsim::ticks_literals;

namespace
{

struct Result
{
    std::string name;
    double mpki;
    bool memoryIntensive;
};

Result
characterize(const std::string &image)
{
    kernel::System sys;
    workload::DockerImageSpec spec = workload::dockerImage(image);
    spec.instructions = 120000000; // short characterization burst

    auto container = workload::launchContainer(
        sys.kernel(), spec, 0, 0x200000000ULL, sys.forkRng(17));

    kleb::Session::Options opts;
    opts.events = {hw::HwEvent::instRetired, hw::HwEvent::llcMiss};
    opts.period = 1_ms;
    opts.controllerCore = 1;
    kleb::Session session(sys, opts);
    session.monitor(container->shim, false);
    sys.run();

    hw::EventVector totals = session.finalTotals();
    double mpki = stats::mpki(
        static_cast<double>(at(totals, hw::HwEvent::llcMiss)),
        static_cast<double>(at(totals, hw::HwEvent::instRetired)));
    return {image, mpki, mpki > workload::memoryIntensiveMpki};
}

} // namespace

int
main()
{
    std::printf("characterizing docker images via K-LEB "
                "(shim-PID monitoring, children traced)...\n\n");

    std::vector<Result> results;
    for (const auto &spec : workload::dockerCatalog())
        results.push_back(characterize(spec.name));

    std::printf("%-10s %8s  %s\n", "image", "MPKI", "class");
    for (const Result &r : results) {
        std::printf("%-10s %8.2f  %s\n", r.name.c_str(), r.mpki,
                    r.memoryIntensive ? "memory-intensive"
                                      : "computation-intensive");
    }

    // Scheduler advice (Torres et al. / Arteaga et al.): pair
    // opposite classes per core.
    std::vector<Result> mem, cpu;
    for (const Result &r : results)
        (r.memoryIntensive ? mem : cpu).push_back(r);
    std::sort(mem.begin(), mem.end(),
              [](auto &a, auto &b) { return a.mpki > b.mpki; });
    std::sort(cpu.begin(), cpu.end(),
              [](auto &a, auto &b) { return a.mpki < b.mpki; });

    std::printf("\nsuggested co-location (compute paired with "
                "memory-intensive):\n");
    std::size_t pairs = std::max(mem.size(), cpu.size());
    for (std::size_t i = 0; i < pairs; ++i) {
        const char *a = i < mem.size() ? mem[i].name.c_str() : "-";
        const char *b = i < cpu.size() ? cpu[i].name.c_str() : "-";
        std::printf("  core %zu: %s + %s\n", i, a, b);
    }
    std::printf("\navoid: scheduling two memory-intensive "
                "containers (e.g. %s + %s) on one core.\n",
                mem.size() > 0 ? mem[0].name.c_str() : "-",
                mem.size() > 1 ? mem[1].name.c_str() : "-");
    return 0;
}
