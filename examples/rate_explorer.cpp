/**
 * @file
 * Sampling-rate selection under an overhead budget.
 *
 * The paper's closing advice: "it is up to the users to determine
 * at what level they want to monitor, given the trade-off between
 * overhead and the granularity of samples."  This example automates
 * that choice: given an overhead budget, it probes a short run of
 * the target workload at several periods and recommends the finest
 * rate that fits the budget.
 */

#include <cstdio>
#include <vector>

#include "kernel/system.hh"
#include "kleb/session.hh"
#include "workload/matmul.hh"

using namespace klebsim;
using namespace klebsim::ticks_literals;

namespace
{

double
probeOverhead(Tick period)
{
    auto run = [&](bool monitored) {
        kernel::System sys(hw::MachineConfig::corei7_920(), 51);
        auto wl = workload::makeMatMulLoop({320}, 0x100000000ULL,
                                           sys.forkRng(7));
        kernel::Process *p =
            sys.kernel().createWorkload("probe", wl.get(), 0);
        std::unique_ptr<kleb::Session> session;
        if (monitored) {
            kleb::Session::Options opts;
            opts.events = {hw::HwEvent::instRetired,
                           hw::HwEvent::llcMiss};
            opts.period = period;
            session = std::make_unique<kleb::Session>(sys, opts);
            session->monitor(p);
        } else {
            sys.kernel().startProcess(p);
        }
        sys.run();
        return ticksToSec(p->exitTick());
    };
    double base = run(false);
    double mon = run(true);
    return (mon - base) / base * 100.0;
}

} // namespace

int
main(int argc, char **argv)
{
    double budget_pct = argc > 1 ? std::atof(argv[1]) : 2.0;
    std::printf("overhead budget: %.2f%%\n\n", budget_pct);

    const std::vector<Tick> periods = {
        usToTicks(25),  usToTicks(50),  usToTicks(100),
        usToTicks(250), usToTicks(500), msToTicks(1),
        msToTicks(10)};

    std::printf("%12s %14s %10s\n", "period", "overhead (%)",
                "fits?");
    Tick best = 0;
    double best_overhead = 0;
    for (Tick period : periods) {
        double overhead = probeOverhead(period);
        bool fits = overhead <= budget_pct;
        std::printf("%9.0f us %14.3f %10s\n", ticksToUs(period),
                    overhead, fits ? "yes" : "no");
        if (fits && best == 0) { // periods listed finest-first
            best = period;
            best_overhead = overhead;
        }
    }

    if (best) {
        std::printf("\nrecommended: sample every %.0f us "
                    "(measured %.2f%% <= %.2f%% budget)\n",
                    ticksToUs(best), best_overhead, budget_pct);
        std::printf("that is %.0fx finer than perf stat's 10 ms "
                    "floor.\n",
                    static_cast<double>(msToTicks(10)) /
                        static_cast<double>(best));
    } else {
        std::printf("\nno probed rate fits the budget; coarsen "
                    "beyond 10 ms or relax the budget.\n");
    }
    return 0;
}
