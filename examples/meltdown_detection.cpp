/**
 * @file
 * Online Meltdown detection from 100 us counter streams (paper
 * case study IV-C; the paper notes K-LEB's series "gives it the
 * potential to be used for hardware event based anomaly
 * detection" — this example builds that detector).
 *
 * A baseline run of the clean program calibrates a per-interval
 * MPKI threshold; the detector then flags any run whose stream
 * crosses it for several consecutive samples, reporting detection
 * latency from attack onset.  A 10 ms tool cannot do this: the
 * clean program finishes inside one of its intervals.
 */

#include <cstdio>
#include <vector>

#include "kernel/system.hh"
#include "kleb/session.hh"
#include "stats/time_series.hh"
#include "workload/meltdown.hh"

using namespace klebsim;
using namespace klebsim::ticks_literals;

namespace
{

struct Stream
{
    std::vector<double> mpki;
    std::vector<Tick> when;
    Tick lifetime;
    std::string recovered;
};

Stream
capture(bool with_attack, std::uint64_t seed)
{
    kernel::System sys(hw::MachineConfig::corei7_920(), seed);
    std::unique_ptr<workload::PhaseWorkload> printer;
    std::unique_ptr<workload::MeltdownWorkload> attack;
    hw::WorkSource *src;
    if (with_attack) {
        workload::MeltdownParams params;
        params.retriesPerByte = 80;
        attack = std::make_unique<workload::MeltdownWorkload>(
            params, 0x300000000ULL, sys.forkRng(3));
        src = attack.get();
    } else {
        printer = workload::makeSecretPrinter(0x300000000ULL,
                                              sys.forkRng(3));
        src = printer.get();
    }
    kernel::Process *proc =
        sys.kernel().createWorkload("victim", src, 0);

    kleb::Session::Options opts;
    opts.events = {hw::HwEvent::instRetired, hw::HwEvent::llcMiss};
    opts.period = 100_us;
    opts.controllerCore = 1;
    kleb::Session session(sys, opts);
    session.monitor(proc);
    sys.run();

    Stream out;
    stats::TimeSeries deltas = session.deltaSeries();
    auto inst = deltas.channel(0);
    auto miss = deltas.channel(1);
    for (std::size_t i = 0; i < deltas.size(); ++i) {
        out.mpki.push_back(
            stats::mpki(miss[i], std::max(inst[i], 1.0)));
        out.when.push_back(deltas.timeAt(i));
    }
    out.lifetime = proc->lifetime();
    if (attack)
        out.recovered = attack->recoveredSecret();
    return out;
}

/** Flag when `consecutive` samples exceed the threshold. */
int
detect(const Stream &s, double threshold, int consecutive)
{
    int streak = 0;
    for (std::size_t i = 0; i < s.mpki.size(); ++i) {
        streak = s.mpki[i] > threshold ? streak + 1 : 0;
        if (streak >= consecutive)
            return static_cast<int>(i) - consecutive + 1;
    }
    return -1;
}

} // namespace

int
main()
{
    // Calibrate on clean runs: threshold = 3x the worst clean
    // interval average.
    std::printf("calibrating on clean runs...\n");
    double clean_peak_avg = 0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        Stream s = capture(false, seed);
        double avg = 0;
        for (double v : s.mpki)
            avg += v;
        avg /= std::max<std::size_t>(s.mpki.size(), 1);
        clean_peak_avg = std::max(clean_peak_avg, avg);
    }
    double threshold = 3.0 * clean_peak_avg;
    std::printf("clean average MPKI ~%.1f -> threshold %.1f\n\n",
                clean_peak_avg, threshold);

    // Detector on clean runs: must stay silent.
    int false_positives = 0;
    for (std::uint64_t seed = 10; seed < 15; ++seed) {
        Stream s = capture(false, seed);
        if (detect(s, threshold, 3) >= 0)
            ++false_positives;
    }
    std::printf("clean runs flagged: %d / 5\n", false_positives);

    // Detector on attacked runs: must fire, early.
    int detected = 0;
    double latency_ms = 0;
    std::string recovered;
    for (std::uint64_t seed = 20; seed < 25; ++seed) {
        Stream s = capture(true, seed);
        int at = detect(s, threshold, 3);
        if (at >= 0) {
            ++detected;
            latency_ms += ticksToMs(s.when[
                              static_cast<std::size_t>(at)] -
                          s.when[0]);
        }
        recovered = s.recovered;
    }
    std::printf("attacked runs flagged: %d / 5", detected);
    if (detected)
        std::printf(" (mean flag time %.2f ms into the run)",
                    latency_ms / detected);
    std::printf("\n\n");
    std::printf("for reference, the attack did succeed each run: "
                "it exfiltrated \"%s\"\n",
                recovered.c_str());
    std::printf("a 10 ms-floor tool sees %s samples of the clean "
                "%0.1f ms program — no stream to detect on.\n",
                "0-1", ticksToMs(capture(false, 1).lifetime));
    return 0;
}
