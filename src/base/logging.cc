#include "logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace klebsim
{

namespace
{

// Parallel bench trials flip and read this concurrently, so it must
// be atomic; relaxed is enough (it only gates output, it never
// orders data).
std::atomic<bool> quietFlag{false};

/**
 * Emit one fully-formatted message as a single stdio call.
 * Concurrent trials may log at the same time; one write per message
 * keeps lines from interleaving mid-record (stdio locks the stream
 * per call, not per message).
 */
void
emit(std::FILE *stream, const std::string &line)
{
    std::fputs(line.c_str(), stream);
}

} // anonymous namespace

void
setLoggingQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
loggingQuiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

namespace logging_detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    emit(stderr, "panic: " + msg + "\n  @ " + file + ":" +
                     std::to_string(line) + "\n");
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    emit(stderr, "fatal: " + msg + "\n  @ " + file + ":" +
                     std::to_string(line) + "\n");
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    if (loggingQuiet())
        return;
    emit(stderr, "warn: " + msg + " (" + file + ":" +
                     std::to_string(line) + ")\n");
}

void
informImpl(const std::string &msg)
{
    if (loggingQuiet())
        return;
    emit(stdout, "info: " + msg + "\n");
}

} // namespace logging_detail

} // namespace klebsim
