#include "logging.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace klebsim
{

namespace
{

bool quietFlag = false;

} // anonymous namespace

void
setLoggingQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
loggingQuiet()
{
    return quietFlag;
}

namespace logging_detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  @ %s:%d\n", msg.c_str(), file,
                 line);
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  @ %s:%d\n", msg.c_str(), file,
                 line);
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    if (quietFlag)
        return;
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

void
informImpl(const std::string &msg)
{
    if (quietFlag)
        return;
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace logging_detail

} // namespace klebsim
