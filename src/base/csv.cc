#include "csv.hh"

#include "str.hh"

namespace klebsim
{

CsvWriter::CsvWriter(std::ostream &os) : os_(os), rows_(0)
{
}

std::string
CsvWriter::escape(const std::string &cell)
{
    bool needs_quote = cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quote)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
CsvWriter::header(const std::vector<std::string> &cols)
{
    std::vector<std::string> escaped;
    escaped.reserve(cols.size());
    for (const auto &c : cols)
        escaped.push_back(escape(c));
    os_ << join(escaped, ",") << '\n';
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    std::vector<std::string> escaped;
    escaped.reserve(cells.size());
    for (const auto &c : cells)
        escaped.push_back(escape(c));
    os_ << join(escaped, ",") << '\n';
    ++rows_;
}

void
CsvWriter::rowNumeric(const std::string &label,
                      const std::vector<double> &values, int digits)
{
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(label);
    for (double v : values)
        cells.push_back(toFixed(v, digits));
    row(cells);
}

} // namespace klebsim
