/**
 * @file
 * Error and status reporting, modeled after gem5's logging.hh.
 *
 * panic()  - an internal invariant was violated (simulator bug);
 *            aborts so a debugger or core dump can catch it.
 * fatal()  - the user asked for something impossible (bad config);
 *            exits with status 1.
 * warn() / inform() - status messages, never stop the simulation.
 */

#ifndef KLEBSIM_BASE_LOGGING_HH
#define KLEBSIM_BASE_LOGGING_HH

#include <sstream>
#include <string>

namespace klebsim
{

namespace logging_detail
{

/** Concatenate a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);
void informImpl(const std::string &msg);

} // namespace logging_detail

/**
 * Set to true (e.g. in tests) to silence warn()/inform() output.
 * Thread-safe: parallel bench trials may log while another thread
 * flips the flag, and every message is emitted as one stream write
 * so concurrent trials cannot interleave lines.
 */
void setLoggingQuiet(bool quiet);

/** @return true if warn()/inform() output is currently suppressed. */
bool loggingQuiet();

} // namespace klebsim

/** Abort on a simulator bug. Arguments are streamed into the message. */
#define panic(...)                                                        \
    ::klebsim::logging_detail::panicImpl(                                 \
        __FILE__, __LINE__, ::klebsim::logging_detail::concat(__VA_ARGS__))

/** Exit(1) on a user/configuration error. */
#define fatal(...)                                                        \
    ::klebsim::logging_detail::fatalImpl(                                 \
        __FILE__, __LINE__, ::klebsim::logging_detail::concat(__VA_ARGS__))

/** panic() if the condition holds. */
#define panic_if(cond, ...)                                               \
    do {                                                                  \
        if (cond)                                                         \
            panic("condition '" #cond "' hit: ", __VA_ARGS__);            \
    } while (0)

/** fatal() if the condition holds. */
#define fatal_if(cond, ...)                                               \
    do {                                                                  \
        if (cond)                                                         \
            fatal(__VA_ARGS__);                                           \
    } while (0)

/** Non-fatal warning to stderr. */
#define warn(...)                                                         \
    ::klebsim::logging_detail::warnImpl(                                  \
        __FILE__, __LINE__, ::klebsim::logging_detail::concat(__VA_ARGS__))

/** Informational message to stdout. */
#define inform(...)                                                       \
    ::klebsim::logging_detail::informImpl(                                \
        ::klebsim::logging_detail::concat(__VA_ARGS__))

#endif // KLEBSIM_BASE_LOGGING_HH
