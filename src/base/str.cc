#include "str.hh"

#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace klebsim
{

std::string
csprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args2;
    va_copy(args2, args);
    int n = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<std::size_t>(n) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, args2);
        out.resize(static_cast<std::size_t>(n));
    }
    va_end(args2);
    return out;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
toFixed(double v, int digits)
{
    return csprintf("%.*f", digits, v);
}

std::string
padLeft(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return s + std::string(width - s.size(), ' ');
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::string cur;
    std::istringstream is(s);
    while (std::getline(is, cur, delim))
        out.push_back(cur);
    return out;
}

} // namespace klebsim
