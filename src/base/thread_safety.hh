/**
 * @file
 * Thread-safety annotations and instrumentation hooks.
 *
 * Every ROADMAP scale item (per-CPU K-LEB sessions, fleet-scale
 * collection, machine-level parallel execution) threads simulation
 * state that today is only exercised single-threaded outside
 * bench::TrialPool.  This header is the machine-checked contract
 * that lets that happen safely, in three layers:
 *
 *  1. **Static annotations** — KLEB_GUARDED_BY / KLEB_REQUIRES /
 *     KLEB_EXCLUDES / KLEB_ACQUIRE / KLEB_RELEASE expand to Clang
 *     thread-safety-analysis attributes under clang (the CI
 *     `thread-safety` job builds with -Wthread-safety -Werror) and
 *     to nothing under other compilers.
 *
 *  2. **TrackedMutex / TrackedLock** — a std::mutex wrapper that is
 *     (a) an annotated capability the static analysis understands
 *     and (b) registered with the runtime lockset checker, so the
 *     same lock discipline is checked both at compile time and
 *     under test.  Direct .lock()/.unlock() calls are banned by the
 *     `mutex-raii` lint rule; use TrackedLock (or std::lock_guard
 *     over a plain std::mutex where no annotation is needed).
 *
 *  3. **Access hooks** — KLEB_ANNOTATE_ACCESS/KLEB_ANNOTATE_READ
 *     mark shared-state touch points (EventQueue mutation, DurableLog
 *     appends, TrialPool result slots, ...).  They are zero-cost
 *     when off, like the fault hooks: a relaxed global-pointer null
 *     check guards every call, and no sink is installed outside
 *     tests/CI.  analysis::LocksetChecker installs itself as the
 *     sink and runs the Eraser lockset algorithm over the stream of
 *     lock/unlock/access events (DESIGN.md section 13).
 *
 * KLEB_HOT additionally marks allocation-free hot functions: the
 * `hot-alloc` lint rule rejects new/make_unique/make_shared and
 * vector growth inside a KLEB_HOT body.
 */

#ifndef KLEBSIM_BASE_THREAD_SAFETY_HH
#define KLEBSIM_BASE_THREAD_SAFETY_HH

#include <atomic>
#include <cstdint>
#include <mutex>

#if defined(__clang__)
#define KLEB_TSA(x) __attribute__((x))
#else
#define KLEB_TSA(x)
#endif

/** The annotated type is a lockable capability ("mutex"). */
#define KLEB_CAPABILITY(x) KLEB_TSA(capability(x))

/** RAII type that acquires in its ctor and releases in its dtor. */
#define KLEB_SCOPED_CAPABILITY KLEB_TSA(scoped_lockable)

/** Field may only be touched while holding @p x. */
#define KLEB_GUARDED_BY(x) KLEB_TSA(guarded_by(x))

/** Pointed-to data may only be touched while holding @p x. */
#define KLEB_PT_GUARDED_BY(x) KLEB_TSA(pt_guarded_by(x))

/** Caller must hold the named capabilities. */
#define KLEB_REQUIRES(...) KLEB_TSA(requires_capability(__VA_ARGS__))

/** Caller must NOT hold the named capabilities. */
#define KLEB_EXCLUDES(...) KLEB_TSA(locks_excluded(__VA_ARGS__))

/** Function acquires the named capabilities. */
#define KLEB_ACQUIRE(...) KLEB_TSA(acquire_capability(__VA_ARGS__))

/** Function releases the named capabilities. */
#define KLEB_RELEASE(...) KLEB_TSA(release_capability(__VA_ARGS__))

/** Function acquires on a @p ret return value. */
#define KLEB_TRY_ACQUIRE(ret, ...) \
    KLEB_TSA(try_acquire_capability(ret, __VA_ARGS__))

/** Opt a function out of the static analysis (justify nearby). */
#define KLEB_NO_TSA KLEB_TSA(no_thread_safety_analysis)

/**
 * Marks a function body as an allocation-free hot path: the
 * `hot-alloc` lint rule bans new/make_unique/make_shared and
 * vector-growth calls inside it.  Applied at the definition, where
 * the body lives.
 */
#define KLEB_HOT __attribute__((hot))

namespace klebsim
{

/**
 * Receiver for lock/unlock/access events from TrackedMutex and the
 * KLEB_ANNOTATE_* hooks.  At most one sink is installed at a time
 * (analysis::LocksetChecker in tests); callbacks may arrive
 * concurrently from any thread.
 */
class ThreadSafetySink
{
  public:
    virtual ~ThreadSafetySink();

    /** @p id acquired by the calling thread. */
    virtual void onLock(std::uint32_t id, const char *name) = 0;

    /** @p id released by the calling thread. */
    virtual void onUnlock(std::uint32_t id, const char *name) = 0;

    /** Shared location @p addr touched at annotation site @p site. */
    virtual void onAccess(const void *addr, const char *site,
                          bool write) = 0;
};

namespace detail
{
/** The installed sink; null (hooks disabled) outside tests. */
inline std::atomic<ThreadSafetySink *> tsSink{nullptr};

/** Monotonic TrackedMutex id source (0 is never assigned). */
inline std::atomic<std::uint32_t> tsNextMutexId{0};
} // namespace detail

inline ThreadSafetySink *
threadSafetySink()
{
    // Acquire pairs with the release in setThreadSafetySink so a
    // sink installed before worker threads spawn is fully visible
    // to them.
    return detail::tsSink.load(std::memory_order_acquire);
}

/** Install (or, with null, remove) the global sink. */
inline void
setThreadSafetySink(ThreadSafetySink *sink)
{
    detail::tsSink.store(sink, std::memory_order_release);
}

/**
 * A std::mutex that is both a clang-TSA capability and a
 * lockset-checker-registered lock.  Lock it with TrackedLock; the
 * `mutex-raii` lint rule bans bare .lock()/.unlock() calls
 * everywhere except this header's own implementation.
 */
class KLEB_CAPABILITY("mutex") TrackedMutex
{
  public:
    explicit TrackedMutex(const char *name = "mutex")
        : id_(detail::tsNextMutexId.fetch_add(
                  1, std::memory_order_relaxed) +
              1),
          name_(name)
    {
    }

    TrackedMutex(const TrackedMutex &) = delete;
    TrackedMutex &operator=(const TrackedMutex &) = delete;

    void
    lock() KLEB_ACQUIRE()
    {
        m_.lock();
        if (ThreadSafetySink *sink = threadSafetySink())
            sink->onLock(id_, name_);
    }

    void
    unlock() KLEB_RELEASE()
    {
        if (ThreadSafetySink *sink = threadSafetySink())
            sink->onUnlock(id_, name_);
        m_.unlock();
    }

    std::uint32_t id() const { return id_; }
    const char *name() const { return name_; }

  private:
    std::mutex m_;
    const std::uint32_t id_;
    const char *name_;
};

/** Scoped TrackedMutex holder (the only sanctioned way to lock). */
class KLEB_SCOPED_CAPABILITY TrackedLock
{
  public:
    explicit TrackedLock(TrackedMutex &m) KLEB_ACQUIRE(m) : m_(m)
    {
        m_.lock();
    }

    ~TrackedLock() KLEB_RELEASE() { m_.unlock(); }

    TrackedLock(const TrackedLock &) = delete;
    TrackedLock &operator=(const TrackedLock &) = delete;

  private:
    TrackedMutex &m_;
};

} // namespace klebsim

/**
 * Mark a write to shared state identified by @p addr.  @p site is a
 * stable dotted name ("sim.EventQueue.pending") used in reports.
 * Compiles to a relaxed null check when no sink is installed.
 */
#define KLEB_ANNOTATE_ACCESS(addr, site)                            \
    do {                                                            \
        if (::klebsim::ThreadSafetySink *kleb_ts_sink_ =            \
                ::klebsim::threadSafetySink())                      \
            kleb_ts_sink_->onAccess(                                \
                static_cast<const void *>(addr), site, true);       \
    } while (0)

/** Mark a read of shared state (read-shared data never races). */
#define KLEB_ANNOTATE_READ(addr, site)                              \
    do {                                                            \
        if (::klebsim::ThreadSafetySink *kleb_ts_sink_ =            \
                ::klebsim::threadSafetySink())                      \
            kleb_ts_sink_->onAccess(                                \
                static_cast<const void *>(addr), site, false);      \
    } while (0)

#endif // KLEBSIM_BASE_THREAD_SAFETY_HH
