/**
 * @file
 * Minimal CSV emission for experiment outputs.
 *
 * Benches write their tables/series through CsvWriter so results can
 * be diffed or plotted without re-running the simulation.
 */

#ifndef KLEBSIM_BASE_CSV_HH
#define KLEBSIM_BASE_CSV_HH

#include <ostream>
#include <string>
#include <vector>

namespace klebsim
{

/**
 * Streams rows of comma-separated values, quoting cells only when
 * required (embedded comma, quote, or newline).
 */
class CsvWriter
{
  public:
    /** Write to an externally owned stream (not closed on destroy). */
    explicit CsvWriter(std::ostream &os);

    /** Emit the header row. */
    void header(const std::vector<std::string> &cols);

    /** Emit one row of preformatted cells. */
    void row(const std::vector<std::string> &cells);

    /** Emit one row of doubles with a fixed number of digits. */
    void rowNumeric(const std::string &label,
                    const std::vector<double> &values, int digits = 6);

    /** @return number of data rows written (header excluded). */
    std::size_t rowsWritten() const { return rows_; }

  private:
    static std::string escape(const std::string &cell);

    std::ostream &os_;
    std::size_t rows_;
};

} // namespace klebsim

#endif // KLEBSIM_BASE_CSV_HH
