/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of the simulation (timer jitter, memory
 * address streams, scheduler tie-breaking) draws from a seeded
 * Random stream so that whole experiments replay bit-for-bit.  The
 * generator is PCG32 (O'Neill, 2014): tiny state, good statistical
 * quality, cheap to fork into independent streams.
 */

#ifndef KLEBSIM_BASE_RANDOM_HH
#define KLEBSIM_BASE_RANDOM_HH

#include <cstdint>

namespace klebsim
{

/**
 * A single deterministic PCG32 random stream.
 */
class Random
{
  public:
    /** Construct with an explicit seed and stream selector. */
    explicit Random(std::uint64_t seed = 0x853c49e6748fea9bULL,
                    std::uint64_t stream = 0xda3e39cb94b95bdbULL);

    /** Next raw 32-bit value. */
    std::uint32_t next32();

    /** Next raw 64-bit value (two next32 draws). */
    std::uint64_t next64();

    /** Uniform integer in [0, bound) without modulo bias. */
    std::uint32_t below(std::uint32_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t between(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Standard normal via Box-Muller (uses two uniforms). */
    double gaussian();

    /** Normal with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Bernoulli draw: true with probability p. */
    bool chance(double p);

    /**
     * Fork an independent child stream.  Children are derived from
     * the parent's state plus a caller-provided salt so distinct
     * subsystems never share a sequence.
     */
    Random fork(std::uint64_t salt);

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
};

} // namespace klebsim

#endif // KLEBSIM_BASE_RANDOM_HH
