/**
 * @file
 * Small string-formatting helpers (printf-style into std::string,
 * joining, fixed-width numeric rendering for report tables).
 */

#ifndef KLEBSIM_BASE_STR_HH
#define KLEBSIM_BASE_STR_HH

#include <string>
#include <vector>

namespace klebsim
{

/** printf-style formatting into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Join a list of strings with a separator. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** Render a double with @p digits decimal places. */
std::string toFixed(double v, int digits);

/** Left-pad (right-justify) a string to @p width characters. */
std::string padLeft(const std::string &s, std::size_t width);

/** Right-pad (left-justify) a string to @p width characters. */
std::string padRight(const std::string &s, std::size_t width);

/** True if @p s begins with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** Split on a single-character delimiter (no empty-trailing trim). */
std::vector<std::string> split(const std::string &s, char delim);

} // namespace klebsim

#endif // KLEBSIM_BASE_STR_HH
