#include "thread_safety.hh"

namespace klebsim
{

// Out-of-line key function so the sink's vtable lives in one TU.
ThreadSafetySink::~ThreadSafetySink() = default;

} // namespace klebsim
