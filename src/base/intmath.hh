/**
 * @file
 * Integer math helpers used by the cache and PMU models.
 */

#ifndef KLEBSIM_BASE_INTMATH_HH
#define KLEBSIM_BASE_INTMATH_HH

#include <cstdint>

namespace klebsim
{

/** True if @p v is a power of two (0 is not). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2(v); v must be non-zero. */
constexpr int
floorLog2(std::uint64_t v)
{
    int r = 0;
    while (v >>= 1)
        ++r;
    return r;
}

/** Ceiling of log2(v); v must be non-zero. */
constexpr int
ceilLog2(std::uint64_t v)
{
    return v <= 1 ? 0 : floorLog2(v - 1) + 1;
}

/** Round @p v up to the next multiple of @p align (a power of two). */
constexpr std::uint64_t
roundUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Round @p v down to a multiple of @p align (a power of two). */
constexpr std::uint64_t
roundDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/** Ceiling division for unsigned integers. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/**
 * Left-shift @p v by @p shift, saturating at the type maximum
 * instead of wrapping (or hitting UB for shift >= 64).  Used by
 * exponential-backoff computations where a large base or retry
 * count must degrade to "sleep a very long time", never to a
 * short wrapped sleep.
 */
constexpr std::uint64_t
saturatingShl(std::uint64_t v, int shift)
{
    if (v == 0)
        return 0;
    if (shift >= 64 || shift < 0 ||
        v > (~std::uint64_t(0) >> shift))
        return ~std::uint64_t(0);
    return v << shift;
}

} // namespace klebsim

#endif // KLEBSIM_BASE_INTMATH_HH
