/**
 * @file
 * Fundamental typedefs and constants shared by every subsystem.
 *
 * The simulation follows the gem5 convention of a 1 THz global tick
 * clock: one Tick equals one picosecond of simulated time.  All
 * durations and timestamps are expressed in Ticks; helpers below
 * convert between Ticks and human units.
 */

#ifndef KLEBSIM_BASE_TYPES_HH
#define KLEBSIM_BASE_TYPES_HH

#include <cstdint>

namespace klebsim
{

/** Simulated time, in picoseconds (1 THz tick clock). */
using Tick = std::uint64_t;

/** Difference between two Ticks (may be transiently negative). */
using TickDelta = std::int64_t;

/** A physical (simulated) memory address. */
using Addr = std::uint64_t;

/** Process identifier inside the simulated kernel. */
using Pid = std::int32_t;

/** CPU core index. */
using CoreId = std::int32_t;

/** A count of hardware events (counter register contents). */
using Counter = std::uint64_t;

/** Number of CPU clock cycles (frequency-dependent). */
using Cycles = std::uint64_t;

/** Sentinel for "no process". */
constexpr Pid invalidPid = -1;

/** Sentinel for "no core". */
constexpr CoreId invalidCore = -1;

/** Largest representable tick; used as "never". */
constexpr Tick maxTick = ~Tick(0);

/** @{ Tick conversion constants (1 Tick = 1 ps). */
constexpr Tick tickPerPs = 1;
constexpr Tick tickPerNs = 1000 * tickPerPs;
constexpr Tick tickPerUs = 1000 * tickPerNs;
constexpr Tick tickPerMs = 1000 * tickPerUs;
constexpr Tick tickPerSec = 1000 * tickPerMs;
/** @} */

/**
 * Round a real-valued tick count to the nearest Tick.  Bare
 * `static_cast<Tick>` truncates toward zero, so a value like
 * 0.29 us (290000 ticks exactly, but 289999.999... in binary
 * floating point) would lose a whole tick; half-up rounding keeps
 * unit conversions exact for every representable decimal.
 */
constexpr Tick
roundToTick(double t)
{
    return static_cast<Tick>(t + 0.5);
}

/** Convert nanoseconds to Ticks (rounding to nearest). */
constexpr Tick
nsToTicks(double ns)
{
    return roundToTick(ns * tickPerNs);
}

/** Convert microseconds to Ticks (rounding to nearest). */
constexpr Tick
usToTicks(double us)
{
    return roundToTick(us * tickPerUs);
}

/** Convert milliseconds to Ticks (rounding to nearest). */
constexpr Tick
msToTicks(double ms)
{
    return roundToTick(ms * tickPerMs);
}

/** Convert seconds to Ticks (rounding to nearest). */
constexpr Tick
secToTicks(double sec)
{
    return roundToTick(sec * tickPerSec);
}

/** Convert Ticks to seconds (lossy, for reporting). */
constexpr double
ticksToSec(Tick t)
{
    return static_cast<double>(t) / tickPerSec;
}

/** Convert Ticks to milliseconds (lossy, for reporting). */
constexpr double
ticksToMs(Tick t)
{
    return static_cast<double>(t) / tickPerMs;
}

/** Convert Ticks to microseconds (lossy, for reporting). */
constexpr double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / tickPerUs;
}

/** User-defined literals for simulated durations, e.g. 100_us. */
namespace ticks_literals
{

constexpr Tick operator""_ps(unsigned long long v)
{ return v * tickPerPs; }

constexpr Tick operator""_ns(unsigned long long v)
{ return v * tickPerNs; }

constexpr Tick operator""_us(unsigned long long v)
{ return v * tickPerUs; }

constexpr Tick operator""_ms(unsigned long long v)
{ return v * tickPerMs; }

constexpr Tick operator""_s(unsigned long long v)
{ return v * tickPerSec; }

} // namespace ticks_literals

} // namespace klebsim

#endif // KLEBSIM_BASE_TYPES_HH
