/**
 * @file
 * Fixed-capacity single-producer ring buffer.
 *
 * Used as the kernel-space sample pool in the K-LEB module (paper
 * section III): the timer interrupt handler pushes samples and the
 * controller process drains them.  When full, push() fails and the
 * caller engages the paper's "safety mechanism" (pause collection
 * until the consumer frees space).
 */

#ifndef KLEBSIM_BASE_RING_BUFFER_HH
#define KLEBSIM_BASE_RING_BUFFER_HH

#include <algorithm>
#include <cstddef>
#include <vector>

#include "logging.hh"
#include "thread_safety.hh"

namespace klebsim
{

/**
 * Bounded FIFO with drop-on-full semantics.
 *
 * @tparam T element type (copyable).
 */
template <typename T>
class RingBuffer
{
  public:
    /** Construct with a fixed capacity (must be > 0). */
    explicit RingBuffer(std::size_t capacity)
        : buf_(capacity), head_(0), tail_(0), size_(0)
    {
        panic_if(capacity == 0, "RingBuffer capacity must be > 0");
    }

    /** @return number of queued elements. */
    std::size_t size() const { return size_; }

    /** @return maximum number of elements. */
    std::size_t capacity() const { return buf_.size(); }

    /** @return true if no elements are queued. */
    bool empty() const { return size_ == 0; }

    /** @return true if at capacity (push would fail). */
    bool full() const { return size_ == buf_.size(); }

    /** @return remaining free slots. */
    std::size_t freeSlots() const { return buf_.size() - size_; }

    /**
     * Append an element.
     * @return false (element dropped) if the buffer is full.
     */
    bool
    push(const T &value)
    {
        if (full())
            return false;
        buf_[tail_] = value;
        tail_ = advance(tail_);
        ++size_;
        return true;
    }

    /** Oldest element (undefined when empty; check first). */
    const T &
    front() const
    {
        panic_if(empty(), "RingBuffer::front on empty buffer");
        return buf_[head_];
    }

    /**
     * Remove the oldest element into @p out.
     * @return false if the buffer was empty.
     */
    bool
    pop(T &out)
    {
        if (empty())
            return false;
        out = buf_[head_];
        head_ = advance(head_);
        --size_;
        return true;
    }

    /**
     * Append @p n elements from @p src in order, stopping at
     * capacity.  Allocation-free: the two wrapped segments are
     * copied with std::copy into the preallocated store, the bulk
     * analogue of the per-sample push() the timer handler uses.
     * @return how many elements were accepted (< n when full).
     */
    KLEB_HOT std::size_t
    pushBulk(const T *src, std::size_t n)
    {
        std::size_t accepted = std::min(n, freeSlots());
        std::size_t first =
            std::min(accepted, buf_.size() - tail_);
        std::copy(src, src + first, buf_.begin() + tail_);
        std::copy(src + first, src + accepted, buf_.begin());
        tail_ = wrap(tail_ + accepted);
        size_ += accepted;
        return accepted;
    }

    /**
     * Remove up to @p max oldest elements (all if max == 0) into
     * the caller's array, preserving FIFO order.  Allocation-free
     * bulk analogue of pop(): @p out must have room for
     * min(max ? max : size(), size()) elements.
     * @return how many elements were written.
     */
    KLEB_HOT std::size_t
    drainInto(T *out, std::size_t max = 0)
    {
        std::size_t n = size_;
        if (max != 0 && max < n)
            n = max;
        std::size_t first = std::min(n, buf_.size() - head_);
        std::copy(buf_.begin() + head_, buf_.begin() + head_ + first,
                  out);
        std::copy(buf_.begin(), buf_.begin() + (n - first),
                  out + first);
        head_ = wrap(head_ + n);
        size_ -= n;
        return n;
    }

    /**
     * Drain up to @p max elements (all if max == 0) into a vector,
     * preserving FIFO order.
     */
    std::vector<T>
    drain(std::size_t max = 0)
    {
        std::size_t n = size_;
        if (max != 0 && max < n)
            n = max;
        std::vector<T> out(n);
        drainInto(out.data(), n);
        return out;
    }

    /** Discard all queued elements. */
    void
    clear()
    {
        head_ = tail_ = 0;
        size_ = 0;
    }

  private:
    std::size_t
    advance(std::size_t idx) const
    {
        ++idx;
        return idx == buf_.size() ? 0 : idx;
    }

    /** Wrap an index that advanced by at most capacity() slots. */
    std::size_t
    wrap(std::size_t idx) const
    {
        return idx >= buf_.size() ? idx - buf_.size() : idx;
    }

    std::vector<T> buf_;
    std::size_t head_;
    std::size_t tail_;
    std::size_t size_;
};

} // namespace klebsim

#endif // KLEBSIM_BASE_RING_BUFFER_HH
