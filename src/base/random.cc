#include "random.hh"

#include <cmath>

namespace klebsim
{

Random::Random(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1) | 1u)
{
    // Standard PCG32 seeding sequence.
    next32();
    state_ += seed;
    next32();
}

std::uint32_t
Random::next32()
{
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    std::uint32_t xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
}

std::uint64_t
Random::next64()
{
    return (static_cast<std::uint64_t>(next32()) << 32) | next32();
}

std::uint32_t
Random::below(std::uint32_t bound)
{
    if (bound == 0)
        return 0;
    // Lemire-style rejection to avoid modulo bias.
    std::uint32_t threshold = (-bound) % bound;
    for (;;) {
        std::uint32_t r = next32();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Random::between(std::int64_t lo, std::int64_t hi)
{
    if (hi <= lo)
        return lo;
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    // Span can exceed 32 bits; compose from two draws when needed.
    if (span <= 0xffffffffULL)
        return lo + below(static_cast<std::uint32_t>(span));
    return lo + static_cast<std::int64_t>(next64() % span);
}

double
Random::uniform()
{
    // 53 random bits into [0, 1).
    std::uint64_t bits = next64() >> 11;
    return static_cast<double>(bits) * (1.0 / 9007199254740992.0);
}

double
Random::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

double
Random::gaussian()
{
    // Box-Muller; guard against log(0).
    double u1 = uniform();
    if (u1 < 1e-300)
        u1 = 1e-300;
    double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * M_PI * u2);
}

double
Random::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

bool
Random::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

Random
Random::fork(std::uint64_t salt)
{
    std::uint64_t child_seed = next64() ^ (salt * 0x9e3779b97f4a7c15ULL);
    std::uint64_t child_stream = next64() + salt;
    return Random(child_seed, child_stream);
}

} // namespace klebsim
