/**
 * @file
 * Scalar sample summaries: running moments and five-number
 * (box-and-whisker) statistics, used by the overhead benches
 * (Tables II/III, Fig. 8).
 */

#ifndef KLEBSIM_STATS_SUMMARY_HH
#define KLEBSIM_STATS_SUMMARY_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace klebsim::stats
{

/**
 * Loss accounting shared by every lossy collector in the tree: the
 * histogram's out-of-range bins, the K-LEB ring buffer's dropped
 * samples, and any fault-degraded session.  One struct so benches
 * and reports render losses uniformly.
 */
struct LossCounts
{
    std::uint64_t accepted = 0;  //!< samples stored/recorded
    std::uint64_t dropped = 0;   //!< rejected for lack of space
    std::uint64_t overflow = 0;  //!< above the representable range
    std::uint64_t underflow = 0; //!< below the representable range
    std::uint64_t gaps = 0;      //!< samples lost to outage windows
                                 //!< (crash recovery, section 11)

    /** Everything offered to the collector. */
    std::uint64_t total() const
    { return accepted + dropped + overflow + underflow + gaps; }

    /** Everything that did not land in a regular slot. */
    std::uint64_t lost() const
    { return dropped + overflow + underflow + gaps; }

    /** lost() / total(), 0 when nothing was offered. */
    double lossFraction() const;

    /** Accumulate another collector's losses. */
    void merge(const LossCounts &other);

    /**
     * "accepted=N dropped=N overflow=N underflow=N" for reports;
     * " gaps=N" is appended only when nonzero so pre-recovery
     * outputs render byte-identically.
     */
    std::string str() const;
};

/**
 * Streaming mean/variance/min/max using Welford's algorithm.
 */
class RunningStats
{
  public:
    /**
     * The accumulator's exact internal state as raw 64-bit words
     * (count plus the bit patterns of mean/m2/min/max/sum).  Used by
     * crash-survivable collectors that checkpoint their reductions:
     * round-tripping through rawState()/fromRawState() restores the
     * accumulator bit-for-bit, which the derived getters (variance()
     * reconstruction and the like) cannot guarantee.
     */
    static constexpr std::size_t rawWords = 6;
    using RawState = std::array<std::uint64_t, rawWords>;

    RunningStats();

    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

    /** Drop all samples. */
    void reset();

    std::size_t count() const { return n_; }
    double mean() const;
    /** Sample variance (n-1 denominator); 0 if fewer than 2 points. */
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;
    double sum() const { return sum_; }

    /** Exact internal state (see RawState). */
    RawState rawState() const;

    /** Rebuild an accumulator from rawState() output, bit-exact. */
    static RunningStats fromRawState(const RawState &raw);

  private:
    std::size_t n_;
    double mean_;
    double m2_;
    double min_;
    double max_;
    double sum_;
};

/**
 * Five-number summary of a sample vector (for box plots): min, first
 * quartile, median, third quartile, max, plus mean and IQR helpers.
 * Quartiles use linear interpolation between closest ranks (the
 * "R-7" rule used by numpy's default percentile).
 */
struct FiveNumber
{
    double min = 0;
    double q1 = 0;
    double median = 0;
    double q3 = 0;
    double max = 0;
    double mean = 0;
    std::size_t count = 0;

    /** Interquartile range. */
    double iqr() const { return q3 - q1; }

    /** Whisker span (max - min). */
    double range() const { return max - min; }
};

/** Compute the five-number summary; input need not be sorted. */
FiveNumber fiveNumber(std::vector<double> samples);

/** Percentile in [0, 100] with linear interpolation (R-7). */
double percentile(std::vector<double> samples, double pct);

/** Relative difference |a - b| / b, in percent. b must be nonzero. */
double pctDiff(double a, double b);

} // namespace klebsim::stats

#endif // KLEBSIM_STATS_SUMMARY_HH
