/**
 * @file
 * Timestamped multi-channel sample series.
 *
 * K-LEB's output is a time series of counter snapshots (one channel
 * per hardware event).  TimeSeries stores those snapshots, provides
 * per-channel reduction (sum, mean, max), per-interval deltas, simple
 * resampling onto a fixed grid, and derived-metric computation such
 * as MPKI = LLC_misses / (instructions / 1000).
 */

#ifndef KLEBSIM_STATS_TIME_SERIES_HH
#define KLEBSIM_STATS_TIME_SERIES_HH

#include <cstddef>
#include <string>
#include <vector>

#include "base/types.hh"

namespace klebsim::stats
{

/**
 * A series of samples, each a timestamp plus one value per channel.
 * All rows have the same channel arity.
 */
class TimeSeries
{
  public:
    /** Create with named channels (the arity of every sample). */
    explicit TimeSeries(std::vector<std::string> channels);

    /** Append a sample; values.size() must equal channels(). */
    void append(Tick when, const std::vector<double> &values);

    std::size_t channels() const { return names_.size(); }
    std::size_t size() const { return times_.size(); }
    bool empty() const { return times_.empty(); }

    const std::vector<std::string> &channelNames() const
    { return names_; }

    /** Index of a channel by name; fatal() if absent. */
    std::size_t channelIndex(const std::string &name) const;

    Tick timeAt(std::size_t row) const;
    double valueAt(std::size_t row, std::size_t channel) const;

    /** All values of one channel in time order. */
    std::vector<double> channel(std::size_t idx) const;
    std::vector<double> channel(const std::string &name) const;

    /** Sum of one channel across all samples. */
    double channelSum(std::size_t idx) const;

    /** Mean of one channel across all samples. */
    double channelMean(std::size_t idx) const;

    /**
     * Per-row deltas of a cumulative channel (first row is the raw
     * value).  Converts running-counter snapshots into per-interval
     * event counts.
     */
    std::vector<double> channelDeltas(std::size_t idx) const;

    /**
     * Element-wise derived metric over two channels:
     * num[i] / max(den[i], minDen) * scale.  Used for e.g. MPKI with
     * scale = 1000.
     */
    std::vector<double> ratio(std::size_t num, std::size_t den,
                              double scale = 1.0,
                              double min_den = 1.0) const;

    /** First and last timestamps (fatal on empty series). */
    Tick startTime() const;
    Tick endTime() const;

    /** Duration covered (endTime - startTime). */
    Tick span() const;

    /**
     * Average spacing between consecutive samples, in Ticks
     * (0 when fewer than two samples).
     */
    double meanInterval() const;

  private:
    std::vector<std::string> names_;
    std::vector<Tick> times_;
    std::vector<double> values_; // row-major, size() * channels()
};

/** MPKI from total misses and total instructions. */
double mpki(double misses, double instructions);

} // namespace klebsim::stats

#endif // KLEBSIM_STATS_TIME_SERIES_HH
