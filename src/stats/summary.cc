#include "summary.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "base/logging.hh"
#include "base/str.hh"

namespace klebsim::stats
{

double
LossCounts::lossFraction() const
{
    std::uint64_t all = total();
    if (all == 0)
        return 0.0;
    return static_cast<double>(lost()) / static_cast<double>(all);
}

void
LossCounts::merge(const LossCounts &other)
{
    accepted += other.accepted;
    dropped += other.dropped;
    overflow += other.overflow;
    underflow += other.underflow;
    gaps += other.gaps;
}

std::string
LossCounts::str() const
{
    std::string s =
        csprintf("accepted=%llu dropped=%llu overflow=%llu "
                 "underflow=%llu",
                 static_cast<unsigned long long>(accepted),
                 static_cast<unsigned long long>(dropped),
                 static_cast<unsigned long long>(overflow),
                 static_cast<unsigned long long>(underflow));
    if (gaps != 0)
        s += csprintf(" gaps=%llu",
                      static_cast<unsigned long long>(gaps));
    return s;
}

RunningStats::RunningStats()
{
    reset();
}

void
RunningStats::reset()
{
    n_ = 0;
    mean_ = 0;
    m2_ = 0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
    sum_ = 0;
}

void
RunningStats::add(double x)
{
    ++n_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

RunningStats::RawState
RunningStats::rawState() const
{
    return {static_cast<std::uint64_t>(n_),
            std::bit_cast<std::uint64_t>(mean_),
            std::bit_cast<std::uint64_t>(m2_),
            std::bit_cast<std::uint64_t>(min_),
            std::bit_cast<std::uint64_t>(max_),
            std::bit_cast<std::uint64_t>(sum_)};
}

RunningStats
RunningStats::fromRawState(const RawState &raw)
{
    RunningStats s;
    s.n_ = static_cast<std::size_t>(raw[0]);
    s.mean_ = std::bit_cast<double>(raw[1]);
    s.m2_ = std::bit_cast<double>(raw[2]);
    s.min_ = std::bit_cast<double>(raw[3]);
    s.max_ = std::bit_cast<double>(raw[4]);
    s.sum_ = std::bit_cast<double>(raw[5]);
    return s;
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    // Chan et al. parallel variance combination.
    double delta = other.mean_ - mean_;
    std::size_t total = n_ + other.n_;
    double na = static_cast<double>(n_);
    double nb = static_cast<double>(other.n_);
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
    mean_ = (na * mean_ + nb * other.mean_) / (na + nb);
    n_ = total;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
RunningStats::mean() const
{
    return n_ ? mean_ : 0.0;
}

double
RunningStats::variance() const
{
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::min() const
{
    return n_ ? min_ : 0.0;
}

double
RunningStats::max() const
{
    return n_ ? max_ : 0.0;
}

double
percentile(std::vector<double> samples, double pct)
{
    panic_if(samples.empty(), "percentile of empty sample set");
    panic_if(pct < 0.0 || pct > 100.0, "percentile out of range: ", pct);
    std::sort(samples.begin(), samples.end());
    if (samples.size() == 1)
        return samples[0];
    double rank = pct / 100.0 * static_cast<double>(samples.size() - 1);
    std::size_t lo = static_cast<std::size_t>(std::floor(rank));
    std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
    double frac = rank - static_cast<double>(lo);
    return samples[lo] + frac * (samples[hi] - samples[lo]);
}

FiveNumber
fiveNumber(std::vector<double> samples)
{
    panic_if(samples.empty(), "fiveNumber of empty sample set");
    std::sort(samples.begin(), samples.end());
    FiveNumber f;
    f.count = samples.size();
    f.min = samples.front();
    f.max = samples.back();
    double sum = 0;
    for (double v : samples)
        sum += v;
    f.mean = sum / static_cast<double>(samples.size());

    auto interp = [&](double pct) {
        double rank =
            pct / 100.0 * static_cast<double>(samples.size() - 1);
        std::size_t lo = static_cast<std::size_t>(std::floor(rank));
        std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
        double frac = rank - static_cast<double>(lo);
        return samples[lo] + frac * (samples[hi] - samples[lo]);
    };
    f.q1 = interp(25.0);
    f.median = interp(50.0);
    f.q3 = interp(75.0);
    return f;
}

double
pctDiff(double a, double b)
{
    panic_if(b == 0.0, "pctDiff with zero reference");
    return std::fabs(a - b) / std::fabs(b) * 100.0;
}

} // namespace klebsim::stats
