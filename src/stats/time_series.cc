#include "time_series.hh"

#include <algorithm>

#include "base/logging.hh"

namespace klebsim::stats
{

TimeSeries::TimeSeries(std::vector<std::string> channels)
    : names_(std::move(channels))
{
    panic_if(names_.empty(), "TimeSeries needs at least one channel");
}

void
TimeSeries::append(Tick when, const std::vector<double> &values)
{
    panic_if(values.size() != names_.size(),
             "sample arity ", values.size(), " != channels ",
             names_.size());
    panic_if(!times_.empty() && when < times_.back(),
             "TimeSeries timestamps must be monotonic");
    times_.push_back(when);
    values_.insert(values_.end(), values.begin(), values.end());
}

std::size_t
TimeSeries::channelIndex(const std::string &name) const
{
    auto it = std::find(names_.begin(), names_.end(), name);
    fatal_if(it == names_.end(), "no such channel: " + name);
    return static_cast<std::size_t>(it - names_.begin());
}

Tick
TimeSeries::timeAt(std::size_t row) const
{
    panic_if(row >= times_.size(), "row out of range");
    return times_[row];
}

double
TimeSeries::valueAt(std::size_t row, std::size_t channel) const
{
    panic_if(row >= times_.size(), "row out of range");
    panic_if(channel >= names_.size(), "channel out of range");
    return values_[row * names_.size() + channel];
}

std::vector<double>
TimeSeries::channel(std::size_t idx) const
{
    panic_if(idx >= names_.size(), "channel out of range");
    std::vector<double> out;
    out.reserve(times_.size());
    for (std::size_t r = 0; r < times_.size(); ++r)
        out.push_back(values_[r * names_.size() + idx]);
    return out;
}

std::vector<double>
TimeSeries::channel(const std::string &name) const
{
    return channel(channelIndex(name));
}

double
TimeSeries::channelSum(std::size_t idx) const
{
    double sum = 0;
    for (double v : channel(idx))
        sum += v;
    return sum;
}

double
TimeSeries::channelMean(std::size_t idx) const
{
    if (times_.empty())
        return 0.0;
    return channelSum(idx) / static_cast<double>(times_.size());
}

std::vector<double>
TimeSeries::channelDeltas(std::size_t idx) const
{
    std::vector<double> vals = channel(idx);
    std::vector<double> out;
    out.reserve(vals.size());
    double prev = 0;
    for (double v : vals) {
        out.push_back(v - prev);
        prev = v;
    }
    return out;
}

std::vector<double>
TimeSeries::ratio(std::size_t num, std::size_t den, double scale,
                  double min_den) const
{
    std::vector<double> n = channel(num);
    std::vector<double> d = channel(den);
    std::vector<double> out;
    out.reserve(n.size());
    for (std::size_t i = 0; i < n.size(); ++i)
        out.push_back(n[i] / std::max(d[i], min_den) * scale);
    return out;
}

Tick
TimeSeries::startTime() const
{
    fatal_if(times_.empty(), "startTime of empty series");
    return times_.front();
}

Tick
TimeSeries::endTime() const
{
    fatal_if(times_.empty(), "endTime of empty series");
    return times_.back();
}

Tick
TimeSeries::span() const
{
    return endTime() - startTime();
}

double
TimeSeries::meanInterval() const
{
    if (times_.size() < 2)
        return 0.0;
    return static_cast<double>(times_.back() - times_.front()) /
           static_cast<double>(times_.size() - 1);
}

double
mpki(double misses, double instructions)
{
    if (instructions <= 0.0)
        return 0.0;
    return misses / (instructions / 1000.0);
}

} // namespace klebsim::stats
