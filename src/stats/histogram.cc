#include "histogram.hh"

#include <cmath>

#include "base/logging.hh"
#include "base/str.hh"

namespace klebsim::stats
{

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0), underflow_(0), overflow_(0), total_(0)
{
    panic_if(bins == 0, "histogram needs at least one bin");
    panic_if(hi <= lo, "histogram range must be non-empty");
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    if (idx >= counts_.size()) // guard FP edge at hi_
        idx = counts_.size() - 1;
    ++counts_[idx];
}

std::size_t
Histogram::count(std::size_t idx) const
{
    panic_if(idx >= counts_.size(), "bin out of range");
    return counts_[idx];
}

double
Histogram::binLo(std::size_t idx) const
{
    panic_if(idx >= counts_.size(), "bin out of range");
    return lo_ + width_ * static_cast<double>(idx);
}

double
Histogram::binHi(std::size_t idx) const
{
    return binLo(idx) + width_;
}

double
Histogram::fraction(std::size_t idx) const
{
    std::size_t in_range = total_ - underflow_ - overflow_;
    if (in_range == 0)
        return 0.0;
    return static_cast<double>(count(idx)) /
           static_cast<double>(in_range);
}

std::string
Histogram::render(int label_digits) const
{
    std::string out;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        out += csprintf("%*.*f..%*.*f: %zu\n", 10, label_digits,
                        binLo(i), 10, label_digits, binHi(i),
                        counts_[i]);
    }
    if (underflow_)
        out += csprintf("underflow: %zu\n", underflow_);
    if (overflow_)
        out += csprintf("overflow: %zu\n", overflow_);
    return out;
}

} // namespace klebsim::stats
