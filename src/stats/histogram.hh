/**
 * @file
 * Fixed-bin histogram, used by the jitter ablation bench to
 * characterize HRTimer period error distributions.
 */

#ifndef KLEBSIM_STATS_HISTOGRAM_HH
#define KLEBSIM_STATS_HISTOGRAM_HH

#include <cstddef>
#include <string>
#include <vector>

#include "summary.hh"

namespace klebsim::stats
{

/**
 * Equal-width histogram over [lo, hi) with underflow/overflow bins.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    /** Record one sample. */
    void add(double x);

    std::size_t bins() const { return counts_.size(); }
    std::size_t total() const { return total_; }
    std::size_t underflow() const { return underflow_; }
    std::size_t overflow() const { return overflow_; }

    /** Out-of-range accounting in the shared LossCounts form. */
    LossCounts
    losses() const
    {
        LossCounts lc;
        lc.accepted = total_ - underflow_ - overflow_;
        lc.overflow = overflow_;
        lc.underflow = underflow_;
        return lc;
    }

    /** Count in bin @p idx. */
    std::size_t count(std::size_t idx) const;

    /** Lower edge of bin @p idx. */
    double binLo(std::size_t idx) const;

    /** Upper edge of bin @p idx. */
    double binHi(std::size_t idx) const;

    /** Fraction of in-range samples in bin @p idx. */
    double fraction(std::size_t idx) const;

    /** Render as "lo..hi: count" lines for reports. */
    std::string render(int label_digits = 3) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::size_t> counts_;
    std::size_t underflow_;
    std::size_t overflow_;
    std::size_t total_;
};

} // namespace klebsim::stats

#endif // KLEBSIM_STATS_HISTOGRAM_HH
