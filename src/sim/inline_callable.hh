/**
 * @file
 * Small-buffer callable for the simulator's hot event paths.
 *
 * The one-shot timer/IPI lambdas the kernel and the K-LEB module
 * fire every 100 µs tick used to ride in a std::function, which
 * heap-allocates for any capture list larger than its (tiny,
 * implementation-defined) inline buffer.  InlineCallable stores the
 * callable inline in a fixed 48-byte buffer instead, so scheduling
 * a one-shot event allocates nothing.  Oversized callables still
 * work — they fall back to a heap allocation — but the hot-path
 * lambdas (a `this` pointer plus a word or two) always fit.
 *
 * Only the `void()` signature is provided; that is the only one the
 * event queue dispatches.  The type is move-only: a scheduled
 * callable has exactly one owner (the event wrapper), and moves are
 * what the freelist recycling path needs.
 */

#ifndef KLEBSIM_SIM_INLINE_CALLABLE_HH
#define KLEBSIM_SIM_INLINE_CALLABLE_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "base/logging.hh"

namespace klebsim::sim
{

class InlineCallable
{
  public:
    /** Capture bytes stored without a heap allocation. */
    static constexpr std::size_t inlineSize = 48;

    InlineCallable() = default;

    template <typename F>
        requires(!std::is_same_v<std::decay_t<F>, InlineCallable> &&
                 std::is_invocable_r_v<void, std::decay_t<F> &>)
    InlineCallable(F &&f) // NOLINT: implicit by design (lambda args)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf_))
                Fn(std::forward<F>(f));
            ops_ = &opsFor<Fn, true>;
        } else {
            // Cold fallback for oversized captures; still correct,
            // just not allocation-free.
            *reinterpret_cast<Fn **>(buf_) =
                new Fn(std::forward<F>(f));
            ops_ = &opsFor<Fn, false>;
        }
    }

    InlineCallable(InlineCallable &&other) noexcept
    {
        moveFrom(other);
    }

    InlineCallable &
    operator=(InlineCallable &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineCallable(const InlineCallable &) = delete;
    InlineCallable &operator=(const InlineCallable &) = delete;

    ~InlineCallable() { reset(); }

    /** True when a callable is stored. */
    explicit operator bool() const { return ops_ != nullptr; }

    /** Invoke the stored callable (must not be empty). */
    void
    operator()()
    {
        panic_if(ops_ == nullptr, "invoking empty InlineCallable");
        ops_->invoke(buf_);
    }

    /** Destroy the stored callable (captures released now). */
    void
    reset()
    {
        if (ops_ != nullptr) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

  private:
    struct Ops
    {
        void (*invoke)(void *buf);
        /** Move into @p dst's raw buffer, then destroy @p src. */
        void (*relocate)(void *src, void *dst) noexcept;
        void (*destroy)(void *buf) noexcept;
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= inlineSize &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn, bool Inline>
    static constexpr Ops
    makeOps()
    {
        if constexpr (Inline) {
            return {
                [](void *buf) { (*static_cast<Fn *>(buf))(); },
                [](void *src, void *dst) noexcept {
                    ::new (dst) Fn(std::move(*static_cast<Fn *>(src)));
                    static_cast<Fn *>(src)->~Fn();
                },
                [](void *buf) noexcept {
                    static_cast<Fn *>(buf)->~Fn();
                },
            };
        } else {
            return {
                [](void *buf) { (**static_cast<Fn **>(buf))(); },
                [](void *src, void *dst) noexcept {
                    *static_cast<Fn **>(dst) =
                        *static_cast<Fn **>(src);
                },
                [](void *buf) noexcept {
                    delete *static_cast<Fn **>(buf);
                },
            };
        }
    }

    template <typename Fn, bool Inline>
    static constexpr Ops opsFor = makeOps<Fn, Inline>();

    void
    moveFrom(InlineCallable &other) noexcept
    {
        if (other.ops_ != nullptr) {
            other.ops_->relocate(other.buf_, buf_);
            ops_ = other.ops_;
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[inlineSize];
    const Ops *ops_ = nullptr;
};

} // namespace klebsim::sim

#endif // KLEBSIM_SIM_INLINE_CALLABLE_HH
