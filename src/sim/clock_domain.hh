/**
 * @file
 * Clock-domain arithmetic: converting between CPU cycles and global
 * Ticks for a given core frequency.
 */

#ifndef KLEBSIM_SIM_CLOCK_DOMAIN_HH
#define KLEBSIM_SIM_CLOCK_DOMAIN_HH

#include "base/logging.hh"
#include "base/types.hh"

namespace klebsim::sim
{

/**
 * A fixed-frequency clock domain.  The i7-920 model runs at
 * 2.67 GHz; the reference (TSC) clock is a separate domain.
 */
class ClockDomain
{
  public:
    /** Construct from a frequency in Hz. */
    explicit ClockDomain(double freq_hz)
        : freqHz_(freq_hz),
          period_(static_cast<Tick>(
              static_cast<double>(tickPerSec) / freq_hz + 0.5))
    {
        fatal_if(freq_hz <= 0.0, "clock frequency must be positive");
        fatal_if(period_ == 0, "clock frequency above tick rate");
    }

    double freqHz() const { return freqHz_; }

    /** Clock period in Ticks (rounded to nearest). */
    Tick period() const { return period_; }

    /** Convert a cycle count into a tick duration. */
    Tick
    cyclesToTicks(Cycles c) const
    {
        return static_cast<Tick>(c) * period_;
    }

    /** Convert a tick duration into whole elapsed cycles (floor). */
    Cycles
    ticksToCycles(Tick t) const
    {
        return static_cast<Cycles>(t / period_);
    }

    /** Cycles needed to cover @p t ticks (ceiling). */
    Cycles
    ticksToCyclesCeil(Tick t) const
    {
        return static_cast<Cycles>((t + period_ - 1) / period_);
    }

  private:
    double freqHz_;
    Tick period_;
};

} // namespace klebsim::sim

#endif // KLEBSIM_SIM_CLOCK_DOMAIN_HH
