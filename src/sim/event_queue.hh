/**
 * @file
 * Deterministic discrete-event queue — the heartbeat of the
 * simulated machine.
 *
 * Modeled on gem5's EventQueue: events are scheduled at absolute
 * Ticks; same-tick events are ordered by priority, then by schedule
 * order (FIFO), so simulation runs are fully deterministic.
 *
 * The pending set is a gem5-style two-level intrusive structure: a
 * singly linked list of *bins*, one per distinct (tick, priority)
 * pair in queue order, where each bin head chains its same-key
 * events FIFO (or in tie-break-salt order when a salt is active).
 * Schedule/deschedule of the dominant near-head timer events is
 * O(1) amortized and allocation-free — no tree nodes, no
 * rebalancing, no comparator indirection.  One-shot lambda events
 * are recycled through a wrapper freelist, so the steady-state
 * 100 µs timer tick performs zero heap allocations.
 */

#ifndef KLEBSIM_SIM_EVENT_QUEUE_HH
#define KLEBSIM_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/types.hh"
#include "inline_callable.hh"

namespace klebsim::sim
{

class EventQueue;
class EventQueueListener;

/**
 * Base class for schedulable events.  Derive and implement
 * process(); or use EventFunctionWrapper for lambda-backed events.
 *
 * An Event object may be scheduled on at most one queue at a time.
 * The queue never takes ownership except via scheduleLambda().
 */
class Event
{
  public:
    /**
     * Same-tick ordering classes (lower value runs first).  The
     * default leaves headroom both ways for device-specific needs.
     */
    enum Priority : int
    {
        timerPriority = -20,     //!< hardware timer expiry
        interruptPriority = -10, //!< interrupt delivery
        defaultPriority = 0,
        schedulerPriority = 10,  //!< OS scheduler decisions
        statsPriority = 20,      //!< bookkeeping after state settles
    };

    explicit Event(int priority = defaultPriority);
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Called when the event's scheduled tick is reached. */
    virtual void process() = 0;

    /** Descriptive name for debugging. */
    virtual std::string name() const { return "event"; }

    /** True while the event sits in a queue. */
    bool scheduled() const { return queue_ != nullptr; }

    /** Tick the event will fire at (valid only while scheduled). */
    Tick when() const { return when_; }

    int priority() const { return priority_; }

    /**
     * Monotonic schedule-order stamp, assigned at schedule() time.
     * Same-tick same-priority events dispatch in seq order (FIFO);
     * trace tooling records it to pin down total event order.
     */
    std::uint64_t seq() const { return seq_; }

    /**
     * If true, the queue deletes (or recycles) the event after
     * process() returns (used by scheduleLambda's wrappers).
     */
    bool autoDelete() const { return autoDelete_; }

  protected:
    void setAutoDelete(bool v) { autoDelete_ = v; }
    void setPriority(int p) { priority_ = p; }

  private:
    friend class EventQueue;

    int priority_;
    Tick when_ = 0;
    std::uint64_t seq_ = 0;
    EventQueue *queue_ = nullptr;
    bool autoDelete_ = false;
    bool pooled_ = false; //!< recyclable scheduleLambda wrapper

    /**
     * @{ Intrusive two-level queue links.  nextBin_ chains bin
     * heads in (when, priority) order; nextInBin_ chains a bin's
     * same-key events; binTail_ (bin heads only) caches the chain
     * tail for O(1) FIFO append.  All null while unscheduled.
     */
    Event *nextBin_ = nullptr;
    Event *nextInBin_ = nullptr;
    Event *binTail_ = nullptr;
    /** @} */
};

/** Event that invokes a stored callable. */
class EventFunctionWrapper : public Event
{
  public:
    EventFunctionWrapper(InlineCallable fn,
                         std::string name = "lambda-event",
                         int priority = defaultPriority);

    void process() override;
    std::string name() const override { return name_; }

  private:
    friend class EventQueue;

    /** Re-initialize a recycled wrapper (freelist reuse). */
    void rearm(InlineCallable fn, std::string_view name,
               int priority);

    InlineCallable fn_;
    std::string name_;
    EventFunctionWrapper *poolNext_ = nullptr; //!< freelist link
};

/**
 * Observer interface for queue activity (see src/analysis/).
 *
 * Listeners see every schedule, deschedule and dispatch as it
 * happens.  They must not mutate the queue from inside a callback;
 * they exist so correctness tooling (event tracing, invariant
 * checking, the determinism harness) can watch the machine without
 * perturbing it.  With no listener attached the queue skips the
 * notification paths entirely, so tracing costs nothing when off.
 */
class EventQueueListener
{
  public:
    virtual ~EventQueueListener() = default;

    /** @p ev was inserted, to fire at ev.when(). */
    virtual void onSchedule(const Event &ev, Tick now)
    { (void)ev; (void)now; }

    /** @p ev was removed without firing. */
    virtual void onDeschedule(const Event &ev, Tick now)
    { (void)ev; (void)now; }

    /** @p ev is about to run; now == ev.when(). */
    virtual void onDispatch(const Event &ev, Tick now)
    { (void)ev; (void)now; }
};

/**
 * The global-ordering event queue.  Single-threaded by design; the
 * simulated machine owns exactly one.  The mutating entry points are
 * instrumented as the "sim.EventQueue.pending" shared location
 * (base/thread_safety.hh), so a lockset-checked test catches any two
 * threads that ever touch the same queue — the single-owner contract
 * is enforced, not just documented.
 */
class EventQueue
{
  public:
    EventQueue();
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /** Schedule @p ev at absolute tick @p when (>= curTick). */
    void schedule(Event *ev, Tick when);

    /** Remove @p ev from the queue; it must be scheduled here. */
    void deschedule(Event *ev);

    /** Deschedule (if needed) and re-schedule at @p when. */
    void reschedule(Event *ev, Tick when);

    /**
     * One-shot convenience: wrap @p fn in a queue-owned event,
     * schedule it, and let the queue reclaim it after it fires.
     * Wrappers are recycled through an internal freelist, so the
     * steady state allocates nothing.
     * @return the wrapper (so callers may deschedule early; doing so
     *         transfers reclamation responsibility back to the queue
     *         via cancelLambda()).
     */
    Event *scheduleLambda(Tick when, InlineCallable fn,
                          int priority = Event::defaultPriority,
                          std::string_view name = "lambda-event");

    /** Deschedule and reclaim a wrapper from scheduleLambda(). */
    void cancelLambda(Event *ev);

    /** True if no events are pending. */
    bool empty() const { return head_ == nullptr; }

    /** Number of pending events. */
    std::size_t size() const { return size_; }

    /** Tick of the next pending event (maxTick if none). */
    Tick nextTick() const;

    /** Process exactly one event. @return false if queue was empty. */
    bool runOne();

    /**
     * Run events until simulated time would exceed @p limit.  Events
     * scheduled exactly at @p limit are processed.
     * @return number of events processed.
     */
    std::uint64_t runUntil(Tick limit);

    /** Run until the queue is empty. @return events processed. */
    std::uint64_t runAll();

    /** Total number of events ever processed. */
    std::uint64_t eventsProcessed() const { return processed_; }

    /** @{ Correctness-tooling hooks (see src/analysis/). */

    /** Attach @p l; it sees every schedule/deschedule/dispatch. */
    void addListener(EventQueueListener *l);

    /** Detach @p l (no-op if not attached). */
    void removeListener(EventQueueListener *l);

    /**
     * Perturb the same-tick same-priority tie-break.  With salt 0
     * (the default) ties dispatch in schedule order — the FIFO
     * contract every module may rely on.  A non-zero salt reorders
     * ties by a deterministic hash of (seq, salt) instead; the
     * determinism harness uses this to detect modules whose results
     * secretly depend on FIFO order between same-priority events.
     * Pending events are re-linked in place under the new salt (the
     * pending multiset is preserved; only same-bin order changes).
     */
    void setTieBreakSalt(std::uint64_t salt);

    std::uint64_t tieBreakSalt() const { return tieSalt_; }

    /** @} */

  private:
    /** Tie-break mix: identity under salt 0, splitmix64 otherwise. */
    static std::uint64_t mixSeq(std::uint64_t seq, std::uint64_t salt);

    /** True when @p a's bin sorts strictly before @p b's key. */
    static bool
    binBefore(const Event *a, const Event *b)
    {
        if (a->when_ != b->when_)
            return a->when_ < b->when_;
        return a->priority_ < b->priority_;
    }

    bool hasListeners() const { return !listeners_.empty(); }

    /** Link @p ev into the two-level structure (stamps applied). */
    void insert(Event *ev);

    /** Unlink and return the front event (queue must not be empty). */
    Event *popHead();

    /** Unlink @p ev from wherever it sits (panics if absent). */
    void remove(Event *ev);

    /** Reclaim an auto-delete event (recycle pooled wrappers). */
    void releaseAuto(Event *ev);

    void dispatch(Event *ev);

    Event *head_ = nullptr;
    std::size_t size_ = 0;
    EventFunctionWrapper *freeWrappers_ = nullptr;
    Tick curTick_;
    std::uint64_t nextSeq_;
    std::uint64_t processed_;
    std::uint64_t tieSalt_ = 0;
    std::vector<EventQueueListener *> listeners_;
};

} // namespace klebsim::sim

#endif // KLEBSIM_SIM_EVENT_QUEUE_HH
