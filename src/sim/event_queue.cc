#include "event_queue.hh"

#include "base/logging.hh"

namespace klebsim::sim
{

Event::Event(int priority) : priority_(priority)
{
}

Event::~Event()
{
    panic_if(scheduled(),
             "event '", name(), "' destroyed while scheduled");
}

EventFunctionWrapper::EventFunctionWrapper(std::function<void()> fn,
                                           std::string name,
                                           int priority)
    : Event(priority), fn_(std::move(fn)), name_(std::move(name))
{
}

void
EventFunctionWrapper::process()
{
    fn_();
}

EventQueue::EventQueue()
    : events_(Compare{this}), curTick_(0), nextSeq_(0), processed_(0)
{
}

EventQueue::~EventQueue()
{
    // Drop any still-scheduled events so their destructors don't
    // panic; delete the ones we own.
    for (Event *ev : events_) {
        ev->queue_ = nullptr;
        if (ev->autoDelete())
            delete ev;
    }
    events_.clear();
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    panic_if(ev == nullptr, "schedule of null event");
    panic_if(ev->scheduled(),
             "event '", ev->name(), "' already scheduled");
    panic_if(when < curTick_, "event '", ev->name(),
             "' scheduled in the past (", when, " < ", curTick_, ")");
    ev->when_ = when;
    ev->seq_ = nextSeq_++;
    ev->queue_ = this;
    events_.insert(ev);
    for (EventQueueListener *l : listeners_)
        l->onSchedule(*ev, curTick_);
}

void
EventQueue::deschedule(Event *ev)
{
    panic_if(ev == nullptr, "deschedule of null event");
    panic_if(ev->queue_ != this,
             "event '", ev->name(), "' not scheduled on this queue");
    auto erased = events_.erase(ev);
    panic_if(erased != 1, "scheduled event missing from queue set");
    ev->queue_ = nullptr;
    for (EventQueueListener *l : listeners_)
        l->onDeschedule(*ev, curTick_);
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    panic_if(ev == nullptr, "reschedule of null event");
    if (ev->scheduled())
        deschedule(ev);
    schedule(ev, when);
}

Event *
EventQueue::scheduleLambda(Tick when, std::function<void()> fn,
                           int priority, std::string name)
{
    auto *ev = new EventFunctionWrapper(std::move(fn),
                                        std::move(name), priority);
    ev->setAutoDelete(true);
    schedule(ev, when);
    return ev;
}

void
EventQueue::cancelLambda(Event *ev)
{
    panic_if(ev == nullptr, "cancelLambda of null event");
    panic_if(!ev->autoDelete(),
             "cancelLambda on a caller-owned event");
    // A wrapper that rescheduled itself and was then descheduled (or
    // never re-entered a queue) is still owed its deletion; only a
    // still-scheduled one needs removing first.
    if (ev->scheduled())
        deschedule(ev);
    delete ev;
}

Tick
EventQueue::nextTick() const
{
    if (events_.empty())
        return maxTick;
    return (*events_.begin())->when_;
}

void
EventQueue::dispatch(Event *ev)
{
    events_.erase(events_.begin());
    ev->queue_ = nullptr;
    curTick_ = ev->when_;
    ++processed_;
    for (EventQueueListener *l : listeners_)
        l->onDispatch(*ev, curTick_);
    ev->process();
    if (ev->autoDelete() && !ev->scheduled())
        delete ev;
}

bool
EventQueue::runOne()
{
    if (events_.empty())
        return false;
    dispatch(*events_.begin());
    return true;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t n = 0;
    while (!events_.empty() && (*events_.begin())->when_ <= limit) {
        dispatch(*events_.begin());
        ++n;
    }
    if (curTick_ < limit)
        curTick_ = limit;
    return n;
}

std::uint64_t
EventQueue::runAll()
{
    std::uint64_t n = 0;
    while (runOne())
        ++n;
    return n;
}

void
EventQueue::addListener(EventQueueListener *l)
{
    panic_if(l == nullptr, "null event-queue listener");
    for (EventQueueListener *existing : listeners_)
        panic_if(existing == l, "event-queue listener added twice");
    listeners_.push_back(l);
}

void
EventQueue::removeListener(EventQueueListener *l)
{
    for (auto it = listeners_.begin(); it != listeners_.end(); ++it) {
        if (*it == l) {
            listeners_.erase(it);
            return;
        }
    }
}

std::uint64_t
EventQueue::mixSeq(std::uint64_t seq, std::uint64_t salt)
{
    if (salt == 0)
        return seq;
    // splitmix64 finalizer: bijective, so distinct seqs never tie.
    std::uint64_t z = seq + salt * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

void
EventQueue::setTieBreakSalt(std::uint64_t salt)
{
    if (salt == tieSalt_)
        return;
    // The comparator reads tieSalt_, so pending events must be
    // pulled out and re-inserted under the new ordering.
    std::vector<Event *> pending(events_.begin(), events_.end());
    events_.clear();
    tieSalt_ = salt;
    for (Event *ev : pending)
        events_.insert(ev);
}

} // namespace klebsim::sim
