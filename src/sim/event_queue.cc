#include "event_queue.hh"

#include "base/logging.hh"
#include "base/thread_safety.hh"

namespace klebsim::sim
{

Event::Event(int priority) : priority_(priority)
{
}

Event::~Event()
{
    panic_if(scheduled(),
             "event '", name(), "' destroyed while scheduled");
}

EventFunctionWrapper::EventFunctionWrapper(InlineCallable fn,
                                           std::string name,
                                           int priority)
    : Event(priority), fn_(std::move(fn)), name_(std::move(name))
{
}

void
EventFunctionWrapper::process()
{
    fn_();
}

void
EventFunctionWrapper::rearm(InlineCallable fn, std::string_view name,
                            int priority)
{
    fn_ = std::move(fn);
    name_.assign(name); // reuses the retired wrapper's capacity
    setPriority(priority);
}

EventQueue::EventQueue() : curTick_(0), nextSeq_(0), processed_(0)
{
}

EventQueue::~EventQueue()
{
    // Drop any still-scheduled events so their destructors don't
    // panic; delete the ones we own.
    Event *bin = head_;
    while (bin != nullptr) {
        Event *nextBin = bin->nextBin_;
        Event *ev = bin;
        while (ev != nullptr) {
            Event *next = ev->nextInBin_;
            ev->queue_ = nullptr;
            ev->nextBin_ = nullptr;
            ev->nextInBin_ = nullptr;
            ev->binTail_ = nullptr;
            if (ev->autoDelete())
                delete ev;
            ev = next;
        }
        bin = nextBin;
    }
    head_ = nullptr;
    size_ = 0;
    while (freeWrappers_ != nullptr) {
        EventFunctionWrapper *w = freeWrappers_;
        freeWrappers_ = w->poolNext_;
        delete w;
    }
}

KLEB_HOT void
EventQueue::insert(Event *ev)
{
    Event **link = &head_;
    while (*link != nullptr && binBefore(*link, ev))
        link = &(*link)->nextBin_;
    Event *bin = *link;
    if (bin != nullptr && bin->when_ == ev->when_ &&
        bin->priority_ == ev->priority_) {
        if (tieSalt_ == 0) {
            // FIFO: the freshly stamped seq is the largest, so the
            // chain tail is always the right spot — O(1).
            bin->binTail_->nextInBin_ = ev;
            bin->binTail_ = ev;
        } else {
            // Salted: keep the chain ordered by mixSeq so dispatch
            // can keep popping from the front.
            const std::uint64_t key = mixSeq(ev->seq_, tieSalt_);
            if (key < mixSeq(bin->seq_, tieSalt_)) {
                ev->nextInBin_ = bin;
                ev->nextBin_ = bin->nextBin_;
                ev->binTail_ = bin->binTail_;
                bin->nextBin_ = nullptr;
                bin->binTail_ = nullptr;
                *link = ev;
            } else {
                Event *prev = bin;
                while (prev->nextInBin_ != nullptr &&
                       mixSeq(prev->nextInBin_->seq_, tieSalt_) < key)
                    prev = prev->nextInBin_;
                ev->nextInBin_ = prev->nextInBin_;
                prev->nextInBin_ = ev;
                if (ev->nextInBin_ == nullptr)
                    bin->binTail_ = ev;
            }
        }
    } else {
        // First event of a new (tick, priority) bin.
        ev->nextBin_ = bin;
        ev->binTail_ = ev;
        *link = ev;
    }
}

KLEB_HOT Event *
EventQueue::popHead()
{
    Event *ev = head_;
    if (ev->nextInBin_ != nullptr) {
        // Promote the chain successor to bin head.
        Event *succ = ev->nextInBin_;
        succ->nextBin_ = ev->nextBin_;
        succ->binTail_ = ev->binTail_;
        head_ = succ;
    } else {
        head_ = ev->nextBin_;
    }
    ev->nextBin_ = nullptr;
    ev->nextInBin_ = nullptr;
    ev->binTail_ = nullptr;
    return ev;
}

KLEB_HOT void
EventQueue::remove(Event *ev)
{
    Event **link = &head_;
    while (*link != nullptr) {
        Event *bin = *link;
        if (bin == ev) {
            if (ev->nextInBin_ != nullptr) {
                Event *succ = ev->nextInBin_;
                succ->nextBin_ = ev->nextBin_;
                succ->binTail_ = ev->binTail_;
                *link = succ;
            } else {
                *link = ev->nextBin_;
            }
            ev->nextBin_ = nullptr;
            ev->nextInBin_ = nullptr;
            ev->binTail_ = nullptr;
            return;
        }
        if (bin->when_ == ev->when_ && bin->priority_ == ev->priority_) {
            // Same key: ev must live in this bin's chain.
            Event *prev = bin;
            Event *cur = bin->nextInBin_;
            while (cur != nullptr && cur != ev) {
                prev = cur;
                cur = cur->nextInBin_;
            }
            panic_if(cur == nullptr,
                     "scheduled event missing from queue set");
            prev->nextInBin_ = ev->nextInBin_;
            if (bin->binTail_ == ev)
                bin->binTail_ = prev;
            ev->nextInBin_ = nullptr;
            return;
        }
        if (binBefore(ev, bin))
            break; // walked past where ev's bin would sit
        link = &bin->nextBin_;
    }
    panic("scheduled event missing from queue set");
}

KLEB_HOT void
EventQueue::schedule(Event *ev, Tick when)
{
    panic_if(ev == nullptr, "schedule of null event");
    panic_if(ev->scheduled(),
             "event '", ev->name(), "' already scheduled");
    panic_if(when < curTick_, "event '", ev->name(),
             "' scheduled in the past (", when, " < ", curTick_, ")");
    KLEB_ANNOTATE_ACCESS(&head_, "sim.EventQueue.pending");
    ev->when_ = when;
    ev->seq_ = nextSeq_++;
    ev->queue_ = this;
    insert(ev);
    ++size_;
    if (hasListeners()) {
        for (EventQueueListener *l : listeners_)
            l->onSchedule(*ev, curTick_);
    }
}

KLEB_HOT void
EventQueue::deschedule(Event *ev)
{
    panic_if(ev == nullptr, "deschedule of null event");
    panic_if(ev->queue_ != this,
             "event '", ev->name(), "' not scheduled on this queue");
    KLEB_ANNOTATE_ACCESS(&head_, "sim.EventQueue.pending");
    remove(ev);
    --size_;
    ev->queue_ = nullptr;
    if (hasListeners()) {
        for (EventQueueListener *l : listeners_)
            l->onDeschedule(*ev, curTick_);
    }
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    panic_if(ev == nullptr, "reschedule of null event");
    if (ev->scheduled())
        deschedule(ev);
    schedule(ev, when);
}

Event *
EventQueue::scheduleLambda(Tick when, InlineCallable fn,
                           int priority, std::string_view name)
{
    EventFunctionWrapper *ev;
    if (freeWrappers_ != nullptr) {
        ev = freeWrappers_;
        freeWrappers_ = ev->poolNext_;
        ev->poolNext_ = nullptr;
        ev->rearm(std::move(fn), name, priority);
    } else {
        ev = new EventFunctionWrapper(std::move(fn),
                                      std::string(name), priority);
        ev->pooled_ = true;
        ev->setAutoDelete(true);
    }
    schedule(ev, when);
    return ev;
}

void
EventQueue::cancelLambda(Event *ev)
{
    panic_if(ev == nullptr, "cancelLambda of null event");
    panic_if(!ev->autoDelete(),
             "cancelLambda on a caller-owned event");
    // A wrapper that rescheduled itself and was then descheduled (or
    // never re-entered a queue) is still owed its reclamation; only a
    // still-scheduled one needs removing first.
    if (ev->scheduled())
        deschedule(ev);
    releaseAuto(ev);
}

void
EventQueue::releaseAuto(Event *ev)
{
    if (ev->pooled_) {
        auto *w = static_cast<EventFunctionWrapper *>(ev);
        // Drop the captures now — exactly when delete used to run —
        // so RAII types in capture lists keep their release timing.
        w->fn_.reset();
        w->poolNext_ = freeWrappers_;
        freeWrappers_ = w;
    } else {
        delete ev;
    }
}

Tick
EventQueue::nextTick() const
{
    if (head_ == nullptr)
        return maxTick;
    return head_->when_;
}

KLEB_HOT void
EventQueue::dispatch(Event *ev)
{
    ev->queue_ = nullptr;
    curTick_ = ev->when_;
    ++processed_;
    if (hasListeners()) {
        for (EventQueueListener *l : listeners_)
            l->onDispatch(*ev, curTick_);
    }
    ev->process();
    if (ev->autoDelete() && !ev->scheduled())
        releaseAuto(ev);
}

KLEB_HOT bool
EventQueue::runOne()
{
    if (head_ == nullptr)
        return false;
    KLEB_ANNOTATE_ACCESS(&head_, "sim.EventQueue.pending");
    Event *ev = popHead();
    --size_;
    dispatch(ev);
    return true;
}

KLEB_HOT std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t n = 0;
    KLEB_ANNOTATE_ACCESS(&head_, "sim.EventQueue.pending");
    while (head_ != nullptr && head_->when_ <= limit) {
        Event *ev = popHead();
        --size_;
        dispatch(ev);
        ++n;
    }
    if (curTick_ < limit)
        curTick_ = limit;
    return n;
}

std::uint64_t
EventQueue::runAll()
{
    std::uint64_t n = 0;
    while (runOne())
        ++n;
    return n;
}

void
EventQueue::addListener(EventQueueListener *l)
{
    panic_if(l == nullptr, "null event-queue listener");
    for (EventQueueListener *existing : listeners_)
        panic_if(existing == l, "event-queue listener added twice");
    listeners_.push_back(l);
}

void
EventQueue::removeListener(EventQueueListener *l)
{
    for (auto it = listeners_.begin(); it != listeners_.end(); ++it) {
        if (*it == l) {
            listeners_.erase(it);
            return;
        }
    }
}

std::uint64_t
EventQueue::mixSeq(std::uint64_t seq, std::uint64_t salt)
{
    if (salt == 0)
        return seq;
    // splitmix64 finalizer: bijective, so distinct seqs never tie.
    std::uint64_t z = seq + salt * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

void
EventQueue::setTieBreakSalt(std::uint64_t salt)
{
    if (salt == tieSalt_)
        return;
    KLEB_ANNOTATE_ACCESS(&head_, "sim.EventQueue.pending");
    tieSalt_ = salt;
    // Bin membership depends only on (tick, priority), so the bin
    // list stands; only each bin's chain order follows the salt.
    // Re-link every chain in place by insertion sort on mixSeq —
    // at salt 0 that sorts by seq, restoring FIFO exactly.
    Event **link = &head_;
    while (*link != nullptr) {
        Event *oldHead = *link;
        Event *nextBin = oldHead->nextBin_;
        oldHead->nextBin_ = nullptr;
        oldHead->binTail_ = nullptr;
        Event *sorted = nullptr;
        Event *cur = oldHead;
        while (cur != nullptr) {
            Event *next = cur->nextInBin_;
            const std::uint64_t key = mixSeq(cur->seq_, salt);
            Event **pos = &sorted;
            while (*pos != nullptr &&
                   mixSeq((*pos)->seq_, salt) < key)
                pos = &(*pos)->nextInBin_;
            cur->nextInBin_ = *pos;
            *pos = cur;
            cur = next;
        }
        Event *tail = sorted;
        while (tail->nextInBin_ != nullptr)
            tail = tail->nextInBin_;
        sorted->nextBin_ = nextBin;
        sorted->binTail_ = tail;
        *link = sorted;
        link = &sorted->nextBin_;
    }
}

} // namespace klebsim::sim
