/**
 * @file
 * Parallel execution of independent bench trials.
 *
 * Every overhead table and accuracy figure is N trials x M tools of
 * fully independent simulated machines, so the benches fan trials
 * out across host cores.  The contract is strict determinism: a
 * trial never shares state with another trial (each builds a fresh
 * kernel::System with its own sim::EventQueue), per-trial seeds are
 * derived by a splitmix64 mixer from (baseSeed, stream, trialIndex)
 * rather than from any execution order, and results are committed
 * in trial order — so any --jobs value produces byte-identical
 * tables and CSVs.
 */

#ifndef KLEBSIM_BENCH_SUPPORT_TRIAL_POOL_HH
#define KLEBSIM_BENCH_SUPPORT_TRIAL_POOL_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "base/thread_safety.hh"

namespace klebsim::bench
{

/**
 * splitmix64 finalizer (Steele et al., "Fast Splittable Pseudorandom
 * Number Generators").  Bijective and well mixed; the single mixer
 * every per-trial seed derivation routes through.
 */
constexpr std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * The per-trial seed for trial @p trial of stream @p stream (e.g. a
 * ToolKind or sweep-point index) under @p base.  Unlike the old
 * `base + trial` derivation this decorrelates adjacent trials: each
 * (base, stream, trial) triple lands in an unrelated part of the
 * splitmix64 sequence instead of an adjacent PCG32 stream.
 */
constexpr std::uint64_t
trialSeed(std::uint64_t base, std::uint64_t stream,
          std::uint64_t trial)
{
    return splitmix64(splitmix64(splitmix64(base) ^ stream) ^
                      trial);
}

/**
 * One trial that died: its index and the exception text.  Returned
 * by the crash-tolerant tryMap()/runIndexedCatching() entry points
 * in ascending trial order.
 */
struct TrialFailure
{
    std::size_t trial = 0;
    std::string message;
};

/**
 * A worker-thread pool that runs independent trials.
 *
 * Trials are dispatched to workers in index order from a shared
 * atomic cursor; which worker runs which trial is scheduling noise
 * by design, because a trial's result may depend only on its index.
 * An exception thrown by a trial stops the dispatch of further
 * trials and is rethrown to the caller (the lowest-indexed failure
 * wins, matching what a sequential run would have hit first).
 *
 * The tryMap()/runIndexedCatching() variants instead survive worker
 * death: a trial that throws is recorded as a TrialFailure and every
 * other trial still runs to completion.  Because a trial's result
 * may depend only on its index, a dead shard can never perturb the
 * results of the surviving shards — fleet-scale callers rely on
 * this to turn a crashed machine into an explicit hole instead of a
 * lost run.
 */
class TrialPool
{
  public:
    /** @param jobs worker count; 0 means defaultJobs(). */
    explicit TrialPool(unsigned jobs = 0);

    /** Host parallelism (hardware_concurrency, at least 1). */
    static unsigned defaultJobs();

    unsigned jobs() const { return jobs_; }

    /**
     * Invoke @p fn(i) for every i in [0, count); results are
     * returned in trial order regardless of completion order.
     */
    template <typename Fn>
    auto
    map(std::size_t count, Fn &&fn)
        -> std::vector<std::invoke_result_t<Fn &, std::size_t>>
    {
        using T = std::invoke_result_t<Fn &, std::size_t>;
        std::vector<std::optional<T>> slots(count);
        runIndexed(count, [&](std::size_t i) {
            // Each slot belongs to exactly one trial index, so only
            // the worker side is instrumented: a double-dispatched
            // index shows up as two unlocked writers, while the
            // main thread's post-join harvest (a fork/join hand-off
            // the lockset discipline cannot express) stays silent.
            KLEB_ANNOTATE_ACCESS(&slots[i], "bench.TrialPool.slot");
            slots[i].emplace(fn(i));
        });
        std::vector<T> results;
        results.reserve(count);
        for (std::optional<T> &slot : slots)
            results.push_back(std::move(*slot));
        return results;
    }

    /**
     * Crash-tolerant map: invoke @p fn(i) for every i in
     * [0, count).  A trial that throws leaves its slot empty and is
     * reported in @p failures (ascending trial order) instead of
     * aborting the dispatch; all surviving slots hold exactly the
     * value a fully healthy run would have produced.
     */
    template <typename Fn>
    auto
    tryMap(std::size_t count, Fn &&fn,
           std::vector<TrialFailure> *failures)
        -> std::vector<
            std::optional<std::invoke_result_t<Fn &, std::size_t>>>
    {
        using T = std::invoke_result_t<Fn &, std::size_t>;
        std::vector<std::optional<T>> slots(count);
        runIndexedCatching(count, [&](std::size_t i) {
            KLEB_ANNOTATE_ACCESS(&slots[i], "bench.TrialPool.slot");
            slots[i].emplace(fn(i));
        }, failures);
        return slots;
    }

    /** Invoke @p fn(i) for every i in [0, count), no results. */
    void runIndexed(std::size_t count,
                    const std::function<void(std::size_t)> &fn);

    /**
     * Like runIndexed(), but a throwing trial is captured into
     * @p failures and the remaining trials still run.
     */
    void runIndexedCatching(
        std::size_t count,
        const std::function<void(std::size_t)> &fn,
        std::vector<TrialFailure> *failures);

  private:
    unsigned jobs_;
};

} // namespace klebsim::bench

#endif // KLEBSIM_BENCH_SUPPORT_TRIAL_POOL_HH
