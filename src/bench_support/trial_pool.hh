/**
 * @file
 * Parallel execution of independent bench trials and machine shards.
 *
 * Every overhead table and accuracy figure is N trials x M tools of
 * fully independent simulated machines, and every fleet run is
 * thousands of independent machine sims, so the benches and the
 * fleet runner fan that work out across host cores.  The contract is
 * strict determinism: a trial never shares state with another trial
 * (each builds a fresh kernel::System with its own sim::EventQueue),
 * per-trial seeds are derived by a splitmix64 mixer from
 * (baseSeed, stream, trialIndex) rather than from any execution
 * order, and results are committed in trial order — so any --jobs
 * value produces byte-identical tables, CSVs, and fleet digests.
 *
 * Execution model (machine-level parallelism, DESIGN.md section 17):
 * the pool owns persistent worker threads, spawned lazily on the
 * first parallel call and parked on a condition variable between
 * calls, so back-to-back runIndexed() invocations pay no thread
 * spawn/join cost (the BM_TrialPoolMap regression this replaced:
 * 48 us of pthread churn per 64-trial map at --jobs 4).  Work is
 * distributed as contiguous index shards over per-participant
 * work-stealing deques: each participant pops shards from the front
 * of its own deque (ascending index order) and, when empty, steals
 * from the back of a victim's deque.  The caller participates as
 * worker 0, so a pool whose workers are busy elsewhere — or a
 * single-core host — degrades to the caller draining every deque
 * itself with nothing but uncontended mutex traffic on top of the
 * sequential path.  Which participant runs which shard is
 * scheduling noise by design; no result may depend on it.
 */

#ifndef KLEBSIM_BENCH_SUPPORT_TRIAL_POOL_HH
#define KLEBSIM_BENCH_SUPPORT_TRIAL_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "base/thread_safety.hh"

namespace klebsim::bench
{

/**
 * splitmix64 finalizer (Steele et al., "Fast Splittable Pseudorandom
 * Number Generators").  Bijective and well mixed; the single mixer
 * every per-trial seed derivation routes through.
 */
constexpr std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * The per-trial seed for trial @p trial of stream @p stream (e.g. a
 * ToolKind or sweep-point index) under @p base.  Unlike the old
 * `base + trial` derivation this decorrelates adjacent trials: each
 * (base, stream, trial) triple lands in an unrelated part of the
 * splitmix64 sequence instead of an adjacent PCG32 stream.
 */
constexpr std::uint64_t
trialSeed(std::uint64_t base, std::uint64_t stream,
          std::uint64_t trial)
{
    return splitmix64(splitmix64(splitmix64(base) ^ stream) ^
                      trial);
}

/**
 * One trial that died: its index and the exception text.  Returned
 * by the crash-tolerant tryMap()/runIndexedCatching() entry points
 * in ascending trial order.
 */
struct TrialFailure
{
    std::size_t trial = 0;
    std::string message;
};

/**
 * A persistent worker-thread pool that runs independent trials.
 *
 * Trials are executed shard-wise off per-participant work-stealing
 * deques (see the file comment); which worker runs which trial is
 * scheduling noise by design, because a trial's result may depend
 * only on its index.  An exception thrown by a trial suppresses the
 * execution of all higher-indexed trials and is rethrown to the
 * caller once every lower-indexed trial has finished — so the
 * rethrown failure is exactly the one a sequential run would have
 * hit first, independent of how shards were stolen.
 *
 * The tryMap()/runIndexedCatching() variants instead survive worker
 * death: a trial that throws is recorded as a TrialFailure and every
 * other trial still runs to completion.  Because a trial's result
 * may depend only on its index, a dead shard can never perturb the
 * results of the surviving shards — fleet-scale callers rely on
 * this to turn a crashed machine into an explicit hole instead of a
 * lost run.
 *
 * A pool may be reused for any number of runs; one run executes at
 * a time (calls from concurrent threads are serialized by a mutex).
 * Workers are joined in the destructor.
 */
class TrialPool
{
  public:
    /** @param jobs worker count; 0 means defaultJobs(). */
    explicit TrialPool(unsigned jobs = 0);

    TrialPool(const TrialPool &) = delete;
    TrialPool &operator=(const TrialPool &) = delete;

    ~TrialPool();

    /** Host parallelism (hardware_concurrency, at least 1). */
    static unsigned defaultJobs();

    unsigned jobs() const { return jobs_; }

    /**
     * Invoke @p fn(i) for every i in [0, count); results are
     * returned in trial order regardless of completion order.
     */
    template <typename Fn>
    auto
    map(std::size_t count, Fn &&fn)
        -> std::vector<std::invoke_result_t<Fn &, std::size_t>>
    {
        using T = std::invoke_result_t<Fn &, std::size_t>;
        std::vector<std::optional<T>> slots(count);
        runIndexed(count, [&](std::size_t i) {
            // Each slot belongs to exactly one trial index, so only
            // the worker side is instrumented: a double-dispatched
            // index shows up as two unlocked writers, while the
            // main thread's post-join harvest (a fork/join hand-off
            // the lockset discipline cannot express) stays silent.
            KLEB_ANNOTATE_ACCESS(&slots[i], "bench.TrialPool.slot");
            slots[i].emplace(fn(i));
        });
        std::vector<T> results;
        results.reserve(count);
        for (std::optional<T> &slot : slots)
            results.push_back(std::move(*slot));
        return results;
    }

    /**
     * Crash-tolerant map: invoke @p fn(i) for every i in
     * [0, count).  A trial that throws leaves its slot empty and is
     * reported in @p failures (ascending trial order) instead of
     * aborting the dispatch; all surviving slots hold exactly the
     * value a fully healthy run would have produced.
     */
    template <typename Fn>
    auto
    tryMap(std::size_t count, Fn &&fn,
           std::vector<TrialFailure> *failures)
        -> std::vector<
            std::optional<std::invoke_result_t<Fn &, std::size_t>>>
    {
        using T = std::invoke_result_t<Fn &, std::size_t>;
        std::vector<std::optional<T>> slots(count);
        runIndexedCatching(count, [&](std::size_t i) {
            KLEB_ANNOTATE_ACCESS(&slots[i], "bench.TrialPool.slot");
            slots[i].emplace(fn(i));
        }, failures);
        return slots;
    }

    /** Invoke @p fn(i) for every i in [0, count), no results. */
    void runIndexed(std::size_t count,
                    const std::function<void(std::size_t)> &fn);

    /**
     * Like runIndexed(), but a throwing trial is captured into
     * @p failures and the remaining trials still run.
     */
    void runIndexedCatching(
        std::size_t count,
        const std::function<void(std::size_t)> &fn,
        std::vector<TrialFailure> *failures);

  private:
    /** A contiguous run of trial indices, the unit of stealing. */
    struct Shard
    {
        std::size_t begin = 0;
        std::size_t end = 0;
    };

    /**
     * One participant's shard deque.  The owner pops from the front
     * (ascending index order); thieves steal from the back (the
     * indices the owner would reach last).  A plain mutex per deque
     * keeps the protocol obvious and machine-checkable; the lock is
     * taken once per shard, not per trial, so it is nowhere near
     * the trial hot path.
     */
    struct ShardDeque
    {
        TrackedMutex mutex{"bench.TrialPool.deque"};
        std::deque<Shard> shards KLEB_GUARDED_BY(mutex);
    };

    /** Shared state of the in-flight run. */
    struct Run
    {
        const std::function<void(std::size_t)> *fn = nullptr;

        /** Capture failures instead of suppressing later trials. */
        bool catching = false;

        /** Shards not yet fully executed (run done at zero). */
        std::atomic<std::size_t> shardsLeft{0};

        /**
         * Lowest failing trial index so far; trials at or above it
         * are suppressed in non-catching mode.  ~0 = no failure.
         */
        std::atomic<std::size_t> failureFloor{~std::size_t{0}};

        TrackedMutex failMutex{"bench.TrialPool.error"};
        std::exception_ptr firstError KLEB_GUARDED_BY(failMutex);
        std::size_t firstTrial KLEB_GUARDED_BY(failMutex) =
            ~std::size_t{0};
        std::vector<TrialFailure> failures
            KLEB_GUARDED_BY(failMutex);
    };

    /** Dispatch one run across the participants. */
    void run(std::size_t count,
             const std::function<void(std::size_t)> &fn,
             std::vector<TrialFailure> *failures, bool catching);

    /** Spawn the persistent workers if not yet running. */
    void ensureWorkers();

    /** Park/wake loop each persistent worker runs. */
    void workerLoop(unsigned self);

    /** Pop own shards, then steal, until every deque is empty. */
    void participate(unsigned self);

    /** Execute one shard's trials under the run's failure rules. */
    void executeShard(const Shard &shard);

    unsigned jobs_;

    /** Worker 0 is the caller; deques_[1..] feed the threads. */
    std::vector<ShardDeque> deques_;
    std::vector<std::thread> threads_;

    /** Serializes run() against concurrent callers. */
    std::mutex runMutex_;

    /** @{ Park/wake signalling (epoch bumps on each new run). */
    std::mutex wakeMutex_;
    std::condition_variable wakeCv_;
    std::uint64_t epoch_ = 0;
    bool shutdown_ = false;
    /** @} */

    /** @{ Completion signalling (caller waits for shardsLeft==0). */
    std::mutex doneMutex_;
    std::condition_variable doneCv_;
    /** @} */

    Run job_;
};

} // namespace klebsim::bench

#endif // KLEBSIM_BENCH_SUPPORT_TRIAL_POOL_HH
