#include "trial_pool.hh"

#include <atomic>
#include <exception>
#include <thread>

namespace klebsim::bench
{

TrialPool::TrialPool(unsigned jobs)
    : jobs_(jobs ? jobs : defaultJobs())
{
}

unsigned
TrialPool::defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

void
TrialPool::runIndexed(std::size_t count,
                      const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;

    const std::size_t workers =
        std::min<std::size_t>(jobs_, count);
    if (workers <= 1) {
        // Sequential reference path: no threads, exceptions
        // propagate directly from the failing trial.
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> cursor{0};
    std::atomic<bool> failed{false};

    // The failure slot is the only cross-worker shared state the
    // pool itself owns; its lock discipline is machine-checked both
    // statically (KLEB_GUARDED_BY under -Wthread-safety) and at
    // runtime (TrackedMutex reports to the lockset checker).
    struct FailureSlot
    {
        TrackedMutex mutex{"bench.TrialPool.error"};
        std::exception_ptr first KLEB_GUARDED_BY(mutex);
        std::size_t firstTrial KLEB_GUARDED_BY(mutex) =
            ~std::size_t{0};
    } failure;

    auto worker = [&] {
        while (!failed.load(std::memory_order_acquire)) {
            std::size_t i =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            try {
                fn(i);
            } catch (...) {
                TrackedLock lock(failure.mutex);
                // Keep the lowest-indexed failure: that is the one
                // a sequential run would have surfaced.
                if (i < failure.firstTrial) {
                    failure.firstTrial = i;
                    failure.first = std::current_exception();
                }
                failed.store(true, std::memory_order_release);
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
        threads.emplace_back(worker);
    for (std::thread &t : threads)
        t.join();

    std::exception_ptr first_error;
    {
        TrackedLock lock(failure.mutex);
        first_error = failure.first;
    }
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace klebsim::bench
