#include "trial_pool.hh"

#include <algorithm>
#include <atomic>
#include <exception>

namespace klebsim::bench
{

namespace
{

/** Render the in-flight exception as a one-line message. */
std::string
describeCurrentException()
{
    try {
        throw;
    } catch (const std::exception &e) {
        return e.what();
    } catch (...) {
        return "non-std::exception thrown";
    }
}

} // anonymous namespace

TrialPool::TrialPool(unsigned jobs)
    : jobs_(jobs ? jobs : defaultJobs()), deques_(jobs_)
{
}

TrialPool::~TrialPool()
{
    {
        std::lock_guard<std::mutex> lock(wakeMutex_);
        shutdown_ = true;
    }
    wakeCv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

unsigned
TrialPool::defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

void
TrialPool::runIndexed(std::size_t count,
                      const std::function<void(std::size_t)> &fn)
{
    run(count, fn, nullptr, /*catching=*/false);
}

void
TrialPool::runIndexedCatching(
    std::size_t count, const std::function<void(std::size_t)> &fn,
    std::vector<TrialFailure> *failures)
{
    run(count, fn, failures, /*catching=*/true);
}

void
TrialPool::run(std::size_t count,
               const std::function<void(std::size_t)> &fn,
               std::vector<TrialFailure> *failures, bool catching)
{
    if (count == 0)
        return;

    if (jobs_ <= 1 || count == 1) {
        // Sequential reference path: no threads, exceptions
        // propagate directly from the failing trial (stopping the
        // loop there), or — catching — are recorded and skipped.
        for (std::size_t i = 0; i < count; ++i) {
            if (!catching) {
                fn(i);
                continue;
            }
            try {
                fn(i);
            } catch (...) {
                if (failures)
                    failures->push_back(
                        {i, describeCurrentException()});
            }
        }
        return;
    }

    std::lock_guard<std::mutex> serialize(runMutex_);
    ensureWorkers();

    // Shard [0, count) into contiguous runs, several per
    // participant so stealing can rebalance unequal trial costs.
    // The split is a pure function of (count, jobs_): which shard a
    // trial lands in never depends on scheduling, and a trial's
    // result may depend only on its index anyway.
    const std::size_t shardSize =
        std::max<std::size_t>(1, count / (std::size_t{jobs_} * 4));
    const std::size_t numShards =
        (count + shardSize - 1) / shardSize;

    job_.fn = &fn;
    job_.catching = catching;
    job_.failureFloor.store(~std::size_t{0},
                            std::memory_order_relaxed);
    {
        TrackedLock lock(job_.failMutex);
        job_.firstError = nullptr;
        job_.firstTrial = ~std::size_t{0};
        job_.failures.clear();
    }
    job_.shardsLeft.store(numShards, std::memory_order_relaxed);

    // Deal shards round-robin: participant p owns shards p, p+P,
    // ..., pushed front-to-back in ascending index order.  Pushing
    // under each deque's mutex publishes the job_ fields written
    // above to whichever thread later pops the shard.
    for (std::size_t s = 0; s < numShards; ++s) {
        const std::size_t begin = s * shardSize;
        const std::size_t end = std::min(begin + shardSize, count);
        ShardDeque &dq = deques_[s % jobs_];
        TrackedLock lock(dq.mutex);
        dq.shards.push_back(Shard{begin, end});
    }

    // Wake the parked workers, then drain shards as worker 0.
    {
        std::lock_guard<std::mutex> lock(wakeMutex_);
        ++epoch_;
    }
    wakeCv_.notify_all();
    participate(0);

    // Workers may still be running stolen shards after every deque
    // empties; the run is over once every shard has executed.
    {
        std::unique_lock<std::mutex> lock(doneMutex_);
        doneCv_.wait(lock, [&] {
            return job_.shardsLeft.load(
                       std::memory_order_acquire) == 0;
        });
    }

    TrackedLock lock(job_.failMutex);
    if (catching) {
        // Completion order is scheduling noise; report failures in
        // trial order so the caller's view is jobs-invariant.
        std::sort(job_.failures.begin(), job_.failures.end(),
                  [](const TrialFailure &a, const TrialFailure &b) {
                      return a.trial < b.trial;
                  });
        if (failures)
            failures->insert(failures->end(),
                             job_.failures.begin(),
                             job_.failures.end());
        job_.failures.clear();
    } else if (job_.firstError) {
        std::exception_ptr first_error = job_.firstError;
        job_.firstError = nullptr;
        std::rethrow_exception(first_error);
    }
}

void
TrialPool::ensureWorkers()
{
    if (!threads_.empty())
        return;
    threads_.reserve(jobs_ - 1);
    for (unsigned w = 1; w < jobs_; ++w)
        threads_.emplace_back([this, w] { workerLoop(w); });
}

void
TrialPool::workerLoop(unsigned self)
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(wakeMutex_);
            wakeCv_.wait(lock, [&] {
                return shutdown_ || epoch_ != seen;
            });
            if (shutdown_)
                return;
            seen = epoch_;
        }
        participate(self);
    }
}

void
TrialPool::participate(unsigned self)
{
    for (;;) {
        Shard shard;
        bool found = false;

        // Own deque first, front pop: ascending index order.
        {
            ShardDeque &own = deques_[self];
            TrackedLock lock(own.mutex);
            if (!own.shards.empty()) {
                shard = own.shards.front();
                own.shards.pop_front();
                found = true;
            }
        }

        // Then steal from the back of the first non-empty victim —
        // the indices its owner would reach last, keeping the
        // victim's front end uncontended.
        for (unsigned v = 1; v < jobs_ && !found; ++v) {
            ShardDeque &victim = deques_[(self + v) % jobs_];
            TrackedLock lock(victim.mutex);
            if (!victim.shards.empty()) {
                shard = victim.shards.back();
                victim.shards.pop_back();
                found = true;
            }
        }

        if (!found)
            return;

        executeShard(shard);

        if (job_.shardsLeft.fetch_sub(
                1, std::memory_order_acq_rel) == 1) {
            // Last shard done.  Take doneMutex_ (empty critical
            // section) so the caller's predicate check and our
            // notify cannot interleave into a lost wakeup.
            std::lock_guard<std::mutex> lock(doneMutex_);
            doneCv_.notify_all();
        }
    }
}

void
TrialPool::executeShard(const Shard &shard)
{
    const std::function<void(std::size_t)> &fn = *job_.fn;
    for (std::size_t i = shard.begin; i < shard.end; ++i) {
        if (!job_.catching &&
            i >= job_.failureFloor.load(std::memory_order_relaxed))
            continue;
        try {
            fn(i);
        } catch (...) {
            if (job_.catching) {
                TrackedLock lock(job_.failMutex);
                job_.failures.push_back(
                    {i, describeCurrentException()});
                continue;
            }
            // Suppress trials at or above the failing index but
            // keep every lower one running: whichever recorded
            // failure ends up lowest is exactly the one a
            // sequential run would have surfaced first, no matter
            // how the shards were stolen.
            std::size_t floor =
                job_.failureFloor.load(std::memory_order_relaxed);
            while (i < floor &&
                   !job_.failureFloor.compare_exchange_weak(
                       floor, i, std::memory_order_relaxed)) {
            }
            TrackedLock lock(job_.failMutex);
            if (i < job_.firstTrial) {
                job_.firstTrial = i;
                job_.firstError = std::current_exception();
            }
        }
    }
}

} // namespace klebsim::bench
