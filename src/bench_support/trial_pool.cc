#include "trial_pool.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

namespace klebsim::bench
{

TrialPool::TrialPool(unsigned jobs)
    : jobs_(jobs ? jobs : defaultJobs())
{
}

unsigned
TrialPool::defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

void
TrialPool::runIndexed(std::size_t count,
                      const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;

    const std::size_t workers =
        std::min<std::size_t>(jobs_, count);
    if (workers <= 1) {
        // Sequential reference path: no threads, exceptions
        // propagate directly from the failing trial.
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> cursor{0};
    std::atomic<bool> failed{false};

    // The failure slot is the only cross-worker shared state the
    // pool itself owns; its lock discipline is machine-checked both
    // statically (KLEB_GUARDED_BY under -Wthread-safety) and at
    // runtime (TrackedMutex reports to the lockset checker).
    struct FailureSlot
    {
        TrackedMutex mutex{"bench.TrialPool.error"};
        std::exception_ptr first KLEB_GUARDED_BY(mutex);
        std::size_t firstTrial KLEB_GUARDED_BY(mutex) =
            ~std::size_t{0};
    } failure;

    auto worker = [&] {
        while (!failed.load(std::memory_order_acquire)) {
            std::size_t i =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            try {
                fn(i);
            } catch (...) {
                TrackedLock lock(failure.mutex);
                // Keep the lowest-indexed failure: that is the one
                // a sequential run would have surfaced.
                if (i < failure.firstTrial) {
                    failure.firstTrial = i;
                    failure.first = std::current_exception();
                }
                failed.store(true, std::memory_order_release);
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
        threads.emplace_back(worker);
    for (std::thread &t : threads)
        t.join();

    std::exception_ptr first_error;
    {
        TrackedLock lock(failure.mutex);
        first_error = failure.first;
    }
    if (first_error)
        std::rethrow_exception(first_error);
}

namespace
{

/** Render the in-flight exception as a one-line message. */
std::string
describeCurrentException()
{
    try {
        throw;
    } catch (const std::exception &e) {
        return e.what();
    } catch (...) {
        return "non-std::exception thrown";
    }
}

} // anonymous namespace

void
TrialPool::runIndexedCatching(
    std::size_t count, const std::function<void(std::size_t)> &fn,
    std::vector<TrialFailure> *failures)
{
    if (count == 0)
        return;

    const std::size_t workers =
        std::min<std::size_t>(jobs_, count);
    if (workers <= 1) {
        for (std::size_t i = 0; i < count; ++i) {
            try {
                fn(i);
            } catch (...) {
                if (failures)
                    failures->push_back(
                        {i, describeCurrentException()});
            }
        }
        return;
    }

    std::atomic<std::size_t> cursor{0};

    struct FailureLog
    {
        TrackedMutex mutex{"bench.TrialPool.failures"};
        std::vector<TrialFailure> entries KLEB_GUARDED_BY(mutex);
    } log;

    auto worker = [&] {
        for (;;) {
            std::size_t i =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            try {
                fn(i);
            } catch (...) {
                TrackedLock lock(log.mutex);
                log.entries.push_back(
                    {i, describeCurrentException()});
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
        threads.emplace_back(worker);
    for (std::thread &t : threads)
        t.join();

    if (failures) {
        TrackedLock lock(log.mutex);
        // Completion order is scheduling noise; report failures in
        // trial order so the caller's view is jobs-invariant.
        std::sort(log.entries.begin(), log.entries.end(),
                  [](const TrialFailure &a, const TrialFailure &b) {
                      return a.trial < b.trial;
                  });
        failures->insert(failures->end(), log.entries.begin(),
                         log.entries.end());
    }
}

} // namespace klebsim::bench
