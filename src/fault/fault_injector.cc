#include "fault_injector.hh"

#include <algorithm>
#include <memory>
#include <vector>

#include "base/str.hh"
#include "hw/pmu.hh"
#include "kernel/module.hh"
#include "kernel/process.hh"
#include "kernel/system.hh"

namespace klebsim::fault
{

namespace
{

/** FNV-1a, for salting per-timer streams by timer name. */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // anonymous namespace

FaultInjector::FaultInjector(FaultPlan plan,
                             std::uint64_t machine_seed)
    : plan_(plan)
{
    // The base stream mixes the plan seed with the machine seed so
    // per-trial machines get distinct schedules; each fault point
    // then forks its own stream so hook types never share a draw
    // sequence (enabling one fault cannot re-phase another).
    Random base(plan_.seed ^ (machine_seed * 0x9e3779b97f4a7c15ULL),
                0xfa017ULL);
    for (int i = 0; i < numFaultPoints; ++i)
        streams_[i] = base.fork(0xF417 + static_cast<std::uint64_t>(i));
}

hw::TimerDevice::FaultHook
FaultInjector::makeTimerHook(const std::string &name, CoreId core)
{
    // One stream per timer, salted by its stable name, so the
    // schedule does not depend on timer creation order.
    auto rng = std::make_shared<Random>(
        stream(FaultPoint::timerMiss)
            .fork(fnv1a(name) + static_cast<std::uint64_t>(core)));
    return [this, rng](Tick delay) -> Tick {
        Tick extra = 0;
        if (plan_.timerMissProb > 0.0 &&
            rng->chance(plan_.timerMissProb)) {
            inject(FaultPoint::timerMiss);
            extra += delay;
        }
        if (plan_.timerSpikeProb > 0.0 &&
            rng->chance(plan_.timerSpikeProb)) {
            inject(FaultPoint::timerSpike);
            extra += plan_.timerSpikeLateness;
        }
        return extra;
    };
}

void
FaultInjector::attach(kernel::System &sys)
{
    kernel::Kernel &k = sys.kernel();

    if (plan_.counterWidth != 0) {
        for (int i = 0; i < k.numCores(); ++i)
            k.core(i).pmu().setCounterWidth(plan_.counterWidth);
        inject(FaultPoint::counterWidth);
    }

    if (plan_.timerFaultsActive()) {
        k.setTimerFaultFactory(
            [this](const std::string &name, CoreId core) {
                return makeTimerHook(name, core);
            });
    }

    if (plan_.chardevFaultsActive()) {
        k.setChardevFaultHook(
            [this](const std::string &dev, bool is_read) -> long {
                (void)dev;
                if (is_read) {
                    if (plan_.readFailProb > 0.0 &&
                        stream(FaultPoint::readFail)
                            .chance(plan_.readFailProb)) {
                        inject(FaultPoint::readFail);
                        return kernel::err::eagain;
                    }
                } else {
                    if (plan_.ioctlFailProb > 0.0 &&
                        stream(FaultPoint::ioctlFail)
                            .chance(plan_.ioctlFailProb)) {
                        inject(FaultPoint::ioctlFail);
                        return kernel::err::eagain;
                    }
                }
                return 0;
            });
    }

    if (plan_.pmuContendProb > 0.0) {
        k.setPmuContendFaultHook([this](CoreId core) -> bool {
            (void)core;
            if (!stream(FaultPoint::pmuContend)
                     .chance(plan_.pmuContendProb))
                return false;
            inject(FaultPoint::pmuContend);
            return true;
        });
    }

    if (plan_.moduleInitFails > 0) {
        k.setModuleLoadFaultHook(
            [this](const std::string &dev_path) {
                (void)dev_path;
                if (loadsFailed_ >= plan_.moduleInitFails)
                    return false;
                ++loadsFailed_;
                inject(FaultPoint::moduleInitFail);
                return true;
            });
    }
}

std::function<Tick()>
FaultInjector::readerStallHook()
{
    if (!plan_.readerStallActive())
        return nullptr;
    return [this]() -> Tick {
        if (plan_.readerStallProb < 1.0 &&
            !stream(FaultPoint::readerStall)
                 .chance(plan_.readerStallProb))
            return 0;
        inject(FaultPoint::readerStall);
        return plan_.readerStall;
    };
}

void
FaultInjector::scheduleTargetCrash(kernel::System &sys,
                                   kernel::Process *target)
{
    if (plan_.targetCrashAt == 0 || target == nullptr)
        return;
    Tick when = std::max(sys.now() + 1, plan_.targetCrashAt);
    kernel::Kernel &k = sys.kernel();
    sys.eq().scheduleLambda(
        when,
        [this, &k, target] {
            // Crash only a process that actually started and has
            // not already finished.
            if (target->state() == kernel::ProcState::zombie ||
                target->state() == kernel::ProcState::created)
                return;
            inject(FaultPoint::targetCrash);
            k.kill(target);
        },
        sim::Event::defaultPriority, "fault-target-crash");
}

void
FaultInjector::scheduleControllerCrash(kernel::System &sys,
                                       kernel::Process *controller)
{
    if (plan_.controllerCrashAt == 0 || controller == nullptr)
        return;
    Tick when = std::max(sys.now() + 1, plan_.controllerCrashAt);
    kernel::Kernel &k = sys.kernel();
    sys.eq().scheduleLambda(
        when,
        [this, &k, controller] {
            if (controller->state() == kernel::ProcState::zombie ||
                controller->state() == kernel::ProcState::created)
                return;
            inject(FaultPoint::controllerCrash);
            k.kill(controller);
        },
        sim::Event::defaultPriority, "fault-controller-crash");
}

void
FaultInjector::scheduleCpuHotplug(kernel::System &sys)
{
    if (!plan_.hotplugActive())
        return;
    kernel::Kernel &k = sys.kernel();
    CoreId core = static_cast<CoreId>(plan_.cpuOfflineCore);
    if (core < 0 || core >= k.numCores())
        return;
    if (plan_.cpuOfflineAt != 0) {
        Tick when = std::max(sys.now() + 1, plan_.cpuOfflineAt);
        sys.eq().scheduleLambda(
            when,
            [this, &k, core] {
                if (k.coreOnline(core) && k.offlineCore(core))
                    inject(FaultPoint::cpuOffline);
            },
            sim::Event::defaultPriority, "fault-cpu-offline");
    }
    if (plan_.cpuOnlineAt != 0) {
        Tick when = std::max(sys.now() + 1, plan_.cpuOnlineAt);
        sys.eq().scheduleLambda(
            when,
            [this, &k, core] {
                if (!k.coreOnline(core)) {
                    k.onlineCore(core);
                    inject(FaultPoint::cpuOnline);
                }
            },
            sim::Event::defaultPriority, "fault-cpu-online");
    }
}

void
FaultInjector::migrateTick(kernel::System &sys,
                           kernel::Process *target)
{
    // The run is over once the target exits: stop rescheduling.
    if (target->state() == kernel::ProcState::zombie)
        return;
    kernel::Kernel &k = sys.kernel();
    CoreId from = target->affinity();
    CoreId to = invalidCore;
    int n = k.numCores();
    for (int step = 1; step < n; ++step) {
        CoreId c = static_cast<CoreId>(
            (from + static_cast<CoreId>(step)) % n);
        if (k.coreOnline(c)) {
            to = c;
            break;
        }
    }
    if (to != invalidCore) {
        inject(FaultPoint::taskMigrate);
        k.migrate(target, to);
    }
    sys.eq().scheduleLambda(
        sys.now() + plan_.taskMigrateEvery,
        [this, &sys, target] { migrateTick(sys, target); },
        sim::Event::defaultPriority, "fault-task-migrate");
}

void
FaultInjector::scheduleTaskMigration(kernel::System &sys,
                                     kernel::Process *target)
{
    if (plan_.taskMigrateEvery == 0 || target == nullptr)
        return;
    sys.eq().scheduleLambda(
        std::max(sys.now() + 1, sys.now() + plan_.taskMigrateEvery),
        [this, &sys, target] { migrateTick(sys, target); },
        sim::Event::defaultPriority, "fault-task-migrate");
}

std::function<Tick()>
FaultInjector::controllerHangHook(kernel::System &sys)
{
    if (plan_.controllerHangAt == 0)
        return nullptr;
    return [this, &sys]() -> Tick {
        if (hangFired_ || sys.now() < plan_.controllerHangAt)
            return 0;
        hangFired_ = true;
        inject(FaultPoint::controllerHang);
        // Far beyond any heartbeat timeout: the controller wedges
        // until the supervisor kills it.
        return secToTicks(30);
    };
}

std::function<bool()>
FaultInjector::setPeriodFailHook()
{
    if (plan_.setPeriodFailProb <= 0.0)
        return nullptr;
    return [this]() -> bool {
        if (!stream(FaultPoint::setPeriodFail)
                 .chance(plan_.setPeriodFailProb))
            return false;
        inject(FaultPoint::setPeriodFail);
        return true;
    };
}

std::function<void(kernel::Kernel &, kernel::Process &)>
FaultInjector::reprogramCrashHook(kernel::System &sys)
{
    if (plan_.reprogramCrashNth <= 0)
        return nullptr;
    return [this, &sys](kernel::Kernel &k, kernel::Process &self) {
        ++reprogramsSeen_;
        if (reprogramsSeen_ != plan_.reprogramCrashNth)
            return;
        inject(FaultPoint::reprogramCrash);
        kernel::Process *victim = &self;
        // One tick later: the kill races the SET_PERIOD syscall
        // itself, so (deterministically, per seed) the change may
        // or may not have landed when the controller dies — exactly
        // the seam recovery must balance.
        sys.eq().scheduleLambda(
            k.now() + 1,
            [&k, victim] {
                if (victim->state() == kernel::ProcState::zombie ||
                    victim->state() == kernel::ProcState::created)
                    return;
                k.kill(victim);
            },
            sim::Event::defaultPriority, "fault-reprogram-crash");
    };
}

void
FaultInjector::corruptLog(std::vector<std::uint8_t> &bytes,
                          std::size_t protect_prefix)
{
    if (bytes.size() <= protect_prefix)
        return;
    if (plan_.logTornTailBytes > 0) {
        std::size_t body = bytes.size() - protect_prefix;
        std::size_t cut = std::min<std::size_t>(
            plan_.logTornTailBytes, body);
        bytes.resize(bytes.size() - cut);
        inject(FaultPoint::logTornTail);
    }
    for (int i = 0; i < plan_.logBitflips; ++i) {
        std::size_t body = bytes.size() - protect_prefix;
        if (body == 0)
            break;
        Random &rng = stream(FaultPoint::logBitflip);
        std::size_t pos = protect_prefix +
            static_cast<std::size_t>(
                rng.below(static_cast<std::uint32_t>(body)));
        bytes[pos] ^= static_cast<std::uint8_t>(1u << rng.below(8));
        inject(FaultPoint::logBitflip);
    }
}

std::uint64_t
FaultInjector::totalInjected() const
{
    std::uint64_t total = 0;
    for (std::uint64_t n : injected_)
        total += n;
    return total;
}

std::string
FaultInjector::injectionSummary() const
{
    std::vector<std::string> parts;
    for (int i = 0; i < numFaultPoints; ++i) {
        if (injected_[i] == 0)
            continue;
        parts.push_back(csprintf(
            "%s=%llu", faultPointKey(static_cast<FaultPoint>(i)),
            (unsigned long long)injected_[i]));
    }
    return parts.empty() ? "none" : join(parts, " ");
}

} // namespace klebsim::fault
