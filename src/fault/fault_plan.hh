/**
 * @file
 * Deterministic fault-injection plans.
 *
 * A FaultPlan is a small, declarative description of the adverse
 * conditions one run should experience: timer misses and coalescing
 * spikes, narrowed PMU counter widths (forcing wraps), transient
 * chardev failures, stalled user-space readers, module load
 * failures, and a monitored-process crash.  Plans parse from a
 * compact spec string so benches and tests can name a scenario in
 * one line:
 *
 *   "pmu.width=24;ioctl.fail=0.2;reader.stall=5ms;target.crash=2ms"
 *
 * Determinism guarantee: a FaultPlan holds no randomness itself.
 * The FaultInjector derives one forked PCG32 stream per hook point
 * from (plan seed, machine seed), so the same seed and the same plan
 * always produce the identical fault schedule — chaos runs replay
 * bit-for-bit under the DeterminismHarness (DESIGN.md section 10).
 */

#ifndef KLEBSIM_FAULT_FAULT_PLAN_HH
#define KLEBSIM_FAULT_FAULT_PLAN_HH

#include <cstdint>
#include <string>

#include "base/types.hh"

namespace klebsim::fault
{

/**
 * One hook point per injectable fault type.  The list is generated
 * from fault_points.def — the central table the fault-hook-coverage
 * lint rule checks call sites against.
 */
enum class FaultPoint : int
{
#define KLEB_FAULT_POINT(name, key) name,
#include "fault_points.def"
#undef KLEB_FAULT_POINT
};

/** Number of registered fault points. */
constexpr int numFaultPoints =
#define KLEB_FAULT_POINT(name, key) +1
#include "fault_points.def"
#undef KLEB_FAULT_POINT
    ;

/** Spec-string key for @p point (the table's second column). */
const char *faultPointKey(FaultPoint point);

/** Enumerator name for @p point ("timerMiss", ...). */
const char *faultPointName(FaultPoint point);

/**
 * Declarative description of the faults one run experiences.  All
 * rates default to "off"; a default-constructed plan is inert and
 * attaching it is guaranteed to perturb nothing (zero-cost when
 * disabled: no hook installs, no RNG draws).
 */
struct FaultPlan
{
    /** Base seed of the fault schedule (spec key "seed"). */
    std::uint64_t seed = 0;

    /**
     * Probability that a timer expiry misses its tick entirely and
     * slides a full programmed delay late (interrupt lost and
     * recovered on the next firing opportunity).
     */
    double timerMissProb = 0.0;

    /** Probability of an injected coalescing spike per expiry. */
    double timerSpikeProb = 0.0;

    /** Lateness added by an injected spike ("timer.spike.us"). */
    Tick timerSpikeLateness = usToTicks(50);

    /**
     * Effective PMU counter width in bits (8..48); 0 leaves the
     * architectural 48-bit width.  Narrow widths force counter
     * wraps that the monitoring tools must detect and correct.
     */
    int counterWidth = 0;

    /** Probability an ioctl on a chardev transiently fails EAGAIN. */
    double ioctlFailProb = 0.0;

    /** Probability a read() on a chardev transiently fails EAGAIN. */
    double readFailProb = 0.0;

    /** Extra stall added to a reader's drain sleep when it hits. */
    Tick readerStall = 0;

    /** Probability a drain cycle is stalled ("reader.stall.p"). */
    double readerStallProb = 1.0;

    /** The first N module loads fail (simulated insmod failure). */
    int moduleInitFails = 0;

    /** Absolute sim time to crash the monitored process; 0 = off. */
    Tick targetCrashAt = 0;

    /** Absolute sim time to crash the K-LEB controller; 0 = off. */
    Tick controllerCrashAt = 0;

    /**
     * Absolute sim time after which the controller's next drain
     * sleep wedges (a hung reader the supervisor must kill);
     * 0 = off.  One-shot per run.
     */
    Tick controllerHangAt = 0;

    /** Truncate the durable log's tail by N bytes after the run. */
    std::uint64_t logTornTailBytes = 0;

    /** Flip N random bits in the durable log body after the run. */
    int logBitflips = 0;

    /** Probability a SET_PERIOD ioctl transiently fails EAGAIN. */
    double setPeriodFailProb = 0.0;

    /**
     * Crash the controller just after its Nth period reprogram
     * lands (1-based); 0 = off.  Unlike controller.crash this aims
     * the kill at the reprogram window specifically, so chaos tests
     * can hit the pending-change seam without tuning absolute
     * times.
     */
    int reprogramCrashNth = 0;

    /**
     * @{ SMP faults (DESIGN.md section 16): CPU hotplug, forced
     * task migration, and PMU ownership contention.
     */

    /**
     * Absolute sim time to hot-unplug a core ("cpu.offline");
     * 0 = off.  The scheduler evacuates it and per-CPU users
     * (K-LEB sessions) quiesce their state on that core.
     */
    Tick cpuOfflineAt = 0;

    /** Which core cpu.offline removes ("cpu.offline.core"). */
    int cpuOfflineCore = 0;

    /**
     * Absolute sim time to bring the offlined core back
     * ("cpu.online"); 0 = off.  Pairs with cpu.offline to exercise
     * the full outage/return cycle.
     */
    Tick cpuOnlineAt = 0;

    /**
     * Migrate the monitored target to the next online core every N
     * ("task.migrate"); 0 = off.  Produces the migration-heavy
     * schedules the per-CPU attribution ledger must balance.
     */
    Tick taskMigrateEvery = 0;

    /**
     * Probability a PMU ownership claim is refused EBUSY by a
     * phantom contending tool ("pmu.contend").  The module retries
     * with backoff and degrades the losing core to unmonitored.
     */
    double pmuContendProb = 0.0;

    /** @} */

    /**
     * @{ Fleet faults (src/fleet, DESIGN.md section 15).  These act
     * above the single-machine simulation: on whole machines, on the
     * lossy uplink each machine streams its durable log over, and on
     * the central collector.
     */

    /**
     * Probability a fleet machine crashes mid-run ("machine.crash").
     * A crashed machine stops emitting mid-epoch with no final
     * sample and no farewell — the collector must notice the
     * silence, probe, and quarantine it.
     */
    double machineCrashProb = 0.0;

    /** Probability the uplink drops a record ("link.drop"). */
    double linkDropProb = 0.0;

    /** Probability the uplink delays a record ("link.delay"). */
    double linkDelayProb = 0.0;

    /** Extra latency a delayed record suffers ("link.delay.by"). */
    Tick linkDelayBy = msToTicks(2);

    /**
     * Collector drain-clock time at which the collector crashes and
     * restarts from its last checkpoint + journal replay
     * ("collector.crash"); 0 = off.
     */
    Tick collectorCrashAt = 0;

    /** @} */

    /** True if any fault is enabled. */
    bool active() const;

    /** True if the timer hook needs installing. */
    bool timerFaultsActive() const
    { return timerMissProb > 0.0 || timerSpikeProb > 0.0; }

    /** True if the chardev hook needs installing. */
    bool chardevFaultsActive() const
    { return ioctlFailProb > 0.0 || readFailProb > 0.0; }

    /** True if the reader-stall hook needs installing. */
    bool readerStallActive() const
    { return readerStall > 0 && readerStallProb > 0.0; }

    /** True if the uplink hook needs installing. */
    bool linkFaultsActive() const
    { return linkDropProb > 0.0 || linkDelayProb > 0.0; }

    /** True if CPU hotplug events need scheduling. */
    bool hotplugActive() const
    { return cpuOfflineAt != 0 || cpuOnlineAt != 0; }

    /**
     * Parse a spec string: ';'-separated key=value pairs using the
     * keys from fault_points.def plus "seed", "timer.spike.us",
     * "reader.stall.p" and "link.delay.by".  Durations accept a
     * unit suffix (ns, us, ms, s); bare numbers are ticks.  Empty
     * specs parse to the inert plan.
     * @return false (with @p error set) on unknown keys or
     *         malformed/out-of-range values (an unknown key names
     *         the nearest valid key); @p out is untouched.
     */
    static bool parse(const std::string &spec, FaultPlan *out,
                      std::string *error = nullptr);

    /** Canonical spec rendering (stable across round-trips). */
    std::string str() const;
};

} // namespace klebsim::fault

#endif // KLEBSIM_FAULT_FAULT_PLAN_HH
