/**
 * @file
 * Seed-driven fault injector.
 *
 * Wires a FaultPlan into a simulated machine through the substrate's
 * fault hooks: narrowed PMU counter widths, timer-tick misses and
 * jitter spikes, transient chardev (ioctl/read) failures, stalled
 * user-space readers, module load failures, and a monitored-process
 * crash.  Each hook point draws from its own forked PCG32 stream,
 * so enabling one fault type never perturbs another's schedule, and
 * (seed, plan) fully determines every injection — faulted runs
 * replay bit-for-bit.
 *
 * Lifetime: the injector must outlive the System it attaches to (or
 * at least every event the System still runs); declare it alongside
 * the System and attach() before running.
 */

#ifndef KLEBSIM_FAULT_FAULT_INJECTOR_HH
#define KLEBSIM_FAULT_FAULT_INJECTOR_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/random.hh"
#include "base/types.hh"
#include "fault_plan.hh"
#include "hw/timer_device.hh"

namespace klebsim::kernel
{
class Kernel;
class Process;
class System;
} // namespace klebsim::kernel

namespace klebsim::fault
{

/**
 * Drives one FaultPlan against one machine.
 */
class FaultInjector
{
  public:
    /**
     * @param plan the faults to inject
     * @param machine_seed the target machine's master seed; mixed
     *        with plan.seed so distinct machines (bench trials)
     *        see distinct-but-deterministic fault schedules
     */
    FaultInjector(FaultPlan plan, std::uint64_t machine_seed);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /**
     * Install every enabled fault into @p sys: PMU widths are set
     * on all cores, and the kernel's chardev / timer / module-load
     * hooks are bound.  A plan with no active faults installs
     * nothing at all (zero-cost when off).
     */
    void attach(kernel::System &sys);

    /**
     * Reader-stall hook for a drain loop (extra sleep per drain
     * cycle); null when the plan does not stall readers.  Plug into
     * ControllerBehavior::Tuning::drainStallHook.
     */
    std::function<Tick()> readerStallHook();

    /**
     * Schedule the monitored-process crash (plan key target.crash)
     * for @p target; no-op when the plan does not crash.  The kill
     * fires at the planned tick only if the target is then alive.
     */
    void scheduleTargetCrash(kernel::System &sys,
                             kernel::Process *target);

    /**
     * Schedule the controller crash (plan key controller.crash) for
     * @p controller; no-op when the plan does not crash it.  The
     * kill fires at the planned tick only if the controller is then
     * alive — a supervisor (if any) sees it as a crash and restarts.
     */
    void scheduleControllerCrash(kernel::System &sys,
                                 kernel::Process *controller);

    /**
     * Schedule the CPU hotplug cycle (plan keys cpu.offline /
     * cpu.online, aux cpu.offline.core): hot-unplug the named core
     * at the offline tick — the scheduler evacuates it and per-CPU
     * monitors quiesce — and bring it back at the online tick.
     * No-op when neither key is set or the core id is out of range;
     * the kernel itself refuses to offline the last online core.
     */
    void scheduleCpuHotplug(kernel::System &sys);

    /**
     * Schedule recurring forced migrations (plan key task.migrate):
     * every interval, @p target hops to the next online core,
     * producing the migration-heavy schedules the per-CPU
     * attribution ledger must balance.  Stops when the target
     * exits; no-op when the plan does not migrate.
     */
    void scheduleTaskMigration(kernel::System &sys,
                               kernel::Process *target);

    /**
     * Drain-stall hook implementing controller.hang: starting at
     * the planned tick, the controller's next drain sleep is
     * stretched by ~30 simulated seconds — a wedged reader only a
     * supervisor's heartbeat timeout can detect.  Fires once per
     * run.  Null when the plan does not hang; compose with
     * readerStallHook() when both are active.
     */
    std::function<Tick()> controllerHangHook(kernel::System &sys);

    /**
     * SET_PERIOD failure hook (plan key module.set_period): true
     * when the controller's next SET_PERIOD ioctl should fail
     * EAGAIN before reaching the module.  Plug into
     * ControllerBehavior::Tuning::setPeriodFaultHook.  Null when
     * the plan does not fault reprograms.
     */
    std::function<bool()> setPeriodFailHook();

    /**
     * Reprogram-crash hook (plan key reprogram.crash): called each
     * time the controller commits to issuing a SET_PERIOD; on the
     * Nth (1-based, counted across incarnations) it schedules a
     * kill of the calling controller one tick later — landing in
     * the window where the period change may or may not have
     * reached the module, the seam recovery must balance either
     * way.  Null when the plan does not crash reprograms.
     */
    std::function<void(kernel::Kernel &, kernel::Process &)>
    reprogramCrashHook(kernel::System &sys);

    /**
     * Corrupt a captured durable-log image in place: truncate the
     * tail by plan key log.torn_tail bytes (never into the first
     * @p protect_prefix bytes — the header a real filesystem would
     * have long since flushed), then flip log.bitflip random bits
     * in the body.  No-op when neither key is set.
     */
    void corruptLog(std::vector<std::uint8_t> &bytes,
                    std::size_t protect_prefix);

    const FaultPlan &plan() const { return plan_; }

    /** Number of injections performed at @p point so far. */
    std::uint64_t injectedCount(FaultPoint point) const
    { return injected_[static_cast<int>(point)]; }

    /** Total injections across all fault points. */
    std::uint64_t totalInjected() const;

    /** "key=count" pairs for every point that fired (reporting). */
    std::string injectionSummary() const;

  private:
    /** Per-point forked stream (independent draw sequences). */
    Random &stream(FaultPoint point)
    { return streams_[static_cast<int>(point)]; }

    hw::TimerDevice::FaultHook makeTimerHook(const std::string &name,
                                             CoreId core);

    void inject(FaultPoint point)
    { ++injected_[static_cast<int>(point)]; }

    /** One forced-migration hop; reschedules itself. */
    void migrateTick(kernel::System &sys, kernel::Process *target);

    FaultPlan plan_;
    std::array<Random, numFaultPoints> streams_;
    std::array<std::uint64_t, numFaultPoints> injected_{};
    int loadsFailed_ = 0;
    bool hangFired_ = false;
    int reprogramsSeen_ = 0;
};

} // namespace klebsim::fault

#endif // KLEBSIM_FAULT_FAULT_INJECTOR_HH
