#include "fault_plan.hh"

#include <algorithm>
#include <charconv>
#include <vector>

#include "base/str.hh"

namespace klebsim::fault
{

namespace
{

const char *const pointKeys[] = {
#define KLEB_FAULT_POINT(name, key) key,
#include "fault_points.def"
#undef KLEB_FAULT_POINT
};

const char *const pointNames[] = {
#define KLEB_FAULT_POINT(name, key) #name,
#include "fault_points.def"
#undef KLEB_FAULT_POINT
};

bool
parseDouble(const std::string &v, double *out)
{
    const char *first = v.data();
    const char *last = v.data() + v.size();
    auto [p, ec] = std::from_chars(first, last, *out);
    return ec == std::errc() && p == last;
}

bool
parseProb(const std::string &v, double *out)
{
    return parseDouble(v, out) && *out >= 0.0 && *out <= 1.0;
}

bool
parseInt(const std::string &v, int *out)
{
    const char *first = v.data();
    const char *last = v.data() + v.size();
    auto [p, ec] = std::from_chars(first, last, *out);
    return ec == std::errc() && p == last;
}

bool
parseU64(const std::string &v, std::uint64_t *out)
{
    const char *first = v.data();
    const char *last = v.data() + v.size();
    auto [p, ec] = std::from_chars(first, last, *out);
    return ec == std::errc() && p == last;
}

/** Parse "5ms" / "250us" / "1000" (bare ticks) into Ticks. */
bool
parseDuration(const std::string &v, Tick *out)
{
    double mag = 0.0;
    const char *first = v.data();
    const char *last = v.data() + v.size();
    auto [p, ec] = std::from_chars(first, last, mag);
    if (ec != std::errc() || mag < 0.0)
        return false;
    std::string suffix(p, last);
    double scale;
    if (suffix.empty())
        scale = 1.0;
    else if (suffix == "ns")
        scale = static_cast<double>(tickPerNs);
    else if (suffix == "us")
        scale = static_cast<double>(tickPerUs);
    else if (suffix == "ms")
        scale = static_cast<double>(tickPerMs);
    else if (suffix == "s")
        scale = static_cast<double>(tickPerSec);
    else
        return false;
    *out = static_cast<Tick>(mag * scale);
    return true;
}

/** Render a Tick with the largest exact unit suffix. */
std::string
durationStr(Tick t)
{
    if (t >= tickPerMs && t % tickPerMs == 0)
        return csprintf("%llums", (unsigned long long)(t / tickPerMs));
    if (t >= tickPerUs && t % tickPerUs == 0)
        return csprintf("%lluus", (unsigned long long)(t / tickPerUs));
    if (t >= tickPerNs && t % tickPerNs == 0)
        return csprintf("%lluns", (unsigned long long)(t / tickPerNs));
    return csprintf("%llu", (unsigned long long)t);
}

std::string
probStr(double p)
{
    return csprintf("%g", p);
}

bool
fail(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

/** Classic O(a*b) Levenshtein edit distance (keys are short). */
std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            std::size_t up = row[j];
            std::size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
            row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                               diag + cost});
            diag = up;
        }
    }
    return row[b.size()];
}

/**
 * The valid spec key closest (by edit distance) to @p key, for the
 * unknown-key diagnostic.  Covers every fault_points.def key plus
 * the auxiliary keys parse() accepts alongside them.
 */
std::string
nearestSpecKey(const std::string &key)
{
    static const char *const auxKeys[] = {
        "seed", "timer.spike.us", "reader.stall.p", "link.delay.by",
        "cpu.offline.core"};
    std::string best;
    std::size_t best_dist = ~std::size_t{0};
    auto consider = [&](const char *candidate) {
        std::size_t d = editDistance(key, candidate);
        if (d < best_dist) {
            best_dist = d;
            best = candidate;
        }
    };
    for (const char *k : pointKeys)
        consider(k);
    for (const char *k : auxKeys)
        consider(k);
    return best;
}

} // anonymous namespace

const char *
faultPointKey(FaultPoint point)
{
    return pointKeys[static_cast<int>(point)];
}

const char *
faultPointName(FaultPoint point)
{
    return pointNames[static_cast<int>(point)];
}

bool
FaultPlan::active() const
{
    return timerFaultsActive() || counterWidth != 0 ||
           chardevFaultsActive() || readerStallActive() ||
           moduleInitFails > 0 || targetCrashAt != 0 ||
           controllerCrashAt != 0 || controllerHangAt != 0 ||
           logTornTailBytes != 0 || logBitflips > 0 ||
           setPeriodFailProb > 0.0 || reprogramCrashNth > 0 ||
           hotplugActive() || taskMigrateEvery != 0 ||
           pmuContendProb > 0.0 ||
           machineCrashProb > 0.0 || linkFaultsActive() ||
           collectorCrashAt != 0;
}

bool
FaultPlan::parse(const std::string &spec, FaultPlan *out,
                 std::string *error)
{
    FaultPlan plan;
    for (const std::string &token : split(spec, ';')) {
        // Trim surrounding whitespace so specs can be written
        // "a=1; b=2" as well as "a=1;b=2".
        std::size_t first = token.find_first_not_of(" \t");
        if (first == std::string::npos)
            continue;
        std::size_t last = token.find_last_not_of(" \t");
        std::string pair = token.substr(first, last - first + 1);

        std::size_t eq = pair.find('=');
        if (eq == std::string::npos || eq == 0)
            return fail(error, csprintf("fault spec token '%s' is not "
                                        "key=value", pair.c_str()));
        std::string key = pair.substr(0, eq);
        std::string value = pair.substr(eq + 1);
        bool ok;
        if (key == "seed") {
            ok = parseU64(value, &plan.seed);
        } else if (key == faultPointKey(FaultPoint::timerMiss)) {
            ok = parseProb(value, &plan.timerMissProb);
        } else if (key == faultPointKey(FaultPoint::timerSpike)) {
            ok = parseProb(value, &plan.timerSpikeProb);
        } else if (key == "timer.spike.us") {
            double us = 0.0;
            ok = parseDouble(value, &us) && us > 0.0;
            if (ok)
                plan.timerSpikeLateness = usToTicks(us);
        } else if (key == faultPointKey(FaultPoint::counterWidth)) {
            ok = parseInt(value, &plan.counterWidth) &&
                 (plan.counterWidth == 0 ||
                  (plan.counterWidth >= 8 && plan.counterWidth <= 48));
        } else if (key == faultPointKey(FaultPoint::ioctlFail)) {
            ok = parseProb(value, &plan.ioctlFailProb);
        } else if (key == faultPointKey(FaultPoint::readFail)) {
            ok = parseProb(value, &plan.readFailProb);
        } else if (key == faultPointKey(FaultPoint::readerStall)) {
            ok = parseDuration(value, &plan.readerStall);
        } else if (key == "reader.stall.p") {
            ok = parseProb(value, &plan.readerStallProb);
        } else if (key == faultPointKey(FaultPoint::moduleInitFail)) {
            ok = parseInt(value, &plan.moduleInitFails) &&
                 plan.moduleInitFails >= 0;
        } else if (key == faultPointKey(FaultPoint::targetCrash)) {
            ok = parseDuration(value, &plan.targetCrashAt);
        } else if (key == faultPointKey(FaultPoint::controllerCrash)) {
            ok = parseDuration(value, &plan.controllerCrashAt);
        } else if (key == faultPointKey(FaultPoint::controllerHang)) {
            ok = parseDuration(value, &plan.controllerHangAt);
        } else if (key == faultPointKey(FaultPoint::logTornTail)) {
            ok = parseU64(value, &plan.logTornTailBytes);
        } else if (key == faultPointKey(FaultPoint::logBitflip)) {
            ok = parseInt(value, &plan.logBitflips) &&
                 plan.logBitflips >= 0;
        } else if (key == faultPointKey(FaultPoint::setPeriodFail)) {
            ok = parseProb(value, &plan.setPeriodFailProb);
        } else if (key == faultPointKey(FaultPoint::reprogramCrash)) {
            ok = parseInt(value, &plan.reprogramCrashNth) &&
                 plan.reprogramCrashNth >= 0;
        } else if (key == faultPointKey(FaultPoint::cpuOffline)) {
            ok = parseDuration(value, &plan.cpuOfflineAt);
        } else if (key == "cpu.offline.core") {
            ok = parseInt(value, &plan.cpuOfflineCore) &&
                 plan.cpuOfflineCore >= 0;
        } else if (key == faultPointKey(FaultPoint::cpuOnline)) {
            ok = parseDuration(value, &plan.cpuOnlineAt);
        } else if (key == faultPointKey(FaultPoint::taskMigrate)) {
            ok = parseDuration(value, &plan.taskMigrateEvery);
        } else if (key == faultPointKey(FaultPoint::pmuContend)) {
            ok = parseProb(value, &plan.pmuContendProb);
        } else if (key == faultPointKey(FaultPoint::machineCrash)) {
            ok = parseProb(value, &plan.machineCrashProb);
        } else if (key == faultPointKey(FaultPoint::linkDrop)) {
            ok = parseProb(value, &plan.linkDropProb);
        } else if (key == faultPointKey(FaultPoint::linkDelay)) {
            ok = parseProb(value, &plan.linkDelayProb);
        } else if (key == "link.delay.by") {
            ok = parseDuration(value, &plan.linkDelayBy) &&
                 plan.linkDelayBy > 0;
        } else if (key == faultPointKey(FaultPoint::collectorCrash)) {
            ok = parseDuration(value, &plan.collectorCrashAt);
        } else {
            return fail(error,
                        csprintf("unknown fault spec key '%s' "
                                 "(nearest valid key: '%s')",
                                 key.c_str(),
                                 nearestSpecKey(key).c_str()));
        }
        if (!ok)
            return fail(error, csprintf("bad value '%s' for fault spec "
                                        "key '%s'", value.c_str(),
                                        key.c_str()));
    }
    *out = plan;
    return true;
}

std::string
FaultPlan::str() const
{
    std::vector<std::string> parts;
    if (seed != 0)
        parts.push_back(csprintf("seed=%llu",
                                 (unsigned long long)seed));
    if (timerMissProb > 0.0)
        parts.push_back(faultPointKey(FaultPoint::timerMiss) +
                        ("=" + probStr(timerMissProb)));
    if (timerSpikeProb > 0.0) {
        parts.push_back(faultPointKey(FaultPoint::timerSpike) +
                        ("=" + probStr(timerSpikeProb)));
        parts.push_back("timer.spike.us=" +
                        probStr(ticksToUs(timerSpikeLateness)));
    }
    if (counterWidth != 0)
        parts.push_back(csprintf("%s=%d",
                                 faultPointKey(FaultPoint::counterWidth),
                                 counterWidth));
    if (ioctlFailProb > 0.0)
        parts.push_back(faultPointKey(FaultPoint::ioctlFail) +
                        ("=" + probStr(ioctlFailProb)));
    if (readFailProb > 0.0)
        parts.push_back(faultPointKey(FaultPoint::readFail) +
                        ("=" + probStr(readFailProb)));
    if (readerStall > 0) {
        parts.push_back(faultPointKey(FaultPoint::readerStall) +
                        ("=" + durationStr(readerStall)));
        if (readerStallProb < 1.0)
            parts.push_back("reader.stall.p=" +
                            probStr(readerStallProb));
    }
    if (moduleInitFails > 0)
        parts.push_back(csprintf(
            "%s=%d", faultPointKey(FaultPoint::moduleInitFail),
            moduleInitFails));
    if (targetCrashAt != 0)
        parts.push_back(faultPointKey(FaultPoint::targetCrash) +
                        ("=" + durationStr(targetCrashAt)));
    if (controllerCrashAt != 0)
        parts.push_back(faultPointKey(FaultPoint::controllerCrash) +
                        ("=" + durationStr(controllerCrashAt)));
    if (controllerHangAt != 0)
        parts.push_back(faultPointKey(FaultPoint::controllerHang) +
                        ("=" + durationStr(controllerHangAt)));
    if (logTornTailBytes != 0)
        parts.push_back(csprintf(
            "%s=%llu", faultPointKey(FaultPoint::logTornTail),
            (unsigned long long)logTornTailBytes));
    if (logBitflips > 0)
        parts.push_back(csprintf(
            "%s=%d", faultPointKey(FaultPoint::logBitflip),
            logBitflips));
    if (setPeriodFailProb > 0.0)
        parts.push_back(faultPointKey(FaultPoint::setPeriodFail) +
                        ("=" + probStr(setPeriodFailProb)));
    if (reprogramCrashNth > 0)
        parts.push_back(csprintf(
            "%s=%d", faultPointKey(FaultPoint::reprogramCrash),
            reprogramCrashNth));
    if (cpuOfflineAt != 0) {
        parts.push_back(faultPointKey(FaultPoint::cpuOffline) +
                        ("=" + durationStr(cpuOfflineAt)));
        if (cpuOfflineCore != 0)
            parts.push_back(csprintf("cpu.offline.core=%d",
                                     cpuOfflineCore));
    }
    if (cpuOnlineAt != 0)
        parts.push_back(faultPointKey(FaultPoint::cpuOnline) +
                        ("=" + durationStr(cpuOnlineAt)));
    if (taskMigrateEvery != 0)
        parts.push_back(faultPointKey(FaultPoint::taskMigrate) +
                        ("=" + durationStr(taskMigrateEvery)));
    if (pmuContendProb > 0.0)
        parts.push_back(faultPointKey(FaultPoint::pmuContend) +
                        ("=" + probStr(pmuContendProb)));
    if (machineCrashProb > 0.0)
        parts.push_back(faultPointKey(FaultPoint::machineCrash) +
                        ("=" + probStr(machineCrashProb)));
    if (linkDropProb > 0.0)
        parts.push_back(faultPointKey(FaultPoint::linkDrop) +
                        ("=" + probStr(linkDropProb)));
    if (linkDelayProb > 0.0) {
        parts.push_back(faultPointKey(FaultPoint::linkDelay) +
                        ("=" + probStr(linkDelayProb)));
        parts.push_back("link.delay.by=" +
                        durationStr(linkDelayBy));
    }
    if (collectorCrashAt != 0)
        parts.push_back(faultPointKey(FaultPoint::collectorCrash) +
                        ("=" + durationStr(collectorCrashAt)));
    return join(parts, ";");
}

} // namespace klebsim::fault
