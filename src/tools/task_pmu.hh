/**
 * @file
 * Per-task PMU counting session — the kernel-side facility the
 * perf_events-style tools build on: counters are enabled only while
 * the target task (or its descendants) is on-core, via the
 * scheduler's context-switch tracepoint.
 */

#ifndef KLEBSIM_TOOLS_TASK_PMU_HH
#define KLEBSIM_TOOLS_TASK_PMU_HH

#include <vector>

#include "base/types.hh"
#include "hw/perf_event.hh"
#include "kernel/kernel.hh"

namespace klebsim::tools
{

/**
 * One per-task counting session.
 */
class TaskPmuSession
{
  public:
    /**
     * @param kernel the kernel to hook
     * @param target PID whose execution is counted
     * @param events counted events (fixed events map to fixed
     *        counters; at most 4 programmable)
     * @param count_kernel include kernel-mode occurrences
     * @param trace_children include descendants of the target
     */
    TaskPmuSession(kernel::Kernel &kernel, Pid target,
                   std::vector<hw::HwEvent> events,
                   bool count_kernel = false,
                   bool trace_children = true);

    ~TaskPmuSession();

    TaskPmuSession(const TaskPmuSession &) = delete;
    TaskPmuSession &operator=(const TaskPmuSession &) = delete;

    /** Program the counters and begin gating on context switches. */
    void arm();

    /** Stop counting and release the hook. */
    void disarm();

    /** Cumulative value of the @p idx-th configured event. */
    std::uint64_t read(std::size_t idx) const;

    /** All configured counters, in configuration order. */
    std::vector<std::uint64_t> readAll() const;

    const std::vector<hw::HwEvent> &events() const
    { return events_; }

    /** True while the target is on-core with counters running. */
    bool counting() const { return counting_; }

    bool armed() const { return armed_; }

  private:
    bool isMonitored(const kernel::Process *proc) const;
    void onSwitch(kernel::Process *prev, kernel::Process *next,
                  CoreId core);

    kernel::Kernel &kernel_;
    Pid target_;
    std::vector<hw::HwEvent> events_;
    bool countKernel_;
    bool traceChildren_;

    struct CounterRef
    {
        bool fixed = false;
        int idx = 0;
    };
    std::vector<CounterRef> counterMap_;

    CoreId core_ = invalidCore;
    int hookId_ = -1;
    bool armed_ = false;
    bool counting_ = false;

    /**
     * Overflow-aware read state (mutable: read() is logically
     * const but must remember the last raw value to spot wraps at
     * narrow effective counter widths).  reads report
     * wrapBase + raw, so values stay cumulative across wraps.
     */
    mutable std::vector<std::uint64_t> lastRaw_;
    mutable std::vector<std::uint64_t> wrapBase_;
    std::uint64_t counterModulus_ = 0;
};

} // namespace klebsim::tools

#endif // KLEBSIM_TOOLS_TASK_PMU_HH
