/**
 * @file
 * The tool-comparison harness: runs one workload under one
 * monitoring tool (or none) on a fresh simulated machine and
 * reports lifetime, sample counts, and counter totals in a uniform
 * shape.  Every overhead table and accuracy figure bench is built
 * on repeated runOnce() calls.
 */

#ifndef KLEBSIM_TOOLS_HARNESS_HH
#define KLEBSIM_TOOLS_HARNESS_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/random.hh"
#include "hw/exec_types.hh"
#include "hw/machine_config.hh"
#include "kernel/cost_model.hh"
#include "kleb/kleb_config.hh"
#include "kleb/log_recovery.hh"
#include "kleb/rate_governor.hh"
#include "kleb/supervisor.hh"
#include "stats/time_series.hh"

namespace klebsim::tools
{

/** Which monitoring tool a run uses. */
enum class ToolKind
{
    none,
    kleb,
    perfStat,
    perfRecord,
    papi,
    limit,
};

/** Display name ("K-LEB", "perf stat", ...). */
const char *toolName(ToolKind kind);

/** All tools, in the paper's table order. */
const std::vector<ToolKind> &allTools();

/** Configuration of one run. */
struct RunConfig
{
    ToolKind tool = ToolKind::none;

    /**
     * Factory for the workload under test; invoked with the data
     * region base address and the run's random stream.  The
     * returned object must stay alive for the run (the harness
     * keeps it).
     */
    std::function<std::unique_ptr<hw::WorkSource>(Addr, Random)>
        workloadFactory;

    /** Events every tool records. */
    std::vector<hw::HwEvent> events = {
        hw::HwEvent::instRetired, hw::HwEvent::loadRetired,
        hw::HwEvent::storeRetired, hw::HwEvent::branchRetired};

    /** Timer period for the timer-based tools. */
    Tick period = msToTicks(10);

    /** Read-point spacing for the instrumented tools
     *  (instructions); 0 derives it so point count matches the
     *  timer-based sample count for `expectedLifetime`. */
    std::uint64_t instrumentEveryInstr = 0;

    /** Rough expected workload duration (for auto spacing). */
    Tick expectedLifetime = secToTicks(2.0);

    /** Rough expected instruction count (for auto spacing). */
    std::uint64_t expectedInstructions = 8000000000ULL;

    std::uint64_t seed = 1;
    hw::MachineConfig machine = hw::MachineConfig::corei7_920();
    kernel::CostModel costs{};
    CoreId core = 0;

    /** LiMiT kernel patch present on this machine? */
    bool limitPatchAvailable = true;

    /** Count kernel-mode events too. */
    bool countKernel = false;

    /** Use the ideal (jitter-free) timer; unit tests only. */
    bool idealTimer = false;

    /**
     * Fault-injection plan spec (src/fault/fault_plan.hh), e.g.
     * "pmu.width=24;ioctl.fail=0.2".  Empty (the default) runs the
     * machine fault-free and byte-identical to a build without the
     * fault subsystem.
     */
    std::string faultSpec;

    /**
     * @{ Crash-survivable monitoring (tool == kleb only; DESIGN.md
     * section 11).  All off by default — a plain run stays
     * byte-identical to builds without the recovery subsystem.
     */

    /** Supervise the controller (implies a durable log). */
    bool supervise = false;

    /** Journal drained samples to the durable log. */
    bool durableLog = false;

    /** Heartbeat staleness treated as a hang; 0 keeps the default. */
    Tick heartbeatTimeout = 0;

    /** Restart budget; negative keeps the default. */
    int restartBudget = -1;

    /** First restart backoff; 0 keeps the default. */
    Tick restartBackoff = 0;

    /**
     * Keep a copy of the raw durable-log medium (post fault
     * corruption) in RunResult::durableBytes.  The fleet collector
     * streams those epoch-framed records off the machine; plain
     * benches leave this off to avoid the copy.
     */
    bool keepDurableBytes = false;

    /** @} */

    /**
     * @{ Adaptive sampling (tool == kleb only).  Off by default:
     * fixed-rate runs stay byte-identical to builds without the
     * governor.
     */

    /** Drive the period with a RateGovernor. */
    bool adaptive = false;

    /** Overhead budget as a fraction (0.01 = 1%); 0 = default. */
    double overheadBudget = 0.0;

    /** Fastest allowed adaptive period; 0 keeps the 100 us floor. */
    Tick minPeriod = 0;

    /** Slowest allowed adaptive period; 0 keeps the default. */
    Tick maxPeriod = 0;

    /** @} */

    /** Hard cap on simulated time (safety against hangs). */
    Tick simLimit = secToTicks(120.0);
};

/** Outcome of one run. */
struct RunResult
{
    ToolKind tool = ToolKind::none;
    bool supported = true;     //!< false: tool can't run (LiMiT/MKL)

    Tick lifetime = 0;         //!< tool launch -> workload exit
    double seconds = 0.0;

    /** Tool-reported totals for RunConfig::events (empty: none). */
    std::vector<std::uint64_t> totals;

    /** Ground-truth user+kernel totals from the exec context. */
    hw::EventVector trueTotals{};

    /** FLOPs the workload completed (GFLOPS reporting). */
    double flops = 0.0;

    std::size_t samples = 0;   //!< samples / read points recorded

    /** Sample series for tools that produce one. */
    std::optional<stats::TimeSeries> series;

    /** K-LEB module status (tool == kleb only). */
    kleb::KLebStatus klebStatus{};

    /** @{ Fault-run outcome (zero/false on fault-free runs). */

    /** Total injections the fault plan performed. */
    std::uint64_t faultsInjected = 0;

    /** K-LEB controller gave up mid-session (partial log kept). */
    bool klebAborted = false;

    /** Transient chardev failures the controller retried through. */
    std::uint64_t klebRetries = 0;

    /** insmod attempts the K-LEB session needed (0 = not kleb). */
    int klebLoadAttempts = 0;

    /** @} */

    /** @{ Crash-recovery outcome (durable-log runs only). */

    /** Scan report over the (possibly corrupted) durable log. */
    kleb::RecoveryReport recovery{};

    /** Recovered, gap-annotated series spliced from the log. */
    std::optional<stats::TimeSeries> recoveredSeries;

    /** Raw durable-log medium (RunConfig::keepDurableBytes only). */
    std::vector<std::uint8_t> durableBytes;

    /** Supervisor bookkeeping (zero when unsupervised). */
    kleb::SupervisorStats supervisor{};

    /** @} */

    /** Governor bookkeeping (zero unless RunConfig::adaptive). */
    kleb::RateGovernor::Stats governor{};

    /** Rate changes recovered from the durable log. */
    std::vector<kleb::RateChangeRecord> rateChanges;

    /** Context switches the kernel performed during the run. */
    std::uint64_t contextSwitches = 0;
};

/** Execute one run. */
RunResult runOnce(const RunConfig &cfg);

/**
 * Run @p runs repetitions and return the per-run lifetimes in
 * seconds.  Per-trial seeds are derived by the shared splitmix64
 * mixer from (cfg.seed, cfg.tool, trialIndex) — see
 * bench_support/trial_pool.hh — so adjacent trials never run
 * correlated PCG32 streams.  Trials fan out across @p jobs worker
 * threads (each on a fresh simulated machine); results are
 * identical for every jobs value.
 */
std::vector<double> runMany(RunConfig cfg, int runs,
                            unsigned jobs = 1);

/**
 * Mean overhead of @p tool versus baseline runs, in percent:
 * (mean(tool) - mean(none)) / mean(none) * 100.
 */
double overheadPct(const std::vector<double> &tool_secs,
                   const std::vector<double> &baseline_secs);

} // namespace klebsim::tools

#endif // KLEBSIM_TOOLS_HARNESS_HH
