#include "perf.hh"

#include "base/logging.hh"

namespace klebsim::tools
{

stats::TimeSeries
perfSeries(const std::vector<PerfSample> &samples,
           const std::vector<hw::HwEvent> &events)
{
    std::vector<std::string> names;
    for (hw::HwEvent ev : events)
        names.emplace_back(hw::eventName(ev));
    stats::TimeSeries ts(names);
    for (const PerfSample &s : samples) {
        std::vector<double> row;
        row.reserve(s.counts.size());
        for (std::uint64_t v : s.counts)
            row.push_back(static_cast<double>(v));
        ts.append(s.timestamp, row);
    }
    return ts;
}

/*
 * perf stat
 */

class PerfStatSession::Behavior : public kernel::ServiceBehavior
{
  public:
    Behavior(PerfStatSession &session, kernel::Process *target,
             bool start_target)
        : session_(session), target_(target),
          startTarget_(start_target)
    {
    }

    kernel::ServiceOp
    nextOp(kernel::Kernel &kernel, kernel::Process &self) override
    {
        (void)self;
        using Op = kernel::ServiceOp;
        const Options &opt = session_.options_;

        switch (state_) {
          case State::setup:
            state_ = State::open;
            return Op::makeCompute(opt.setupCost, 256 * 1024);

          case State::open:
            state_ = State::loop;
            return Op::makeSyscall(
                [this](kernel::Kernel &k, kernel::Process &) {
                    session_.pmu_->arm();
                    if (startTarget_)
                        k.startProcess(target_);
                },
                opt.perEventOpenCost *
                    static_cast<Tick>(opt.events.size()),
                16 * 1024);

          case State::loop:
            state_ = State::read;
            return Op::makeSleep(opt.interval);

          case State::read:
            state_ = State::process;
            return Op::makeSyscall(
                [this](kernel::Kernel &k, kernel::Process &) {
                    PerfSample s;
                    s.timestamp = k.now();
                    s.counts = session_.pmu_->readAll();
                    samples_.push_back(std::move(s));
                },
                opt.perEventReadCost *
                    static_cast<Tick>(opt.events.size()),
                8 * 1024);

          case State::process:
            if (target_->state() == kernel::ProcState::zombie) {
                state_ = State::finalize;
            } else {
                state_ = State::loop;
            }
            return Op::makeCompute(opt.intervalProcessCost,
                                   opt.intervalFootprint);

          case State::finalize:
            state_ = State::done;
            finished_ = true;
            // Final exact read: the counters froze at target exit;
            // record their values now (timestamps must stay
            // monotonic past the last interval read).
            {
                PerfSample s;
                s.timestamp = kernel.now();
                s.counts = session_.pmu_->readAll();
                samples_.push_back(std::move(s));
            }
            return Op::makeCompute(opt.finalReportCost, 64 * 1024);

          case State::done:
            return Op::makeExit();
        }
        panic("perf stat behavior: bad state");
    }

    std::vector<PerfSample> samples_;
    bool finished_ = false;

  private:
    enum class State
    {
        setup,
        open,
        loop,
        read,
        process,
        finalize,
        done,
    };

    PerfStatSession &session_;
    kernel::Process *target_;
    bool startTarget_;
    State state_ = State::setup;
};

PerfStatSession::PerfStatSession(kernel::System &sys,
                                 Options options)
    : sys_(sys), options_(std::move(options))
{
    if (options_.interval < minInterval) {
        warn("perf stat: interval below the 10 ms user-space timer "
             "floor; clamping");
        options_.interval = minInterval;
    }
}

PerfStatSession::~PerfStatSession() = default;

void
PerfStatSession::profile(kernel::Process *target, bool start_target)
{
    panic_if(behavior_ != nullptr, "perf stat: profile() twice");
    pmu_ = std::make_unique<TaskPmuSession>(
        sys_.kernel(), target->pid(), options_.events,
        options_.countKernel);
    behavior_ =
        std::make_unique<Behavior>(*this, target, start_target);
    CoreId core = options_.core != invalidCore ? options_.core
                                               : target->affinity();
    perfProc_ = sys_.kernel().createService("perf-stat",
                                            behavior_.get(), core);
    sys_.kernel().startProcess(perfProc_);
}

bool
PerfStatSession::finished() const
{
    return behavior_ && behavior_->finished_;
}

const std::vector<PerfSample> &
PerfStatSession::samples() const
{
    static const std::vector<PerfSample> empty;
    return behavior_ ? behavior_->samples_ : empty;
}

std::vector<std::uint64_t>
PerfStatSession::totals() const
{
    if (!behavior_ || behavior_->samples_.empty())
        return {};
    return behavior_->samples_.back().counts;
}

stats::TimeSeries
PerfStatSession::series() const
{
    return perfSeries(samples(), options_.events);
}

/*
 * perf record
 */

class PerfRecordSession::Behavior : public kernel::ServiceBehavior
{
  public:
    Behavior(PerfRecordSession &session, kernel::Process *target,
             bool start_target)
        : session_(session), target_(target),
          startTarget_(start_target)
    {
    }

    kernel::ServiceOp
    nextOp(kernel::Kernel &kernel, kernel::Process &self) override
    {
        (void)kernel;
        (void)self;
        using Op = kernel::ServiceOp;
        const Options &opt = session_.options_;

        switch (state_) {
          case State::setup:
            state_ = State::open;
            return Op::makeCompute(opt.setupCost, 64 * 1024);

          case State::open:
            state_ = State::loop;
            return Op::makeSyscall(
                [this](kernel::Kernel &k, kernel::Process &) {
                    session_.armKernelSide();
                    if (startTarget_)
                        k.startProcess(target_);
                },
                usToTicks(30), 16 * 1024);

          case State::loop:
            state_ = State::drain;
            return Op::makeSleep(opt.drainInterval);

          case State::drain: {
            bool target_dead =
                target_->state() == kernel::ProcState::zombie;
            state_ = target_dead ? State::finalize : State::loop;
            return Op::makeSyscall(
                [this](kernel::Kernel &, kernel::Process &) {
                    session_.drainRing();
                },
                opt.drainCost, opt.drainFootprint);
          }

          case State::finalize:
            state_ = State::done;
            finished_ = true;
            return Op::makeCompute(opt.finalizeCost, 128 * 1024);

          case State::done:
            return Op::makeExit();
        }
        panic("perf record behavior: bad state");
    }

    bool finished_ = false;

  private:
    enum class State
    {
        setup,
        open,
        loop,
        drain,
        finalize,
        done,
    };

    PerfRecordSession &session_;
    kernel::Process *target_;
    bool startTarget_;
    State state_ = State::setup;
};

PerfRecordSession::PerfRecordSession(kernel::System &sys,
                                     Options options)
    : sys_(sys), options_(std::move(options))
{
    fatal_if(options_.freqHz <= 0, "perf record: bad frequency");
}

PerfRecordSession::~PerfRecordSession()
{
    if (hookId_ >= 0)
        sys_.kernel().unregisterSwitchHook(hookId_);
    if (timer_)
        timer_->cancel();
}

bool
PerfRecordSession::isMonitored(const kernel::Process *proc) const
{
    if (proc == nullptr || target_ == nullptr)
        return false;
    if (proc->pid() == target_->pid())
        return true;
    return const_cast<kernel::System &>(sys_)
        .kernel()
        .isDescendantOf(proc->pid(), target_->pid());
}

void
PerfRecordSession::onSampleTimer()
{
    // Sample only while the target is on-core (per-task PMI).
    if (!pmu_ || !pmu_->counting())
        return;
    PerfSample s;
    s.timestamp = sys_.now();
    s.counts = pmu_->readAll();
    ring_.push_back(std::move(s));
    sys_.kernel().chargeKernelWork(core_,
                                   options_.perSampleCost,
                                   options_.sampleFootprint);
}

void
PerfRecordSession::onSwitch(kernel::Process *prev,
                            kernel::Process *next, CoreId core)
{
    if (core != core_ || timer_ == nullptr)
        return;
    bool prev_mon = isMonitored(prev);
    bool next_mon = isMonitored(next);
    if (prev_mon == next_mon)
        return;
    if (next_mon) {
        if (timerStarted_) {
            timer_->resume();
        } else {
            timer_->startPeriodic(static_cast<Tick>(
                static_cast<double>(tickPerSec) /
                options_.freqHz));
            timerStarted_ = true;
        }
    } else {
        timer_->cancel();
    }
}

void
PerfRecordSession::armKernelSide()
{
    pmu_->arm();
    timer_ = sys_.kernel().createHrTimer(
        "perf-record-pmi", core_, [this] { onSampleTimer(); },
        0 /* body cost charged per recorded sample */, 512);
    hookId_ = sys_.kernel().registerSwitchHook(
        [this](kernel::Process *prev, kernel::Process *next,
               CoreId core) { onSwitch(prev, next, core); });
    if (pmu_->counting()) {
        timer_->startPeriodic(static_cast<Tick>(
            static_cast<double>(tickPerSec) / options_.freqHz));
        timerStarted_ = true;
    }
}

void
PerfRecordSession::drainRing()
{
    for (PerfSample &s : ring_)
        drained_.push_back(std::move(s));
    ring_.clear();
}

void
PerfRecordSession::profile(kernel::Process *target,
                           bool start_target)
{
    panic_if(behavior_ != nullptr, "perf record: profile() twice");
    target_ = target;
    core_ = target->affinity();
    pmu_ = std::make_unique<TaskPmuSession>(
        sys_.kernel(), target->pid(), options_.events,
        options_.countKernel);
    behavior_ =
        std::make_unique<Behavior>(*this, target, start_target);
    perfProc_ = sys_.kernel().createService(
        "perf-record", behavior_.get(), core_);
    sys_.kernel().startProcess(perfProc_);
}

bool
PerfRecordSession::finished() const
{
    return behavior_ && behavior_->finished_;
}

const std::vector<PerfSample> &
PerfRecordSession::samples() const
{
    return drained_;
}

std::vector<std::uint64_t>
PerfRecordSession::totals() const
{
    if (drained_.empty())
        return {};
    return drained_.back().counts;
}

stats::TimeSeries
PerfRecordSession::series() const
{
    return perfSeries(drained_, options_.events);
}

} // namespace klebsim::tools
