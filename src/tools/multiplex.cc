#include "multiplex.hh"

#include "base/logging.hh"
#include "hw/pmu.hh"

namespace klebsim::tools
{

namespace
{

/** Events that live on fixed counters never need multiplexing. */
bool
isFixedEvent(hw::HwEvent ev)
{
    return ev == hw::HwEvent::instRetired ||
           ev == hw::HwEvent::coreCycles ||
           ev == hw::HwEvent::refCycles;
}

} // anonymous namespace

MultiplexedPmuSession::MultiplexedPmuSession(kernel::System &sys,
                                             Pid target,
                                             Options options)
    : sys_(sys), target_(target), options_(std::move(options))
{
    fatal_if(options_.events.empty(),
             "multiplexing with no events");
    fatal_if(options_.rotateInterval == 0,
             "multiplexing needs a rotation interval");

    raw_.assign(options_.events.size(), 0);
    enabled_.assign(options_.events.size(), 0);

    // Greedy grouping: fixed-counter events ride along with every
    // group (they are always on); programmable events fill groups
    // of up to numProgrammable.
    std::vector<std::size_t> current;
    for (std::size_t i = 0; i < options_.events.size(); ++i) {
        if (isFixedEvent(options_.events[i]))
            continue;
        current.push_back(i);
        if (current.size() == hw::Pmu::numProgrammable) {
            groups_.push_back(current);
            current.clear();
        }
    }
    if (!current.empty())
        groups_.push_back(current);
    if (groups_.empty())
        groups_.push_back({}); // fixed-only configuration
}

MultiplexedPmuSession::~MultiplexedPmuSession()
{
    if (armed_)
        disarm();
}

bool
MultiplexedPmuSession::isMonitored(
    const kernel::Process *proc) const
{
    if (proc == nullptr)
        return false;
    if (proc->pid() == target_)
        return true;
    return const_cast<kernel::System &>(sys_)
        .kernel()
        .isDescendantOf(proc->pid(), target_);
}

void
MultiplexedPmuSession::programGroup(std::size_t idx)
{
    hw::Pmu &pmu = sys_.kernel().core(core_).pmu();
    activeGroup_ = idx;
    const auto &group = groups_[idx];
    for (std::size_t c = 0; c < hw::Pmu::numProgrammable; ++c) {
        if (c < group.size()) {
            pmu.programCounter(static_cast<int>(c),
                               options_.events[group[c]], true,
                               options_.countKernel);
        } else {
            pmu.clearCounter(static_cast<int>(c));
        }
    }
    for (int f = 0; f < hw::Pmu::numFixed; ++f)
        pmu.programFixed(f, true, options_.countKernel);
}

void
MultiplexedPmuSession::harvestGroup()
{
    hw::Pmu &pmu = sys_.kernel().core(core_).pmu();
    const auto &group = groups_[activeGroup_];
    for (std::size_t c = 0; c < group.size(); ++c)
        raw_[group[c]] +=
            pmu.counterValue(static_cast<int>(c));

    // Fixed events accumulate continuously.
    for (std::size_t i = 0; i < options_.events.size(); ++i) {
        hw::HwEvent ev = options_.events[i];
        if (ev == hw::HwEvent::instRetired)
            raw_[i] += pmu.fixedValue(0);
        else if (ev == hw::HwEvent::coreCycles)
            raw_[i] += pmu.fixedValue(1);
        else if (ev == hw::HwEvent::refCycles)
            raw_[i] += pmu.fixedValue(2);
    }
}

void
MultiplexedPmuSession::beginWindow()
{
    windowStart_ = sys_.now();
    sys_.kernel().core(core_).syncTo(sys_.now());
    programGroup(activeGroup_);
    sys_.kernel().core(core_).pmu().globalEnableAll();
    counting_ = true;
}

void
MultiplexedPmuSession::endWindow()
{
    if (!counting_)
        return;
    sys_.kernel().core(core_).syncTo(sys_.now());
    sys_.kernel().core(core_).pmu().globalDisable();
    harvestGroup();
    Tick window = sys_.now() - windowStart_;
    monitoredTime_ += window;
    for (std::size_t idx : groups_[activeGroup_])
        enabled_[idx] += window;
    for (std::size_t i = 0; i < options_.events.size(); ++i)
        if (isFixedEvent(options_.events[i]))
            enabled_[i] += window;
    counting_ = false;
}

void
MultiplexedPmuSession::arm()
{
    panic_if(armed_, "MultiplexedPmuSession::arm twice");
    kernel::Process *target =
        sys_.kernel().findProcess(target_);
    core_ = target ? target->affinity() : 0;

    hookId_ = sys_.kernel().registerSwitchHook(
        [this](kernel::Process *prev, kernel::Process *next,
               CoreId core) { onSwitch(prev, next, core); });
    timer_ = sys_.kernel().createHrTimer(
        "pmu-multiplex", core_, [this] { onRotate(); },
        options_.rotateCost, 512);
    armed_ = true;

    kernel::Process *running = sys_.kernel().running(core_);
    if (running && isMonitored(running)) {
        beginWindow();
        timer_->startPeriodic(options_.rotateInterval);
        timerStarted_ = true;
    }
}

void
MultiplexedPmuSession::disarm()
{
    if (!armed_)
        return;
    endWindow();
    timer_->cancel();
    sys_.kernel().unregisterSwitchHook(hookId_);
    armed_ = false;
}

void
MultiplexedPmuSession::onSwitch(kernel::Process *prev,
                                kernel::Process *next,
                                CoreId core)
{
    if (core != core_)
        return;
    bool prev_mon = isMonitored(prev);
    bool next_mon = isMonitored(next);
    if (prev_mon == next_mon)
        return;
    if (prev_mon) {
        endWindow();
        timer_->cancel();
    } else {
        beginWindow();
        if (timerStarted_) {
            timer_->resume();
        } else {
            timer_->startPeriodic(options_.rotateInterval);
            timerStarted_ = true;
        }
    }
}

void
MultiplexedPmuSession::onRotate()
{
    if (!counting_)
        return;
    endWindow();
    activeGroup_ = (activeGroup_ + 1) % groups_.size();
    ++rotations_;
    beginWindow();
}

std::vector<double>
MultiplexedPmuSession::estimates() const
{
    std::vector<double> out(options_.events.size(), 0.0);
    for (std::size_t i = 0; i < options_.events.size(); ++i) {
        if (enabled_[i] == 0)
            continue;
        out[i] = static_cast<double>(raw_[i]) *
                 static_cast<double>(monitoredTime_) /
                 static_cast<double>(enabled_[i]);
    }
    return out;
}

} // namespace klebsim::tools
