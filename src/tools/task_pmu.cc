#include "task_pmu.hh"

#include "base/logging.hh"
#include "hw/pmu.hh"

namespace klebsim::tools
{

TaskPmuSession::TaskPmuSession(kernel::Kernel &kernel, Pid target,
                               std::vector<hw::HwEvent> events,
                               bool count_kernel,
                               bool trace_children)
    : kernel_(kernel), target_(target), events_(std::move(events)),
      countKernel_(count_kernel), traceChildren_(trace_children)
{
    fatal_if(events_.empty(), "TaskPmuSession with no events");
}

TaskPmuSession::~TaskPmuSession()
{
    if (armed_)
        disarm();
}

bool
TaskPmuSession::isMonitored(const kernel::Process *proc) const
{
    if (proc == nullptr)
        return false;
    if (proc->pid() == target_)
        return true;
    return traceChildren_ &&
           kernel_.isDescendantOf(proc->pid(), target_);
}

void
TaskPmuSession::arm()
{
    panic_if(armed_, "TaskPmuSession::arm twice");
    kernel::Process *target = kernel_.findProcess(target_);
    core_ = target ? target->affinity() : 0;

    hw::Pmu &pmu = kernel_.core(core_).pmu();
    counterMap_.clear();
    int next_pmc = 0;
    for (hw::HwEvent ev : events_) {
        CounterRef ref;
        if (ev == hw::HwEvent::instRetired) {
            ref.fixed = true;
            ref.idx = 0;
        } else if (ev == hw::HwEvent::coreCycles) {
            ref.fixed = true;
            ref.idx = 1;
        } else if (ev == hw::HwEvent::refCycles) {
            ref.fixed = true;
            ref.idx = 2;
        } else {
            fatal_if(next_pmc >= hw::Pmu::numProgrammable,
                     "TaskPmuSession: too many programmable events");
            ref.fixed = false;
            ref.idx = next_pmc;
            pmu.programCounter(next_pmc, ev, true, countKernel_);
            ++next_pmc;
        }
        counterMap_.push_back(ref);
    }
    for (int i = next_pmc; i < hw::Pmu::numProgrammable; ++i)
        pmu.clearCounter(i);
    for (int i = 0; i < hw::Pmu::numFixed; ++i)
        pmu.programFixed(i, true, countKernel_);
    pmu.globalDisable();

    counterModulus_ = pmu.counterMaskValue() + 1;
    lastRaw_.assign(counterMap_.size(), 0);
    wrapBase_.assign(counterMap_.size(), 0);

    hookId_ = kernel_.registerSwitchHook(
        [this](kernel::Process *prev, kernel::Process *next,
               CoreId core) { onSwitch(prev, next, core); });
    armed_ = true;

    kernel::Process *running = kernel_.running(core_);
    if (running && isMonitored(running)) {
        // Settle lazily-attributed execution first so instructions
        // retired before arming never land in the counters.
        kernel_.core(core_).syncTo(kernel_.now());
        counting_ = true;
        pmu.globalEnableAll();
    }
}

void
TaskPmuSession::disarm()
{
    if (!armed_)
        return;
    kernel_.unregisterSwitchHook(hookId_);
    kernel_.core(core_).pmu().globalDisable();
    armed_ = false;
    counting_ = false;
}

void
TaskPmuSession::onSwitch(kernel::Process *prev,
                         kernel::Process *next, CoreId core)
{
    if (core != core_)
        return;
    bool prev_mon = isMonitored(prev);
    bool next_mon = isMonitored(next);
    if (prev_mon == next_mon)
        return;
    hw::Pmu &pmu = kernel_.core(core_).pmu();
    if (prev_mon) {
        pmu.globalDisable();
        counting_ = false;
    } else {
        pmu.globalEnableAll();
        counting_ = true;
    }
}

std::uint64_t
TaskPmuSession::read(std::size_t idx) const
{
    panic_if(idx >= counterMap_.size(), "counter index out of range");
    const hw::Pmu &pmu =
        const_cast<kernel::Kernel &>(kernel_).core(core_).pmu();
    const CounterRef &ref = counterMap_[idx];
    std::uint64_t raw = ref.fixed ? pmu.fixedValue(ref.idx)
                                  : pmu.counterValue(ref.idx);
    // Counters only count up; a reading below the previous one
    // means a wrap at the effective counter width.
    if (raw < lastRaw_[idx])
        wrapBase_[idx] += counterModulus_;
    lastRaw_[idx] = raw;
    return wrapBase_[idx] + raw;
}

std::vector<std::uint64_t>
TaskPmuSession::readAll() const
{
    std::vector<std::uint64_t> out;
    out.reserve(counterMap_.size());
    for (std::size_t i = 0; i < counterMap_.size(); ++i)
        out.push_back(read(i));
    return out;
}

} // namespace klebsim::tools
