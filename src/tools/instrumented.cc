#include "instrumented.hh"

#include "base/logging.hh"

namespace klebsim::tools
{

InstrumentedSource::InstrumentedSource(hw::WorkSource *inner,
                                       Options options)
    : inner_(inner), options_(options)
{
    panic_if(inner_ == nullptr, "instrumenting a null source");
    fatal_if(options_.readEveryInstr == 0,
             "readEveryInstr must be > 0");
}

hw::WorkChunk
InstrumentedSource::instrumentationChunk(Cycles cycles) const
{
    hw::WorkChunk chunk;
    // Roughly 2 instructions per cycle of tool code; the counts are
    // at kernel privilege so user-mode measurements ignore them.
    chunk.instructions = cycles * 2;
    chunk.branches = chunk.instructions / 8;
    chunk.mispredictRate = 0.0;
    chunk.priv = hw::PrivLevel::kernel;
    chunk.fixedCycles = cycles;
    return chunk;
}

bool
InstrumentedSource::done() const
{
    return inner_->done() && finiEmitted_ && !pointPending_;
}

hw::WorkChunk
InstrumentedSource::nextChunk(hw::MemHierarchy &mem)
{
    if (!initEmitted_) {
        initEmitted_ = true;
        if (options_.initCycles > 0)
            return instrumentationChunk(options_.initCycles);
    }
    if (pointPending_) {
        pointPending_ = false;
        ++points_;
        return instrumentationChunk(options_.pointCycles);
    }
    if (!inner_->done()) {
        hw::WorkChunk chunk = inner_->nextChunk(mem);
        sinceLastPoint_ += chunk.instructions;
        if (sinceLastPoint_ >= options_.readEveryInstr &&
            options_.pointCycles > 0) {
            sinceLastPoint_ = 0;
            pointPending_ = true;
        }
        return chunk;
    }
    panic_if(finiEmitted_, "instrumented source ran past end");
    finiEmitted_ = true;
    return instrumentationChunk(
        options_.finiCycles > 0 ? options_.finiCycles : 1);
}

void
InstrumentedSource::reset()
{
    inner_->reset();
    initEmitted_ = false;
    finiEmitted_ = false;
    sinceLastPoint_ = 0;
    pointPending_ = false;
    points_ = 0;
}

InstrumentedToolSession::Options
InstrumentedToolSession::papi(std::uint64_t read_every_instr)
{
    Options opt;
    opt.toolName = "papi";
    opt.readEveryInstr = read_every_instr;
    // PAPI-C: one read(2) per event fd plus the component layer's
    // bookkeeping; calibrated against Table II.
    opt.pointCost = usToTicks(565);
    // PAPI_library_init + component discovery dominates short runs
    // (Table III's 21.4 %).
    opt.initCost = msToTicks(17.2);
    opt.finiCost = usToTicks(300);
    return opt;
}

InstrumentedToolSession::Options
InstrumentedToolSession::limit(std::uint64_t read_every_instr,
                               bool patch_available)
{
    Options opt;
    opt.toolName = "limit";
    opt.readEveryInstr = read_every_instr;
    // LiMiT reads counters with rdpmc straight from user space (no
    // syscall), but its instrumentation regions still maintain
    // per-thread stats buffers; calibrated against Table II.
    opt.pointCost = usToTicks(400);
    opt.initCost = msToTicks(0.8);
    opt.finiCost = usToTicks(120);
    opt.supported = patch_available;
    return opt;
}

InstrumentedToolSession::InstrumentedToolSession(
    kernel::System &sys, Options options)
    : sys_(sys), options_(std::move(options))
{
}

hw::WorkSource *
InstrumentedToolSession::wrap(hw::WorkSource *inner)
{
    fatal_if(!options_.supported,
             options_.toolName +
                 ": kernel support unavailable (needs patch)");
    panic_if(wrapper_ != nullptr, "wrap() called twice");

    const auto &clock = sys_.core(0).clock();
    InstrumentedSource::Options w;
    w.readEveryInstr = options_.readEveryInstr;
    w.pointCycles = clock.ticksToCyclesCeil(options_.pointCost);
    w.initCycles = clock.ticksToCyclesCeil(options_.initCost);
    w.finiCycles = clock.ticksToCyclesCeil(options_.finiCost);
    wrapper_ = std::make_unique<InstrumentedSource>(inner, w);
    return wrapper_.get();
}

void
InstrumentedToolSession::profile(kernel::Process *target,
                                 bool start_target)
{
    fatal_if(!options_.supported,
             options_.toolName + ": unsupported kernel");
    pmu_ = std::make_unique<TaskPmuSession>(
        sys_.kernel(), target->pid(), options_.events,
        options_.countKernel);
    pmu_->arm();
    sys_.kernel().onExit(target->pid(), [this] {
        totals_ = pmu_->readAll();
    });
    if (start_target)
        sys_.kernel().startProcess(target);
}

std::uint64_t
InstrumentedToolSession::readPoints() const
{
    return wrapper_ ? wrapper_->readPoints() : 0;
}

} // namespace klebsim::tools
