#include "harness.hh"

#include "base/logging.hh"
#include "bench_support/trial_pool.hh"
#include "fault/fault_injector.hh"
#include "hw/perf_event.hh"
#include "instrumented.hh"
#include "kernel/system.hh"
#include "kleb/session.hh"
#include "perf.hh"

namespace klebsim::tools
{

namespace
{

/** Workload data regions live here in each run's address space. */
constexpr Addr workloadBase = 0x100000000ULL;

} // anonymous namespace

const char *
toolName(ToolKind kind)
{
    switch (kind) {
      case ToolKind::none:
        return "no-profiling";
      case ToolKind::kleb:
        return "K-LEB";
      case ToolKind::perfStat:
        return "perf stat";
      case ToolKind::perfRecord:
        return "perf record";
      case ToolKind::papi:
        return "PAPI";
      case ToolKind::limit:
        return "LiMiT";
    }
    return "?";
}

const std::vector<ToolKind> &
allTools()
{
    static const std::vector<ToolKind> tools = {
        ToolKind::none, ToolKind::kleb, ToolKind::perfStat,
        ToolKind::perfRecord, ToolKind::papi, ToolKind::limit};
    return tools;
}

RunResult
runOnce(const RunConfig &cfg)
{
    panic_if(!cfg.workloadFactory, "RunConfig without a workload");

    RunResult result;
    result.tool = cfg.tool;

    kernel::System sys(cfg.machine, cfg.seed, cfg.costs);

    std::unique_ptr<fault::FaultInjector> injector;
    if (!cfg.faultSpec.empty()) {
        fault::FaultPlan plan;
        std::string err;
        fatal_if(!fault::FaultPlan::parse(cfg.faultSpec, &plan,
                                          &err),
                 "bad fault spec: ", err);
        injector = std::make_unique<fault::FaultInjector>(
            plan, cfg.seed);
        injector->attach(sys);
    }

    Random wl_rng = sys.forkRng(0x3141 + cfg.seed);
    std::unique_ptr<hw::WorkSource> workload =
        cfg.workloadFactory(workloadBase, wl_rng);

    // Read-point spacing: match the sample count a timer-based tool
    // would collect over the expected lifetime (paper section V).
    std::uint64_t every = cfg.instrumentEveryInstr;
    if (every == 0) {
        double expected_samples =
            static_cast<double>(cfg.expectedLifetime) /
            static_cast<double>(cfg.period);
        if (expected_samples < 1.0)
            expected_samples = 1.0;
        every = static_cast<std::uint64_t>(
            static_cast<double>(cfg.expectedInstructions) /
            expected_samples);
        if (every == 0)
            every = 1;
    }

    std::unique_ptr<kleb::Session> kleb_session;
    std::unique_ptr<PerfStatSession> stat_session;
    std::unique_ptr<PerfRecordSession> record_session;
    std::unique_ptr<InstrumentedToolSession> instr_session;

    hw::WorkSource *source = workload.get();

    // Instrumented tools must wrap the source before the process
    // exists.
    if (cfg.tool == ToolKind::papi || cfg.tool == ToolKind::limit) {
        auto options =
            cfg.tool == ToolKind::papi
                ? InstrumentedToolSession::papi(every)
                : InstrumentedToolSession::limit(
                      every, cfg.limitPatchAvailable);
        options.events = cfg.events;
        options.countKernel = cfg.countKernel;
        if (!options.supported) {
            result.supported = false;
            return result;
        }
        instr_session = std::make_unique<InstrumentedToolSession>(
            sys, options);
        source = instr_session->wrap(source);
    }

    kernel::Process *target = sys.kernel().createWorkload(
        "target", source, cfg.core);

    switch (cfg.tool) {
      case ToolKind::none:
        sys.kernel().startProcess(target);
        break;

      case ToolKind::kleb: {
        kleb::Session::Options opts;
        opts.events = cfg.events;
        opts.period = cfg.period;
        opts.countKernel = cfg.countKernel;
        opts.idealTimer = cfg.idealTimer;
        opts.durableLog = cfg.durableLog || cfg.supervise;
        opts.supervise = cfg.supervise;
        if (cfg.heartbeatTimeout > 0)
            opts.supervisorTuning.heartbeatTimeout =
                cfg.heartbeatTimeout;
        if (cfg.restartBudget >= 0)
            opts.supervisorTuning.restartBudget = cfg.restartBudget;
        if (cfg.restartBackoff > 0)
            opts.supervisorTuning.restartBackoff =
                cfg.restartBackoff;
        opts.adaptive = cfg.adaptive;
        if (cfg.overheadBudget > 0)
            opts.governor.budget = cfg.overheadBudget;
        if (cfg.minPeriod > 0)
            opts.governor.minPeriod = cfg.minPeriod;
        if (cfg.maxPeriod > 0)
            opts.governor.maxPeriod = cfg.maxPeriod;
        if (injector) {
            opts.controllerTuning.setPeriodFaultHook =
                injector->setPeriodFailHook();
            opts.controllerTuning.reprogramHook =
                injector->reprogramCrashHook(sys);
            // A hang and a stall can both stretch the drain sleep;
            // compose the hooks so either plan key works alone.
            auto stall = injector->readerStallHook();
            auto hang = injector->controllerHangHook(sys);
            if (stall && hang)
                opts.controllerTuning.drainStallHook =
                    [stall, hang]() { return stall() + hang(); };
            else if (hang)
                opts.controllerTuning.drainStallHook = hang;
            else
                opts.controllerTuning.drainStallHook = stall;
        }
        kleb_session =
            std::make_unique<kleb::Session>(sys, opts);
        kleb_session->monitor(target);
        if (injector)
            injector->scheduleControllerCrash(
                sys, kleb_session->controllerProcess());
        break;
      }

      case ToolKind::perfStat: {
        PerfStatSession::Options opts;
        opts.events = cfg.events;
        opts.interval = cfg.period;
        opts.countKernel = cfg.countKernel;
        stat_session =
            std::make_unique<PerfStatSession>(sys, opts);
        stat_session->profile(target);
        break;
      }

      case ToolKind::perfRecord: {
        PerfRecordSession::Options opts;
        opts.events = cfg.events;
        opts.countKernel = cfg.countKernel;
        record_session =
            std::make_unique<PerfRecordSession>(sys, opts);
        record_session->profile(target);
        break;
      }

      case ToolKind::papi:
      case ToolKind::limit:
        instr_session->profile(target);
        break;
    }

    if (injector) {
        injector->scheduleTargetCrash(sys, target);
        injector->scheduleCpuHotplug(sys);
        injector->scheduleTaskMigration(sys, target);
    }

    sys.run(cfg.simLimit);
    fatal_if(target->state() != kernel::ProcState::zombie,
             "workload did not finish within the simulation limit");
    if (injector)
        result.faultsInjected = injector->totalInjected();

    // The paper times the whole profiled execution ("time perf stat
    // ./prog"), so tool setup that delays the program's start is
    // part of the measured run time.
    result.lifetime = target->exitTick();
    result.seconds = ticksToSec(result.lifetime);
    result.trueTotals = target->execContext()->totalEvents();
    result.flops = target->execContext()->flopsDone();
    result.contextSwitches = sys.kernel().contextSwitches();

    switch (cfg.tool) {
      case ToolKind::none:
        break;
      case ToolKind::kleb: {
        const hw::EventVector totals = kleb_session->finalTotals();
        for (hw::HwEvent ev : cfg.events)
            result.totals.push_back(at(totals, ev));
        result.samples = kleb_session->samples().size();
        result.series = kleb_session->series();
        result.klebStatus = kleb_session->status();
        result.klebAborted = kleb_session->aborted();
        result.klebRetries = kleb_session->retries();
        result.klebLoadAttempts = kleb_session->loadAttempts();
        result.supervisor = kleb_session->supervisorStats();
        if (const kleb::RateGovernor *gov =
                kleb_session->governor())
            result.governor = gov->stats();
        if (const kleb::DurableLog *dlog =
                kleb_session->durableLog()) {
            // Crash recovery runs over a copy of the medium so the
            // post-run corruption faults (torn tail, bitflips)
            // never touch the live session state.
            std::vector<std::uint8_t> medium = dlog->bytes();
            if (injector)
                injector->corruptLog(medium,
                                     kleb::DurableLog::headerSize);
            kleb::RecoveredLog rec = kleb::LogRecovery::scan(medium);
            result.recovery = rec.report;
            result.rateChanges = rec.rateChanges;
            std::vector<std::string> names;
            names.reserve(cfg.events.size());
            for (hw::HwEvent ev : cfg.events)
                names.emplace_back(hw::eventName(ev));
            result.recoveredSeries =
                kleb::LogRecovery::splice(rec, names);
            if (cfg.keepDurableBytes)
                result.durableBytes = std::move(medium);
        }
        break;
      }
      case ToolKind::perfStat:
        result.totals = stat_session->totals();
        result.samples = stat_session->samples().size();
        result.series = stat_session->series();
        break;
      case ToolKind::perfRecord:
        result.totals = record_session->totals();
        result.samples = record_session->samples().size();
        result.series = record_session->series();
        break;
      case ToolKind::papi:
      case ToolKind::limit:
        result.totals = instr_session->totals();
        result.samples = instr_session->readPoints();
        break;
    }

    return result;
}

std::vector<double>
runMany(RunConfig cfg, int runs, unsigned jobs)
{
    if (runs <= 0)
        return {};
    const std::uint64_t base_seed = cfg.seed;
    bench::TrialPool pool(jobs);
    std::vector<RunResult> results = pool.map(
        static_cast<std::size_t>(runs), [&](std::size_t i) {
            RunConfig trial_cfg = cfg;
            trial_cfg.seed = bench::trialSeed(
                base_seed,
                static_cast<std::uint64_t>(cfg.tool), i);
            return runOnce(trial_cfg);
        });
    std::vector<double> secs;
    secs.reserve(results.size());
    for (const RunResult &r : results) {
        if (!r.supported)
            return {};
        secs.push_back(r.seconds);
    }
    return secs;
}

double
overheadPct(const std::vector<double> &tool_secs,
            const std::vector<double> &baseline_secs)
{
    panic_if(tool_secs.empty() || baseline_secs.empty(),
             "overheadPct with empty samples");
    auto mean = [](const std::vector<double> &v) {
        double sum = 0;
        for (double x : v)
            sum += x;
        return sum / static_cast<double>(v.size());
    };
    double base = mean(baseline_secs);
    return (mean(tool_secs) - base) / base * 100.0;
}

} // namespace klebsim::tools
