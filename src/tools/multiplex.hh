/**
 * @file
 * Counter multiplexing (paper section VI).
 *
 * Real PMUs expose only a few programmable counters (four on
 * Nehalem).  perf counts more events than that by *time
 * multiplexing*: it rotates event groups onto the counters on a
 * fixed interval and scales each group's observed count by
 *
 *     estimate = observed * t_monitored / t_group_enabled .
 *
 * The estimate is only unbiased if the event's rate is stationary —
 * bursty, phase-structured programs (LINPACK!) violate that, which
 * is exactly the paper's argument that "this estimation may not be
 * suitable for measurement systems that require precision".
 * MultiplexedPmuSession implements the mechanism so the error can
 * be measured (see bench/abl_multiplexing).
 */

#ifndef KLEBSIM_TOOLS_MULTIPLEX_HH
#define KLEBSIM_TOOLS_MULTIPLEX_HH

#include <vector>

#include "kernel/system.hh"
#include "task_pmu.hh"

namespace klebsim::tools
{

/**
 * A per-task counting session over more programmable events than
 * the PMU has programmable counters.
 */
class MultiplexedPmuSession
{
  public:
    struct Options
    {
        /** Events to estimate (any number; groups of <= 4). */
        std::vector<hw::HwEvent> events;

        /** Group rotation interval (perf rotates on kernel ticks). */
        Tick rotateInterval = msToTicks(4);

        /** Kernel cost of one rotation (reprogram + bookkeeping). */
        Tick rotateCost = usToTicks(2);

        bool countKernel = false;
    };

    MultiplexedPmuSession(kernel::System &sys, Pid target,
                          Options options);
    ~MultiplexedPmuSession();

    MultiplexedPmuSession(const MultiplexedPmuSession &) = delete;
    MultiplexedPmuSession &
    operator=(const MultiplexedPmuSession &) = delete;

    /** Begin counting/rotating (target gating via switch hook). */
    void arm();

    /** Stop and fold in the final partial window. */
    void disarm();

    /** Number of event groups the events were split into. */
    std::size_t groups() const { return groups_.size(); }

    /** Rotations performed so far. */
    std::uint64_t rotations() const { return rotations_; }

    /** Raw counted value per event (while its group was live). */
    const std::vector<std::uint64_t> &rawCounts() const
    { return raw_; }

    /** Time each event's group was live while the target ran. */
    const std::vector<Tick> &enabledTime() const
    { return enabled_; }

    /** Total on-core time of the target while armed. */
    Tick monitoredTime() const { return monitoredTime_; }

    /**
     * Scaled estimates, in event order: raw * monitored/enabled
     * (0 when a group never ran).
     */
    std::vector<double> estimates() const;

  private:
    bool isMonitored(const kernel::Process *proc) const;
    void onSwitch(kernel::Process *prev, kernel::Process *next,
                  CoreId core);
    void onRotate();
    void programGroup(std::size_t idx);
    void harvestGroup();
    void beginWindow();
    void endWindow();

    kernel::System &sys_;
    Pid target_;
    Options options_;

    /** Event indices (into options_.events) per group. */
    std::vector<std::vector<std::size_t>> groups_;

    std::vector<std::uint64_t> raw_;
    std::vector<Tick> enabled_;
    Tick monitoredTime_ = 0;

    CoreId core_ = invalidCore;
    int hookId_ = -1;
    kernel::HrTimer *timer_ = nullptr;
    bool timerStarted_ = false;
    bool armed_ = false;
    bool counting_ = false;
    std::size_t activeGroup_ = 0;
    Tick windowStart_ = 0;
    std::uint64_t rotations_ = 0;
};

} // namespace klebsim::tools

#endif // KLEBSIM_TOOLS_MULTIPLEX_HH
