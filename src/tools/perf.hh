/**
 * @file
 * Models of the Linux perf tool's two collection modes (paper
 * section II-B):
 *
 *  - perf stat interval mode: per-task counting in the kernel, with
 *    the perf user process waking on a (>=10 ms) user-space timer
 *    each interval to read every event fd via syscalls and format
 *    the output — the per-interval user-space work is what makes
 *    perf stat the costly timer-based baseline;
 *
 *  - perf record sampling mode: kernel-side sample interrupts at a
 *    sampling frequency write records into the mmap ring; the perf
 *    process drains the ring occasionally.  Totals are estimated
 *    from the last sample (hence the small count error in Fig. 9).
 */

#ifndef KLEBSIM_TOOLS_PERF_HH
#define KLEBSIM_TOOLS_PERF_HH

#include <memory>
#include <vector>

#include "kernel/system.hh"
#include "stats/time_series.hh"
#include "task_pmu.hh"

namespace klebsim::tools
{

/** A timestamped counter snapshot (shared by both perf modes). */
struct PerfSample
{
    Tick timestamp = 0;
    std::vector<std::uint64_t> counts;
};

/**
 * perf stat -I <interval> -e <events> -p <pid>.
 */
class PerfStatSession
{
  public:
    struct Options
    {
        std::vector<hw::HwEvent> events = {
            hw::HwEvent::instRetired, hw::HwEvent::llcReference,
            hw::HwEvent::llcMiss, hw::HwEvent::branchRetired};

        /** Requested interval; clamped up to the 10 ms floor. */
        Tick interval = msToTicks(10);

        bool countKernel = false;
        CoreId core = invalidCore; //!< default: target's core

        /** @{ Calibrated costs (DESIGN.md section 5). */
        Tick setupCost = msToTicks(2.7);
        Tick perEventOpenCost = usToTicks(18);
        Tick perEventReadCost = usToTicks(1.3);
        Tick intervalProcessCost = usToTicks(590);
        std::uint64_t intervalFootprint = 16 * 1024;
        Tick finalReportCost = usToTicks(300);
        /** @} */
    };

    /** The user-space timer cannot beat this (paper section II-C). */
    static constexpr Tick minInterval = msToTicks(10);

    PerfStatSession(kernel::System &sys, Options options);
    ~PerfStatSession();

    /** Launch perf; it starts @p target once counters are armed. */
    void profile(kernel::Process *target, bool start_target = true);

    bool finished() const;

    /** Interval snapshots (cumulative counts). */
    const std::vector<PerfSample> &samples() const;

    /** Final exact totals, in event order. */
    std::vector<std::uint64_t> totals() const;

    /** Snapshot series with one channel per event. */
    stats::TimeSeries series() const;

    /** Effective interval after the 10 ms floor. */
    Tick effectiveInterval() const { return options_.interval; }

  private:
    class Behavior;

    kernel::System &sys_;
    Options options_;
    std::unique_ptr<Behavior> behavior_;
    std::unique_ptr<TaskPmuSession> pmu_;
    kernel::Process *perfProc_ = nullptr;
};

/**
 * perf record -F <freq> -e <events> -p <pid>.
 */
class PerfRecordSession
{
  public:
    struct Options
    {
        std::vector<hw::HwEvent> events = {
            hw::HwEvent::instRetired, hw::HwEvent::llcReference,
            hw::HwEvent::llcMiss, hw::HwEvent::branchRetired};

        /** Sampling frequency (perf's default ballpark). */
        double freqHz = 4000.0;

        bool countKernel = false;

        /** @{ Calibrated costs. */
        Tick setupCost = usToTicks(250);
        Tick perSampleCost = usToTicks(3.15);
        std::uint64_t sampleFootprint = 256;
        Tick drainInterval = msToTicks(50);
        Tick drainCost = usToTicks(180);
        std::uint64_t drainFootprint = 16 * 1024;
        Tick finalizeCost = usToTicks(600);
        /** @} */
    };

    PerfRecordSession(kernel::System &sys, Options options);
    ~PerfRecordSession();

    void profile(kernel::Process *target, bool start_target = true);

    bool finished() const;

    /** All recorded samples. */
    const std::vector<PerfSample> &samples() const;

    /**
     * Estimated totals: the last sample's counter snapshot (the
     * sampling method never sees the final stretch of execution).
     */
    std::vector<std::uint64_t> totals() const;

    stats::TimeSeries series() const;

  private:
    class Behavior;

    void onSwitch(kernel::Process *prev, kernel::Process *next,
                  CoreId core);
    void onSampleTimer();
    bool isMonitored(const kernel::Process *proc) const;

    /** Arm counters, sampling timer and switch gating (from the
     *  perf process's open syscall). */
    void armKernelSide();

    /** Move kernel-ring samples into perf.data. */
    void drainRing();

    kernel::System &sys_;
    Options options_;
    std::unique_ptr<Behavior> behavior_;
    std::unique_ptr<TaskPmuSession> pmu_;
    kernel::Process *perfProc_ = nullptr;
    kernel::Process *target_ = nullptr;

    kernel::HrTimer *timer_ = nullptr;
    bool timerStarted_ = false;
    int hookId_ = -1;
    CoreId core_ = invalidCore;
    std::vector<PerfSample> ring_;   //!< kernel-side mmap ring
    std::vector<PerfSample> drained_; //!< perf.data contents
};

/** Build a TimeSeries from PerfSample snapshots. */
stats::TimeSeries perfSeries(const std::vector<PerfSample> &samples,
                             const std::vector<hw::HwEvent> &events);

} // namespace klebsim::tools

#endif // KLEBSIM_TOOLS_PERF_HH
