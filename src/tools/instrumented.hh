/**
 * @file
 * Source-instrumented profiling (PAPI and LiMiT, paper section V).
 *
 * Neither tool supports timer-based collection: the user edits the
 * program source to call counter-read APIs at strategic points.  We
 * model that by wrapping the workload's chunk stream: after every N
 * instructions an instrumentation chunk is inserted whose cost is
 * the tool's read-point price — syscall-laden for PAPI, rdpmc-based
 * (but still bookkeeping-heavy) for LiMiT — plus a one-time library
 * initialization at program start.
 *
 * Instrumentation chunks execute at kernel privilege so the tools'
 * own activity stays out of the user-mode counts they report
 * (matching Fig. 9's <0.3 % cross-tool agreement).
 */

#ifndef KLEBSIM_TOOLS_INSTRUMENTED_HH
#define KLEBSIM_TOOLS_INSTRUMENTED_HH

#include <memory>
#include <string>
#include <vector>

#include "kernel/system.hh"
#include "task_pmu.hh"

namespace klebsim::tools
{

/**
 * Wraps an inner WorkSource, interleaving read-point chunks.
 */
class InstrumentedSource : public hw::WorkSource
{
  public:
    struct Options
    {
        /** Instructions between read points. */
        std::uint64_t readEveryInstr = 10000000;

        /** Cost of one read point. */
        Cycles pointCycles = 0;

        /** One-time library init at program start. */
        Cycles initCycles = 0;

        /** Final stop/read at program end. */
        Cycles finiCycles = 0;
    };

    InstrumentedSource(hw::WorkSource *inner, Options options);

    /** @{ WorkSource interface. */
    bool done() const override;
    hw::WorkChunk nextChunk(hw::MemHierarchy &mem) override;
    void reset() override;
    /** @} */

    /** Read points emitted so far. */
    std::uint64_t readPoints() const { return points_; }

  private:
    hw::WorkChunk instrumentationChunk(Cycles cycles) const;

    hw::WorkSource *inner_;
    Options options_;
    bool initEmitted_ = false;
    bool finiEmitted_ = false;
    std::uint64_t sinceLastPoint_ = 0;
    bool pointPending_ = false;
    std::uint64_t points_ = 0;
};

/**
 * A profiling run driven by source instrumentation: the wrapper
 * supplies the in-program costs; a TaskPmuSession provides the
 * counter values the instrumentation reads; totals are captured at
 * the target's exit.
 */
class InstrumentedToolSession
{
  public:
    struct Options
    {
        std::string toolName = "papi";
        std::vector<hw::HwEvent> events = {
            hw::HwEvent::instRetired, hw::HwEvent::llcReference,
            hw::HwEvent::llcMiss, hw::HwEvent::branchRetired};

        std::uint64_t readEveryInstr = 10000000;
        Tick pointCost = 0;
        Tick initCost = 0;
        Tick finiCost = 0;
        bool countKernel = false;

        /** LiMiT needs its kernel patch; false => unsupported. */
        bool supported = true;
    };

    /** The paper's PAPI cost profile (calibrated to Table II/III). */
    static Options papi(std::uint64_t read_every_instr);

    /**
     * The paper's LiMiT cost profile.  @p patch_available reflects
     * whether this kernel carries the LiMiT patch (the paper's MKL
     * testbed did not — Table III reports no LiMiT data).
     */
    static Options limit(std::uint64_t read_every_instr,
                         bool patch_available);

    InstrumentedToolSession(kernel::System &sys, Options options);

    /** False when the tool cannot run on this kernel. */
    bool supported() const { return options_.supported; }

    /**
     * Wrap @p inner with the tool's instrumentation.  Must be
     * called before creating the target process.
     */
    hw::WorkSource *wrap(hw::WorkSource *inner);

    /** Arm counting and start the (already created) target. */
    void profile(kernel::Process *target, bool start_target = true);

    /** Exact totals captured at target exit, in event order. */
    const std::vector<std::uint64_t> &totals() const
    { return totals_; }

    std::uint64_t readPoints() const;

  private:
    kernel::System &sys_;
    Options options_;
    std::unique_ptr<InstrumentedSource> wrapper_;
    std::unique_ptr<TaskPmuSession> pmu_;
    std::vector<std::uint64_t> totals_;
};

} // namespace klebsim::tools

#endif // KLEBSIM_TOOLS_INSTRUMENTED_HH
