/**
 * @file
 * Sequential-run profiling (paper section VI).
 *
 * When more events are wanted than the PMU has counters, the
 * offline alternative to multiplexing is sequential runs: "one run
 * measures events A, B, C and D while the next measures events W,
 * X, Y and Z".  SequentialProfiler runs the same workload once per
 * event set under K-LEB and merges the totals.  On a deterministic
 * program (same seed) the merge is exact — the contrast with
 * multiplexing's estimation error is measured in
 * bench/abl_multiplexing and tests/kleb/test_sequential.cc.  The
 * paper notes this "proves difficult when trying to perform online
 * or runtime analysis": each extra event set costs a full re-run.
 */

#ifndef KLEBSIM_KLEB_SEQUENTIAL_HH
#define KLEBSIM_KLEB_SEQUENTIAL_HH

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "hw/exec_types.hh"
#include "hw/machine_config.hh"
#include "kernel/cost_model.hh"
#include "session.hh"

namespace klebsim::kleb
{

/**
 * Multi-run profiler merging per-set K-LEB totals.
 */
class SequentialProfiler
{
  public:
    struct Options
    {
        /** Event sets, one monitored run per entry. */
        std::vector<std::vector<hw::HwEvent>> eventSets;

        Tick period = usToTicks(100);
        std::uint64_t seed = 1;
        hw::MachineConfig machine =
            hw::MachineConfig::corei7_920();
        kernel::CostModel costs{};
        CoreId core = 0;
    };

    /** Per-run bookkeeping. */
    struct RunInfo
    {
        std::vector<hw::HwEvent> events;
        Tick lifetime = 0;
        std::size_t samples = 0;
    };

    struct Result
    {
        /** Merged totals across all sets (exact per set). */
        std::map<hw::HwEvent, std::uint64_t> totals;

        std::vector<RunInfo> runs;

        /** Total profiling wall time (the cost of this approach). */
        Tick totalTime = 0;

        std::uint64_t
        total(hw::HwEvent ev) const
        {
            auto it = totals.find(ev);
            return it == totals.end() ? 0 : it->second;
        }
    };

    /**
     * Run @p factory's workload once per event set and merge.
     * The factory is invoked with the same base address and an
     * identically seeded Random each run, so the program replays
     * bit-for-bit and per-set totals compose exactly.
     */
    static Result
    profile(const std::function<std::unique_ptr<hw::WorkSource>(
                Addr, Random)> &factory,
            const Options &options);
};

} // namespace klebsim::kleb

#endif // KLEBSIM_KLEB_SEQUENTIAL_HH
