#include "durable_log.hh"

#include <array>

#include "base/logging.hh"
#include "base/thread_safety.hh"

namespace klebsim::kleb
{

namespace
{

/** Reflected CRC32C lookup table, built once per process. */
const std::array<std::uint32_t, 256> &
crcTable()
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? (0x82f63b78u ^ (c >> 1)) : (c >> 1);
            t[i] = c;
        }
        return t;
    }();
    return table;
}

void
put32(std::vector<std::uint8_t> &out, std::size_t at,
      std::uint32_t v)
{
    out[at + 0] = static_cast<std::uint8_t>(v);
    out[at + 1] = static_cast<std::uint8_t>(v >> 8);
    out[at + 2] = static_cast<std::uint8_t>(v >> 16);
    out[at + 3] = static_cast<std::uint8_t>(v >> 24);
}

void
put64(std::vector<std::uint8_t> &out, std::size_t at,
      std::uint64_t v)
{
    put32(out, at, static_cast<std::uint32_t>(v));
    put32(out, at + 4, static_cast<std::uint32_t>(v >> 32));
}

} // anonymous namespace

std::uint32_t
crc32c(const std::uint8_t *data, std::size_t len,
       std::uint32_t seed)
{
    const auto &table = crcTable();
    std::uint32_t crc = ~seed;
    for (std::size_t i = 0; i < len; ++i)
        crc = table[(crc ^ data[i]) & 0xff] ^ (crc >> 8);
    return ~crc;
}

DurableLog::DurableLog()
{
    bytes_.assign(headerSize, 0);
    updateHeader();
}

void
DurableLog::updateHeader()
{
    put32(bytes_, 0, logMagic);
    put32(bytes_, 4, version);
    put64(bytes_, 8, framesAppended_);
    put32(bytes_, 16, epochsOpened_);
    put32(bytes_, 20, 0);
    put64(bytes_, 24, samplesAppended_);
}

void
DurableLog::writeFrame(FrameKind kind, Tick timestamp,
                       const Sample &s)
{
    // The byte image is single-writer by contract (one controller
    // incarnation at a time); instrumented so a lockset-checked test
    // catches two incarnations ever appending concurrently.
    KLEB_ANNOTATE_ACCESS(&bytes_, "kleb.DurableLog.bytes");
    const std::size_t at = bytes_.size();
    bytes_.resize(at + frameSize, 0);

    put32(bytes_, at + 0, frameMagic);
    // Epoch ids are 0-based; epochsOpened_ was already bumped for
    // epochBegin frames, so the current epoch is epochsOpened_ - 1.
    put32(bytes_, at + 8, epochsOpened_ - 1);
    put32(bytes_, at + 12, static_cast<std::uint32_t>(kind));
    put64(bytes_, at + 16, framesAppended_);
    put64(bytes_, at + 24, timestamp);
    bytes_[at + 32] = static_cast<std::uint8_t>(s.cause);
    bytes_[at + 33] = s.numEvents;
    // Core id in two of the frame's reserved bytes: core 0 writes
    // zeros, so pre-SMP media stay bit-for-bit identical.
    bytes_[at + 34] = static_cast<std::uint8_t>(s.core);
    bytes_[at + 35] = static_cast<std::uint8_t>(s.core >> 8);
    for (std::size_t i = 0; i < maxSampleEvents; ++i)
        put64(bytes_, at + 40 + 8 * i, s.counts[i]);

    // The CRC covers everything after itself: [at+8, at+96).
    put32(bytes_, at + 4,
          crc32c(bytes_.data() + at + 8, frameSize - 8));

    ++framesAppended_;
    updateHeader();
}

std::uint32_t
DurableLog::beginEpoch(Tick now)
{
    ++epochsOpened_;
    Sample blank{};
    writeFrame(FrameKind::epochBegin, now, blank);
    return epochsOpened_ - 1;
}

void
DurableLog::append(const Sample &s)
{
    panic_if(epochsOpened_ == 0,
             "DurableLog::append before beginEpoch");
    ++samplesAppended_;
    writeFrame(FrameKind::sample, s.timestamp, s);
}

void
DurableLog::recordRateChange(Tick now, Tick old_period,
                             Tick new_period)
{
    panic_if(epochsOpened_ == 0,
             "DurableLog::recordRateChange before beginEpoch");
    panic_if(new_period == 0,
             "DurableLog::recordRateChange to zero period");
    Sample s{};
    s.counts[0] = old_period;
    s.counts[1] = new_period;
    ++rateChangesAppended_;
    writeFrame(FrameKind::rateChange, now, s);
}

} // namespace klebsim::kleb
