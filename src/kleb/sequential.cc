#include "sequential.hh"

#include "base/logging.hh"
#include "kernel/system.hh"

namespace klebsim::kleb
{

SequentialProfiler::Result
SequentialProfiler::profile(
    const std::function<std::unique_ptr<hw::WorkSource>(
        Addr, Random)> &factory,
    const Options &options)
{
    fatal_if(options.eventSets.empty(),
             "sequential profiling needs at least one event set");
    constexpr Addr base = 0x100000000ULL;

    Result result;
    for (const auto &events : options.eventSets) {
        kernel::System sys(options.machine, options.seed,
                           options.costs);
        // Identical seeding per run: deterministic replay is what
        // makes sequential profiling exact.
        Random wl_rng = sys.forkRng(0x5e9 + options.seed);
        std::unique_ptr<hw::WorkSource> workload =
            factory(base, wl_rng);
        kernel::Process *target = sys.kernel().createWorkload(
            "target", workload.get(), options.core);

        Session::Options sopts;
        sopts.events = events;
        sopts.period = options.period;
        Session session(sys, sopts);
        session.monitor(target);
        sys.run();

        fatal_if(target->state() != kernel::ProcState::zombie,
                 "sequential profiling run did not finish");

        hw::EventVector totals = session.finalTotals();
        RunInfo info;
        info.events = events;
        info.lifetime = target->lifetime();
        info.samples = session.samples().size();
        result.runs.push_back(info);
        result.totalTime += sys.now();
        for (hw::HwEvent ev : events)
            result.totals[ev] = at(totals, ev);
    }
    return result;
}

} // namespace klebsim::kleb
