#include "session.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/str.hh"

namespace klebsim::kleb
{

namespace
{

/**
 * First unbound /dev/klebN minor in @p kernel.  Allocating from the
 * kernel's own device table (instead of a process-wide counter)
 * keeps the path deterministic per simulated machine — concurrent
 * trials on other threads each start at /dev/kleb0 — and makes the
 * lookup free of shared mutable state.
 */
std::string
nextDevPath(kernel::Kernel &kernel)
{
    for (int minor = 0;; ++minor) {
        std::string path = csprintf("/dev/kleb%d", minor);
        if (kernel.moduleAt(path) == nullptr)
            return path;
    }
}

} // anonymous namespace

Session::Session(kernel::System &sys, Options options)
    : sys_(sys), options_(std::move(options))
{
    devPath_ = nextDevPath(sys_.kernel());
    int attempts = 1 + std::max(0, options_.loadRetries);
    for (int i = 0; i < attempts; ++i) {
        ++loadAttempts_;
        auto module = std::make_unique<KLebModule>(
            options_.moduleTuning);
        KLebModule *raw = module.get();
        if (sys_.kernel().tryLoadModule(std::move(module),
                                        devPath_)) {
            module_ = raw;
            break;
        }
    }
    loadFailed_ = module_ == nullptr;
    if (loadFailed_)
        return;

    // Snapshot the final status and drop the pointer the moment
    // our module is unloaded, whoever unloads it: every later
    // status() call then reads the snapshot, never freed memory.
    moduleHookId_ = sys_.kernel().registerModuleHook(
        [this](kernel::KernelModule &mod, const std::string &path,
               bool loaded) {
            if (loaded || path != devPath_ ||
                &mod != static_cast<kernel::KernelModule *>(
                            module_))
                return;
            lastStatus_ = module_->status();
            module_ = nullptr;
        });
}

Session::~Session()
{
    // Exactly-once module teardown: whoever unloads first (the
    // sequential runner, a test, or this destructor) trips the
    // module hook, which nulls module_ — so the rmmod below can
    // never run twice, and a module left loaded by a dead
    // controller (supervisor out of budget, degrade path) is still
    // reclaimed here.
    if (module_ != nullptr)
        sys_.kernel().unloadModule(devPath_);
    if (moduleHookId_ != -1)
        sys_.kernel().unregisterModuleHook(moduleHookId_);
    if (cpuHookId_ != -1)
        sys_.kernel().unregisterCpuHook(cpuHookId_);
}

KLebStatus
Session::status() const
{
    return module_ ? module_->status() : lastStatus_;
}

void
Session::monitor(kernel::Process *target, bool start_target)
{
    panic_if(target == nullptr, "Session::monitor(null)");
    panic_if(controller_ != nullptr, "session already monitoring");
    target_ = target;

    // Module never came up: degrade to an unmonitored run rather
    // than wedging the simulation behind a process that would
    // never be started.
    if (loadFailed_) {
        if (start_target)
            sys_.kernel().startProcess(target);
        return;
    }

    cfg_ = KLebConfig{};
    cfg_.targetPid = target->pid();
    cfg_.events = options_.events;
    cfg_.timerPeriod = options_.period;
    cfg_.bufferCapacity = options_.bufferCapacity;
    cfg_.traceChildren = options_.traceChildren;
    cfg_.countKernel = options_.countKernel;

    auto on_started = [this, target, start_target] {
        if (options_.idealTimer && module_) {
            module_->setTimerJitterModel(
                hw::TimerJitterModel::ideal());
        }
        if (start_target && target->state() ==
                                kernel::ProcState::created)
            sys_.kernel().startProcess(target);
    };

    if (options_.supervise || options_.durableLog)
        durableLog_ = std::make_unique<DurableLog>();

    if (options_.adaptive) {
        RateGovernor::Config gc = options_.governor;
        // Derive the cost model from the same calibrated tunings
        // the simulation charges, so the governor's estimate tracks
        // the overhead the machine actually experiences.
        if (gc.costPerSample == 0)
            gc.costPerSample =
                options_.controllerTuning.logPerSample +
                options_.moduleTuning.handlerCost +
                options_.moduleTuning.readPerSample;
        if (gc.costPerDrain == 0)
            gc.costPerDrain = options_.controllerTuning.logBase;
        governor_ =
            std::make_unique<RateGovernor>(gc, cfg_.timerPeriod);
        // Hotplug hysteresis: an offline->online cycle of any core
        // resets the governor's estimator so the quiesce/re-arm
        // transient never drives a proposal.
        cpuHookId_ = sys_.kernel().registerCpuHook(
            [this](CoreId c, kernel::CpuEvent ev) {
                if (ev == kernel::CpuEvent::goingOffline)
                    governor_->noteCoreOffline(c);
                else if (ev == kernel::CpuEvent::online)
                    governor_->noteCoreOnline(c);
            });
    }

    // The ideal-timer override must also apply to a timer created
    // after START; install via the behavior's start hook above and
    // again below in case of re-arm.
    behavior_ = std::make_unique<ControllerBehavior>(
        module_, devPath_, cfg_, on_started,
        options_.controllerTuning);
    plumbBehavior(*behavior_);

    CoreId core = options_.controllerCore != invalidCore
                      ? options_.controllerCore
                      : target->affinity();
    controller_ = sys_.kernel().createService(
        "kleb-controller", behavior_.get(), core);
    sys_.kernel().startProcess(controller_);

    if (options_.supervise) {
        heartbeat_.lastBeat.store(sys_.now(),
                                  std::memory_order_relaxed);
        SupervisorBehavior::Ward ward;
        ward.controller = [this] { return controller_; };
        ward.finishedCleanly = [this] {
            return behavior_ && behavior_->finished() &&
                   !behavior_->aborted();
        };
        ward.moduleLoaded = [this] {
            return module_ != nullptr;
        };
        ward.restart = [this](Tick) {
            return restartController();
        };
        ward.giveUp = [this, target, start_target] {
            // Monitoring is over for good; make sure the target at
            // least runs so the simulation can finish.
            if (start_target && target->state() ==
                                    kernel::ProcState::created)
                sys_.kernel().startProcess(target);
        };
        supervisorBehavior_ =
            std::make_unique<SupervisorBehavior>(
                std::move(ward), &heartbeat_,
                options_.supervisorTuning);
        // The watchdog must not share a CPU with its ward: a hung
        // controller wedges inside a syscall that monopolizes its
        // core, and a same-core supervisor would be starved of the
        // very poll that is meant to detect the hang.  An explicit
        // pin onto the ward's core is refused, not quietly moved.
        CoreId sup_core = core;
        if (options_.supervisorCore != invalidCore) {
            fatal_if(options_.supervisorCore == core,
                     "supervisor pinned to core ",
                     options_.supervisorCore,
                     ", the same core as its ward controller; a "
                     "same-core watchdog cannot detect a hang");
            sup_core = options_.supervisorCore;
        } else if (sys_.kernel().numCores() > 1) {
            sup_core = static_cast<CoreId>(
                (core + 1) % sys_.kernel().numCores());
        }
        supervisor_ = sys_.kernel().createService(
            "kleb-supervisor", supervisorBehavior_.get(),
            sup_core);
        sys_.kernel().startProcess(supervisor_);
    }
}

void
Session::plumbBehavior(ControllerBehavior &b)
{
    if (durableLog_)
        b.setDurableLog(durableLog_.get());
    if (options_.supervise)
        b.setHeartbeat(&heartbeat_);
    if (governor_)
        b.setGovernor(governor_.get());
}

kernel::Process *
Session::restartController()
{
    if (module_ == nullptr)
        return nullptr;

    retired_.push_back(std::move(behavior_));

    auto on_attached = [this] {
        if (options_.idealTimer && module_) {
            module_->setTimerJitterModel(
                hw::TimerJitterModel::ideal());
        }
        // The predecessor may have died before ever starting the
        // target (crash between CONFIG and START): the reattach
        // fallback path re-arms and starts it now.
        if (target_ && target_->state() ==
                           kernel::ProcState::created)
            sys_.kernel().startProcess(target_);
        if (supervisorBehavior_)
            supervisorBehavior_->noteReattach(true);
    };

    behavior_ = std::make_unique<ControllerBehavior>(
        module_, devPath_, cfg_, on_attached,
        options_.controllerTuning,
        ControllerBehavior::Mode::reattach);
    plumbBehavior(*behavior_);
    behavior_->setOnAborted([this](bool armed) {
        if (!armed && supervisorBehavior_)
            supervisorBehavior_->noteReattach(false);
    });

    // Fresh grace period: the replacement needs setup + attach
    // time before its first beat.
    heartbeat_.lastBeat.store(sys_.now(), std::memory_order_relaxed);

    CoreId core = options_.controllerCore != invalidCore
                      ? options_.controllerCore
                      : (target_ ? target_->affinity() : CoreId{0});
    controller_ = sys_.kernel().createService(
        csprintf("kleb-controller-r%zu", retired_.size()),
        behavior_.get(), core);
    sys_.kernel().startProcess(controller_);
    return controller_;
}

bool
Session::finished() const
{
    if (behavior_)
        return behavior_->finished();
    // A failed-load session has nothing left to do.
    return loadFailed_;
}

const std::vector<Sample> &
Session::samples() const
{
    static const std::vector<Sample> empty;
    if (retired_.empty())
        return behavior_ ? behavior_->log() : empty;
    // Supervised sessions splice every incarnation's log, in
    // incarnation order (which is also time order).
    mergedSamples_.clear();
    for (const auto &b : retired_)
        mergedSamples_.insert(mergedSamples_.end(),
                              b->log().begin(), b->log().end());
    if (behavior_)
        mergedSamples_.insert(mergedSamples_.end(),
                              behavior_->log().begin(),
                              behavior_->log().end());
    return mergedSamples_;
}

std::uint64_t
Session::retries() const
{
    std::uint64_t total = 0;
    for (const auto &b : retired_)
        total += b->retries();
    if (behavior_)
        total += behavior_->retries();
    return total;
}

stats::TimeSeries
Session::series() const
{
    std::vector<std::string> names;
    for (hw::HwEvent ev : options_.events)
        names.emplace_back(hw::eventName(ev));
    stats::TimeSeries ts(names);
    for (const Sample &s : samples()) {
        // Hotplug markers are control records bounding a core
        // outage, not measurements; they live in the raw sample
        // log and the durable journal but not the series.
        if (isCoreMarker(s.cause))
            continue;
        std::vector<double> row;
        row.reserve(names.size());
        for (std::size_t i = 0; i < names.size(); ++i)
            row.push_back(static_cast<double>(s.counts[i]));
        ts.append(s.timestamp, row);
    }
    return ts;
}

stats::TimeSeries
Session::deltaSeries() const
{
    stats::TimeSeries cumulative = series();
    std::vector<std::string> names = cumulative.channelNames();
    stats::TimeSeries deltas(names);

    std::vector<std::vector<double>> cols;
    cols.reserve(names.size());
    for (std::size_t c = 0; c < names.size(); ++c)
        cols.push_back(cumulative.channelDeltas(c));
    for (std::size_t r = 0; r < cumulative.size(); ++r) {
        std::vector<double> row;
        row.reserve(names.size());
        for (std::size_t c = 0; c < names.size(); ++c)
            row.push_back(cols[c][r]);
        deltas.append(cumulative.timeAt(r), row);
    }
    return deltas;
}

hw::EventVector
Session::finalTotals() const
{
    hw::EventVector totals = hw::zeroEvents();
    const auto &log = samples();
    // The newest *measurement*: hotplug markers at the tail (a core
    // cycling after the final snapshot) are control records.
    for (auto it = log.rbegin(); it != log.rend(); ++it) {
        if (isCoreMarker(it->cause))
            continue;
        for (std::size_t i = 0; i < options_.events.size(); ++i)
            at(totals, options_.events[i]) = it->counts[i];
        break;
    }
    return totals;
}

} // namespace klebsim::kleb
