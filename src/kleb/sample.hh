/**
 * @file
 * The K-LEB sample record: one timestamped snapshot of every
 * configured counter, as stored in the module's kernel ring buffer
 * and drained to user space by the controller.
 */

#ifndef KLEBSIM_KLEB_SAMPLE_HH
#define KLEBSIM_KLEB_SAMPLE_HH

#include <array>
#include <cstdint>

#include "base/types.hh"

namespace klebsim::kleb
{

/** Maximum counters per sample: 4 programmable + 3 fixed. */
constexpr std::size_t maxSampleEvents = 7;

/** Why a sample was recorded. */
enum class SampleCause : std::uint8_t
{
    timer,       //!< periodic HRTimer expiry
    switchOut,   //!< monitored process scheduled out
    final,       //!< monitoring stop / process exit
    coreOffline, //!< marker: a monitored core was quiesced (hotplug)
    coreOnline,  //!< marker: an offlined core came back
};

/**
 * True for the hotplug marker records the module journals around a
 * core outage.  Markers carry the cumulative counts at the event
 * (so the outage is bounded exactly) but are control records, not
 * measurements: they stay out of the migration ledger, the
 * user-visible time series and the fleet wire.
 */
constexpr bool
isCoreMarker(SampleCause cause)
{
    return cause == SampleCause::coreOffline ||
           cause == SampleCause::coreOnline;
}

/**
 * One counter snapshot.  Values are cumulative counter readings;
 * per-interval deltas are computed in user space.  @p core is the
 * CPU the snapshot was taken on (the core a marker is about) —
 * per-CPU sessions attribute every sample to the core that
 * produced it.
 */
struct Sample
{
    Tick timestamp = 0;
    SampleCause cause = SampleCause::timer;
    std::uint8_t numEvents = 0;
    std::uint16_t core = 0;
    std::array<std::uint64_t, maxSampleEvents> counts{};
};

} // namespace klebsim::kleb

#endif // KLEBSIM_KLEB_SAMPLE_HH
