/**
 * @file
 * Cache-line-aligned staging arena for bulk sample movement.
 *
 * The module's drain paths (controller read(), hotplug quiesce)
 * move whole runs of samples between a per-core ring and their
 * destination.  Staging them through a per-sample std::vector
 * allocates on every drain and walks the ring one element at a
 * time; the arena instead owns one cache-line-aligned slab, sized
 * once per session to the ring capacity, that RingBuffer's
 * KLEB_HOT pushBulk()/drainInto() can std::copy whole wrapped
 * segments into.  Records start on a cache-line boundary and run
 * contiguously, so a bulk move touches the minimum number of lines
 * and never shares its first line with unrelated state.
 *
 * The arena holds raw staging storage, not live data: contents are
 * only meaningful between a drainInto() and the immediately
 * following bulk append, within one module call.
 */

#ifndef KLEBSIM_KLEB_SAMPLE_ARENA_HH
#define KLEBSIM_KLEB_SAMPLE_ARENA_HH

#include <cstddef>
#include <new>

#include "base/thread_safety.hh"
#include "sample.hh"

namespace klebsim::kleb
{

/** Fixed-capacity aligned Sample slab (see file comment). */
class SampleArena
{
  public:
    /** Alignment of the slab base (one x86 cache line). */
    static constexpr std::size_t lineSize = 64;

    SampleArena() = default;

    explicit SampleArena(std::size_t capacity) { resize(capacity); }

    SampleArena(const SampleArena &) = delete;
    SampleArena &operator=(const SampleArena &) = delete;

    ~SampleArena() { release(); }

    /**
     * (Re)allocate the slab for @p capacity samples.  Not a hot
     * path: called once per CONFIG, never per drain.
     */
    void
    resize(std::size_t capacity)
    {
        if (capacity == capacity_)
            return;
        release();
        if (capacity == 0)
            return;
        void *raw = ::operator new(
            capacity * sizeof(Sample),
            std::align_val_t{lineSize});
        store_ = static_cast<Sample *>(raw);
        // Start each record's lifetime; Sample is trivial, so this
        // compiles to nothing but makes the aliasing well-defined.
        for (std::size_t i = 0; i < capacity; ++i)
            new (store_ + i) Sample();
        capacity_ = capacity;
    }

    /** Base of the staging records (aligned to lineSize). */
    KLEB_HOT Sample *data() { return store_; }

    std::size_t capacity() const { return capacity_; }

  private:
    void
    release()
    {
        if (store_ == nullptr)
            return;
        ::operator delete(store_, std::align_val_t{lineSize});
        store_ = nullptr;
        capacity_ = 0;
    }

    Sample *store_ = nullptr;
    std::size_t capacity_ = 0;
};

} // namespace klebsim::kleb

#endif // KLEBSIM_KLEB_SAMPLE_ARENA_HH
