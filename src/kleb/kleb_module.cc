#include "kleb_module.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/thread_safety.hh"
#include "hw/pmu.hh"

namespace klebsim::kleb
{

KLebModule::KLebModule() : tuning_()
{
}

KLebModule::KLebModule(Tuning tuning) : tuning_(tuning)
{
}

KLebModule::~KLebModule() = default;

void
KLebModule::init(kernel::Kernel &kernel)
{
    kernel_ = &kernel;
    perCpu_.resize(static_cast<std::size_t>(kernel.numCores()));
    switchHookId_ = kernel.registerSwitchHook(
        [this](kernel::Process *prev, kernel::Process *next,
               CoreId core) { onSwitch(prev, next, core); });
    exitHookId_ = kernel.registerExitHook(
        [this](kernel::Process &proc) { onProcessExit(proc); });
    cpuHookId_ = kernel.registerCpuHook(
        [this](CoreId core, kernel::CpuEvent event) {
            onCpuEvent(core, event);
        });
}

void
KLebModule::exitModule(kernel::Kernel &kernel)
{
    if (monitoring_)
        stopMonitoring(SampleCause::final);
    for (PerCpuState &pc : perCpu_)
        if (pc.timer)
            pc.timer->cancel();
    releaseAll();
    kernel.unregisterSwitchHook(switchHookId_);
    kernel.unregisterExitHook(exitHookId_);
    kernel.unregisterCpuHook(cpuHookId_);
}

KLebModule::PerCpuState &
KLebModule::slot(CoreId core)
{
    panic_if(core < 0 ||
                 static_cast<std::size_t>(core) >= perCpu_.size(),
             "k_leb: per-CPU slot for invalid core ", core);
    return perCpu_[static_cast<std::size_t>(core)];
}

const KLebModule::PerCpuState *
KLebModule::slotIfValid(CoreId core) const
{
    if (core < 0 || static_cast<std::size_t>(core) >= perCpu_.size())
        return nullptr;
    return &perCpu_[static_cast<std::size_t>(core)];
}

std::uint64_t
KLebModule::claimCookie() const
{
    // Any stable nonzero value distinguishing this driver instance
    // works as a perf_event-style ownership cookie.
    return static_cast<std::uint64_t>(
        reinterpret_cast<std::uintptr_t>(this));
}

kernel::HrTimer *
KLebModule::timer()
{
    const PerCpuState *pc = slotIfValid(activeCore_);
    return pc ? pc->timer : nullptr;
}

void
KLebModule::setTimerJitterModel(const hw::TimerJitterModel &m)
{
    jitterOverride_ = m;
    for (PerCpuState &pc : perCpu_)
        if (pc.timer)
            pc.timer->setJitterModel(m);
}

bool
KLebModule::isMonitored(const kernel::Process *proc)
{
    if (proc == nullptr || cfg_.targetPid == invalidPid)
        return false;
    if (proc->pid() == cfg_.targetPid)
        return true;
    return cfg_.traceChildren &&
           kernel_->isDescendantOf(proc->pid(), cfg_.targetPid);
}

bool
KLebModule::claimPmu(CoreId core)
{
    // Advisory ownership first (perf_event convention), with the
    // pmu.contend fault able to interpose a phantom owner.
    if (kernel_->drawPmuContendFault(core))
        return false;
    if (!kernel_->core(core).pmu().tryAcquire(claimCookie()))
        return false;
    slot(core).claimed = true;
    return true;
}

void
KLebModule::releaseAll()
{
    for (std::size_t cpu = 0; cpu < perCpu_.size(); ++cpu) {
        if (perCpu_[cpu].claimed) {
            kernel_->core(static_cast<CoreId>(cpu))
                .pmu()
                .release(claimCookie());
            perCpu_[cpu].claimed = false;
        }
    }
}

void
KLebModule::programPmu(CoreId core)
{
    hw::Pmu &pmu = kernel_->core(core).pmu();
    counterMap_.clear();

    int next_pmc = 0;
    for (hw::HwEvent ev : cfg_.events) {
        CounterRef ref;
        if (ev == hw::HwEvent::instRetired) {
            ref.fixed = true;
            ref.idx = 0;
        } else if (ev == hw::HwEvent::coreCycles) {
            ref.fixed = true;
            ref.idx = 1;
        } else if (ev == hw::HwEvent::refCycles) {
            ref.fixed = true;
            ref.idx = 2;
        } else {
            fatal_if(next_pmc >= hw::Pmu::numProgrammable,
                     "k_leb: more than ",
                     hw::Pmu::numProgrammable,
                     " programmable events requested");
            ref.fixed = false;
            ref.idx = next_pmc;
            pmu.programCounter(next_pmc, ev, true,
                               cfg_.countKernel);
            ++next_pmc;
        }
        counterMap_.push_back(ref);
    }
    for (int i = next_pmc; i < hw::Pmu::numProgrammable; ++i)
        pmu.clearCounter(i);
    for (int i = 0; i < hw::Pmu::numFixed; ++i)
        pmu.programFixed(i, true, cfg_.countKernel);
    pmu.globalDisable();

    PerCpuState &pc = slot(core);
    pc.programmed = true;
    pc.modulus = pmu.counterMaskValue() + 1;
    pc.lastRaw.fill(0);
    pc.wrapBase.fill(0);
}

long
KLebModule::ioctl(kernel::Kernel &kernel, kernel::Process &caller,
                  std::uint32_t cmd, void *arg)
{
    switch (cmd) {
      case ioc::config: {
        if (monitoring_)
            return kernel::err::ebusy;
        auto *cfg = static_cast<KLebConfig *>(arg);
        if (cfg == nullptr || cfg->events.empty() ||
            cfg->events.size() > maxSampleEvents ||
            cfg->timerPeriod == 0 || cfg->bufferCapacity == 0)
            return kernel::err::einval;
        kernel.chargeKernelWork(caller.affinity(),
                                tuning_.configCost, 8192);
        cfg_ = *cfg;
        // Reconfiguration drops anything undrained, exactly as the
        // single-ring module did when it replaced its buffer.
        for (PerCpuState &pc : perCpu_)
            pc.ring.reset();
        spill_.clear();
        arena_.resize(cfg_.bufferCapacity);
        configured_ = true;
        periodChanges_ = 0;
        return 0;
      }
      case ioc::start: {
        if (!configured_ || monitoring_)
            return kernel::err::einval;
        kernel::Process *target =
            kernel.findProcess(cfg_.targetPid);
        startCore_ = target ? target->affinity() : caller.affinity();
        activeCore_ = startCore_;
        // Claim the start core's PMU before touching selectors; a
        // contending owner (or an injected pmu.contend fault)
        // refuses START with EBUSY and the controller backs off.
        if (!slot(startCore_).claimed && !claimPmu(startCore_)) {
            ++contentionEvents_;
            return kernel::err::ebusy;
        }
        programPmu(startCore_);
        monitoring_ = true;
        counting_ = false;
        targetAlive_ = true;
        samplesEmitted_ = 0;
        samplesKept_ = 0;
        samplesMigrated_ = 0;
        samplesDropped_ = 0;
        pauseEpisodes_ = 0;
        coreMarkers_ = 0;
        targetMigrations_ = 0;
        degradedCores_ = 0;
        lostToContention_ = 0;
        counterWraps_ = 0;
        carried_.fill(0);
        for (PerCpuState &pc : perCpu_) {
            pc.timerStarted = false;
            pc.paused = false;
            pc.degraded = false;
            pc.claimFailures = 0;
            if (&pc != &slot(startCore_))
                pc.programmed = false;
            pc.lastRaw.fill(0);
            pc.wrapBase.fill(0);
            pc.base.fill(0);
        }
        {
            PerCpuState &pc = slot(startCore_);
            if (!pc.ring)
                pc.ring = std::make_unique<RingBuffer<Sample>>(
                    cfg_.bufferCapacity);
            // A fresh timer per session, exactly as before; the
            // first expiry anchors this core's sampling grid.
            pc.timer = kernel.createHrTimer(
                name() + "-hrtimer", startCore_,
                [this, core = startCore_] { onTimer(core); },
                tuning_.handlerCost, tuning_.handlerFootprint);
            if (jitterOverride_)
                pc.timer->setJitterModel(*jitterOverride_);
        }
        // Starting on a process that is already gone finalizes
        // immediately: there is nothing to trace.
        if (target == nullptr ||
            target->state() == kernel::ProcState::zombie) {
            targetAlive_ = false;
            stopMonitoring(SampleCause::final);
            return 0;
        }
        // If the target is already on-core, begin immediately
        // (settling lazy attribution so pre-START execution never
        // reaches the counters).
        kernel::Process *running = kernel.running(startCore_);
        if (running && isMonitored(running)) {
            kernel.core(startCore_).syncTo(kernel.now());
            counting_ = true;
            kernel.core(startCore_).pmu().globalEnableAll();
            startOrResumeTimer(startCore_);
        }
        return 0;
      }
      case ioc::stop: {
        if (!monitoring_)
            return kernel::err::einval;
        stopMonitoring(SampleCause::final);
        return 0;
      }
      case ioc::status: {
        auto *st = static_cast<KLebStatus *>(arg);
        if (st == nullptr)
            return kernel::err::einval;
        *st = status();
        return 0;
      }
      case ioc::setPeriod: {
        // Retune the sampling rate mid-session (adaptive
        // monitoring).  The armed HRTimer keeps its in-flight
        // deadline, so the pending sample still lands exactly once;
        // only expiries after it space at the new period.
        auto *period = static_cast<Tick *>(arg);
        if (period == nullptr || *period == 0)
            return kernel::err::einval;
        if (!configured_)
            return kernel::err::einval;
        kernel.chargeKernelWork(caller.affinity(),
                                tuning_.setPeriodCost, 256);
        cfg_.timerPeriod = *period;
        for (PerCpuState &pc : perCpu_)
            if (pc.timer && pc.timerStarted)
                pc.timer->setPeriod(*period);
        ++periodChanges_;
        return 0;
      }
      case ioc::attach: {
        // A replacement controller adopting an in-flight session:
        // rebind the wake target and report where monitoring
        // stands.  Valid in any module state — the caller decides
        // (from status.configured) whether to fall back to the
        // fresh CONFIG/START path.
        auto *st = static_cast<KLebStatus *>(arg);
        if (st == nullptr)
            return kernel::err::einval;
        wakeTarget_ = &caller;
        *st = status();
        return 0;
      }
      default:
        return kernel::err::enotty;
    }
}

long
KLebModule::read(kernel::Kernel &kernel, kernel::Process &caller,
                 void *buf, std::size_t len)
{
    (void)len;
    auto *req = static_cast<DrainRequest *>(buf);
    if (req == nullptr || req->out == nullptr)
        return kernel::err::einval;
    if (!configured_) {
        req->finished = !monitoring_;
        return 0;
    }

    // Source census: with no spill backlog and at most one
    // non-empty ring — the steady state of a session that never
    // migrated or hotplugged — the k-way merge degenerates to a
    // FIFO drain of that ring and takes the bulk path below.
    std::size_t drained_count = 0;
    RingBuffer<Sample> *only = nullptr;
    bool merge_needed = !spill_.empty();
    if (!merge_needed) {
        for (PerCpuState &pc : perCpu_) {
            if (pc.ring && !pc.ring->empty()) {
                if (only != nullptr) {
                    merge_needed = true;
                    only = nullptr;
                    break;
                }
                only = pc.ring.get();
            }
        }
    }

    if (!merge_needed && only != nullptr && arena_.capacity() > 0) {
        // Bulk fast path: stage whole wrapped segments through the
        // cache-line-aligned arena instead of popping one sample at
        // a time.  Bytes, order, and kernel-work charges are
        // identical to the merge path (single-source FIFO == merge
        // of one source).
        std::size_t want = only->size();
        if (req->max != 0 && req->max < want)
            want = req->max;
        while (want > 0) {
            std::size_t pass = std::min(want, arena_.capacity());
            std::size_t n = only->drainInto(arena_.data(), pass);
            req->out->insert(req->out->end(), arena_.data(),
                             arena_.data() + n);
            drained_count += n;
            want -= n;
        }
    } else if (merge_needed) {
        // K-way merge across the spill queue and every core's ring
        // so the controller sees one globally timestamp-ordered
        // stream.  Ties resolve spill-first, then lowest core id:
        // deterministic.
        while (req->max == 0 || drained_count < req->max) {
            const Sample *best = nullptr;
            bool from_spill = false;
            std::size_t src_core = 0;
            if (!spill_.empty()) {
                best = &spill_.front();
                from_spill = true;
            }
            for (std::size_t cpu = 0; cpu < perCpu_.size(); ++cpu) {
                const auto &ring = perCpu_[cpu].ring;
                if (ring && !ring->empty() &&
                    (best == nullptr ||
                     ring->front().timestamp < best->timestamp)) {
                    best = &ring->front();
                    from_spill = false;
                    src_core = cpu;
                }
            }
            if (best == nullptr)
                break;
            if (from_spill) {
                req->out->push_back(spill_.front());
                spill_.pop_front();
            } else {
                Sample s;
                perCpu_[src_core].ring->pop(s);
                req->out->push_back(s);
            }
            ++drained_count;
        }
    }

    if (drained_count != 0) {
        kernel.chargeKernelWork(
            caller.affinity(),
            tuning_.readPerSample *
                static_cast<Tick>(drained_count),
            drained_count * sizeof(Sample));
    }

    // Safety mechanism, resume half: once the controller has freed
    // enough space, collection continues automatically — per core,
    // so one congested ring never stalls the others.
    for (std::size_t cpu = 0; cpu < perCpu_.size(); ++cpu) {
        PerCpuState &pc = perCpu_[cpu];
        if (pc.paused && pc.ring &&
            pc.ring->size() <=
                pc.ring->capacity() / tuning_.resumeDivisor) {
            pc.paused = false;
            if (monitoring_ && counting_ &&
                static_cast<CoreId>(cpu) == activeCore_)
                startOrResumeTimer(activeCore_);
        }
    }

    bool empty = spill_.empty();
    for (const PerCpuState &pc : perCpu_)
        empty = empty && (!pc.ring || pc.ring->empty());
    req->finished = !monitoring_ && empty;
    return static_cast<long>(drained_count);
}

std::uint64_t
KLebModule::readCorrected(CoreId core, std::size_t i)
{
    PerCpuState &pc = slot(core);
    hw::Pmu &pmu = kernel_->core(core).pmu();
    const CounterRef &ref = counterMap_[i];
    // Read through the architectural RDPMC path (as the real
    // driver does) so read-observing tooling sees the access.
    std::uint32_t pmc_index =
        ref.fixed ? (hw::Pmu::rdpmcFixedFlag |
                     static_cast<std::uint32_t>(ref.idx))
                  : static_cast<std::uint32_t>(ref.idx);
    std::uint64_t raw = pmu.rdpmc(pmc_index);
    // Overflow-aware accumulation: counters only count up, so a
    // raw reading below the previous one means the counter
    // wrapped at its effective width since the last sample.
    if (raw < pc.lastRaw[i]) {
        pc.wrapBase[i] += pc.modulus;
        ++counterWraps_;
    }
    pc.lastRaw[i] = raw;
    return pc.wrapBase[i] + raw;
}

void
KLebModule::foldActiveDelta()
{
    // Settle whatever the (frozen) active core has accumulated
    // beyond its base into the carried total.  The PMU freeze at
    // switch-out is the migrate-out snapshot; the arithmetic is
    // deferred here, where it is first needed.
    if (activeCore_ == invalidCore)
        return;
    PerCpuState &pc = slot(activeCore_);
    if (!pc.programmed || pc.degraded)
        return;
    KLEB_ANNOTATE_ACCESS(&carried_, "kleb.KLebModule.carried");
    for (std::size_t i = 0; i < counterMap_.size(); ++i) {
        std::uint64_t v = readCorrected(activeCore_, i);
        carried_[i] += v - pc.base[i];
        pc.base[i] = v;
    }
}

void
KLebModule::currentCounts(Sample &s)
{
    for (std::size_t i = 0; i < counterMap_.size(); ++i)
        s.counts[i] = carried_[i];
    if (!counting_ || activeCore_ == invalidCore)
        return;
    PerCpuState &pc = slot(activeCore_);
    if (!pc.programmed || pc.degraded)
        return;
    kernel_->core(activeCore_).syncTo(kernel_->now());
    for (std::size_t i = 0; i < counterMap_.size(); ++i)
        s.counts[i] += readCorrected(activeCore_, i) - pc.base[i];
}

void
KLebModule::recordSample(SampleCause cause)
{
    PerCpuState &pc = slot(activeCore_);
    Sample s;
    s.timestamp = kernel_->now();
    s.cause = cause;
    s.numEvents = static_cast<std::uint8_t>(counterMap_.size());
    s.core = static_cast<std::uint16_t>(activeCore_);
    if (pc.programmed && !pc.degraded) {
        for (std::size_t i = 0; i < counterMap_.size(); ++i)
            s.counts[i] = carried_[i] +
                          readCorrected(activeCore_, i) - pc.base[i];
    } else {
        // Degraded or quiesced core: nothing was measured here, so
        // the cumulative series holds at the carried total.
        for (std::size_t i = 0; i < counterMap_.size(); ++i)
            s.counts[i] = carried_[i];
    }

    ++samplesEmitted_;
    if (!pc.ring) {
        // Only reachable off the happy path (final snapshot on a
        // core that never earned a ring): the spill queue is the
        // sample's home, it is never silently lost.
        KLEB_ANNOTATE_ACCESS(&spill_, "kleb.KLebModule.spill");
        spill_.push_back(s);
        ++samplesKept_;
        return;
    }
    if (!pc.ring->push(s)) {
        ++samplesDropped_;
        return;
    }
    ++samplesKept_;

    if (pc.ring->full() && cause != SampleCause::final) {
        pc.paused = true;
        ++pauseEpisodes_;
        if (pc.timer)
            pc.timer->cancel();
        wakeController();
    }
}

void
KLebModule::recordMarker(SampleCause cause, CoreId core)
{
    Sample s;
    s.timestamp = kernel_->now();
    s.cause = cause;
    s.numEvents = static_cast<std::uint8_t>(counterMap_.size());
    s.core = static_cast<std::uint16_t>(core);
    currentCounts(s);
    KLEB_ANNOTATE_ACCESS(&spill_, "kleb.KLebModule.spill");
    spill_.push_back(s);
    ++coreMarkers_;
}

void
KLebModule::startOrResumeTimer(CoreId core)
{
    PerCpuState &pc = slot(core);
    if (!pc.timer) {
        pc.timer = kernel_->createHrTimer(
            name() + "-hrtimer", core,
            [this, core] { onTimer(core); }, tuning_.handlerCost,
            tuning_.handlerFootprint);
        if (jitterOverride_)
            pc.timer->setJitterModel(*jitterOverride_);
    }
    // Keep one stable sampling grid per core for the whole session:
    // the first start anchors it; later switch-ins re-join it
    // (hrtimer_forward), so a co-scheduled controller can never
    // starve the timer by perpetually re-phasing it.
    if (pc.timerStarted) {
        pc.timer->resume();
    } else {
        pc.timer->startPeriodic(cfg_.timerPeriod);
        pc.timerStarted = true;
    }
}

void
KLebModule::onTimer(CoreId core)
{
    if (!monitoring_ || !counting_ || core != activeCore_)
        return;
    if (slot(core).paused)
        return;
    recordSample(SampleCause::timer);
}

void
KLebModule::onSwitch(kernel::Process *prev, kernel::Process *next,
                     CoreId core)
{
    if (!monitoring_)
        return;
    bool prev_mon = isMonitored(prev);
    bool next_mon = isMonitored(next);
    if (prev_mon == next_mon)
        return;

    if (prev_mon) {
        // Target scheduled out: freeze counters and stop the timer
        // so other processes never leak into the measurements.
        // The freeze *is* the migrate-out snapshot; the frozen
        // delta is folded into carried_ at the next switch-in
        // elsewhere.
        if (core != activeCore_)
            return;
        PerCpuState &pc = slot(core);
        if (pc.programmed && !pc.degraded)
            kernel_->core(core).pmu().globalDisable();
        counting_ = false;
        if (pc.timer && pc.timer->active())
            pc.timer->cancel();
        return;
    }

    // Switch-in.  The session follows one monitored flow: if the
    // counters are already live on another core (a concurrently
    // scheduled descendant), that flow keeps them.
    if (counting_)
        return;
    PerCpuState &pc = slot(core);
    if (core != activeCore_) {
        // Migrate-in: settle the old core, then claim and program
        // this one.
        KLEB_ANNOTATE_ACCESS(&pc, "kleb.KLebModule.percpu");
        foldActiveDelta();
        if (pc.degraded) {
            ++lostToContention_;
            return;
        }
        if (!pc.claimed && !claimPmu(core)) {
            // pmu.contend: EBUSY from this core's PMU.  Forfeit
            // this window, retry at the next switch-in, and degrade
            // this core only once the retry budget is spent.
            ++contentionEvents_;
            ++pc.claimFailures;
            ++lostToContention_;
            if (pc.claimFailures >= tuning_.maxClaimRetries) {
                pc.degraded = true;
                ++degradedCores_;
            }
            return;
        }
        if (!pc.ring)
            pc.ring = std::make_unique<RingBuffer<Sample>>(
                cfg_.bufferCapacity);
        if (!pc.programmed)
            programPmu(core);
        // Re-anchor: whatever the counters held before this moment
        // belongs to other flows (or already to carried_).
        for (std::size_t i = 0; i < counterMap_.size(); ++i)
            pc.base[i] = readCorrected(core, i);
        ++targetMigrations_;
        activeCore_ = core;
    } else if (pc.degraded) {
        ++lostToContention_;
        return;
    }
    kernel_->core(core).pmu().globalEnableAll();
    counting_ = true;
    if (!pc.paused)
        startOrResumeTimer(core);
}

void
KLebModule::quiesceCore(CoreId core)
{
    PerCpuState &pc = slot(core);
    KLEB_ANNOTATE_ACCESS(&pc, "kleb.KLebModule.percpu");

    // Snapshot before the hardware vanishes: if this is the active
    // core, settle its delta into carried_ now (attributing any
    // pending execution first).
    if (core == activeCore_ && pc.programmed && !pc.degraded) {
        kernel_->core(core).syncTo(kernel_->now());
        foldActiveDelta();
    }

    // Relocate the ring's undrained samples into the spill queue —
    // merged by timestamp so the drain stays globally ordered —
    // then journal the outage marker after them.
    if (pc.ring && !pc.ring->empty() && arena_.capacity() > 0) {
        KLEB_ANNOTATE_ACCESS(&spill_, "kleb.KLebModule.spill");
        std::size_t old_size = spill_.size();
        while (!pc.ring->empty()) {
            std::size_t n =
                pc.ring->drainInto(arena_.data(), arena_.capacity());
            samplesKept_ -= n;
            samplesMigrated_ += n;
            spill_.insert(spill_.end(), arena_.data(),
                          arena_.data() + n);
        }
        std::inplace_merge(
            spill_.begin(),
            spill_.begin() + static_cast<std::ptrdiff_t>(old_size),
            spill_.end(), [](const Sample &a, const Sample &b) {
                return a.timestamp < b.timestamp;
            });
    }
    recordMarker(SampleCause::coreOffline, core);

    if (pc.timer && pc.timer->active())
        pc.timer->cancel();
    pc.timerStarted = false;

    // The core's PMU state does not survive the outage: drop the
    // claim and force a reprogram (and base resync) if the target
    // ever comes back here.
    if (pc.programmed)
        kernel_->core(core).pmu().globalDisable();
    if (pc.claimed) {
        kernel_->core(core).pmu().release(claimCookie());
        pc.claimed = false;
    }
    pc.programmed = false;
    pc.paused = false;
}

void
KLebModule::onCpuEvent(CoreId core, kernel::CpuEvent event)
{
    if (!monitoring_)
        return;
    switch (event) {
      case kernel::CpuEvent::goingOffline:
        // Teardown callback: the core still works; quiesce while
        // we can still read its counters.
        quiesceCore(core);
        break;
      case kernel::CpuEvent::offline:
        break;
      case kernel::CpuEvent::online: {
        PerCpuState &pc = slot(core);
        KLEB_ANNOTATE_ACCESS(&pc, "kleb.KLebModule.percpu");
        // Fresh silicon: contention verdicts and pause state from
        // before the outage no longer apply.
        pc.paused = false;
        pc.degraded = false;
        pc.claimFailures = 0;
        recordMarker(SampleCause::coreOnline, core);
        break;
      }
    }
}

void
KLebModule::onProcessExit(kernel::Process &proc)
{
    if (!monitoring_)
        return;
    if (proc.pid() == cfg_.targetPid) {
        targetAlive_ = false;
        stopMonitoring(SampleCause::final);
    }
}

void
KLebModule::stopMonitoring(SampleCause cause)
{
    if (!monitoring_)
        return;
    recordSample(cause);
    monitoring_ = false;
    counting_ = false;
    for (std::size_t cpu = 0; cpu < perCpu_.size(); ++cpu) {
        PerCpuState &pc = perCpu_[cpu];
        if (pc.programmed)
            kernel_->core(static_cast<CoreId>(cpu))
                .pmu()
                .globalDisable();
        if (pc.timer)
            pc.timer->cancel();
    }
    releaseAll();
    wakeController();
}

void
KLebModule::wakeController()
{
    if (wakeTarget_)
        kernel_->wake(wakeTarget_);
}

KLebStatus
KLebModule::status() const
{
    KLebStatus st;
    st.configured = configured_;
    st.monitoring = monitoring_;
    st.targetAlive = targetAlive_;
    std::size_t pending = spill_.size();
    for (const PerCpuState &pc : perCpu_) {
        st.paused = st.paused || pc.paused;
        if (pc.ring)
            pending += pc.ring->size();
    }
    st.pendingSamples = pending;
    st.samplesRecorded = samplesKept_ + samplesMigrated_;
    st.samplesDropped = samplesDropped_;
    st.pauseEpisodes = pauseEpisodes_;
    st.counterWraps = counterWraps_;
    st.currentPeriod = configured_ ? cfg_.timerPeriod : 0;
    st.periodChanges = periodChanges_;
    st.samplesEmitted = samplesEmitted_;
    st.samplesKept = samplesKept_;
    st.samplesMigrated = samplesMigrated_;
    st.coreMarkers = coreMarkers_;
    st.targetMigrations = targetMigrations_;
    st.contentionEvents = contentionEvents_;
    st.degradedCores = degradedCores_;
    st.lostToContention = lostToContention_;
    st.activeCore = activeCore_;
    return st;
}

} // namespace klebsim::kleb
