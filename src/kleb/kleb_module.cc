#include "kleb_module.hh"

#include <algorithm>

#include "base/logging.hh"
#include "hw/pmu.hh"

namespace klebsim::kleb
{

KLebModule::KLebModule() : tuning_()
{
}

KLebModule::KLebModule(Tuning tuning) : tuning_(tuning)
{
}

KLebModule::~KLebModule() = default;

void
KLebModule::init(kernel::Kernel &kernel)
{
    kernel_ = &kernel;
    switchHookId_ = kernel.registerSwitchHook(
        [this](kernel::Process *prev, kernel::Process *next,
               CoreId core) { onSwitch(prev, next, core); });
    exitHookId_ = kernel.registerExitHook(
        [this](kernel::Process &proc) { onProcessExit(proc); });
}

void
KLebModule::exitModule(kernel::Kernel &kernel)
{
    if (monitoring_)
        stopMonitoring(SampleCause::final);
    if (timer_)
        timer_->cancel();
    kernel.unregisterSwitchHook(switchHookId_);
    kernel.unregisterExitHook(exitHookId_);
}

bool
KLebModule::isMonitored(const kernel::Process *proc)
{
    if (proc == nullptr || cfg_.targetPid == invalidPid)
        return false;
    if (proc->pid() == cfg_.targetPid)
        return true;
    return cfg_.traceChildren &&
           kernel_->isDescendantOf(proc->pid(), cfg_.targetPid);
}

void
KLebModule::programPmu()
{
    hw::Pmu &pmu = kernel_->core(targetCore_).pmu();
    counterMap_.clear();

    int next_pmc = 0;
    for (hw::HwEvent ev : cfg_.events) {
        CounterRef ref;
        if (ev == hw::HwEvent::instRetired) {
            ref.fixed = true;
            ref.idx = 0;
        } else if (ev == hw::HwEvent::coreCycles) {
            ref.fixed = true;
            ref.idx = 1;
        } else if (ev == hw::HwEvent::refCycles) {
            ref.fixed = true;
            ref.idx = 2;
        } else {
            fatal_if(next_pmc >= hw::Pmu::numProgrammable,
                     "k_leb: more than ",
                     hw::Pmu::numProgrammable,
                     " programmable events requested");
            ref.fixed = false;
            ref.idx = next_pmc;
            pmu.programCounter(next_pmc, ev, true,
                               cfg_.countKernel);
            ++next_pmc;
        }
        counterMap_.push_back(ref);
    }
    for (int i = next_pmc; i < hw::Pmu::numProgrammable; ++i)
        pmu.clearCounter(i);
    for (int i = 0; i < hw::Pmu::numFixed; ++i)
        pmu.programFixed(i, true, cfg_.countKernel);
    pmu.globalDisable();
}

long
KLebModule::ioctl(kernel::Kernel &kernel, kernel::Process &caller,
                  std::uint32_t cmd, void *arg)
{
    switch (cmd) {
      case ioc::config: {
        if (monitoring_)
            return kernel::err::ebusy;
        auto *cfg = static_cast<KLebConfig *>(arg);
        if (cfg == nullptr || cfg->events.empty() ||
            cfg->events.size() > maxSampleEvents ||
            cfg->timerPeriod == 0 || cfg->bufferCapacity == 0)
            return kernel::err::einval;
        kernel.chargeKernelWork(caller.affinity(),
                                tuning_.configCost, 8192);
        cfg_ = *cfg;
        buf_ = std::make_unique<RingBuffer<Sample>>(
            cfg_.bufferCapacity);
        configured_ = true;
        periodChanges_ = 0;
        return 0;
      }
      case ioc::start: {
        if (!configured_ || monitoring_)
            return kernel::err::einval;
        kernel::Process *target =
            kernel.findProcess(cfg_.targetPid);
        targetCore_ = target ? target->affinity() : caller.affinity();
        programPmu();
        monitoring_ = true;
        paused_ = false;
        counting_ = false;
        timerStarted_ = false;
        targetAlive_ = true;
        samplesRecorded_ = 0;
        samplesDropped_ = 0;
        pauseEpisodes_ = 0;
        counterModulus_ =
            kernel.core(targetCore_).pmu().counterMaskValue() + 1;
        lastRaw_.assign(counterMap_.size(), 0);
        wrapBase_.assign(counterMap_.size(), 0);
        counterWraps_ = 0;
        timer_ = kernel.createHrTimer(
            name() + "-hrtimer", targetCore_, [this] { onTimer(); },
            tuning_.handlerCost, tuning_.handlerFootprint);
        // Starting on a process that is already gone finalizes
        // immediately: there is nothing to trace.
        if (target == nullptr ||
            target->state() == kernel::ProcState::zombie) {
            targetAlive_ = false;
            stopMonitoring(SampleCause::final);
            return 0;
        }
        // If the target is already on-core, begin immediately
        // (settling lazy attribution so pre-START execution never
        // reaches the counters).
        kernel::Process *running = kernel.running(targetCore_);
        if (running && isMonitored(running)) {
            kernel.core(targetCore_).syncTo(kernel.now());
            counting_ = true;
            kernel.core(targetCore_).pmu().globalEnableAll();
            startOrResumeTimer();
        }
        return 0;
      }
      case ioc::stop: {
        if (!monitoring_)
            return kernel::err::einval;
        stopMonitoring(SampleCause::final);
        return 0;
      }
      case ioc::status: {
        auto *st = static_cast<KLebStatus *>(arg);
        if (st == nullptr)
            return kernel::err::einval;
        *st = status();
        return 0;
      }
      case ioc::setPeriod: {
        // Retune the sampling rate mid-session (adaptive
        // monitoring).  The armed HRTimer keeps its in-flight
        // deadline, so the pending sample still lands exactly once;
        // only expiries after it space at the new period.
        auto *period = static_cast<Tick *>(arg);
        if (period == nullptr || *period == 0)
            return kernel::err::einval;
        if (!configured_)
            return kernel::err::einval;
        kernel.chargeKernelWork(caller.affinity(),
                                tuning_.setPeriodCost, 256);
        cfg_.timerPeriod = *period;
        if (timer_ && timerStarted_)
            timer_->setPeriod(*period);
        ++periodChanges_;
        return 0;
      }
      case ioc::attach: {
        // A replacement controller adopting an in-flight session:
        // rebind the wake target and report where monitoring
        // stands.  Valid in any module state — the caller decides
        // (from status.configured) whether to fall back to the
        // fresh CONFIG/START path.
        auto *st = static_cast<KLebStatus *>(arg);
        if (st == nullptr)
            return kernel::err::einval;
        wakeTarget_ = &caller;
        *st = status();
        return 0;
      }
      default:
        return kernel::err::enotty;
    }
}

long
KLebModule::read(kernel::Kernel &kernel, kernel::Process &caller,
                 void *buf, std::size_t len)
{
    (void)len;
    auto *req = static_cast<DrainRequest *>(buf);
    if (req == nullptr || req->out == nullptr)
        return kernel::err::einval;
    if (!buf_) {
        req->finished = !monitoring_;
        return 0;
    }

    std::vector<Sample> drained = buf_->drain(req->max);
    if (!drained.empty()) {
        kernel.chargeKernelWork(
            caller.affinity(),
            tuning_.readPerSample *
                static_cast<Tick>(drained.size()),
            drained.size() * sizeof(Sample));
    }
    for (const Sample &s : drained)
        req->out->push_back(s);

    // Safety mechanism, resume half: once the controller has freed
    // enough space, collection continues automatically.
    if (paused_ &&
        buf_->size() <= buf_->capacity() / tuning_.resumeDivisor) {
        paused_ = false;
        if (monitoring_ && counting_)
            startOrResumeTimer();
    }

    req->finished = !monitoring_ && buf_->empty();
    return static_cast<long>(drained.size());
}

void
KLebModule::recordSample(SampleCause cause)
{
    hw::Pmu &pmu = kernel_->core(targetCore_).pmu();
    Sample s;
    s.timestamp = kernel_->now();
    s.cause = cause;
    s.numEvents = static_cast<std::uint8_t>(counterMap_.size());
    for (std::size_t i = 0; i < counterMap_.size(); ++i) {
        const CounterRef &ref = counterMap_[i];
        // Read through the architectural RDPMC path (as the real
        // driver does) so read-observing tooling sees the access.
        std::uint32_t pmc_index =
            ref.fixed ? (hw::Pmu::rdpmcFixedFlag |
                         static_cast<std::uint32_t>(ref.idx))
                      : static_cast<std::uint32_t>(ref.idx);
        std::uint64_t raw = pmu.rdpmc(pmc_index);
        // Overflow-aware accumulation: counters only count up, so a
        // raw reading below the previous one means the counter
        // wrapped at its effective width since the last sample.
        if (raw < lastRaw_[i]) {
            wrapBase_[i] += counterModulus_;
            ++counterWraps_;
        }
        lastRaw_[i] = raw;
        s.counts[i] = wrapBase_[i] + raw;
    }

    if (!buf_->push(s)) {
        ++samplesDropped_;
        return;
    }
    ++samplesRecorded_;

    if (buf_->full() && cause != SampleCause::final) {
        paused_ = true;
        ++pauseEpisodes_;
        timer_->cancel();
        wakeController();
    }
}

void
KLebModule::startOrResumeTimer()
{
    // Keep one stable sampling grid for the whole session: the
    // first start anchors it; later switch-ins re-join it
    // (hrtimer_forward), so a co-scheduled controller can never
    // starve the timer by perpetually re-phasing it.
    if (timerStarted_) {
        timer_->resume();
    } else {
        timer_->startPeriodic(cfg_.timerPeriod);
        timerStarted_ = true;
    }
}

void
KLebModule::onTimer()
{
    if (!monitoring_ || paused_ || !counting_)
        return;
    recordSample(SampleCause::timer);
}

void
KLebModule::onSwitch(kernel::Process *prev, kernel::Process *next,
                     CoreId core)
{
    if (!monitoring_ || core != targetCore_)
        return;
    bool prev_mon = isMonitored(prev);
    bool next_mon = isMonitored(next);
    if (prev_mon == next_mon)
        return;

    hw::Pmu &pmu = kernel_->core(targetCore_).pmu();
    if (prev_mon) {
        // Target scheduled out: freeze counters and stop the timer
        // so other processes never leak into the measurements.
        pmu.globalDisable();
        counting_ = false;
        if (timer_->active())
            timer_->cancel();
    } else {
        pmu.globalEnableAll();
        counting_ = true;
        if (!paused_)
            startOrResumeTimer();
    }
}

void
KLebModule::onProcessExit(kernel::Process &proc)
{
    if (!monitoring_)
        return;
    if (proc.pid() == cfg_.targetPid) {
        targetAlive_ = false;
        stopMonitoring(SampleCause::final);
    }
}

void
KLebModule::stopMonitoring(SampleCause cause)
{
    if (!monitoring_)
        return;
    recordSample(cause);
    monitoring_ = false;
    counting_ = false;
    kernel_->core(targetCore_).pmu().globalDisable();
    if (timer_)
        timer_->cancel();
    wakeController();
}

void
KLebModule::wakeController()
{
    if (wakeTarget_)
        kernel_->wake(wakeTarget_);
}

KLebStatus
KLebModule::status() const
{
    KLebStatus st;
    st.configured = configured_;
    st.monitoring = monitoring_;
    st.targetAlive = targetAlive_;
    st.paused = paused_;
    st.pendingSamples = buf_ ? buf_->size() : 0;
    st.samplesRecorded = samplesRecorded_;
    st.samplesDropped = samplesDropped_;
    st.pauseEpisodes = pauseEpisodes_;
    st.counterWraps = counterWraps_;
    st.currentPeriod = configured_ ? cfg_.timerPeriod : 0;
    st.periodChanges = periodChanges_;
    return st;
}

} // namespace klebsim::kleb
