#include "kleb_controller.hh"

#include "base/logging.hh"
#include "kernel/kernel.hh"

namespace klebsim::kleb
{

ControllerBehavior::ControllerBehavior(
    KLebModule *module, std::string dev_path, KLebConfig cfg,
    std::function<void()> on_started)
    : ControllerBehavior(module, std::move(dev_path),
                         std::move(cfg), std::move(on_started),
                         Tuning{})
{
}

ControllerBehavior::ControllerBehavior(
    KLebModule *module, std::string dev_path, KLebConfig cfg,
    std::function<void()> on_started, Tuning tuning)
    : module_(module), devPath_(std::move(dev_path)),
      cfg_(std::move(cfg)), onStarted_(std::move(on_started)),
      tuning_(tuning)
{
    panic_if(module_ == nullptr, "controller without module");
}

kernel::ServiceOp
ControllerBehavior::nextOp(kernel::Kernel &kernel,
                           kernel::Process &self)
{
    (void)kernel;
    (void)self;
    using Op = kernel::ServiceOp;

    switch (state_) {
      case State::setup:
        state_ = State::configure;
        return Op::makeCompute(tuning_.setupCost, 64 * 1024);

      case State::configure:
        state_ = State::start;
        return Op::makeSyscall(
            [this](kernel::Kernel &k, kernel::Process &me) {
                long rc = module_->ioctl(k, me, ioc::config, &cfg_);
                fatal_if(rc != 0, "K-LEB CONFIG ioctl failed: ", rc);
            });

      case State::start:
        state_ = State::sleep;
        return Op::makeSyscall(
            [this](kernel::Kernel &k, kernel::Process &me) {
                long rc =
                    module_->ioctl(k, me, ioc::start, nullptr);
                fatal_if(rc != 0, "K-LEB START ioctl failed: ", rc);
                module_->setWakeTarget(&me);
                if (onStarted_)
                    onStarted_();
            });

      case State::sleep:
        state_ = State::drain;
        return Op::makeSleep(tuning_.drainInterval);

      case State::drain:
        state_ = State::logWrite;
        return Op::makeSyscall(
            [this](kernel::Kernel &k, kernel::Process &me) {
                DrainRequest req;
                req.out = &log_;
                req.max = tuning_.batchMax;
                std::size_t before = log_.size();
                long rc = module_->read(k, me, &req, sizeof(req));
                fatal_if(rc < 0, "K-LEB read failed: ", rc);
                lastDrained_ = log_.size() - before;
                moduleFinished_ = req.finished;
                ++drains_;
            });

      case State::logWrite:
        if (lastDrained_ == 0 && moduleFinished_) {
            state_ = State::finalStatus;
            return Op::makeSyscall(
                [this](kernel::Kernel &k, kernel::Process &me) {
                    KLebStatus st;
                    long rc = module_->ioctl(k, me, ioc::status,
                                             &st);
                    fatal_if(rc != 0, "K-LEB STATUS failed: ", rc);
                });
        }
        state_ = State::sleep;
        if (lastDrained_ == 0)
            return Op::makeCompute(usToTicks(2), 4096);
        return Op::makeCompute(
            tuning_.logBase +
                tuning_.logPerSample *
                    static_cast<Tick>(lastDrained_),
            tuning_.logFootprint);

      case State::finalStatus:
        state_ = State::done;
        finished_ = true;
        return Op::makeExit();

      case State::done:
        break;
    }
    panic("controller behavior ran past exit");
}

} // namespace klebsim::kleb
