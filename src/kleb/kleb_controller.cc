#include "kleb_controller.hh"

#include <algorithm>

#include "base/intmath.hh"
#include "base/logging.hh"
#include "durable_log.hh"
#include "kernel/kernel.hh"
#include "kernel/module.hh"
#include "rate_governor.hh"

namespace klebsim::kleb
{

ControllerBehavior::ControllerBehavior(
    KLebModule *module, std::string dev_path, KLebConfig cfg,
    std::function<void()> on_started)
    : ControllerBehavior(module, std::move(dev_path),
                         std::move(cfg), std::move(on_started),
                         Tuning{})
{
}

ControllerBehavior::ControllerBehavior(
    KLebModule *module, std::string dev_path, KLebConfig cfg,
    std::function<void()> on_started, Tuning tuning)
    : ControllerBehavior(module, std::move(dev_path),
                         std::move(cfg), std::move(on_started),
                         tuning, Mode::fresh)
{
}

ControllerBehavior::ControllerBehavior(
    KLebModule *module, std::string dev_path, KLebConfig cfg,
    std::function<void()> on_started, Tuning tuning, Mode mode)
    : module_(module), devPath_(std::move(dev_path)),
      cfg_(std::move(cfg)), onStarted_(std::move(on_started)),
      tuning_(tuning), mode_(mode),
      currentPeriod_(cfg_.timerPeriod)
{
    panic_if(module_ == nullptr, "controller without module");
}

void
ControllerBehavior::onSyscallOk(kernel::Kernel &kernel)
{
    if (heartbeat_) {
        heartbeat_->lastBeat.store(kernel.now(),
                                   std::memory_order_relaxed);
        heartbeat_->beats.fetch_add(1, std::memory_order_relaxed);
    }
}

void
ControllerBehavior::armed(kernel::Kernel &kernel)
{
    // Each incarnation that arms monitoring opens a fresh durable
    // epoch, so recovery can splice around the outage between them.
    if (durableLog_)
        durableLog_->beginEpoch(kernel.now());
    // Re-sync the (session-lived) governor to the period actually
    // in force: after a re-attach this is whatever the predecessor
    // last managed to program, and any proposal that died with the
    // predecessor is flushed.
    if (governor_)
        governor_->adopt(currentPeriod_);
    started_ = true;
    if (onStarted_)
        onStarted_();
}

long
ControllerBehavior::doIoctl(kernel::Kernel &kernel,
                            kernel::Process &self,
                            std::uint32_t cmd, void *arg)
{
    // Transient faults are drawn from the kernel's chardev fault
    // source first, so a faulted call never touches the module.
    if (long rc = kernel.drawChardevFault(devPath_, false))
        return rc;
    // The module pointer is only compared, never dereferenced,
    // until the registry confirms it is still the device bound at
    // our path -- an unloaded module must not be touched.
    if (kernel.moduleAt(devPath_) != module_)
        return kernel::err::enxio;
    return module_->ioctl(kernel, self, cmd, arg);
}

long
ControllerBehavior::doRead(kernel::Kernel &kernel,
                           kernel::Process &self, void *buf,
                           std::size_t len)
{
    if (long rc = kernel.drawChardevFault(devPath_, true))
        return rc;
    if (kernel.moduleAt(devPath_) != module_)
        return kernel::err::enxio;
    return module_->read(kernel, self, buf, len);
}

bool
ControllerBehavior::handleRc(long rc, State retry_state,
                             const char *what)
{
    if (rc == 0) {
        attempts_ = 0;
        return true;
    }
    if ((rc == kernel::err::eagain || rc == kernel::err::ebusy) &&
        attempts_ < tuning_.maxRetries) {
        ++attempts_;
        ++retries_;
        // Clamp the exponent and saturate the shift: a generous
        // maxRetries tuning must degrade to "sleep a long time",
        // never shift past the Tick width (UB) or wrap to a short
        // sleep.
        const int shift = std::min(attempts_ - 1, 10);
        retrySleep_ = saturatingShl(tuning_.retryBackoff, shift);
        retryPending_ = true;
        state_ = retry_state;
        return false;
    }
    if (rc == kernel::err::enxio || rc == kernel::err::eio ||
        rc == kernel::err::eagain || rc == kernel::err::ebusy) {
        // Device gone, hard I/O error, or transient failures past
        // the retry budget (EAGAIN from fault injection, EBUSY from
        // PMU contention): abort the session but keep (and flush)
        // everything logged so far.  Retry state is cleared so a
        // later incarnation (or any state reached after the abort)
        // never inherits a stale pending sleep.
        attempts_ = 0;
        retrySleep_ = 0;
        retryPending_ = false;
        aborted_ = true;
        state_ = State::abortFlush;
        return false;
    }
    fatal("K-LEB ", what, " failed: ", rc);
}

kernel::ServiceOp
ControllerBehavior::nextOp(kernel::Kernel &kernel,
                           kernel::Process &self)
{
    using Op = kernel::ServiceOp;

    switch (state_) {
      case State::setup:
        if (mode_ == Mode::reattach) {
            state_ = State::attach;
            return Op::makeCompute(tuning_.attachCost, 16 * 1024);
        }
        state_ = State::configure;
        return Op::makeCompute(tuning_.setupCost, 64 * 1024);

      case State::configure:
        if (retryPending_) {
            retryPending_ = false;
            return Op::makeSleep(retrySleep_);
        }
        state_ = State::start;
        return Op::makeSyscall(
            [this](kernel::Kernel &k, kernel::Process &me) {
                long rc = doIoctl(k, me, ioc::config, &cfg_);
                if (!handleRc(rc, State::configure,
                              "CONFIG ioctl"))
                    return;
                onSyscallOk(k);
            });

      case State::start:
        if (retryPending_) {
            retryPending_ = false;
            return Op::makeSleep(retrySleep_);
        }
        state_ = State::sleep;
        return Op::makeSyscall(
            [this](kernel::Kernel &k, kernel::Process &me) {
                long rc = doIoctl(k, me, ioc::start, nullptr);
                if (!handleRc(rc, State::start, "START ioctl"))
                    return;
                module_->setWakeTarget(&me);
                onSyscallOk(k);
                armed(k);
            });

      case State::attach:
        if (retryPending_) {
            retryPending_ = false;
            return Op::makeSleep(retrySleep_);
        }
        state_ = State::sleep;
        return Op::makeSyscall(
            [this](kernel::Kernel &k, kernel::Process &me) {
                KLebStatus st;
                long rc = doIoctl(k, me, ioc::attach, &st);
                if (!handleRc(rc, State::attach, "ATTACH ioctl"))
                    return;
                onSyscallOk(k);
                if (!st.configured) {
                    // The predecessor died before CONFIG landed:
                    // nothing to adopt, run the fresh path.
                    state_ = State::configure;
                    return;
                }
                // Adopt the module's actual period: a predecessor's
                // SET_PERIOD may or may not have landed before it
                // died, and the rate-change journal must continue
                // from the truth, not from our configure-time copy.
                if (st.currentPeriod != 0) {
                    currentPeriod_ = st.currentPeriod;
                    cfg_.timerPeriod = st.currentPeriod;
                }
                armed(k);
            });

      case State::sleep: {
        state_ = State::drain;
        Tick stall =
            tuning_.drainStallHook ? tuning_.drainStallHook() : 0;
        return Op::makeSleep(tuning_.drainInterval + stall);
      }

      case State::drain:
        if (retryPending_) {
            retryPending_ = false;
            return Op::makeSleep(retrySleep_);
        }
        state_ = State::logWrite;
        return Op::makeSyscall(
            [this](kernel::Kernel &k, kernel::Process &me) {
                DrainRequest req;
                req.out = &log_;
                req.max = tuning_.batchMax;
                std::size_t before = log_.size();
                long rc = doRead(k, me, &req, sizeof(req));
                if (!handleRc(rc < 0 ? rc : 0, State::drain,
                              "read"))
                    return;
                lastDrained_ = log_.size() - before;
                moduleFinished_ = req.finished;
                ++drains_;
                onSyscallOk(k);
                // Durability: the drained batch is journaled as
                // part of the drain syscall, so a crash between
                // drains never loses an already-drained sample.
                if (durableLog_) {
                    for (std::size_t i = before; i < log_.size();
                         ++i)
                        durableLog_->append(log_[i]);
                }
                // Adaptive sampling: feed the governor one drain
                // cycle; a proposal becomes a pending SET_PERIOD
                // that logWrite routes through State::setPeriod.
                if (governor_ && !moduleFinished_) {
                    if (auto p = governor_->observe(k.now(),
                                                    lastDrained_))
                        pendingPeriod_ = *p;
                }
            });

      case State::logWrite:
        if (lastDrained_ == 0 && moduleFinished_) {
            state_ = State::finalStatus;
            return Op::makeSyscall(
                [this](kernel::Kernel &k, kernel::Process &me) {
                    // Best-effort: the module may already be gone;
                    // the session still ends cleanly either way.
                    KLebStatus st;
                    (void)doIoctl(k, me, ioc::status, &st);
                });
        }
        state_ = pendingPeriod_ != 0 ? State::setPeriod
                                     : State::sleep;
        if (lastDrained_ == 0)
            return Op::makeCompute(usToTicks(2), 4096);
        return Op::makeCompute(
            tuning_.logBase +
                tuning_.logPerSample *
                    static_cast<Tick>(lastDrained_),
            tuning_.logFootprint);

      case State::setPeriod:
        if (retryPending_) {
            retryPending_ = false;
            return Op::makeSleep(retrySleep_);
        }
        // The reprogram is now committed; the fault hook may aim a
        // crash into the window where the change races the syscall.
        if (tuning_.reprogramHook)
            tuning_.reprogramHook(kernel, self);
        state_ = State::sleep;
        return Op::makeSyscall(
            [this](kernel::Kernel &k, kernel::Process &me) {
                long rc;
                if (tuning_.setPeriodFaultHook &&
                    tuning_.setPeriodFaultHook())
                    rc = kernel::err::eagain;
                else
                    rc = doIoctl(k, me, ioc::setPeriod,
                                 &pendingPeriod_);
                if (rc == kernel::err::eagain &&
                    attempts_ >= tuning_.maxRetries) {
                    // A rate retune is best-effort: exhausting the
                    // retry budget drops the proposal and keeps
                    // monitoring alive at the old period, instead
                    // of aborting the whole session.
                    attempts_ = 0;
                    retrySleep_ = 0;
                    retryPending_ = false;
                    pendingPeriod_ = 0;
                    if (governor_)
                        governor_->rejected();
                    return;
                }
                if (!handleRc(rc, State::setPeriod,
                              "SET_PERIOD ioctl"))
                    return;
                onSyscallOk(k);
                const Tick old = currentPeriod_;
                currentPeriod_ = pendingPeriod_;
                cfg_.timerPeriod = pendingPeriod_;
                ++periodChanges_;
                // Journaled in the same syscall as the ioctl, so
                // the durable log and the module can never disagree
                // about a change that landed.
                if (durableLog_)
                    durableLog_->recordRateChange(
                        k.now(), old, currentPeriod_);
                if (governor_)
                    governor_->applied(currentPeriod_);
                pendingPeriod_ = 0;
            });

      case State::finalStatus:
        state_ = State::done;
        finished_ = true;
        return Op::makeExit();

      case State::abortFlush:
        // Degrade, don't wedge: if the abort hit before START
        // completed, the workload still runs (unmonitored) so the
        // rest of the simulation proceeds.  Re-attach incarnations
        // skip this — their abort is the supervisor's problem (it
        // retries or gives up), not a reason to double-start.
        if (onAborted_)
            onAborted_(started_);
        if (mode_ == Mode::fresh && !started_ && onStarted_) {
            started_ = true;
            onStarted_();
        }
        state_ = State::done;
        finished_ = true;
        return Op::makeCompute(
            tuning_.logBase +
                tuning_.logPerSample *
                    static_cast<Tick>(lastDrained_),
            tuning_.logFootprint);

      case State::done:
        return Op::makeExit();
    }
    panic("controller behavior ran past exit");
}

} // namespace klebsim::kleb
