/**
 * @file
 * Controller supervision (DESIGN.md section 11).
 *
 * A SupervisorBehavior is a small kernel service that watches the
 * K-LEB controller for death or hang and restarts it, bounded by a
 * restart budget with exponential backoff.  Liveness is judged from
 * a heartbeat the controller beats on every successful chardev
 * syscall (piggybacked on the drain path — no extra traffic), so a
 * wedged controller that is technically alive still trips the
 * timeout and is killed before being replaced.
 *
 * The supervisor never owns the controller: it calls back into the
 * Session (the Ward) to spawn replacement incarnations, which
 * re-attach to the still-loaded module whose ring buffer kept
 * collecting during the outage.  It exits on clean controller
 * finish, on module unload, or once the restart budget is spent —
 * so a supervised run always drains its event queue.
 */

#ifndef KLEBSIM_KLEB_SUPERVISOR_HH
#define KLEBSIM_KLEB_SUPERVISOR_HH

#include <atomic>
#include <cstdint>
#include <functional>

#include "base/types.hh"
#include "kernel/service.hh"

namespace klebsim::kleb
{

/**
 * Shared-memory heartbeat cell.  The controller stamps it; the
 * supervisor compares it against the timeout.  The fields are
 * atomics because the cell models a true shared-memory mailbox: writer
 * and reader are different logical threads, and once sessions run on
 * real host threads (ROADMAP: per-CPU sessions) a plain Tick would
 * tear.  Relaxed ordering suffices — each field is an independent
 * monotonic stamp, never a message that publishes other data.
 */
struct Heartbeat
{
    std::atomic<Tick> lastBeat{0};
    std::atomic<std::uint64_t> beats{0};
};

/** Everything the supervisor did, for reports and invariants. */
struct SupervisorStats
{
    std::uint64_t polls = 0;
    std::uint64_t restarts = 0;          //!< replacements spawned
    std::uint64_t reattaches = 0;        //!< ATTACH ioctls that landed
    std::uint64_t failedReattaches = 0;  //!< replacements that aborted
    std::uint64_t kills = 0;             //!< hung controllers killed
    int budget = 0;                      //!< configured restart budget
    bool budgetExhausted = false;
    Tick totalOutage = 0;   //!< controller death -> replacement spawn
    Tick lastRestartTick = 0;
};

class SupervisorBehavior : public kernel::ServiceBehavior
{
  public:
    struct Tuning
    {
        /** Poll interval (should undercut the heartbeat timeout). */
        Tick pollInterval = msToTicks(2);

        /** Heartbeat staleness that counts as a hang. */
        Tick heartbeatTimeout = msToTicks(25);

        /** Max replacement controllers spawned per session. */
        int restartBudget = 3;

        /** First restart delay; doubles per consecutive restart. */
        Tick restartBackoff = usToTicks(200);

        /** CPU cost of one liveness check. */
        Tick pollCost = usToTicks(3);

        /** Poll working-set footprint. */
        std::uint64_t pollFootprint = 2048;
    };

    /** Callbacks into the owning Session. */
    struct Ward
    {
        /** Current controller process (may be null). */
        std::function<kernel::Process *()> controller;

        /** Controller finished its loop without aborting. */
        std::function<bool()> finishedCleanly;

        /** The module is still loaded (re-attach possible). */
        std::function<bool()> moduleLoaded;

        /**
         * Spawn a replacement controller; @p death_tick is when the
         * previous incarnation died.  Returns the new process or
         * null when a restart is impossible.
         */
        std::function<kernel::Process *(Tick death_tick)> restart;

        /**
         * Called once when supervision ends without a live
         * monitoring pipeline (budget exhausted or module gone), so
         * the session can degrade instead of wedging.
         */
        std::function<void()> giveUp;
    };

    SupervisorBehavior(Ward ward, const Heartbeat *heartbeat,
                       Tuning tuning);

    kernel::ServiceOp nextOp(kernel::Kernel &kernel,
                             kernel::Process &self) override;

    const SupervisorStats &stats() const { return stats_; }

    /**
     * Outcome report from a replacement incarnation: true once its
     * ATTACH (or fallback CONFIG/START) landed, false if it aborted
     * before arming monitoring.
     */
    void noteReattach(bool armed);

    /** True once the supervisor exited its loop. */
    bool done() const { return state_ == State::done; }

  private:
    enum class State
    {
        poll,
        evaluate,
        backoff,
        restart,
        done,
    };

    Ward ward_;
    const Heartbeat *heartbeat_;
    Tuning tuning_;

    State state_ = State::poll;
    SupervisorStats stats_;
    Tick deathTick_ = 0;
    bool gaveUp_ = false;
};

} // namespace klebsim::kleb

#endif // KLEBSIM_KLEB_SUPERVISOR_HH
