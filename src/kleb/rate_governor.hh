/**
 * @file
 * Controller-side overhead-budget feedback loop (the ScALPEL-style
 * adaptive direction from ROADMAP item 4).
 *
 * The controller already knows its own calibrated per-drain costs;
 * the governor divides those by the wall-clock the drain interval
 * covered to get an instantaneous overhead fraction, smooths it with
 * an EWMA, and proposes a new HRTimer period whenever the estimate
 * leaves the hysteresis band around the configured budget:
 *
 *     est > budget * highWater  ->  back off (grow the period)
 *     est < budget * lowWater   ->  speed up (shrink the period)
 *     otherwise                 ->  hold
 *
 * Proposals are clamped to [minPeriod, maxPeriod]; minPeriod
 * defaults to the paper's recommended 100 us floor.  The governor
 * never issues ioctls itself: the controller owns the SET_PERIOD
 * syscall (and its retry/fault handling) and reports back via
 * applied()/rejected(), after which a settle window suppresses
 * further proposals while the estimate re-converges at the new
 * rate.  The whole loop is deterministic — no RNG, no wall clock.
 */

#ifndef KLEBSIM_KLEB_RATE_GOVERNOR_HH
#define KLEBSIM_KLEB_RATE_GOVERNOR_HH

#include <cstddef>
#include <cstdint>
#include <optional>

#include "base/types.hh"

namespace klebsim::kleb
{

/** Adaptive-sampling period governor. */
class RateGovernor
{
  public:
    struct Config
    {
        /** Target monitoring overhead as a fraction (1% = 0.01). */
        double budget = 0.01;

        /** Speed up only below budget * lowWater (hysteresis). */
        double lowWater = 0.45;

        /** Back off only above budget * highWater (hysteresis). */
        double highWater = 1.0;

        /** Fastest allowed period (paper: >= 100 us). */
        Tick minPeriod = usToTicks(100);

        /** Slowest allowed period. */
        Tick maxPeriod = msToTicks(50);

        /** Period multiplier when backing off. */
        double growFactor = 2.0;

        /** Period multiplier when speeding up (< 1). */
        double shrinkFactor = 0.5;

        /** EWMA smoothing weight for the newest observation. */
        double alpha = 0.3;

        /**
         * Observations to skip after a change is applied or
         * rejected, letting the estimate re-converge before the
         * next proposal (and rate-limiting retries of a rejected
         * one).
         */
        int settleObservations = 2;

        /** Controller cost attributed to each drained sample. */
        Tick costPerSample = 0;

        /** Fixed controller cost per drain cycle. */
        Tick costPerDrain = 0;
    };

    struct Stats
    {
        std::uint64_t observations = 0;
        std::uint64_t holds = 0;
        std::uint64_t proposals = 0;
        std::uint64_t backOffs = 0;   //!< applied period increases
        std::uint64_t speedUps = 0;   //!< applied period decreases
        std::uint64_t rejected = 0;   //!< proposals that never landed
        std::uint64_t hotplugResets = 0; //!< offline->online resets
    };

    RateGovernor(Config config, Tick initial_period);

    /**
     * Feed one drain cycle: @p drained samples landed and the
     * governor's share of the interval ending @p now was spent on
     * them.  Returns the period the controller should reprogram to,
     * or nullopt to stay at the current rate.  The governor does
     * not adopt a proposal until applied() confirms it landed.
     */
    std::optional<Tick> observe(Tick now, std::size_t drained);

    /** The SET_PERIOD for @p period succeeded. */
    void applied(Tick period);

    /**
     * The in-flight proposal was dropped (ioctl failed past the
     * retry budget, or a restart flushed it).  The governor keeps
     * its old period and re-evaluates after the settle window.
     */
    void rejected();

    /**
     * A re-attach discovered the module is actually running at
     * @p period (a predecessor's change may or may not have
     * landed); adopt it without counting a speed-up/back-off.
     */
    void adopt(Tick period);

    /**
     * @{ Hotplug hysteresis (DESIGN.md section 16).  A monitored
     * core going away leaves the next drain interval covering a
     * quiesce/spill/re-arm transient whose cost says nothing about
     * steady state.  noteCoreOffline() remembers the outage;
     * noteCoreOnline() then discards the estimator wholesale —
     * EWMA, settle window, in-flight proposal, interval anchor —
     * so a stale pre-outage estimate never drives a post-online
     * proposal.  The period itself is kept: it is what the module
     * re-arms with.  The paper's 100 us floor stays per-CPU by
     * construction — clamp() bounds every proposal, and the period
     * is the one any core's timer is armed with, so no core is
     * ever asked to fire faster than minPeriod.
     */
    void noteCoreOffline(CoreId core);
    void noteCoreOnline(CoreId core);
    /** @} */

    Tick period() const { return period_; }
    double overheadEstimate() const { return estimate_; }
    const Stats &stats() const { return stats_; }
    const Config &config() const { return config_; }

  private:
    Tick clamp(Tick period) const;

    Config config_;
    Tick period_;
    Tick lastObserve_ = 0;
    bool haveLastObserve_ = false;
    double estimate_ = 0.0;
    bool haveEstimate_ = false;
    int settleLeft_ = 0;
    bool proposalPending_ = false;
    bool outagePending_ = false;
    Stats stats_;
};

} // namespace klebsim::kleb

#endif // KLEBSIM_KLEB_RATE_GOVERNOR_HH
