/**
 * @file
 * The K-LEB public API: one object that loads the module, spawns
 * the controller process, arms monitoring on a target process, and
 * hands results back as time series.
 *
 * Typical use (see examples/quickstart.cpp):
 *
 *   kernel::System sys;
 *   auto workload = workload::makeMatMulLoop({500}, 0x10000000, rng);
 *   auto *proc = sys.kernel().createWorkload("mm", workload.get());
 *   kleb::Session session(sys, options);
 *   session.monitor(proc);     // starts proc under monitoring
 *   sys.run();
 *   auto series = session.deltaSeries();
 */

#ifndef KLEBSIM_KLEB_SESSION_HH
#define KLEBSIM_KLEB_SESSION_HH

#include <memory>
#include <string>
#include <vector>

#include "kernel/system.hh"
#include "kleb_config.hh"
#include "kleb_controller.hh"
#include "kleb_module.hh"
#include "stats/time_series.hh"

namespace klebsim::kleb
{

/**
 * One monitoring session.
 */
class Session
{
  public:
    struct Options
    {
        /** Events recorded per sample (<= 3 fixed + 4 programmable). */
        std::vector<hw::HwEvent> events = {
            hw::HwEvent::instRetired, hw::HwEvent::llcReference,
            hw::HwEvent::llcMiss, hw::HwEvent::branchRetired};

        /** Sampling period (paper recommends >= 100 us). */
        Tick period = usToTicks(100);

        std::size_t bufferCapacity = 16384;
        bool traceChildren = true;
        bool countKernel = false;

        /** Controller core (-1 = same core as the target). */
        CoreId controllerCore = invalidCore;

        KLebModule::Tuning moduleTuning{};
        ControllerBehavior::Tuning controllerTuning{};

        /** Disable timer jitter (unit tests). */
        bool idealTimer = false;
    };

    Session(kernel::System &sys, Options options);
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /**
     * Arm monitoring on @p target (which must be in `created`
     * state when @p start_target is true).  Loads the module,
     * starts the controller; once the controller's START ioctl
     * lands, @p target is started so that its very first
     * instruction is monitored.
     */
    void monitor(kernel::Process *target, bool start_target = true);

    /** True once the controller has drained everything and exited. */
    bool finished() const;

    /** All samples the controller logged. */
    const std::vector<Sample> &samples() const;

    /** Cumulative counter time series (one channel per event). */
    stats::TimeSeries series() const;

    /** Per-interval delta series. */
    stats::TimeSeries deltaSeries() const;

    /**
     * Final (exact) counter totals as an EventVector; taken from
     * the module's end-of-monitoring snapshot.
     */
    hw::EventVector finalTotals() const;

    /** Module status snapshot. */
    KLebStatus status() const { return module_->status(); }

    KLebModule *module() { return module_; }
    kernel::Process *controllerProcess() { return controller_; }
    kernel::Process *target() { return target_; }

  private:
    kernel::System &sys_;
    Options options_;
    std::string devPath_;
    KLebModule *module_ = nullptr;
    std::unique_ptr<ControllerBehavior> behavior_;
    kernel::Process *controller_ = nullptr;
    kernel::Process *target_ = nullptr;
};

} // namespace klebsim::kleb

#endif // KLEBSIM_KLEB_SESSION_HH
