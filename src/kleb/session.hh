/**
 * @file
 * The K-LEB public API: one object that loads the module, spawns
 * the controller process, arms monitoring on a target process, and
 * hands results back as time series.
 *
 * Typical use (see examples/quickstart.cpp):
 *
 *   kernel::System sys;
 *   auto workload = workload::makeMatMulLoop({500}, 0x10000000, rng);
 *   auto *proc = sys.kernel().createWorkload("mm", workload.get());
 *   kleb::Session session(sys, options);
 *   session.monitor(proc);     // starts proc under monitoring
 *   sys.run();
 *   auto series = session.deltaSeries();
 */

#ifndef KLEBSIM_KLEB_SESSION_HH
#define KLEBSIM_KLEB_SESSION_HH

#include <memory>
#include <string>
#include <vector>

#include "durable_log.hh"
#include "kernel/system.hh"
#include "kleb_config.hh"
#include "kleb_controller.hh"
#include "kleb_module.hh"
#include "rate_governor.hh"
#include "stats/summary.hh"
#include "stats/time_series.hh"
#include "supervisor.hh"

namespace klebsim::kleb
{

/**
 * One monitoring session.
 */
class Session
{
  public:
    struct Options
    {
        /** Events recorded per sample (<= 3 fixed + 4 programmable). */
        std::vector<hw::HwEvent> events = {
            hw::HwEvent::instRetired, hw::HwEvent::llcReference,
            hw::HwEvent::llcMiss, hw::HwEvent::branchRetired};

        /** Sampling period (paper recommends >= 100 us). */
        Tick period = usToTicks(100);

        std::size_t bufferCapacity = 16384;
        bool traceChildren = true;
        bool countKernel = false;

        /** Controller core (-1 = same core as the target). */
        CoreId controllerCore = invalidCore;

        /**
         * Supervisor core pin (-1 = auto-place on the core after
         * the controller's).  Pinning the supervisor to its ward's
         * own core is refused outright: a hung controller wedges
         * inside a syscall that monopolizes its core, and a
         * same-core watchdog would be starved of the very poll
         * that detects the hang.
         */
        CoreId supervisorCore = invalidCore;

        KLebModule::Tuning moduleTuning{};
        ControllerBehavior::Tuning controllerTuning{};

        /** Disable timer jitter (unit tests). */
        bool idealTimer = false;

        /**
         * Extra insmod attempts after a failed module load (the
         * kernel's module-load fault hook can veto loads).  With
         * all attempts exhausted the session degrades: monitor()
         * still runs the target, just unmonitored.
         */
        int loadRetries = 2;

        /**
         * Journal every drained sample into a crash-durable,
         * checksummed log (src/kleb/durable_log.hh) that
         * LogRecovery can replay after a crash.  Off by default:
         * fault-free runs stay byte-identical to earlier builds.
         */
        bool durableLog = false;

        /**
         * Spawn a supervisor service that watches the controller's
         * heartbeat and restarts it (bounded, backed off) on death
         * or hang, re-attaching to the still-loaded module.
         * Implies durableLog.  Off by default for the same
         * byte-identical reason.
         */
        bool supervise = false;

        SupervisorBehavior::Tuning supervisorTuning{};

        /**
         * Adaptive sampling: create a RateGovernor that retunes
         * the HRTimer period per drain cycle to hit the configured
         * overhead budget (SET_PERIOD ioctls, journaled as
         * rateChange frames when a durable log is on).  Off by
         * default: fixed-rate runs stay byte-identical.
         */
        bool adaptive = false;

        /**
         * Governor tuning (used when adaptive is set).  Leaving
         * costPerSample / costPerDrain at 0 derives them from the
         * calibrated module/controller costs.
         */
        RateGovernor::Config governor{};
    };

    Session(kernel::System &sys, Options options);

    /**
     * Unloads the module if this session still owns a loaded one —
     * exactly once, whatever path led here (clean finish, degrade,
     * supervisor giving up with the controller dead): the unload
     * hook nulls module_ so a module already removed (by the
     * sequential runner, a test, or a crash of the whole machine)
     * is never double-rmmod'ed.
     */
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /**
     * Arm monitoring on @p target (which must be in `created`
     * state when @p start_target is true).  Loads the module,
     * starts the controller; once the controller's START ioctl
     * lands, @p target is started so that its very first
     * instruction is monitored.
     *
     * If the module failed to load (see Options::loadRetries) the
     * session degrades gracefully: @p target is started
     * unmonitored and no controller is spawned.
     */
    void monitor(kernel::Process *target, bool start_target = true);

    /** True once the controller has drained everything and exited. */
    bool finished() const;

    /** True when every insmod attempt was vetoed. */
    bool loadFailed() const { return loadFailed_; }

    /** insmod attempts made by the constructor (>= 1). */
    int loadAttempts() const { return loadAttempts_; }

    /**
     * True when the controller gave up mid-session (module
     * unloaded under it, or chardev retries exhausted); the
     * partial log remains available through samples().
     */
    bool aborted() const
    { return behavior_ && behavior_->aborted(); }

    /** Transient chardev failures retried, over all incarnations. */
    std::uint64_t retries() const;

    /**
     * All samples logged, across every controller incarnation (a
     * supervised session may have several after restarts).
     */
    const std::vector<Sample> &samples() const;

    /** Cumulative counter time series (one channel per event). */
    stats::TimeSeries series() const;

    /** Per-interval delta series. */
    stats::TimeSeries deltaSeries() const;

    /**
     * Final (exact) counter totals as an EventVector; taken from
     * the module's end-of-monitoring snapshot.
     */
    hw::EventVector finalTotals() const;

    /**
     * Module status snapshot.  Safe at any point of the lifecycle:
     * after the module is unloaded (or was never loaded) this
     * returns the snapshot taken at unload time rather than
     * touching freed module state.
     */
    KLebStatus status() const;

    /**
     * Ring-buffer loss accounting in the shared stats::LossCounts
     * form (same shape the histogram reports for its out-of-range
     * bins); valid whether or not the module is still loaded.
     */
    stats::LossCounts
    losses() const
    {
        KLebStatus st = status();
        stats::LossCounts lc;
        lc.accepted = st.samplesRecorded;
        lc.dropped = st.samplesDropped;
        // Windows forfeited to PMU contention are gaps in the
        // series, not drops: the ring never saw them.
        lc.gaps = st.lostToContention;
        return lc;
    }

    /** Module (null if load failed or it was unloaded). */
    KLebModule *module() { return module_; }
    kernel::Process *controllerProcess() { return controller_; }
    kernel::Process *target() { return target_; }
    const std::string &devPath() const { return devPath_; }

    /** Durable sample journal (null unless enabled). */
    const DurableLog *durableLog() const { return durableLog_.get(); }

    /**
     * The adaptive-sampling governor (null unless Options::adaptive
     * was set).  Session-lived: it survives controller restarts so
     * the overhead estimate and change statistics span the whole
     * run.
     */
    const RateGovernor *governor() const { return governor_.get(); }

    /** Supervision outcome (all-zero when unsupervised). */
    SupervisorStats supervisorStats() const
    {
        return supervisorBehavior_ ? supervisorBehavior_->stats()
                                   : SupervisorStats{};
    }

    /** Controller incarnations spawned (1 = never restarted). */
    std::size_t incarnations() const
    { return retired_.size() + (behavior_ ? 1 : 0); }

  private:
    /**
     * Supervisor restart path: retire the dead incarnation and
     * spawn a replacement in reattach mode.  Returns the new
     * controller process, or null when the module is gone.
     */
    kernel::Process *restartController();

    /** Wire heartbeat/durable-log/abort plumbing into @p b. */
    void plumbBehavior(ControllerBehavior &b);

    kernel::System &sys_;
    Options options_;
    std::string devPath_;
    KLebModule *module_ = nullptr;
    std::unique_ptr<ControllerBehavior> behavior_;
    kernel::Process *controller_ = nullptr;
    kernel::Process *target_ = nullptr;

    /** Dead incarnations, kept alive for their logs/counters. */
    std::vector<std::unique_ptr<ControllerBehavior>> retired_;
    mutable std::vector<Sample> mergedSamples_;

    KLebConfig cfg_{};
    Heartbeat heartbeat_;
    std::unique_ptr<DurableLog> durableLog_;
    std::unique_ptr<RateGovernor> governor_;
    std::unique_ptr<SupervisorBehavior> supervisorBehavior_;
    kernel::Process *supervisor_ = nullptr;

    bool loadFailed_ = false;
    int loadAttempts_ = 0;

    /** Watches for our module being unloaded out from under us. */
    int moduleHookId_ = -1;

    /** Hotplug notifier feeding the governor (adaptive only). */
    int cpuHookId_ = -1;

    /** Status captured the moment the module went away. */
    KLebStatus lastStatus_;
};

} // namespace klebsim::kleb

#endif // KLEBSIM_KLEB_SESSION_HH
