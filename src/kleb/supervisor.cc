#include "supervisor.hh"

#include <algorithm>

#include "base/intmath.hh"
#include "base/logging.hh"
#include "base/thread_safety.hh"
#include "kernel/kernel.hh"
#include "kernel/process.hh"

namespace klebsim::kleb
{

SupervisorBehavior::SupervisorBehavior(Ward ward,
                                       const Heartbeat *heartbeat,
                                       Tuning tuning)
    : ward_(std::move(ward)), heartbeat_(heartbeat),
      tuning_(tuning)
{
    panic_if(heartbeat_ == nullptr, "supervisor without heartbeat");
    panic_if(!ward_.controller || !ward_.finishedCleanly ||
                 !ward_.moduleLoaded || !ward_.restart,
             "supervisor ward is missing callbacks");
    stats_.budget = tuning_.restartBudget;
}

void
SupervisorBehavior::noteReattach(bool armed)
{
    if (armed)
        ++stats_.reattaches;
    else
        ++stats_.failedReattaches;
}

kernel::ServiceOp
SupervisorBehavior::nextOp(kernel::Kernel &kernel,
                           kernel::Process &self)
{
    (void)kernel;
    (void)self;
    using Op = kernel::ServiceOp;

    switch (state_) {
      case State::poll:
        state_ = State::evaluate;
        return Op::makeSleep(tuning_.pollInterval);

      case State::evaluate:
        // Healthy path: go back to sleep.  The syscall body may
        // override the next state on failure detection.
        state_ = State::poll;
        return Op::makeSyscall(
            [this](kernel::Kernel &k, kernel::Process &) {
                KLEB_ANNOTATE_ACCESS(&stats_,
                                     "kleb.Supervisor.stats");
                ++stats_.polls;
                if (ward_.finishedCleanly()) {
                    state_ = State::done;
                    return;
                }
                kernel::Process *c = ward_.controller();
                const bool dead =
                    c == nullptr ||
                    c->state() == kernel::ProcState::zombie;
                // Snapshot the beat once: re-reading a concurrently
                // stamped cell between the staleness comparisons
                // could see two different beats and judge a live
                // controller hung (or vice versa).
                const Tick last = heartbeat_->lastBeat.load(
                    std::memory_order_relaxed);
                const bool stale =
                    !dead && k.now() > last &&
                    k.now() - last > tuning_.heartbeatTimeout;
                if (!dead && !stale)
                    return;
                if (!ward_.moduleLoaded()) {
                    // Nothing left to re-attach to.
                    state_ = State::done;
                    return;
                }
                if (static_cast<int>(stats_.restarts) >=
                    tuning_.restartBudget) {
                    stats_.budgetExhausted = true;
                    state_ = State::done;
                    return;
                }
                if (stale) {
                    // A hung controller is still holding the device
                    // open: kill it before replacing it.
                    k.kill(c);
                    ++stats_.kills;
                }
                deathTick_ = c ? c->exitTick() : k.now();
                state_ = State::backoff;
            },
            tuning_.pollCost, tuning_.pollFootprint);

      case State::backoff: {
        state_ = State::restart;
        // The exponent is clamped, but a large restartBackoff
        // tuning could still overflow the shift; saturate instead.
        const int shift = std::min<int>(
            static_cast<int>(stats_.restarts), 10);
        return Op::makeSleep(
            saturatingShl(tuning_.restartBackoff, shift));
      }

      case State::restart:
        state_ = State::poll;
        return Op::makeSyscall(
            [this](kernel::Kernel &k, kernel::Process &) {
                KLEB_ANNOTATE_ACCESS(&stats_,
                                     "kleb.Supervisor.stats");
                kernel::Process *np = ward_.restart(deathTick_);
                if (np == nullptr) {
                    state_ = State::done;
                    return;
                }
                ++stats_.restarts;
                stats_.totalOutage += k.now() - deathTick_;
                stats_.lastRestartTick = k.now();
            });

      case State::done:
        if (!gaveUp_) {
            gaveUp_ = true;
            if (!ward_.finishedCleanly() && ward_.giveUp)
                ward_.giveUp();
        }
        return Op::makeExit();
    }
    panic("supervisor behavior ran past exit");
}

} // namespace klebsim::kleb
