/**
 * @file
 * Post-crash recovery scan over a DurableLog medium.
 *
 * LogRecovery::scan() walks the fixed-size frame slots, validates
 * magic/CRC/sequence numbers, and classifies every frame the writer
 * ever emitted into exactly one of three buckets:
 *
 *  - kept:     the slot is present and intact;
 *  - dropped:  the slot is present but corrupt (bad magic, CRC
 *              mismatch, torn partial tail) — fixed-size slots mean
 *              a corrupt slot consumes exactly one sequence number;
 *  - vanished: the header says the writer appended it but the
 *              medium no longer holds a slot for it (truncation
 *              past a frame boundary).
 *
 * So the accounting balances exactly:
 *     kept + dropped + vanished == header.framesAppended.
 *
 * Outage gaps are derived from epoch structure: whenever kept
 * sample frames change epoch, the span from the last pre-crash
 * sample to the first post-restart sample is recorded as a
 * GapRecord, summed into gapTicks, and surfaced as the `gap_ticks`
 * channel of the spliced time series (and the `gaps` field of
 * stats::LossCounts).
 */

#ifndef KLEBSIM_KLEB_LOG_RECOVERY_HH
#define KLEBSIM_KLEB_LOG_RECOVERY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"
#include "durable_log.hh"
#include "sample.hh"
#include "stats/summary.hh"
#include "stats/time_series.hh"

namespace klebsim::kleb
{

/** One monitoring outage spliced over during recovery. */
struct GapRecord
{
    std::uint32_t fromEpoch = 0; //!< epoch of the last sample before
    std::uint32_t toEpoch = 0;   //!< epoch of the first sample after
    Tick from = 0;               //!< last durable pre-outage sample
    Tick to = 0;                 //!< first durable post-outage sample
};

/** One intact hotplug marker frame (coreOffline / coreOnline). */
struct CoreEventRecord
{
    std::uint16_t core = 0;  //!< core the marker is about
    std::uint32_t epoch = 0; //!< epoch the marker landed in
    Tick at = 0;             //!< simulated time of the event
    bool offline = false;    //!< coreOffline (else coreOnline)
};

/**
 * One core outage reconstructed from a coreOffline marker and (when
 * the core returned inside the journal) its matching coreOnline.
 * An unclosed outage means the run ended with the core still down.
 */
struct CoreOutageRecord
{
    std::uint16_t core = 0;
    Tick from = 0;       //!< coreOffline marker time
    Tick to = 0;         //!< coreOnline marker time (0 if unclosed)
    bool closed = false; //!< the core came back inside the journal
};

/** One intact rateChange frame (adaptive sampling journal). */
struct RateChangeRecord
{
    std::uint32_t epoch = 0; //!< epoch the change landed in
    Tick at = 0;             //!< simulated time of the SET_PERIOD
    Tick oldPeriod = 0;
    Tick newPeriod = 0;
};

/** What a recovery scan found. */
struct RecoveryReport
{
    /** Header parsed (magic/version ok, length >= header). */
    bool valid = false;

    /** Writer-side frame count from the durable header. */
    std::uint64_t framesEmitted = 0;

    /** Intact frames (epoch + sample). */
    std::uint64_t framesKept = 0;

    /** Present-but-corrupt slots (incl. a torn partial tail). */
    std::uint64_t framesDropped = 0;

    /** Emitted frames with no slot left on the medium. */
    std::uint64_t framesVanished = 0;

    /** Medium ends in a partial (torn) frame slot. */
    bool tornTail = false;

    /** Epoch-begin frames recovered intact. */
    std::uint32_t epochs = 0;

    /** Intact sample frames. */
    std::uint64_t samplesRecovered = 0;

    /** Intact rate-change frames. */
    std::uint64_t rateChanges = 0;

    /** Outages between consecutive kept-sample epochs. */
    std::vector<GapRecord> gaps;

    /** Total simulated time covered by the gaps. */
    Tick gapTicks = 0;

    /** Intact hotplug marker frames (coreOffline + coreOnline). */
    std::uint64_t coreMarkers = 0;

    /** Core outages paired up from the markers, in journal order. */
    std::vector<CoreOutageRecord> coreOutages;

    /** Total simulated time covered by *closed* core outages. */
    Tick coreOutageTicks = 0;

    /** Sequence/ordering/structure anomalies (diagnostics). */
    std::vector<std::string> violations;

    /** Exact frame accounting (must hold for any valid medium). */
    bool
    balanced() const
    {
        return valid && framesKept + framesDropped +
                            framesVanished == framesEmitted;
    }

    /**
     * The scan folded into the shared loss-accounting shape:
     * accepted = recovered samples, dropped = corrupt slots,
     * gaps = vanished frames.
     */
    stats::LossCounts losses() const;
};

/** A scanned medium: the report plus the kept sample frames. */
struct RecoveredLog
{
    RecoveryReport report;
    std::vector<Sample> samples;
    std::vector<std::uint32_t> sampleEpochs; //!< parallel to samples

    /**
     * Intact hotplug marker frames in medium order.  Like rate
     * changes they are kept out of `samples`: they bound a per-core
     * outage (with the cumulative counts at the boundary) but are
     * not measurements, so sample-count accounting and the spliced
     * series see only real snapshots.
     */
    std::vector<CoreEventRecord> coreEvents;

    /**
     * Intact rate-change frames in medium order.  Kept out of
     * `samples` — they carry periods, not counter readings — so the
     * spliced series and sample-count accounting are unaffected by
     * how often the governor retuned.
     */
    std::vector<RateChangeRecord> rateChanges;
};

class LogRecovery
{
  public:
    /** Scan @p bytes (a DurableLog medium, possibly corrupted). */
    static RecoveredLog scan(const std::vector<std::uint8_t> &bytes);

    /**
     * Splice the kept samples of every epoch into one TimeSeries.
     * Channels are @p channel_names (one per configured event, in
     * sample-column order) plus a final "gap_ticks" channel that is
     * nonzero exactly on the first sample after each outage,
     * carrying the outage length.  When the journal holds hotplug
     * markers, a "core_outage_ticks" channel is appended as well:
     * nonzero on the first sample at or after each closed core
     * outage's end, carrying that outage's length — the coreOffline
     * gap is spliced explicitly, never silently absorbed.  Media
     * without markers (every pre-SMP log) get the exact same
     * channels as before.
     */
    static stats::TimeSeries
    splice(const RecoveredLog &recovered,
           const std::vector<std::string> &channel_names);
};

} // namespace klebsim::kleb

#endif // KLEBSIM_KLEB_LOG_RECOVERY_HH
