/**
 * @file
 * The K-LEB kernel module (the paper's core contribution).
 *
 * Responsibilities, mirroring paper section III / Fig. 2:
 *  (1) ioctl CONFIG/START receives the target PID, event list and
 *      timer period from the controller and programs the PMU;
 *  (2) a kprobe on the scheduler's context-switch tracepoint
 *      isolates the target: counters run (and the HRTimer ticks)
 *      only while the target or one of its descendants is on-core;
 *  (3) the HRTimer interrupt handler snapshots the counters into a
 *      ring buffer in kernel memory;
 *  (4) the safety mechanism pauses collection when the buffer
 *      fills, resuming automatically once the controller drains it;
 *  (5) on STOP or target exit, a final exact snapshot is recorded
 *      and the remaining samples are handed to user space.
 */

#ifndef KLEBSIM_KLEB_KLEB_MODULE_HH
#define KLEBSIM_KLEB_KLEB_MODULE_HH

#include <array>
#include <memory>
#include <vector>

#include "base/ring_buffer.hh"
#include "base/types.hh"
#include "kernel/kernel.hh"
#include "kleb_config.hh"
#include "sample.hh"

namespace klebsim::kleb
{

/**
 * Request structure for read() on /dev/kleb: the controller passes
 * a destination vector; the module fills it and reports whether
 * monitoring has finished.
 */
struct DrainRequest
{
    std::vector<Sample> *out = nullptr;
    std::size_t max = 0;    //!< 0 = drain everything
    bool finished = false;  //!< set by the module
};

/**
 * The module.
 */
class KLebModule : public kernel::KernelModule
{
  public:
    /** Calibrated micro-costs of the module's own code paths. */
    struct Tuning
    {
        /** HRTimer handler body (counter reads + buffer store). */
        Tick handlerCost = nsToTicks(900);

        /** Handler cache footprint. */
        std::uint64_t handlerFootprint = 512;

        /** Kernel-side cost per sample copied to user space. */
        Tick readPerSample = nsToTicks(60);

        /** CONFIG ioctl parse/allocate cost. */
        Tick configCost = usToTicks(120);

        /** SET_PERIOD ioctl cost (validate + reprogram timer). */
        Tick setPeriodCost = usToTicks(1);

        /** Resume threshold: continue once fill <= capacity/N. */
        std::size_t resumeDivisor = 2;
    };

    KLebModule();
    explicit KLebModule(Tuning tuning);
    ~KLebModule() override;

    /** @{ KernelModule interface. */
    std::string name() const override { return "k_leb"; }
    void init(kernel::Kernel &kernel) override;
    void exitModule(kernel::Kernel &kernel) override;
    long ioctl(kernel::Kernel &kernel, kernel::Process &caller,
               std::uint32_t cmd, void *arg) override;
    long read(kernel::Kernel &kernel, kernel::Process &caller,
              void *buf, std::size_t len) override;
    /** @} */

    /** Process the module should wake on pause/finish. */
    void setWakeTarget(kernel::Process *proc) { wakeTarget_ = proc; }

    /** Live status (same data as the STATUS ioctl). */
    KLebStatus status() const;

    /** The module's HRTimer (null before START); test access. */
    kernel::HrTimer *timer() { return timer_; }

    const KLebConfig &config() const { return cfg_; }

    /** True while the target (tree) is on-core and counting. */
    bool counting() const { return counting_; }

  private:
    bool isMonitored(const kernel::Process *proc);
    void onSwitch(kernel::Process *prev, kernel::Process *next,
                  CoreId core);
    void onProcessExit(kernel::Process &proc);
    void onTimer();
    void startOrResumeTimer();
    void recordSample(SampleCause cause);
    void programPmu();
    void stopMonitoring(SampleCause cause);
    void wakeController();

    Tuning tuning_;
    kernel::Kernel *kernel_ = nullptr;
    KLebConfig cfg_;

    /** (isFixed, counterIdx) per configured event. */
    struct CounterRef
    {
        bool fixed = false;
        int idx = 0;
    };
    std::vector<CounterRef> counterMap_;

    std::unique_ptr<RingBuffer<Sample>> buf_;
    kernel::HrTimer *timer_ = nullptr;
    bool timerStarted_ = false;
    kernel::Process *wakeTarget_ = nullptr;

    int switchHookId_ = -1;
    int exitHookId_ = -1;

    bool configured_ = false;
    bool monitoring_ = false;
    bool counting_ = false;
    bool paused_ = false;
    bool targetAlive_ = false;
    CoreId targetCore_ = invalidCore;

    std::uint64_t samplesRecorded_ = 0;
    std::uint64_t samplesDropped_ = 0;
    std::uint64_t pauseEpisodes_ = 0;
    std::uint64_t periodChanges_ = 0;

    /**
     * Overflow-aware delta state: samples report wrapBase + raw so
     * logged counts stay cumulative even when the hardware counter
     * wraps at a narrow effective width.  A wrap is detected when a
     * raw reading moves backwards; sampling faster than one wrap
     * per period is the driver's responsibility (the paper's 100 us
     * hrtimer at 48 bits gives ~10^9 s of headroom).
     */
    std::uint64_t counterModulus_ = 0;
    std::vector<std::uint64_t> lastRaw_;
    std::vector<std::uint64_t> wrapBase_;
    std::uint64_t counterWraps_ = 0;
};

} // namespace klebsim::kleb

#endif // KLEBSIM_KLEB_KLEB_MODULE_HH
