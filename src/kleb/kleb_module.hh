/**
 * @file
 * The K-LEB kernel module (the paper's core contribution).
 *
 * Responsibilities, mirroring paper section III / Fig. 2:
 *  (1) ioctl CONFIG/START receives the target PID, event list and
 *      timer period from the controller and programs the PMU;
 *  (2) a kprobe on the scheduler's context-switch tracepoint
 *      isolates the target: counters run (and the HRTimer ticks)
 *      only while the target or one of its descendants is on-core;
 *  (3) the HRTimer interrupt handler snapshots the counters into a
 *      ring buffer in kernel memory;
 *  (4) the safety mechanism pauses collection when the buffer
 *      fills, resuming automatically once the controller drains it;
 *  (5) on STOP or target exit, a final exact snapshot is recorded
 *      and the remaining samples are handed to user space.
 *
 * SMP hardening (per-CPU sessions): every core the target ever runs
 * on gets its own PMU programming, HRTimer and sample ring, created
 * lazily at first switch-in so a single-core session allocates
 * exactly what the original single-core module did.  Counter
 * attribution telescopes across migrations — the PMU freeze at
 * switch-out is the snapshot; the delta accumulated on the old core
 * is folded into a carried base at the next switch-in elsewhere, so
 * logged counts stay cumulative and monotone no matter how often
 * the scheduler moves the target.  CPU hotplug quiesces the
 * offlined core's ring into a spill queue (relocated, never
 * dropped) bracketed by coreOffline/coreOnline marker records, and
 * PMU claims lost to a contending owner degrade monitoring on that
 * core only, with every forfeited window counted.
 */

#ifndef KLEBSIM_KLEB_KLEB_MODULE_HH
#define KLEBSIM_KLEB_KLEB_MODULE_HH

#include <array>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "base/ring_buffer.hh"
#include "base/types.hh"
#include "hw/timer_device.hh"
#include "kernel/kernel.hh"
#include "kleb_config.hh"
#include "sample.hh"
#include "sample_arena.hh"

namespace klebsim::kleb
{

/**
 * Request structure for read() on /dev/kleb: the controller passes
 * a destination vector; the module fills it and reports whether
 * monitoring has finished.
 */
struct DrainRequest
{
    std::vector<Sample> *out = nullptr;
    std::size_t max = 0;    //!< 0 = drain everything
    bool finished = false;  //!< set by the module
};

/**
 * The module.
 */
class KLebModule : public kernel::KernelModule
{
  public:
    /** Calibrated micro-costs of the module's own code paths. */
    struct Tuning
    {
        /** HRTimer handler body (counter reads + buffer store). */
        Tick handlerCost = nsToTicks(900);

        /** Handler cache footprint. */
        std::uint64_t handlerFootprint = 512;

        /** Kernel-side cost per sample copied to user space. */
        Tick readPerSample = nsToTicks(60);

        /** CONFIG ioctl parse/allocate cost. */
        Tick configCost = usToTicks(120);

        /** SET_PERIOD ioctl cost (validate + reprogram timer). */
        Tick setPeriodCost = usToTicks(1);

        /** Resume threshold: continue once fill <= capacity/N. */
        std::size_t resumeDivisor = 2;

        /**
         * PMU-claim attempts per core before that core degrades to
         * unmonitored (pmu.contend).  Each failed claim forfeits
         * one on-core window; once degraded, the target runs
         * unmeasured there until the core is hotplug-cycled.
         */
        int maxClaimRetries = 3;
    };

    KLebModule();
    explicit KLebModule(Tuning tuning);
    ~KLebModule() override;

    /** @{ KernelModule interface. */
    std::string name() const override { return "k_leb"; }
    void init(kernel::Kernel &kernel) override;
    void exitModule(kernel::Kernel &kernel) override;
    long ioctl(kernel::Kernel &kernel, kernel::Process &caller,
               std::uint32_t cmd, void *arg) override;
    long read(kernel::Kernel &kernel, kernel::Process &caller,
              void *buf, std::size_t len) override;
    /** @} */

    /** Process the module should wake on pause/finish. */
    void setWakeTarget(kernel::Process *proc) { wakeTarget_ = proc; }

    /** Live status (same data as the STATUS ioctl). */
    KLebStatus status() const;

    /**
     * The active core's HRTimer (null before START); test access.
     * With per-CPU sessions there is one timer per visited core —
     * this returns the one armed where the target runs now.
     */
    kernel::HrTimer *timer();

    /**
     * Install a jitter model on every per-core timer, current and
     * future (tests use the ideal model).  Replaces the old
     * timer()->setJitterModel() poke, which only reached the start
     * core's timer.
     */
    void setTimerJitterModel(const hw::TimerJitterModel &m);

    const KLebConfig &config() const { return cfg_; }

    /** True while the target (tree) is on-core and counting. */
    bool counting() const { return counting_; }

  private:
    /**
     * Per-core session state.  One slot per core, indexed by
     * CoreId; ring and timer are created lazily at first switch-in
     * on that core so the default single-core path performs exactly
     * the allocations (and RNG forks) the pre-SMP module did.
     *
     * Single-writer discipline: each slot is only touched from its
     * own core's interrupt/switch context (or with that core
     * quiesced during hotplug), the same contract the runtime
     * lockset checker enforces for the other per-CPU structures.
     * Mutation points are instrumented with KLEB_ANNOTATE_ACCESS
     * (sites "kleb.KLebModule.percpu", ".spill", ".carried") so the
     * lockset checker sees every cross-core touch; there is no
     * mutex to KLEB_GUARDED_BY — the capability here is "the slot's
     * core is current or quiesced", which only the runtime checker
     * and the percpu-access lint rule can express.
     */
    struct PerCpuState
    {
        std::unique_ptr<RingBuffer<Sample>> ring;
        kernel::HrTimer *timer = nullptr;
        bool timerStarted = false;
        bool paused = false;      //!< safety mechanism, this ring
        bool programmed = false;  //!< PMU selectors written
        bool claimed = false;     //!< advisory PMU ownership held
        bool degraded = false;    //!< lost the PMU; unmonitored
        int claimFailures = 0;

        /** Overflow-aware delta state for this core's counters. */
        std::uint64_t modulus = 0;
        std::array<std::uint64_t, maxSampleEvents> lastRaw{};
        std::array<std::uint64_t, maxSampleEvents> wrapBase{};

        /**
         * Wrap-corrected reading of each counter at the moment this
         * core last became (or stopped being) the active core; the
         * delta beyond it is what this core has measured since.
         */
        std::array<std::uint64_t, maxSampleEvents> base{};
    };

    bool isMonitored(const kernel::Process *proc);
    void onSwitch(kernel::Process *prev, kernel::Process *next,
                  CoreId core);
    void onCpuEvent(CoreId core, kernel::CpuEvent event);
    void onProcessExit(kernel::Process &proc);
    void onTimer(CoreId core);
    void startOrResumeTimer(CoreId core);
    void recordSample(SampleCause cause);
    void recordMarker(SampleCause cause, CoreId core);
    void programPmu(CoreId core);
    bool claimPmu(CoreId core);
    void releaseAll();
    void foldActiveDelta();
    void currentCounts(Sample &s);
    std::uint64_t readCorrected(CoreId core, std::size_t i);
    void quiesceCore(CoreId core);
    void stopMonitoring(SampleCause cause);
    void wakeController();
    PerCpuState &slot(CoreId core);
    const PerCpuState *slotIfValid(CoreId core) const;
    std::uint64_t claimCookie() const;

    Tuning tuning_;
    kernel::Kernel *kernel_ = nullptr;
    KLebConfig cfg_;

    /** (isFixed, counterIdx) per configured event. */
    struct CounterRef
    {
        bool fixed = false;
        int idx = 0;
    };
    std::vector<CounterRef> counterMap_;

    /** One session slot per core; see PerCpuState. */
    std::vector<PerCpuState> perCpu_;

    /**
     * Samples relocated off offlined cores' rings, plus the hotplug
     * marker records.  Kept timestamp-sorted (quiesce batches are
     * merged in) so the k-way drain stays globally ordered.
     */
    std::deque<Sample> spill_;

    /**
     * Cache-line-aligned staging slab for bulk drains (controller
     * read() fast path, hotplug quiesce relocation), sized to the
     * ring capacity at CONFIG so no drain ever allocates.
     */
    SampleArena arena_;

    /**
     * Counts accumulated on cores the target has already left:
     * sample values are carried_ + (active core's delta past its
     * base), which telescopes to a single cumulative series.
     */
    std::array<std::uint64_t, maxSampleEvents> carried_{};

    kernel::Process *wakeTarget_ = nullptr;

    int switchHookId_ = -1;
    int exitHookId_ = -1;
    int cpuHookId_ = -1;

    bool configured_ = false;
    bool monitoring_ = false;
    bool counting_ = false;
    bool targetAlive_ = false;

    /** Core the session started on (timer anchored there first). */
    CoreId startCore_ = invalidCore;

    /** Core the target is (or last was) monitored on. */
    CoreId activeCore_ = invalidCore;

    std::optional<hw::TimerJitterModel> jitterOverride_;

    /** @{ Migration ledger: kept + migrated + dropped == emitted. */
    std::uint64_t samplesEmitted_ = 0;
    std::uint64_t samplesKept_ = 0;
    std::uint64_t samplesMigrated_ = 0;
    std::uint64_t samplesDropped_ = 0;
    /** @} */

    std::uint64_t coreMarkers_ = 0;
    std::uint64_t targetMigrations_ = 0;
    std::uint64_t contentionEvents_ = 0;
    std::uint64_t degradedCores_ = 0;
    std::uint64_t lostToContention_ = 0;
    std::uint64_t pauseEpisodes_ = 0;
    std::uint64_t periodChanges_ = 0;
    std::uint64_t counterWraps_ = 0;
};

} // namespace klebsim::kleb

#endif // KLEBSIM_KLEB_KLEB_MODULE_HH
