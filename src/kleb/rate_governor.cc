#include "rate_governor.hh"

#include <algorithm>

#include "base/logging.hh"

namespace klebsim::kleb
{

RateGovernor::RateGovernor(Config config, Tick initial_period)
    : config_(config), period_(initial_period)
{
    panic_if(config_.budget <= 0.0, "rate governor: budget <= 0");
    panic_if(config_.minPeriod == 0,
             "rate governor: zero minPeriod");
    panic_if(config_.minPeriod > config_.maxPeriod,
             "rate governor: minPeriod > maxPeriod");
    panic_if(config_.growFactor <= 1.0,
             "rate governor: growFactor must be > 1");
    panic_if(config_.shrinkFactor <= 0.0 ||
                 config_.shrinkFactor >= 1.0,
             "rate governor: shrinkFactor must be in (0, 1)");
    panic_if(config_.lowWater <= 0.0 ||
                 config_.lowWater >= config_.highWater,
             "rate governor: need 0 < lowWater < highWater");
    panic_if(config_.alpha <= 0.0 || config_.alpha > 1.0,
             "rate governor: alpha must be in (0, 1]");
    panic_if(initial_period == 0,
             "rate governor: zero initial period");
}

Tick
RateGovernor::clamp(Tick period) const
{
    return std::min(std::max(period, config_.minPeriod),
                    config_.maxPeriod);
}

std::optional<Tick>
RateGovernor::observe(Tick now, std::size_t drained)
{
    ++stats_.observations;

    // The first observation (and the first after an adopt) only
    // anchors the interval clock; there is no elapsed window to
    // attribute cost to yet.
    if (!haveLastObserve_) {
        haveLastObserve_ = true;
        lastObserve_ = now;
        return std::nullopt;
    }
    const Tick elapsed = now > lastObserve_ ? now - lastObserve_ : 0;
    lastObserve_ = now;
    if (elapsed == 0)
        return std::nullopt;

    const double spent = static_cast<double>(
        config_.costPerDrain +
        config_.costPerSample * static_cast<Tick>(drained));
    const double inst = spent / static_cast<double>(elapsed);
    estimate_ = haveEstimate_
                    ? config_.alpha * inst +
                          (1.0 - config_.alpha) * estimate_
                    : inst;
    haveEstimate_ = true;

    // While a proposal is in flight (the controller may be in its
    // EAGAIN retry loop) or the estimate is still settling after a
    // change, keep observing but do not pile on new proposals.
    if (proposalPending_ || settleLeft_ > 0) {
        if (settleLeft_ > 0)
            --settleLeft_;
        ++stats_.holds;
        return std::nullopt;
    }

    Tick proposed = period_;
    if (estimate_ > config_.budget * config_.highWater) {
        proposed = clamp(static_cast<Tick>(
            static_cast<double>(period_) * config_.growFactor +
            0.5));
    } else if (estimate_ < config_.budget * config_.lowWater) {
        proposed = clamp(static_cast<Tick>(
            static_cast<double>(period_) * config_.shrinkFactor +
            0.5));
    }
    if (proposed == period_) {
        ++stats_.holds;
        return std::nullopt;
    }
    ++stats_.proposals;
    proposalPending_ = true;
    return proposed;
}

void
RateGovernor::applied(Tick period)
{
    proposalPending_ = false;
    settleLeft_ = config_.settleObservations;
    if (period > period_)
        ++stats_.backOffs;
    else if (period < period_)
        ++stats_.speedUps;
    period_ = period;
}

void
RateGovernor::rejected()
{
    proposalPending_ = false;
    settleLeft_ = config_.settleObservations;
    ++stats_.rejected;
}

void
RateGovernor::noteCoreOffline(CoreId core)
{
    (void)core;
    outagePending_ = true;
}

void
RateGovernor::noteCoreOnline(CoreId core)
{
    (void)core;
    if (!outagePending_)
        return;
    outagePending_ = false;
    ++stats_.hotplugResets;
    estimate_ = 0.0;
    haveEstimate_ = false;
    settleLeft_ = 0;
    proposalPending_ = false;
    haveLastObserve_ = false;
    lastObserve_ = 0;
}

void
RateGovernor::adopt(Tick period)
{
    panic_if(period == 0, "rate governor: adopting zero period");
    period_ = period;
    proposalPending_ = false;
    settleLeft_ = config_.settleObservations;
    // The outage between incarnations is not a monitoring interval;
    // re-anchor the clock so it never dilutes the estimate.
    haveLastObserve_ = false;
}

} // namespace klebsim::kleb
