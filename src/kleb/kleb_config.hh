/**
 * @file
 * Configuration passed from the controller process to the K-LEB
 * kernel module through the KLEB_IOC_CONFIG ioctl (paper Fig. 2,
 * step 1): target PID, hardware events, timer period, and buffer
 * sizing.
 */

#ifndef KLEBSIM_KLEB_KLEB_CONFIG_HH
#define KLEBSIM_KLEB_KLEB_CONFIG_HH

#include <vector>

#include "base/types.hh"
#include "hw/perf_event.hh"
#include "sample.hh"

namespace klebsim::kleb
{

/** ioctl command numbers on /dev/kleb. */
namespace ioc
{

constexpr std::uint32_t config = 0x4b01; //!< arg: KLebConfig*
constexpr std::uint32_t start = 0x4b02;
constexpr std::uint32_t stop = 0x4b03;
constexpr std::uint32_t status = 0x4b04; //!< arg: KLebStatus*

/**
 * Re-attach a (replacement) controller to a module that may already
 * be monitoring: rebinds the module's wake target to the caller and
 * returns the current status (arg: KLebStatus*).  Always succeeds
 * while the module is loaded, so a supervisor-spawned controller
 * can adopt an in-flight session without the einval a second START
 * would earn.
 */
constexpr std::uint32_t attach = 0x4b05;

/**
 * Reprogram the HRTimer period mid-session (arg: Tick*).  The armed
 * timer keeps its in-flight deadline — the pending sample is neither
 * lost nor double-delivered — and only subsequent expiries space at
 * the new period.  This is the kernel half of the adaptive-sampling
 * feedback loop; the controller's RateGovernor decides when to call
 * it.
 */
constexpr std::uint32_t setPeriod = 0x4b06;

} // namespace ioc

/** Module configuration. */
struct KLebConfig
{
    /** Process to monitor (kprobe-based isolation). */
    Pid targetPid = invalidPid;

    /**
     * Events to record per sample, in sample-column order.  Fixed
     * events (instRetired / coreCycles / refCycles) map onto fixed
     * counters; at most 4 others fit the programmable counters.
     */
    std::vector<hw::HwEvent> events;

    /** HRTimer period (the paper recommends >= 100 us). */
    Tick timerPeriod = usToTicks(100);

    /** Kernel ring-buffer capacity, in samples. */
    std::size_t bufferCapacity = 16384;

    /** Also monitor the target's descendants (PID tracing). */
    bool traceChildren = true;

    /** Count kernel-mode occurrences too (OS filter bit). */
    bool countKernel = false;
};

/** Snapshot returned by the status ioctl. */
struct KLebStatus
{
    bool configured = false;    //!< CONFIG accepted
    bool monitoring = false;    //!< between START and STOP/exit
    bool targetAlive = false;
    bool paused = false;        //!< safety mechanism engaged
    std::size_t pendingSamples = 0;
    std::uint64_t samplesRecorded = 0;
    std::uint64_t samplesDropped = 0;
    std::uint64_t pauseEpisodes = 0;

    /**
     * Counter wraps detected and corrected by the module's
     * overflow-aware delta logic (nonzero only when the effective
     * counter width is narrow enough to wrap between samples).
     */
    std::uint64_t counterWraps = 0;

    /**
     * The HRTimer period currently in force (configure-time value
     * until the first SET_PERIOD lands).  A re-attaching controller
     * adopts this so its rate-change journal stays consistent with
     * what the module is actually doing.
     */
    Tick currentPeriod = 0;

    /** SET_PERIOD ioctls accepted since CONFIG. */
    std::uint64_t periodChanges = 0;

    /** @{ Per-CPU session accounting (SMP hardening).
     *
     * The migration ledger partitions every emitted data sample:
     *   samplesKept + samplesMigrated + samplesDropped
     *       == samplesEmitted
     * at all times.  `samplesRecorded` above equals kept + migrated
     * (everything that landed in a ring); `samplesMigrated` counts
     * the ones later relocated off an offlined core's ring into the
     * spill queue — relocated, never silently dropped.
     */

    /** Data samples produced (excludes hotplug markers). */
    std::uint64_t samplesEmitted = 0;

    /** Samples still attributed to the ring they landed in. */
    std::uint64_t samplesKept = 0;

    /** Samples relocated from an offlined core's ring. */
    std::uint64_t samplesMigrated = 0;

    /** coreOffline/coreOnline marker records journaled. */
    std::uint64_t coreMarkers = 0;

    /** Times the monitored task moved between cores. */
    std::uint64_t targetMigrations = 0;

    /** PMU claim attempts refused with EBUSY (pmu.contend). */
    std::uint64_t contentionEvents = 0;

    /** Cores degraded to unmonitored after losing the PMU. */
    std::uint64_t degradedCores = 0;

    /**
     * Monitoring windows forfeited on degraded cores: switch-ins of
     * the target on a core whose PMU could not be claimed.  Feeds
     * stats::LossCounts::gaps so contention losses are first-class.
     */
    std::uint64_t lostToContention = 0;

    /** Core the target is (or was last) monitored on. */
    CoreId activeCore = invalidCore;

    /** @} */
};

} // namespace klebsim::kleb

#endif // KLEBSIM_KLEB_KLEB_CONFIG_HH
