#include "log_recovery.hh"

#include <algorithm>

#include "base/str.hh"

namespace klebsim::kleb
{

namespace
{

std::uint32_t
get32(const std::vector<std::uint8_t> &b, std::size_t at)
{
    return static_cast<std::uint32_t>(b[at]) |
           static_cast<std::uint32_t>(b[at + 1]) << 8 |
           static_cast<std::uint32_t>(b[at + 2]) << 16 |
           static_cast<std::uint32_t>(b[at + 3]) << 24;
}

std::uint64_t
get64(const std::vector<std::uint8_t> &b, std::size_t at)
{
    return static_cast<std::uint64_t>(get32(b, at)) |
           static_cast<std::uint64_t>(get32(b, at + 4)) << 32;
}

} // anonymous namespace

stats::LossCounts
RecoveryReport::losses() const
{
    stats::LossCounts lc;
    lc.accepted = samplesRecovered;
    lc.dropped = framesDropped;
    lc.gaps = framesVanished;
    return lc;
}

RecoveredLog
LogRecovery::scan(const std::vector<std::uint8_t> &bytes)
{
    RecoveredLog out;
    RecoveryReport &rep = out.report;

    if (bytes.empty()) {
        // A zero-length journal is a log that was never created
        // (the writer died before its first durable byte reached
        // the medium).  Nothing was emitted and nothing was lost:
        // report a clean, balanced, empty recovery rather than a
        // spurious header violation — fleet machines that crash
        // pre-arm hit this on every run.
        rep.valid = true;
        return out;
    }

    if (bytes.size() < DurableLog::headerSize ||
        get32(bytes, 0) != DurableLog::logMagic ||
        get32(bytes, 4) != DurableLog::version) {
        rep.violations.push_back(
            "durable log header missing or unreadable");
        return out;
    }
    rep.valid = true;
    rep.framesEmitted = get64(bytes, 8);

    const std::size_t body = bytes.size() - DurableLog::headerSize;
    const std::size_t slots = body / DurableLog::frameSize;
    if (body % DurableLog::frameSize != 0) {
        // A torn append: the partial slot is one dropped frame.
        rep.tornTail = true;
        ++rep.framesDropped;
    }

    std::uint64_t expected_seq = 0;
    std::uint32_t current_epoch = 0;
    bool epoch_open = false;
    Tick last_sample_tick = 0;
    std::uint32_t last_sample_epoch = 0;
    bool have_sample = false;

    for (std::size_t slot = 0; slot < slots; ++slot) {
        const std::size_t at =
            DurableLog::headerSize + slot * DurableLog::frameSize;

        const bool intact =
            get32(bytes, at) == DurableLog::frameMagic &&
            get32(bytes, at + 4) ==
                crc32c(bytes.data() + at + 8,
                       DurableLog::frameSize - 8);
        if (!intact) {
            // Fixed-size slots: the corrupt slot still consumed
            // exactly one frame (and one sequence number).
            ++rep.framesDropped;
            ++expected_seq;
            continue;
        }

        const std::uint32_t epoch = get32(bytes, at + 8);
        const std::uint32_t kind = get32(bytes, at + 12);
        const std::uint64_t seq = get64(bytes, at + 16);
        const Tick ts = get64(bytes, at + 24);
        const std::uint8_t num_events = bytes[at + 33];

        if (seq != expected_seq) {
            rep.violations.push_back(csprintf(
                "frame slot %zu: sequence %llu, expected %llu",
                slot, (unsigned long long)seq,
                (unsigned long long)expected_seq));
            expected_seq = seq;
        }
        ++expected_seq;

        const bool rate_kind =
            kind ==
            static_cast<std::uint32_t>(FrameKind::rateChange);
        if (kind >
                static_cast<std::uint32_t>(FrameKind::rateChange) ||
            num_events > maxSampleEvents ||
            (rate_kind && (num_events != 0 ||
                           get64(bytes, at + 48) == 0))) {
            // Structurally impossible despite an intact CRC: treat
            // it as corrupt rather than trusting it.  A rateChange
            // frame must carry no counter payload and a nonzero new
            // period.
            rep.violations.push_back(csprintf(
                "frame slot %zu: invalid kind/arity", slot));
            ++rep.framesDropped;
            continue;
        }

        ++rep.framesKept;
        if (kind ==
            static_cast<std::uint32_t>(FrameKind::epochBegin)) {
            if (epoch_open && epoch != current_epoch + 1)
                rep.violations.push_back(csprintf(
                    "frame slot %zu: epoch %u after epoch %u", slot,
                    epoch, current_epoch));
            current_epoch = epoch;
            epoch_open = true;
            ++rep.epochs;
            continue;
        }

        if (rate_kind) {
            // Adaptive-sampling journal entry: record it for series
            // re-spacing, but keep it out of the sample chain so it
            // neither triggers gaps nor counts as a sample.
            if (!epoch_open)
                rep.violations.push_back(csprintf(
                    "frame slot %zu: rate change outside any epoch",
                    slot));
            RateChangeRecord rc;
            rc.epoch = epoch;
            rc.at = ts;
            rc.oldPeriod = get64(bytes, at + 40);
            rc.newPeriod = get64(bytes, at + 48);
            ++rep.rateChanges;
            out.rateChanges.push_back(rc);
            continue;
        }

        if (!epoch_open)
            rep.violations.push_back(csprintf(
                "frame slot %zu: sample outside any epoch", slot));
        else if (epoch != current_epoch)
            rep.violations.push_back(csprintf(
                "frame slot %zu: sample tagged epoch %u inside "
                "epoch %u",
                slot, epoch, current_epoch));

        // Sample time must never run backwards.  (Epoch-begin
        // frames are excluded: a reattached incarnation stamps its
        // epoch at attach time, while the ring buffer it then
        // drains still holds older outage samples — that interleave
        // is legitimate.)
        if (have_sample && ts < last_sample_tick)
            rep.violations.push_back(csprintf(
                "frame slot %zu: timestamp moves backwards", slot));

        Sample s;
        s.timestamp = ts;
        s.cause = static_cast<SampleCause>(bytes[at + 32]);
        s.numEvents = num_events;
        s.core = static_cast<std::uint16_t>(
            bytes[at + 34] |
            static_cast<std::uint16_t>(bytes[at + 35]) << 8);
        for (std::size_t i = 0; i < maxSampleEvents; ++i)
            s.counts[i] = get64(bytes, at + 40 + 8 * i);

        // Hotplug markers bound a per-core outage; they ride in
        // sample frames but are control records, so route them to
        // the core-event journal instead of the sample chain.
        if (isCoreMarker(s.cause)) {
            CoreEventRecord ev;
            ev.core = s.core;
            ev.epoch = epoch;
            ev.at = ts;
            ev.offline = s.cause == SampleCause::coreOffline;
            ++rep.coreMarkers;
            out.coreEvents.push_back(ev);
            continue;
        }

        // Crossing an epoch boundary between kept samples is a
        // monitoring outage: record the explicit gap.
        if (have_sample && epoch != last_sample_epoch) {
            GapRecord gap;
            gap.fromEpoch = last_sample_epoch;
            gap.toEpoch = epoch;
            gap.from = last_sample_tick;
            gap.to = ts;
            rep.gapTicks += gap.to - gap.from;
            rep.gaps.push_back(gap);
        }
        last_sample_tick = ts;
        last_sample_epoch = epoch;
        have_sample = true;

        ++rep.samplesRecovered;
        out.samples.push_back(s);
        out.sampleEpochs.push_back(epoch);
    }

    // Pair the hotplug markers into per-core outages.  Markers are
    // in journal (time) order, so an online closes the most recent
    // still-open outage for its core; an online with no matching
    // offline (the core was never seen going down inside this
    // journal) bounds nothing and is skipped.
    for (const CoreEventRecord &ev : out.coreEvents) {
        if (ev.offline) {
            CoreOutageRecord o;
            o.core = ev.core;
            o.from = ev.at;
            rep.coreOutages.push_back(o);
            continue;
        }
        for (auto it = rep.coreOutages.rbegin();
             it != rep.coreOutages.rend(); ++it) {
            if (it->core == ev.core && !it->closed) {
                it->closed = true;
                it->to = ev.at;
                rep.coreOutageTicks += it->to - it->from;
                break;
            }
        }
    }

    const std::uint64_t present =
        rep.framesKept + rep.framesDropped;
    if (present <= rep.framesEmitted) {
        rep.framesVanished = rep.framesEmitted - present;
    } else {
        rep.violations.push_back(csprintf(
            "medium holds %llu frames but the writer recorded "
            "only %llu",
            (unsigned long long)present,
            (unsigned long long)rep.framesEmitted));
    }
    return out;
}

stats::TimeSeries
LogRecovery::splice(const RecoveredLog &recovered,
                    const std::vector<std::string> &channel_names)
{
    std::vector<std::string> names = channel_names;
    names.emplace_back("gap_ticks");

    // The hotplug channel exists only when the journal actually
    // holds markers, so pre-SMP media splice to the exact same
    // series as before.
    const bool hotplug = !recovered.coreEvents.empty();
    if (hotplug)
        names.emplace_back("core_outage_ticks");
    stats::TimeSeries ts(names);

    // Closed core outages charged to the first sample at or after
    // each outage's end, in end-time order.
    std::vector<CoreOutageRecord> closed;
    for (const CoreOutageRecord &o :
         recovered.report.coreOutages)
        if (o.closed)
            closed.push_back(o);
    std::sort(closed.begin(), closed.end(),
              [](const CoreOutageRecord &a,
                 const CoreOutageRecord &b) {
                  return a.to < b.to;
              });
    std::size_t next_outage = 0;

    for (std::size_t i = 0; i < recovered.samples.size(); ++i) {
        const Sample &s = recovered.samples[i];
        if (s.numEvents < channel_names.size())
            continue; // arity mismatch: scan already flagged it
        std::vector<double> row;
        row.reserve(names.size());
        for (std::size_t c = 0; c < channel_names.size(); ++c)
            row.push_back(static_cast<double>(s.counts[c]));
        double gap = 0.0;
        if (i > 0 && recovered.sampleEpochs[i] !=
                         recovered.sampleEpochs[i - 1])
            gap = static_cast<double>(
                s.timestamp -
                recovered.samples[i - 1].timestamp);
        row.push_back(gap);
        if (hotplug) {
            double core_gap = 0.0;
            while (next_outage < closed.size() &&
                   closed[next_outage].to <= s.timestamp) {
                core_gap += static_cast<double>(
                    closed[next_outage].to -
                    closed[next_outage].from);
                ++next_outage;
            }
            row.push_back(core_gap);
        }
        ts.append(s.timestamp, row);
    }
    return ts;
}

} // namespace klebsim::kleb
