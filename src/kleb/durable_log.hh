/**
 * @file
 * Crash-durable sample log (DESIGN.md section 11).
 *
 * The controller's drain path appends every sample to this
 * append-only byte log in addition to its in-memory log.  The
 * format is built so that any crash — of the controller, mid-append
 * tear, or bit rot on the medium — is detectable by construction:
 *
 *  - a 32-byte header carries writer-side metadata (frames appended,
 *    epochs opened) that survives because it is updated atomically
 *    at the simulation level per append;
 *  - the body is a sequence of fixed-size 96-byte frames, each
 *    carrying a magic, a CRC32C over its payload, a monotonically
 *    increasing global sequence number, and the epoch it belongs to;
 *  - a new *epoch* frame is written each time a controller
 *    incarnation (re-)arms monitoring, so post-crash recovery can
 *    splice pre-crash and post-restart data around an explicit gap.
 *
 * Fixed-size frames mean a torn tail is exactly one partial slot and
 * a corrupted frame consumes exactly one sequence number, so
 * LogRecovery's accounting balances exactly:
 * kept + dropped + vanished == header.framesAppended.
 */

#ifndef KLEBSIM_KLEB_DURABLE_LOG_HH
#define KLEBSIM_KLEB_DURABLE_LOG_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "sample.hh"

namespace klebsim::kleb
{

/**
 * CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78),
 * the checksum used by iSCSI/ext4/Btrfs journals; software
 * table-driven implementation.
 */
std::uint32_t crc32c(const std::uint8_t *data, std::size_t len,
                     std::uint32_t seed = 0);

/** What a durable-log frame carries. */
enum class FrameKind : std::uint32_t
{
    epochBegin = 0, //!< a controller incarnation armed monitoring
    sample = 1,     //!< one drained Sample

    /**
     * The sampling period changed (adaptive governor).  The frame
     * reuses the sample payload slots: counts[0] = old period,
     * counts[1] = new period, numEvents = 0.  Journaled in the same
     * syscall as the SET_PERIOD ioctl so recovery can re-space a
     * series whose period varied mid-run.
     */
    rateChange = 2,
};

/**
 * The append-only log.  The "medium" is an in-memory byte vector;
 * the harness hands it (possibly corrupted by the fault injector)
 * to LogRecovery after the run.
 */
class DurableLog
{
  public:
    static constexpr std::size_t headerSize = 32;
    static constexpr std::size_t frameSize = 96;
    static constexpr std::uint32_t logMagic = 0x31474c4b;   // "KLG1"
    static constexpr std::uint32_t frameMagic = 0x314d464b; // "KFM1"
    static constexpr std::uint32_t version = 1;

    DurableLog();

    /**
     * Open a new epoch at simulated time @p now; all samples
     * appended until the next beginEpoch belong to it.
     * @return the epoch id (0-based).
     */
    std::uint32_t beginEpoch(Tick now);

    /** Append one sample frame (an epoch must be open). */
    void append(const Sample &s);

    /**
     * Append a rate-change frame (an epoch must be open): the
     * HRTimer period moved from @p old_period to @p new_period at
     * simulated time @p now.
     */
    void recordRateChange(Tick now, Tick old_period,
                          Tick new_period);

    /** The raw medium: header followed by frames. */
    const std::vector<std::uint8_t> &bytes() const { return bytes_; }

    /** Frames (epoch + sample) the writer has appended. */
    std::uint64_t framesAppended() const { return framesAppended_; }

    /** Epochs opened so far. */
    std::uint32_t epochsOpened() const { return epochsOpened_; }

    /** Sample frames appended so far. */
    std::uint64_t samplesAppended() const { return samplesAppended_; }

    /** Rate-change frames appended so far. */
    std::uint64_t rateChangesAppended() const
    { return rateChangesAppended_; }

  private:
    void writeFrame(FrameKind kind, Tick timestamp, const Sample &s);
    void updateHeader();

    std::vector<std::uint8_t> bytes_;
    std::uint64_t framesAppended_ = 0;
    std::uint32_t epochsOpened_ = 0;
    std::uint64_t samplesAppended_ = 0;
    std::uint64_t rateChangesAppended_ = 0;
};

} // namespace klebsim::kleb

#endif // KLEBSIM_KLEB_DURABLE_LOG_HH
