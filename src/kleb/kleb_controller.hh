/**
 * @file
 * The K-LEB user-space controller process (paper Fig. 1).
 *
 * Responsibilities: configure the module through ioctl, issue the
 * start command, then periodically wake up, drain the kernel sample
 * buffer with read() syscalls, and log the samples (the paper keeps
 * file I/O in user space because kernel code should not write
 * files).  The module wakes it early when the buffer-full safety
 * mechanism engages and when monitoring finishes.
 */

#ifndef KLEBSIM_KLEB_KLEB_CONTROLLER_HH
#define KLEBSIM_KLEB_KLEB_CONTROLLER_HH

#include <functional>
#include <string>
#include <vector>

#include "base/types.hh"
#include "kernel/service.hh"
#include "kleb_config.hh"
#include "kleb_module.hh"
#include "supervisor.hh"

namespace klebsim::kleb
{

class DurableLog;
class RateGovernor;

/**
 * Scripted behaviour of the controller process.
 */
class ControllerBehavior : public kernel::ServiceBehavior
{
  public:
    /**
     * fresh: CONFIG + START a new monitoring run.  reattach: adopt
     * an in-flight run through the ATTACH ioctl (supervisor restart
     * path), falling back to the fresh path if the predecessor died
     * before CONFIG landed.
     */
    enum class Mode
    {
        fresh,
        reattach,
    };
    /** Calibrated costs of the controller's user-space work. */
    struct Tuning
    {
        /** Interval between drain wake-ups. */
        Tick drainInterval = msToTicks(10);

        /** Arg parsing / device open before CONFIG. */
        Tick setupCost = usToTicks(420);

        /** Fixed log-write cost per drain (fopen/fflush/VFS). */
        Tick logBase = usToTicks(57);

        /** Marginal formatting cost per sample logged. */
        Tick logPerSample = usToTicks(1.5);

        /** Controller working-set footprint. */
        std::uint64_t logFootprint = 8 * 1024;

        /** Max samples pulled per read(). */
        std::size_t batchMax = 8192;

        /**
         * First retry backoff after a transient (-EAGAIN) chardev
         * failure; doubles per consecutive failure.
         */
        Tick retryBackoff = usToTicks(50);

        /** Consecutive transient failures tolerated per syscall. */
        int maxRetries = 8;

        /**
         * Fault-injection hook: extra stall added to each drain
         * sleep (a slow/blocked reader).  Null costs nothing.
         */
        std::function<Tick()> drainStallHook;

        /** Device re-open + ATTACH prep (reattach mode setup). */
        Tick attachCost = usToTicks(180);

        /**
         * Fault-injection hook: force the next SET_PERIOD ioctl to
         * fail EAGAIN before it reaches the module (plan key
         * module.set_period).  Null costs nothing.
         */
        std::function<bool()> setPeriodFaultHook;

        /**
         * Fault-injection hook: observes each commitment to a
         * period reprogram, before the SET_PERIOD syscall issues
         * (plan key reprogram.crash schedules a kill through it).
         * Null costs nothing.
         */
        std::function<void(kernel::Kernel &, kernel::Process &)>
            reprogramHook;
    };

    /**
     * @param module the loaded K-LEB module
     * @param dev_path the module's device path
     * @param cfg configuration to send
     * @param on_started called right after the START ioctl succeeds
     *        (the harness uses it to launch the monitored process)
     */
    ControllerBehavior(KLebModule *module, std::string dev_path,
                       KLebConfig cfg,
                       std::function<void()> on_started);
    ControllerBehavior(KLebModule *module, std::string dev_path,
                       KLebConfig cfg,
                       std::function<void()> on_started,
                       Tuning tuning);
    ControllerBehavior(KLebModule *module, std::string dev_path,
                       KLebConfig cfg,
                       std::function<void()> on_started,
                       Tuning tuning, Mode mode);

    kernel::ServiceOp nextOp(kernel::Kernel &kernel,
                             kernel::Process &self) override;

    /**
     * Mirror every drained sample into @p log (crash durability);
     * null (the default) keeps the PR 3 behaviour byte-identical.
     */
    void setDurableLog(DurableLog *log) { durableLog_ = log; }

    /** Stamp @p heartbeat on every successful chardev syscall. */
    void setHeartbeat(Heartbeat *heartbeat)
    { heartbeat_ = heartbeat; }

    /**
     * Called once from the abort path; the bool reports whether
     * monitoring had been armed before the abort (the supervisor
     * uses it to count failed re-attaches).
     */
    void setOnAborted(std::function<void(bool armed)> fn)
    { onAborted_ = std::move(fn); }

    /**
     * Drive adaptive sampling: the governor is fed every drain
     * cycle and its proposals are issued as SET_PERIOD ioctls
     * (journaled as rateChange frames when a durable log is
     * attached).  The governor outlives controller incarnations —
     * the session owns it; a re-attaching incarnation re-syncs it
     * to the module's actual period.  Null (the default) keeps the
     * fixed-rate behaviour byte-identical.
     */
    void setGovernor(RateGovernor *governor)
    { governor_ = governor; }

    /** Samples logged so far (the "log file" contents). */
    const std::vector<Sample> &log() const { return log_; }

    /** True once the controller has exited its main loop. */
    bool finished() const { return finished_; }

    /**
     * True if the session was cut short (module unloaded, retries
     * exhausted, or a non-transient chardev error); the log holds
     * whatever was flushed before the failure.
     */
    bool aborted() const { return aborted_; }

    /** Number of drain cycles performed. */
    std::uint64_t drains() const { return drains_; }

    /** Transient-failure retries performed across all syscalls. */
    std::uint64_t retries() const { return retries_; }

    /** The period this incarnation believes the module runs at. */
    Tick currentPeriod() const { return currentPeriod_; }

    /** SET_PERIOD ioctls this incarnation landed. */
    std::uint64_t periodChanges() const { return periodChanges_; }

  private:
    enum class State
    {
        setup,
        configure,
        start,
        attach,
        sleep,
        drain,
        logWrite,
        setPeriod,
        finalStatus,
        abortFlush,
        done,
    };

    /** @{ Chardev access with unload/fault awareness. */
    long doIoctl(kernel::Kernel &kernel, kernel::Process &self,
                 std::uint32_t cmd, void *arg);
    long doRead(kernel::Kernel &kernel, kernel::Process &self,
                void *buf, std::size_t len);
    /** @} */

    /**
     * Common syscall-outcome handling: returns true when @p rc is
     * success; otherwise arranges a backed-off retry of
     * @p retry_state (transient failure with attempts left) or an
     * abort (unload / retries exhausted), and returns false.
     * Unexpected error codes are fatal, as before.
     */
    bool handleRc(long rc, State retry_state, const char *what);

    /** Heartbeat + durable-log bookkeeping on a syscall success. */
    void onSyscallOk(kernel::Kernel &kernel);

    /** Arm bookkeeping shared by START and ATTACH success. */
    void armed(kernel::Kernel &kernel);

    KLebModule *module_;
    std::string devPath_;
    KLebConfig cfg_;
    std::function<void()> onStarted_;
    Tuning tuning_;
    Mode mode_ = Mode::fresh;
    DurableLog *durableLog_ = nullptr;
    Heartbeat *heartbeat_ = nullptr;
    RateGovernor *governor_ = nullptr;
    std::function<void(bool)> onAborted_;

    State state_ = State::setup;
    std::vector<Sample> log_;
    std::size_t lastDrained_ = 0;
    bool moduleFinished_ = false;
    bool finished_ = false;
    bool aborted_ = false;
    bool started_ = false;
    std::uint64_t drains_ = 0;

    /** Retry machinery for transient chardev failures. */
    int attempts_ = 0;
    std::uint64_t retries_ = 0;
    Tick retrySleep_ = 0;
    bool retryPending_ = false;

    /** Adaptive sampling (only live when a governor is set). */
    Tick currentPeriod_ = 0;
    Tick pendingPeriod_ = 0; //!< nonzero = SET_PERIOD in flight
    std::uint64_t periodChanges_ = 0;
};

} // namespace klebsim::kleb

#endif // KLEBSIM_KLEB_KLEB_CONTROLLER_HH
