/**
 * @file
 * The K-LEB user-space controller process (paper Fig. 1).
 *
 * Responsibilities: configure the module through ioctl, issue the
 * start command, then periodically wake up, drain the kernel sample
 * buffer with read() syscalls, and log the samples (the paper keeps
 * file I/O in user space because kernel code should not write
 * files).  The module wakes it early when the buffer-full safety
 * mechanism engages and when monitoring finishes.
 */

#ifndef KLEBSIM_KLEB_KLEB_CONTROLLER_HH
#define KLEBSIM_KLEB_KLEB_CONTROLLER_HH

#include <functional>
#include <string>
#include <vector>

#include "base/types.hh"
#include "kernel/service.hh"
#include "kleb_config.hh"
#include "kleb_module.hh"

namespace klebsim::kleb
{

/**
 * Scripted behaviour of the controller process.
 */
class ControllerBehavior : public kernel::ServiceBehavior
{
  public:
    /** Calibrated costs of the controller's user-space work. */
    struct Tuning
    {
        /** Interval between drain wake-ups. */
        Tick drainInterval = msToTicks(10);

        /** Arg parsing / device open before CONFIG. */
        Tick setupCost = usToTicks(420);

        /** Fixed log-write cost per drain (fopen/fflush/VFS). */
        Tick logBase = usToTicks(57);

        /** Marginal formatting cost per sample logged. */
        Tick logPerSample = usToTicks(1.5);

        /** Controller working-set footprint. */
        std::uint64_t logFootprint = 8 * 1024;

        /** Max samples pulled per read(). */
        std::size_t batchMax = 8192;
    };

    /**
     * @param module the loaded K-LEB module
     * @param dev_path the module's device path
     * @param cfg configuration to send
     * @param on_started called right after the START ioctl succeeds
     *        (the harness uses it to launch the monitored process)
     */
    ControllerBehavior(KLebModule *module, std::string dev_path,
                       KLebConfig cfg,
                       std::function<void()> on_started);
    ControllerBehavior(KLebModule *module, std::string dev_path,
                       KLebConfig cfg,
                       std::function<void()> on_started,
                       Tuning tuning);

    kernel::ServiceOp nextOp(kernel::Kernel &kernel,
                             kernel::Process &self) override;

    /** Samples logged so far (the "log file" contents). */
    const std::vector<Sample> &log() const { return log_; }

    /** True once the controller has exited its main loop. */
    bool finished() const { return finished_; }

    /** Number of drain cycles performed. */
    std::uint64_t drains() const { return drains_; }

  private:
    enum class State
    {
        setup,
        configure,
        start,
        sleep,
        drain,
        logWrite,
        finalStatus,
        done,
    };

    KLebModule *module_;
    std::string devPath_;
    KLebConfig cfg_;
    std::function<void()> onStarted_;
    Tuning tuning_;

    State state_ = State::setup;
    std::vector<Sample> log_;
    std::size_t lastDrained_ = 0;
    bool moduleFinished_ = false;
    bool finished_ = false;
    std::uint64_t drains_ = 0;
};

} // namespace klebsim::kleb

#endif // KLEBSIM_KLEB_KLEB_CONTROLLER_HH
