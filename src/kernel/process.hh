/**
 * @file
 * The simulated kernel's process model.
 *
 * K-LEB traces the monitored application through PIDs, parent PIDs,
 * names and states (paper section III), so processes here carry all
 * of that.  A process is either a workload process (driven by a
 * WorkSource through the CPU's chunk engine) or a service process
 * (driven by a scripted ServiceBehavior).
 */

#ifndef KLEBSIM_KERNEL_PROCESS_HH
#define KLEBSIM_KERNEL_PROCESS_HH

#include <memory>
#include <string>
#include <vector>

#include "base/types.hh"
#include "hw/exec_context.hh"
#include "service.hh"

namespace klebsim::sim
{
class Event;
}

namespace klebsim::kernel
{

/** Scheduler-visible process states. */
enum class ProcState
{
    created,  //!< exists, not yet started
    ready,    //!< on a run queue
    running,  //!< current on some core
    sleeping, //!< timed sleep
    blocked,  //!< parked on a wait channel
    zombie,   //!< exited
};

/** Human-readable state name. */
const char *procStateName(ProcState s);

/**
 * One process.  Created and owned by the Kernel.
 */
class Process
{
  public:
    Process(Pid pid, Pid ppid, std::string name, CoreId affinity);

    Pid pid() const { return pid_; }
    Pid ppid() const { return ppid_; }
    const std::string &name() const { return name_; }
    ProcState state() const { return state_; }
    CoreId affinity() const { return affinity_; }

    /** True for WorkSource-driven processes. */
    bool isWorkload() const { return ctx_ != nullptr; }

    /** Execution context (null for service processes). */
    hw::ExecContext *execContext() { return ctx_.get(); }
    const hw::ExecContext *execContext() const { return ctx_.get(); }

    /** Scripted behaviour (null for workload processes). */
    ServiceBehavior *behavior() { return behavior_; }

    /** Tick the process was started at. */
    Tick startTick() const { return startTick_; }

    /** Tick the process exited at (valid once zombie). */
    Tick exitTick() const { return exitTick_; }

    /**
     * True when the process was terminated by Kernel::kill rather
     * than exiting on its own — the distinction a supervisor needs
     * to tell a crash from a clean finish.
     */
    bool wasKilled() const { return killed_; }

    /** Wall-clock lifetime (valid once zombie). */
    Tick
    lifetime() const
    {
        return exitTick_ - startTick_;
    }

    /** Child PIDs, in creation order. */
    const std::vector<Pid> &children() const { return children_; }

  private:
    friend class Kernel;

    Pid pid_;
    Pid ppid_;
    std::string name_;
    CoreId affinity_;
    ProcState state_ = ProcState::created;

    std::unique_ptr<hw::ExecContext> ctx_;
    ServiceBehavior *behavior_ = nullptr;
    bool behaviorStarted_ = false;

    Tick startTick_ = 0;
    Tick exitTick_ = 0;
    bool killed_ = false;

    /** Pending sleep/continuation event (queue-owned lambda). */
    sim::Event *pendingEvent_ = nullptr;

    /** Channel this process is parked on (blocked state only). */
    WaitChannel *blockedOn_ = nullptr;

    std::vector<Pid> children_;
};

} // namespace klebsim::kernel

#endif // KLEBSIM_KERNEL_PROCESS_HH
