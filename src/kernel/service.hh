/**
 * @file
 * Scripted behaviour for "service" processes: user-space programs
 * whose actions we model as a sequence of operations rather than as
 * a WorkSource instruction stream.  The K-LEB controller, the perf
 * user-space half, and the PAPI-instrumented program wrappers are
 * all ServiceBehaviors.
 */

#ifndef KLEBSIM_KERNEL_SERVICE_HH
#define KLEBSIM_KERNEL_SERVICE_HH

#include <functional>
#include <vector>

#include "base/types.hh"

namespace klebsim::kernel
{

class Kernel;
class Process;

/** Processes parked waiting for a condition. */
struct WaitChannel
{
    std::vector<Process *> waiters;
};

/**
 * One scripted operation.  Behaviours yield these one at a time from
 * nextOp(); the kernel executes them, charging the owning core.
 */
struct ServiceOp
{
    enum class Type
    {
        compute, //!< user-mode CPU work for `duration`
        syscall, //!< kernel entry: default cost + `duration` body + fn
        sleep,   //!< block for `duration`
        block,   //!< park on `channel` until woken
        exit,    //!< terminate the process
    };

    Type type = Type::exit;

    /** compute: CPU time; syscall: extra body cost; sleep: delay. */
    Tick duration = 0;

    /** Bytes of cache-footprint the op touches (compute/syscall). */
    std::uint64_t footprintBytes = 0;

    /** Base address of the footprint (0 = kernel scratch). */
    Addr footprintBase = 0;

    /** Kernel-side body invoked inside a syscall op. */
    std::function<void(Kernel &, Process &)> fn;

    /** Channel to park on for block ops. */
    WaitChannel *channel = nullptr;

    /** @{ Constructors for each op flavour. */
    static ServiceOp
    makeCompute(Tick duration, std::uint64_t footprint = 0,
                Addr base = 0)
    {
        ServiceOp op;
        op.type = Type::compute;
        op.duration = duration;
        op.footprintBytes = footprint;
        op.footprintBase = base;
        return op;
    }

    static ServiceOp
    makeSyscall(std::function<void(Kernel &, Process &)> fn = {},
                Tick extra = 0, std::uint64_t footprint = 0)
    {
        ServiceOp op;
        op.type = Type::syscall;
        op.duration = extra;
        op.footprintBytes = footprint;
        op.fn = std::move(fn);
        return op;
    }

    static ServiceOp
    makeSleep(Tick duration)
    {
        ServiceOp op;
        op.type = Type::sleep;
        op.duration = duration;
        return op;
    }

    static ServiceOp
    makeBlock(WaitChannel *channel)
    {
        ServiceOp op;
        op.type = Type::block;
        op.channel = channel;
        return op;
    }

    static ServiceOp
    makeExit()
    {
        return ServiceOp{};
    }
    /** @} */
};

/**
 * A service process's program: the kernel pulls ops one at a time
 * whenever the process is runnable.
 */
class ServiceBehavior
{
  public:
    virtual ~ServiceBehavior() = default;

    /** Called once when the process first runs. */
    virtual void onStart(Kernel &kernel, Process &self)
    {
        (void)kernel;
        (void)self;
    }

    /** Produce the next operation to execute. */
    virtual ServiceOp nextOp(Kernel &kernel, Process &self) = 0;
};

} // namespace klebsim::kernel

#endif // KLEBSIM_KERNEL_SERVICE_HH
