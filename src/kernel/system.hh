/**
 * @file
 * The simulated machine: event queue + cores + shared LLC + kernel,
 * wired together.  This is the top-level object experiments build.
 */

#ifndef KLEBSIM_KERNEL_SYSTEM_HH
#define KLEBSIM_KERNEL_SYSTEM_HH

#include <memory>
#include <vector>

#include "base/random.hh"
#include "hw/cache.hh"
#include "hw/cpu_core.hh"
#include "hw/machine_config.hh"
#include "kernel.hh"
#include "sim/event_queue.hh"

namespace klebsim::kernel
{

/**
 * One complete machine instance.
 */
class System
{
  public:
    /**
     * @param cfg machine geometry (defaults to the paper's i7-920)
     * @param seed master seed; every stochastic stream forks from it
     * @param costs kernel unit costs
     */
    explicit System(
        hw::MachineConfig cfg = hw::MachineConfig::corei7_920(),
        std::uint64_t seed = 1, CostModel costs = CostModel{});

    sim::EventQueue &eq() { return eq_; }
    Kernel &kernel() { return *kernel_; }
    hw::CpuCore &core(CoreId id);
    hw::Cache &llc() { return llc_; }
    const hw::MachineConfig &config() const { return cfg_; }
    Tick now() const { return eq_.curTick(); }

    /** Fork an independent random stream (workload seeding). */
    Random forkRng(std::uint64_t salt) { return rng_.fork(salt); }

    /**
     * Run the simulation until the event queue drains or @p limit
     * is reached.
     * @return the tick the run stopped at.
     */
    Tick run(Tick limit = maxTick);

  private:
    hw::MachineConfig cfg_;
    sim::EventQueue eq_;
    Random rng_;
    hw::Cache llc_;
    std::vector<std::unique_ptr<hw::CpuCore>> cores_;
    std::unique_ptr<Kernel> kernel_;
};

} // namespace klebsim::kernel

#endif // KLEBSIM_KERNEL_SYSTEM_HH
