#include "kernel.hh"

#include <algorithm>

#include "base/logging.hh"

namespace klebsim::kernel
{

namespace
{

/** Cache footprint of the scheduler's own switch path. */
constexpr std::uint64_t switchFootprint = 4096;

/** Cache footprint of a generic syscall body. */
constexpr std::uint64_t syscallFootprint = 2048;

} // anonymous namespace

Kernel::Kernel(sim::EventQueue &eq, std::vector<hw::CpuCore *> cores,
               CostModel costs, Random rng)
    : eq_(eq), cores_(std::move(cores)), costs_(costs), rng_(rng)
{
    fatal_if(cores_.empty(), "kernel needs at least one core");
    coreState_.resize(cores_.size());
    // One systemic cost factor per boot (see CostModel::runSigma).
    if (costs_.runSigma > 0.0) {
        double f = 1.0 + rng_.gaussian(0.0, costs_.runSigma);
        runFactor_ = std::clamp(f, 0.7, 1.3);
    }
}

Kernel::~Kernel() = default;

hw::CpuCore &
Kernel::core(CoreId id)
{
    panic_if(id < 0 || static_cast<std::size_t>(id) >= cores_.size(),
             "bad core id ", id);
    return *cores_[id];
}

hw::CpuCore &
Kernel::coreOf(const Process &proc)
{
    return core(proc.affinity());
}

Process *
Kernel::running(CoreId core_id)
{
    panic_if(core_id < 0 ||
                 static_cast<std::size_t>(core_id) >=
                     coreState_.size(),
             "bad core id ", core_id);
    return coreState_[core_id].current;
}

Process *
Kernel::allocProcess(const std::string &name, CoreId affinity,
                     Pid ppid)
{
    fatal_if(affinity < 0 ||
                 static_cast<std::size_t>(affinity) >= cores_.size(),
             "process '", name, "': bad affinity core ", affinity);
    Pid pid = nextPid_++;
    auto proc = std::make_unique<Process>(pid, ppid, name, affinity);
    Process *raw = proc.get();
    processes_.push_back(std::move(proc));
    pidMap_[pid] = raw;
    if (Process *parent = findProcess(ppid))
        parent->children_.push_back(pid);
    return raw;
}

Process *
Kernel::createWorkload(const std::string &name,
                       hw::WorkSource *source, CoreId affinity,
                       Pid ppid)
{
    Process *proc = allocProcess(name, affinity, ppid);
    proc->ctx_ = std::make_unique<hw::ExecContext>(source);
    return proc;
}

Process *
Kernel::createService(const std::string &name,
                      ServiceBehavior *behavior, CoreId affinity,
                      Pid ppid)
{
    panic_if(behavior == nullptr, "service '", name,
             "' needs a behavior");
    Process *proc = allocProcess(name, affinity, ppid);
    proc->behavior_ = behavior;
    return proc;
}

Process *
Kernel::findProcess(Pid pid)
{
    auto it = pidMap_.find(pid);
    return it == pidMap_.end() ? nullptr : it->second;
}

bool
Kernel::isDescendantOf(Pid pid, Pid ancestor)
{
    while (pid > 0) {
        if (pid == ancestor)
            return true;
        Process *proc = findProcess(pid);
        if (!proc)
            return false;
        pid = proc->ppid();
    }
    return false;
}

void
Kernel::onExit(Pid pid, std::function<void()> fn)
{
    Process *proc = findProcess(pid);
    if (proc && proc->state() == ProcState::zombie) {
        fn();
        return;
    }
    exitWaiters_.emplace(pid, std::move(fn));
}

void
Kernel::enqueue(Process *proc, bool front)
{
    auto &rq = coreState_[redirectIfOffline(proc)].runQueue;
    if (front)
        rq.push_front(proc);
    else
        rq.push_back(proc);
}

CoreId
Kernel::redirectIfOffline(Process *proc)
{
    CoreId home = proc->affinity();
    if (coreState_[home].online)
        return home;
    CoreId to = fallbackCore(home);
    for (auto &[id, hook] : migrateHooks_)
        hook(*proc, home, to);
    proc->affinity_ = to;
    ++migrations_;
    return to;
}

CoreId
Kernel::deliveryCore(CoreId core_id) const
{
    return coreState_[core_id].online ? core_id
                                      : fallbackCore(core_id);
}

void
Kernel::fireCpuHooks(CoreId core_id, CpuEvent event)
{
    for (auto &[id, hook] : cpuHooks_)
        hook(core_id, event);
}

void
Kernel::startProcess(Process *proc)
{
    panic_if(proc->state() != ProcState::created,
             "startProcess on ", procStateName(proc->state()),
             " process '", proc->name(), "'");
    setState(proc, ProcState::ready);
    proc->startTick_ = now();
    enqueue(proc, false);
    if (coreState_[proc->affinity()].current == nullptr)
        dispatch(proc->affinity());
}

void
Kernel::cancelEnd(CoreId core_id)
{
    CoreState &cs = coreState_[core_id];
    if (cs.endEvent) {
        eq_.cancelLambda(cs.endEvent);
        cs.endEvent = nullptr;
    }
    cs.endKind = CoreState::EndKind::none;
}

void
Kernel::performSwitch(CoreId core_id, Process *prev, Process *next)
{
    hw::CpuCore &c = core(core_id);
    c.syncTo(now());
    for (auto &[id, hook] : switchHooks_)
        hook(prev, next, core_id);
    if (prev == nullptr && next == nullptr)
        return;
    ++ctxSwitches_;
    c.countEvent(hw::HwEvent::ctxSwitches, 1, hw::PrivLevel::kernel);
    Tick cost = costs_.contextSwitch +
                costs_.kprobe * static_cast<Tick>(
                                    switchHooks_.size());
    hw::ChargeSpec spec;
    spec.duration = drawCost(cost);
    spec.priv = hw::PrivLevel::kernel;
    spec.footprintBytes = switchFootprint;
    c.charge(spec);
}

void
Kernel::runOn(CoreId core_id, Process *next)
{
    CoreState &cs = coreState_[core_id];
    panic_if(cs.current != nullptr, "runOn with busy core ", core_id);
    hw::CpuCore &c = core(core_id);

    setState(next, ProcState::running);
    cs.current = next;

    if (next->isWorkload()) {
        c.attachContext(next->execContext());
        hw::PrepareResult res = c.prepare(costs_.timeslice);
        cs.endKind = CoreState::EndKind::slice;
        cs.endTick = c.attributedUpTo() + res.available;
        cs.completesAtEnd = res.completes;
        cs.endEvent = eq_.scheduleLambda(
            cs.endTick, [this, core_id] { onSliceEnd(core_id); },
            sim::Event::schedulerPriority, "slice-end");
        return;
    }

    if (!next->behaviorStarted_) {
        next->behaviorStarted_ = true;
        next->behavior()->onStart(*this, *next);
    }
    runNextOp(next);
}

void
Kernel::dispatch(CoreId core_id)
{
    CoreState &cs = coreState_[core_id];
    if (!cs.online || cs.current != nullptr || cs.runQueue.empty())
        return;
    Process *next = cs.runQueue.front();
    cs.runQueue.pop_front();
    performSwitch(core_id, nullptr, next);
    runOn(core_id, next);
}

void
Kernel::suspendCurrent(CoreId core_id, ProcState new_state)
{
    CoreState &cs = coreState_[core_id];
    Process *proc = cs.current;
    panic_if(proc == nullptr, "suspend on idle core ", core_id);
    cancelEnd(core_id);
    hw::CpuCore &c = core(core_id);
    c.syncTo(now());
    if (proc->isWorkload())
        c.detachContext();
    setState(proc, new_state);
    cs.current = nullptr;
}

void
Kernel::onSliceEnd(CoreId core_id)
{
    CoreState &cs = coreState_[core_id];
    cs.endEvent = nullptr;
    cs.endKind = CoreState::EndKind::none;
    Process *proc = cs.current;
    panic_if(proc == nullptr || !proc->isWorkload(),
             "slice end without a running workload");
    hw::CpuCore &c = core(core_id);
    c.syncTo(now());

    if (cs.completesAtEnd && proc->execContext()->exhausted()) {
        processExit(proc);
        return;
    }

    if (cs.runQueue.empty()) {
        // Sole runnable process: extend in place, no switch cost.
        hw::PrepareResult res = c.prepare(costs_.timeslice);
        if (res.available == 0) {
            processExit(proc);
            return;
        }
        cs.endKind = CoreState::EndKind::slice;
        cs.endTick = c.attributedUpTo() + res.available;
        cs.completesAtEnd = res.completes;
        cs.endEvent = eq_.scheduleLambda(
            cs.endTick, [this, core_id] { onSliceEnd(core_id); },
            sim::Event::schedulerPriority, "slice-end");
        return;
    }

    Process *next = cs.runQueue.front();
    cs.runQueue.pop_front();
    c.detachContext();
    setState(proc, ProcState::ready);
    cs.current = nullptr;
    enqueue(proc, false);
    performSwitch(core_id, proc, next);
    runOn(core_id, next);
}

void
Kernel::scheduleServiceContinuation(Process *proc)
{
    CoreId core_id = proc->affinity();
    CoreState &cs = coreState_[core_id];
    cs.endKind = CoreState::EndKind::serviceOp;
    cs.endTick = core(core_id).attributedUpTo();
    cs.endEvent = eq_.scheduleLambda(
        cs.endTick,
        [this, proc, core_id] {
            CoreState &s = coreState_[core_id];
            s.endEvent = nullptr;
            s.endKind = CoreState::EndKind::none;
            runNextOp(proc);
        },
        sim::Event::schedulerPriority, "service-op-done");
}

void
Kernel::runNextOp(Process *proc)
{
    CoreId core_id = proc->affinity();
    CoreState &cs = coreState_[core_id];
    panic_if(cs.current != proc, "runNextOp for non-current process");
    hw::CpuCore &c = core(core_id);

    ServiceOp op = proc->behavior()->nextOp(*this, *proc);
    switch (op.type) {
      case ServiceOp::Type::compute: {
        hw::ChargeSpec spec;
        spec.duration = drawCost(op.duration);
        spec.priv = hw::PrivLevel::user;
        spec.footprintBytes = op.footprintBytes;
        spec.footprintBase = op.footprintBase;
        c.charge(spec);
        scheduleServiceContinuation(proc);
        return;
      }
      case ServiceOp::Type::syscall: {
        hw::ChargeSpec spec;
        spec.duration =
            drawCost(costs_.syscall + op.duration);
        spec.priv = hw::PrivLevel::kernel;
        spec.footprintBytes =
            std::max<std::uint64_t>(op.footprintBytes,
                                    syscallFootprint);
        c.charge(spec);
        if (op.fn)
            op.fn(*this, *proc);
        scheduleServiceContinuation(proc);
        return;
      }
      case ServiceOp::Type::sleep: {
        suspendCurrent(core_id, ProcState::sleeping);
        proc->pendingEvent_ = eq_.scheduleLambda(
            now() + op.duration,
            [this, proc] {
                proc->pendingEvent_ = nullptr;
                wake(proc);
            },
            sim::Event::defaultPriority, "sleep-wake");
        dispatch(core_id);
        return;
      }
      case ServiceOp::Type::block: {
        panic_if(op.channel == nullptr, "block op without channel");
        suspendCurrent(core_id, ProcState::blocked);
        proc->blockedOn_ = op.channel;
        op.channel->waiters.push_back(proc);
        dispatch(core_id);
        return;
      }
      case ServiceOp::Type::exit:
        processExit(proc);
        return;
    }
}

void
Kernel::processExit(Process *proc)
{
    CoreId core_id = proc->affinity();
    CoreState &cs = coreState_[core_id];
    panic_if(cs.current != proc,
             "processExit for non-running process '", proc->name(),
             "'");
    cancelEnd(core_id);
    hw::CpuCore &c = core(core_id);
    c.syncTo(now());
    if (proc->isWorkload())
        c.detachContext();
    setState(proc, ProcState::zombie);
    proc->exitTick_ = now();
    cs.current = nullptr;

    for (auto &[id, hook] : exitHooks_)
        hook(*proc);

    // The scheduler switches away from the dead task; the switch
    // tracepoint fires with prev = the dead process.
    Process *next = nullptr;
    if (!cs.runQueue.empty()) {
        next = cs.runQueue.front();
        cs.runQueue.pop_front();
    }
    performSwitch(core_id, proc, next);

    auto range = exitWaiters_.equal_range(proc->pid());
    std::vector<std::function<void()>> fns;
    for (auto it = range.first; it != range.second; ++it)
        fns.push_back(std::move(it->second));
    exitWaiters_.erase(range.first, range.second);
    for (auto &fn : fns)
        fn();

    if (next != nullptr)
        runOn(core_id, next);
    else
        dispatch(core_id); // a waiter may have readied something
}

void
Kernel::kill(Process *proc)
{
    switch (proc->state()) {
      case ProcState::zombie:
        return;
      case ProcState::running:
        proc->killed_ = true;
        processExit(proc);
        return;
      case ProcState::ready: {
        auto &rq = coreState_[proc->affinity()].runQueue;
        rq.erase(std::remove(rq.begin(), rq.end(), proc), rq.end());
        break;
      }
      case ProcState::sleeping:
        if (proc->pendingEvent_) {
            eq_.cancelLambda(proc->pendingEvent_);
            proc->pendingEvent_ = nullptr;
        }
        break;
      case ProcState::blocked: {
        auto &ws = proc->blockedOn_->waiters;
        ws.erase(std::remove(ws.begin(), ws.end(), proc), ws.end());
        proc->blockedOn_ = nullptr;
        break;
      }
      case ProcState::created:
        break;
    }
    proc->killed_ = true;
    setState(proc, ProcState::zombie);
    proc->exitTick_ = now();
    for (auto &[id, hook] : exitHooks_)
        hook(*proc);
    auto range = exitWaiters_.equal_range(proc->pid());
    std::vector<std::function<void()>> fns;
    for (auto it = range.first; it != range.second; ++it)
        fns.push_back(std::move(it->second));
    exitWaiters_.erase(range.first, range.second);
    for (auto &fn : fns)
        fn();
}

void
Kernel::wake(Process *proc)
{
    if (proc->state() != ProcState::sleeping &&
        proc->state() != ProcState::blocked)
        return;
    // Early wake from a timed sleep: cancel the pending alarm so it
    // cannot fire into a later sleep cycle.
    if (proc->state() == ProcState::sleeping && proc->pendingEvent_) {
        eq_.cancelLambda(proc->pendingEvent_);
        proc->pendingEvent_ = nullptr;
    }
    setState(proc, ProcState::ready);
    proc->blockedOn_ = nullptr;

    CoreId core_id = redirectIfOffline(proc);
    CoreState &cs = coreState_[core_id];

    bool preempt = costs_.wakeupPreempts && cs.current != nullptr &&
                   cs.current->isWorkload() &&
                   cs.endKind == CoreState::EndKind::slice;
    enqueue(proc, preempt);
    if (preempt)
        cs.needResched = true;
    scheduleResched(core_id);
}

void
Kernel::scheduleResched(CoreId core_id)
{
    CoreState &cs = coreState_[core_id];
    if (cs.reschedPending)
        return;
    cs.reschedPending = true;
    eq_.scheduleLambda(
        now(),
        [this, core_id] {
            coreState_[core_id].reschedPending = false;
            doResched(core_id);
        },
        sim::Event::schedulerPriority + 1, "resched");
}

void
Kernel::doResched(CoreId core_id)
{
    CoreState &cs = coreState_[core_id];
    if (cs.current == nullptr) {
        dispatch(core_id);
        return;
    }
    if (!cs.needResched)
        return;
    cs.needResched = false;
    if (!cs.current->isWorkload() ||
        cs.endKind != CoreState::EndKind::slice ||
        cs.runQueue.empty())
        return;

    Process *prev = cs.current;
    Process *next = cs.runQueue.front();
    cs.runQueue.pop_front();
    cancelEnd(core_id);
    hw::CpuCore &c = core(core_id);
    c.syncTo(now());
    c.detachContext();
    setState(prev, ProcState::ready);
    cs.current = nullptr;
    enqueue(prev, true); // resumes right after the waker sleeps
    performSwitch(core_id, prev, next);
    runOn(core_id, next);
}

void
Kernel::wakeAll(WaitChannel &channel)
{
    std::vector<Process *> waiters;
    waiters.swap(channel.waiters);
    for (Process *proc : waiters)
        wake(proc);
}

int
Kernel::numOnlineCores() const
{
    int n = 0;
    for (const CoreState &cs : coreState_)
        if (cs.online)
            ++n;
    return n;
}

CoreId
Kernel::fallbackCore(CoreId avoid) const
{
    for (std::size_t i = 0; i < coreState_.size(); ++i)
        if (coreState_[i].online && static_cast<CoreId>(i) != avoid)
            return static_cast<CoreId>(i);
    panic("no online core to fall back to");
    return invalidCore;
}

void
Kernel::sendIpi(CoreId core_id)
{
    ++ipis_;
    hw::CpuCore &c = core(core_id);
    c.syncTo(now());
    c.countEvent(hw::HwEvent::hwInterrupts, 1,
                 hw::PrivLevel::kernel);
    Tick before = c.attributedUpTo();
    hw::ChargeSpec spec;
    spec.duration = drawCost(costs_.ipi);
    spec.priv = hw::PrivLevel::kernel;
    c.charge(spec);
    extendPendingEnd(core_id, c.attributedUpTo() - before);
}

void
Kernel::migrate(Process *proc, CoreId to)
{
    panic_if(proc == nullptr, "migrate of null process");
    panic_if(to < 0 ||
                 static_cast<std::size_t>(to) >= coreState_.size(),
             "migrate to bad core ", to);
    panic_if(!coreState_[to].online, "migrate to offline core ", to);
    CoreId from = proc->affinity();
    if (from == to)
        return;

    switch (proc->state()) {
      case ProcState::zombie:
        return;
      case ProcState::created:
      case ProcState::sleeping:
      case ProcState::blocked:
        // Not on any runqueue; it lands on the new core when it
        // next becomes runnable.
        break;
      case ProcState::ready: {
        auto &rq = coreState_[from].runQueue;
        rq.erase(std::remove(rq.begin(), rq.end(), proc), rq.end());
        break;
      }
      case ProcState::running: {
        // Switch the task out on the source core first: the switch
        // tracepoint fires with next == null there, so per-CPU
        // monitors snapshot counters while they are still live.
        CoreState &cs = coreState_[from];
        panic_if(cs.current != proc,
                 "running process not current on its core");
        cancelEnd(from);
        hw::CpuCore &c = core(from);
        c.syncTo(now());
        if (proc->isWorkload())
            c.detachContext();
        setState(proc, ProcState::ready);
        cs.current = nullptr;
        performSwitch(from, proc, nullptr);
        break;
      }
    }

    for (auto &[id, hook] : migrateHooks_)
        hook(*proc, from, to);
    proc->affinity_ = to;
    ++migrations_;

    if (proc->state() == ProcState::ready) {
        coreState_[to].runQueue.push_back(proc);
        sendIpi(to);
        scheduleResched(to);
    }
    if (proc->state() == ProcState::ready &&
        coreState_[from].online)
        scheduleResched(from);
}

bool
Kernel::offlineCore(CoreId core_id)
{
    panic_if(core_id < 0 ||
                 static_cast<std::size_t>(core_id) >=
                     coreState_.size(),
             "offline of bad core ", core_id);
    CoreState &cs = coreState_[core_id];
    if (!cs.online)
        return true;
    if (numOnlineCores() <= 1)
        return false; // never kill the last core

    // Teardown notifiers run while the core still works: per-CPU
    // users drain rings, journal their coreOffline markers and
    // cancel timers here.
    fireCpuHooks(core_id, CpuEvent::goingOffline);

    // Evacuate: current task first (switch-out fires on this core),
    // then the runqueue, all to the surviving fallback core.
    CoreId target = fallbackCore(core_id);
    if (cs.current != nullptr)
        migrate(cs.current, target);
    while (!cs.runQueue.empty())
        migrate(cs.runQueue.front(), target);

    cs.online = false;
    cs.needResched = false;
    ++coreOfflines_;
    fireCpuHooks(core_id, CpuEvent::offline);
    return true;
}

void
Kernel::onlineCore(CoreId core_id)
{
    panic_if(core_id < 0 ||
                 static_cast<std::size_t>(core_id) >=
                     coreState_.size(),
             "online of bad core ", core_id);
    CoreState &cs = coreState_[core_id];
    if (cs.online)
        return;
    cs.online = true;
    ++coreOnlines_;
    fireCpuHooks(core_id, CpuEvent::online);
    scheduleResched(core_id);
}

int
Kernel::registerSwitchHook(SwitchHook hook)
{
    int id = nextHookId_++;
    switchHooks_[id] = std::move(hook);
    return id;
}

void
Kernel::unregisterSwitchHook(int id)
{
    switchHooks_.erase(id);
}

int
Kernel::registerExitHook(ExitHook hook)
{
    int id = nextHookId_++;
    exitHooks_[id] = std::move(hook);
    return id;
}

void
Kernel::unregisterExitHook(int id)
{
    exitHooks_.erase(id);
}

int
Kernel::registerStateHook(StateHook hook)
{
    int id = nextHookId_++;
    stateHooks_[id] = std::move(hook);
    return id;
}

void
Kernel::unregisterStateHook(int id)
{
    stateHooks_.erase(id);
}

int
Kernel::registerModuleHook(ModuleHook hook)
{
    int id = nextHookId_++;
    moduleHooks_[id] = std::move(hook);
    return id;
}

void
Kernel::unregisterModuleHook(int id)
{
    moduleHooks_.erase(id);
}

int
Kernel::registerCpuHook(CpuHook hook)
{
    int id = nextHookId_++;
    cpuHooks_[id] = std::move(hook);
    return id;
}

void
Kernel::unregisterCpuHook(int id)
{
    cpuHooks_.erase(id);
}

int
Kernel::registerMigrateHook(MigrateHook hook)
{
    int id = nextHookId_++;
    migrateHooks_[id] = std::move(hook);
    return id;
}

void
Kernel::unregisterMigrateHook(int id)
{
    migrateHooks_.erase(id);
}

void
Kernel::setState(Process *proc, ProcState to)
{
    ProcState from = proc->state_;
    proc->state_ = to;
    for (auto &[id, hook] : stateHooks_)
        hook(*proc, from, to);
}

void
Kernel::installModule(std::unique_ptr<KernelModule> module,
                      const std::string &dev_path)
{
    fatal_if(modules_.count(dev_path),
             "device path already bound: " + dev_path);
    KernelModule *raw = module.get();
    modules_[dev_path] = std::move(module);
    raw->init(*this);
    for (auto &[id, hook] : moduleHooks_)
        hook(*raw, dev_path, true);
}

void
Kernel::loadModule(std::unique_ptr<KernelModule> module,
                   const std::string &dev_path)
{
    installModule(std::move(module), dev_path);
}

bool
Kernel::tryLoadModule(std::unique_ptr<KernelModule> module,
                      const std::string &dev_path)
{
    if (moduleLoadFault_ && moduleLoadFault_(dev_path))
        return false;
    installModule(std::move(module), dev_path);
    return true;
}

void
Kernel::unloadModule(const std::string &dev_path)
{
    auto it = modules_.find(dev_path);
    fatal_if(it == modules_.end(),
             "no module at device path: " + dev_path);
    it->second->exitModule(*this);
    for (auto &[id, hook] : moduleHooks_)
        hook(*it->second, dev_path, false);
    modules_.erase(it);
}

KernelModule *
Kernel::moduleAt(const std::string &dev_path)
{
    auto it = modules_.find(dev_path);
    return it == modules_.end() ? nullptr : it->second.get();
}

long
Kernel::ioctl(Process &caller, const std::string &dev_path,
              std::uint32_t cmd, void *arg)
{
    KernelModule *module = moduleAt(dev_path);
    if (!module)
        return -1;
    hw::CpuCore &c = coreOf(caller);
    hw::ChargeSpec spec;
    spec.duration = drawCost(costs_.syscall);
    spec.priv = hw::PrivLevel::kernel;
    spec.footprintBytes = syscallFootprint;
    c.charge(spec);
    if (long rc = drawChardevFault(dev_path, false))
        return rc;
    return module->ioctl(*this, caller, cmd, arg);
}

long
Kernel::readDev(Process &caller, const std::string &dev_path,
                void *buf, std::size_t len)
{
    KernelModule *module = moduleAt(dev_path);
    if (!module)
        return -1;
    hw::CpuCore &c = coreOf(caller);
    hw::ChargeSpec spec;
    spec.duration = drawCost(costs_.syscall);
    spec.priv = hw::PrivLevel::kernel;
    spec.footprintBytes = syscallFootprint;
    c.charge(spec);
    if (long rc = drawChardevFault(dev_path, true))
        return rc;
    return module->read(*this, caller, buf, len);
}

void
Kernel::chargeKernelWork(CoreId core_id, Tick cost,
                         std::uint64_t footprint)
{
    hw::ChargeSpec spec;
    spec.duration = drawCost(cost);
    spec.priv = hw::PrivLevel::kernel;
    spec.footprintBytes = footprint;
    core(core_id).charge(spec);
}

void
Kernel::extendPendingEnd(CoreId core_id, Tick delta)
{
    if (delta == 0)
        return;
    CoreState &cs = coreState_[core_id];
    if (cs.endEvent == nullptr)
        return;
    cs.endTick += delta;
    eq_.reschedule(cs.endEvent, cs.endTick);
}

void
Kernel::runInInterrupt(CoreId core_id, Tick cost,
                       std::uint64_t footprint,
                       const std::function<void()> &body)
{
    // Interrupts bound to an offlined core are delivered on the
    // fallback core instead (hrtimer/irq migration semantics).
    core_id = deliveryCore(core_id);
    hw::CpuCore &c = core(core_id);
    c.syncTo(now());
    Tick before = c.attributedUpTo();
    c.countEvent(hw::HwEvent::hwInterrupts, 1,
                 hw::PrivLevel::kernel);
    hw::ChargeSpec spec;
    spec.duration = drawCost(costs_.interruptEntry + cost);
    spec.priv = hw::PrivLevel::kernel;
    spec.footprintBytes = footprint;
    c.charge(spec);
    if (body)
        body();
    Tick delta = c.attributedUpTo() - before;
    extendPendingEnd(core_id, delta);
}

HrTimer *
Kernel::createHrTimer(const std::string &name, CoreId core_id,
                      std::function<void()> handler,
                      Tick handler_cost,
                      std::uint64_t handler_footprint)
{
    auto timer = std::make_unique<HrTimer>(
        name, *this, core_id, std::move(handler), handler_cost,
        handler_footprint);
    HrTimer *raw = timer.get();
    timers_.push_back(std::move(timer));
    if (timerFaultFactory_)
        raw->setFaultHook(timerFaultFactory_(name, core_id));
    return raw;
}

void
Kernel::setTimerFaultFactory(TimerFaultFactory factory)
{
    timerFaultFactory_ = std::move(factory);
    if (!timerFaultFactory_)
        return;
    for (auto &timer : timers_)
        timer->setFaultHook(
            timerFaultFactory_(timer->name(), timer->core()));
}

HrTimer::HrTimer(std::string name, Kernel &kernel, CoreId core,
                 std::function<void()> handler, Tick handler_cost,
                 std::uint64_t handler_footprint)
    : name_(std::move(name)), kernel_(kernel), core_(core),
      handler_(std::move(handler)), handlerCost_(handler_cost),
      handlerFootprint_(handler_footprint),
      device_(name_ + "-dev", kernel.eq(),
              kernel.rng().fork(0x7133 + core))
{
}

void
HrTimer::armNext()
{
    Tick now = kernel_.now();
    Tick delay = nextDeadline_ > now ? nextDeadline_ - now : 1;
    device_.arm(delay, [this] { expire(); });
}

void
HrTimer::startPeriodic(Tick period)
{
    fatal_if(period == 0, "hrtimer '", name_, "': zero period");
    cancel();
    periodic_ = true;
    period_ = period;
    expiries_ = 0;
    nextDeadline_ = kernel_.now() + period;
    armNext();
}

void
HrTimer::startOneShot(Tick delay)
{
    cancel();
    periodic_ = false;
    period_ = 0;
    expiries_ = 0;
    nextDeadline_ = kernel_.now() + delay;
    armNext();
}

void
HrTimer::resume()
{
    fatal_if(!periodic_ || period_ == 0,
             "hrtimer '", name_, "': resume without a period");
    if (device_.armed())
        return;
    Tick now = kernel_.now();
    while (nextDeadline_ <= now)
        nextDeadline_ += period_;
    armNext();
}

void
HrTimer::cancel()
{
    device_.cancel();
}

void
HrTimer::setPeriod(Tick period)
{
    fatal_if(period == 0, "hrtimer '", name_, "': zero period");
    fatal_if(!periodic_,
             "hrtimer '", name_, "': setPeriod on one-shot timer");
    // Deliberately leave nextDeadline_ (and the armed device event)
    // alone: the sample in flight lands at its original deadline,
    // and hrtimer_forward in expire() spaces everything after it at
    // the new period.
    period_ = period;
}

void
HrTimer::expire()
{
    ++expiries_;
    if (periodic_) {
        // hrtimer_forward: the next deadline advances from the
        // previous deadline, not from now, so jitter never drifts.
        nextDeadline_ += period_;
        armNext();
    }
    kernel_.runInInterrupt(core_, handlerCost_, handlerFootprint_,
                           handler_);
}

} // namespace klebsim::kernel
