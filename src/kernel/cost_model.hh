/**
 * @file
 * Unit costs of kernel operations.
 *
 * Every mechanism that differentiates the monitoring tools (syscall
 * round trips, context switches, interrupt handling, kprobe hooks)
 * is priced here, in one place.  Values are calibrated once against
 * the paper's Table II and then held fixed for every experiment;
 * see DESIGN.md section 5.
 */

#ifndef KLEBSIM_KERNEL_COST_MODEL_HH
#define KLEBSIM_KERNEL_COST_MODEL_HH

#include <algorithm>

#include "base/random.hh"
#include "base/types.hh"

namespace klebsim::kernel
{

/** Tunable kernel timing parameters. */
struct CostModel
{
    /** Syscall entry + exit + trivial body. */
    Tick syscall = usToTicks(1.4);

    /** Full context switch (save/restore, runqueue, TLB effects). */
    Tick contextSwitch = usToTicks(2.1);

    /** Interrupt entry + EOI + exit, excluding the handler body. */
    Tick interruptEntry = usToTicks(0.6);

    /** Cost added to a context switch per attached kprobe. */
    Tick kprobe = nsToTicks(300);

    /**
     * Inter-processor interrupt: send + remote entry/EOI.  Charged
     * to the destination core when a migration or hotplug
     * evacuation kicks it.
     */
    Tick ipi = nsToTicks(900);

    /** Round-robin scheduler timeslice. */
    Tick timeslice = msToTicks(4);

    /** Woken processes preempt a running workload process. */
    bool wakeupPreempts = true;

    /**
     * Relative sigma applied to every drawn cost, modeling
     * microarchitectural run-to-run variation.
     */
    double costSigma = 0.08;

    /**
     * Relative sigma of a per-boot systemic factor applied to all
     * kernel/tool costs of one run (frequency scaling, cache/TLB
     * state, interrupt load).  Makes a tool's run-to-run execution
     * time spread proportional to its total interference — the
     * effect behind Fig. 8's box widths.
     */
    double runSigma = 0.04;

    /**
     * Draw an actual cost around @p base.  Clamped to [0.25, 3] x
     * base so a tail draw can never go negative or absurd.
     */
    Tick
    draw(Random &rng, Tick base) const
    {
        if (base == 0)
            return 0;
        if (costSigma <= 0.0)
            return base;
        double factor = 1.0 + rng.gaussian(0.0, costSigma);
        factor = std::clamp(factor, 0.25, 3.0);
        return static_cast<Tick>(static_cast<double>(base) * factor);
    }
};

} // namespace klebsim::kernel

#endif // KLEBSIM_KERNEL_COST_MODEL_HH
