#include "system.hh"

#include "base/thread_safety.hh"

namespace klebsim::kernel
{

System::System(hw::MachineConfig cfg, std::uint64_t seed,
               CostModel costs)
    : cfg_(std::move(cfg)), rng_(seed, 0x5d3),
      llc_("LLC", cfg_.llc, rng_.fork(0x11c))
{
    std::vector<hw::CpuCore *> raw_cores;
    for (int i = 0; i < cfg_.numCores; ++i) {
        cores_.push_back(std::make_unique<hw::CpuCore>(
            i, cfg_, eq_, &llc_, rng_.fork(0xc0de + i)));
        raw_cores.push_back(cores_.back().get());
    }
    kernel_ = std::make_unique<Kernel>(eq_, std::move(raw_cores),
                                       costs, rng_.fork(0xfee1));
}

hw::CpuCore &
System::core(CoreId id)
{
    return kernel_->core(id);
}

Tick
System::run(Tick limit)
{
    // Whole-machine advance is owned by one thread (trials never
    // share a System); mark it so a lockset-checked test catches a
    // System accidentally driven from two workers.
    KLEB_ANNOTATE_ACCESS(this, "kernel.System.run");
    if (limit == maxTick) {
        eq_.runAll();
        return eq_.curTick();
    }
    eq_.runUntil(limit);
    return eq_.curTick();
}

} // namespace klebsim::kernel
