/**
 * @file
 * Loadable kernel-module framework.
 *
 * K-LEB's defining property (paper section III) is that it is a
 * kernel *module*: it installs onto a running kernel, registers a
 * character device, and talks to user space through ioctl/read.
 * This header is the simulated equivalent of that module API.
 */

#ifndef KLEBSIM_KERNEL_MODULE_HH
#define KLEBSIM_KERNEL_MODULE_HH

#include <cstdint>
#include <string>

#include "base/types.hh"

namespace klebsim::kernel
{

class Kernel;
class Process;

/**
 * Errno-style return codes used by module handlers and the chardev
 * syscall layer (negative, Linux convention).
 */
namespace err
{

constexpr long eio = -5;     //!< I/O error (non-transient)
constexpr long enxio = -6;   //!< no such device (module unloaded)
constexpr long eagain = -11; //!< transient failure; retry
constexpr long ebusy = -16;  //!< device busy
constexpr long einval = -22; //!< invalid argument
constexpr long enotty = -25; //!< unknown ioctl command

} // namespace err

/**
 * Base class for loadable modules.  init()/exitModule() mirror
 * module_init/module_exit; the ioctl/read/open/release handlers are
 * the module's file_operations on its character device.
 */
class KernelModule
{
  public:
    virtual ~KernelModule() = default;

    /** Module name (as in lsmod). */
    virtual std::string name() const = 0;

    /** module_init: called at load time. */
    virtual void init(Kernel &kernel) { (void)kernel; }

    /** module_exit: called at unload time. */
    virtual void exitModule(Kernel &kernel) { (void)kernel; }

    /**
     * Handle an ioctl from @p caller.  The kernel has already
     * charged the syscall entry cost; implementations charge any
     * additional work they perform.
     * @return >= 0 on success, negative errno-style code otherwise.
     */
    virtual long
    ioctl(Kernel &kernel, Process &caller, std::uint32_t cmd,
          void *arg)
    {
        (void)kernel;
        (void)caller;
        (void)cmd;
        (void)arg;
        return -1;
    }

    /**
     * Handle a read() on the device.
     * @return bytes "copied to user", or negative on error.
     */
    virtual long
    read(Kernel &kernel, Process &caller, void *buf,
         std::size_t len)
    {
        (void)kernel;
        (void)caller;
        (void)buf;
        (void)len;
        return -1;
    }
};

} // namespace klebsim::kernel

#endif // KLEBSIM_KERNEL_MODULE_HH
