#include "process.hh"

namespace klebsim::kernel
{

const char *
procStateName(ProcState s)
{
    switch (s) {
      case ProcState::created:
        return "created";
      case ProcState::ready:
        return "ready";
      case ProcState::running:
        return "running";
      case ProcState::sleeping:
        return "sleeping";
      case ProcState::blocked:
        return "blocked";
      case ProcState::zombie:
        return "zombie";
    }
    return "?";
}

Process::Process(Pid pid, Pid ppid, std::string name, CoreId affinity)
    : pid_(pid), ppid_(ppid), name_(std::move(name)),
      affinity_(affinity)
{
}

} // namespace klebsim::kernel
