/**
 * @file
 * The simulated operating system kernel.
 *
 * Provides exactly the facilities the paper's tooling landscape
 * needs: a process model with PID trees, a round-robin scheduler
 * with context-switch tracepoints (the kprobe attachment point
 * K-LEB uses for process isolation), a syscall layer with explicit
 * costs, high-resolution timers, and a loadable-module framework
 * with character-device ioctl/read plumbing.
 */

#ifndef KLEBSIM_KERNEL_KERNEL_HH
#define KLEBSIM_KERNEL_KERNEL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/random.hh"
#include "base/types.hh"
#include "cost_model.hh"
#include "hw/cpu_core.hh"
#include "hw/timer_device.hh"
#include "module.hh"
#include "process.hh"
#include "service.hh"
#include "sim/event_queue.hh"

namespace klebsim::kernel
{

class HrTimer;
class Kernel;

/**
 * Context-switch tracepoint signature.  Either process may be null
 * (switch from/to idle).  Fired after the outgoing process's
 * execution has been attributed and before the incoming process
 * starts running — i.e. at the exact point a kprobe on the
 * scheduler's switch handler observes.
 */
using SwitchHook =
    std::function<void(Process *prev, Process *next, CoreId core)>;

/** Process lifecycle tracepoints. */
using ExitHook = std::function<void(Process &proc)>;
using ForkHook = std::function<void(Process &parent, Process &child)>;

/**
 * Process state-transition tracepoint.  Fired on every ProcState
 * change, after the new state has been stored; the invariant checker
 * (src/analysis/invariants.hh) uses it to verify transitions follow
 * the legal state machine.
 */
using StateHook =
    std::function<void(Process &proc, ProcState from, ProcState to)>;

/**
 * Module lifecycle tracepoint.  Fired after init() on load and
 * after exitModule() on unload — i.e. once the module has had its
 * chance to cancel timers and unhook tracepoints.
 */
using ModuleHook = std::function<void(
    KernelModule &mod, const std::string &dev_path, bool loaded)>;

/**
 * CPU hotplug phases, modeled on the kernel's cpuhp state machine.
 * `goingOffline` fires while the core is still online (the analogue
 * of a CPUHP teardown callback: per-CPU users quiesce — drain rings,
 * cancel timers — before the scheduler evacuates the core);
 * `offline`/`online` fire after the transition committed.
 */
enum class CpuEvent
{
    goingOffline,
    offline,
    online,
};

/** CPU hotplug notifier (cpuhp callback analogue). */
using CpuHook = std::function<void(CoreId core, CpuEvent event)>;

/**
 * Task-migration tracepoint (sched:sched_migrate_task analogue).
 * Fired after the task has been detached from @p from and before it
 * is enqueued on @p to — per-CPU monitors snapshot counter state in
 * their switch hook (which runs first for a running task) and use
 * this to attribute the move itself.
 */
using MigrateHook =
    std::function<void(Process &proc, CoreId from, CoreId to)>;

/**
 * @{ Fault-injection hooks (src/fault/).  All default to null, in
 * which case the corresponding code paths are byte-identical to a
 * fault-free kernel: no calls, no RNG draws, no extra charges.
 */

/**
 * Consulted by chardev syscalls (ioctl/read) after the syscall cost
 * is charged but before the module handler runs.  Returns 0 to let
 * the call through or a negative errno (err::eagain, err::eio) the
 * syscall fails with instead.
 */
using ChardevFaultHook =
    std::function<long(const std::string &dev_path, bool is_read)>;

/**
 * Produces a per-timer TimerDevice fault hook; consulted when an
 * HrTimer is created (and retroactively for existing timers when
 * installed).  May return null to leave a given timer clean.
 */
using TimerFaultFactory = std::function<hw::TimerDevice::FaultHook(
    const std::string &name, CoreId core)>;

/**
 * Consulted by tryLoadModule() before a module's init() runs.
 * Returning true makes the load fail (simulated insmod error); the
 * module object is destroyed without init() ever running.
 */
using ModuleLoadFaultHook =
    std::function<bool(const std::string &dev_path)>;

/**
 * Consulted when a PMU client tries to claim a core's counters
 * (fault point pmu.contend).  Returning true simulates a second
 * claimant already owning the programmed counters: the claim fails
 * with EBUSY and the client must retry or degrade on that core.
 */
using PmuContendFaultHook = std::function<bool(CoreId core)>;

/** @} */

/**
 * The kernel.
 */
class Kernel
{
  public:
    /**
     * @param eq the machine's event queue
     * @param cores all cores (owned by the System)
     * @param costs unit-cost model
     * @param rng forked stream for cost draws
     */
    Kernel(sim::EventQueue &eq,
           std::vector<hw::CpuCore *> cores, CostModel costs,
           Random rng);

    ~Kernel();

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    /** @{ Process management. */

    /**
     * Create a workload process around @p source.  The process is
     * in `created` state until startProcess().
     */
    Process *createWorkload(const std::string &name,
                            hw::WorkSource *source,
                            CoreId affinity = 0, Pid ppid = 1);

    /** Create a scripted service process. */
    Process *createService(const std::string &name,
                           ServiceBehavior *behavior,
                           CoreId affinity = 0, Pid ppid = 1);

    /** Make a created process runnable (and dispatch if possible). */
    void startProcess(Process *proc);

    /** Forcibly terminate a process in any non-zombie state. */
    void kill(Process *proc);

    /** Look up a live-or-zombie process by PID (null if unknown). */
    Process *findProcess(Pid pid);

    /** True if @p pid is @p ancestor or one of its descendants. */
    bool isDescendantOf(Pid pid, Pid ancestor);

    /** All processes ever created (stable order). */
    const std::vector<std::unique_ptr<Process>> &processes() const
    { return processes_; }

    /**
     * Register a callback fired when @p pid exits (or immediately
     * if it is already a zombie).
     */
    void onExit(Pid pid, std::function<void()> fn);

    /** @} */

    /** @{ Tracepoints (kprobe attachment points). */

    int registerSwitchHook(SwitchHook hook);
    void unregisterSwitchHook(int id);

    int registerExitHook(ExitHook hook);
    void unregisterExitHook(int id);

    int registerStateHook(StateHook hook);
    void unregisterStateHook(int id);

    int registerModuleHook(ModuleHook hook);
    void unregisterModuleHook(int id);

    int registerCpuHook(CpuHook hook);
    void unregisterCpuHook(int id);

    int registerMigrateHook(MigrateHook hook);
    void unregisterMigrateHook(int id);

    /** @} */

    /** @{ SMP: task migration and CPU hotplug. */

    /**
     * Move @p proc to core @p to.  A running task is switched out
     * first (the switch tracepoint fires with next == null on the
     * source core, so per-CPU monitors snapshot their counters
     * there), the migrate tracepoint fires, and the task is enqueued
     * on the destination — which is kicked with an IPI.  Sleeping,
     * blocked and created tasks just have their affinity moved; they
     * land on the new core when they next become runnable.
     */
    void migrate(Process *proc, CoreId to);

    /**
     * Take core @p core out of service (cpu.offline).  Fires the
     * goingOffline notifiers while the core still runs (per-CPU
     * users quiesce), evacuates the current task and the runqueue to
     * the lowest-id surviving core via migrate(), then commits and
     * fires the offline notifiers.  Refuses (returns false) to
     * offline the last online core.
     */
    bool offlineCore(CoreId core);

    /**
     * Bring an offlined core back (cpu.online).  The core returns
     * with an empty runqueue; notifiers re-arm their per-CPU state.
     * Tasks do not migrate back automatically.
     */
    void onlineCore(CoreId core);

    /** True when @p core is accepting work. */
    bool
    coreOnline(CoreId core) const
    {
        return coreState_[static_cast<std::size_t>(core)].online;
    }

    int numOnlineCores() const;

    /**
     * Lowest-id online core other than @p avoid (the evacuation and
     * redirection target).  Panics when none exists — impossible
     * through offlineCore(), which refuses to kill the last core.
     */
    CoreId fallbackCore(CoreId avoid) const;

    /** @{ Counters for reports and invariants. */
    std::uint64_t migrations() const { return migrations_; }
    std::uint64_t coreOfflines() const { return coreOfflines_; }
    std::uint64_t coreOnlines() const { return coreOnlines_; }
    std::uint64_t ipisSent() const { return ipis_; }
    /** @} */

    /** @} */

    /** @{ Modules and character devices. */

    /** Load @p module and bind it to @p dev_path ("/dev/kleb"). */
    void loadModule(std::unique_ptr<KernelModule> module,
                    const std::string &dev_path);

    /**
     * Like loadModule(), but consults the module-load fault hook:
     * when the hook vetoes the load, the module is destroyed
     * (init() never runs) and false is returned.  Callers that can
     * survive a failed insmod use this entry point.
     */
    bool tryLoadModule(std::unique_ptr<KernelModule> module,
                       const std::string &dev_path);

    /** Unload the module at @p dev_path. */
    void unloadModule(const std::string &dev_path);

    /** Module bound at @p dev_path (null if none). */
    KernelModule *moduleAt(const std::string &dev_path);

    /**
     * ioctl(2) from @p caller on @p dev_path.  Charges the syscall
     * cost to the caller's core, then runs the module handler.
     */
    long ioctl(Process &caller, const std::string &dev_path,
               std::uint32_t cmd, void *arg);

    /** read(2) from @p caller on @p dev_path. */
    long readDev(Process &caller, const std::string &dev_path,
                 void *buf, std::size_t len);

    /** @} */

    /** @{ Fault injection (see src/fault/fault_injector.hh). */

    /** Install (or clear) the chardev transient-failure hook. */
    void setChardevFaultHook(ChardevFaultHook hook)
    { chardevFault_ = std::move(hook); }

    /**
     * Draw one chardev fault decision for @p dev_path: 0 to
     * proceed, negative errno to fail.  Free (no call, no draw)
     * when no hook is installed.  Exposed so user-space models
     * that call module handlers directly (e.g. the K-LEB
     * controller) share the kernel syscall layer's fault source.
     */
    long
    drawChardevFault(const std::string &dev_path, bool is_read)
    {
        return chardevFault_ ? chardevFault_(dev_path, is_read) : 0;
    }

    /**
     * Install the timer fault factory; applies to every HrTimer
     * already created and all future ones.
     */
    void setTimerFaultFactory(TimerFaultFactory factory);

    /** Install (or clear) the module-load failure hook. */
    void setModuleLoadFaultHook(ModuleLoadFaultHook hook)
    { moduleLoadFault_ = std::move(hook); }

    /** Install (or clear) the PMU-contention hook (pmu.contend). */
    void setPmuContendFaultHook(PmuContendFaultHook hook)
    { pmuContendFault_ = std::move(hook); }

    /**
     * Draw one contention decision for a PMU claim on @p core: true
     * means a second claimant holds the counters and the claim must
     * fail with EBUSY.  Free (no call, no draw) when no hook is
     * installed.
     */
    bool
    drawPmuContendFault(CoreId core)
    {
        return pmuContendFault_ ? pmuContendFault_(core) : false;
    }

    /** @} */

    /** @{ Timers and interrupts. */

    /**
     * Create a high-resolution timer whose handler runs in
     * interrupt context on core @p core.
     *
     * @param handler_cost CPU time the handler body consumes
     * @param handler_footprint bytes of cache footprint it touches
     */
    HrTimer *createHrTimer(const std::string &name, CoreId core,
                           std::function<void()> handler,
                           Tick handler_cost,
                           std::uint64_t handler_footprint);

    /**
     * Run @p body in interrupt context on @p core now: sync the
     * core, charge interrupt entry plus @p cost, run the body, and
     * push any pending scheduling deadline by the total time taken.
     */
    void runInInterrupt(CoreId core, Tick cost,
                        std::uint64_t footprint,
                        const std::function<void()> &body);

    /** @} */

    /** @{ Waiting and waking. */

    /** Wake a sleeping/blocked process. No-op otherwise. */
    void wake(Process *proc);

    /** Wake every process parked on @p channel. */
    void wakeAll(WaitChannel &channel);

    /** @} */

    /** @{ Introspection and helpers. */

    Tick now() const { return eq_.curTick(); }
    sim::EventQueue &eq() { return eq_; }
    CostModel &costs() { return costs_; }
    Random &rng() { return rng_; }

    /** This boot's systemic cost multiplier (CostModel::runSigma). */
    double runFactor() const { return runFactor_; }

    /** Draw an actual cost for @p base under this boot's factor. */
    Tick
    drawCost(Tick base)
    {
        return static_cast<Tick>(
            static_cast<double>(costs_.draw(rng_, base)) *
            runFactor_);
    }

    int numCores() const { return static_cast<int>(cores_.size()); }
    hw::CpuCore &core(CoreId id);
    hw::CpuCore &coreOf(const Process &proc);

    /** Process currently on @p core (null when idle). */
    Process *running(CoreId core);

    /** Number of context switches performed so far. */
    std::uint64_t contextSwitches() const { return ctxSwitches_; }

    /**
     * Charge additional kernel work to a core from inside a module
     * handler or interrupt body.
     */
    void chargeKernelWork(CoreId core, Tick cost,
                          std::uint64_t footprint = 0);

    /** @} */

  private:
    /** Per-core scheduling state. */
    struct CoreState
    {
        Process *current = nullptr;
        std::deque<Process *> runQueue;

        enum class EndKind
        {
            none,
            slice,     //!< workload timeslice / completion
            serviceOp, //!< service op continuation
        };
        EndKind endKind = EndKind::none;
        sim::Event *endEvent = nullptr;
        Tick endTick = 0;
        bool completesAtEnd = false;

        /** A woken process wants to preempt the current workload. */
        bool needResched = false;

        /** A deferred reschedule event is already queued. */
        bool reschedPending = false;

        /** The core is accepting work (CPU hotplug state). */
        bool online = true;
    };

    Process *allocProcess(const std::string &name, CoreId affinity,
                          Pid ppid);

    /** Change @p proc's state and fire the state tracepoints. */
    void setState(Process *proc, ProcState to);

    /** Fire switch tracepoints and charge the switch cost. */
    void performSwitch(CoreId core, Process *prev, Process *next);

    /** Put @p next on @p core and start it running. */
    void runOn(CoreId core, Process *next);

    /** Start the core on the next runnable process, if any. */
    void dispatch(CoreId core);

    /**
     * Take the current process off @p core (attribution synced),
     * leaving the core ownerless.  Does not fire tracepoints.
     */
    void suspendCurrent(CoreId core, ProcState new_state);

    void cancelEnd(CoreId core);
    void onSliceEnd(CoreId core);

    /**
     * Queue a zero-delay reschedule of @p core.  Wakeups never
     * switch synchronously — they may arrive from interrupt
     * handlers or tracepoint hooks in the middle of a scheduling
     * operation — so the actual dispatch/preemption happens from a
     * fresh event, exactly like need_resched on interrupt return.
     */
    void scheduleResched(CoreId core);
    void doResched(CoreId core);
    void scheduleServiceContinuation(Process *proc);
    void runNextOp(Process *proc);
    void processExit(Process *proc);
    void enqueue(Process *proc, bool front);

    /**
     * Re-affine @p proc off an offline core (lazy migration at the
     * enqueue boundary, firing the migrate tracepoint).  Returns the
     * possibly-updated affinity.
     */
    CoreId redirectIfOffline(Process *proc);

    /**
     * Interrupt-delivery core for @p core: itself while online, the
     * fallback core after hotplug (hrtimer migration semantics).
     */
    CoreId deliveryCore(CoreId core) const;

    /** Fire the CPU notifier chain. */
    void fireCpuHooks(CoreId core, CpuEvent event);

    /** Kick @p core with an inter-processor interrupt. */
    void sendIpi(CoreId core);

    /** Extend a pending end deadline after interrupt-time charges. */
    void extendPendingEnd(CoreId core, Tick delta);

    sim::EventQueue &eq_;
    std::vector<hw::CpuCore *> cores_;
    CostModel costs_;
    Random rng_;

    std::vector<std::unique_ptr<Process>> processes_;
    std::map<Pid, Process *> pidMap_;
    Pid nextPid_ = 2; // pid 1 is the implicit init

    std::vector<CoreState> coreState_;
    std::uint64_t ctxSwitches_ = 0;
    std::uint64_t migrations_ = 0;
    std::uint64_t coreOfflines_ = 0;
    std::uint64_t coreOnlines_ = 0;
    std::uint64_t ipis_ = 0;
    double runFactor_ = 1.0;

    std::map<int, SwitchHook> switchHooks_;
    std::map<int, ExitHook> exitHooks_;
    std::map<int, StateHook> stateHooks_;
    std::map<int, ModuleHook> moduleHooks_;
    std::map<int, CpuHook> cpuHooks_;
    std::map<int, MigrateHook> migrateHooks_;
    int nextHookId_ = 1;

    /** Shared load path behind loadModule()/tryLoadModule(). */
    void installModule(std::unique_ptr<KernelModule> module,
                       const std::string &dev_path);

    std::map<std::string, std::unique_ptr<KernelModule>> modules_;
    std::vector<std::unique_ptr<HrTimer>> timers_;

    ChardevFaultHook chardevFault_;
    TimerFaultFactory timerFaultFactory_;
    ModuleLoadFaultHook moduleLoadFault_;
    PmuContendFaultHook pmuContendFault_;

    std::multimap<Pid, std::function<void()>> exitWaiters_;
};

/**
 * Kernel high-resolution timer.  Deadline-based re-arming: periodic
 * timers advance their deadline by exactly one period per expiry
 * (hrtimer_forward semantics), so jitter does not accumulate into
 * drift; each individual expiry is still late by the hardware
 * timer's jitter draw.
 */
class HrTimer
{
  public:
    HrTimer(std::string name, Kernel &kernel, CoreId core,
            std::function<void()> handler, Tick handler_cost,
            std::uint64_t handler_footprint);

    /** Fire every @p period from now (first expiry at now+period). */
    void startPeriodic(Tick period);

    /** Fire once after @p delay. */
    void startOneShot(Tick delay);

    /**
     * Re-arm a cancelled periodic timer onto its original deadline
     * grid (hrtimer_forward semantics): the next expiry is the
     * first grid point after now.  Gating a timer on context
     * switches with cancel()/resume() keeps the sampling grid
     * stable instead of re-phasing it at every switch-in.
     */
    void resume();

    /** Stop without firing. */
    void cancel();

    /**
     * Reprogram a running periodic timer's period without touching
     * the armed deadline: the in-flight expiry still lands on the
     * old grid, and only expiries after it space at the new period.
     * This is how a SET_PERIOD ioctl retunes sampling mid-session
     * without losing (or double-delivering) the pending sample.
     */
    void setPeriod(Tick period);

    bool active() const { return device_.armed(); }
    Tick period() const { return period_; }

    /** Lateness of the most recent expiry (jitter observation). */
    Tick lastLateness() const { return device_.lastLateness(); }

    /** Expiries delivered since the last start. */
    std::uint64_t expiries() const { return expiries_; }

    /** Replace the jitter model (tests use the ideal model). */
    void setJitterModel(const hw::TimerJitterModel &m)
    { device_.setJitterModel(m); }

    /** Install a fault hook on the underlying timer device. */
    void setFaultHook(hw::TimerDevice::FaultHook hook)
    { device_.setFaultHook(std::move(hook)); }

    const std::string &name() const { return name_; }
    CoreId core() const { return core_; }

  private:
    void armNext();
    void expire();

    std::string name_;
    Kernel &kernel_;
    CoreId core_;
    std::function<void()> handler_;
    Tick handlerCost_;
    std::uint64_t handlerFootprint_;
    hw::TimerDevice device_;
    bool periodic_ = false;
    Tick period_ = 0;
    Tick nextDeadline_ = 0;
    std::uint64_t expiries_ = 0;
};

} // namespace klebsim::kernel

#endif // KLEBSIM_KERNEL_KERNEL_HH
