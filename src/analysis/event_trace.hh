/**
 * @file
 * Compact recording of event-queue activity.
 *
 * An EventTrace is an EventQueueListener that logs every schedule,
 * deschedule and dispatch the queue performs.  Two runs of the same
 * scenario must produce byte-identical traces — that is the
 * determinism contract DESIGN.md claims for the substrate, and the
 * determinism harness (determinism.hh) enforces it by diffing the
 * traces of repeated runs.
 */

#ifndef KLEBSIM_ANALYSIS_EVENT_TRACE_HH
#define KLEBSIM_ANALYSIS_EVENT_TRACE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/types.hh"
#include "sim/event_queue.hh"

namespace klebsim::analysis
{

/** One observed queue operation. */
struct TraceRecord
{
    enum class Kind : std::uint8_t
    {
        schedule,
        deschedule,
        dispatch,
    };

    Kind kind;
    Tick at;           //!< curTick when the operation happened
    Tick when;         //!< the event's target tick
    int priority;      //!< the event's same-tick ordering class
    std::uint64_t seq; //!< the event's schedule-order stamp
    std::string name;  //!< the event's debug name

    bool operator==(const TraceRecord &) const = default;

    /** One-line rendering for divergence reports. */
    std::string str() const;
};

const char *traceKindName(TraceRecord::Kind k);

/**
 * The listener.  Attach with EventQueue::addListener(); detach (or
 * destroy the trace) before the queue goes away.
 */
class EventTrace : public sim::EventQueueListener
{
  public:
    void onSchedule(const sim::Event &ev, Tick now) override;
    void onDeschedule(const sim::Event &ev, Tick now) override;
    void onDispatch(const sim::Event &ev, Tick now) override;

    const std::vector<TraceRecord> &records() const
    { return records_; }

    std::size_t size() const { return records_.size(); }
    bool empty() const { return records_.empty(); }
    void clear() { records_.clear(); }

    /** FNV-1a hash over the canonical encoding of all records. */
    std::uint64_t fingerprint() const;

    /**
     * Index of the first record where the traces differ (including
     * one trace being a prefix of the other), or nullopt when they
     * are identical.
     */
    static std::optional<std::size_t>
    firstDivergence(const EventTrace &a, const EventTrace &b);

  private:
    void append(TraceRecord::Kind kind, const sim::Event &ev,
                Tick now);

    std::vector<TraceRecord> records_;
};

} // namespace klebsim::analysis

#endif // KLEBSIM_ANALYSIS_EVENT_TRACE_HH
