#include "token_lexer.hh"

#include <cctype>

namespace klebsim::analysis
{

namespace
{

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Encoding prefixes that may precede an ordinary "..." or '...'. */
bool
stringPrefix(std::string_view ident)
{
    return ident == "L" || ident == "u" || ident == "U" ||
           ident == "u8";
}

/** Prefixes that introduce a raw string when followed by '"'. */
bool
rawStringPrefix(std::string_view ident)
{
    return ident == "R" || ident == "LR" || ident == "uR" ||
           ident == "UR" || ident == "u8R";
}

} // anonymous namespace

std::vector<Token>
lexTokens(const std::string &src)
{
    std::vector<Token> out;
    const std::size_t n = src.size();
    std::size_t i = 0;
    std::size_t line = 1;

    auto countLines = [&line](std::string_view body) {
        for (char c : body)
            if (c == '\n')
                ++line;
    };

    // Consume an ordinary string/char literal starting at the
    // opening quote; tolerant of an unterminated literal (stops at
    // end of line).  Returns one past the closing quote.
    auto scanQuoted = [&src, n](std::size_t at) {
        const char quote = src[at];
        std::size_t j = at + 1;
        while (j < n && src[j] != quote && src[j] != '\n') {
            if (src[j] == '\\' && j + 1 < n && src[j + 1] != '\n')
                ++j; // skip the escaped character
            ++j;
        }
        if (j < n && src[j] == quote)
            ++j;
        return j;
    };

    while (i < n) {
        const char c = src[i];

        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }

        // Comments.
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            while (i < n && src[i] != '\n')
                ++i;
            continue;
        }
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            std::size_t end = src.find("*/", i + 2);
            if (end == std::string::npos)
                end = n;
            else
                end += 2;
            countLines(std::string_view(src).substr(i, end - i));
            i = end;
            continue;
        }

        // Identifiers — possibly a string/char literal prefix.
        if (identStart(c)) {
            std::size_t j = i;
            while (j < n && identChar(src[j]))
                ++j;
            const std::string_view ident =
                std::string_view(src).substr(i, j - i);

            if (j < n && src[j] == '"' && rawStringPrefix(ident)) {
                // R"delim( ... )delim"
                std::size_t d = j + 1;
                while (d < n && src[d] != '(' && src[d] != '\n')
                    ++d;
                std::string closer(1, ')');
                closer.append(src, j + 1, d - (j + 1));
                closer.push_back('"');
                std::size_t end = d < n && src[d] == '('
                                      ? src.find(closer, d + 1)
                                      : std::string::npos;
                end = end == std::string::npos
                          ? n
                          : end + closer.size();
                const std::size_t start_line = line;
                countLines(std::string_view(src).substr(i, end - i));
                out.push_back({TokKind::stringLit,
                               src.substr(i, end - i), start_line});
                i = end;
                continue;
            }
            if (j < n && src[j] == '"' && stringPrefix(ident)) {
                std::size_t end = scanQuoted(j);
                out.push_back({TokKind::stringLit,
                               src.substr(i, end - i), line});
                i = end;
                continue;
            }
            if (j < n && src[j] == '\'' && stringPrefix(ident)) {
                std::size_t end = scanQuoted(j);
                out.push_back({TokKind::charLit,
                               src.substr(i, end - i), line});
                i = end;
                continue;
            }

            out.push_back({TokKind::identifier,
                           std::string(ident), line});
            i = j;
            continue;
        }

        // Numbers (pp-number: digits, letters, ', ., exponent sign).
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
            std::size_t j = i;
            while (j < n) {
                const char d = src[j];
                if (identChar(d) || d == '.' || d == '\'') {
                    ++j;
                    continue;
                }
                if ((d == '+' || d == '-') && j > i) {
                    const char e = src[j - 1];
                    if (e == 'e' || e == 'E' || e == 'p' ||
                        e == 'P') {
                        ++j;
                        continue;
                    }
                }
                break;
            }
            out.push_back({TokKind::number, src.substr(i, j - i),
                           line});
            i = j;
            continue;
        }

        // Unprefixed string/char literals.
        if (c == '"') {
            std::size_t end = scanQuoted(i);
            out.push_back({TokKind::stringLit,
                           src.substr(i, end - i), line});
            i = end;
            continue;
        }
        if (c == '\'') {
            std::size_t end = scanQuoted(i);
            out.push_back({TokKind::charLit, src.substr(i, end - i),
                           line});
            i = end;
            continue;
        }

        // Punctuation: fuse only the pairs the rules match on.
        if (c == ':' && i + 1 < n && src[i + 1] == ':') {
            out.push_back({TokKind::punct, "::", line});
            i += 2;
            continue;
        }
        if (c == '-' && i + 1 < n && src[i + 1] == '>') {
            out.push_back({TokKind::punct, "->", line});
            i += 2;
            continue;
        }
        out.push_back({TokKind::punct, std::string(1, c), line});
        ++i;
    }
    return out;
}

} // namespace klebsim::analysis
