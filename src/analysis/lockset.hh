/**
 * @file
 * Eraser-style runtime lockset checker.
 *
 * The annotations in base/thread_safety.hh give the code two
 * channels into a registered ThreadSafetySink: TrackedMutex /
 * TrackedLock report every lock acquire/release, and
 * KLEB_ANNOTATE_ACCESS reports every instrumented access to a piece
 * of shared state.  LocksetChecker is the sink that turns those two
 * streams into race findings using the classic Eraser algorithm
 * (Savage et al., SOSP '97):
 *
 *  - each instrumented location starts *virgin*, becomes *exclusive*
 *    to the first thread that touches it (initialization needs no
 *    locks), and graduates to *shared* (second thread reads) or
 *    *shared-modified* (second thread writes, or any write while
 *    shared);
 *  - from the moment a second thread appears, the location carries a
 *    candidate lockset — the intersection of the locks held at every
 *    access so far;
 *  - a shared-modified location whose candidate lockset goes empty
 *    has no single mutex protecting it: that is reported as a
 *    lockset violation, once per location.
 *
 * Like Eraser, the checker is discipline-based, not happens-before
 * based: it flags *potential* races (no consistent lock) even when a
 * particular interleaving happened to be safe, and it false-positives
 * on fork/join hand-offs where ownership transfers without a common
 * lock.  Call forget() at hand-off points, or only instrument the
 * side of the hand-off that is supposed to hold the lock (the trial
 * pool instruments worker-side slot writes for exactly this reason).
 *
 * Cost model matches the fault hooks: when no sink is installed,
 * every KLEB_ANNOTATE_ACCESS is a single relaxed atomic load and a
 * predicted-not-taken branch; TrackedMutex degrades to std::mutex
 * plus the same check.  Nothing here is compiled out — the checker
 * is enabled per-test via install().
 */

#ifndef KLEBSIM_ANALYSIS_LOCKSET_HH
#define KLEBSIM_ANALYSIS_LOCKSET_HH

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/thread_safety.hh"

namespace klebsim::analysis
{

/** One potential race: an instrumented location whose candidate
 * lockset went empty while shared-modified. */
struct LocksetReport
{
    const void *addr;     //!< the instrumented location
    std::string site;     //!< site label of the offending access
    std::string firstSite; //!< site label of the first access seen
    bool write;           //!< offending access was a write
    std::uint32_t thread; //!< checker-assigned id of that thread

    /** "site: no consistent lock (first seen at firstSite)" */
    std::string str() const;
};

class LocksetChecker : public ThreadSafetySink
{
  public:
    LocksetChecker() = default;
    ~LocksetChecker() override;

    /** Register as the global sink (replaces any previous one). */
    void install() { setThreadSafetySink(this); }

    /** Deregister iff this checker is the current sink. */
    void uninstall();

    // ThreadSafetySink
    void onLock(std::uint32_t mutex_id, const char *name) override;
    void onUnlock(std::uint32_t mutex_id, const char *name) override;
    void onAccess(const void *addr, const char *site,
                  bool write) override;

    /** Findings so far (copy; safe to call while running). */
    std::vector<LocksetReport> reports() const;

    /** Instrumented accesses observed (hook-liveness check). */
    std::uint64_t accessesObserved() const;

    /**
     * Drop all state for @p addr: next access re-enters the virgin
     * state.  Use at fork/join ownership hand-offs the lockset
     * discipline cannot express.
     */
    void forget(const void *addr);

    /** Drop all location state and reports (held locks persist). */
    void reset();

  private:
    enum class State : std::uint8_t
    {
        exclusive,      //!< one thread has ever touched it
        shared,         //!< many threads, reads only since sharing
        sharedModified, //!< many threads, written while shared
    };

    struct Location
    {
        State state = State::exclusive;
        std::uint32_t owner = 0;       //!< exclusive-state thread
        std::vector<std::uint32_t> lockset; //!< sorted mutex ids
        std::string firstSite;
        bool reported = false;
    };

    std::uint32_t threadId();

    mutable std::mutex mutex_;
    std::unordered_map<const void *, Location> locations_;
    std::vector<LocksetReport> reports_;
    std::uint64_t accesses_ = 0;
};

/**
 * RAII install/uninstall for tests: constructs a checker, installs
 * it, and guarantees the global sink is cleared on scope exit even
 * if the test throws.
 */
class ScopedLockset
{
  public:
    ScopedLockset() { checker_.install(); }
    ~ScopedLockset() { checker_.uninstall(); }

    ScopedLockset(const ScopedLockset &) = delete;
    ScopedLockset &operator=(const ScopedLockset &) = delete;

    LocksetChecker &checker() { return checker_; }
    LocksetChecker *operator->() { return &checker_; }

  private:
    LocksetChecker checker_;
};

} // namespace klebsim::analysis

#endif // KLEBSIM_ANALYSIS_LOCKSET_HH
