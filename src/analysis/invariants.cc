#include "invariants.hh"

#include "base/logging.hh"
#include "base/str.hh"

namespace klebsim::analysis
{

using kernel::ProcState;

InvariantChecker::InvariantChecker(bool panic_on_violation)
    : panicOnViolation_(panic_on_violation)
{
}

InvariantChecker::~InvariantChecker()
{
    if (eq_)
        eq_->removeListener(this);
    if (kernel_) {
        kernel_->unregisterStateHook(stateHookId_);
        kernel_->unregisterModuleHook(moduleHookId_);
    }
    if (pmu_)
        pmu_->setReadHook(nullptr);
}

void
InvariantChecker::attachQueue(sim::EventQueue &eq)
{
    panic_if(eq_ != nullptr, "checker already watching a queue");
    eq_ = &eq;
    lastDispatchTick_ = eq.curTick();
    eq.addListener(this);
}

void
InvariantChecker::attachKernel(kernel::Kernel &kernel)
{
    panic_if(kernel_ != nullptr, "checker already watching a kernel");
    kernel_ = &kernel;
    stateHookId_ = kernel.registerStateHook(
        [this](kernel::Process &proc, ProcState from, ProcState to) {
            onProcState(proc, from, to);
        });
    moduleHookId_ = kernel.registerModuleHook(
        [this](kernel::KernelModule &mod, const std::string &dev,
               bool loaded) { onModule(mod, dev, loaded); });
}

void
InvariantChecker::attachPmu(hw::Pmu &pmu, std::string label)
{
    panic_if(pmu_ != nullptr, "checker already watching a PMU");
    pmu_ = &pmu;
    pmuLabel_ = std::move(label);
    pmu.setReadHook([this](int idx, bool fixed, bool programmed) {
        onPmuRead(idx, fixed, programmed);
    });
}

void
InvariantChecker::banEventsMatching(std::string substring)
{
    if (!substring.empty())
        bannedNames_.push_back(std::move(substring));
}

void
InvariantChecker::violation(std::string msg)
{
    if (panicOnViolation_)
        panic("invariant violated: ", msg);
    violations_.push_back(std::move(msg));
}

void
InvariantChecker::onSchedule(const sim::Event &ev, Tick now)
{
    ++checks_;
    if (ev.when() < now)
        violation(csprintf("event '%s' scheduled into the past "
                           "(when=%llu < now=%llu)",
                           ev.name().c_str(),
                           (unsigned long long)ev.when(),
                           (unsigned long long)now));
}

void
InvariantChecker::onDeschedule(const sim::Event &ev, Tick now)
{
    (void)ev;
    (void)now;
    ++checks_;
}

void
InvariantChecker::onDispatch(const sim::Event &ev, Tick now)
{
    ++checks_;
    if (now < lastDispatchTick_)
        violation(csprintf("time ran backwards: dispatch at %llu "
                           "after dispatch at %llu",
                           (unsigned long long)now,
                           (unsigned long long)lastDispatchTick_));
    lastDispatchTick_ = now;
    if (ev.when() != now)
        violation(csprintf("event '%s' dispatched at %llu but was "
                           "scheduled for %llu",
                           ev.name().c_str(),
                           (unsigned long long)now,
                           (unsigned long long)ev.when()));
    for (const std::string &banned : bannedNames_) {
        if (ev.name().find(banned) != std::string::npos)
            violation(csprintf("event '%s' dispatched at %llu after "
                               "its owner ('%s') unloaded",
                               ev.name().c_str(),
                               (unsigned long long)now,
                               banned.c_str()));
    }
}

bool
InvariantChecker::legalTransition(ProcState from, ProcState to)
{
    switch (from) {
      case ProcState::created:
        return to == ProcState::ready || to == ProcState::zombie;
      case ProcState::ready:
        return to == ProcState::running || to == ProcState::zombie;
      case ProcState::running:
        return to == ProcState::ready || to == ProcState::sleeping ||
               to == ProcState::blocked || to == ProcState::zombie;
      case ProcState::sleeping:
      case ProcState::blocked:
        return to == ProcState::ready || to == ProcState::zombie;
      case ProcState::zombie:
        return false;
    }
    return false;
}

void
InvariantChecker::onProcState(kernel::Process &proc, ProcState from,
                              ProcState to)
{
    ++checks_;
    if (!legalTransition(from, to))
        violation(csprintf("process '%s' (pid %d): illegal state "
                           "transition %s -> %s",
                           proc.name().c_str(), proc.pid(),
                           kernel::procStateName(from),
                           kernel::procStateName(to)));
}

void
InvariantChecker::onModule(kernel::KernelModule &mod,
                           const std::string &dev_path, bool loaded)
{
    ++checks_;
    auto it = moduleLoaded_.find(dev_path);
    if (loaded) {
        if (it != moduleLoaded_.end() && it->second)
            violation(csprintf("module '%s' loaded at %s which is "
                               "already bound",
                               mod.name().c_str(),
                               dev_path.c_str()));
        moduleLoaded_[dev_path] = true;
        // A reloaded module may legitimately schedule again.
        std::erase(bannedNames_, mod.name());
        return;
    }
    // First sighting at unload means the load predates this
    // checker; that is pairing we cannot judge, not a violation.
    if (it != moduleLoaded_.end() && !it->second)
        violation(csprintf("module '%s' unloaded from %s twice "
                           "without a reload",
                           mod.name().c_str(), dev_path.c_str()));
    moduleLoaded_[dev_path] = false;
    banEventsMatching(mod.name());
}

void
InvariantChecker::checkSampleLog(const std::vector<kleb::Sample> &log,
                                 const std::string &label)
{
    for (std::size_t i = 0; i < log.size(); ++i) {
        const kleb::Sample &s = log[i];
        ++checks_;
        if (s.numEvents != log.front().numEvents)
            violation(csprintf("%s: sample %zu has %d events, "
                               "expected %d",
                               label.c_str(), i, (int)s.numEvents,
                               (int)log.front().numEvents));
        if (s.cause == kleb::SampleCause::final &&
            i + 1 != log.size())
            violation(csprintf("%s: final sample at index %zu is "
                               "not last (log has %zu samples)",
                               label.c_str(), i, log.size()));
        if (i == 0)
            continue;
        const kleb::Sample &prev = log[i - 1];
        if (s.timestamp < prev.timestamp)
            violation(csprintf("%s: sample %zu timestamp %llu "
                               "before sample %zu at %llu",
                               label.c_str(), i,
                               (unsigned long long)s.timestamp,
                               i - 1,
                               (unsigned long long)prev.timestamp));
        for (std::size_t c = 0; c < s.numEvents; ++c) {
            if (s.counts[c] < prev.counts[c])
                violation(csprintf(
                    "%s: counter %zu moved backwards at sample "
                    "%zu (%llu -> %llu); wrap correction failed",
                    label.c_str(), c, i,
                    (unsigned long long)prev.counts[c],
                    (unsigned long long)s.counts[c]));
        }
    }
}

void
InvariantChecker::checkRecoveredSeries(const stats::TimeSeries &series,
                                       const std::string &label)
{
    for (std::size_t row = 1; row < series.size(); ++row) {
        ++checks_;
        if (series.timeAt(row) < series.timeAt(row - 1))
            violation(csprintf(
                "%s: row %zu timestamp %llu before row %zu at %llu",
                label.c_str(), row,
                (unsigned long long)series.timeAt(row), row - 1,
                (unsigned long long)series.timeAt(row - 1)));
    }
    for (std::size_t c = 0; c < series.channels(); ++c) {
        if (series.channelNames()[c] == "gap_ticks")
            continue;
        for (std::size_t row = 1; row < series.size(); ++row) {
            ++checks_;
            if (series.valueAt(row, c) < series.valueAt(row - 1, c))
                violation(csprintf(
                    "%s: channel '%s' moved backwards at row %zu "
                    "(%g -> %g); recovery spliced out of order",
                    label.c_str(),
                    series.channelNames()[c].c_str(), row,
                    series.valueAt(row - 1, c),
                    series.valueAt(row, c)));
        }
    }
}

void
InvariantChecker::checkSmpSampleLog(
    const std::vector<kleb::Sample> &log, const std::string &label)
{
    // Last data sample seen per core, and which cores are inside a
    // coreOffline..coreOnline window right now.
    std::map<std::uint16_t, const kleb::Sample *> last;
    std::map<std::uint16_t, bool> offline;

    for (std::size_t i = 0; i < log.size(); ++i) {
        const kleb::Sample &s = log[i];
        if (kleb::isCoreMarker(s.cause)) {
            offline[s.core] =
                s.cause == kleb::SampleCause::coreOffline;
            continue;
        }

        ++checks_;
        auto off = offline.find(s.core);
        if (off != offline.end() && off->second)
            violation(csprintf(
                "%s: sample %zu at %llu attributed to core %u "
                "while that core is offline",
                label.c_str(), i,
                (unsigned long long)s.timestamp, (unsigned)s.core));

        auto it = last.find(s.core);
        if (it != last.end()) {
            const kleb::Sample &prev = *it->second;
            ++checks_;
            if (s.timestamp < prev.timestamp)
                violation(csprintf(
                    "%s: core %u sample %zu timestamp %llu before "
                    "that core's previous sample at %llu",
                    label.c_str(), (unsigned)s.core, i,
                    (unsigned long long)s.timestamp,
                    (unsigned long long)prev.timestamp));
            for (std::size_t c = 0; c < s.numEvents; ++c) {
                if (s.counts[c] < prev.counts[c])
                    violation(csprintf(
                        "%s: core %u counter %zu moved backwards "
                        "at sample %zu (%llu -> %llu)",
                        label.c_str(), (unsigned)s.core, c, i,
                        (unsigned long long)prev.counts[c],
                        (unsigned long long)s.counts[c]));
            }
        }
        last[s.core] = &s;
    }
}

void
InvariantChecker::checkMigrationLedger(const kleb::KLebStatus &st,
                                       const std::string &label)
{
    ++checks_;
    if (st.samplesKept + st.samplesMigrated + st.samplesDropped !=
        st.samplesEmitted)
        violation(csprintf(
            "%s: ledger does not partition: %llu kept + %llu "
            "migrated + %llu dropped != %llu emitted",
            label.c_str(), (unsigned long long)st.samplesKept,
            (unsigned long long)st.samplesMigrated,
            (unsigned long long)st.samplesDropped,
            (unsigned long long)st.samplesEmitted));
    ++checks_;
    if (st.samplesRecorded != st.samplesKept + st.samplesMigrated)
        violation(csprintf(
            "%s: %llu recorded but %llu kept + %llu migrated — "
            "relocation minted or destroyed samples",
            label.c_str(), (unsigned long long)st.samplesRecorded,
            (unsigned long long)st.samplesKept,
            (unsigned long long)st.samplesMigrated));
}

void
InvariantChecker::checkSupervision(const kleb::SupervisorStats &stats,
                                   const std::string &label)
{
    ++checks_;
    if (stats.reattaches + stats.failedReattaches != stats.restarts)
        violation(csprintf(
            "%s: %llu restarts but %llu + %llu re-attach attempts; "
            "every restart must pair with exactly one re-attach",
            label.c_str(), (unsigned long long)stats.restarts,
            (unsigned long long)stats.reattaches,
            (unsigned long long)stats.failedReattaches));
    ++checks_;
    if (stats.budget >= 0 &&
        stats.restarts > static_cast<std::uint64_t>(stats.budget))
        violation(csprintf(
            "%s: %llu restarts exceed the budget of %d",
            label.c_str(), (unsigned long long)stats.restarts,
            stats.budget));
}

void
InvariantChecker::checkAdaptiveRecovery(
    const kleb::RecoveredLog &recovered, const std::string &label)
{
    const kleb::RecoveryReport &rep = recovered.report;
    ++checks_;
    if (!rep.balanced())
        violation(csprintf(
            "%s: frame accounting does not balance "
            "(%llu kept + %llu dropped + %llu vanished != %llu "
            "emitted)",
            label.c_str(), (unsigned long long)rep.framesKept,
            (unsigned long long)rep.framesDropped,
            (unsigned long long)rep.framesVanished,
            (unsigned long long)rep.framesEmitted));

    for (std::size_t i = 1; i < recovered.samples.size(); ++i) {
        ++checks_;
        if (recovered.samples[i].timestamp <
            recovered.samples[i - 1].timestamp)
            violation(csprintf(
                "%s: recovered sample %zu timestamp moves backwards",
                label.c_str(), i));
    }

    Tick last_change = 0;
    for (std::size_t i = 0; i < recovered.rateChanges.size(); ++i) {
        const kleb::RateChangeRecord &rc = recovered.rateChanges[i];
        ++checks_;
        if (rc.newPeriod == 0)
            violation(csprintf(
                "%s: rate change %zu to a zero period",
                label.c_str(), i));
        ++checks_;
        if (rc.at < last_change)
            violation(csprintf(
                "%s: rate change %zu timestamp moves backwards",
                label.c_str(), i));
        last_change = rc.at;
        // The chain proof only holds on a clean medium: a dropped
        // or vanished frame may legitimately be a rateChange, and a
        // crash between the ioctl landing and the journal append
        // loses exactly the journal entry — recovery then sees a
        // seam, not a lie.
        if (i > 0 && rep.framesDropped == 0 &&
            rep.framesVanished == 0) {
            ++checks_;
            if (rc.oldPeriod !=
                recovered.rateChanges[i - 1].newPeriod)
                violation(csprintf(
                    "%s: rate change %zu claims old period %llu "
                    "but the previous change set %llu — a reprogram "
                    "was lost or double-applied",
                    label.c_str(), i,
                    (unsigned long long)rc.oldPeriod,
                    (unsigned long long)
                        recovered.rateChanges[i - 1].newPeriod));
        }
    }
}

void
InvariantChecker::checkFleetBalance(const fleet::FleetResult &result,
                                    const std::string &label)
{
    std::uint64_t produced = 0, accounted = 0, kept = 0,
                  reordered = 0, quarantined_records = 0;
    std::uint32_t quarantined_machines = 0;

    std::vector<std::uint32_t> holes_per_machine(
        result.accounts.size(), 0);
    for (const fleet::FleetHole &h : result.holes) {
        ++checks_;
        if (h.machine >= result.accounts.size()) {
            violation(csprintf(
                "%s: hole names machine %u outside the fleet",
                label.c_str(), h.machine));
            continue;
        }
        ++holes_per_machine[h.machine];
        ++checks_;
        if (h.to < h.from)
            violation(csprintf(
                "%s: machine %u hole runs backwards", label.c_str(),
                h.machine));
    }

    for (const fleet::MachineAccount &a : result.accounts) {
        ++checks_;
        const std::uint64_t sum =
            a.kept + a.dropped + a.vanished + a.quarantined;
        if (sum != a.produced)
            violation(csprintf(
                "%s: machine %u ledger does not partition: %llu "
                "kept + %llu dropped + %llu vanished + %llu "
                "quarantined != %llu produced",
                label.c_str(), a.machine,
                (unsigned long long)a.kept,
                (unsigned long long)a.dropped,
                (unsigned long long)a.vanished,
                (unsigned long long)a.quarantined,
                (unsigned long long)a.produced));
        produced += a.produced;
        accounted += sum;
        kept += a.kept;

        ++checks_;
        if (a.simFailed && a.produced != 0)
            violation(csprintf(
                "%s: machine %u claims %llu produced samples but "
                "its simulation died",
                label.c_str(), a.machine,
                (unsigned long long)a.produced));

        // Absence must be explicit: a machine the collector gave up
        // on carries at least one hole; a machine it didn't has
        // none.
        ++checks_;
        if (a.isQuarantined) {
            ++quarantined_machines;
            if (holes_per_machine[a.machine] == 0)
                violation(csprintf(
                    "%s: machine %u is quarantined without an "
                    "explicit hole (its absence became silent "
                    "zeros)",
                    label.c_str(), a.machine));
        } else if (holes_per_machine[a.machine] != 0) {
            violation(csprintf(
                "%s: machine %u has a hole but was never "
                "quarantined",
                label.c_str(), a.machine));
        }

        ++checks_;
        if (a.quarantined != 0 && !a.isQuarantined)
            violation(csprintf(
                "%s: machine %u had %llu records quarantined but "
                "is not marked quarantined",
                label.c_str(), a.machine,
                (unsigned long long)a.quarantined));
        quarantined_records += a.quarantined;
    }

    ++checks_;
    if (accounted != produced)
        violation(csprintf(
            "%s: fleet accounting does not balance: %llu accounted "
            "!= %llu produced",
            label.c_str(), (unsigned long long)accounted,
            (unsigned long long)produced));

    ++checks_;
    if (result.aggregateAccounted != accounted)
        violation(csprintf(
            "%s: aggregateAccounted %llu disagrees with the ledger "
            "sum %llu",
            label.c_str(),
            (unsigned long long)result.aggregateAccounted,
            (unsigned long long)accounted));

    // Cross-check the ledgers against the collector's own view.
    const fleet::CollectorStats &cs = result.collector;
    ++checks_;
    if (cs.accepted != kept)
        violation(csprintf(
            "%s: collector accepted %llu records but the ledgers "
            "kept %llu",
            label.c_str(), (unsigned long long)cs.accepted,
            (unsigned long long)kept));
    ++checks_;
    if (cs.quarantinedRecords != quarantined_records)
        violation(csprintf(
            "%s: collector discarded %llu quarantined records but "
            "the ledgers hold %llu",
            label.c_str(),
            (unsigned long long)cs.quarantinedRecords,
            (unsigned long long)quarantined_records));
    ++checks_;
    if (cs.quarantinedMachines != quarantined_machines)
        violation(csprintf(
            "%s: collector quarantined %u machines but the ledgers "
            "mark %u",
            label.c_str(), cs.quarantinedMachines,
            quarantined_machines));
    (void)reordered;

    // Every tree observation is a kept record's delta (first-sample
    // and zero-cycle records merge without an observation).
    ++checks_;
    if (result.tree.observations() > kept)
        violation(csprintf(
            "%s: tree holds %llu observations from only %llu kept "
            "records",
            label.c_str(),
            (unsigned long long)result.tree.observations(),
            (unsigned long long)kept));
}

void
InvariantChecker::onPmuRead(int idx, bool fixed, bool programmed)
{
    ++checks_;
    if (!programmed)
        violation(csprintf("%s: read of unprogrammed %s counter %d",
                           pmuLabel_.c_str(),
                           fixed ? "fixed" : "programmable", idx));
}

std::string
InvariantChecker::report() const
{
    std::string out;
    for (const std::string &v : violations_) {
        out += v;
        out += '\n';
    }
    return out;
}

} // namespace klebsim::analysis
