/**
 * @file
 * Determinism harness — the DES analogue of a race detector.
 *
 * DESIGN.md claims the substrate is fully deterministic: same-tick
 * events ordered by priority, then schedule order (FIFO).  This
 * harness enforces that claim empirically.  Given a scenario — a
 * callable that builds a fresh machine, runs it, and returns its
 * observables — the harness:
 *
 *  1. runs the scenario twice with the specification tie-break
 *     (salt 0) and diffs the full event traces and final counter
 *     values: any divergence means hidden nondeterminism leaked in
 *     (wall-clock time, unseeded randomness, address-dependent
 *     iteration order, ...), and the report pins down the first
 *     divergent event with context;
 *
 *  2. runs it once more with a perturbed same-tick tie-break and
 *     compares only the counters: a difference means some module's
 *     results secretly depend on FIFO order between same-priority
 *     events — the discrete-event equivalent of a data race.
 */

#ifndef KLEBSIM_ANALYSIS_DETERMINISM_HH
#define KLEBSIM_ANALYSIS_DETERMINISM_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "event_trace.hh"

namespace klebsim::analysis
{

/** What one scenario run exposes for comparison. */
struct Observation
{
    /** Full event trace of the run. */
    EventTrace trace;

    /** Named final values (counter totals, sample counts, ...). */
    std::vector<std::pair<std::string, std::uint64_t>> counters;
};

/** Where two traces first disagree. */
struct TraceDivergence
{
    std::size_t index;
    std::string expected; //!< record from the first run (or "<end>")
    std::string actual;   //!< record from the second run (or "<end>")
    /** A few records of shared history leading up to the split. */
    std::vector<std::string> context;
};

struct DeterminismReport
{
    /** Replay with identical tie-break reproduced bit-for-bit. */
    bool deterministic = false;

    /** Results changed under a perturbed same-tick tie-break. */
    bool tieBreakSensitive = false;

    std::optional<TraceDivergence> divergence;
    std::vector<std::string> counterMismatches;
    std::vector<std::string> tieBreakMismatches;

    /** Human-readable multi-line summary. */
    std::string summary() const;
};

class DeterminismHarness
{
  public:
    /**
     * A scenario builds a fresh machine, applies @p tie_salt to its
     * event queue (EventQueue::setTieBreakSalt) before running,
     * attaches the trace it returns, runs to completion, and
     * reports its observables.  It must not share state between
     * invocations.
     */
    using Scenario = std::function<Observation(std::uint64_t tie_salt)>;

    /** Salt handed to the perturbed run. */
    static constexpr std::uint64_t perturbSalt =
        0x9e3779b97f4a7c15ULL;

    /** Run the full check: replay twice, perturb once. */
    static DeterminismReport check(const Scenario &scenario);

    /** Replay-only check (no tie-break perturbation). */
    static DeterminismReport checkReplay(const Scenario &scenario);

  private:
    static void compareRuns(DeterminismReport &report,
                            const Observation &a,
                            const Observation &b);
};

} // namespace klebsim::analysis

#endif // KLEBSIM_ANALYSIS_DETERMINISM_HH
