#include "event_trace.hh"

#include "base/str.hh"

namespace klebsim::analysis
{

const char *
traceKindName(TraceRecord::Kind k)
{
    switch (k) {
      case TraceRecord::Kind::schedule:
        return "schedule";
      case TraceRecord::Kind::deschedule:
        return "deschedule";
      case TraceRecord::Kind::dispatch:
        return "dispatch";
    }
    return "?";
}

std::string
TraceRecord::str() const
{
    return csprintf("%-10s @%llu '%s' when=%llu prio=%d seq=%llu",
                    traceKindName(kind),
                    static_cast<unsigned long long>(at),
                    name.c_str(),
                    static_cast<unsigned long long>(when), priority,
                    static_cast<unsigned long long>(seq));
}

void
EventTrace::append(TraceRecord::Kind kind, const sim::Event &ev,
                   Tick now)
{
    records_.push_back(TraceRecord{kind, now, ev.when(),
                                   ev.priority(), ev.seq(),
                                   ev.name()});
}

void
EventTrace::onSchedule(const sim::Event &ev, Tick now)
{
    append(TraceRecord::Kind::schedule, ev, now);
}

void
EventTrace::onDeschedule(const sim::Event &ev, Tick now)
{
    append(TraceRecord::Kind::deschedule, ev, now);
}

void
EventTrace::onDispatch(const sim::Event &ev, Tick now)
{
    append(TraceRecord::Kind::dispatch, ev, now);
}

std::uint64_t
EventTrace::fingerprint() const
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](const void *data, std::size_t len) {
        auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < len; ++i) {
            h ^= p[i];
            h *= 0x100000001b3ULL;
        }
    };
    for (const TraceRecord &r : records_) {
        auto kind = static_cast<std::uint8_t>(r.kind);
        mix(&kind, sizeof(kind));
        mix(&r.at, sizeof(r.at));
        mix(&r.when, sizeof(r.when));
        mix(&r.priority, sizeof(r.priority));
        mix(&r.seq, sizeof(r.seq));
        mix(r.name.data(), r.name.size());
    }
    return h;
}

std::optional<std::size_t>
EventTrace::firstDivergence(const EventTrace &a, const EventTrace &b)
{
    std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i)
        if (!(a.records_[i] == b.records_[i]))
            return i;
    if (a.size() != b.size())
        return n;
    return std::nullopt;
}

} // namespace klebsim::analysis
