#include "determinism.hh"

#include <algorithm>
#include <map>

#include "base/str.hh"

namespace klebsim::analysis
{

namespace
{

/** Records of shared history to include before a divergence. */
constexpr std::size_t contextRecords = 5;

std::string
recordAt(const EventTrace &t, std::size_t i)
{
    if (i >= t.size())
        return "<end of trace>";
    return t.records()[i].str();
}

/** Compare named counters; append "name: a vs b" lines to @p out. */
void
diffCounters(
    const std::vector<std::pair<std::string, std::uint64_t>> &a,
    const std::vector<std::pair<std::string, std::uint64_t>> &b,
    std::vector<std::string> &out)
{
    std::map<std::string, std::uint64_t> bmap(b.begin(), b.end());
    for (const auto &[name, va] : a) {
        auto it = bmap.find(name);
        if (it == bmap.end()) {
            out.push_back(csprintf("counter '%s' missing from "
                                   "second run", name.c_str()));
            continue;
        }
        if (it->second != va)
            out.push_back(csprintf(
                "counter '%s': %llu vs %llu", name.c_str(),
                (unsigned long long)va,
                (unsigned long long)it->second));
        bmap.erase(it);
    }
    for (const auto &[name, vb] : bmap) {
        (void)vb;
        out.push_back(csprintf("counter '%s' missing from first run",
                               name.c_str()));
    }
}

} // anonymous namespace

void
DeterminismHarness::compareRuns(DeterminismReport &report,
                                const Observation &a,
                                const Observation &b)
{
    report.deterministic = true;
    auto div = EventTrace::firstDivergence(a.trace, b.trace);
    if (div) {
        report.deterministic = false;
        TraceDivergence d;
        d.index = *div;
        d.expected = recordAt(a.trace, *div);
        d.actual = recordAt(b.trace, *div);
        std::size_t start =
            *div > contextRecords ? *div - contextRecords : 0;
        for (std::size_t i = start; i < *div; ++i)
            d.context.push_back(recordAt(a.trace, i));
        report.divergence = std::move(d);
    }
    diffCounters(a.counters, b.counters, report.counterMismatches);
    if (!report.counterMismatches.empty())
        report.deterministic = false;
}

DeterminismReport
DeterminismHarness::checkReplay(const Scenario &scenario)
{
    DeterminismReport report;
    Observation first = scenario(0);
    Observation second = scenario(0);
    compareRuns(report, first, second);
    return report;
}

DeterminismReport
DeterminismHarness::check(const Scenario &scenario)
{
    DeterminismReport report;
    Observation first = scenario(0);
    Observation second = scenario(0);
    compareRuns(report, first, second);

    // Perturbed tie-break: the event *order* legitimately changes,
    // so only the semantic observables (counters) are compared.
    Observation perturbed = scenario(perturbSalt);
    diffCounters(first.counters, perturbed.counters,
                 report.tieBreakMismatches);
    report.tieBreakSensitive = !report.tieBreakMismatches.empty();
    return report;
}

std::string
DeterminismReport::summary() const
{
    std::string out;
    out += csprintf("deterministic: %s\n",
                    deterministic ? "yes" : "NO");
    if (divergence) {
        out += csprintf("first trace divergence at record %zu:\n",
                        divergence->index);
        for (const std::string &c : divergence->context)
            out += "    ... " + c + "\n";
        out += "    run A: " + divergence->expected + "\n";
        out += "    run B: " + divergence->actual + "\n";
    }
    for (const std::string &m : counterMismatches)
        out += "  " + m + "\n";
    out += csprintf("tie-break sensitive: %s\n",
                    tieBreakSensitive ? "YES" : "no");
    for (const std::string &m : tieBreakMismatches)
        out += "  " + m + "\n";
    return out;
}

} // namespace klebsim::analysis
