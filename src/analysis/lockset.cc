#include "lockset.hh"

#include <algorithm>
#include <atomic>

namespace klebsim::analysis
{

namespace
{

/**
 * Per-thread state lives outside the checker: onLock/onUnlock and
 * onAccess are always invoked on the thread doing the locking or
 * accessing, so its held-lock set and checker-assigned id need no
 * synchronization at all.  One sink is installed at a time, so
 * sharing these across checker instances is harmless.
 */
std::atomic<std::uint32_t> nextThreadId{0};

thread_local std::uint32_t cachedThreadId = 0;

/** Sorted ids of the TrackedMutexes this thread currently holds. */
thread_local std::vector<std::uint32_t> heldLocks;

} // anonymous namespace

std::string
LocksetReport::str() const
{
    std::string out(site);
    out += write ? ": write" : ": read";
    out += " with no consistent lock held (first seen at ";
    out += firstSite;
    out += ")";
    return out;
}

LocksetChecker::~LocksetChecker()
{
    // A checker must never outlive its installation.
    uninstall();
}

void
LocksetChecker::uninstall()
{
    ThreadSafetySink *self = this;
    detail::tsSink.compare_exchange_strong(
        self, nullptr, std::memory_order_release,
        std::memory_order_relaxed);
}

std::uint32_t
LocksetChecker::threadId()
{
    if (cachedThreadId == 0)
        cachedThreadId =
            nextThreadId.fetch_add(1, std::memory_order_relaxed) + 1;
    return cachedThreadId;
}

void
LocksetChecker::onLock(std::uint32_t mutex_id, const char *name)
{
    (void)name;
    auto at = std::lower_bound(heldLocks.begin(), heldLocks.end(),
                               mutex_id);
    if (at == heldLocks.end() || *at != mutex_id)
        heldLocks.insert(at, mutex_id);
}

void
LocksetChecker::onUnlock(std::uint32_t mutex_id, const char *name)
{
    (void)name;
    auto at = std::lower_bound(heldLocks.begin(), heldLocks.end(),
                               mutex_id);
    if (at != heldLocks.end() && *at == mutex_id)
        heldLocks.erase(at);
}

void
LocksetChecker::onAccess(const void *addr, const char *site,
                         bool write)
{
    const std::uint32_t tid = threadId();

    std::lock_guard<std::mutex> hold(mutex_);
    ++accesses_;

    auto [it, fresh] = locations_.try_emplace(addr);
    Location &loc = it->second;
    if (fresh) {
        loc.owner = tid;
        loc.firstSite = site;
        return;
    }

    if (loc.state == State::exclusive) {
        if (loc.owner == tid)
            return;
        // Second thread: the location is shared from here on; its
        // candidate lockset starts as whatever this thread holds.
        loc.state = write ? State::sharedModified : State::shared;
        loc.lockset = heldLocks;
    } else {
        std::vector<std::uint32_t> refined;
        std::set_intersection(loc.lockset.begin(),
                              loc.lockset.end(), heldLocks.begin(),
                              heldLocks.end(),
                              std::back_inserter(refined));
        loc.lockset = std::move(refined);
        if (write)
            loc.state = State::sharedModified;
    }

    if (loc.state == State::sharedModified && loc.lockset.empty() &&
        !loc.reported) {
        loc.reported = true;
        reports_.push_back({addr, site, loc.firstSite, write, tid});
    }
}

std::vector<LocksetReport>
LocksetChecker::reports() const
{
    std::lock_guard<std::mutex> hold(mutex_);
    return reports_;
}

std::uint64_t
LocksetChecker::accessesObserved() const
{
    std::lock_guard<std::mutex> hold(mutex_);
    return accesses_;
}

void
LocksetChecker::forget(const void *addr)
{
    std::lock_guard<std::mutex> hold(mutex_);
    locations_.erase(addr);
}

void
LocksetChecker::reset()
{
    std::lock_guard<std::mutex> hold(mutex_);
    locations_.clear();
    reports_.clear();
    accesses_ = 0;
}

} // namespace klebsim::analysis
