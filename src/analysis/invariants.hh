/**
 * @file
 * Online invariant checking for the simulated machine.
 *
 * The InvariantChecker is an opt-in observer that attaches to the
 * substrate's hook points — the event queue's listener interface,
 * the kernel's state/module tracepoints, and the PMU's read
 * observer — and verifies structural invariants while the machine
 * runs:
 *
 *  - simulated time never moves backwards, and every event fires at
 *    exactly the tick it was scheduled for;
 *  - no event is scheduled into the past;
 *  - no event belonging to an unloaded kernel module is ever
 *    dispatched (the DES analogue of a use-after-free);
 *  - process state transitions follow the legal state machine;
 *  - counter reads (RDMSR/RDPMC) only touch programmed counters.
 *
 * Violations are collected as human-readable strings; tests assert
 * ok() after a scenario, or construct the checker with
 * panic_on_violation to die at the first offence.
 */

#ifndef KLEBSIM_ANALYSIS_INVARIANTS_HH
#define KLEBSIM_ANALYSIS_INVARIANTS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/types.hh"
#include "fleet/fleet.hh"
#include "hw/pmu.hh"
#include "kernel/kernel.hh"
#include "kleb/kleb_config.hh"
#include "kleb/log_recovery.hh"
#include "kleb/sample.hh"
#include "kleb/supervisor.hh"
#include "sim/event_queue.hh"
#include "stats/time_series.hh"

namespace klebsim::analysis
{

class InvariantChecker : public sim::EventQueueListener
{
  public:
    explicit InvariantChecker(bool panic_on_violation = false);
    ~InvariantChecker() override;

    InvariantChecker(const InvariantChecker &) = delete;
    InvariantChecker &operator=(const InvariantChecker &) = delete;

    /** @{ Attachment points (each at most once per checker). */

    /** Watch queue ordering and event lifetime invariants. */
    void attachQueue(sim::EventQueue &eq);

    /** Watch process state transitions and module lifecycles. */
    void attachKernel(kernel::Kernel &kernel);

    /** Watch counter reads on @p pmu (label used in messages). */
    void attachPmu(hw::Pmu &pmu, std::string label = "pmu");

    /** @} */

    /**
     * Treat any future dispatch of an event whose name contains
     * @p substring as a violation.  attachKernel() arranges this
     * automatically for every module that unloads, using the module
     * name (timers owned by a module carry its name by convention).
     */
    void banEventsMatching(std::string substring);

    /** @{ EventQueueListener. */
    void onSchedule(const sim::Event &ev, Tick now) override;
    void onDeschedule(const sim::Event &ev, Tick now) override;
    void onDispatch(const sim::Event &ev, Tick now) override;
    /** @} */

    /**
     * Post-hoc check of a drained K-LEB sample log: timestamps and
     * cumulative counts must be nondecreasing (the module's
     * overflow correction makes counts monotone even across wraps),
     * every sample must carry the same event count, and a `final`
     * sample may only appear in the last position.  Violations are
     * recorded like the online checks; @p label prefixes messages.
     */
    void checkSampleLog(const std::vector<kleb::Sample> &log,
                        const std::string &label = "sample log");

    /**
     * Post-hoc check of a spliced post-crash time series
     * (LogRecovery::splice): timestamps must be nondecreasing and
     * every channel except the synthetic "gap_ticks" channel must
     * be monotone — a recovered series splicing pre-crash and
     * post-restart epochs may pause across an outage but must never
     * run backwards.
     */
    void checkRecoveredSeries(const stats::TimeSeries &series,
                              const std::string &label =
                                  "recovered series");

    /**
     * Post-hoc SMP checks over a raw sample log (hotplug markers
     * included, i.e. Session::samples(), not series()):
     *
     *  - per-core sample monotonicity: among the samples attributed
     *    to any one core, timestamps and cumulative counts must be
     *    nondecreasing — migration must never interleave a core's
     *    attributed samples out of order;
     *  - no sample on an offline core: between a coreOffline marker
     *    and the matching coreOnline, no data sample may be
     *    attributed to that core (its ring was quiesced; a sample
     *    there means the timer survived the hotplug).
     */
    void checkSmpSampleLog(const std::vector<kleb::Sample> &log,
                           const std::string &label =
                               "smp sample log");

    /**
     * Post-hoc check of the module's migration ledger (DESIGN.md
     * section 16): every emitted data sample must be accounted for
     * exactly once — kept + migrated + dropped == emitted — and
     * samplesRecorded must equal kept + migrated (relocation moves
     * attribution, it never mints or destroys samples).
     */
    void checkMigrationLedger(const kleb::KLebStatus &status,
                              const std::string &label =
                                  "migration ledger");

    /**
     * Post-hoc check of a supervisor's bookkeeping: every restart
     * must pair with exactly one re-attach attempt (successful or
     * failed), and restarts can never exceed the configured budget.
     */
    void checkSupervision(const kleb::SupervisorStats &stats,
                          const std::string &label = "supervisor");

    /**
     * Post-hoc check of a recovered adaptive-sampling log: the
     * frame accounting must balance, sample timestamps must be
     * nondecreasing, every journaled rate change must carry a
     * nonzero new period and a nondecreasing timestamp, and — when
     * no frame was dropped from the medium — consecutive rate
     * changes must chain (each change's old period equals the
     * previous change's new period), proving no reprogram was lost
     * or applied twice.
     */
    void checkAdaptiveRecovery(const kleb::RecoveredLog &recovered,
                               const std::string &label =
                                   "adaptive recovery");

    /**
     * Post-hoc check of a fleet run's accounting (DESIGN.md section
     * 15): every machine's ledger must partition exactly —
     * produced == kept + dropped + vanished + quarantined — and the
     * ledger sums must equal the aggregate's accounted samples; the
     * collector's per-peer totals must agree with the ledgers; the
     * monitor tree can hold at most one observation per kept
     * record; and every quarantined machine must have at least one
     * explicit hole (absence is data, never silent zeros) while
     * healthy machines have none.
     */
    void checkFleetBalance(const fleet::FleetResult &result,
                           const std::string &label = "fleet");

    /** True when no invariant has been violated. */
    bool ok() const { return violations_.empty(); }

    const std::vector<std::string> &violations() const
    { return violations_; }

    /** All violations joined into one newline-separated string. */
    std::string report() const;

    /** Number of individual checks evaluated so far. */
    std::uint64_t checksPerformed() const { return checks_; }

    /** True if @p from -> @p to is a legal ProcState transition. */
    static bool legalTransition(kernel::ProcState from,
                                kernel::ProcState to);

  private:
    void violation(std::string msg);

    void onProcState(kernel::Process &proc, kernel::ProcState from,
                     kernel::ProcState to);
    void onModule(kernel::KernelModule &mod,
                  const std::string &dev_path, bool loaded);
    void onPmuRead(int idx, bool fixed, bool programmed);

    sim::EventQueue *eq_ = nullptr;
    kernel::Kernel *kernel_ = nullptr;
    hw::Pmu *pmu_ = nullptr;
    std::string pmuLabel_;
    int stateHookId_ = 0;
    int moduleHookId_ = 0;

    bool panicOnViolation_;
    Tick lastDispatchTick_ = 0;
    std::uint64_t checks_ = 0;
    std::vector<std::string> bannedNames_;
    std::vector<std::string> violations_;

    /**
     * Module lifecycle pairing: dev_path -> currently loaded.
     * Paths first seen at unload (loaded before the checker
     * attached) are admitted without complaint.
     */
    std::map<std::string, bool> moduleLoaded_;
};

} // namespace klebsim::analysis

#endif // KLEBSIM_ANALYSIS_INVARIANTS_HH
