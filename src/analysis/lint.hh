/**
 * @file
 * Source-level lint pass for simulator correctness.
 *
 * The simulated machine must be a closed, deterministic world, so a
 * small set of host-environment leaks are banned at the source
 * level and enforced as a tier-1 test (`ctest -R lint`):
 *
 *  - wall-clock:    host time APIs (std::chrono::system_clock,
 *                   gettimeofday, time(), ...) — simulated code
 *                   must use Ticks from the event queue;
 *  - raw-random:    rand()/std::random_device/mt19937 — all
 *                   randomness flows from base/random's seeded
 *                   PCG32 streams;
 *  - event-new:     `new EventFunctionWrapper` outside the queue —
 *                   use EventQueue::scheduleLambda so autoDelete
 *                   ownership is handled;
 *  - hot-std-function: std::function in src/sim/ and src/hw/ — the
 *                   substrate's hot paths must not heap-allocate per
 *                   callback; store sim::InlineCallable or a
 *                   concrete functor (cold setup/configuration
 *                   hooks go on the allowlist);
 *  - printf-family: raw stdio in src/ — report through
 *                   base/logging or format with base/str;
 *  - mutex-raii:    bare .lock()/.unlock() calls — mutexes are held
 *                   through RAII (TrackedLock, std::lock_guard,
 *                   std::scoped_lock) so no exit path can leak a
 *                   lock; base/thread_safety's own implementation
 *                   is the canonical carve-out;
 *  - hot-alloc:     new/make_unique/make_shared and vector-growth
 *                   calls inside a function marked KLEB_HOT — the
 *                   marked hot paths are allocation-free by
 *                   contract (base/thread_safety.hh);
 *  - detached-thread: .detach() — a detached thread outlives every
 *                   determinism and shutdown guarantee the trial
 *                   pool makes; join through bench::TrialPool;
 *  - include-guard: headers must carry the canonical KLEBSIM_*
 *                   guard derived from their path;
 *  - fault-hook-coverage: every fault point registered in the
 *                   central table (src/fault/fault_points.def) must
 *                   be wired up somewhere outside the registry
 *                   itself — a declared-but-unhooked fault point is
 *                   a coverage hole, not a feature;
 *  - heartbeat-coverage: every fault point whose spec key targets
 *                   the supervised pipeline ("controller." or
 *                   "log." prefix) must be exercised by at least
 *                   one chaos test under tests/ — a crash-path
 *                   fault nobody injects is untested recovery code;
 *  - allowlist-dangling: every allowlist entry loaded from a file
 *                   must still match at least one existing source
 *                   file AND name a rule that still exists, so
 *                   stale carve-outs cannot silently mask future
 *                   violations.
 *
 * Exceptions live in a per-rule allowlist ("rule-id path-prefix"
 * lines); the canonical carve-outs (base/random, base/logging, the
 * queue itself) are built in.
 *
 * Scanning is token-level (see token_lexer.hh): rules match
 * identifier/punctuation sequences on a comment-, string- and
 * raw-string-aware token stream, with brace tracking for the
 * scope-sensitive rules.  Custom rules registered with a non-empty
 * regex pattern still run line-wise over comment/string-stripped
 * text (the pre-token engine), so downstream users can add ad-hoc
 * bans without writing a token matcher.
 */

#ifndef KLEBSIM_ANALYSIS_LINT_HH
#define KLEBSIM_ANALYSIS_LINT_HH

#include <cstddef>
#include <regex>
#include <string>
#include <utility>
#include <vector>

namespace klebsim::analysis
{

/**
 * One rule (the include-guard check is built in).  Built-in rules
 * are matched structurally on the token stream; @p pattern is kept
 * as the executable reference semantics (the legacy line-regex
 * engine, which custom rules still run on and the parity tests
 * compare against).  Token-only structural rules (mutex-raii,
 * hot-alloc, detached-thread) have an empty pattern.
 */
struct LintRule
{
    std::string id;
    std::string pattern; //!< ECMAScript regex, applied per line
    std::string message;
    std::vector<std::string> dirs; //!< top-level dirs it applies to
};

struct LintViolation
{
    std::string rule;
    std::string file; //!< repo-relative, '/'-separated
    std::size_t line; //!< 1-based; 0 for whole-file findings
    std::string text; //!< offending source line (trimmed)
    std::string message;

    /** "file:line: [rule] text -- message" */
    std::string str() const;
};

class Linter
{
  public:
    /** Installs the default rules and canonical carve-outs. */
    Linter();

    /** Register an additional pattern rule. */
    void addRule(const LintRule &rule);

    const std::vector<LintRule> &rules() const { return rules_; }

    /** Exempt paths starting with @p path_prefix from @p rule_id. */
    void allow(const std::string &rule_id,
               const std::string &path_prefix);

    /**
     * Load "rule-id path-prefix" lines ('#' starts a comment).
     * Entries loaded this way are recorded with their origin and
     * line number so checkAllowlistEntries() can flag the stale
     * ones.
     * @return false (with @p error set) on malformed input.
     */
    bool loadAllowlist(const std::string &path,
                       std::string *error = nullptr);

    /**
     * Parse allowlist @p content as loadAllowlist() would read it
     * from a file named @p origin.  Exposed for unit tests.
     */
    bool loadAllowlistFromString(const std::string &content,
                                 const std::string &origin,
                                 std::string *error = nullptr);

    /** True if @p rel_path is exempt from @p rule_id. */
    bool allowed(const std::string &rule_id,
                 const std::string &rel_path) const;

    /** Scan one in-memory source file. */
    std::vector<LintViolation>
    scanSource(const std::string &rel_path,
               const std::string &content) const;

    /**
     * Check the fault-point registry (@p def_content, the X-macro
     * table at @p def_rel_path) against @p sources: every
     * KLEB_FAULT_POINT(name, key) entry must be referenced as
     * `FaultPoint::name` by at least one source other than the
     * registry's own parser (fault_plan.*) — evidence the point is
     * wired to a real hook.  scanTree() runs this automatically
     * when the tree contains src/fault/fault_points.def.
     */
    std::vector<LintViolation> checkFaultHookCoverage(
        const std::string &def_rel_path,
        const std::string &def_content,
        const std::vector<std::pair<std::string, std::string>>
            &sources) const;

    /**
     * Check the fault-point registry's supervised-pipeline entries
     * against the chaos tests: every KLEB_FAULT_POINT whose spec
     * key starts with "controller." or "log." must have its key
     * appear in at least one of @p tests (rel-path/content pairs
     * from tests/).  scanTree() runs this automatically.
     */
    std::vector<LintViolation> checkHeartbeatCoverage(
        const std::string &def_rel_path,
        const std::string &def_content,
        const std::vector<std::pair<std::string, std::string>>
            &tests) const;

    /**
     * Verify every file-loaded allowlist entry still matches at
     * least one path in @p files (repo-relative) AND names a rule
     * this linter knows (pattern/token rules or one of the built-in
     * checks).  Dangling entries are reported against the allowlist
     * file itself, so pruning a source file — or retiring a rule —
     * forces its carve-outs to be pruned too.
     */
    std::vector<LintViolation> checkAllowlistEntries(
        const std::vector<std::string> &files) const;

    /** True if @p rule_id names a pattern/token or built-in rule. */
    bool knownRule(const std::string &rule_id) const;

    /** Scan src/, bench/ and examples/ under @p root. */
    std::vector<LintViolation>
    scanTree(const std::string &root) const;

    /** Canonical guard name for a header path (src/ is elided). */
    static std::string expectedGuard(const std::string &rel_path);

  private:
    bool ruleApplies(const LintRule &rule,
                     const std::string &rel_path) const;

    void checkGuard(const std::string &rel_path,
                    const std::vector<std::string> &lines,
                    std::vector<LintViolation> &out) const;

    /** One allowlist line loaded from a file (origin for reports). */
    struct AllowlistEntry
    {
        std::string rule;
        std::string prefix;
        std::string origin;
        std::size_t line;
    };

    std::vector<LintRule> rules_;
    std::vector<std::regex> compiled_;
    std::vector<std::pair<std::string, std::string>> allow_;
    std::vector<AllowlistEntry> loaded_;
};

} // namespace klebsim::analysis

#endif // KLEBSIM_ANALYSIS_LINT_HH
