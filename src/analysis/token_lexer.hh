/**
 * @file
 * Token-level C++ lexer for the lint pass.
 *
 * The line-regex scanner the linter started with could not see past
 * a line boundary and treated raw string literals as ordinary ones,
 * so a raw string with an embedded quote would leak half its body
 * back into "code".  This lexer produces a real token stream —
 * comment-, string-, char- and raw-string-aware, with 1-based line
 * numbers on every token — that the rules match structurally
 * (identifier adjacency, brace depth) instead of textually.
 *
 * It is deliberately not a full C++ lexer: numbers are lumped into
 * one token, most punctuation is single characters (only `::` and
 * `->` are fused, because the rules need them), and preprocessor
 * directives are tokenized like ordinary code.  That is exactly
 * enough for lint rules, and simple enough to trust.
 */

#ifndef KLEBSIM_ANALYSIS_TOKEN_LEXER_HH
#define KLEBSIM_ANALYSIS_TOKEN_LEXER_HH

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace klebsim::analysis
{

enum class TokKind
{
    identifier, //!< identifiers and keywords
    number,     //!< any pp-number (integer/float, any base/suffix)
    stringLit,  //!< "...", prefixed (L/u/u8/U) and raw (R"...")
    charLit,    //!< '...', prefixed
    punct,      //!< operators/punctuation; `::` and `->` are fused
};

struct Token
{
    TokKind kind;
    std::string text;  //!< source spelling (literals keep quotes)
    std::size_t line;  //!< 1-based line the token starts on

    bool
    is(TokKind k, std::string_view s) const
    {
        return kind == k && text == s;
    }

    bool isIdent(std::string_view s) const
    { return is(TokKind::identifier, s); }

    bool isPunct(std::string_view s) const
    { return is(TokKind::punct, s); }
};

/**
 * Tokenize @p content.  Never fails: unterminated constructs are
 * closed at end of line (strings/chars) or end of input (block
 * comments, raw strings), matching how a lenient scanner should
 * degrade on malformed input.
 */
std::vector<Token> lexTokens(const std::string &content);

} // namespace klebsim::analysis

#endif // KLEBSIM_ANALYSIS_TOKEN_LEXER_HH
