#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <map>
#include <set>
#include <sstream>

#include "base/str.hh"
#include "token_lexer.hh"

namespace klebsim::analysis
{

namespace fs = std::filesystem;

namespace
{

const char *const scannedDirs[] = {"src", "bench", "examples"};

bool
sourceExtension(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".h";
}

bool
headerExtension(const std::string &rel_path)
{
    return rel_path.ends_with(".hh") || rel_path.ends_with(".h");
}

std::string
trimmed(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

/**
 * Remove comments and the contents of string/char literals so that
 * documentation or a table heading mentioning a banned API does not
 * trip the rules.  Tracks block-comment state across lines; raw
 * string literals are treated like ordinary ones (good enough for a
 * lenient scan — a missed violation inside one is acceptable).
 */
std::vector<std::string>
stripCommentsAndStrings(const std::vector<std::string> &lines)
{
    std::vector<std::string> out;
    out.reserve(lines.size());
    bool in_block = false;
    for (const std::string &line : lines) {
        std::string kept;
        for (std::size_t i = 0; i < line.size();) {
            if (in_block) {
                if (line.compare(i, 2, "*/") == 0) {
                    in_block = false;
                    i += 2;
                } else {
                    ++i;
                }
                continue;
            }
            if (line.compare(i, 2, "/*") == 0) {
                in_block = true;
                i += 2;
                continue;
            }
            if (line.compare(i, 2, "//") == 0)
                break;
            char c = line[i];
            if (c == '"' || c == '\'') {
                // Skip the literal body; literals do not span lines.
                kept += c;
                ++i;
                while (i < line.size() && line[i] != c) {
                    if (line[i] == '\\')
                        ++i;
                    ++i;
                }
                if (i < line.size()) {
                    kept += c;
                    ++i;
                }
                continue;
            }
            kept += c;
            ++i;
        }
        out.push_back(std::move(kept));
    }
    return out;
}

/** Rule ids the token engine implements structurally. */
bool
tokenImplemented(const std::string &id)
{
    return id == "wall-clock" || id == "raw-random" ||
           id == "event-new" || id == "raw-thread" ||
           id == "hot-std-function" || id == "printf-family" ||
           id == "mutex-raii" || id == "hot-alloc" ||
           id == "detached-thread" || id == "percpu-access";
}

bool
nameContains(std::string_view name, std::string_view needle)
{
    std::string lower;
    lower.reserve(name.size());
    for (char c : name)
        lower += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return lower.find(needle) != std::string::npos;
}

/** Identifier naming per-CPU state (perCpu_, per_cpu_rings, ...). */
bool
isPerCpuName(std::string_view name)
{
    return nameContains(name, "percpu") ||
           nameContains(name, "per_cpu");
}

/** Identifier that is legibly a core index (core, cpu, src_core). */
bool
isCoreishName(std::string_view name)
{
    return name == "CoreId" || nameContains(name, "core") ||
           nameContains(name, "cpu");
}

bool
identIn(const Token &t,
        std::initializer_list<std::string_view> names)
{
    if (t.kind != TokKind::identifier)
        return false;
    for (std::string_view n : names)
        if (t.text == n)
            return true;
    return false;
}

/** (rule index, line) pair recorded by the token matchers. */
struct TokenHit
{
    std::size_t rule;
    std::size_t line;
};

/**
 * Run every active built-in rule over the token stream in one
 * pass.  @p active maps rule index -> enabled; matchers record one
 * hit per match (the caller dedupes per line).
 */
void
matchTokenRules(const std::vector<Token> &toks,
                const std::vector<const LintRule *> &active,
                std::vector<TokenHit> &hits)
{
    auto at = [&toks](std::size_t i) -> const Token * {
        return i < toks.size() ? &toks[i] : nullptr;
    };
    auto enabled = [&active](std::size_t r) {
        return active[r] != nullptr;
    };
    auto hit = [&hits](std::size_t r, std::size_t line) {
        hits.push_back({r, line});
    };

    // hot-alloc scope state: brace depth, an "armed" flag set by a
    // KLEB_HOT marker (cleared by a `;` before any body opens), and
    // a stack of depths at which hot bodies started.
    int depth = 0;
    bool hotArmed = false;
    std::vector<int> hotBodies;

    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];

        // Scope tracking (independent of any rule being enabled so
        // the state machine stays consistent).
        if (t.isPunct("{")) {
            ++depth;
            if (hotArmed) {
                hotBodies.push_back(depth);
                hotArmed = false;
            }
        } else if (t.isPunct("}")) {
            if (!hotBodies.empty() && hotBodies.back() == depth)
                hotBodies.pop_back();
            --depth;
        } else if (t.isPunct(";")) {
            hotArmed = false; // declaration without a body
        } else if (t.isIdent("KLEB_HOT")) {
            hotArmed = true;
        }

        for (std::size_t r = 0; r < active.size(); ++r) {
            if (!enabled(r))
                continue;
            const std::string &id = active[r]->id;

            if (id == "wall-clock") {
                if (t.isIdent("std") && at(i + 1) &&
                    at(i + 1)->isPunct("::") && at(i + 2) &&
                    at(i + 2)->isIdent("chrono") && at(i + 3) &&
                    at(i + 3)->isPunct("::") && at(i + 4) &&
                    identIn(*at(i + 4),
                            {"system_clock", "steady_clock",
                             "high_resolution_clock"}))
                    hit(r, t.line);
                if (identIn(t, {"gettimeofday", "clock_gettime",
                                "localtime", "gmtime", "mktime",
                                "asctime", "ctime", "time"}) &&
                    at(i + 1) && at(i + 1)->isPunct("("))
                    hit(r, t.line);
            } else if (id == "raw-random") {
                if (identIn(t, {"rand", "srand", "srandom",
                                "drand48", "lrand48"}) &&
                    at(i + 1) && at(i + 1)->isPunct("("))
                    hit(r, t.line);
                if (t.isIdent("std") && at(i + 1) &&
                    at(i + 1)->isPunct("::") && at(i + 2) &&
                    at(i + 2)->isIdent("random_device"))
                    hit(r, t.line);
                if (t.kind == TokKind::identifier &&
                    t.text.starts_with("mt19937"))
                    hit(r, t.line);
            } else if (id == "event-new") {
                if (t.isIdent("new")) {
                    std::size_t j = i + 1;
                    if (at(j) && at(j)->isIdent("klebsim") &&
                        at(j + 1) && at(j + 1)->isPunct("::"))
                        j += 2;
                    if (at(j) && at(j)->isIdent("sim") &&
                        at(j + 1) && at(j + 1)->isPunct("::"))
                        j += 2;
                    if (at(j) &&
                        at(j)->isIdent("EventFunctionWrapper"))
                        hit(r, t.line);
                }
            } else if (id == "raw-thread") {
                if (t.isIdent("std") && at(i + 1) &&
                    at(i + 1)->isPunct("::") && at(i + 2) &&
                    identIn(*at(i + 2), {"thread", "jthread"}) &&
                    !(at(i + 3) && at(i + 3)->isPunct("::")))
                    hit(r, t.line);
            } else if (id == "hot-std-function") {
                if (t.isIdent("std") && at(i + 1) &&
                    at(i + 1)->isPunct("::") && at(i + 2) &&
                    at(i + 2)->isIdent("function") && at(i + 3) &&
                    at(i + 3)->isPunct("<"))
                    hit(r, t.line);
            } else if (id == "printf-family") {
                if (identIn(t, {"printf", "fprintf", "sprintf",
                                "snprintf", "vsnprintf", "vsprintf",
                                "vfprintf", "puts", "putchar",
                                "fputs"}) &&
                    at(i + 1) && at(i + 1)->isPunct("("))
                    hit(r, t.line);
                if (t.isIdent("std") && at(i + 1) &&
                    at(i + 1)->isPunct("::") && at(i + 2) &&
                    identIn(*at(i + 2), {"cout", "cerr"}))
                    hit(r, t.line);
            } else if (id == "mutex-raii") {
                if ((t.isPunct(".") || t.isPunct("->")) &&
                    at(i + 1) &&
                    identIn(*at(i + 1), {"lock", "unlock"}) &&
                    at(i + 2) && at(i + 2)->isPunct("("))
                    hit(r, at(i + 1)->line);
            } else if (id == "detached-thread") {
                if ((t.isPunct(".") || t.isPunct("->")) &&
                    at(i + 1) && at(i + 1)->isIdent("detach") &&
                    at(i + 2) && at(i + 2)->isPunct("("))
                    hit(r, at(i + 1)->line);
            } else if (id == "percpu-access") {
                if (t.kind == TokKind::identifier &&
                    isPerCpuName(t.text) && at(i + 1) &&
                    at(i + 1)->isPunct("[")) {
                    // Walk the index expression (respecting nested
                    // brackets): an identifier that legibly names a
                    // core — including the CoreId inside a cast —
                    // makes the access auditable; anything else
                    // (loop counters, pids, literals) is flagged.
                    bool coreish = false;
                    int brackets = 1;
                    for (std::size_t j = i + 2;
                         at(j) && brackets > 0; ++j) {
                        const Token &u = *at(j);
                        if (u.isPunct("["))
                            ++brackets;
                        else if (u.isPunct("]"))
                            --brackets;
                        else if (u.kind == TokKind::identifier &&
                                 isCoreishName(u.text))
                            coreish = true;
                    }
                    if (!coreish)
                        hit(r, t.line);
                }
            } else if (id == "hot-alloc") {
                if (hotBodies.empty())
                    continue;
                if (t.isIdent("new"))
                    hit(r, t.line);
                if (identIn(t, {"make_unique", "make_shared"}))
                    hit(r, t.line);
                if ((t.isPunct(".") || t.isPunct("->")) &&
                    at(i + 1) &&
                    identIn(*at(i + 1),
                            {"push_back", "emplace_back", "resize",
                             "reserve"}) &&
                    at(i + 2) && at(i + 2)->isPunct("("))
                    hit(r, at(i + 1)->line);
            }
        }
    }
}

} // anonymous namespace

std::string
LintViolation::str() const
{
    if (line == 0)
        return csprintf("%s: [%s] %s -- %s", file.c_str(),
                        rule.c_str(), text.c_str(), message.c_str());
    return csprintf("%s:%zu: [%s] %s -- %s", file.c_str(), line,
                    rule.c_str(), text.c_str(), message.c_str());
}

Linter::Linter()
{
    addRule({"wall-clock",
             R"(std::chrono::(system_clock|steady_clock|high_resolution_clock))"
             R"(|\b(gettimeofday|clock_gettime|localtime|gmtime|mktime|asctime|ctime)\s*\()"
             R"(|\btime\s*\()",
             "host wall-clock APIs leak nondeterminism; use "
             "simulated Ticks (base/types.hh)",
             {"src", "bench", "examples"}});

    addRule({"raw-random",
             R"(\b(rand|srand|srandom|drand48|lrand48)\s*\()"
             R"(|std::random_device|\bmt19937)",
             "unseeded/global randomness breaks replay; draw from a "
             "forked base/random stream",
             {"src", "bench", "examples"}});

    addRule({"event-new",
             R"(new\s+(klebsim::)?(sim::)?EventFunctionWrapper)",
             "raw wrapper allocation loses autoDelete ownership; "
             "use EventQueue::scheduleLambda",
             {"src", "bench", "examples"}});

    addRule({"raw-thread",
             R"(std::j?thread\b(?!::))",
             "raw thread construction bypasses the trial pool's "
             "determinism contract; fan work out through "
             "bench::TrialPool (bench_support/trial_pool.hh)",
             {"src", "bench", "examples"}});

    addRule({"hot-std-function",
             R"(std::function\s*<)",
             "std::function heap-allocates captured state on the "
             "simulator's hot paths; store sim::InlineCallable "
             "(sim/inline_callable.hh) or a concrete functor "
             "instead (allowlist cold setup/configuration hooks)",
             {"src/sim", "src/hw"}});

    addRule({"printf-family",
             R"(\b(printf|fprintf|sprintf|snprintf|vsnprintf|vsprintf|vfprintf|puts|putchar|fputs)\s*\()"
             R"(|std::(cout|cerr))",
             "raw stdio in the simulator; report through "
             "base/logging or format with base/str",
             {"src"}});

    addRule({"mutex-raii",
             "", // token-structural: (.|->) lock/unlock (
             "bare lock()/unlock() can leak the mutex on early "
             "return or throw; hold it through TrackedLock "
             "(base/thread_safety.hh) or std::lock_guard",
             {"src", "bench", "examples"}});

    addRule({"hot-alloc",
             "", // token-structural: allocation inside a KLEB_HOT body
             "KLEB_HOT functions are allocation-free by contract; "
             "hoist the allocation out of the hot path or drop the "
             "marker",
             {"src", "bench", "examples"}});

    addRule({"detached-thread",
             "", // token-structural: (.|->) detach (
             "a detached thread escapes every join/determinism "
             "guarantee; fan work out through bench::TrialPool and "
             "join it",
             {"src", "bench", "examples"}});

    addRule({"percpu-access",
             "", // token-structural: perCpu container indexed by a
                 // non-core expression
             "per-CPU state indexed by something that is not "
             "legibly a core id; index with the CoreId (or a "
             "core/cpu-named variable) so cross-core aliasing is "
             "auditable",
             {"src", "bench", "examples"}});

    // Canonical carve-outs: the facilities the rules point at.
    allow("raw-random", "src/base/random");
    allow("printf-family", "src/base/logging.cc");
    allow("printf-family", "src/base/str.cc");
    allow("event-new", "src/sim/event_queue.cc");
    allow("raw-thread", "src/bench_support/trial_pool");
    allow("mutex-raii", "src/base/thread_safety");
}

void
Linter::addRule(const LintRule &rule)
{
    rules_.push_back(rule);
    // Token-structural rules carry no regex; park an empty regex to
    // keep the two vectors index-aligned.
    compiled_.emplace_back(rule.pattern.empty()
                               ? std::regex()
                               : std::regex(rule.pattern,
                                            std::regex::ECMAScript |
                                                std::regex::optimize));
}

void
Linter::allow(const std::string &rule_id,
              const std::string &path_prefix)
{
    allow_.emplace_back(rule_id, path_prefix);
}

bool
Linter::loadAllowlist(const std::string &path, std::string *error)
{
    std::ifstream in(path, std::ios::in | std::ios::binary);
    if (!in) {
        if (error)
            *error = "cannot open allowlist: " + path;
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return loadAllowlistFromString(buf.str(), path, error);
}

bool
Linter::loadAllowlistFromString(const std::string &content,
                                const std::string &origin,
                                std::string *error)
{
    std::istringstream in(content);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        std::string body = line.substr(0, line.find('#'));
        std::istringstream fields(body);
        std::string rule, prefix, extra;
        if (!(fields >> rule))
            continue; // blank or comment-only line
        if (!(fields >> prefix) || (fields >> extra)) {
            if (error)
                *error = csprintf("%s:%zu: expected 'rule-id "
                                  "path-prefix'", origin.c_str(),
                                  lineno);
            return false;
        }
        allow(rule, prefix);
        loaded_.push_back({rule, prefix, origin, lineno});
    }
    return true;
}

bool
Linter::allowed(const std::string &rule_id,
                const std::string &rel_path) const
{
    for (const auto &[rule, prefix] : allow_)
        if (rule == rule_id && rel_path.starts_with(prefix))
            return true;
    return false;
}

bool
Linter::ruleApplies(const LintRule &rule,
                    const std::string &rel_path) const
{
    for (const std::string &dir : rule.dirs)
        if (rel_path.starts_with(dir + "/"))
            return true;
    return false;
}

std::string
Linter::expectedGuard(const std::string &rel_path)
{
    std::string p = rel_path;
    if (p.starts_with("src/"))
        p = p.substr(4);
    std::string guard = "KLEBSIM_";
    for (char c : p) {
        guard += std::isalnum(static_cast<unsigned char>(c))
                     ? static_cast<char>(
                           std::toupper(static_cast<unsigned char>(c)))
                     : '_';
    }
    return guard;
}

void
Linter::checkGuard(const std::string &rel_path,
                   const std::vector<std::string> &lines,
                   std::vector<LintViolation> &out) const
{
    static const std::string rule = "include-guard";
    if (allowed(rule, rel_path))
        return;

    const std::string expected = expectedGuard(rel_path);
    std::size_t ifndef_line = 0;
    std::string found;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string t = trimmed(lines[i]);
        if (t.starts_with("#ifndef")) {
            found = trimmed(t.substr(7));
            ifndef_line = i + 1;
            break;
        }
        // Any other preprocessor directive or code before the
        // guard means there is no guard at the top.
        if (!t.empty() && !t.starts_with("//") &&
            !t.starts_with("/*") && !t.starts_with("*"))
            break;
    }

    if (found.empty()) {
        out.push_back({rule, rel_path, 0, "missing include guard",
                       "expected '#ifndef " + expected + "'"});
        return;
    }
    if (found != expected) {
        out.push_back({rule, rel_path, ifndef_line, "#ifndef " + found,
                       "guard should be " + expected});
        return;
    }
    // The #define must immediately follow and match.
    if (ifndef_line >= lines.size() ||
        trimmed(lines[ifndef_line]) != "#define " + expected) {
        out.push_back({rule, rel_path, ifndef_line,
                       "#ifndef " + found,
                       "'#define " + expected +
                           "' must follow the guard"});
    }
}

std::vector<LintViolation>
Linter::scanSource(const std::string &rel_path,
                   const std::string &content) const
{
    std::vector<LintViolation> out;

    std::vector<std::string> lines;
    std::string line;
    std::istringstream in(content);
    while (std::getline(in, line))
        lines.push_back(line);

    if (headerExtension(rel_path))
        checkGuard(rel_path, lines, out);

    auto lineText = [&lines](std::size_t lineno) {
        return lineno >= 1 && lineno <= lines.size()
                   ? trimmed(lines[lineno - 1])
                   : std::string();
    };

    // Token engine: every built-in rule matches structurally on one
    // shared token stream.
    std::vector<const LintRule *> active(rules_.size(), nullptr);
    bool anyToken = false;
    for (std::size_t r = 0; r < rules_.size(); ++r) {
        const LintRule &rule = rules_[r];
        if (!tokenImplemented(rule.id) ||
            !ruleApplies(rule, rel_path) ||
            allowed(rule.id, rel_path))
            continue;
        active[r] = &rule;
        anyToken = true;
    }
    if (anyToken) {
        const std::vector<Token> toks = lexTokens(content);
        std::vector<TokenHit> hits;
        matchTokenRules(toks, active, hits);
        // Report per (rule, line) — a line that trips a rule twice
        // is still one finding — ordered rule-major then by line,
        // the order the line engine produced.
        std::sort(hits.begin(), hits.end(),
                  [](const TokenHit &a, const TokenHit &b) {
                      return a.rule != b.rule ? a.rule < b.rule
                                              : a.line < b.line;
                  });
        const TokenHit *last = nullptr;
        for (const TokenHit &h : hits) {
            if (last && last->rule == h.rule && last->line == h.line)
                continue;
            last = &h;
            out.push_back({rules_[h.rule].id, rel_path, h.line,
                           lineText(h.line),
                           rules_[h.rule].message});
        }
    }

    // Legacy line-regex engine for custom (non-built-in) rules.
    bool anyRegex = false;
    for (std::size_t r = 0; r < rules_.size(); ++r)
        if (!rules_[r].pattern.empty() &&
            !tokenImplemented(rules_[r].id))
            anyRegex = true;
    if (anyRegex) {
        const std::vector<std::string> code =
            stripCommentsAndStrings(lines);
        for (std::size_t r = 0; r < rules_.size(); ++r) {
            const LintRule &rule = rules_[r];
            if (rule.pattern.empty() || tokenImplemented(rule.id) ||
                !ruleApplies(rule, rel_path) ||
                allowed(rule.id, rel_path))
                continue;
            for (std::size_t i = 0; i < code.size(); ++i) {
                if (std::regex_search(code[i], compiled_[r]))
                    out.push_back({rule.id, rel_path, i + 1,
                                   trimmed(lines[i]),
                                   rule.message});
            }
        }
    }
    return out;
}

std::vector<LintViolation>
Linter::checkFaultHookCoverage(
    const std::string &def_rel_path, const std::string &def_content,
    const std::vector<std::pair<std::string, std::string>> &sources)
    const
{
    static const std::string rule = "fault-hook-coverage";
    std::vector<LintViolation> out;
    if (allowed(rule, def_rel_path))
        return out;

    static const std::regex entry(
        R"(KLEB_FAULT_POINT\(\s*([A-Za-z_]\w*))",
        std::regex::ECMAScript | std::regex::optimize);

    auto references = [](const std::string &content,
                         const std::string &name) {
        const std::string needle = "FaultPoint::" + name;
        for (std::size_t pos = content.find(needle);
             pos != std::string::npos;
             pos = content.find(needle, pos + 1)) {
            std::size_t end = pos + needle.size();
            char next = end < content.size() ? content[end] : ' ';
            if (!std::isalnum(static_cast<unsigned char>(next)) &&
                next != '_')
                return true;
        }
        return false;
    };

    auto isRegistryFile = [](const std::string &rel) {
        std::size_t slash = rel.find_last_of('/');
        std::string base =
            slash == std::string::npos ? rel : rel.substr(slash + 1);
        return base.starts_with("fault_plan.") ||
               base.starts_with("fault_points.");
    };

    std::vector<std::string> lines;
    {
        std::istringstream in(def_content);
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
    }
    // The spec key lives inside a string literal (which the stripper
    // blanks), so key extraction matches the raw line — but only on
    // lines that survive comment stripping, so the table's own
    // documentation does not register entries.
    static const std::regex keyed(
        R"re(KLEB_FAULT_POINT\(\s*([A-Za-z_]\w*)\s*,\s*"([^"]*)")re",
        std::regex::ECMAScript | std::regex::optimize);

    // Strip comments so the table's own documentation (which shows
    // the macro form) is not mistaken for an entry.
    const std::vector<std::string> code =
        stripCommentsAndStrings(lines);
    std::map<std::string, std::size_t> seen_names;
    std::map<std::string, std::size_t> seen_keys;
    for (std::size_t i = 0; i < code.size(); ++i) {
        const std::size_t lineno = i + 1;
        std::smatch m;
        if (!std::regex_search(code[i], m, entry))
            continue;
        const std::string name = m[1].str();

        // Registering the same enumerator or the same spec key twice
        // would make the later entry shadow the earlier one in the
        // parser's if/else chain — one of the two faults becomes
        // unreachable from any spec string.
        auto [name_it, name_fresh] =
            seen_names.emplace(name, lineno);
        if (!name_fresh)
            out.push_back(
                {rule, def_rel_path, lineno, trimmed(lines[i]),
                 csprintf("fault point '%s' is registered twice "
                          "(first registered on line %zu)",
                          name.c_str(), name_it->second)});
        std::smatch km;
        if (std::regex_search(lines[i], km, keyed)) {
            const std::string key = km[2].str();
            auto [key_it, key_fresh] =
                seen_keys.emplace(key, lineno);
            if (!key_fresh)
                out.push_back(
                    {rule, def_rel_path, lineno, trimmed(lines[i]),
                     csprintf("fault spec key '%s' is registered "
                              "twice (first registered on line %zu)",
                              key.c_str(), key_it->second)});
        }

        bool hooked = false;
        for (const auto &[rel, content] : sources) {
            if (isRegistryFile(rel))
                continue;
            if (references(content, name)) {
                hooked = true;
                break;
            }
        }
        if (!hooked)
            out.push_back(
                {rule, def_rel_path, lineno, trimmed(lines[i]),
                 "fault point '" + name +
                     "' is registered but never wired to a hook "
                     "(no FaultPoint::" + name +
                     " reference outside the registry)"});
    }
    return out;
}

std::vector<LintViolation>
Linter::checkHeartbeatCoverage(
    const std::string &def_rel_path, const std::string &def_content,
    const std::vector<std::pair<std::string, std::string>> &tests)
    const
{
    static const std::string rule = "heartbeat-coverage";
    std::vector<LintViolation> out;
    if (allowed(rule, def_rel_path))
        return out;

    // The spec key lives inside a string literal, so match the raw
    // line — but only on lines that survive comment stripping, so
    // the table's own documentation does not register entries.
    static const std::regex entry(
        R"re(KLEB_FAULT_POINT\(\s*([A-Za-z_]\w*)\s*,\s*"([^"]+)")re",
        std::regex::ECMAScript | std::regex::optimize);

    std::vector<std::string> lines;
    {
        std::istringstream in(def_content);
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
    }
    const std::vector<std::string> code =
        stripCommentsAndStrings(lines);
    for (std::size_t i = 0; i < code.size(); ++i) {
        if (code[i].find("KLEB_FAULT_POINT") == std::string::npos)
            continue;
        std::smatch m;
        if (!std::regex_search(lines[i], m, entry))
            continue;
        const std::string key = m[2].str();
        if (!key.starts_with("controller.") &&
            !key.starts_with("log."))
            continue;
        bool exercised = false;
        for (const auto &[rel, content] : tests) {
            (void)rel;
            if (content.find(key) != std::string::npos) {
                exercised = true;
                break;
            }
        }
        if (!exercised)
            out.push_back(
                {rule, def_rel_path, i + 1, trimmed(lines[i]),
                 "supervised-pipeline fault point '" + key +
                     "' is never injected by a chaos test under "
                     "tests/"});
    }
    return out;
}

std::vector<LintViolation>
Linter::checkAllowlistEntries(
    const std::vector<std::string> &files) const
{
    static const std::string rule = "allowlist-dangling";
    std::vector<LintViolation> out;
    for (const AllowlistEntry &entry : loaded_) {
        if (!knownRule(entry.rule)) {
            out.push_back(
                {rule, entry.origin, entry.line,
                 entry.rule + " " + entry.prefix,
                 "allowlist entry names unknown rule '" +
                     entry.rule + "'; prune it"});
            continue;
        }
        bool matches = false;
        for (const std::string &rel : files) {
            if (rel.starts_with(entry.prefix)) {
                matches = true;
                break;
            }
        }
        if (!matches)
            out.push_back(
                {rule, entry.origin, entry.line,
                 entry.rule + " " + entry.prefix,
                 "allowlist entry matches no existing source file; "
                 "prune it"});
    }
    return out;
}

bool
Linter::knownRule(const std::string &rule_id) const
{
    for (const LintRule &rule : rules_)
        if (rule.id == rule_id)
            return true;
    return rule_id == "include-guard" ||
           rule_id == "fault-hook-coverage" ||
           rule_id == "heartbeat-coverage" ||
           rule_id == "allowlist-dangling";
}

std::vector<LintViolation>
Linter::scanTree(const std::string &root) const
{
    std::vector<LintViolation> out;
    std::vector<std::string> files;
    for (const char *dir : scannedDirs) {
        fs::path base = fs::path(root) / dir;
        if (!fs::exists(base))
            continue;
        for (const auto &entry :
             fs::recursive_directory_iterator(base)) {
            if (entry.is_regular_file() &&
                sourceExtension(entry.path()))
                files.push_back(
                    fs::relative(entry.path(), root)
                        .generic_string());
        }
    }
    std::sort(files.begin(), files.end());

    auto slurp = [&root](const std::string &rel) {
        std::ifstream in(fs::path(root) / rel,
                         std::ios::in | std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        return buf.str();
    };

    std::vector<std::pair<std::string, std::string>> sources;
    sources.reserve(files.size());
    for (const std::string &rel : files) {
        sources.emplace_back(rel, slurp(rel));
        auto file_violations =
            scanSource(rel, sources.back().second);
        out.insert(out.end(), file_violations.begin(),
                   file_violations.end());
    }

    // The chaos tests are not pattern-scanned (tests may use raw
    // stdio etc.), but heartbeat coverage and allowlist hygiene
    // need to see them.
    std::vector<std::string> testFiles;
    {
        fs::path base = fs::path(root) / "tests";
        if (fs::exists(base)) {
            for (const auto &entry :
                 fs::recursive_directory_iterator(base)) {
                if (entry.is_regular_file() &&
                    sourceExtension(entry.path()))
                    testFiles.push_back(
                        fs::relative(entry.path(), root)
                            .generic_string());
            }
        }
        std::sort(testFiles.begin(), testFiles.end());
    }

    const std::string def_rel = "src/fault/fault_points.def";
    if (fs::exists(fs::path(root) / def_rel)) {
        const std::string def_content = slurp(def_rel);
        auto def_violations =
            checkFaultHookCoverage(def_rel, def_content, sources);
        out.insert(out.end(), def_violations.begin(),
                   def_violations.end());

        std::vector<std::pair<std::string, std::string>> tests;
        tests.reserve(testFiles.size());
        for (const std::string &rel : testFiles)
            tests.emplace_back(rel, slurp(rel));
        auto hb_violations =
            checkHeartbeatCoverage(def_rel, def_content, tests);
        out.insert(out.end(), hb_violations.begin(),
                   hb_violations.end());
    }

    // Stale-allowlist audit: entries must point at files that still
    // exist somewhere lintable (including tests/ and tools/, which
    // allowlists may legitimately reference).
    std::vector<std::string> allFiles = files;
    allFiles.insert(allFiles.end(), testFiles.begin(),
                    testFiles.end());
    {
        fs::path base = fs::path(root) / "tools";
        if (fs::exists(base)) {
            for (const auto &entry :
                 fs::recursive_directory_iterator(base)) {
                if (entry.is_regular_file())
                    allFiles.push_back(
                        fs::relative(entry.path(), root)
                            .generic_string());
            }
        }
    }
    auto allow_violations = checkAllowlistEntries(allFiles);
    out.insert(out.end(), allow_violations.begin(),
               allow_violations.end());
    return out;
}

} // namespace klebsim::analysis
