/**
 * @file
 * The execution interface between workloads and the CPU core model.
 *
 * Workloads describe their behaviour as a stream of WorkChunks — a
 * few tens of microseconds of execution each, carrying an
 * instruction-class mix and a memory-access generator.  The CPU
 * consumes chunks, runs their memory accesses through the cache
 * hierarchy, costs them in cycles, and attributes the resulting
 * hardware events to the PMU over simulated time.
 */

#ifndef KLEBSIM_HW_EXEC_TYPES_HH
#define KLEBSIM_HW_EXEC_TYPES_HH

#include <cstddef>
#include <cstdint>

#include "base/types.hh"
#include "perf_event.hh"

namespace klebsim::hw
{

class MemHierarchy;

/** One memory reference produced by an AddressStream. */
struct MemRef
{
    Addr addr = 0;
    bool write = false;
};

/**
 * Generator of a workload's memory reference stream.  Owned by the
 * workload; the CPU pulls from it while executing a chunk.
 */
class AddressStream
{
  public:
    virtual ~AddressStream() = default;

    /** Produce the next reference. */
    virtual MemRef next() = 0;

    /**
     * Produce the next @p n references into SoA lanes: addresses
     * into @p addrs, write flags (0/1) into @p writes.  Must emit
     * exactly the sequence n calls to next() would — same values,
     * same RNG draws — so the batched chunk engine is bit-identical
     * to the interpreter.  The default does exactly that (one
     * virtual next() per element); concrete streams override it
     * with a devirtualized loop over the same per-element step.
     */
    virtual void
    fillBatch(Addr *addrs, std::uint8_t *writes, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i) {
            MemRef ref = next();
            addrs[i] = ref.addr;
            writes[i] = ref.write ? 1 : 0;
        }
    }
};

/**
 * A slice of work: instruction-class counts plus memory behaviour.
 *
 * Two fidelities exist:
 *  - normal chunks carry a stream; the CPU issues up to the machine's
 *    memSampleCap real accesses and extrapolates the rest;
 *  - preExecuted chunks (used by the Meltdown attack, which needs
 *    access-by-access cache semantics and latency feedback) have
 *    already performed their accesses against the hierarchy and carry
 *    final event counts and stall cycles.
 */
struct WorkChunk
{
    /** Total instructions retired by the chunk. */
    std::uint64_t instructions = 0;

    /** @{ Instruction-class breakdown (each <= instructions). */
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t muls = 0;
    std::uint64_t divs = 0;
    std::uint64_t fpops = 0;
    /** @} */

    /** Fraction of branches mispredicted. */
    double mispredictRate = 0.02;

    /** IPC in the absence of memory stalls and branch penalties. */
    double baseIpc = 2.0;

    /**
     * Scales the machine's memory-stall exposure for this chunk.
     * Streaming phases with prefetch-friendly (sequential) access
     * hide most of their miss latency on real hardware; they set
     * this well below 1.0.
     */
    double stallExposureScale = 1.0;

    /** Floating-point operations performed (GFLOPS accounting). */
    double flops = 0.0;

    /** Privilege the chunk executes at. */
    PrivLevel priv = PrivLevel::user;

    /** Memory reference generator (may be null if loads+stores==0). */
    AddressStream *stream = nullptr;

    /** @{ Pre-executed chunks (exact-access mode). */
    bool preExecuted = false;
    EventVector preEvents{};       //!< final event counts
    std::uint64_t preStallCycles = 0;
    /** @} */

    /**
     * If nonzero, the chunk's cycle cost is taken verbatim instead
     * of being derived from the IPC/stall model.  Used to model
     * fixed-cost instrumentation points (PAPI/LiMiT read regions)
     * embedded in a workload.
     */
    std::uint64_t fixedCycles = 0;
};

/**
 * A workload as seen by the CPU: a pull-based chunk source.
 */
class WorkSource
{
  public:
    virtual ~WorkSource() = default;

    /** True once the workload has emitted its last chunk. */
    virtual bool done() const = 0;

    /**
     * Produce the next chunk.  Must not be called once done().
     * Called at prepare time with the executing core's memory
     * hierarchy, so exact-access workloads can probe it directly.
     */
    virtual WorkChunk nextChunk(MemHierarchy &mem) = 0;

    /** Reset to the beginning (for repeated trials). */
    virtual void reset() = 0;
};

} // namespace klebsim::hw

#endif // KLEBSIM_HW_EXEC_TYPES_HH
