/**
 * @file
 * Set-associative cache model with pluggable replacement policy.
 *
 * This is a functional tag-array model: it tracks which lines are
 * resident and reports hit/miss per access.  The Meltdown case study
 * depends on its exact semantics (CLFLUSH invalidation + reload
 * timing), so every line-granular operation is modeled explicitly.
 *
 * Victim selection never scans the set.  Invalid ways are found via
 * a per-set valid bitmask (lowest invalid index first, matching the
 * historical linear scan); exact LRU keeps a per-set doubly linked
 * recency list of way indices so the victim is a single tail read
 * instead of a stamp-minimum sweep.
 */

#ifndef KLEBSIM_HW_CACHE_HH
#define KLEBSIM_HW_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/random.hh"
#include "base/types.hh"

namespace klebsim::hw
{

/** Replacement policy selector. */
enum class ReplPolicy
{
    lru,
    random,
    treePlru,
};

/** Geometry of one cache level. */
struct CacheGeometry
{
    std::uint64_t sizeBytes = 0;
    std::uint32_t ways = 1;
    std::uint32_t lineSize = 64;
    ReplPolicy policy = ReplPolicy::lru;

    /** Number of sets implied by the geometry. */
    std::uint64_t
    sets() const
    {
        return sizeBytes / (static_cast<std::uint64_t>(ways) *
                            lineSize);
    }
};

/** Cumulative access statistics for one cache. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t flushes = 0;

    std::uint64_t accesses() const { return hits + misses; }

    double
    missRate() const
    {
        std::uint64_t a = accesses();
        return a ? static_cast<double>(misses) /
                       static_cast<double>(a)
                 : 0.0;
    }
};

/**
 * One level of cache.
 */
class Cache
{
  public:
    /**
     * @param name for diagnostics ("L1D", "LLC", ...)
     * @param geom geometry; size must be divisible by ways*lineSize
     * @param rng source for the random replacement policy
     */
    Cache(std::string name, const CacheGeometry &geom, Random rng);

    const std::string &name() const { return name_; }
    const CacheGeometry &geometry() const { return geom_; }
    const CacheStats &stats() const { return stats_; }

    /**
     * Look up @p addr; on miss, allocate the line (evicting if the
     * set is full).
     * @return true on hit.
     */
    bool access(Addr addr, bool write);

    /** Residency probe without side effects (no fill, no LRU touch). */
    bool contains(Addr addr) const;

    /**
     * Invalidate the line containing @p addr (CLFLUSH semantics).
     * @return true if the line was resident.
     */
    bool flushLine(Addr addr);

    /** Invalidate everything (WBINVD semantics). */
    void flushAll();

    /** Reset statistics only; contents are untouched. */
    void resetStats();

    /** Number of valid lines currently resident. */
    std::uint64_t residentLines() const;

  private:
    struct Line
    {
        bool valid = false;
        Addr tag = 0;
    };

    /** "No way" sentinel for the recency-list links. */
    static constexpr std::uint32_t wayNone = ~std::uint32_t(0);

    std::uint64_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    /** Way to evict in @p set (policy-dependent; set must be full). */
    std::uint32_t victimWay(std::uint64_t set);

    /**
     * Lowest-index invalid way in @p set, or wayNone when full.
     * Matches the historical invalid-first linear scan exactly.
     */
    std::uint32_t firstInvalidWay(std::uint64_t set) const;

    /** Update recency metadata on a hit/fill. */
    void touch(std::uint64_t set, std::uint32_t way);

    /** @{ valid bitmask bookkeeping (padding bits are kept set). */
    void markValid(std::uint64_t set, std::uint32_t way);
    void markInvalid(std::uint64_t set, std::uint32_t way);
    /** @} */

    std::string name_;
    CacheGeometry geom_;
    std::uint64_t numSets_;
    std::vector<Line> lines_;        //!< numSets_ * ways
    std::vector<std::uint8_t> plru_; //!< tree bits per set

    /**
     * @{ Exact-LRU recency list (lru policy only): per-set doubly
     * linked list over way indices, MRU at head, victim at tail.
     */
    std::vector<std::uint32_t> mruNext_; //!< numSets_ * ways
    std::vector<std::uint32_t> mruPrev_; //!< numSets_ * ways
    std::vector<std::uint32_t> mruHead_; //!< per set
    std::vector<std::uint32_t> mruTail_; //!< per set
    /** @} */

    std::uint32_t validWordsPerSet_;
    std::vector<std::uint64_t> validBits_; //!< numSets_ * wordsPerSet

    Random rng_;
    CacheStats stats_;
};

} // namespace klebsim::hw

#endif // KLEBSIM_HW_CACHE_HH
