/**
 * @file
 * Set-associative cache model with pluggable replacement policy.
 *
 * This is a functional tag-array model: it tracks which lines are
 * resident and reports hit/miss per access.  The Meltdown case study
 * depends on its exact semantics (CLFLUSH invalidation + reload
 * timing), so every line-granular operation is modeled explicitly.
 */

#ifndef KLEBSIM_HW_CACHE_HH
#define KLEBSIM_HW_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/random.hh"
#include "base/types.hh"

namespace klebsim::hw
{

/** Replacement policy selector. */
enum class ReplPolicy
{
    lru,
    random,
    treePlru,
};

/** Geometry of one cache level. */
struct CacheGeometry
{
    std::uint64_t sizeBytes = 0;
    std::uint32_t ways = 1;
    std::uint32_t lineSize = 64;
    ReplPolicy policy = ReplPolicy::lru;

    /** Number of sets implied by the geometry. */
    std::uint64_t
    sets() const
    {
        return sizeBytes / (static_cast<std::uint64_t>(ways) *
                            lineSize);
    }
};

/** Cumulative access statistics for one cache. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t flushes = 0;

    std::uint64_t accesses() const { return hits + misses; }

    double
    missRate() const
    {
        std::uint64_t a = accesses();
        return a ? static_cast<double>(misses) /
                       static_cast<double>(a)
                 : 0.0;
    }
};

/**
 * One level of cache.
 */
class Cache
{
  public:
    /**
     * @param name for diagnostics ("L1D", "LLC", ...)
     * @param geom geometry; size must be divisible by ways*lineSize
     * @param rng source for the random replacement policy
     */
    Cache(std::string name, const CacheGeometry &geom, Random rng);

    const std::string &name() const { return name_; }
    const CacheGeometry &geometry() const { return geom_; }
    const CacheStats &stats() const { return stats_; }

    /**
     * Look up @p addr; on miss, allocate the line (evicting if the
     * set is full).
     * @return true on hit.
     */
    bool access(Addr addr, bool write);

    /** Residency probe without side effects (no fill, no LRU touch). */
    bool contains(Addr addr) const;

    /**
     * Invalidate the line containing @p addr (CLFLUSH semantics).
     * @return true if the line was resident.
     */
    bool flushLine(Addr addr);

    /** Invalidate everything (WBINVD semantics). */
    void flushAll();

    /** Reset statistics only; contents are untouched. */
    void resetStats();

    /** Number of valid lines currently resident. */
    std::uint64_t residentLines() const;

  private:
    struct Line
    {
        bool valid = false;
        Addr tag = 0;
        std::uint64_t lruStamp = 0; //!< larger = more recent
    };

    std::uint64_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    /** Way to evict in @p set (policy-dependent). */
    std::uint32_t victimWay(std::uint64_t set);

    /** Update recency metadata on a hit/fill. */
    void touch(std::uint64_t set, std::uint32_t way);

    std::string name_;
    CacheGeometry geom_;
    std::uint64_t numSets_;
    std::vector<Line> lines_;       //!< numSets_ * ways
    std::vector<std::uint8_t> plru_; //!< tree bits per set
    std::uint64_t stampCounter_;
    Random rng_;
    CacheStats stats_;
};

} // namespace klebsim::hw

#endif // KLEBSIM_HW_CACHE_HH
