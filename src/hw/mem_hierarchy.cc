#include "mem_hierarchy.hh"

#include "base/logging.hh"

namespace klebsim::hw
{

MemHierarchy::MemHierarchy(const MachineConfig &cfg, Cache *shared_llc,
                           Random rng)
    : cfg_(cfg), l1_("L1D", cfg.l1d, rng.fork(0x11)),
      l2_("L2", cfg.l2, rng.fork(0x22)), llc_(shared_llc)
{
    panic_if(llc_ == nullptr, "MemHierarchy needs a shared LLC");
}

AccessOutcome
MemHierarchy::access(Addr addr, bool write)
{
    AccessOutcome out;
    const MemLatency &lat = cfg_.latency;

    if (l1_.access(addr, write)) {
        out.level = MemLevel::l1;
        out.cycles = lat.l1;
        return out;
    }
    out.l1Miss = true;

    if (l2_.access(addr, write)) {
        out.level = MemLevel::l2;
        out.cycles = lat.l2;
        return out;
    }
    out.l2Miss = true;
    out.llcRef = true;

    if (llc_->access(addr, write)) {
        out.level = MemLevel::llc;
        out.cycles = lat.llc;
        return out;
    }
    out.llcMiss = true;
    out.level = MemLevel::dram;
    out.cycles = lat.dram;
    return out;
}

AccessOutcome
MemHierarchy::accessNonTemporal(Addr addr, bool write)
{
    AccessOutcome out;
    const MemLatency &lat = cfg_.latency;

    if (l1_.access(addr, write)) {
        out.level = MemLevel::l1;
        out.cycles = lat.l1;
        return out;
    }
    out.l1Miss = true;

    // Probe deeper levels for latency without allocating there.
    if (l2_.contains(addr)) {
        out.level = MemLevel::l2;
        out.cycles = lat.l2;
        return out;
    }
    out.l2Miss = true;
    out.llcRef = true;
    if (llc_->contains(addr)) {
        out.level = MemLevel::llc;
        out.cycles = lat.llc;
        return out;
    }
    out.llcMiss = true;
    out.level = MemLevel::dram;
    out.cycles = lat.dram;
    return out;
}

AccessOutcome
MemHierarchy::clflush(Addr addr)
{
    AccessOutcome out;
    out.cycles = cfg_.latency.clflush;
    out.level = MemLevel::dram;
    if (l1_.flushLine(addr))
        out.level = MemLevel::l1;
    if (l2_.flushLine(addr) && out.level == MemLevel::dram)
        out.level = MemLevel::l2;
    if (llc_->flushLine(addr) && out.level == MemLevel::dram)
        out.level = MemLevel::llc;
    return out;
}

MemLevel
MemHierarchy::probe(Addr addr) const
{
    if (l1_.contains(addr))
        return MemLevel::l1;
    if (l2_.contains(addr))
        return MemLevel::l2;
    if (llc_->contains(addr))
        return MemLevel::llc;
    return MemLevel::dram;
}

EventVector
MemHierarchy::outcomeEvents(const AccessOutcome &out, bool write)
{
    EventVector ev = zeroEvents();
    at(ev, HwEvent::l1dReference) = 1;
    if (write)
        at(ev, HwEvent::storeRetired) = 1;
    else
        at(ev, HwEvent::loadRetired) = 1;
    if (out.l1Miss)
        at(ev, HwEvent::l1dMiss) = 1;
    if (out.l1Miss)
        at(ev, HwEvent::l2Reference) = 1;
    if (out.l2Miss)
        at(ev, HwEvent::l2Miss) = 1;
    if (out.llcRef)
        at(ev, HwEvent::llcReference) = 1;
    if (out.llcMiss)
        at(ev, HwEvent::llcMiss) = 1;
    return ev;
}

} // namespace klebsim::hw
