#include "timer_device.hh"

#include <cmath>

#include "base/logging.hh"

namespace klebsim::hw
{

TimerDevice::TimerDevice(std::string name, sim::EventQueue &eq,
                         Random rng, TimerJitterModel jitter)
    : name_(std::move(name)), expiryName_(name_ + "-expiry"),
      eq_(eq), rng_(rng), jitter_(jitter), event_(nullptr),
      lastLateness_(0)
{
}

TimerDevice::~TimerDevice()
{
    cancel();
}

Tick
TimerDevice::drawLateness()
{
    if (jitter_.sigma == 0 && jitter_.spikeProbability <= 0.0)
        return 0;
    double late = std::fabs(
        rng_.gaussian(0.0, static_cast<double>(jitter_.sigma)));
    if (rng_.chance(jitter_.spikeProbability))
        late += static_cast<double>(jitter_.spikeLateness);
    auto ticks = static_cast<Tick>(late);
    if (ticks > jitter_.maxLateness)
        ticks = jitter_.maxLateness;
    return ticks;
}

void
TimerDevice::arm(Tick delay, Callback cb)
{
    panic_if(armed(), "timer '", name_, "' armed twice");
    panic_if(delay == 0, "timer '", name_,
             "' armed with zero delay");
    lastLateness_ = drawLateness();
    if (faultHook_)
        lastLateness_ += faultHook_(delay);
    Tick when = eq_.curTick() + delay + lastLateness_;
    cb_ = std::move(cb);
    event_ = eq_.scheduleLambda(
        when,
        [this]() {
            event_ = nullptr;
            // Move out first so the callback may re-arm the timer
            // (installing a fresh cb_) without clobbering itself.
            Callback cb = std::move(cb_);
            cb();
        },
        sim::Event::timerPriority, expiryName_);
}

void
TimerDevice::cancel()
{
    if (!event_)
        return;
    eq_.cancelLambda(event_);
    event_ = nullptr;
    cb_.reset(); // drop captures, as firing would have
}

} // namespace klebsim::hw
