#include "perf_event.hh"

#include "base/logging.hh"

namespace klebsim::hw
{

namespace
{

/**
 * Event-select codes loosely follow the Intel SDM for Nehalem
 * (e.g. LLC ref/miss are the architectural 0x2E/0x4F,0x41 pair).
 * They only need to be unique here; tools program counters through
 * these selectors exactly as they would on hardware.
 */
constexpr std::array<EventInfo, numHwEvents> catalog = {{
    {HwEvent::instRetired, "INST_RETIRED", 0xc0, 0x00, false, true},
    {HwEvent::coreCycles, "CPU_CLK_UNHALTED_CORE", 0x3c, 0x00, false,
     false},
    {HwEvent::refCycles, "CPU_CLK_UNHALTED_REF", 0x3c, 0x01, false,
     false},
    {HwEvent::branchRetired, "BR_INST_RETIRED", 0xc4, 0x00, false,
     true},
    {HwEvent::branchMispredicted, "BR_MISP_RETIRED", 0xc5, 0x00,
     false, false},
    {HwEvent::loadRetired, "MEM_INST_RETIRED_LOADS", 0x0b, 0x01,
     false, true},
    {HwEvent::storeRetired, "MEM_INST_RETIRED_STORES", 0x0b, 0x02,
     false, true},
    {HwEvent::arithMul, "ARITH_MUL", 0x14, 0x02, false, true},
    {HwEvent::arithDiv, "ARITH_DIV", 0x14, 0x01, false, true},
    {HwEvent::fpOpsRetired, "FP_COMP_OPS_EXE", 0x10, 0x01, false,
     true},
    {HwEvent::l1dReference, "L1D_ALL_REF", 0x43, 0x01, false, false},
    {HwEvent::l1dMiss, "L1D_REPL", 0x51, 0x01, false, false},
    {HwEvent::l2Reference, "L2_RQSTS_REFERENCES", 0x24, 0xff, false,
     false},
    {HwEvent::l2Miss, "L2_RQSTS_MISS", 0x24, 0xaa, false, false},
    {HwEvent::llcReference, "LLC_REFERENCE", 0x2e, 0x4f, false,
     false},
    {HwEvent::llcMiss, "LLC_MISSES", 0x2e, 0x41, false, false},
    {HwEvent::hwInterrupts, "HW_INTERRUPTS_RECEIVED", 0x1d, 0x01,
     false, false},
    {HwEvent::ctxSwitches, "CONTEXT_SWITCHES", 0x1e, 0x01, false,
     false},
}};

} // anonymous namespace

void
accumulate(EventVector &a, const EventVector &b)
{
    for (std::size_t i = 0; i < numHwEvents; ++i)
        a[i] += b[i];
}

const EventInfo &
eventInfo(HwEvent e)
{
    auto idx = static_cast<std::size_t>(e);
    panic_if(idx >= numHwEvents, "bad HwEvent index ", idx);
    return catalog[idx];
}

const char *
eventName(HwEvent e)
{
    return eventInfo(e).name;
}

std::optional<HwEvent>
eventByName(const std::string &name)
{
    for (const auto &info : catalog)
        if (name == info.name)
            return info.event;
    return std::nullopt;
}

std::optional<HwEvent>
eventBySelector(std::uint8_t code, std::uint8_t umask)
{
    for (const auto &info : catalog)
        if (info.code == code && info.umask == umask)
            return info.event;
    return std::nullopt;
}

} // namespace klebsim::hw
