/**
 * @file
 * Three-level memory hierarchy: per-core L1D and L2 in front of a
 * shared LLC, with DRAM behind it.
 *
 * Every access returns its latency and the per-level hit/miss
 * breakdown so the CPU core can both account stall cycles and feed
 * the PMU the corresponding microarchitectural events.
 */

#ifndef KLEBSIM_HW_MEM_HIERARCHY_HH
#define KLEBSIM_HW_MEM_HIERARCHY_HH

#include <cstdint>
#include <memory>

#include "base/random.hh"
#include "base/types.hh"
#include "cache.hh"
#include "machine_config.hh"
#include "perf_event.hh"

namespace klebsim::hw
{

/** Where an access was satisfied. */
enum class MemLevel
{
    l1,
    l2,
    llc,
    dram,
};

/** Outcome of a single memory access. */
struct AccessOutcome
{
    MemLevel level = MemLevel::l1;
    std::uint32_t cycles = 0;
    bool l1Miss = false;
    bool l2Miss = false;
    bool llcRef = false;  //!< the access reached the LLC
    bool llcMiss = false;
};

/**
 * The view of memory from one core: private L1D and L2 plus a
 * pointer to the machine's shared LLC.
 */
class MemHierarchy
{
  public:
    /**
     * @param cfg machine geometry and latencies
     * @param shared_llc the machine-wide L3 (not owned)
     * @param rng forked stream for replacement randomness
     */
    MemHierarchy(const MachineConfig &cfg, Cache *shared_llc,
                 Random rng);

    /** Issue one load/store at @p addr. */
    AccessOutcome access(Addr addr, bool write);

    /**
     * Issue an access that allocates in L1 only (non-temporal
     * fill).  Used for kernel/monitoring-tool work (see DESIGN.md):
     * tool footprints disturb the workload's L1, while their deeper
     * cache effects are folded into calibrated direct costs —
     * inserting them into L2/LLC would be amplified out of
     * proportion by the chunk engine's access sampling.
     */
    AccessOutcome accessNonTemporal(Addr addr, bool write);

    /**
     * CLFLUSH @p addr: evict the line from every level.
     * @return outcome carrying the flush latency; level reports the
     *         deepest level the line was found in (dram if absent).
     */
    AccessOutcome clflush(Addr addr);

    /** Residency probe (no state change): deepest level holding addr. */
    MemLevel probe(Addr addr) const;

    Cache &l1() { return l1_; }
    Cache &l2() { return l2_; }
    Cache &llc() { return *llc_; }
    const Cache &l1() const { return l1_; }
    const Cache &l2() const { return l2_; }
    const Cache &llc() const { return *llc_; }

    /** Translate one outcome into PMU event increments. */
    static EventVector outcomeEvents(const AccessOutcome &out,
                                     bool write);

  private:
    const MachineConfig &cfg_;
    Cache l1_;
    Cache l2_;
    Cache *llc_;
};

} // namespace klebsim::hw

#endif // KLEBSIM_HW_MEM_HIERARCHY_HH
