#include "cache.hh"

#include <bit>

#include "base/intmath.hh"
#include "base/logging.hh"
#include "base/thread_safety.hh"

namespace klebsim::hw
{

Cache::Cache(std::string name, const CacheGeometry &geom, Random rng)
    : name_(std::move(name)), geom_(geom), numSets_(geom.sets()),
      rng_(rng)
{
    fatal_if(geom.lineSize == 0 || !isPowerOf2(geom.lineSize),
             "cache ", name_, ": line size must be a power of two");
    fatal_if(geom.ways == 0, "cache ", name_, ": needs >= 1 way");
    fatal_if(numSets_ == 0 ||
                 numSets_ * geom.ways * geom.lineSize !=
                     geom.sizeBytes,
             "cache ", name_,
             ": size must be sets * ways * lineSize");
    lines_.resize(numSets_ * geom.ways);
    if (geom.policy == ReplPolicy::treePlru) {
        fatal_if(!isPowerOf2(geom.ways),
                 "cache ", name_, ": tree-PLRU needs pow2 ways");
        plru_.assign(numSets_ * geom.ways, 0);
    }

    // Valid bitmask: all lines start invalid (bit clear); padding
    // bits past `ways` in each set's last word stay permanently set
    // so the first-zero-bit search never wanders into them.
    validWordsPerSet_ = (geom.ways + 63) / 64;
    validBits_.assign(numSets_ * validWordsPerSet_, 0);
    const std::uint32_t tailBits = geom.ways % 64;
    if (tailBits != 0) {
        const std::uint64_t padding = ~0ULL << tailBits;
        for (std::uint64_t s = 0; s < numSets_; ++s)
            validBits_[s * validWordsPerSet_ +
                       (validWordsPerSet_ - 1)] = padding;
    }

    if (geom.policy == ReplPolicy::lru) {
        // Initial order is irrelevant (the LRU victim path only
        // runs once every way has been filled — and touched — at
        // least once); it just has to be a well-formed list.
        mruNext_.resize(numSets_ * geom.ways);
        mruPrev_.resize(numSets_ * geom.ways);
        mruHead_.assign(numSets_, 0);
        mruTail_.assign(numSets_, geom.ways - 1);
        for (std::uint64_t s = 0; s < numSets_; ++s) {
            const std::uint64_t base = s * geom.ways;
            for (std::uint32_t w = 0; w < geom.ways; ++w) {
                mruPrev_[base + w] = (w == 0) ? wayNone : w - 1;
                mruNext_[base + w] =
                    (w == geom.ways - 1) ? wayNone : w + 1;
            }
        }
    }
}

std::uint64_t
Cache::setIndex(Addr addr) const
{
    // Modulo indexing supports non-power-of-two set counts (e.g.
    // Cascade Lake LLC slices).
    return (addr / geom_.lineSize) % numSets_;
}

Addr
Cache::tagOf(Addr addr) const
{
    return (addr / geom_.lineSize) / numSets_;
}

void
Cache::markValid(std::uint64_t set, std::uint32_t way)
{
    validBits_[set * validWordsPerSet_ + way / 64] |=
        1ULL << (way % 64);
}

void
Cache::markInvalid(std::uint64_t set, std::uint32_t way)
{
    validBits_[set * validWordsPerSet_ + way / 64] &=
        ~(1ULL << (way % 64));
}

std::uint32_t
Cache::firstInvalidWay(std::uint64_t set) const
{
    const std::uint64_t *words =
        &validBits_[set * validWordsPerSet_];
    for (std::uint32_t i = 0; i < validWordsPerSet_; ++i) {
        if (words[i] != ~0ULL)
            return i * 64 +
                   static_cast<std::uint32_t>(
                       std::countr_one(words[i]));
    }
    return wayNone;
}

void
Cache::touch(std::uint64_t set, std::uint32_t way)
{
    if (geom_.policy == ReplPolicy::lru) {
        // Splice the way out of the recency list and relink it at
        // the MRU head.
        const std::uint64_t base = set * geom_.ways;
        if (mruHead_[set] == way)
            return; // already most recent
        const std::uint32_t prev = mruPrev_[base + way];
        const std::uint32_t next = mruNext_[base + way];
        mruNext_[base + prev] = next; // prev != wayNone: not head
        if (next != wayNone)
            mruPrev_[base + next] = prev;
        else
            mruTail_[set] = prev;
        const std::uint32_t oldHead = mruHead_[set];
        mruPrev_[base + way] = wayNone;
        mruNext_[base + way] = oldHead;
        mruPrev_[base + oldHead] = way;
        mruHead_[set] = way;
    } else if (geom_.policy == ReplPolicy::treePlru) {
        // Walk the tree from root to the touched way, pointing each
        // node away from it.
        std::uint8_t *bits = &plru_[set * geom_.ways];
        std::uint32_t node = 1;
        std::uint32_t lo = 0;
        std::uint32_t hi = geom_.ways;
        while (hi - lo > 1) {
            std::uint32_t mid = (lo + hi) / 2;
            if (way < mid) {
                bits[node] = 1; // next victim search goes right
                hi = mid;
                node = 2 * node;
            } else {
                bits[node] = 0; // next victim search goes left
                lo = mid;
                node = 2 * node + 1;
            }
        }
    }
}

std::uint32_t
Cache::victimWay(std::uint64_t set)
{
    switch (geom_.policy) {
      case ReplPolicy::random:
        return rng_.below(geom_.ways);
      case ReplPolicy::treePlru: {
        std::uint8_t *bits = &plru_[set * geom_.ways];
        std::uint32_t node = 1;
        std::uint32_t lo = 0;
        std::uint32_t hi = geom_.ways;
        while (hi - lo > 1) {
            std::uint32_t mid = (lo + hi) / 2;
            if (bits[node]) {
                lo = mid;
                node = 2 * node + 1;
            } else {
                hi = mid;
                node = 2 * node;
            }
        }
        return lo;
      }
      case ReplPolicy::lru:
      default:
        // A full set's least-recently-touched way is the list tail;
        // with unique touch order this is exactly the way the old
        // stamp-minimum scan would have picked.
        return mruTail_[set];
    }
}

KLEB_HOT bool
Cache::access(Addr addr, bool write)
{
    (void)write; // no dirty-state modeling; writes allocate like reads
    std::uint64_t set = setIndex(addr);
    Addr tag = tagOf(addr);
    Line *set_lines = &lines_[set * geom_.ways];

    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
        if (set_lines[w].valid && set_lines[w].tag == tag) {
            ++stats_.hits;
            touch(set, w);
            return true;
        }
    }

    ++stats_.misses;
    std::uint32_t way = firstInvalidWay(set);
    if (way == wayNone) {
        way = victimWay(set);
        ++stats_.evictions;
    }
    set_lines[way].valid = true;
    set_lines[way].tag = tag;
    markValid(set, way);
    touch(set, way);
    return false;
}

bool
Cache::contains(Addr addr) const
{
    std::uint64_t set = setIndex(addr);
    Addr tag = tagOf(addr);
    const Line *set_lines = &lines_[set * geom_.ways];
    for (std::uint32_t w = 0; w < geom_.ways; ++w)
        if (set_lines[w].valid && set_lines[w].tag == tag)
            return true;
    return false;
}

bool
Cache::flushLine(Addr addr)
{
    std::uint64_t set = setIndex(addr);
    Addr tag = tagOf(addr);
    Line *set_lines = &lines_[set * geom_.ways];
    ++stats_.flushes;
    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
        if (set_lines[w].valid && set_lines[w].tag == tag) {
            set_lines[w].valid = false;
            markInvalid(set, w);
            return true;
        }
    }
    return false;
}

void
Cache::flushAll()
{
    for (Line &line : lines_)
        line.valid = false;
    for (std::uint64_t s = 0; s < numSets_; ++s)
        for (std::uint32_t w = 0; w < geom_.ways; ++w)
            markInvalid(s, w);
}

void
Cache::resetStats()
{
    stats_ = CacheStats{};
}

std::uint64_t
Cache::residentLines() const
{
    std::uint64_t n = 0;
    for (const Line &line : lines_)
        if (line.valid)
            ++n;
    return n;
}

} // namespace klebsim::hw
