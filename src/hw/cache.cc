#include "cache.hh"

#include "base/intmath.hh"
#include "base/logging.hh"

namespace klebsim::hw
{

Cache::Cache(std::string name, const CacheGeometry &geom, Random rng)
    : name_(std::move(name)), geom_(geom), numSets_(geom.sets()),
      stampCounter_(0), rng_(rng)
{
    fatal_if(geom.lineSize == 0 || !isPowerOf2(geom.lineSize),
             "cache ", name_, ": line size must be a power of two");
    fatal_if(geom.ways == 0, "cache ", name_, ": needs >= 1 way");
    fatal_if(numSets_ == 0 ||
                 numSets_ * geom.ways * geom.lineSize !=
                     geom.sizeBytes,
             "cache ", name_,
             ": size must be sets * ways * lineSize");
    lines_.resize(numSets_ * geom.ways);
    if (geom.policy == ReplPolicy::treePlru) {
        fatal_if(!isPowerOf2(geom.ways),
                 "cache ", name_, ": tree-PLRU needs pow2 ways");
        plru_.assign(numSets_ * geom.ways, 0);
    }
}

std::uint64_t
Cache::setIndex(Addr addr) const
{
    // Modulo indexing supports non-power-of-two set counts (e.g.
    // Cascade Lake LLC slices).
    return (addr / geom_.lineSize) % numSets_;
}

Addr
Cache::tagOf(Addr addr) const
{
    return (addr / geom_.lineSize) / numSets_;
}

void
Cache::touch(std::uint64_t set, std::uint32_t way)
{
    Line &line = lines_[set * geom_.ways + way];
    line.lruStamp = ++stampCounter_;

    if (geom_.policy == ReplPolicy::treePlru) {
        // Walk the tree from root to the touched way, pointing each
        // node away from it.
        std::uint8_t *bits = &plru_[set * geom_.ways];
        std::uint32_t node = 1;
        std::uint32_t lo = 0;
        std::uint32_t hi = geom_.ways;
        while (hi - lo > 1) {
            std::uint32_t mid = (lo + hi) / 2;
            if (way < mid) {
                bits[node] = 1; // next victim search goes right
                hi = mid;
                node = 2 * node;
            } else {
                bits[node] = 0; // next victim search goes left
                lo = mid;
                node = 2 * node + 1;
            }
        }
    }
}

std::uint32_t
Cache::victimWay(std::uint64_t set)
{
    Line *set_lines = &lines_[set * geom_.ways];

    // Invalid line first, regardless of policy.
    for (std::uint32_t w = 0; w < geom_.ways; ++w)
        if (!set_lines[w].valid)
            return w;

    switch (geom_.policy) {
      case ReplPolicy::random:
        return rng_.below(geom_.ways);
      case ReplPolicy::treePlru: {
        std::uint8_t *bits = &plru_[set * geom_.ways];
        std::uint32_t node = 1;
        std::uint32_t lo = 0;
        std::uint32_t hi = geom_.ways;
        while (hi - lo > 1) {
            std::uint32_t mid = (lo + hi) / 2;
            if (bits[node]) {
                lo = mid;
                node = 2 * node + 1;
            } else {
                hi = mid;
                node = 2 * node;
            }
        }
        return lo;
      }
      case ReplPolicy::lru:
      default: {
        std::uint32_t victim = 0;
        std::uint64_t oldest = ~std::uint64_t(0);
        for (std::uint32_t w = 0; w < geom_.ways; ++w) {
            if (set_lines[w].lruStamp < oldest) {
                oldest = set_lines[w].lruStamp;
                victim = w;
            }
        }
        return victim;
      }
    }
}

bool
Cache::access(Addr addr, bool write)
{
    (void)write; // no dirty-state modeling; writes allocate like reads
    std::uint64_t set = setIndex(addr);
    Addr tag = tagOf(addr);
    Line *set_lines = &lines_[set * geom_.ways];

    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
        if (set_lines[w].valid && set_lines[w].tag == tag) {
            ++stats_.hits;
            touch(set, w);
            return true;
        }
    }

    ++stats_.misses;
    std::uint32_t way = victimWay(set);
    if (set_lines[way].valid)
        ++stats_.evictions;
    set_lines[way].valid = true;
    set_lines[way].tag = tag;
    touch(set, way);
    return false;
}

bool
Cache::contains(Addr addr) const
{
    std::uint64_t set = setIndex(addr);
    Addr tag = tagOf(addr);
    const Line *set_lines = &lines_[set * geom_.ways];
    for (std::uint32_t w = 0; w < geom_.ways; ++w)
        if (set_lines[w].valid && set_lines[w].tag == tag)
            return true;
    return false;
}

bool
Cache::flushLine(Addr addr)
{
    std::uint64_t set = setIndex(addr);
    Addr tag = tagOf(addr);
    Line *set_lines = &lines_[set * geom_.ways];
    ++stats_.flushes;
    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
        if (set_lines[w].valid && set_lines[w].tag == tag) {
            set_lines[w].valid = false;
            return true;
        }
    }
    return false;
}

void
Cache::flushAll()
{
    for (Line &line : lines_)
        line.valid = false;
}

void
Cache::resetStats()
{
    stats_ = CacheStats{};
}

std::uint64_t
Cache::residentLines() const
{
    std::uint64_t n = 0;
    for (const Line &line : lines_)
        if (line.valid)
            ++n;
    return n;
}

} // namespace klebsim::hw
