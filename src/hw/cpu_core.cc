#include "cpu_core.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace klebsim::hw
{

namespace
{

/** Kernel scratch regions live far from any user address space. */
constexpr Addr kernelScratchBase = 0xffff880000000000ULL;
constexpr Addr kernelScratchStride = 0x10000000ULL; // 256 MB/core

} // anonymous namespace

CpuCore::CpuCore(CoreId id, const MachineConfig &cfg,
                 sim::EventQueue &eq, Cache *shared_llc, Random rng)
    : id_(id), cfg_(cfg), eq_(eq), clock_(cfg.coreFreqHz),
      refClock_(cfg.refFreqHz), rng_(rng),
      mem_(cfg, shared_llc, rng_.fork(0x1000 + id)), ctx_(nullptr),
      attributedUpTo_(0), busyTime_(0), kernelScratchCursor_(0),
      laneAddr_(cfg.memSampleCap), laneWrite_(cfg.memSampleCap)
{
    msrs_.attach(&pmu_);
}

bool
CpuCore::ChunkCostTable::Entry::matches(
    const WorkChunk &c, const MachineConfig &cfg) const
{
    return instructions == c.instructions && loads == c.loads &&
           stores == c.stores && branches == c.branches &&
           muls == c.muls && divs == c.divs && fpops == c.fpops &&
           fixedCycles == c.fixedCycles &&
           mispredictRate == c.mispredictRate &&
           baseIpc == c.baseIpc &&
           stallExposureScale == c.stallExposureScale &&
           branchMispredictPenalty ==
               cfg.pipeline.branchMispredictPenalty &&
           memStallExposure == cfg.pipeline.memStallExposure &&
           coreFreqHz == cfg.coreFreqHz &&
           refFreqHz == cfg.refFreqHz;
}

const CpuCore::ChunkCostTable::Entry *
CpuCore::ChunkCostTable::find(const WorkChunk &c,
                              const MachineConfig &cfg) const
{
    const Entry &hot = entries[lastHit];
    if (hot.valid && hot.matches(c, cfg))
        return &hot;
    for (std::size_t i = 0; i < capacity; ++i) {
        const Entry &e = entries[i];
        if (e.valid && e.matches(c, cfg)) {
            lastHit = i;
            return &e;
        }
    }
    return nullptr;
}

const CpuCore::ChunkCostTable::Entry *
CpuCore::ChunkCostTable::store(const WorkChunk &c,
                               const MachineConfig &cfg,
                               const ExecContext::Prepared &p)
{
    Entry &e = entries[nextVictim];
    lastHit = nextVictim;
    nextVictim = (nextVictim + 1) % capacity;
    ++generation;
    e.valid = true;
    e.instructions = c.instructions;
    e.loads = c.loads;
    e.stores = c.stores;
    e.branches = c.branches;
    e.muls = c.muls;
    e.divs = c.divs;
    e.fpops = c.fpops;
    e.fixedCycles = c.fixedCycles;
    e.mispredictRate = c.mispredictRate;
    e.baseIpc = c.baseIpc;
    e.stallExposureScale = c.stallExposureScale;
    e.branchMispredictPenalty =
        cfg.pipeline.branchMispredictPenalty;
    e.memStallExposure = cfg.pipeline.memStallExposure;
    e.coreFreqHz = cfg.coreFreqHz;
    e.refFreqHz = cfg.refFreqHz;
    e.result = p;
    return &e;
}

std::uint64_t
CpuCore::rdtsc() const
{
    return refClock_.ticksToCycles(eq_.curTick());
}

void
CpuCore::attachContext(ExecContext *ctx)
{
    panic_if(ctx_ != nullptr, "core ", id_, ": context already attached");
    panic_if(ctx == nullptr, "core ", id_, ": attaching null context");
    ctx_ = ctx;
    // A charge on the (idle) core may have pushed the cursor past
    // now; never rewind it, or time would be attributed twice.
    attributedUpTo_ = std::max(attributedUpTo_, eq_.curTick());
}

void
CpuCore::detachContext()
{
    panic_if(ctx_ == nullptr, "core ", id_, ": no context attached");
    panic_if(attributedUpTo_ < eq_.curTick(),
             "core ", id_, ": detach without syncTo (cursor ",
             attributedUpTo_, " < now ", eq_.curTick(), ")");
    ctx_ = nullptr;
}

ExecContext::Prepared
CpuCore::executeChunk(const WorkChunk &chunk)
{
    if (!cfg_.batchedChunkEngine) {
        // Reference interpreter: one cost-model evaluation per
        // chunk, one virtual stream call per sampled access.
        lastPrepEntry_ = nullptr;
        return modelChunk(chunk, /*batched=*/false);
    }

    // Streamless chunks touch no shared state; serve repeats from
    // the compiled cost table (priv/flops pass straight through —
    // they don't feed the cost model).
    const bool memoizable =
        !chunk.preExecuted &&
        (chunk.stream == nullptr || chunk.loads + chunk.stores == 0);
    if (memoizable) {
        if (const ChunkCostTable::Entry *e =
                costTable_.find(chunk, cfg_)) {
            lastPrepEntry_ = e;
            lastPrepGen_ = costTable_.generation;
            ExecContext::Prepared p = e->result;
            p.priv = chunk.priv;
            p.flops = chunk.flops;
            return p;
        }
    }
    ExecContext::Prepared p = modelChunk(chunk, /*batched=*/true);
    if (memoizable) {
        lastPrepEntry_ = costTable_.store(chunk, cfg_, p);
        lastPrepGen_ = costTable_.generation;
    } else {
        lastPrepEntry_ = nullptr;
    }
    return p;
}

ExecContext::Prepared
CpuCore::modelChunk(const WorkChunk &chunk, bool batched)
{
    ExecContext::Prepared p;
    p.priv = chunk.priv;
    p.flops = chunk.flops;

    const MemLatency &lat = cfg_.latency;
    const PipelineModel &pipe = cfg_.pipeline;

    std::uint64_t stall_cycles = 0;
    EventVector &ev = p.events;

    if (chunk.preExecuted) {
        ev = chunk.preEvents;
        stall_cycles = chunk.preStallCycles;
    } else {
        std::uint64_t mem_ops = chunk.loads + chunk.stores;
        std::uint64_t l1_miss = 0, l2_miss = 0, llc_ref = 0,
                      llc_miss = 0;
        std::uint64_t sampled_stall = 0;
        std::uint64_t sampled = 0;
        if (mem_ops > 0 && chunk.stream != nullptr) {
            sampled = std::min<std::uint64_t>(mem_ops,
                                              cfg_.memSampleCap);
            // Hoisted out of the sampled loop: the config is const
            // for the core's lifetime, but the compiler can't prove
            // that across the opaque mem_.access call.
            const std::uint32_t l1Lat = lat.l1;
            // L2 hits are almost entirely hidden by the out-of-order
            // window; deeper misses expose their full latency beyond
            // L1.
            const std::uint32_t l2HiddenStall =
                (lat.l2 - lat.l1) / 12;
            AddressStream &stream = *chunk.stream;
            const Addr *addrs = nullptr;
            const std::uint8_t *writes = nullptr;
            if (batched) {
                // One virtual call fills both SoA lanes; the walk
                // below then reads contiguous plain arrays.  The
                // lanes are sized memSampleCap at construction and
                // sampled never exceeds it.
                stream.fillBatch(laneAddr_.data(),
                                 laneWrite_.data(), sampled);
                addrs = laneAddr_.data();
                writes = laneWrite_.data();
            }
            for (std::uint64_t i = 0; i < sampled; ++i) {
                Addr a;
                bool w;
                if (batched) {
                    a = addrs[i];
                    w = writes[i] != 0;
                } else {
                    MemRef ref = stream.next();
                    a = ref.addr;
                    w = ref.write;
                }
                AccessOutcome out = mem_.access(a, w);
                if (out.l1Miss) {
                    ++l1_miss;
                    std::uint32_t extra = out.cycles - l1Lat;
                    if (!out.l2Miss)
                        extra = l2HiddenStall;
                    sampled_stall += extra;
                }
                if (out.l2Miss)
                    ++l2_miss;
                if (out.llcRef)
                    ++llc_ref;
                if (out.llcMiss)
                    ++llc_miss;
            }
        }
        double scale =
            sampled ? static_cast<double>(mem_ops) /
                          static_cast<double>(sampled)
                    : 0.0;
        auto scaled = [&](std::uint64_t n) {
            return static_cast<std::uint64_t>(
                std::llround(static_cast<double>(n) * scale));
        };

        at(ev, HwEvent::instRetired) = chunk.instructions;
        at(ev, HwEvent::loadRetired) = chunk.loads;
        at(ev, HwEvent::storeRetired) = chunk.stores;
        at(ev, HwEvent::branchRetired) = chunk.branches;
        at(ev, HwEvent::branchMispredicted) =
            static_cast<std::uint64_t>(
                std::llround(static_cast<double>(chunk.branches) *
                             chunk.mispredictRate));
        at(ev, HwEvent::arithMul) = chunk.muls;
        at(ev, HwEvent::arithDiv) = chunk.divs;
        at(ev, HwEvent::fpOpsRetired) = chunk.fpops;
        at(ev, HwEvent::l1dReference) = mem_ops;
        at(ev, HwEvent::l1dMiss) = scaled(l1_miss);
        at(ev, HwEvent::l2Reference) = scaled(l1_miss);
        at(ev, HwEvent::l2Miss) = scaled(l2_miss);
        at(ev, HwEvent::llcReference) = scaled(llc_ref);
        at(ev, HwEvent::llcMiss) = scaled(llc_miss);

        stall_cycles = scaled(sampled_stall);
    }

    Cycles cyc;
    if (chunk.fixedCycles != 0) {
        cyc = chunk.fixedCycles;
    } else {
        double base_ipc = std::max(chunk.baseIpc, 0.05);
        double cycles =
            static_cast<double>(at(ev, HwEvent::instRetired)) /
            base_ipc;
        cycles += static_cast<double>(stall_cycles) *
                  pipe.memStallExposure * chunk.stallExposureScale;
        cycles += static_cast<double>(
                      at(ev, HwEvent::branchMispredicted)) *
                  pipe.branchMispredictPenalty;
        cyc = static_cast<Cycles>(
            std::llround(std::max(cycles, 1.0)));
    }
    at(ev, HwEvent::coreCycles) = cyc;
    p.duration = clock_.cyclesToTicks(cyc);
    at(ev, HwEvent::refCycles) = refClock_.ticksToCycles(p.duration);
    return p;
}

PrepareResult
CpuCore::prepare(Tick horizon)
{
    panic_if(ctx_ == nullptr, "core ", id_, ": prepare without context");
    ExecContext &ctx = *ctx_;

    while (ctx.ahead_ < horizon && !ctx.sourceDone_) {
        if (ctx.source_ == nullptr || ctx.source_->done()) {
            ctx.sourceDone_ = true;
            break;
        }
        WorkChunk chunk = ctx.source_->nextChunk(mem_);

        // Run coalescing (batched engine): a run of identical
        // streamless flops-free chunks folds into one Prepared with
        // k-fold duration and events.  Pro-rata integer attribution
        // of the merged record is bit-identical to attributing the
        // k units separately — floor(kE*t/(kD)) == floor(E*t/D) at
        // every tick t, even mid-run — so PMU reads, timeslice
        // boundaries, and CSVs cannot observe the merge.  flops are
        // excluded because double accumulation does not telescope.
        const bool coalescible =
            cfg_.batchedChunkEngine && !chunk.preExecuted &&
            (chunk.stream == nullptr ||
             chunk.loads + chunk.stores == 0) &&
            chunk.flops == 0.0;
        ExecContext::Prepared p = executeChunk(chunk);
        ctx.ahead_ += p.duration;
        bool merge = false;
        if (coalescible && ctx.backMergeable_ &&
            !ctx.queue_.empty() && ctx.backUnitPriv_ == p.priv) {
            // Entry-identity fast path: same compiled entry, same
            // table generation -> the result bytes are the unit's
            // by construction.  Falls back to the field compare
            // after migration or eviction.
            merge = (lastPrepEntry_ != nullptr &&
                     ctx.backUnitEntry_ == lastPrepEntry_ &&
                     ctx.backUnitGen_ == lastPrepGen_) ||
                    (ctx.backUnitDuration_ == p.duration &&
                     ctx.backUnitEvents_ == p.events);
        }
        if (merge) {
            ExecContext::Prepared &back = ctx.queue_.back();
            back.duration += p.duration;
            for (std::size_t i = 0; i < numHwEvents; ++i)
                back.events[i] += p.events[i];
        } else {
            ctx.backMergeable_ = coalescible;
            if (coalescible) {
                ctx.backUnitDuration_ = p.duration;
                ctx.backUnitEvents_ = p.events;
                ctx.backUnitPriv_ = p.priv;
                ctx.backUnitEntry_ = lastPrepEntry_;
                ctx.backUnitGen_ = lastPrepGen_;
            }
            ctx.queue_.push_back(std::move(p));
        }
        if (ctx.source_->done())
            ctx.sourceDone_ = true;
    }

    PrepareResult res;
    res.available = std::min(ctx.ahead_, horizon);
    res.completes = ctx.sourceDone_ && ctx.ahead_ <= horizon;
    return res;
}

void
CpuCore::creditFront(ExecContext::Prepared &front, Tick g)
{
    ExecContext &ctx = *ctx_;
    EventVector delta = zeroEvents();
    Tick new_attr = ctx.frontAttributed_ + g;

    for (std::size_t i = 0; i < numHwEvents; ++i) {
        // 128-bit intermediate: counts (~1e7) * duration (~1e8 ps)
        // would already fit in 64 bits, but chunks are caller-sized
        // and this must never silently wrap.
        auto cum = static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(front.events[i]) *
             new_attr) /
            front.duration);
        delta[i] = cum - ctx.frontCredited_[i];
        ctx.frontCredited_[i] = cum;
    }
    double flops_cum = front.flops * static_cast<double>(new_attr) /
                       static_cast<double>(front.duration);
    double flops_delta = flops_cum - ctx.frontFlopsCredited_;
    ctx.frontFlopsCredited_ = flops_cum;

    pmu_.addEvents(delta, front.priv);
    accumulate(ctx.total_, delta);
    ctx.flops_ += flops_delta;
    ctx.frontAttributed_ = new_attr;
}

void
CpuCore::syncTo(Tick now)
{
    // A charge() can push the attribution cursor ahead of simulated
    // time (interrupts are effectively masked inside the charged
    // critical section); syncs landing inside that window are no-ops.
    if (now <= attributedUpTo_)
        return;
    if (ctx_ == nullptr) {
        attributedUpTo_ = now;
        return;
    }
    ExecContext &ctx = *ctx_;
    Tick remaining = now - attributedUpTo_;
    busyTime_ += remaining;
    ctx.cpuTime_ += remaining;

    while (remaining > 0 && !ctx.queue_.empty()) {
        ExecContext::Prepared &front = ctx.queue_.front();
        Tick left = front.duration - ctx.frontAttributed_;
        Tick g = std::min(left, remaining);
        creditFront(front, g);
        remaining -= g;
        ctx.ahead_ -= g;
        if (ctx.frontAttributed_ == front.duration) {
            ctx.queue_.pop_front();
            ctx.frontAttributed_ = 0;
            ctx.frontCredited_ = zeroEvents();
            ctx.frontFlopsCredited_ = 0.0;
            // The retired chunk may have been the coalescing tail.
            if (ctx.queue_.empty())
                ctx.backMergeable_ = false;
        }
    }
    attributedUpTo_ = now;
}

void
CpuCore::charge(const ChargeSpec &spec)
{
    // Charges may nest (module work inside a syscall window), so the
    // cursor may already lead simulated time; it must never trail it.
    panic_if(attributedUpTo_ < eq_.curTick(),
             "core ", id_, ": charge without syncTo");
    if (spec.duration == 0)
        return;

    Cycles cyc = clock_.ticksToCyclesCeil(spec.duration);
    std::uint64_t instructions = spec.instructions;
    if (instructions == 0) {
        instructions = static_cast<std::uint64_t>(
            static_cast<double>(cyc) * cfg_.pipeline.kernelIpc);
    }

    // Generic kernel/service instruction mix.
    EventVector ev = zeroEvents();
    at(ev, HwEvent::instRetired) = instructions;
    at(ev, HwEvent::coreCycles) = cyc;
    at(ev, HwEvent::refCycles) = refClock_.ticksToCycles(spec.duration);
    at(ev, HwEvent::branchRetired) = instructions / 6;
    at(ev, HwEvent::branchMispredicted) = instructions / 200;
    at(ev, HwEvent::loadRetired) = instructions / 4;
    at(ev, HwEvent::storeRetired) = instructions / 8;

    // Pollute the caches with the charge's working set.
    std::uint64_t lines =
        spec.footprintBytes / cfg_.l1d.lineSize;
    std::uint64_t mem_ops =
        at(ev, HwEvent::loadRetired) + at(ev, HwEvent::storeRetired);
    at(ev, HwEvent::l1dReference) = mem_ops;
    if (lines > 0) {
        Addr base = spec.footprintBase;
        if (base == 0) {
            base = kernelScratchBase +
                   static_cast<Addr>(id_) * kernelScratchStride;
        }
        std::uint64_t touched =
            std::min<std::uint64_t>(lines, cfg_.memSampleCap);
        std::uint64_t l1_miss = 0, l2_miss = 0, llc_ref = 0,
                      llc_miss = 0;
        const Addr lineSize = cfg_.l1d.lineSize;
        for (std::uint64_t i = 0; i < touched; ++i) {
            // Stride across the footprint; rotate the start so
            // repeated charges revisit the same lines (a warm
            // working set) while still walking all of it over time.
            Addr a = base +
                     ((kernelScratchCursor_ + i) % lines) * lineSize;
            AccessOutcome out =
                mem_.accessNonTemporal(a, (i % 8) == 0);
            if (out.l1Miss)
                ++l1_miss;
            if (out.l2Miss)
                ++l2_miss;
            if (out.llcRef)
                ++llc_ref;
            if (out.llcMiss)
                ++llc_miss;
        }
        kernelScratchCursor_ =
            (kernelScratchCursor_ + touched) % lines;
        double scale = static_cast<double>(
                           std::min<std::uint64_t>(lines, mem_ops)) /
                       static_cast<double>(touched);
        if (scale < 1.0)
            scale = 1.0;
        auto sc = [&](std::uint64_t n) {
            return static_cast<std::uint64_t>(
                std::llround(static_cast<double>(n) * scale));
        };
        at(ev, HwEvent::l1dMiss) = sc(l1_miss);
        at(ev, HwEvent::l2Reference) = sc(l1_miss);
        at(ev, HwEvent::l2Miss) = sc(l2_miss);
        at(ev, HwEvent::llcReference) = sc(llc_ref);
        at(ev, HwEvent::llcMiss) = sc(llc_miss);
    }

    pmu_.addEvents(ev, spec.priv);
    busyTime_ += spec.duration;
    attributedUpTo_ += spec.duration;
}

void
CpuCore::countEvent(HwEvent ev, std::uint64_t n, PrivLevel priv)
{
    EventVector v = zeroEvents();
    at(v, ev) = n;
    pmu_.addEvents(v, priv);
}

} // namespace klebsim::hw
