/**
 * @file
 * The CPU core model: executes WorkChunks against the memory
 * hierarchy, costs them with a simple IPC/stall model, and
 * attributes the resulting hardware events to the per-core PMU over
 * simulated time.
 *
 * Execution protocol (driven by the kernel scheduler):
 *  1. attachContext(ctx) at context-switch-in.
 *  2. prepare(horizon) — execute chunks ahead until at least
 *     `horizon` ticks of work (or workload completion) are queued;
 *     returns how much of the horizon is runnable and whether the
 *     workload completes inside it.
 *  3. As simulated time passes, syncTo(now) attributes prepared work
 *     (pro-rata within a chunk) to the PMU, so a counter read at any
 *     tick is exact.
 *  4. charge(...) accounts kernel/service overhead occupying core
 *     time: it consumes wall time without consuming prepared work,
 *     which is exactly how monitoring overhead slows the workload.
 *  5. detachContext() at context-switch-out (after a syncTo).
 */

#ifndef KLEBSIM_HW_CPU_CORE_HH
#define KLEBSIM_HW_CPU_CORE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "base/random.hh"
#include "base/types.hh"
#include "exec_context.hh"
#include "exec_types.hh"
#include "machine_config.hh"
#include "mem_hierarchy.hh"
#include "msr.hh"
#include "pmu.hh"
#include "sim/clock_domain.hh"
#include "sim/event_queue.hh"

namespace klebsim::hw
{

/** Result of CpuCore::prepare(). */
struct PrepareResult
{
    /** Runnable time inside the requested horizon. */
    Tick available = 0;

    /** True if the workload retires its last chunk within that. */
    bool completes = false;
};

/** Parameters describing a generic "overhead" charge. */
struct ChargeSpec
{
    Tick duration = 0;
    PrivLevel priv = PrivLevel::kernel;

    /** Bytes of (cache-polluting) data the work touches. */
    std::uint64_t footprintBytes = 0;

    /** Base address of that footprint (0 = core's kernel scratch). */
    Addr footprintBase = 0;

    /** Instructions retired (0 = derive from duration via kernelIpc). */
    std::uint64_t instructions = 0;
};

/**
 * One core: PMU + MSR file + private cache levels + the chunk
 * execution engine.
 */
class CpuCore
{
  public:
    CpuCore(CoreId id, const MachineConfig &cfg, sim::EventQueue &eq,
            Cache *shared_llc, Random rng);

    CoreId id() const { return id_; }
    Pmu &pmu() { return pmu_; }
    MsrFile &msrs() { return msrs_; }
    MemHierarchy &mem() { return mem_; }
    const sim::ClockDomain &clock() const { return clock_; }
    const MachineConfig &config() const { return cfg_; }

    /** TSC as software would read it now. */
    std::uint64_t rdtsc() const;

    /** @{ Context-switch interface. */
    void attachContext(ExecContext *ctx);
    void detachContext();
    ExecContext *currentContext() { return ctx_; }
    /** @} */

    /**
     * Execute chunks ahead so that at least @p horizon ticks of work
     * (measured from the attribution cursor) are prepared.
     */
    PrepareResult prepare(Tick horizon);

    /**
     * Attribute prepared work up to absolute tick @p now.  Must be
     * called before any PMU read or context switch at @p now.
     */
    void syncTo(Tick now);

    /**
     * Account overhead work occupying core time starting at the
     * attribution cursor.  Feeds kernel-mix events to the PMU and
     * pollutes the caches with the charge's footprint.  The caller
     * (kernel) is responsible for extending any pending slice-end
     * deadline by the same duration.
     */
    void charge(const ChargeSpec &spec);

    /**
     * Record bookkeeping events that have no duration (context
     * switch tally, interrupt tally).
     */
    void countEvent(HwEvent ev, std::uint64_t n, PrivLevel priv);

    /** Absolute tick execution has been attributed up to. */
    Tick attributedUpTo() const { return attributedUpTo_; }

    /** Busy time accumulated (for utilization reporting). */
    Tick busyTime() const { return busyTime_; }

  private:
    /**
     * Compiled cost table for streamless chunks.  A chunk that
     * performs no memory accesses (no stream, or loads+stores == 0)
     * is a pure function of its own fields plus the cost-model
     * configuration — no cache state, no RNG — so workload phases
     * that emit runs of identical compute chunks pay the cost model
     * once per (phase, cost class) instead of once per chunk.
     *
     * Multiple entries (round-robin eviction) keep phase boundaries
     * cheap: a workload ping-ponging between phases — or a kernel
     * interleaving instrumentation chunks with compute — holds every
     * live cost class at once, where the old one-entry memo thrashed
     * on each alternation.  Entries also fingerprint the config
     * parameters the cost model reads (mispredict penalty, stall
     * exposure, both clock frequencies), so a mutated machine
     * description can never serve a stale cost — the stale-memo bug
     * class pinned by tests/hw/test_chunk_cache.cc.
     */
    struct ChunkCostTable
    {
        struct Entry
        {
            bool valid = false;

            /** @{ Chunk cost signature. */
            std::uint64_t instructions = 0;
            std::uint64_t loads = 0;
            std::uint64_t stores = 0;
            std::uint64_t branches = 0;
            std::uint64_t muls = 0;
            std::uint64_t divs = 0;
            std::uint64_t fpops = 0;
            std::uint64_t fixedCycles = 0;
            double mispredictRate = 0.0;
            double baseIpc = 0.0;
            double stallExposureScale = 0.0;
            /** @} */

            /** @{ Cost-model configuration fingerprint. */
            std::uint32_t branchMispredictPenalty = 0;
            double memStallExposure = 0.0;
            double coreFreqHz = 0.0;
            double refFreqHz = 0.0;
            /** @} */

            ExecContext::Prepared result;

            bool matches(const WorkChunk &c,
                         const MachineConfig &cfg) const;
        };

        static constexpr std::size_t capacity = 8;
        std::array<Entry, capacity> entries;
        std::size_t nextVictim = 0;

        /**
         * Bumped on every store; an (entry pointer, generation)
         * pair identifies one compiled result for the lifetime of
         * the table, surviving round-robin eviction.
         */
        std::uint64_t generation = 0;

        /** Hot hint: phases hit the same entry in long runs. */
        mutable std::size_t lastHit = 0;

        const Entry *find(const WorkChunk &c,
                          const MachineConfig &cfg) const;
        const Entry *store(const WorkChunk &c,
                           const MachineConfig &cfg,
                           const ExecContext::Prepared &p);
    };

    /**
     * Run one chunk's accesses + cost model into a Prepared record.
     * Dispatches to the cost table + SoA batch fast path or, with
     * cfg_.batchedChunkEngine off, to the retained per-access
     * reference interpreter; both are bit-identical by the 16-seed
     * equivalence sweep.
     */
    ExecContext::Prepared executeChunk(const WorkChunk &chunk);

    /**
     * The shared cost model: sample the chunk's accesses (batched
     * SoA lanes or per-access virtual next()), extrapolate, cost in
     * cycles.
     */
    ExecContext::Prepared modelChunk(const WorkChunk &chunk,
                                     bool batched);

    /** Credit pro-rata chunk progress to the PMU and totals. */
    void creditFront(ExecContext::Prepared &front, Tick g);

    CoreId id_;
    const MachineConfig &cfg_;
    sim::EventQueue &eq_;
    sim::ClockDomain clock_;
    sim::ClockDomain refClock_;
    Random rng_;
    Pmu pmu_;
    MsrFile msrs_;
    MemHierarchy mem_;
    ExecContext *ctx_;
    Tick attributedUpTo_;
    Tick busyTime_;
    Addr kernelScratchCursor_;
    ChunkCostTable costTable_;

    /**
     * @{ The compiled entry (and table generation) that produced
     * the last executeChunk result, null when the result did not
     * come from the table.  Lets prepare() recognize a run of
     * identical chunks by entry identity — no per-field compare —
     * while the generation guards against round-robin reuse.
     */
    const ChunkCostTable::Entry *lastPrepEntry_ = nullptr;
    std::uint64_t lastPrepGen_ = 0;
    /** @} */

    /**
     * @{ SoA sample lanes, sized memSampleCap once at construction:
     * one fillBatch call per chunk fills them contiguously, and the
     * cache-model walk reads plain arrays instead of making one
     * virtual call per access.
     */
    std::vector<Addr> laneAddr_;
    std::vector<std::uint8_t> laneWrite_;
    /** @} */
};

} // namespace klebsim::hw

#endif // KLEBSIM_HW_CPU_CORE_HH
