#include "pmu.hh"

#include "base/logging.hh"

namespace klebsim::hw
{

namespace
{

/** PERFEVTSEL bit positions (Intel SDM). */
constexpr int selUsrBit = 16;
constexpr int selOsBit = 17;
constexpr int selIntBit = 20;
constexpr int selEnBit = 22;

constexpr std::uint64_t bit(int b) { return std::uint64_t(1) << b; }

} // anonymous namespace

Pmu::Pmu()
    : fixed_{}, fixedCtrl_(0), globalCtrl_(0), globalStatus_(0)
{
}

bool
Pmu::decodesMsr(std::uint32_t addr) const
{
    if (addr >= msr::ia32Pmc0 && addr < msr::ia32Pmc0 + numProgrammable)
        return true;
    if (addr >= msr::ia32Perfevtsel0 &&
        addr < msr::ia32Perfevtsel0 + numProgrammable)
        return true;
    if (addr >= msr::ia32FixedCtr0 &&
        addr < msr::ia32FixedCtr0 + numFixed)
        return true;
    return addr == msr::ia32FixedCtrCtrl ||
           addr == msr::ia32PerfGlobalStatus ||
           addr == msr::ia32PerfGlobalCtrl ||
           addr == msr::ia32PerfGlobalOvfCtrl;
}

std::uint64_t
Pmu::readMsr(std::uint32_t addr)
{
    if (addr >= msr::ia32Pmc0 &&
        addr < msr::ia32Pmc0 + numProgrammable) {
        int idx = static_cast<int>(addr - msr::ia32Pmc0);
        observeRead(idx, false);
        return prog_[idx].value;
    }
    if (addr >= msr::ia32Perfevtsel0 &&
        addr < msr::ia32Perfevtsel0 + numProgrammable)
        return prog_[addr - msr::ia32Perfevtsel0].evtsel;
    if (addr >= msr::ia32FixedCtr0 &&
        addr < msr::ia32FixedCtr0 + numFixed) {
        int idx = static_cast<int>(addr - msr::ia32FixedCtr0);
        observeRead(idx, true);
        return fixed_[idx];
    }
    switch (addr) {
      case msr::ia32FixedCtrCtrl:
        return fixedCtrl_;
      case msr::ia32PerfGlobalStatus:
        return globalStatus_;
      case msr::ia32PerfGlobalCtrl:
        return globalCtrl_;
      case msr::ia32PerfGlobalOvfCtrl:
        return 0;
      default:
        panic("PMU readMsr of undecoded address ", addr);
    }
}

void
Pmu::writeMsr(std::uint32_t addr, std::uint64_t value)
{
    if (addr >= msr::ia32Pmc0 &&
        addr < msr::ia32Pmc0 + numProgrammable) {
        prog_[addr - msr::ia32Pmc0].value = value & mask_;
        return;
    }
    if (addr >= msr::ia32Perfevtsel0 &&
        addr < msr::ia32Perfevtsel0 + numProgrammable) {
        int idx = static_cast<int>(addr - msr::ia32Perfevtsel0);
        prog_[idx].evtsel = value;
        decodeSelector(idx);
        return;
    }
    if (addr >= msr::ia32FixedCtr0 &&
        addr < msr::ia32FixedCtr0 + numFixed) {
        fixed_[addr - msr::ia32FixedCtr0] = value & mask_;
        return;
    }
    switch (addr) {
      case msr::ia32FixedCtrCtrl:
        fixedCtrl_ = value;
        return;
      case msr::ia32PerfGlobalCtrl:
        globalCtrl_ = value;
        return;
      case msr::ia32PerfGlobalOvfCtrl:
        // Writing 1-bits clears the corresponding status bits.
        globalStatus_ &= ~value;
        return;
      case msr::ia32PerfGlobalStatus:
        warn("write to read-only IA32_PERF_GLOBAL_STATUS ignored");
        return;
      default:
        panic("PMU writeMsr of undecoded address ", addr);
    }
}

void
Pmu::decodeSelector(int idx)
{
    auto code = static_cast<std::uint8_t>(prog_[idx].evtsel & 0xff);
    auto umask =
        static_cast<std::uint8_t>((prog_[idx].evtsel >> 8) & 0xff);
    prog_[idx].event = eventBySelector(code, umask);
    if (!prog_[idx].event && (prog_[idx].evtsel & bit(selEnBit)))
        warn("PERFEVTSEL", idx, " programmed with unknown selector");
}

std::uint64_t
Pmu::rdpmc(std::uint32_t index)
{
    if (index & rdpmcFixedFlag) {
        std::uint32_t fi = index & ~rdpmcFixedFlag;
        fatal_if(fi >= numFixed, "rdpmc: bad fixed counter index");
        observeRead(static_cast<int>(fi), true);
        return fixed_[fi];
    }
    fatal_if(index >= numProgrammable,
             "rdpmc: bad programmable counter index");
    observeRead(static_cast<int>(index), false);
    return prog_[index].value;
}

void
Pmu::setOverflowCallback(OverflowCallback cb)
{
    overflow_ = std::move(cb);
}

void
Pmu::setReadHook(ReadHook hook)
{
    readHook_ = std::move(hook);
}

void
Pmu::setCounterWidth(int bits)
{
    panic_if(bits < 8 || bits > counterBits,
             "PMU counter width must be in [8, ", counterBits,
             "], got ", bits);
    width_ = bits;
    mask_ = (std::uint64_t(1) << bits) - 1;
    for (auto &pc : prog_)
        pc.value &= mask_;
    for (auto &f : fixed_)
        f &= mask_;
}

void
Pmu::observeRead(int idx, bool fixed)
{
    if (!readHook_)
        return;
    bool programmed =
        fixed ? fixedProgrammed(idx) : counterProgrammed(idx);
    readHook_(idx, fixed, programmed);
}

bool
Pmu::counterActive(int idx) const
{
    panic_if(idx < 0 || idx >= numProgrammable, "bad counter index");
    return (globalCtrl_ & bit(idx)) &&
           (prog_[idx].evtsel & bit(selEnBit)) &&
           prog_[idx].event.has_value();
}

bool
Pmu::fixedActive(int idx) const
{
    panic_if(idx < 0 || idx >= numFixed, "bad fixed counter index");
    std::uint64_t en = (fixedCtrl_ >> (4 * idx)) & 0x3;
    return (globalCtrl_ & bit(32 + idx)) && en != 0;
}

bool
Pmu::counterProgrammed(int idx) const
{
    panic_if(idx < 0 || idx >= numProgrammable, "bad counter index");
    return (prog_[idx].evtsel & bit(selEnBit)) &&
           prog_[idx].event.has_value();
}

bool
Pmu::fixedProgrammed(int idx) const
{
    panic_if(idx < 0 || idx >= numFixed, "bad fixed counter index");
    return ((fixedCtrl_ >> (4 * idx)) & 0x3) != 0;
}

void
Pmu::advance(std::uint64_t &value, std::uint64_t n, int overflow_idx,
             bool pmi)
{
    std::uint64_t before = value;
    value = (value + n) & mask_;
    bool wrapped = (before + n) > mask_;
    if (wrapped) {
        globalStatus_ |= overflow_idx < numProgrammable
                             ? bit(overflow_idx)
                             : bit(32 + (overflow_idx -
                                         numProgrammable));
        if (pmi && overflow_)
            overflow_(overflow_idx);
    }
}

void
Pmu::addEvents(const EventVector &deltas, PrivLevel priv)
{
    bool user = priv == PrivLevel::user;

    // Programmable counters.
    for (int i = 0; i < numProgrammable; ++i) {
        auto &pc = prog_[i];
        if (!counterActive(i))
            continue;
        bool usr_ok = pc.evtsel & bit(selUsrBit);
        bool os_ok = pc.evtsel & bit(selOsBit);
        if ((user && !usr_ok) || (!user && !os_ok))
            continue;
        std::uint64_t n = at(deltas, *pc.event);
        if (n == 0)
            continue;
        advance(pc.value, n, i, pc.evtsel & bit(selIntBit));
    }

    // Fixed counters: 0 = inst retired, 1 = core cycles, 2 = ref
    // cycles.
    static constexpr HwEvent fixed_events[numFixed] = {
        HwEvent::instRetired, HwEvent::coreCycles, HwEvent::refCycles};
    for (int i = 0; i < numFixed; ++i) {
        if (!fixedActive(i))
            continue;
        std::uint64_t en = (fixedCtrl_ >> (4 * i)) & 0x3;
        bool os_ok = en & 0x1;
        bool usr_ok = en & 0x2;
        if ((user && !usr_ok) || (!user && !os_ok))
            continue;
        std::uint64_t n = at(deltas, fixed_events[i]);
        if (n == 0)
            continue;
        bool pmi = (fixedCtrl_ >> (4 * i + 3)) & 0x1;
        advance(fixed_[i], n, numProgrammable + i, pmi);
    }
}

void
Pmu::programCounter(int idx, HwEvent ev, bool usr, bool os, bool pmi)
{
    panic_if(idx < 0 || idx >= numProgrammable, "bad counter index");
    const EventInfo &info = eventInfo(ev);
    std::uint64_t sel = info.code |
                        (std::uint64_t(info.umask) << 8) |
                        bit(selEnBit);
    if (usr)
        sel |= bit(selUsrBit);
    if (os)
        sel |= bit(selOsBit);
    if (pmi)
        sel |= bit(selIntBit);
    writeMsr(msr::ia32Perfevtsel0 + idx, sel);
    writeMsr(msr::ia32Pmc0 + idx, 0);
}

void
Pmu::clearCounter(int idx)
{
    panic_if(idx < 0 || idx >= numProgrammable, "bad counter index");
    writeMsr(msr::ia32Perfevtsel0 + idx, 0);
    writeMsr(msr::ia32Pmc0 + idx, 0);
}

void
Pmu::programFixed(int idx, bool usr, bool os, bool pmi)
{
    panic_if(idx < 0 || idx >= numFixed, "bad fixed counter index");
    std::uint64_t field = 0;
    if (os)
        field |= 0x1;
    if (usr)
        field |= 0x2;
    if (pmi)
        field |= 0x8;
    fixedCtrl_ &= ~(std::uint64_t(0xf) << (4 * idx));
    fixedCtrl_ |= field << (4 * idx);
    fixed_[idx] = 0;
}

void
Pmu::setGlobalCtrl(std::uint64_t mask)
{
    globalCtrl_ = mask;
}

void
Pmu::globalEnableAll()
{
    std::uint64_t mask = 0;
    for (int i = 0; i < numProgrammable; ++i)
        mask |= bit(i);
    for (int i = 0; i < numFixed; ++i)
        mask |= bit(32 + i);
    globalCtrl_ = mask;
}

void
Pmu::globalDisable()
{
    globalCtrl_ = 0;
}

std::uint64_t
Pmu::counterValue(int idx) const
{
    panic_if(idx < 0 || idx >= numProgrammable, "bad counter index");
    return prog_[idx].value;
}

std::uint64_t
Pmu::fixedValue(int idx) const
{
    panic_if(idx < 0 || idx >= numFixed, "bad fixed counter index");
    return fixed_[idx];
}

void
Pmu::setCounterValue(int idx, std::uint64_t value)
{
    panic_if(idx < 0 || idx >= numProgrammable, "bad counter index");
    prog_[idx].value = value & mask_;
}

std::optional<HwEvent>
Pmu::counterEvent(int idx) const
{
    panic_if(idx < 0 || idx >= numProgrammable, "bad counter index");
    return prog_[idx].event;
}

} // namespace klebsim::hw
