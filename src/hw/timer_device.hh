/**
 * @file
 * One-shot hardware timer (LAPIC-timer-like) with a jitter model.
 *
 * The kernel's HRTimer subsystem arms this device; expiry invokes a
 * callback at interrupt priority.  Real high-resolution timers miss
 * their deadline by a platform-dependent error (clock granularity,
 * interrupt coalescing); the paper's section VI discusses how this
 * jitter bounds K-LEB's usable sampling rate, so the device models
 * it explicitly: expiry = requested + |N(0, sigma)| + rare spikes.
 * The error is non-negative — hardware never fires early.
 */

#ifndef KLEBSIM_HW_TIMER_DEVICE_HH
#define KLEBSIM_HW_TIMER_DEVICE_HH

#include <functional>
#include <string>

#include "base/random.hh"
#include "base/types.hh"
#include "sim/event_queue.hh"

namespace klebsim::hw
{

/** Jitter parameters for a timer device. */
struct TimerJitterModel
{
    /** Standard deviation of the per-expiry lateness. */
    Tick sigma = usToTicks(1.5);

    /** Hard cap on lateness. */
    Tick maxLateness = usToTicks(25);

    /** Probability of a coalescing spike per expiry. */
    double spikeProbability = 0.002;

    /** Lateness added by a spike. */
    Tick spikeLateness = usToTicks(15);

    /** Disable all jitter (ideal timer, for unit tests). */
    static TimerJitterModel
    ideal()
    {
        return {0, 0, 0.0, 0};
    }
};

/**
 * A one-shot timer; re-arm from the expiry callback for periodic
 * behaviour (that is exactly what the kernel HRTimer layer does).
 */
class TimerDevice
{
  public:
    /**
     * Expiry callbacks ride in the event queue's small-buffer
     * callable so a periodic re-arm (the kernel's 100 µs HRTimer
     * tick) never touches the heap.
     */
    using Callback = sim::InlineCallable;

    /**
     * Fault-injection hook: called once per arm() with the
     * programmed delay, returns extra lateness (ticks) to add on
     * top of the jitter model's draw.  Unlike the jitter model the
     * extra lateness is NOT capped by maxLateness — a missed tick
     * may slide a whole period.  Null (the default) costs nothing:
     * no call, no RNG draw.
     */
    using FaultHook = std::function<Tick(Tick delay)>;

    TimerDevice(std::string name, sim::EventQueue &eq, Random rng,
                TimerJitterModel jitter = {});

    ~TimerDevice();

    TimerDevice(const TimerDevice &) = delete;
    TimerDevice &operator=(const TimerDevice &) = delete;

    /**
     * Arm for expiry @p delay from now; @p cb runs at timer
     * priority.  Re-arming while armed is a programming error.
     */
    void arm(Tick delay, Callback cb);

    /** Disarm without firing. No-op when idle. */
    void cancel();

    bool armed() const { return event_ != nullptr; }

    /** Lateness applied to the most recent expiry. */
    Tick lastLateness() const { return lastLateness_; }

    const TimerJitterModel &jitterModel() const { return jitter_; }
    void setJitterModel(const TimerJitterModel &m) { jitter_ = m; }

    /** Install (or clear, with null) the fault-injection hook. */
    void setFaultHook(FaultHook hook) { faultHook_ = std::move(hook); }

  private:
    Tick drawLateness();

    std::string name_;
    std::string expiryName_; //!< precomputed "<name>-expiry"
    sim::EventQueue &eq_;
    Random rng_;
    TimerJitterModel jitter_;
    FaultHook faultHook_;
    Callback cb_; //!< pending expiry callback (kept out of the
                  //!< scheduled lambda so that captures only `this`)
    sim::Event *event_;
    Tick lastLateness_;
};

} // namespace klebsim::hw

#endif // KLEBSIM_HW_TIMER_DEVICE_HH
