#include "msr.hh"

#include <vector>

namespace klebsim::hw
{

void
MsrFile::attach(MsrDevice *dev)
{
    devices_.push_back(dev);
}

MsrDevice *
MsrFile::route(std::uint32_t addr) const
{
    // Later attachments shadow earlier ones.
    for (auto it = devices_.rbegin(); it != devices_.rend(); ++it)
        if ((*it)->decodesMsr(addr))
            return *it;
    return nullptr;
}

std::uint64_t
MsrFile::read(std::uint32_t addr)
{
    if (MsrDevice *dev = route(addr))
        return dev->readMsr(addr);
    auto it = backing_.find(addr);
    return it == backing_.end() ? 0 : it->second;
}

void
MsrFile::write(std::uint32_t addr, std::uint64_t value)
{
    if (MsrDevice *dev = route(addr)) {
        dev->writeMsr(addr, value);
        return;
    }
    backing_[addr] = value;
}

} // namespace klebsim::hw
