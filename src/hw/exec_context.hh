/**
 * @file
 * Per-process execution state carried across context switches.
 *
 * The CPU core prepares work (executes chunks against the cache
 * model, computing their duration and event counts) ahead of
 * attribution; attribution then replays the prepared timeline as
 * simulated time passes, so a PMU read at any tick sees exact
 * counts.  Because a process may be preempted mid-chunk and resume
 * on a later slice (or another core), the prepared-but-unattributed
 * queue lives here, with the process, not in the core.
 */

#ifndef KLEBSIM_HW_EXEC_CONTEXT_HH
#define KLEBSIM_HW_EXEC_CONTEXT_HH

#include <cstdint>
#include <deque>

#include "base/types.hh"
#include "exec_types.hh"

namespace klebsim::hw
{

class CpuCore;

/**
 * Prepared-work timeline plus retirement totals for one process.
 */
class ExecContext
{
  public:
    /** @param source the process's workload (not owned). */
    explicit ExecContext(WorkSource *source) : source_(source) {}

    /** True once the source has emitted its final chunk. */
    bool sourceDone() const { return sourceDone_; }

    /** True when no work remains to attribute. */
    bool
    exhausted() const
    {
        return sourceDone_ && queue_.empty();
    }

    /** Prepared but not yet attributed simulated time. */
    Tick preparedAhead() const { return ahead_; }

    /** Total events retired by this context so far. */
    const EventVector &totalEvents() const { return total_; }

    /** Instructions retired so far. */
    std::uint64_t
    instructionsRetired() const
    {
        return at(total_, HwEvent::instRetired);
    }

    /** Floating-point operations completed so far. */
    double flopsDone() const { return flops_; }

    /** CPU time attributed to this context so far. */
    Tick cpuTime() const { return cpuTime_; }

  private:
    friend class CpuCore;

    /** A chunk after cost modeling: fixed duration and counts. */
    struct Prepared
    {
        Tick duration = 0;
        EventVector events{};
        PrivLevel priv = PrivLevel::user;
        double flops = 0.0;
    };

    WorkSource *source_;
    std::deque<Prepared> queue_;
    Tick ahead_ = 0;

    /** @{ Partial attribution of the front chunk. */
    Tick frontAttributed_ = 0;
    EventVector frontCredited_{};
    double frontFlopsCredited_ = 0.0;
    /** @} */

    /**
     * @{ Run-coalescing state (batched chunk engine): queue_.back()
     * is a k-fold multiple of a unit chunk with these parameters.
     * Merging the (k+1)-th identical unit into it is bit-exact for
     * pro-rata integer attribution — floor(kE*t/(kD)) ==
     * floor(E*t/D) for every t — so it holds only for flops == 0
     * units, where no floating-point accumulation can reorder.
     * Invalidated when the back chunk retires.
     */
    bool backMergeable_ = false;
    Tick backUnitDuration_ = 0;
    EventVector backUnitEvents_{};
    PrivLevel backUnitPriv_ = PrivLevel::user;

    /**
     * Identity of the compiled cost-table entry the unit came from
     * (opaque to this class; owned by whichever core prepared it)
     * plus the table generation at that time.  A new chunk served
     * by the same (entry, generation) is byte-identical to the unit
     * without any field compare; a migrated context or an evicted
     * entry simply fails the identity check and falls back to the
     * full comparison.
     */
    const void *backUnitEntry_ = nullptr;
    std::uint64_t backUnitGen_ = 0;
    /** @} */

    bool sourceDone_ = false;
    EventVector total_{};
    double flops_ = 0.0;
    Tick cpuTime_ = 0;
};

} // namespace klebsim::hw

#endif // KLEBSIM_HW_EXEC_CONTEXT_HH
