/**
 * @file
 * Per-process execution state carried across context switches.
 *
 * The CPU core prepares work (executes chunks against the cache
 * model, computing their duration and event counts) ahead of
 * attribution; attribution then replays the prepared timeline as
 * simulated time passes, so a PMU read at any tick sees exact
 * counts.  Because a process may be preempted mid-chunk and resume
 * on a later slice (or another core), the prepared-but-unattributed
 * queue lives here, with the process, not in the core.
 */

#ifndef KLEBSIM_HW_EXEC_CONTEXT_HH
#define KLEBSIM_HW_EXEC_CONTEXT_HH

#include <cstdint>
#include <deque>

#include "base/types.hh"
#include "exec_types.hh"

namespace klebsim::hw
{

class CpuCore;

/**
 * Prepared-work timeline plus retirement totals for one process.
 */
class ExecContext
{
  public:
    /** @param source the process's workload (not owned). */
    explicit ExecContext(WorkSource *source) : source_(source) {}

    /** True once the source has emitted its final chunk. */
    bool sourceDone() const { return sourceDone_; }

    /** True when no work remains to attribute. */
    bool
    exhausted() const
    {
        return sourceDone_ && queue_.empty();
    }

    /** Prepared but not yet attributed simulated time. */
    Tick preparedAhead() const { return ahead_; }

    /** Total events retired by this context so far. */
    const EventVector &totalEvents() const { return total_; }

    /** Instructions retired so far. */
    std::uint64_t
    instructionsRetired() const
    {
        return at(total_, HwEvent::instRetired);
    }

    /** Floating-point operations completed so far. */
    double flopsDone() const { return flops_; }

    /** CPU time attributed to this context so far. */
    Tick cpuTime() const { return cpuTime_; }

  private:
    friend class CpuCore;

    /** A chunk after cost modeling: fixed duration and counts. */
    struct Prepared
    {
        Tick duration = 0;
        EventVector events{};
        PrivLevel priv = PrivLevel::user;
        double flops = 0.0;
    };

    WorkSource *source_;
    std::deque<Prepared> queue_;
    Tick ahead_ = 0;

    /** @{ Partial attribution of the front chunk. */
    Tick frontAttributed_ = 0;
    EventVector frontCredited_{};
    double frontFlopsCredited_ = 0.0;
    /** @} */

    bool sourceDone_ = false;
    EventVector total_{};
    double flops_ = 0.0;
    Tick cpuTime_ = 0;
};

} // namespace klebsim::hw

#endif // KLEBSIM_HW_EXEC_CONTEXT_HH
