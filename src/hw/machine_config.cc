#include "machine_config.hh"

namespace klebsim::hw
{

MachineConfig
MachineConfig::corei7_920()
{
    MachineConfig cfg;
    cfg.name = "corei7-920";
    cfg.numCores = 4;
    cfg.coreFreqHz = 2.67e9;
    cfg.refFreqHz = 2.66e9;

    cfg.l1d = {32 * 1024, 8, 64, ReplPolicy::lru};
    cfg.l2 = {256 * 1024, 8, 64, ReplPolicy::lru};
    cfg.llc = {8 * 1024 * 1024, 16, 64, ReplPolicy::lru};

    cfg.latency = {4, 10, 38, 180, 40};
    return cfg;
}

MachineConfig
MachineConfig::xeon8259cl()
{
    MachineConfig cfg;
    cfg.name = "xeon-8259cl";
    cfg.numCores = 8; // one NUMA slice of the 24-core part
    cfg.coreFreqHz = 2.50e9;
    cfg.refFreqHz = 2.50e9;

    cfg.l1d = {32 * 1024, 8, 64, ReplPolicy::lru};
    cfg.l2 = {1024 * 1024, 16, 64, ReplPolicy::lru};
    // 35.75 MB shared L3 on the real part; model an 11-way 35.75 MB
    // slice-sum (modulo indexing supports the non-pow2 set count).
    cfg.llc = {35 * 1024 * 1024 + 768 * 1024, 11, 64,
               ReplPolicy::lru};

    cfg.latency = {4, 12, 44, 200, 40};
    return cfg;
}

} // namespace klebsim::hw
