/**
 * @file
 * Hardware performance-event catalog.
 *
 * Models the Nehalem-style event space the paper uses: three fixed
 * events (instructions retired, unhalted core cycles, unhalted
 * reference cycles) and a set of programmable architectural and
 * microarchitectural events selected by (event code, umask) pairs,
 * as on real Intel PMUs.
 */

#ifndef KLEBSIM_HW_PERF_EVENT_HH
#define KLEBSIM_HW_PERF_EVENT_HH

#include <array>
#include <cstdint>
#include <optional>
#include <string>

namespace klebsim::hw
{

/** Privilege level of executing code, for counter USR/OS filters. */
enum class PrivLevel
{
    user,
    kernel,
};

/**
 * Every hardware event the simulated PMU can observe.  The first
 * three are the fixed-counter events.
 */
enum class HwEvent : std::uint8_t
{
    instRetired = 0,     //!< fixed ctr 0
    coreCycles,          //!< fixed ctr 1 (unhalted core clock)
    refCycles,           //!< fixed ctr 2 (unhalted reference clock)

    branchRetired,
    branchMispredicted,
    loadRetired,
    storeRetired,
    arithMul,
    arithDiv,
    fpOpsRetired,
    l1dReference,
    l1dMiss,
    l2Reference,
    l2Miss,
    llcReference,
    llcMiss,
    hwInterrupts,
    ctxSwitches,

    numEvents,
};

/** Number of catalogued events. */
constexpr std::size_t numHwEvents =
    static_cast<std::size_t>(HwEvent::numEvents);

/** Dense per-event counts, used to move deltas between layers. */
using EventVector = std::array<std::uint64_t, numHwEvents>;

/** Zero-initialized EventVector. */
inline EventVector
zeroEvents()
{
    return EventVector{};
}

/** Element access by HwEvent. */
inline std::uint64_t &
at(EventVector &v, HwEvent e)
{
    return v[static_cast<std::size_t>(e)];
}

inline std::uint64_t
at(const EventVector &v, HwEvent e)
{
    return v[static_cast<std::size_t>(e)];
}

/** Add @p b into @p a element-wise. */
void accumulate(EventVector &a, const EventVector &b);

/** Static description of one catalogued event. */
struct EventInfo
{
    HwEvent event;
    const char *name;        //!< e.g. "LLC_MISSES"
    std::uint8_t code;       //!< PERFEVTSEL event-select byte
    std::uint8_t umask;      //!< PERFEVTSEL unit-mask byte
    bool fixedOnly;          //!< only countable on a fixed counter
    bool architectural;      //!< deterministic across runs/machines
};

/** Catalog entry for @p e. */
const EventInfo &eventInfo(HwEvent e);

/** Event name ("LLC_MISSES" style). */
const char *eventName(HwEvent e);

/** Reverse lookup by name; nullopt if unknown. */
std::optional<HwEvent> eventByName(const std::string &name);

/**
 * Reverse lookup by (code, umask) programmed into a PERFEVTSEL
 * register; nullopt if no catalogued event matches.
 */
std::optional<HwEvent> eventBySelector(std::uint8_t code,
                                       std::uint8_t umask);

} // namespace klebsim::hw

#endif // KLEBSIM_HW_PERF_EVENT_HH
