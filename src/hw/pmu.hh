/**
 * @file
 * Per-core performance monitoring unit.
 *
 * Nehalem-style layout, matching the paper's section II: three fixed
 * counters (instructions retired, unhalted core cycles, unhalted
 * reference cycles) plus four fully programmable counters selected
 * via IA32_PERFEVTSEL event/umask pairs, with USR/OS privilege
 * filters, a global enable register, 48-bit width, and overflow
 * notification for interrupt-based sampling.
 *
 * Software (the K-LEB module, the perf subsystem model, LiMiT's
 * patch) programs the PMU through the MsrDevice interface; the CPU
 * core feeds it event deltas as execution is attributed.
 */

#ifndef KLEBSIM_HW_PMU_HH
#define KLEBSIM_HW_PMU_HH

#include <array>
#include <cstdint>
#include <functional>
#include <optional>

#include "msr.hh"
#include "perf_event.hh"

namespace klebsim::hw
{

/**
 * The PMU of one core.
 */
class Pmu : public MsrDevice
{
  public:
    static constexpr int numProgrammable = 4;
    static constexpr int numFixed = 3;
    static constexpr int counterBits = 48;
    static constexpr std::uint64_t counterMask =
        (std::uint64_t(1) << counterBits) - 1;

    /** rdpmc index bit selecting the fixed-counter bank. */
    static constexpr std::uint32_t rdpmcFixedFlag = 0x40000000;

    /**
     * Callback invoked when an enabled counter wraps (sampling PMI).
     * Argument is the counter index: 0..3 programmable, 4..6 fixed.
     */
    using OverflowCallback = std::function<void(int counter)>;

    /**
     * Observer for architectural counter reads (RDMSR of a counter
     * MSR, or RDPMC).  @p fixed selects the bank, @p idx the counter
     * within it, and @p programmed whether that counter currently
     * has a valid selector/enable field — the invariant checker
     * (src/analysis/invariants.hh) flags reads of never-programmed
     * counters, a classic driver bug that silently yields zeros.
     */
    using ReadHook = std::function<void(int idx, bool fixed,
                                        bool programmed)>;

    Pmu();

    /** @{ MsrDevice interface. */
    bool decodesMsr(std::uint32_t addr) const override;
    std::uint64_t readMsr(std::uint32_t addr) override;
    void writeMsr(std::uint32_t addr, std::uint64_t value) override;
    /** @} */

    /**
     * RDPMC as seen from user space (LiMiT's fast path).  @p index
     * is 0..3 for programmable counters, or rdpmcFixedFlag | i for
     * fixed counter i.
     */
    std::uint64_t rdpmc(std::uint32_t index);

    /** Install the overflow (PMI) callback. */
    void setOverflowCallback(OverflowCallback cb);

    /** Install the counter-read observer (null to remove). */
    void setReadHook(ReadHook hook);

    /**
     * Override the effective counter width (fault injection: narrow
     * counters wrap sooner, exercising driver overflow handling).
     * @p bits must be in [8, counterBits]; existing counter values
     * are truncated to the new width.  The architectural default is
     * counterBits (48).
     */
    void setCounterWidth(int bits);

    /** Effective counter width in bits. */
    int counterWidth() const { return width_; }

    /** Mask for the effective width (modulus - 1). */
    std::uint64_t counterMaskValue() const { return mask_; }

    /**
     * Feed an attribution of executed work into the counters.  Each
     * enabled counter whose event appears in @p deltas and whose
     * privilege filter matches @p priv advances.
     */
    void addEvents(const EventVector &deltas, PrivLevel priv);

    /** @{ Programming convenience used by driver models. */

    /**
     * Program programmable counter @p idx to count @p ev.
     * @param usr count user-mode occurrences
     * @param os count kernel-mode occurrences
     * @param pmi raise the overflow callback on wrap
     */
    void programCounter(int idx, HwEvent ev, bool usr = true,
                        bool os = false, bool pmi = false);

    /** Disable programmable counter @p idx and clear its count. */
    void clearCounter(int idx);

    /** Set fixed counter @p idx enable bits (0 disables). */
    void programFixed(int idx, bool usr, bool os, bool pmi = false);

    /** Write the global-enable register (bit i = PMCi, 32+i = FIXEDi). */
    void setGlobalCtrl(std::uint64_t mask);

    /** Enable everything currently programmed. */
    void globalEnableAll();

    /** Freeze all counters (global ctrl = 0). */
    void globalDisable();

    /** @} */

    /** @{ State inspection. */

    /** Raw value of programmable counter @p idx. */
    std::uint64_t counterValue(int idx) const;

    /** Raw value of fixed counter @p idx. */
    std::uint64_t fixedValue(int idx) const;

    /** Set a programmable counter (e.g. to -period for sampling). */
    void setCounterValue(int idx, std::uint64_t value);

    /** Event currently selected on programmable counter @p idx. */
    std::optional<HwEvent> counterEvent(int idx) const;

    /** True if programmable counter @p idx is enabled and counting. */
    bool counterActive(int idx) const;

    /** True if fixed counter @p idx is enabled and counting. */
    bool fixedActive(int idx) const;

    /**
     * True if programmable counter @p idx has a valid, enabled
     * selector — regardless of the global-enable freeze, which
     * drivers drop while snapshotting.
     */
    bool counterProgrammed(int idx) const;

    /** True if fixed counter @p idx has enable bits set. */
    bool fixedProgrammed(int idx) const;

    /** @} */

    /** @{ Advisory ownership (perf_event-style counter claiming).
     *
     * Hardware does not arbitrate the PMU; software conventions do.
     * A driver claims a core's counters before programming them and
     * releases them when it stops; a second claimant gets EBUSY
     * instead of silently clobbering live selectors.  Purely
     * advisory: programming without a claim still works (legacy
     * tools), it just forfeits the protection.
     */

    /**
     * Claim the PMU for @p owner (a nonzero cookie).  Returns true
     * on success or when @p owner already holds it; false when a
     * different owner does.
     */
    bool
    tryAcquire(std::uint64_t owner)
    {
        if (owner_ != 0 && owner_ != owner)
            return false;
        owner_ = owner;
        return true;
    }

    /** Release the claim held by @p owner (no-op for others). */
    void
    release(std::uint64_t owner)
    {
        if (owner_ == owner)
            owner_ = 0;
    }

    /** Current owner cookie (0 = unclaimed). */
    std::uint64_t owner() const { return owner_; }

    /** @} */

  private:
    struct ProgCounter
    {
        std::uint64_t evtsel = 0;  //!< raw PERFEVTSEL image
        std::uint64_t value = 0;   //!< 48-bit count
        std::optional<HwEvent> event;
    };

    /** Decode the PERFEVTSEL image into the cached event. */
    void decodeSelector(int idx);

    /** Advance one counter by @p n and fire overflow on wrap. */
    void advance(std::uint64_t &value, std::uint64_t n,
                 int overflow_idx, bool pmi);

    /** Report an architectural read to the read hook, if any. */
    void observeRead(int idx, bool fixed);

    std::array<ProgCounter, numProgrammable> prog_;
    std::array<std::uint64_t, numFixed> fixed_;
    int width_ = counterBits;
    std::uint64_t mask_ = counterMask;
    std::uint64_t fixedCtrl_;
    std::uint64_t globalCtrl_;
    std::uint64_t globalStatus_;
    std::uint64_t owner_ = 0;
    OverflowCallback overflow_;
    ReadHook readHook_;
};

} // namespace klebsim::hw

#endif // KLEBSIM_HW_PMU_HH
