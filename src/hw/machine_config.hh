/**
 * @file
 * Static description of a simulated machine: core count, clock
 * frequencies, cache geometry, and micro-timing parameters.
 *
 * Two presets mirror the paper's testbeds: the local Intel Core
 * i7-920 (Nehalem) and the AWS Xeon Platinum 8259CL (Cascade Lake)
 * used for validation runs.
 */

#ifndef KLEBSIM_HW_MACHINE_CONFIG_HH
#define KLEBSIM_HW_MACHINE_CONFIG_HH

#include <cstdint>
#include <string>

#include "cache.hh"

namespace klebsim::hw
{

/** Per-level access latencies, in core cycles. */
struct MemLatency
{
    std::uint32_t l1 = 4;
    std::uint32_t l2 = 10;
    std::uint32_t llc = 38;
    std::uint32_t dram = 180;
    std::uint32_t clflush = 40;
};

/** Pipeline/IPC model parameters. */
struct PipelineModel
{
    /** Cycles lost per mispredicted branch. */
    std::uint32_t branchMispredictPenalty = 17;

    /**
     * Fraction of memory-stall cycles that are NOT hidden by
     * out-of-order overlap (1.0 = fully serialized).
     */
    double memStallExposure = 0.55;

    /** IPC of generic kernel-mode work (interrupt/syscall bodies). */
    double kernelIpc = 1.1;
};

/** Whole-machine configuration. */
struct MachineConfig
{
    std::string name = "generic";
    int numCores = 4;
    double coreFreqHz = 2.67e9;
    /** Reference (TSC) clock, for the fixed REF cycles counter. */
    double refFreqHz = 133.0e6 * 20; // 2.66 GHz bus-derived clock

    CacheGeometry l1d;
    CacheGeometry l2;
    CacheGeometry llc;
    MemLatency latency;
    PipelineModel pipeline;

    /**
     * Cap on real cache-model accesses issued per work chunk; the
     * remainder of the chunk's accesses are extrapolated from the
     * sampled miss rates (see DESIGN.md "two execution fidelities").
     */
    std::uint32_t memSampleCap = 192;

    /**
     * Select the batched chunk engine: per-phase cost tables for
     * streamless chunks, run coalescing of identical prepared
     * chunks, and SoA-packed address batches for sampled accesses.
     * Off selects the retained reference interpreter (one cost
     * model evaluation and one virtual stream call per access) the
     * 16-seed equivalence sweep compares against; both produce
     * bit-identical counts, RNG draws, and sample bytes.
     */
    bool batchedChunkEngine = true;

    /** The paper's local testbed: Intel Core i7-920 @ 2.67 GHz. */
    static MachineConfig corei7_920();

    /** The paper's AWS validation box: Xeon Platinum 8259CL. */
    static MachineConfig xeon8259cl();
};

} // namespace klebsim::hw

#endif // KLEBSIM_HW_MACHINE_CONFIG_HH
