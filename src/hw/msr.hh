/**
 * @file
 * Model-specific register (MSR) addresses and a per-core MSR file.
 *
 * Kernel-side code (the K-LEB module, the perf subsystem, LiMiT's
 * kernel patch) programs the PMU by writing these registers, exactly
 * as the real drivers issue WRMSR/RDMSR.
 */

#ifndef KLEBSIM_HW_MSR_HH
#define KLEBSIM_HW_MSR_HH

#include <cstdint>
#include <map>
#include <vector>

namespace klebsim::hw
{

/** Architectural MSR addresses used by the performance counters. */
namespace msr
{

constexpr std::uint32_t ia32Tsc = 0x10;
constexpr std::uint32_t ia32Pmc0 = 0xc1;        //!< ..0xc4 for PMC0-3
constexpr std::uint32_t ia32Perfevtsel0 = 0x186; //!< ..0x189
constexpr std::uint32_t ia32FixedCtr0 = 0x309;   //!< ..0x30b
constexpr std::uint32_t ia32FixedCtrCtrl = 0x38d;
constexpr std::uint32_t ia32PerfGlobalStatus = 0x38e;
constexpr std::uint32_t ia32PerfGlobalCtrl = 0x38f;
constexpr std::uint32_t ia32PerfGlobalOvfCtrl = 0x390;

} // namespace msr

/**
 * Interface for devices that back a range of MSR addresses.
 */
class MsrDevice
{
  public:
    virtual ~MsrDevice() = default;

    /** @return true if this device decodes @p addr. */
    virtual bool decodesMsr(std::uint32_t addr) const = 0;

    /** RDMSR. */
    virtual std::uint64_t readMsr(std::uint32_t addr) = 0;

    /** WRMSR. */
    virtual void writeMsr(std::uint32_t addr, std::uint64_t value) = 0;
};

/**
 * Per-core MSR routing: devices claim addresses; unclaimed addresses
 * fall back to plain storage (reads of never-written MSRs yield 0).
 */
class MsrFile
{
  public:
    /** Register a device; later registrations win on overlap. */
    void attach(MsrDevice *dev);

    /** RDMSR through the routed device or backing store. */
    std::uint64_t read(std::uint32_t addr);

    /** WRMSR through the routed device or backing store. */
    void write(std::uint32_t addr, std::uint64_t value);

  private:
    MsrDevice *route(std::uint32_t addr) const;

    std::vector<MsrDevice *> devices_;
    std::map<std::uint32_t, std::uint64_t> backing_;
};

} // namespace klebsim::hw

#endif // KLEBSIM_HW_MSR_HH
