#include "link.hh"

#include "base/random.hh"
#include "bench_support/trial_pool.hh"
#include "fault/fault_plan.hh"

namespace klebsim::fleet
{

LinkStats
transmit(const MachineOutput &machine, const LinkParams &params,
         std::uint64_t fault_seed, std::vector<Delivery> *deliveries)
{
    LinkStats stats;

    // One parent stream per machine, one fork per fault point: the
    // same layout the FaultInjector uses, so enabling link.delay
    // cannot perturb the link.drop schedule and vice versa.
    Random parent(bench::trialSeed(fault_seed, 0xF1EE7u,
                                   machine.id));
    Random drop_rng = parent.fork(static_cast<std::uint64_t>(
        fault::FaultPoint::linkDrop));
    Random delay_rng = parent.fork(static_cast<std::uint64_t>(
        fault::FaultPoint::linkDelay));
    Random jitter_rng = parent.fork(0x117u);

    for (const WireRecord &rec : machine.records) {
        const Tick jitter =
            params.jitterMax > 0
                ? static_cast<Tick>(jitter_rng.below(
                      static_cast<std::uint32_t>(params.jitterMax)))
                : 0;
        const bool dropped = drop_rng.chance(params.dropProb);
        const bool delayed = delay_rng.chance(params.delayProb);
        if (dropped) {
            ++stats.dropped;
            continue;
        }
        Delivery d;
        d.rec = rec;
        d.arrival = rec.ts + params.baseLatency + jitter;
        if (delayed) {
            d.arrival += params.delayBy;
            ++stats.delayed;
        }
        deliveries->push_back(d);
        ++stats.delivered;
    }
    return stats;
}

} // namespace klebsim::fleet
