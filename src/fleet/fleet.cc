#include "fleet.hh"

#include <algorithm>
#include <optional>

#include "base/logging.hh"
#include "base/random.hh"
#include "base/str.hh"
#include "machine.hh"

namespace klebsim::fleet
{

const char *const fleetCsvHeader =
    "scope,machines,observations,kept,dropped,vanished,quarantined,"
    "holes,ipc_mean,ipc_p50,ipc_p99,ipc_wmin,ipc_wmax,mpki_mean,"
    "mpki_p50,mpki_p99";

namespace
{

/**
 * The machine.crash schedule: whether (and when) machine @p id
 * crashes under @p plan.  One forked stream per machine, salted by
 * the fault point — the FaultInjector's per-point discipline — so
 * the schedule is independent of every other draw in the run.
 */
Tick
machineCrashAt(const fault::FaultPlan &plan, std::uint64_t seed,
               MachineId id)
{
    if (plan.machineCrashProb <= 0.0)
        return 0;
    Random rng(bench::trialSeed(
        seed ^ plan.seed,
        static_cast<std::uint64_t>(
            fault::FaultPoint::machineCrash),
        id));
    if (!rng.chance(plan.machineCrashProb))
        return 0;
    // Crash somewhere in the meat of the run: early enough that a
    // tail of samples vanishes, late enough that some were sent.
    return static_cast<Tick>(
        rng.uniform(0.3, 0.8) *
        static_cast<double>(nominalMachineLifetime));
}

std::string
csvRow(const char *scope, std::uint64_t machines,
       const NodeStats &node, std::uint64_t kept,
       std::uint64_t dropped, std::uint64_t vanished,
       std::uint64_t quarantined, std::uint64_t holes)
{
    const Reduction &ipc = node.ipc;
    const Reduction &mpki = node.mpki;
    return csprintf(
        "%s,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
        "%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g",
        scope, (unsigned long long)machines,
        (unsigned long long)ipc.lifetime().count(),
        (unsigned long long)kept, (unsigned long long)dropped,
        (unsigned long long)vanished,
        (unsigned long long)quarantined, (unsigned long long)holes,
        ipc.lifetime().count() ? ipc.lifetime().mean() : 0.0,
        ipc.windowPercentile(50), ipc.windowPercentile(99),
        ipc.windowMin(), ipc.windowMax(),
        mpki.lifetime().count() ? mpki.lifetime().mean() : 0.0,
        mpki.windowPercentile(50), mpki.windowPercentile(99));
}

} // anonymous namespace

std::vector<MachineShardResult>
simulateMachines(const FleetConfig &cfg,
                 const fault::FaultPlan &plan,
                 bench::TrialPool &pool,
                 std::vector<bench::TrialFailure> *simFailures)
{
    LinkParams link;
    link.baseLatency = cfg.linkLatency;
    link.jitterMax = cfg.linkJitter;
    link.dropProb = plan.linkDropProb;
    link.delayProb = plan.linkDelayProb;
    link.delayBy = plan.linkDelayBy;

    // Simulate the machine AND cross its uplink inside the worker:
    // transmit() draws only from a per-machine forked stream, so
    // the phase-2 work parallelizes with the phase-1 work it feeds.
    auto slots = pool.tryMap(
        cfg.machines,
        [&](std::size_t i) {
            MachineParams p;
            p.id = static_cast<MachineId>(i);
            p.seed = cfg.seed;
            p.cores = cfg.coresPerMachine;
            p.period = cfg.period;
            p.crashAt = machineCrashAt(plan, cfg.seed, p.id);

            MachineShardResult shard;
            MachineOutput out = runMachine(p);
            shard.account.machine = p.id;
            shard.account.produced = out.produced;
            shard.account.vanished = out.vanishedLocal;
            shard.account.crashed = out.crashed;
            LinkStats ls = transmit(out, link, cfg.seed,
                                    &shard.deliveries);
            shard.account.sent = ls.delivered + ls.dropped;
            shard.account.dropped = ls.dropped;
            shard.account.delayed = ls.delayed;
            return shard;
        },
        simFailures);

    std::vector<MachineShardResult> shards(cfg.machines);
    for (MachineId m = 0; m < cfg.machines; ++m) {
        if (slots[m]) {
            shards[m] = std::move(*slots[m]);
        } else {
            shards[m].account.machine = m;
            shards[m].account.simFailed = true;
        }
    }
    return shards;
}

FleetResult
runFleet(const FleetConfig &cfg)
{
    fatal_if(cfg.machines == 0 || cfg.coresPerMachine == 0 ||
                 cfg.rackSize == 0,
             "fleet with an empty topology");

    FleetResult result;
    if (!cfg.faultSpec.empty()) {
        std::string err;
        fatal_if(!fault::FaultPlan::parse(cfg.faultSpec,
                                          &result.plan, &err),
                 "bad fleet fault spec: ", err);
    }
    const fault::FaultPlan &plan = result.plan;

    // Phases 1+2: simulate every machine and cross its lossy link,
    // sharded across workers.  A worker that dies takes exactly its
    // machine down; tryMap keeps the surviving shards
    // byte-identical.
    bench::TrialPool pool(cfg.jobs);
    std::vector<MachineShardResult> shards = simulateMachines(
        cfg, plan, pool, &result.simFailures);

    // Splice the per-machine delivery vectors in machine-id order —
    // the exact pre-sort order the sequential loop produced — so
    // the phase-3 sort sees an identical input permutation and the
    // merged stream is byte-for-byte jobs-invariant.
    result.accounts.resize(cfg.machines);
    std::size_t total_deliveries = 0;
    for (const MachineShardResult &s : shards)
        total_deliveries += s.deliveries.size();
    std::vector<Delivery> deliveries;
    deliveries.reserve(total_deliveries);
    for (MachineId m = 0; m < cfg.machines; ++m) {
        result.accounts[m] = shards[m].account;
        deliveries.insert(deliveries.end(),
                          shards[m].deliveries.begin(),
                          shards[m].deliveries.end());
    }

    // Phase 3: one sequential drain in deterministic merge order.
    std::sort(deliveries.begin(), deliveries.end(),
              deliveryBefore);

    CollectorConfig ccfg;
    ccfg.machines = cfg.machines;
    ccfg.coresPerMachine = cfg.coresPerMachine;
    ccfg.rackSize = cfg.rackSize;
    ccfg.heartbeatTimeout = cfg.heartbeatTimeout;
    ccfg.probeBudget = cfg.probeBudget;
    ccfg.drainCost = cfg.drainCost;
    ccfg.backpressureLag = cfg.backpressureLag;
    ccfg.checkpointEvery = cfg.checkpointEvery;
    ccfg.crashAt = plan.collectorCrashAt;

    Collector collector(ccfg);
    collector.ingest(deliveries);
    const Tick last_arrival =
        deliveries.empty() ? 0 : deliveries.back().arrival;
    collector.finish(last_arrival + collector.quarantineAfter() +
                     1);

    // Fold the collector's per-peer view into the ledgers.
    for (MachineId m = 0; m < cfg.machines; ++m) {
        const PeerState &p = collector.peer(m);
        MachineAccount &acct = result.accounts[m];
        acct.kept = p.kept;
        acct.vanished += p.reordered;
        acct.quarantined = p.lateDiscarded;
        acct.isQuarantined = p.quarantined;
        result.aggregateAccounted += acct.kept + acct.dropped +
                                     acct.vanished +
                                     acct.quarantined;
    }

    result.collector = collector.stats();
    result.holes = collector.holes();

    // The aggregate CSV: one row per rack plus a fleet row, every
    // number a pure function of the merged stream.
    const MonitorTree &tree = collector.tree();
    std::vector<std::string> lines;
    lines.emplace_back(fleetCsvHeader);
    for (std::uint32_t r = 0; r < tree.racks(); ++r) {
        const std::uint32_t lo = r * cfg.rackSize;
        const std::uint32_t hi =
            std::min(lo + cfg.rackSize, cfg.machines);
        std::uint64_t kept = 0, dropped = 0, vanished = 0,
                      quarantined = 0, holes = 0;
        for (std::uint32_t m = lo; m < hi; ++m) {
            const MachineAccount &a = result.accounts[m];
            kept += a.kept;
            dropped += a.dropped;
            vanished += a.vanished;
            quarantined += a.quarantined;
            holes += a.isQuarantined ? 1 : 0;
        }
        lines.push_back(csvRow(csprintf("rack%u", r).c_str(),
                               hi - lo, tree.rack(r), kept,
                               dropped, vanished, quarantined,
                               holes));
    }
    {
        std::uint64_t kept = 0, dropped = 0, vanished = 0,
                      quarantined = 0;
        for (const MachineAccount &a : result.accounts) {
            kept += a.kept;
            dropped += a.dropped;
            vanished += a.vanished;
            quarantined += a.quarantined;
        }
        lines.push_back(csvRow("fleet", cfg.machines, tree.fleet(),
                               kept, dropped, vanished, quarantined,
                               result.holes.size()));
    }
    result.csv = join(lines, "\n") + "\n";
    result.csvDigest = kleb::crc32c(
        reinterpret_cast<const std::uint8_t *>(result.csv.data()),
        result.csv.size());

    result.tree = tree; // copy before the collector goes away
    result.treeDigest = result.tree.digest();
    return result;
}

} // namespace klebsim::fleet
