/**
 * @file
 * Fleet orchestration: N simulated machines, one collector.
 *
 * runFleet() is three deterministic phases:
 *
 *  1. machine simulations, sharded across bench::TrialPool workers
 *     (crash-tolerant tryMap: a worker that dies mid-trial becomes
 *     an accounted dead machine, never a lost run);
 *  2. per-machine lossy-link transmission (pure per-machine RNG);
 *  3. one sequential collector drain over the globally sorted
 *     delivery stream.
 *
 * Every stochastic decision derives from (seed, machine id) through
 * the shared splitmix64 mixer, and the merge order is
 * (arrival, machine, core, seq) — so the aggregate CSV and the tree
 * digest are byte-identical at any --jobs value, with or without a
 * collector crash.
 */

#ifndef KLEBSIM_FLEET_FLEET_HH
#define KLEBSIM_FLEET_FLEET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"
#include "bench_support/trial_pool.hh"
#include "collector.hh"
#include "fault/fault_plan.hh"
#include "link.hh"
#include "monitor_tree.hh"
#include "wire.hh"

namespace klebsim::fleet
{

/** Fleet-run parameters. */
struct FleetConfig
{
    std::uint32_t machines = 64;
    std::uint32_t coresPerMachine = 2;
    std::uint32_t rackSize = 32;

    std::uint64_t seed = 1;

    /** TrialPool workers for the machine phase (0 = host cores). */
    unsigned jobs = 1;

    /** K-LEB sampling period on every machine. */
    Tick period = usToTicks(100);

    /**
     * Fleet fault plan spec (fault/fault_plan.hh): machine.crash,
     * link.drop, link.delay[.by], collector.crash, plus a seed.
     * Empty runs the fleet fault-free.
     */
    std::string faultSpec;

    /** @{ Collector tuning (see CollectorConfig). */
    Tick heartbeatTimeout = msToTicks(1);
    int probeBudget = 3;
    Tick drainCost = 50 * tickPerNs;
    Tick backpressureLag = usToTicks(100);
    std::uint64_t checkpointEvery = 0;
    /** @} */

    /** @{ Link tuning (see LinkParams). */
    Tick linkLatency = usToTicks(50);
    Tick linkJitter = usToTicks(20);
    /** @} */
};

/** Everything a fleet run produced. */
struct FleetResult
{
    /** Parsed fault plan the run used. */
    fault::FaultPlan plan;

    /** Per-machine ledgers, indexed by machine id. */
    std::vector<MachineAccount> accounts;

    /** Collector operational + accounting counters. */
    CollectorStats collector;

    /** Explicit holes for quarantined machines. */
    std::vector<FleetHole> holes;

    /** The final monitor tree (moved out of the collector). */
    MonitorTree tree{1, 1, 1};

    /** CRC32C over the tree's full encoded state. */
    std::uint32_t treeDigest = 0;

    /** The aggregate CSV (rack rows + fleet row; pinned header). */
    std::string csv;

    /** CRC32C over the CSV bytes. */
    std::uint32_t csvDigest = 0;

    /**
     * Sum over machines of kept+dropped+vanished+quarantined; the
     * checkFleetBalance invariant requires this to equal the sum of
     * what every machine produced.
     */
    std::uint64_t aggregateAccounted = 0;

    /** Machine simulations that died in their worker. */
    std::vector<bench::TrialFailure> simFailures;
};

/** The pinned header of FleetResult::csv (bench comparators). */
extern const char *const fleetCsvHeader;

/**
 * One machine's contribution to the fleet run: its ledger (as far
 * as the machine side can fill it) plus the deliveries that
 * survived its uplink, still in per-machine emission order.
 */
struct MachineShardResult
{
    MachineAccount account;
    std::vector<Delivery> deliveries;
};

/**
 * Phases 1+2 of runFleet(): simulate every machine and push its
 * stream through its lossy uplink, sharded across @p pool workers.
 * Entry m of the result holds machine m's ledger and deliveries
 * regardless of which worker ran it; a machine whose simulation
 * died in its worker is recorded in @p simFailures and marked
 * simFailed, and perturbs no other shard.  Deterministic at any
 * pool width: every stochastic decision derives from
 * (cfg.seed, machine id) through the shared splitmix64 mixer.
 */
std::vector<MachineShardResult> simulateMachines(
    const FleetConfig &cfg, const fault::FaultPlan &plan,
    bench::TrialPool &pool,
    std::vector<bench::TrialFailure> *simFailures);

/** Run one fleet end to end. */
FleetResult runFleet(const FleetConfig &cfg);

} // namespace klebsim::fleet

#endif // KLEBSIM_FLEET_FLEET_HH
