#include "monitor_tree.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "base/logging.hh"
#include "kleb/durable_log.hh"

namespace klebsim::fleet
{

void
Reduction::add(double x)
{
    life_.add(x);
    ring_[pushed_ % window] = x;
    ++pushed_;
}

std::size_t
Reduction::windowCount() const
{
    return pushed_ < window ? static_cast<std::size_t>(pushed_)
                            : window;
}

namespace
{

/** The window's values, sorted ascending (small fixed copy). */
std::array<double, Reduction::window>
sortedWindow(const std::array<double, Reduction::window> &ring,
             std::size_t n)
{
    std::array<double, Reduction::window> v = ring;
    std::sort(v.begin(), v.begin() + n);
    return v;
}

} // anonymous namespace

double
Reduction::windowMin() const
{
    const std::size_t n = windowCount();
    if (n == 0)
        return 0.0;
    return *std::min_element(ring_.begin(), ring_.begin() + n);
}

double
Reduction::windowMax() const
{
    const std::size_t n = windowCount();
    if (n == 0)
        return 0.0;
    return *std::max_element(ring_.begin(), ring_.begin() + n);
}

double
Reduction::windowPercentile(double p) const
{
    const std::size_t n = windowCount();
    if (n == 0)
        return 0.0;
    const auto v = sortedWindow(ring_, n);
    if (n == 1)
        return v[0];
    const double rank =
        p / 100.0 * static_cast<double>(n - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, n - 1);
    const double frac = rank - static_cast<double>(lo);
    return v[lo] + (v[hi] - v[lo]) * frac;
}

void
Reduction::encode(std::vector<std::uint64_t> *out) const
{
    const stats::RunningStats::RawState raw = life_.rawState();
    out->insert(out->end(), raw.begin(), raw.end());
    out->push_back(pushed_);
    for (double x : ring_)
        out->push_back(std::bit_cast<std::uint64_t>(x));
}

bool
Reduction::decode(const std::uint64_t **cursor,
                  const std::uint64_t *end)
{
    constexpr std::size_t need =
        stats::RunningStats::rawWords + 1 + window;
    if (static_cast<std::size_t>(end - *cursor) < need)
        return false;
    const std::uint64_t *at = *cursor;
    stats::RunningStats::RawState raw;
    for (std::size_t i = 0; i < stats::RunningStats::rawWords; ++i)
        raw[i] = at[i];
    life_ = stats::RunningStats::fromRawState(raw);
    at += stats::RunningStats::rawWords;
    pushed_ = *at++;
    for (std::size_t i = 0; i < window; ++i)
        ring_[i] = std::bit_cast<double>(at[i]);
    *cursor = at + window;
    return true;
}

MonitorTree::MonitorTree(std::uint32_t machines,
                         std::uint32_t cores_per_machine,
                         std::uint32_t rack_size)
    : machines_(machines), coresPer_(cores_per_machine),
      rackSize_(rack_size)
{
    panic_if(machines == 0 || cores_per_machine == 0 ||
                 rack_size == 0,
             "MonitorTree with an empty topology");
    cores_.resize(static_cast<std::size_t>(machines) *
                  cores_per_machine);
    machineNodes_.resize(machines);
    rackNodes_.resize(racks());
}

std::uint32_t
MonitorTree::racks() const
{
    return (machines_ + rackSize_ - 1) / rackSize_;
}

void
MonitorTree::observe(MachineId machine, std::uint32_t core,
                     double ipc, double mpki)
{
    panic_if(machine >= machines_ || core >= coresPer_,
             "observation outside the fleet topology");
    NodeStats &c =
        cores_[static_cast<std::size_t>(machine) * coresPer_ + core];
    NodeStats &m = machineNodes_[machine];
    NodeStats &r = rackNodes_[machine / rackSize_];
    for (NodeStats *node : {&c, &m, &r, &fleet_}) {
        node->ipc.add(ipc);
        node->mpki.add(mpki);
    }
    ++observations_;
}

const NodeStats &
MonitorTree::core(MachineId m, std::uint32_t c) const
{
    panic_if(m >= machines_ || c >= coresPer_,
             "core node outside the fleet topology");
    return cores_[static_cast<std::size_t>(m) * coresPer_ + c];
}

const NodeStats &
MonitorTree::machine(MachineId m) const
{
    panic_if(m >= machines_, "machine node outside the topology");
    return machineNodes_[m];
}

const NodeStats &
MonitorTree::rack(std::uint32_t r) const
{
    panic_if(r >= racks(), "rack node outside the topology");
    return rackNodes_[r];
}

namespace
{

constexpr std::uint64_t treeMagic = 0x3145455254464c4bULL; // KLFTREE1

void
encodeNode(const NodeStats &node, std::vector<std::uint64_t> *out)
{
    node.ipc.encode(out);
    node.mpki.encode(out);
}

bool
decodeNode(NodeStats *node, const std::uint64_t **cursor,
           const std::uint64_t *end)
{
    return node->ipc.decode(cursor, end) &&
           node->mpki.decode(cursor, end);
}

} // anonymous namespace

void
MonitorTree::encode(std::vector<std::uint8_t> *out) const
{
    std::vector<std::uint64_t> words;
    words.reserve(5 + (cores_.size() + machineNodes_.size() +
                       rackNodes_.size() + 1) *
                          2 * (stats::RunningStats::rawWords + 1 +
                               Reduction::window));
    words.push_back(treeMagic);
    words.push_back((static_cast<std::uint64_t>(machines_) << 32) |
                    coresPer_);
    words.push_back(rackSize_);
    words.push_back(observations_);
    for (const NodeStats &n : cores_)
        encodeNode(n, &words);
    for (const NodeStats &n : machineNodes_)
        encodeNode(n, &words);
    for (const NodeStats &n : rackNodes_)
        encodeNode(n, &words);
    encodeNode(fleet_, &words);

    out->reserve(out->size() + words.size() * 8);
    for (std::uint64_t w : words)
        for (int b = 0; b < 8; ++b)
            out->push_back(
                static_cast<std::uint8_t>(w >> (8 * b)));
}

bool
MonitorTree::decode(const std::vector<std::uint8_t> &bytes,
                    std::size_t at)
{
    if (bytes.size() < at || (bytes.size() - at) % 8 != 0)
        return false;
    std::vector<std::uint64_t> words;
    words.reserve((bytes.size() - at) / 8);
    for (std::size_t i = at; i + 8 <= bytes.size(); i += 8) {
        std::uint64_t w = 0;
        for (int b = 0; b < 8; ++b)
            w |= static_cast<std::uint64_t>(bytes[i + b])
                 << (8 * b);
        words.push_back(w);
    }
    if (words.size() < 4 || words[0] != treeMagic)
        return false;
    const std::uint32_t machines =
        static_cast<std::uint32_t>(words[1] >> 32);
    const std::uint32_t cores_per =
        static_cast<std::uint32_t>(words[1]);
    const std::uint32_t rack_size =
        static_cast<std::uint32_t>(words[2]);
    if (machines != machines_ || cores_per != coresPer_ ||
        rack_size != rackSize_)
        return false;
    observations_ = words[3];

    const std::uint64_t *cursor = words.data() + 4;
    const std::uint64_t *end = words.data() + words.size();
    for (NodeStats &n : cores_)
        if (!decodeNode(&n, &cursor, end))
            return false;
    for (NodeStats &n : machineNodes_)
        if (!decodeNode(&n, &cursor, end))
            return false;
    for (NodeStats &n : rackNodes_)
        if (!decodeNode(&n, &cursor, end))
            return false;
    return decodeNode(&fleet_, &cursor, end) && cursor == end;
}

std::uint32_t
MonitorTree::digest() const
{
    std::vector<std::uint8_t> bytes;
    encode(&bytes);
    return kleb::crc32c(bytes.data(), bytes.size());
}

} // namespace klebsim::fleet
