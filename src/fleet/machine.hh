/**
 * @file
 * One fleet machine: a full simulated kernel + K-LEB session per
 * core over a workload from the fleet mix, whose durable-log sample
 * frames become the WireRecords the machine streams to the
 * collector.
 *
 * Machines are completely independent — each core runs its own
 * kernel::System seeded from (fleet seed, machine id, core) through
 * the shared splitmix64 mixer — so the Fleet can shard them across
 * bench::TrialPool workers with byte-identical results at any
 * --jobs value.
 */

#ifndef KLEBSIM_FLEET_MACHINE_HH
#define KLEBSIM_FLEET_MACHINE_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "wire.hh"

namespace klebsim::fleet
{

/** Parameters of one machine's simulation. */
struct MachineParams
{
    MachineId id = 0;

    /** Fleet base seed (per-core seeds derive from it). */
    std::uint64_t seed = 1;

    /** Monitored cores (each a full kernel + session sim). */
    std::uint32_t cores = 1;

    /** K-LEB sampling period. */
    Tick period = usToTicks(100);

    /**
     * Machine-side crash time (fault machine.crash); 0 runs the
     * machine healthy.  A crashed machine's records at or after the
     * crash — and its clean-shutdown `final` markers — never reach
     * the wire: they are accounted as the vanished unsent tail.
     */
    Tick crashAt = 0;

    /**
     * Extra fault-plan clauses injected into every core's run
     * (SMP chaos: "cpu.offline=...;cpu.online=...;task.migrate=...;
     * pmu.contend=...").  Empty (the default) leaves existing fleet
     * digests byte-identical.
     */
    std::string smpFaultSpec;
};

/** What one machine hands to the uplink. */
struct MachineOutput
{
    MachineId id = 0;

    /** Records put on the wire, ordered by (core, seq). */
    std::vector<WireRecord> records;

    /** Sample frames the machine's sessions journaled. */
    std::uint64_t produced = 0;

    /** Lost before the wire: log losses + crashed unsent tail. */
    std::uint64_t vanishedLocal = 0;

    /** The machine crashed mid-run. */
    bool crashed = false;
};

/**
 * Run machine @p p to completion (or its crash) and return its wire
 * stream.  Pure function of @p p — safe to call concurrently from
 * TrialPool workers.
 */
MachineOutput runMachine(const MachineParams &p);

/** Nominal (order-of-magnitude) lifetime of a fleet workload. */
constexpr Tick nominalMachineLifetime = msToTicks(2);

} // namespace klebsim::fleet

#endif // KLEBSIM_FLEET_MACHINE_HH
