#include "machine.hh"

#include <memory>
#include <string>
#include <utility>

#include "base/logging.hh"
#include "base/random.hh"
#include "base/str.hh"
#include "bench_support/trial_pool.hh"
#include "fault/fault_plan.hh"
#include "hw/perf_event.hh"
#include "kleb/log_recovery.hh"
#include "tools/harness.hh"
#include "workload/phase_workload.hh"

namespace klebsim::fleet
{

namespace
{

/**
 * The fleet workload mix, keyed by (machine, core): a compute-bound
 * program, a cache-hostile one, and a phase-changing mix.  Sizes are
 * tuned so every variant runs for roughly nominalMachineLifetime —
 * long enough for a couple dozen samples per core, short enough
 * that a 10k-machine fleet stays a bench, not an overnight job.
 */
std::vector<workload::Phase>
mixPhases(std::uint32_t kind)
{
    using workload::MemPatternSpec;
    std::vector<workload::Phase> phases;
    switch (kind % 3) {
      case 0: { // compute-bound: high IPC, negligible MPKI
        workload::Phase p;
        p.name = "compute";
        p.instructions = 9000000;
        p.loadFrac = 0.1;
        p.storeFrac = 0.05;
        p.baseIpc = 2.2;
        p.mispredictRate = 0.01;
        p.mem = MemPatternSpec::hotCold(16 * 1024, 64 * 1024, 0.99);
        phases.push_back(p);
        break;
      }
      case 1: { // memory-bound: LLC-hostile working set
        workload::Phase p;
        p.name = "memory";
        p.instructions = 2500000;
        p.loadFrac = 0.35;
        p.storeFrac = 0.1;
        p.baseIpc = 1.4;
        p.mem = MemPatternSpec::randomUniform(24 * 1024 * 1024);
        phases.push_back(p);
        break;
      }
      default: { // mixed: compute phase then a strided sweep
        workload::Phase a;
        a.name = "mix-compute";
        a.instructions = 4000000;
        a.loadFrac = 0.15;
        a.baseIpc = 2.0;
        a.mem = MemPatternSpec::hotCold(16 * 1024, 128 * 1024, 0.97);
        workload::Phase b;
        b.name = "mix-stream";
        b.instructions = 2000000;
        b.loadFrac = 0.3;
        b.storeFrac = 0.15;
        b.baseIpc = 1.8;
        b.stallExposureScale = 0.4;
        b.mem = MemPatternSpec::sequential(8 * 1024 * 1024);
        phases.push_back(a);
        phases.push_back(b);
        break;
      }
    }
    return phases;
}

} // anonymous namespace

MachineOutput
runMachine(const MachineParams &p)
{
    MachineOutput out;
    out.id = p.id;
    out.crashed = p.crashAt != 0;

    for (std::uint32_t core = 0; core < p.cores; ++core) {
        tools::RunConfig cfg;
        cfg.tool = tools::ToolKind::kleb;
        cfg.seed = bench::trialSeed(p.seed, p.id, core);
        cfg.events = {hw::HwEvent::instRetired,
                      hw::HwEvent::coreCycles,
                      hw::HwEvent::llcMiss};
        cfg.period = p.period;
        cfg.durableLog = true;
        cfg.keepDurableBytes = true;
        const std::uint32_t kind = p.id + core;
        cfg.workloadFactory = [kind](Addr base, Random rng) {
            return std::unique_ptr<hw::WorkSource>(
                new workload::PhaseWorkload(
                    csprintf("fleet-m%u", kind), mixPhases(kind),
                    base, rng, 50000));
        };
        if (p.crashAt != 0)
            cfg.faultSpec = csprintf(
                "%s=%llu",
                fault::faultPointKey(fault::FaultPoint::targetCrash),
                (unsigned long long)p.crashAt);
        if (!p.smpFaultSpec.empty())
            cfg.faultSpec = cfg.faultSpec.empty()
                                ? p.smpFaultSpec
                                : cfg.faultSpec + ";" +
                                      p.smpFaultSpec;

        tools::RunResult r = tools::runOnce(cfg);

        // The uplink reads the durable medium, not the in-memory
        // session: what crosses the wire is exactly what a real
        // collector could read back from the machine's journal.
        kleb::RecoveredLog rec =
            kleb::LogRecovery::scan(r.durableBytes);
        const std::uint64_t log_lost =
            rec.report.framesDropped + rec.report.framesVanished;
        out.produced += rec.report.samplesRecovered + log_lost;
        out.vanishedLocal += log_lost;

        std::uint64_t seq = 0;
        for (std::size_t i = 0; i < rec.samples.size(); ++i) {
            const kleb::Sample &s = rec.samples[i];
            // A crashed machine dies mid-epoch: nothing at or past
            // the crash instant was ever flushed up the link, and no
            // clean-shutdown marker exists.  Those samples are the
            // vanished unsent tail.
            if (p.crashAt != 0 &&
                (s.timestamp >= p.crashAt ||
                 s.cause == kleb::SampleCause::final)) {
                ++out.vanishedLocal;
                continue;
            }
            // Hotplug markers never cross the wire: scan() already
            // routes them to coreEvents, so one showing up here
            // means the recovery contract broke — refuse to ship it
            // as a measurement.
            panic_if(kleb::isCoreMarker(s.cause),
                     "core marker leaked into recovered samples");
            WireRecord w;
            w.machine = p.id;
            w.core = static_cast<std::uint16_t>(core);
            w.epoch = rec.sampleEpochs[i];
            w.seq = seq++;
            w.ts = s.timestamp;
            w.final = s.cause == kleb::SampleCause::final;
            for (std::size_t e = 0; e < numWireEvents; ++e)
                w.counts[e] = s.counts[e];
            out.records.push_back(w);
        }
    }
    return out;
}

} // namespace klebsim::fleet
