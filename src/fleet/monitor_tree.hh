/**
 * @file
 * The hmon-style hierarchical monitor tree: per-core → per-machine
 * → per-rack → fleet online reductions of derived metrics (IPC and
 * MPKI), each kept both as lifetime running statistics and as a
 * small sliding window for windowed min/max/p50/p99.
 *
 * The tree is strictly deterministic: observations are applied in
 * the collector's merge order, reductions use no floating-point
 * reassociation beyond Welford's update, and the whole state
 * round-trips bit-exactly through encode()/decode() — that is what
 * lets a crashed collector restore a checkpoint and replay its
 * journal tail to a bit-for-bit identical aggregate.
 */

#ifndef KLEBSIM_FLEET_MONITOR_TREE_HH
#define KLEBSIM_FLEET_MONITOR_TREE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "stats/summary.hh"
#include "wire.hh"

namespace klebsim::fleet
{

/**
 * One online reduction: lifetime RunningStats plus a sliding window
 * of the most recent values for windowed order statistics.
 */
class Reduction
{
  public:
    /** Sliding-window length (most recent observations). */
    static constexpr std::size_t window = 32;

    void add(double x);

    /** Lifetime statistics (mean/min/max/stddev over everything). */
    const stats::RunningStats &lifetime() const { return life_; }

    /** Observations currently in the window (<= window). */
    std::size_t windowCount() const;

    double windowMin() const;
    double windowMax() const;

    /**
     * Windowed percentile in [0, 100], linear interpolation between
     * closest ranks (numpy's default); 0 when the window is empty.
     */
    double windowPercentile(double p) const;

    /** @{ Bit-exact checkpoint round-trip (64-bit word stream). */
    void encode(std::vector<std::uint64_t> *out) const;
    bool decode(const std::uint64_t **cursor,
                const std::uint64_t *end);
    /** @} */

  private:
    stats::RunningStats life_;
    std::array<double, window> ring_{};
    std::uint64_t pushed_ = 0;
};

/** The reductions one tree node maintains. */
struct NodeStats
{
    Reduction ipc;
    Reduction mpki;
};

/**
 * The aggregation tree.  Topology is fixed at construction:
 * `machines` machines of `coresPerMachine` cores each, grouped into
 * racks of `rackSize` machines (the last rack may be partial).
 * observe() fans one per-core observation up all four levels.
 */
class MonitorTree
{
  public:
    MonitorTree(std::uint32_t machines,
                std::uint32_t cores_per_machine,
                std::uint32_t rack_size);

    void observe(MachineId machine, std::uint32_t core, double ipc,
                 double mpki);

    std::uint32_t machines() const { return machines_; }
    std::uint32_t coresPerMachine() const { return coresPer_; }
    std::uint32_t rackSize() const { return rackSize_; }
    std::uint32_t racks() const;

    /** Total per-core observations merged. */
    std::uint64_t observations() const { return observations_; }

    const NodeStats &core(MachineId m, std::uint32_t c) const;
    const NodeStats &machine(MachineId m) const;
    const NodeStats &rack(std::uint32_t r) const;
    const NodeStats &fleet() const { return fleet_; }

    /**
     * @{ Checkpointing.  encode() serializes the full tree state to
     * little-endian bytes; decode() rebuilds it bit-exactly (false
     * on malformed or topology-mismatched input).  digest() is a
     * CRC32C over the encoding — two trees with equal digests hold
     * bit-identical reductions.
     */
    void encode(std::vector<std::uint8_t> *out) const;
    bool decode(const std::vector<std::uint8_t> &bytes,
                std::size_t at = 0);
    std::uint32_t digest() const;
    /** @} */

  private:
    std::uint32_t machines_;
    std::uint32_t coresPer_;
    std::uint32_t rackSize_;
    std::uint64_t observations_ = 0;
    std::vector<NodeStats> cores_;
    std::vector<NodeStats> machineNodes_;
    std::vector<NodeStats> rackNodes_;
    NodeStats fleet_;
};

} // namespace klebsim::fleet

#endif // KLEBSIM_FLEET_MONITOR_TREE_HH
