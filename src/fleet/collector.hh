/**
 * @file
 * The central fleet collector: one crash-survivable monitor tree.
 *
 * The collector drains the globally ordered delivery stream on a
 * simulated drain clock, merges every accepted record into the
 * MonitorTree, and keeps itself restartable at all times:
 *
 *  - every accepted record is journaled (write-ahead) to a
 *    kleb::DurableLog before it touches the tree;
 *  - every `checkpointEvery` accepted records the full tree +
 *    per-machine peer state is serialized to a checkpoint;
 *  - a crash (fault collector.crash) throws away all in-memory
 *    state; restart loads the last checkpoint and replays the
 *    journal tail through LogRecovery::scan, converging to the same
 *    aggregate bit-for-bit.
 *
 * Liveness is evaluated lazily as pure functions of the arrival
 * stream — a machine's quarantine deadline is its last arrival plus
 * the heartbeat timeout plus a bounded doubling probe backoff — so
 * dead-machine decisions are identical across jobs values and
 * across collector crashes.  A quarantined machine's contribution
 * becomes an explicit FleetHole, never silent zeros.  Backpressure
 * is modeled on the drain clock: when arrivals outrun the drain
 * rate past a lag high-water mark, the overrun is counted and the
 * excess lag recorded.
 */

#ifndef KLEBSIM_FLEET_COLLECTOR_HH
#define KLEBSIM_FLEET_COLLECTOR_HH

#include <cstdint>
#include <vector>

#include "kleb/durable_log.hh"
#include "monitor_tree.hh"
#include "wire.hh"

namespace klebsim::fleet
{

/** Collector tuning. */
struct CollectorConfig
{
    /** @{ Tree topology (must match the fleet). */
    std::uint32_t machines = 1;
    std::uint32_t coresPerMachine = 1;
    std::uint32_t rackSize = 32;
    /** @} */

    /** Silence past this (on the arrival clock) triggers probing. */
    Tick heartbeatTimeout = msToTicks(1);

    /** Probes sent (with doubling backoff) before quarantining. */
    int probeBudget = 3;

    /** Drain-clock cost of processing one record. */
    Tick drainCost = 50 * tickPerNs;

    /** Service lag past this counts as backpressure. */
    Tick backpressureLag = usToTicks(100);

    /** Accepted records between checkpoints; 0 = auto-scale. */
    std::uint64_t checkpointEvery = 0;

    /** Drain-clock time to crash + restart (collector.crash). */
    Tick crashAt = 0;
};

/** Per-machine collector-side state (exposed for accounting). */
struct PeerState
{
    bool seen = false;
    Tick firstArrival = 0;
    Tick lastArrival = 0;
    bool quarantined = false;
    int probes = 0;

    /** Clean-shutdown `final` markers received (one per core). */
    std::uint32_t finals = 0;

    /** @{ Accounting buckets. */
    std::uint64_t kept = 0;
    std::uint64_t reordered = 0;
    std::uint64_t lateDiscarded = 0;
    /** @} */

    /** Arrivals that came in past the heartbeat timeout. */
    std::uint64_t stragglers = 0;

    /** @{ Per-core merge state (indexed by core). */
    std::vector<Tick> lastTs;
    std::vector<std::array<std::uint64_t, numWireEvents>>
        lastCounts;
    /** @} */
};

/** Operational counters (not part of the deterministic aggregate). */
struct CollectorStats
{
    std::uint64_t accepted = 0;       //!< journaled + merged
    std::uint64_t reordered = 0;
    std::uint64_t quarantinedRecords = 0;
    std::uint64_t probesSent = 0;
    std::uint64_t stragglerEvents = 0;
    std::uint64_t backpressureEvents = 0;
    std::uint64_t checkpoints = 0;
    std::uint64_t restarts = 0;
    std::uint64_t replayedRecords = 0;
    std::uint32_t quarantinedMachines = 0;
    Tick maxLag = 0;
    Tick drainClock = 0;
};

class Collector
{
  public:
    explicit Collector(const CollectorConfig &cfg);

    /**
     * Drain a batch of deliveries (must be sorted by
     * deliveryBefore, and batches must not interleave arrivals).
     */
    void ingest(const std::vector<Delivery> &deliveries);

    /**
     * End of stream at @p end_of_stream on the arrival clock: run
     * the final liveness sweep, quarantining every machine that
     * neither finished cleanly nor spoke within its probe window.
     */
    void finish(Tick end_of_stream);

    const MonitorTree &tree() const { return tree_; }
    CollectorStats stats() const;
    const std::vector<FleetHole> &holes() const { return holes_; }
    const PeerState &peer(MachineId m) const { return peers_[m]; }

    /** The write-ahead journal (for recovery-path tests). */
    const kleb::DurableLog &journal() const { return journal_; }

    /** Total silence allowance before quarantine (pure of config). */
    Tick quarantineAfter() const;

  private:
    void service(const Delivery &d);
    void apply(const WireRecord &rec, Tick arrival, bool replaying);
    void journalRecord(const WireRecord &rec, Tick arrival);
    void quarantine(MachineId m, Tick until, const char *cause);
    void checkpoint();
    void crashAndRestart();
    void encodePeers(std::vector<std::uint8_t> *out) const;
    bool decodePeers(const std::vector<std::uint8_t> &bytes,
                     std::size_t *at);

    CollectorConfig cfg_;
    MonitorTree tree_;
    std::vector<PeerState> peers_;
    std::vector<FleetHole> holes_;
    kleb::DurableLog journal_;

    std::uint64_t accepted_ = 0;
    std::uint64_t checkpointEvery_ = 0;

    /** Last checkpoint (empty = none): peers + tree + cut marker. */
    std::vector<std::uint8_t> checkpointBytes_;
    std::uint64_t checkpointCut_ = 0;

    CollectorStats ops_;
    bool crashed_ = false;
};

} // namespace klebsim::fleet

#endif // KLEBSIM_FLEET_COLLECTOR_HH
