/**
 * @file
 * The fleet wire format: what one monitored machine streams to the
 * central collector, and the per-machine accounting ledger every
 * layer of the pipeline contributes to.
 *
 * A machine's uplink carries its K-LEB durable-log sample frames
 * re-framed as WireRecords: cumulative counter snapshots tagged with
 * the machine, core, machine-side epoch, and a per-core sequence
 * number.  The collector never sees ring buffers or sessions — the
 * wire is the trust boundary, and everything above it is accounted
 * explicitly: a record is eventually *kept* (merged into the monitor
 * tree), *dropped* (lost on the link), *vanished* (lost before the
 * wire: machine-side log losses, a crashed machine's unsent tail, or
 * a reordering discard), or *quarantined* (arrived after the
 * collector gave up on its machine).  checkFleetBalance
 * (src/analysis/invariants.hh) enforces that those four buckets sum
 * back to everything the machines produced — no sample is ever
 * silently zeroed.
 */

#ifndef KLEBSIM_FLEET_WIRE_HH
#define KLEBSIM_FLEET_WIRE_HH

#include <array>
#include <cstdint>
#include <string>

#include "base/types.hh"

namespace klebsim::fleet
{

using MachineId = std::uint32_t;

/** Counter channels every fleet machine monitors, in wire order. */
constexpr std::size_t numWireEvents = 3; // inst, cycles, LLC misses

/** One durable-log sample re-framed for the uplink. */
struct WireRecord
{
    MachineId machine = 0;
    std::uint16_t core = 0;

    /** Machine-side durable-log epoch the sample belongs to. */
    std::uint32_t epoch = 0;

    /** Per-(machine, core) sequence number, dense from 0. */
    std::uint64_t seq = 0;

    /** Machine-side sample time. */
    Tick ts = 0;

    /** Last record of this core's run (clean shutdown marker). */
    bool final = false;

    /** Cumulative counter readings (inst, cycles, LLC misses). */
    std::array<std::uint64_t, numWireEvents> counts{};
};

/** A WireRecord after the link: stamped with its collector arrival. */
struct Delivery
{
    /** Arrival time on the collector's drain clock. */
    Tick arrival = 0;

    WireRecord rec;
};

/**
 * Deterministic delivery order: the collector merges strictly by
 * (arrival, machine, core, seq), so the aggregate is independent of
 * how machine simulations were sharded across workers.
 */
inline bool
deliveryBefore(const Delivery &a, const Delivery &b)
{
    if (a.arrival != b.arrival)
        return a.arrival < b.arrival;
    if (a.rec.machine != b.rec.machine)
        return a.rec.machine < b.rec.machine;
    if (a.rec.core != b.rec.core)
        return a.rec.core < b.rec.core;
    return a.rec.seq < b.rec.seq;
}

/**
 * One machine's full ledger.  `produced` counts everything its
 * monitoring sessions put into their durable logs; the four
 * accounting buckets partition it exactly:
 *
 *   produced == kept + dropped + vanished + quarantined
 */
struct MachineAccount
{
    MachineId machine = 0;

    /** Sample frames the machine's sessions journaled. */
    std::uint64_t produced = 0;

    /** Records that actually went onto the uplink. */
    std::uint64_t sent = 0;

    /** Records merged into the monitor tree. */
    std::uint64_t kept = 0;

    /** Records the lossy link dropped. */
    std::uint64_t dropped = 0;

    /**
     * Records lost before or despite the wire: machine-side log
     * losses, a crashed machine's unsent tail, and collector-side
     * reordering discards.
     */
    std::uint64_t vanished = 0;

    /** Records discarded because the machine was quarantined. */
    std::uint64_t quarantined = 0;

    /** Records the link delayed (stat only; they still arrive). */
    std::uint64_t delayed = 0;

    /** The machine crashed mid-run (fault machine.crash). */
    bool crashed = false;

    /** The machine's simulation itself died (worker fault). */
    bool simFailed = false;

    /** The collector quarantined this machine. */
    bool isQuarantined = false;
};

/**
 * An explicit hole in the monitor tree: the span over which a
 * quarantined machine's contribution is *missing*, recorded so the
 * absence is first-class data (never silent zeros).  Spans are on
 * the collector's arrival clock.
 */
struct FleetHole
{
    MachineId machine = 0;
    Tick from = 0;
    Tick to = 0;

    /** Probes the collector sent before giving up. */
    int probes = 0;

    /** Why the hole exists (a fault spec key or "silence"). */
    std::string cause;
};

} // namespace klebsim::fleet

#endif // KLEBSIM_FLEET_WIRE_HH
