/**
 * @file
 * The simulated lossy uplink between a machine and the collector.
 *
 * Each machine's stream crosses an independent link that adds a
 * fixed base latency plus bounded deterministic jitter, drops
 * records (fault link.drop), and delays records (fault link.delay).
 * All randomness comes from per-machine PCG32 streams forked per
 * fault point from the fleet's fault seed — mirroring the
 * FaultInjector's per-point stream discipline — so the delivery
 * schedule is a pure function of (seed, machine id, record index)
 * and byte-identical at any --jobs value.  Every draw happens for
 * every record whether or not the fault is enabled, so turning one
 * fault on never reshuffles another fault's schedule.
 */

#ifndef KLEBSIM_FLEET_LINK_HH
#define KLEBSIM_FLEET_LINK_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "machine.hh"
#include "wire.hh"

namespace klebsim::fleet
{

/** Link behavior (shared by every machine's uplink). */
struct LinkParams
{
    /** Fixed uplink latency every record pays. */
    Tick baseLatency = usToTicks(50);

    /** Upper bound on per-record deterministic jitter. */
    Tick jitterMax = usToTicks(20);

    /** Probability a record is dropped (fault link.drop). */
    double dropProb = 0.0;

    /** Probability a record is delayed (fault link.delay). */
    double delayProb = 0.0;

    /** Extra latency a delayed record suffers. */
    Tick delayBy = msToTicks(2);
};

/** What one machine's link transmission did. */
struct LinkStats
{
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t delayed = 0;
};

/**
 * Transmit @p machine's records over a link with @p params, seeded
 * from @p fault_seed, appending arrivals to @p deliveries (in
 * per-machine emission order; the caller globally sorts with
 * deliveryBefore before the collector drains).
 */
LinkStats transmit(const MachineOutput &machine,
                   const LinkParams &params,
                   std::uint64_t fault_seed,
                   std::vector<Delivery> *deliveries);

} // namespace klebsim::fleet

#endif // KLEBSIM_FLEET_LINK_HH
