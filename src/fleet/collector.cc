#include "collector.hh"

#include <algorithm>

#include "base/logging.hh"
#include "fault/fault_plan.hh"
#include "kleb/log_recovery.hh"

namespace klebsim::fleet
{

namespace
{

constexpr std::uint64_t checkpointMagic =
    0x3150434854464c4bULL; // "KLFTHCP1"

void
putWord(std::vector<std::uint8_t> *out, std::uint64_t w)
{
    for (int b = 0; b < 8; ++b)
        out->push_back(static_cast<std::uint8_t>(w >> (8 * b)));
}

bool
getWord(const std::vector<std::uint8_t> &bytes, std::size_t *at,
        std::uint64_t *out)
{
    if (bytes.size() - *at < 8)
        return false;
    std::uint64_t w = 0;
    for (int b = 0; b < 8; ++b)
        w |= static_cast<std::uint64_t>(bytes[*at + b]) << (8 * b);
    *at += 8;
    *out = w;
    return true;
}

} // anonymous namespace

Collector::Collector(const CollectorConfig &cfg)
    : cfg_(cfg),
      tree_(cfg.machines, cfg.coresPerMachine, cfg.rackSize),
      peers_(cfg.machines)
{
    for (PeerState &p : peers_) {
        p.lastTs.assign(cfg.coresPerMachine, 0);
        p.lastCounts.assign(cfg.coresPerMachine, {});
    }
    journal_.beginEpoch(0);
}

Tick
Collector::quarantineAfter() const
{
    // Probe i (1-based) goes out after H*(2^i - 1) of silence; the
    // budget exhausts — and the machine is quarantined — one more
    // doubling after the last probe.
    return cfg_.heartbeatTimeout *
           ((Tick{1} << (cfg_.probeBudget + 1)) - 1);
}

void
Collector::ingest(const std::vector<Delivery> &deliveries)
{
    if (checkpointEvery_ == 0) {
        // Auto-scale the checkpoint cadence off the first batch so
        // a run takes a handful of checkpoints regardless of fleet
        // size.  Pure function of the stream, so jobs-invariant.
        checkpointEvery_ =
            cfg_.checkpointEvery
                ? cfg_.checkpointEvery
                : std::max<std::uint64_t>(4096,
                                          deliveries.size() / 4);
    }
    for (const Delivery &d : deliveries)
        service(d);
}

void
Collector::service(const Delivery &d)
{
    const Tick start = std::max(d.arrival, ops_.drainClock);
    const Tick lag = start - d.arrival;
    if (lag > ops_.maxLag)
        ops_.maxLag = lag;
    if (lag > cfg_.backpressureLag)
        ++ops_.backpressureEvents;
    ops_.drainClock = start + cfg_.drainCost;

    if (cfg_.crashAt != 0 && !crashed_ &&
        ops_.drainClock >= cfg_.crashAt)
        crashAndRestart();

    // Write-ahead: the record hits the journal before any decision
    // is made about it, so a post-crash replay re-decides every
    // disposition (kept / reordered / quarantined) with the exact
    // peer state the first incarnation had.
    journalRecord(d.rec, d.arrival);
    apply(d.rec, d.arrival, false);

    if (journal_.samplesAppended() % checkpointEvery_ == 0)
        checkpoint();
}

void
Collector::journalRecord(const WireRecord &rec, Tick arrival)
{
    kleb::Sample s;
    s.timestamp = arrival; // arrivals are monotone; rec.ts is not
    s.cause = rec.final ? kleb::SampleCause::final
                        : kleb::SampleCause::timer;
    s.numEvents = kleb::maxSampleEvents;
    for (std::size_t e = 0; e < numWireEvents; ++e)
        s.counts[e] = rec.counts[e];
    s.counts[3] = rec.machine;
    s.counts[4] = static_cast<std::uint64_t>(rec.core) |
                  (static_cast<std::uint64_t>(rec.epoch) << 32);
    s.counts[5] = rec.ts;
    s.counts[6] = rec.seq;
    journal_.append(s);
}

void
Collector::apply(const WireRecord &rec, Tick arrival,
                 bool replaying)
{
    (void)replaying;
    panic_if(rec.machine >= peers_.size(),
             "delivery from a machine outside the fleet");
    PeerState &p = peers_[rec.machine];

    if (p.quarantined) {
        ++p.lateDiscarded;
        return;
    }

    if (p.seen) {
        const Tick silent = arrival - p.lastArrival;
        if (silent > quarantineAfter()) {
            // Every probe went unanswered before this record showed
            // up: the machine was already written off, and a
            // too-late arrival cannot resurrect it (that would make
            // the aggregate depend on straggler timing).
            quarantine(rec.machine, arrival, "silence");
            ++p.lateDiscarded;
            return;
        }
        if (silent > cfg_.heartbeatTimeout) {
            ++p.stragglers;
            for (int i = 1; i <= cfg_.probeBudget; ++i)
                if (silent >= cfg_.heartbeatTimeout *
                                  ((Tick{1} << i) - 1))
                    ++p.probes;
        }
    } else {
        p.firstArrival = arrival;
    }
    p.seen = true;
    p.lastArrival = arrival;

    Tick &last_ts = p.lastTs[rec.core];
    auto &last_counts = p.lastCounts[rec.core];

    // A record whose machine-side time or cumulative counts run
    // backwards was reordered on the link; the next in-order record
    // carries the hole in its delta, so merging this one would
    // double-count.
    bool stale = last_ts != 0 && rec.ts <= last_ts;
    for (std::size_t e = 0; e < numWireEvents && !stale; ++e)
        stale = rec.counts[e] < last_counts[e];
    if (stale) {
        ++p.reordered;
        return;
    }

    const std::uint64_t d_inst = rec.counts[0] - last_counts[0];
    const std::uint64_t d_cycles = rec.counts[1] - last_counts[1];
    const std::uint64_t d_llc = rec.counts[2] - last_counts[2];
    if (d_cycles > 0) {
        const double ipc = static_cast<double>(d_inst) /
                           static_cast<double>(d_cycles);
        const double mpki =
            d_inst > 0 ? static_cast<double>(d_llc) * 1000.0 /
                             static_cast<double>(d_inst)
                       : 0.0;
        tree_.observe(rec.machine, rec.core, ipc, mpki);
    }
    ++p.kept;
    last_ts = rec.ts;
    last_counts = rec.counts;
    if (rec.final)
        ++p.finals;
}

void
Collector::quarantine(MachineId m, Tick until, const char *cause)
{
    PeerState &p = peers_[m];
    p.quarantined = true;
    p.probes = cfg_.probeBudget;
    FleetHole hole;
    hole.machine = m;
    hole.from = p.seen ? p.lastArrival : 0;
    hole.to = until;
    hole.probes = p.probes;
    hole.cause = cause;
    holes_.push_back(std::move(hole));
}

void
Collector::finish(Tick end_of_stream)
{
    for (MachineId m = 0; m < peers_.size(); ++m) {
        PeerState &p = peers_[m];
        if (p.quarantined)
            continue;
        if (p.seen && p.finals >= cfg_.coresPerMachine)
            continue; // clean shutdown on every core
        if (!p.seen) {
            // Not one record all run: the machine (or its shard's
            // simulation) never came up.
            quarantine(m, end_of_stream, "silence");
            continue;
        }
        if (end_of_stream - p.lastArrival > quarantineAfter())
            quarantine(m, end_of_stream, "silence");
    }
}

CollectorStats
Collector::stats() const
{
    CollectorStats s = ops_;
    for (const PeerState &p : peers_) {
        s.accepted += p.kept;
        s.reordered += p.reordered;
        s.quarantinedRecords += p.lateDiscarded;
        s.probesSent += static_cast<std::uint64_t>(p.probes);
        s.stragglerEvents += p.stragglers;
        if (p.quarantined)
            ++s.quarantinedMachines;
    }
    return s;
}

void
Collector::encodePeers(std::vector<std::uint8_t> *out) const
{
    putWord(out, peers_.size());
    for (const PeerState &p : peers_) {
        putWord(out, (p.seen ? 1u : 0u) |
                         (p.quarantined ? 2u : 0u));
        putWord(out, p.firstArrival);
        putWord(out, p.lastArrival);
        putWord(out, static_cast<std::uint64_t>(p.probes));
        putWord(out, p.finals);
        putWord(out, p.kept);
        putWord(out, p.reordered);
        putWord(out, p.lateDiscarded);
        putWord(out, p.stragglers);
        for (std::uint32_t c = 0; c < cfg_.coresPerMachine; ++c) {
            putWord(out, p.lastTs[c]);
            for (std::size_t e = 0; e < numWireEvents; ++e)
                putWord(out, p.lastCounts[c][e]);
        }
    }
    putWord(out, holes_.size());
    for (const FleetHole &h : holes_) {
        putWord(out, h.machine);
        putWord(out, h.from);
        putWord(out, h.to);
        putWord(out, static_cast<std::uint64_t>(h.probes));
        putWord(out, h.cause.size());
        out->insert(out->end(), h.cause.begin(), h.cause.end());
    }
}

bool
Collector::decodePeers(const std::vector<std::uint8_t> &bytes,
                       std::size_t *at)
{
    std::uint64_t count = 0;
    if (!getWord(bytes, at, &count) || count != peers_.size())
        return false;
    for (PeerState &p : peers_) {
        std::uint64_t flags = 0, probes = 0, finals = 0;
        if (!getWord(bytes, at, &flags) ||
            !getWord(bytes, at, &p.firstArrival) ||
            !getWord(bytes, at, &p.lastArrival) ||
            !getWord(bytes, at, &probes) ||
            !getWord(bytes, at, &finals) ||
            !getWord(bytes, at, &p.kept) ||
            !getWord(bytes, at, &p.reordered) ||
            !getWord(bytes, at, &p.lateDiscarded) ||
            !getWord(bytes, at, &p.stragglers))
            return false;
        p.seen = flags & 1;
        p.quarantined = flags & 2;
        p.probes = static_cast<int>(probes);
        p.finals = static_cast<std::uint32_t>(finals);
        for (std::uint32_t c = 0; c < cfg_.coresPerMachine; ++c) {
            if (!getWord(bytes, at, &p.lastTs[c]))
                return false;
            for (std::size_t e = 0; e < numWireEvents; ++e)
                if (!getWord(bytes, at, &p.lastCounts[c][e]))
                    return false;
        }
    }
    std::uint64_t hole_count = 0;
    if (!getWord(bytes, at, &hole_count))
        return false;
    holes_.clear();
    for (std::uint64_t i = 0; i < hole_count; ++i) {
        FleetHole h;
        std::uint64_t machine = 0, probes = 0, len = 0;
        if (!getWord(bytes, at, &machine) ||
            !getWord(bytes, at, &h.from) ||
            !getWord(bytes, at, &h.to) ||
            !getWord(bytes, at, &probes) ||
            !getWord(bytes, at, &len) ||
            bytes.size() - *at < len)
            return false;
        h.machine = static_cast<MachineId>(machine);
        h.probes = static_cast<int>(probes);
        h.cause.assign(bytes.begin() + *at,
                       bytes.begin() + *at + len);
        *at += len;
        holes_.push_back(std::move(h));
    }
    return true;
}

void
Collector::checkpoint()
{
    std::vector<std::uint8_t> bytes;
    putWord(&bytes, checkpointMagic);
    putWord(&bytes, journal_.samplesAppended());

    std::vector<std::uint8_t> tree_bytes;
    tree_.encode(&tree_bytes);
    putWord(&bytes, tree_bytes.size());
    bytes.insert(bytes.end(), tree_bytes.begin(),
                 tree_bytes.end());

    encodePeers(&bytes);
    putWord(&bytes, kleb::crc32c(bytes.data(), bytes.size()));

    checkpointBytes_ = std::move(bytes);
    checkpointCut_ = journal_.samplesAppended();
    ++ops_.checkpoints;

    // A fresh journal epoch marks the cut: epochs-opened in the
    // journal header always equals checkpoints + 1.
    journal_.beginEpoch(ops_.drainClock);
}

void
Collector::crashAndRestart()
{
    crashed_ = true;
    ++ops_.restarts;

    // Everything in RAM dies with the process (the journal and the
    // checkpoint live on durable media).
    tree_ = MonitorTree(cfg_.machines, cfg_.coresPerMachine,
                        cfg_.rackSize);
    for (PeerState &p : peers_) {
        p = PeerState{};
        p.lastTs.assign(cfg_.coresPerMachine, 0);
        p.lastCounts.assign(cfg_.coresPerMachine, {});
    }
    holes_.clear();

    std::uint64_t cut = 0;
    if (!checkpointBytes_.empty()) {
        const std::vector<std::uint8_t> &b = checkpointBytes_;
        fatal_if(b.size() < 8 ||
                     kleb::crc32c(b.data(), b.size() - 8) !=
                         (b[b.size() - 8] |
                          std::uint32_t{b[b.size() - 7]} << 8 |
                          std::uint32_t{b[b.size() - 6]} << 16 |
                          std::uint32_t{b[b.size() - 5]} << 24),
                 "collector checkpoint failed its CRC");
        std::size_t at = 0;
        std::uint64_t magic = 0, tree_len = 0;
        fatal_if(!getWord(b, &at, &magic) ||
                     magic != checkpointMagic ||
                     !getWord(b, &at, &cut) ||
                     !getWord(b, &at, &tree_len) ||
                     b.size() - at < tree_len,
                 "collector checkpoint header is malformed");
        std::vector<std::uint8_t> tree_bytes(
            b.begin() + at, b.begin() + at + tree_len);
        at += tree_len;
        fatal_if(!tree_.decode(tree_bytes),
                 "collector checkpoint tree section is malformed");
        fatal_if(!decodePeers(b, &at),
                 "collector checkpoint peer section is malformed");
    }

    // Replay the journal tail through the standard recovery path:
    // the same scan that rebuilds a machine's session log rebuilds
    // the collector's delivery stream.
    kleb::RecoveredLog rl = kleb::LogRecovery::scan(journal_.bytes());
    fatal_if(!rl.report.valid,
             "collector journal lost its header");
    for (std::size_t i = cut; i < rl.samples.size(); ++i) {
        const kleb::Sample &s = rl.samples[i];
        WireRecord rec;
        rec.machine =
            static_cast<MachineId>(s.counts[3]);
        rec.core = static_cast<std::uint16_t>(s.counts[4]);
        rec.epoch =
            static_cast<std::uint32_t>(s.counts[4] >> 32);
        rec.ts = s.counts[5];
        rec.seq = s.counts[6];
        rec.final = s.cause == kleb::SampleCause::final;
        for (std::size_t e = 0; e < numWireEvents; ++e)
            rec.counts[e] = s.counts[e];
        apply(rec, s.timestamp, true);
        ++ops_.replayedRecords;
    }

    // Keep the lint's coverage honest: this is the layer the
    // collector.crash fault point drives.
    static_assert(static_cast<int>(
                      fault::FaultPoint::collectorCrash) >= 0);
}

} // namespace klebsim::fleet
