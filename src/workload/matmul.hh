/**
 * @file
 * Matrix-multiplication programs used in the paper's overhead study
 * (section V): the Intel-sample triple-nested loop (~2 s) and the
 * Intel MKL dgemm routine (<100 ms), which together expose how
 * per-sample costs and fixed setup costs trade off across tools
 * (Tables II and III).
 */

#ifndef KLEBSIM_WORKLOAD_MATMUL_HH
#define KLEBSIM_WORKLOAD_MATMUL_HH

#include <cstdint>
#include <memory>

#include "base/random.hh"
#include "base/types.hh"
#include "phase_workload.hh"

namespace klebsim::workload
{

/** Matmul problem parameters. */
struct MatMulParams
{
    /** Matrix dimension (A, B, C are n x n doubles). */
    std::uint32_t n = 1000;
};

/** FLOPs of one multiply: 2 n^3. */
double matmulFlops(const MatMulParams &params);

/**
 * Naive triple-nested-loop multiply: low IPC, column-strided B
 * accesses with poor locality, ~2 s at n=1000 on the i7-920 model.
 */
std::unique_ptr<PhaseWorkload>
makeMatMulLoop(const MatMulParams &params, Addr base, Random rng);

/**
 * MKL-style blocked dgemm: packed arithmetic, cache-blocked
 * accesses, <100 ms at n=1000.
 */
std::unique_ptr<PhaseWorkload>
makeMatMulMkl(const MatMulParams &params, Addr base, Random rng);

} // namespace klebsim::workload

#endif // KLEBSIM_WORKLOAD_MATMUL_HH
