/**
 * @file
 * Phase-structured synthetic workloads.
 *
 * Programs are described as an ordered list of phases, each with an
 * instruction budget, an instruction-class mix, an IPC, a memory
 * pattern, and FLOP accounting.  The workload emits fixed-size
 * WorkChunks from the current phase until its budget is spent, then
 * moves on.  LINPACK, the matmul programs, and the Docker images
 * are all instances of this IR.
 */

#ifndef KLEBSIM_WORKLOAD_PHASE_WORKLOAD_HH
#define KLEBSIM_WORKLOAD_PHASE_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "address_streams.hh"
#include "base/random.hh"
#include "base/types.hh"
#include "hw/exec_types.hh"

namespace klebsim::workload
{

/** One phase of a program. */
struct Phase
{
    std::string name;

    /** Instructions retired by the phase. */
    std::uint64_t instructions = 0;

    /** @{ Instruction-class fractions (of `instructions`). */
    double loadFrac = 0.25;
    double storeFrac = 0.10;
    double branchFrac = 0.15;
    double mulFrac = 0.0;
    double divFrac = 0.0;
    double fpFrac = 0.0;
    /** @} */

    double mispredictRate = 0.02;
    double baseIpc = 2.0;

    /** See WorkChunk::stallExposureScale (prefetch friendliness). */
    double stallExposureScale = 1.0;

    /** Total floating-point operations performed by the phase. */
    double flops = 0.0;

    MemPatternSpec mem;
    hw::PrivLevel priv = hw::PrivLevel::user;
};

/**
 * A WorkSource assembled from phases.
 */
class PhaseWorkload : public hw::WorkSource
{
  public:
    /**
     * @param name program name (for process naming / reports)
     * @param phases executed in order
     * @param base base address of the program's data region
     * @param rng stochastic stream (address patterns)
     * @param chunk_instructions chunking granularity
     */
    PhaseWorkload(std::string name, std::vector<Phase> phases,
                  Addr base, Random rng,
                  std::uint64_t chunk_instructions = 100000);

    const std::string &name() const { return name_; }

    /** @{ WorkSource interface. */
    bool done() const override;
    hw::WorkChunk nextChunk(hw::MemHierarchy &mem) override;
    void reset() override;
    /** @} */

    /** Sum of all phase instruction budgets. */
    std::uint64_t totalInstructions() const;

    /** Sum of all phase FLOP budgets. */
    double totalFlops() const;

    /** Index of the phase the next chunk comes from. */
    std::size_t currentPhase() const { return phaseIdx_; }

  private:
    void enterPhase(std::size_t idx);

    std::string name_;
    std::vector<Phase> phases_;
    Addr base_;
    Random masterRng_;
    Random rng_;
    std::uint64_t chunkInstr_;

    std::size_t phaseIdx_;
    std::uint64_t phaseRemaining_;

    /** Warm the new phase's hot set on its first chunk. */
    bool warmPending_ = false;
    std::unique_ptr<hw::AddressStream> stream_;

    /**
     * Streams of completed phases, kept alive because the caller
     * may still be executing the final chunk of a phase when
     * enterPhase() builds the next stream (and zero-length phases
     * can retire several in one call).  Streams are tiny; the list
     * is bounded by the phase count and cleared on reset().
     */
    std::vector<std::unique_ptr<hw::AddressStream>> retired_;
};

/**
 * Repeat a phase list @p times (helper for iterative programs).
 */
std::vector<Phase> repeatPhases(const std::vector<Phase> &body,
                                std::size_t times);

/** Concatenate phase lists. */
std::vector<Phase> concatPhases(std::vector<Phase> a,
                                const std::vector<Phase> &b);

} // namespace klebsim::workload

#endif // KLEBSIM_WORKLOAD_PHASE_WORKLOAD_HH
