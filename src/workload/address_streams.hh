/**
 * @file
 * Memory reference generators.
 *
 * Each workload phase owns an AddressStream describing its access
 * pattern; the CPU pulls sampled references from it while executing
 * chunks.  Patterns provided: sequential, strided, uniform-random
 * over a footprint, and hot/cold (a small hot set absorbing most
 * accesses in front of a large cold footprint — the knob that sets
 * a workload's MPKI).
 */

#ifndef KLEBSIM_WORKLOAD_ADDRESS_STREAMS_HH
#define KLEBSIM_WORKLOAD_ADDRESS_STREAMS_HH

#include <cstdint>
#include <memory>

#include "base/random.hh"
#include "base/types.hh"
#include "hw/exec_types.hh"

namespace klebsim::workload
{

/** Declarative pattern description (instantiated per phase). */
struct MemPatternSpec
{
    enum class Kind
    {
        none,          //!< phase performs no memory accesses
        sequential,    //!< streaming walk over the footprint
        strided,       //!< fixed stride walk (column access etc.)
        randomUniform, //!< uniform random within the footprint
        hotCold,       //!< hot set + occasional cold excursions
        pointerChase,  //!< dependent-load permutation walk
    };

    Kind kind = Kind::none;
    std::uint64_t footprintBytes = 0;
    std::uint64_t strideBytes = 64;

    /** hotCold: size of the hot set. */
    std::uint64_t hotBytes = 32 * 1024;

    /** hotCold: probability an access goes to the hot set. */
    double hotProbability = 0.9;

    /** Fraction of references that are writes. */
    double writeFraction = 0.3;

    /** @{ Convenience factories. */
    static MemPatternSpec none_();
    static MemPatternSpec sequential(std::uint64_t footprint,
                                     double write_frac = 0.3);
    static MemPatternSpec strided(std::uint64_t footprint,
                                  std::uint64_t stride,
                                  double write_frac = 0.3);
    static MemPatternSpec randomUniform(std::uint64_t footprint,
                                        double write_frac = 0.3);
    static MemPatternSpec hotCold(std::uint64_t hot,
                                  std::uint64_t footprint,
                                  double hot_prob,
                                  double write_frac = 0.3);

    /**
     * Pointer chase: a random-permutation cycle over the footprint's
     * lines, visited in dependence order (linked-list traversal).
     * Every access depends on the previous one, so there is no
     * memory-level parallelism to hide latency: phases using this
     * pattern should keep stallExposureScale at 1.0.
     */
    static MemPatternSpec pointerChase(std::uint64_t footprint,
                                       double write_frac = 0.0);
    /** @} */
};

/**
 * Instantiate the generator for @p spec.
 *
 * @param base lowest address of the region the stream walks
 * @param rng independent stream for stochastic patterns
 */
std::unique_ptr<hw::AddressStream>
makeAddressStream(const MemPatternSpec &spec, Addr base, Random rng);

} // namespace klebsim::workload

#endif // KLEBSIM_WORKLOAD_ADDRESS_STREAMS_HH
