#include "address_streams.hh"

#include <algorithm>
#include <vector>

#include "base/logging.hh"

namespace klebsim::workload
{

MemPatternSpec
MemPatternSpec::none_()
{
    return MemPatternSpec{};
}

MemPatternSpec
MemPatternSpec::sequential(std::uint64_t footprint, double write_frac)
{
    MemPatternSpec s;
    s.kind = Kind::sequential;
    s.footprintBytes = footprint;
    s.writeFraction = write_frac;
    return s;
}

MemPatternSpec
MemPatternSpec::strided(std::uint64_t footprint, std::uint64_t stride,
                        double write_frac)
{
    MemPatternSpec s;
    s.kind = Kind::strided;
    s.footprintBytes = footprint;
    s.strideBytes = stride;
    s.writeFraction = write_frac;
    return s;
}

MemPatternSpec
MemPatternSpec::randomUniform(std::uint64_t footprint,
                              double write_frac)
{
    MemPatternSpec s;
    s.kind = Kind::randomUniform;
    s.footprintBytes = footprint;
    s.writeFraction = write_frac;
    return s;
}

MemPatternSpec
MemPatternSpec::hotCold(std::uint64_t hot, std::uint64_t footprint,
                        double hot_prob, double write_frac)
{
    MemPatternSpec s;
    s.kind = Kind::hotCold;
    s.hotBytes = hot;
    s.footprintBytes = footprint;
    s.hotProbability = hot_prob;
    s.writeFraction = write_frac;
    return s;
}

MemPatternSpec
MemPatternSpec::pointerChase(std::uint64_t footprint,
                             double write_frac)
{
    MemPatternSpec s;
    s.kind = Kind::pointerChase;
    s.footprintBytes = footprint;
    s.writeFraction = write_frac;
    return s;
}

namespace
{

class SequentialStream : public hw::AddressStream
{
  public:
    SequentialStream(Addr base, std::uint64_t footprint,
                     std::uint64_t stride, double write_frac,
                     Random rng)
        : base_(base), footprint_(footprint), stride_(stride),
          writeFrac_(write_frac), offset_(0), rng_(rng)
    {
        panic_if(footprint_ == 0, "sequential stream: empty region");
        panic_if(stride_ == 0, "sequential stream: zero stride");
    }

    hw::MemRef
    next() override
    {
        return step();
    }

    void
    fillBatch(Addr *addrs, std::uint8_t *writes,
              std::size_t n) override
    {
        for (std::size_t i = 0; i < n; ++i) {
            hw::MemRef ref = step();
            addrs[i] = ref.addr;
            writes[i] = ref.write ? 1 : 0;
        }
    }

  private:
    hw::MemRef
    step()
    {
        hw::MemRef ref;
        ref.addr = base_ + offset_;
        ref.write = rng_.chance(writeFrac_);
        offset_ += stride_;
        if (offset_ >= footprint_)
            offset_ = 0;
        return ref;
    }

    Addr base_;
    std::uint64_t footprint_;
    std::uint64_t stride_;
    double writeFrac_;
    std::uint64_t offset_;
    Random rng_;
};

class RandomStream : public hw::AddressStream
{
  public:
    RandomStream(Addr base, std::uint64_t footprint,
                 double write_frac, Random rng)
        : base_(base), footprint_(footprint),
          writeFrac_(write_frac), rng_(rng)
    {
        panic_if(footprint_ == 0, "random stream: empty region");
    }

    hw::MemRef
    next() override
    {
        return step();
    }

    void
    fillBatch(Addr *addrs, std::uint8_t *writes,
              std::size_t n) override
    {
        for (std::size_t i = 0; i < n; ++i) {
            hw::MemRef ref = step();
            addrs[i] = ref.addr;
            writes[i] = ref.write ? 1 : 0;
        }
    }

  private:
    friend class HotColdStream;

    hw::MemRef
    step()
    {
        hw::MemRef ref;
        std::uint64_t off = rng_.next64() % footprint_;
        ref.addr = base_ + (off & ~Addr(7)); // 8-byte aligned
        ref.write = rng_.chance(writeFrac_);
        return ref;
    }

    Addr base_;
    std::uint64_t footprint_;
    double writeFrac_;
    Random rng_;
};

class HotColdStream : public hw::AddressStream
{
  public:
    HotColdStream(Addr base, std::uint64_t hot,
                  std::uint64_t footprint, double hot_prob,
                  double write_frac, Random rng)
        : hot_(base, hot, write_frac, rng.fork(1)),
          cold_(base + hot, footprint > hot ? footprint - hot : hot,
                write_frac, rng.fork(2)),
          hotProb_(hot_prob), rng_(rng)
    {
    }

    hw::MemRef
    next() override
    {
        if (rng_.chance(hotProb_))
            return hot_.step();
        return cold_.step();
    }

    void
    fillBatch(Addr *addrs, std::uint8_t *writes,
              std::size_t n) override
    {
        for (std::size_t i = 0; i < n; ++i) {
            hw::MemRef ref = rng_.chance(hotProb_) ? hot_.step()
                                                   : cold_.step();
            addrs[i] = ref.addr;
            writes[i] = ref.write ? 1 : 0;
        }
    }

  private:
    RandomStream hot_;
    RandomStream cold_;
    double hotProb_;
    Random rng_;
};

class PointerChaseStream : public hw::AddressStream
{
  public:
    PointerChaseStream(Addr base, std::uint64_t footprint,
                       double write_frac, Random rng)
        : base_(base), writeFrac_(write_frac), rng_(rng)
    {
        panic_if(footprint < 64, "pointer chase: region too small");
        // Sattolo's algorithm builds a single cycle through every
        // line: next_[i] is "the pointer stored in line i".
        std::uint64_t lines =
            std::min<std::uint64_t>(footprint / 64, 1 << 20);
        next_.resize(lines);
        for (std::uint64_t i = 0; i < lines; ++i)
            next_[i] = i;
        for (std::uint64_t i = lines - 1; i > 0; --i) {
            std::uint64_t j =
                rng_.below(static_cast<std::uint32_t>(i));
            std::swap(next_[i], next_[j]);
        }
    }

    hw::MemRef
    next() override
    {
        return step();
    }

    void
    fillBatch(Addr *addrs, std::uint8_t *writes,
              std::size_t n) override
    {
        for (std::size_t i = 0; i < n; ++i) {
            hw::MemRef ref = step();
            addrs[i] = ref.addr;
            writes[i] = ref.write ? 1 : 0;
        }
    }

  private:
    hw::MemRef
    step()
    {
        hw::MemRef ref;
        ref.addr = base_ + cursor_ * 64;
        ref.write = rng_.chance(writeFrac_);
        cursor_ = next_[cursor_];
        return ref;
    }

    Addr base_;
    double writeFrac_;
    Random rng_;
    std::vector<std::uint64_t> next_;
    std::uint64_t cursor_ = 0;
};

} // anonymous namespace

std::unique_ptr<hw::AddressStream>
makeAddressStream(const MemPatternSpec &spec, Addr base, Random rng)
{
    switch (spec.kind) {
      case MemPatternSpec::Kind::none:
        return nullptr;
      case MemPatternSpec::Kind::sequential:
        return std::make_unique<SequentialStream>(
            base, spec.footprintBytes, 64, spec.writeFraction, rng);
      case MemPatternSpec::Kind::strided:
        return std::make_unique<SequentialStream>(
            base, spec.footprintBytes, spec.strideBytes,
            spec.writeFraction, rng);
      case MemPatternSpec::Kind::randomUniform:
        return std::make_unique<RandomStream>(
            base, spec.footprintBytes, spec.writeFraction, rng);
      case MemPatternSpec::Kind::hotCold:
        return std::make_unique<HotColdStream>(
            base, spec.hotBytes, spec.footprintBytes,
            spec.hotProbability, spec.writeFraction, rng);
      case MemPatternSpec::Kind::pointerChase:
        return std::make_unique<PointerChaseStream>(
            base, spec.footprintBytes, spec.writeFraction, rng);
    }
    panic("unhandled MemPatternSpec kind");
}

} // namespace klebsim::workload
