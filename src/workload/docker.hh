/**
 * @file
 * Docker container models (paper case study IV-B).
 *
 * Each popular Docker Hub image is modeled as a workload with a
 * characteristic instruction mix, memory footprint, and locality —
 * the knobs that determine its LLC misses-per-kilo-instruction
 * (MPKI), which the paper uses to classify images as
 * computation-intensive (MPKI < 10) or memory-intensive
 * (MPKI > 10) following Muralidhara et al.
 *
 * A container launches as the real engine does: a containerd-shim
 * service process forks the image's entrypoint as a child, so the
 * monitored "program" spans multiple PIDs — exactly the situation
 * K-LEB's descendant tracing handles.
 */

#ifndef KLEBSIM_WORKLOAD_DOCKER_HH
#define KLEBSIM_WORKLOAD_DOCKER_HH

#include <memory>
#include <string>
#include <vector>

#include "base/random.hh"
#include "base/types.hh"
#include "kernel/kernel.hh"
#include "phase_workload.hh"

namespace klebsim::workload
{

/** Workload classification thresholds (Muralidhara et al.). */
constexpr double memoryIntensiveMpki = 10.0;

/** Static description of one Docker image's behaviour. */
struct DockerImageSpec
{
    std::string name;

    /** Instructions the containerized program retires. */
    std::uint64_t instructions = 800000000;

    /** Total data footprint. */
    std::uint64_t footprintBytes = 0;

    /** Hot working-set size. */
    std::uint64_t hotBytes = 0;

    /** Probability an access hits the hot set. */
    double hotProbability = 0.9;

    /** Fraction of instructions that access memory. */
    double memFraction = 0.35;

    double baseIpc = 2.0;

    /** Expected classification (for tests/reports). */
    bool expectMemoryIntensive = false;
};

/**
 * The nine Docker Hub images the paper profiles, ordered as in
 * Fig. 5: interpreters (ruby, golang, python), services (mysql,
 * traefik, ghost), web servers (apache, nginx, tomcat).
 */
const std::vector<DockerImageSpec> &dockerCatalog();

/** Look up a catalog image by name; fatal() if unknown. */
const DockerImageSpec &dockerImage(const std::string &name);

/** Build the image's workload. */
std::unique_ptr<PhaseWorkload>
makeDockerWorkload(const DockerImageSpec &spec, Addr base,
                   Random rng);

/**
 * A launched container: the shim process tree.
 */
struct Container
{
    kernel::Process *shim = nullptr;  //!< containerd-shim parent
    kernel::Process *entry = nullptr; //!< image entrypoint child

    /** Workload backing the entrypoint (owned). */
    std::unique_ptr<PhaseWorkload> workload;

    /** Shim script (owned). */
    std::unique_ptr<kernel::ServiceBehavior> shimBehavior;
};

/**
 * Launch @p spec as a container on @p core: creates the shim
 * service, which after a startup delay forks and starts the
 * entrypoint workload, then waits for it and exits.
 *
 * @return the container handle; monitor container.shim->pid() with
 *         descendant tracing to cover the whole tree.
 */
std::unique_ptr<Container>
launchContainer(kernel::Kernel &kernel, const DockerImageSpec &spec,
                CoreId core, Addr base, Random rng);

} // namespace klebsim::workload

#endif // KLEBSIM_WORKLOAD_DOCKER_HH
