#include "docker.hh"

#include "base/logging.hh"

namespace klebsim::workload
{

namespace
{

std::vector<DockerImageSpec>
buildCatalog()
{
    using u64 = std::uint64_t;
    constexpr u64 kb = 1024;
    constexpr u64 mb = 1024 * 1024;

    std::vector<DockerImageSpec> v;

    // Hot-probability values are derived from the paper's Fig. 5
    // MPKI levels: MPKI ~= memFraction * (1 - hotProb) * P(cold
    // misses LLC) * 1000.

    // Interpreters: tight bytecode dispatch loops over small heaps
    // (MPKI well below 1).
    v.push_back({"ruby", 800000000, 64 * mb, 64 * kb, 0.99800,
                 0.30, 2.1, false});
    v.push_back({"golang", 800000000, 64 * mb, 96 * kb, 0.99880,
                 0.28, 2.4, false});
    v.push_back({"python", 800000000, 64 * mb, 48 * kb, 0.99720,
                 0.32, 1.9, false});

    // Services: larger working sets, still computation-intensive
    // (MPKI between 1 and 10).
    v.push_back({"mysql", 800000000, 96 * mb, 1024 * kb, 0.98500,
                 0.38, 1.8, false});
    v.push_back({"traefik", 800000000, 64 * mb, 512 * kb, 0.99000,
                 0.33, 2.2, false});
    v.push_back({"ghost", 800000000, 80 * mb, 768 * kb, 0.98000,
                 0.36, 1.9, false});

    // Web servers: request/response buffers stream through the
    // cache with little reuse (MPKI above 10).
    v.push_back({"apache", 800000000, 128 * mb, 256 * kb, 0.94700,
                 0.42, 1.6, true});
    v.push_back({"nginx", 800000000, 112 * mb, 192 * kb, 0.95600,
                 0.40, 1.8, true});
    v.push_back({"tomcat", 800000000, 160 * mb, 384 * kb, 0.93500,
                 0.45, 1.5, true});

    return v;
}

} // anonymous namespace

const std::vector<DockerImageSpec> &
dockerCatalog()
{
    static const std::vector<DockerImageSpec> catalog =
        buildCatalog();
    return catalog;
}

const DockerImageSpec &
dockerImage(const std::string &name)
{
    for (const auto &spec : dockerCatalog())
        if (spec.name == name)
            return spec;
    fatal("unknown docker image: " + name);
}

std::unique_ptr<PhaseWorkload>
makeDockerWorkload(const DockerImageSpec &spec, Addr base,
                   Random rng)
{
    double mem_frac = spec.memFraction;

    // Entrypoint startup: interpreter/library load over a small,
    // quickly-warmed working set.  Kept cache-cheap so it does not
    // distort the image's steady-state MPKI signature.
    Phase entry;
    entry.name = spec.name + "-entry";
    entry.instructions = spec.instructions / 100;
    entry.loadFrac = 0.30;
    entry.storeFrac = 0.25;
    entry.branchFrac = 0.12;
    entry.baseIpc = 1.8;
    entry.mem = MemPatternSpec::randomUniform(64 * 1024, 0.6);

    Phase steady;
    steady.name = spec.name + "-steady";
    steady.instructions = spec.instructions;
    steady.loadFrac = mem_frac * 0.72;
    steady.storeFrac = mem_frac * 0.28;
    steady.branchFrac = 0.16;
    steady.mulFrac = 0.03;
    steady.baseIpc = spec.baseIpc;
    steady.mem = MemPatternSpec::hotCold(spec.hotBytes,
                                         spec.footprintBytes,
                                         spec.hotProbability, 0.3);

    return std::make_unique<PhaseWorkload>(
        spec.name, std::vector<Phase>{entry, steady}, base, rng);
}

namespace
{

/**
 * containerd-shim: set up the container, fork the entrypoint,
 * wait for it, tear down.
 */
class ShimBehavior : public kernel::ServiceBehavior
{
  public:
    ShimBehavior(Container *container, const DockerImageSpec &spec,
                 CoreId core)
        : container_(container), spec_(spec), core_(core)
    {
    }

    kernel::ServiceOp
    nextOp(kernel::Kernel &kernel, kernel::Process &self) override
    {
        (void)kernel; // ops act through the syscall-callback kernel
        using Op = kernel::ServiceOp;
        switch (step_++) {
          case 0:
            // Image unpack / namespace setup.
            return Op::makeCompute(msToTicks(1.5), 512 * 1024);
          case 1:
            // fork+exec of the entrypoint.
            return Op::makeSyscall(
                [this](kernel::Kernel &k, kernel::Process &shim) {
                    kernel::Process *child = k.createWorkload(
                        spec_.name, container_->workload.get(),
                        core_, shim.pid());
                    container_->entry = child;
                    k.startProcess(child);
                    k.onExit(child->pid(), [this, &k] {
                        k.wakeAll(done_);
                    });
                },
                usToTicks(180), 64 * 1024);
          case 2:
            if (container_->entry &&
                container_->entry->state() !=
                    kernel::ProcState::zombie) {
                --step_; // re-block if woken spuriously
                return Op::makeBlock(&done_);
            }
            return Op::makeSyscall({}, usToTicks(60)); // reap child
          default:
            (void)self;
            return Op::makeExit();
        }
    }

  private:
    Container *container_;
    DockerImageSpec spec_;
    CoreId core_;
    kernel::WaitChannel done_;
    int step_ = 0;
};

} // anonymous namespace

std::unique_ptr<Container>
launchContainer(kernel::Kernel &kernel, const DockerImageSpec &spec,
                CoreId core, Addr base, Random rng)
{
    auto container = std::make_unique<Container>();
    container->workload = makeDockerWorkload(spec, base, rng);
    auto behavior = std::make_unique<ShimBehavior>(container.get(),
                                                   spec, core);
    container->shim = kernel.createService(
        spec.name + "-shim", behavior.get(), core);
    container->shimBehavior = std::move(behavior);
    kernel.startProcess(container->shim);
    return container;
}

} // namespace klebsim::workload
