#include "linpack.hh"

namespace klebsim::workload
{

double
linpackFlops(const LinpackParams &params)
{
    double n = static_cast<double>(params.n);
    return static_cast<double>(params.trials) *
           (2.0 / 3.0 * n * n * n + 2.0 * n * n);
}

double
linpackGflops(const LinpackParams &params, Tick lifetime)
{
    double sec = ticksToSec(lifetime);
    if (sec <= 0.0)
        return 0.0;
    return linpackFlops(params) / sec / 1e9;
}

std::unique_ptr<PhaseWorkload>
makeLinpack(const LinpackParams &params, Addr base, Random rng)
{
    double n = static_cast<double>(params.n);
    std::uint64_t matrix_bytes =
        static_cast<std::uint64_t>(n * n * 8.0);
    double run_flops = linpackFlops(params);
    double trial_flops =
        run_flops / static_cast<double>(params.trials);

    std::vector<Phase> phases;

    // Initialization: parameter extraction in kernel mode — the
    // paper notes the first samples show almost no user counts.
    Phase init;
    init.name = "init";
    init.instructions = 600000;
    init.loadFrac = 0.22;
    init.storeFrac = 0.08;
    init.branchFrac = 0.18;
    init.baseIpc = 1.2;
    init.priv = hw::PrivLevel::kernel;
    init.mem = MemPatternSpec::hotCold(16 * 1024, 256 * 1024, 0.9);
    phases.push_back(init);

    // Matrix generation: store-dominated sweep over A and b.
    // Sequential stores stream through write-combining buffers on
    // real hardware; stall exposure is low.
    Phase setup;
    setup.name = "setup";
    setup.instructions = static_cast<std::uint64_t>(n * n * 9.0);
    setup.loadFrac = 0.30;
    setup.storeFrac = 0.34;
    setup.branchFrac = 0.12;
    setup.mulFrac = 0.02;
    setup.baseIpc = 2.2;
    // Non-temporal streaming stores: almost fully hidden, so the
    // setup phase retires stores at full rate (Fig. 4's surge).
    setup.stallExposureScale = 0.01;
    setup.mem = MemPatternSpec::sequential(matrix_bytes, 0.55);
    phases.push_back(setup);

    // One trial: blocksPerTrial repetitions of load/compute/store.
    // The compute phase carries the multiply-accumulate FLOPs; its
    // per-instruction FLOP weight folds the testbed's multi-core
    // packed-SIMD throughput into the single modeled core (the
    // paper's 37 GFLOPS came from a 4-core MKL run).
    double block_flops =
        trial_flops / static_cast<double>(params.blocksPerTrial);
    auto block_instr =
        static_cast<std::uint64_t>(block_flops / 7.5);

    Phase load;
    load.name = "load";
    load.instructions = block_instr / 24;
    load.loadFrac = 0.52;
    load.storeFrac = 0.05;
    load.branchFrac = 0.10;
    load.mulFrac = 0.04;
    load.baseIpc = 2.4;
    load.stallExposureScale = 0.04; // prefetched panel streaming
    load.mem = MemPatternSpec::sequential(matrix_bytes, 0.05);

    Phase compute;
    compute.name = "compute";
    compute.instructions = block_instr;
    compute.loadFrac = 0.30;
    compute.storeFrac = 0.06;
    compute.branchFrac = 0.08;
    compute.mulFrac = 0.30;
    compute.fpFrac = 0.45;
    compute.baseIpc = 3.3;
    compute.flops = block_flops;
    compute.mispredictRate = 0.002;
    compute.mem =
        MemPatternSpec::hotCold(192 * 1024, matrix_bytes, 0.995,
                                0.15);

    Phase store;
    store.name = "store";
    store.instructions = block_instr / 24;
    store.loadFrac = 0.12;
    store.storeFrac = 0.48;
    store.branchFrac = 0.10;
    store.baseIpc = 2.2;
    store.stallExposureScale = 0.04;
    store.mem = MemPatternSpec::sequential(matrix_bytes, 0.85);

    std::vector<Phase> trial =
        repeatPhases({load, compute, store}, params.blocksPerTrial);
    phases = concatPhases(
        std::move(phases),
        repeatPhases(trial, params.trials));

    return std::make_unique<PhaseWorkload>("linpack",
                                           std::move(phases), base,
                                           rng);
}

} // namespace klebsim::workload
