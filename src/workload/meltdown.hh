/**
 * @file
 * Meltdown case study (paper section IV-C).
 *
 * The victim is a short secret-string printing program; the attack
 * variant additionally performs a Flush+Reload Meltdown loop: for
 * each secret byte it CLFLUSHes a 256-page probe array, transiently
 * accesses probe[secret[i]] (the microarchitectural leak), takes
 * the fault, then reloads all 256 probe lines and infers the byte
 * from which reload was fast.
 *
 * Unlike the phase workloads, the attack runs in exact-access mode:
 * every clflush and reload is a real operation against the
 * simulated cache hierarchy, and the attacker genuinely recovers
 * the secret through the cache side channel — recoveredSecret()
 * lets tests verify it.  The cache-event signature the paper
 * detects (LLC reference/miss spike, MPKI 7.5 -> 27.5) is an
 * emergent consequence.
 */

#ifndef KLEBSIM_WORKLOAD_MELTDOWN_HH
#define KLEBSIM_WORKLOAD_MELTDOWN_HH

#include <memory>
#include <string>

#include "base/random.hh"
#include "base/types.hh"
#include "phase_workload.hh"

namespace klebsim::workload
{

/** Parameters of the Meltdown attack program. */
struct MeltdownParams
{
    /** The secret planted in "kernel memory". */
    std::string secret = "IISWC2020-KLEB-SECRET-42";

    /** Flush+Reload rounds per secret byte (retries). */
    std::uint32_t retriesPerByte = 60;

    /** Probe-array stride (one page per value, as in the PoC). */
    std::uint64_t probeStride = 4096;
};

/**
 * The clean secret-printing program (<10 ms; the paper notes perf's
 * 10 ms timer cannot even produce multiple samples for it).
 */
std::unique_ptr<PhaseWorkload>
makeSecretPrinter(Addr base, Random rng);

/**
 * The victim program with the Meltdown attack attached.
 */
class MeltdownWorkload : public hw::WorkSource
{
  public:
    MeltdownWorkload(MeltdownParams params, Addr probe_base,
                     Random rng);
    ~MeltdownWorkload() override;

    /** @{ WorkSource interface. */
    bool done() const override;
    hw::WorkChunk nextChunk(hw::MemHierarchy &mem) override;
    void reset() override;
    /** @} */

    /** Bytes the attacker has recovered via the side channel. */
    const std::string &recoveredSecret() const { return recovered_; }

    /** Fraction of per-round inferences that matched the secret. */
    double recoveryAccuracy() const;

  private:
    hw::WorkChunk attackRound(hw::MemHierarchy &mem);

    MeltdownParams params_;
    Addr probeBase_;
    Addr secretBase_;
    Random rng_;

    /** Printer prologue/epilogue around the attack burst. */
    std::unique_ptr<PhaseWorkload> prologue_;
    std::unique_ptr<PhaseWorkload> epilogue_;

    std::size_t byteIdx_ = 0;
    std::uint32_t retry_ = 0;
    std::string recovered_;
    std::uint64_t correctRounds_ = 0;
    std::uint64_t totalRounds_ = 0;

    /** Per-byte vote histogram across retries. */
    std::array<std::uint32_t, 256> votes_{};
};

} // namespace klebsim::workload

#endif // KLEBSIM_WORKLOAD_MELTDOWN_HH
