/**
 * @file
 * LINPACK benchmark model (paper case study IV-A).
 *
 * The Intel MKL LINPACK binary solves a dense linear system: after
 * a kernel-heavy initialization and a load/store-heavy matrix
 * setup, each trial alternates load -> multiply-accumulate ->
 * store phases (the pattern K-LEB's Fig. 4 time series makes
 * visible), and reports performance in GFLOPS.
 *
 * The paper ran N=5000 with 10 trials (~22 s at 37 GFLOPS); the
 * default here is a smaller N so whole tool-comparison sweeps stay
 * tractable — the phase structure and the FLOPS-vs-overhead
 * sensitivity are unchanged (DESIGN.md section 7).
 */

#ifndef KLEBSIM_WORKLOAD_LINPACK_HH
#define KLEBSIM_WORKLOAD_LINPACK_HH

#include <cstdint>
#include <memory>

#include "base/random.hh"
#include "base/types.hh"
#include "phase_workload.hh"

namespace klebsim::workload
{

/** LINPACK problem parameters. */
struct LinpackParams
{
    /** Problem size (matrix dimension). */
    std::uint32_t n = 1200;

    /** Number of solve trials in one run. */
    std::uint32_t trials = 10;

    /** Visible load/compute/store repetitions per trial. */
    std::uint32_t blocksPerTrial = 8;
};

/** Total FLOPs of a run: trials * (2/3 n^3 + 2 n^2). */
double linpackFlops(const LinpackParams &params);

/** GFLOPS given a measured wall-clock lifetime. */
double linpackGflops(const LinpackParams &params, Tick lifetime);

/**
 * Build the LINPACK workload.
 *
 * @param base data-region base address
 * @param rng per-run stochastic stream
 */
std::unique_ptr<PhaseWorkload>
makeLinpack(const LinpackParams &params, Addr base, Random rng);

} // namespace klebsim::workload

#endif // KLEBSIM_WORKLOAD_LINPACK_HH
