#include "matmul.hh"

namespace klebsim::workload
{

double
matmulFlops(const MatMulParams &params)
{
    double n = static_cast<double>(params.n);
    return 2.0 * n * n * n;
}

std::unique_ptr<PhaseWorkload>
makeMatMulLoop(const MatMulParams &params, Addr base, Random rng)
{
    double n = static_cast<double>(params.n);
    auto matrix_bytes = static_cast<std::uint64_t>(3.0 * n * n * 8.0);
    double flops = matmulFlops(params);

    // ~8 instructions per inner iteration (loads, fma, index math,
    // branch); one inner iteration per multiply-add pair.
    auto instr = static_cast<std::uint64_t>(flops / 2.0 * 8.0);

    Phase init;
    init.name = "alloc-init";
    init.instructions = static_cast<std::uint64_t>(n * n * 6.0);
    init.loadFrac = 0.18;
    init.storeFrac = 0.40;
    init.branchFrac = 0.12;
    init.baseIpc = 2.0;
    init.stallExposureScale = 0.1; // streaming initialization
    init.mem = MemPatternSpec::sequential(matrix_bytes, 0.8);

    Phase mult;
    mult.name = "triple-loop";
    mult.instructions = instr;
    mult.loadFrac = 0.26;
    mult.storeFrac = 0.02;
    mult.branchFrac = 0.13;
    mult.mulFrac = 0.13;
    mult.fpFrac = 0.25;
    mult.mispredictRate = 0.004;
    // The naive loop is bound by the FP dependency chain, not by
    // misses: B's lines are reused across 8 consecutive j
    // iterations, so the effective hot set (A/C rows + the active
    // B column panel) covers most accesses.
    mult.baseIpc = 1.5;
    mult.flops = flops;
    mult.mem = MemPatternSpec::hotCold(128 * 1024, matrix_bytes,
                                       0.995, 0.04);

    return std::make_unique<PhaseWorkload>(
        "matmul-loop", std::vector<Phase>{init, mult}, base, rng);
}

std::unique_ptr<PhaseWorkload>
makeMatMulMkl(const MatMulParams &params, Addr base, Random rng)
{
    double n = static_cast<double>(params.n);
    auto matrix_bytes = static_cast<std::uint64_t>(3.0 * n * n * 8.0);
    double flops = matmulFlops(params);

    // Packed SIMD multi-core dgemm folded into the modeled core:
    // ~5.3 FLOPs retire per fp instruction, with one overhead
    // instruction per fp instruction.
    auto fp_instr = static_cast<std::uint64_t>(flops / 5.33);
    std::uint64_t instr = fp_instr * 2;

    Phase init;
    init.name = "pack";
    init.instructions = static_cast<std::uint64_t>(n * n * 3.0);
    init.loadFrac = 0.35;
    init.storeFrac = 0.35;
    init.branchFrac = 0.08;
    init.baseIpc = 2.6;
    init.stallExposureScale = 0.1; // blocked packing streams
    init.mem = MemPatternSpec::sequential(matrix_bytes, 0.5);

    Phase gemm;
    gemm.name = "dgemm";
    gemm.instructions = instr;
    gemm.loadFrac = 0.30;
    gemm.storeFrac = 0.05;
    gemm.branchFrac = 0.04;
    gemm.mulFrac = 0.25;
    gemm.fpFrac = 0.50;
    gemm.mispredictRate = 0.001;
    gemm.baseIpc = 3.5;
    gemm.flops = flops;
    // Cache blocking keeps nearly every access in a 256 KB tile.
    gemm.mem = MemPatternSpec::hotCold(256 * 1024, matrix_bytes,
                                       0.998, 0.08);

    return std::make_unique<PhaseWorkload>(
        "matmul-mkl", std::vector<Phase>{init, gemm}, base, rng);
}

} // namespace klebsim::workload
