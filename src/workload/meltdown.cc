#include "meltdown.hh"

#include <algorithm>

#include "base/logging.hh"
#include "hw/mem_hierarchy.hh"

namespace klebsim::workload
{

namespace
{

/** Printer program phases: format + write the string out. */
std::vector<Phase>
printerPhases(std::uint64_t instructions)
{
    // Calibrated to the paper's clean-program profile: <10 ms
    // lifetime, ~7.5 MPKI (hot/cold rates chosen accordingly).
    Phase fmt;
    fmt.name = "format";
    fmt.instructions = instructions * 2 / 3;
    fmt.loadFrac = 0.26;
    fmt.storeFrac = 0.09;
    fmt.branchFrac = 0.16;
    fmt.baseIpc = 1.9;
    fmt.mem = MemPatternSpec::hotCold(24 * 1024, 64 * 1024 * 1024,
                                      0.979, 0.3);

    Phase out;
    out.name = "write-out";
    out.instructions = instructions - fmt.instructions;
    out.loadFrac = 0.22;
    out.storeFrac = 0.16;
    out.branchFrac = 0.14;
    out.baseIpc = 1.6;
    out.priv = hw::PrivLevel::kernel; // write(2) time
    out.mem = MemPatternSpec::hotCold(16 * 1024, 64 * 1024 * 1024,
                                      0.978, 0.5);
    return {fmt, out};
}

} // anonymous namespace

std::unique_ptr<PhaseWorkload>
makeSecretPrinter(Addr base, Random rng)
{
    // ~8 ms on the 2.67 GHz model (base IPC plus miss stalls).
    return std::make_unique<PhaseWorkload>(
        "secret-printer", printerPhases(16000000), base, rng);
}

MeltdownWorkload::MeltdownWorkload(MeltdownParams params,
                                   Addr probe_base, Random rng)
    : params_(std::move(params)), probeBase_(probe_base),
      secretBase_(probe_base + 0x40000000ULL), rng_(rng)
{
    fatal_if(params_.secret.empty(), "meltdown: empty secret");
    // Same printer program split around the attack burst, so the
    // attack run's non-attack instruction total matches the clean
    // run's.
    prologue_ = std::make_unique<PhaseWorkload>(
        "meltdown-prologue", printerPhases(3000000), probe_base,
        rng.fork(1));
    epilogue_ = std::make_unique<PhaseWorkload>(
        "meltdown-epilogue", printerPhases(13000000), probe_base,
        rng.fork(2));
}

MeltdownWorkload::~MeltdownWorkload() = default;

void
MeltdownWorkload::reset()
{
    prologue_->reset();
    epilogue_->reset();
    byteIdx_ = 0;
    retry_ = 0;
    recovered_.clear();
    correctRounds_ = 0;
    totalRounds_ = 0;
    votes_.fill(0);
}

bool
MeltdownWorkload::done() const
{
    return prologue_->done() &&
           byteIdx_ >= params_.secret.size() && epilogue_->done();
}

double
MeltdownWorkload::recoveryAccuracy() const
{
    if (totalRounds_ == 0)
        return 0.0;
    return static_cast<double>(correctRounds_) /
           static_cast<double>(totalRounds_);
}

hw::WorkChunk
MeltdownWorkload::attackRound(hw::MemHierarchy &mem)
{
    using hw::HwEvent;

    const auto secret_byte = static_cast<std::uint8_t>(
        params_.secret[byteIdx_]);
    const std::uint64_t stride = params_.probeStride;

    hw::EventVector ev = hw::zeroEvents();
    std::uint64_t stall = 0;
    std::uint64_t instructions = 0;

    auto tally = [&](const hw::AccessOutcome &out, bool write) {
        hw::accumulate(ev,
                       hw::MemHierarchy::outcomeEvents(out, write));
        stall += out.cycles;
        ++instructions;
    };

    // Phase 1: flush the probe array (256 CLFLUSHes).
    for (int i = 0; i < 256; ++i) {
        mem.clflush(probeBase_ + static_cast<Addr>(i) * stride);
        instructions += 3; // clflush + loop bookkeeping
        stall += 40;
    }

    // Phase 2: the transient window.  The faulting kernel load
    // microarchitecturally forwards the secret byte; the dependent
    // load pulls probe[secret] into the caches before the fault
    // architecturally squashes everything.
    {
        hw::AccessOutcome leak = mem.access(
            probeBase_ + static_cast<Addr>(secret_byte) * stride,
            false);
        // The transient load is squashed: it perturbs the caches but
        // retires nothing, so it is NOT tallied into retired-event
        // counts — only its cache side effects persist.
        (void)leak;
    }
    // Fault delivery + SIGSEGV handler round trip.
    instructions += 1400;

    // Phase 3: reload each probe line and time it; the resident
    // line (LLC hit or better) reveals the byte.
    int inferred = -1;
    for (int i = 0; i < 256; ++i) {
        hw::AccessOutcome out = mem.access(
            probeBase_ + static_cast<Addr>(i) * stride, false);
        tally(out, false);
        instructions += 8; // rdtsc pair + compare + branch
        if (out.level != hw::MemLevel::dram && inferred < 0)
            inferred = i;
    }

    ++totalRounds_;
    if (inferred >= 0)
        ++votes_[static_cast<std::size_t>(inferred)];
    if (inferred == static_cast<int>(secret_byte))
        ++correctRounds_;

    if (++retry_ >= params_.retriesPerByte) {
        // Commit the majority vote for this byte.
        auto best = std::max_element(votes_.begin(), votes_.end());
        recovered_.push_back(static_cast<char>(
            best - votes_.begin()));
        votes_.fill(0);
        retry_ = 0;
        ++byteIdx_;
    }

    hw::WorkChunk chunk;
    chunk.preExecuted = true;
    at(ev, HwEvent::instRetired) = instructions;
    at(ev, HwEvent::branchRetired) += instructions / 5;
    at(ev, HwEvent::branchMispredicted) += instructions / 160;
    chunk.instructions = instructions;
    chunk.baseIpc = 1.4;
    chunk.mispredictRate = 0.0;
    chunk.preEvents = ev;
    chunk.preStallCycles = stall;
    return chunk;
}

hw::WorkChunk
MeltdownWorkload::nextChunk(hw::MemHierarchy &mem)
{
    panic_if(done(), "meltdown: nextChunk past end");
    if (!prologue_->done())
        return prologue_->nextChunk(mem);
    if (byteIdx_ < params_.secret.size())
        return attackRound(mem);
    return epilogue_->nextChunk(mem);
}

} // namespace klebsim::workload
