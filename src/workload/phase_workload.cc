#include "phase_workload.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "hw/mem_hierarchy.hh"

namespace klebsim::workload
{

PhaseWorkload::PhaseWorkload(std::string name,
                             std::vector<Phase> phases, Addr base,
                             Random rng,
                             std::uint64_t chunk_instructions)
    : name_(std::move(name)), phases_(std::move(phases)),
      base_(base), masterRng_(rng), rng_(rng),
      chunkInstr_(chunk_instructions)
{
    fatal_if(phases_.empty(), "workload '", name_, "': no phases");
    fatal_if(chunkInstr_ == 0, "workload '", name_,
             "': zero chunk size");
    reset();
}

void
PhaseWorkload::reset()
{
    rng_ = masterRng_;
    phaseIdx_ = 0;
    stream_.reset();
    retired_.clear();
    enterPhase(0);
}

void
PhaseWorkload::enterPhase(std::size_t idx)
{
    phaseIdx_ = idx;
    warmPending_ = true;
    if (stream_)
        retired_.push_back(std::move(stream_));
    if (idx >= phases_.size()) {
        phaseRemaining_ = 0;
        return;
    }
    const Phase &ph = phases_[idx];
    phaseRemaining_ = ph.instructions;
    stream_ = makeAddressStream(ph.mem, base_,
                                rng_.fork(0xabcd00 + idx));
    if (phaseRemaining_ == 0)
        enterPhase(idx + 1);
}

bool
PhaseWorkload::done() const
{
    return phaseIdx_ >= phases_.size();
}

hw::WorkChunk
PhaseWorkload::nextChunk(hw::MemHierarchy &mem)
{
    panic_if(done(), "workload '", name_, "': nextChunk past end");

    const Phase &ph = phases_[phaseIdx_];

    // Working-set warming: the chunk engine samples only a bounded
    // number of real accesses per chunk, which would starve a
    // cache-resident working set of the reuse that keeps it warm
    // (every sparse sample would look like a cold first touch).
    // Touching the reused region once at phase entry restores the
    // steady-state residency the sampled accesses then measure.
    // Regions too large to be cache-resident anyway are skipped.
    if (warmPending_ &&
        ph.mem.kind != MemPatternSpec::Kind::none) {
        std::uint64_t bytes =
            ph.mem.kind == MemPatternSpec::Kind::hotCold
                ? ph.mem.hotBytes
                : ph.mem.footprintBytes;
        std::uint64_t lines = bytes / 64;
        if (lines <= 32768) {
            for (std::uint64_t i = 0; i < lines; ++i)
                mem.access(base_ + i * 64, false);
        }
    }
    warmPending_ = false;
    std::uint64_t n = std::min(chunkInstr_, phaseRemaining_);

    hw::WorkChunk chunk;
    chunk.instructions = n;
    auto frac = [&](double f) {
        return static_cast<std::uint64_t>(
            std::llround(static_cast<double>(n) * f));
    };
    chunk.loads = frac(ph.loadFrac);
    chunk.stores = frac(ph.storeFrac);
    chunk.branches = frac(ph.branchFrac);
    chunk.muls = frac(ph.mulFrac);
    chunk.divs = frac(ph.divFrac);
    chunk.fpops = frac(ph.fpFrac);
    chunk.mispredictRate = ph.mispredictRate;
    chunk.baseIpc = ph.baseIpc;
    chunk.stallExposureScale = ph.stallExposureScale;
    chunk.priv = ph.priv;
    chunk.stream = stream_.get();
    if (ph.instructions > 0) {
        chunk.flops = ph.flops * static_cast<double>(n) /
                      static_cast<double>(ph.instructions);
    }

    phaseRemaining_ -= n;
    if (phaseRemaining_ == 0)
        enterPhase(phaseIdx_ + 1);
    return chunk;
}

std::uint64_t
PhaseWorkload::totalInstructions() const
{
    std::uint64_t sum = 0;
    for (const Phase &ph : phases_)
        sum += ph.instructions;
    return sum;
}

double
PhaseWorkload::totalFlops() const
{
    double sum = 0;
    for (const Phase &ph : phases_)
        sum += ph.flops;
    return sum;
}

std::vector<Phase>
repeatPhases(const std::vector<Phase> &body, std::size_t times)
{
    std::vector<Phase> out;
    out.reserve(body.size() * times);
    for (std::size_t i = 0; i < times; ++i)
        out.insert(out.end(), body.begin(), body.end());
    return out;
}

std::vector<Phase>
concatPhases(std::vector<Phase> a, const std::vector<Phase> &b)
{
    a.insert(a.end(), b.begin(), b.end());
    return a;
}

} // namespace klebsim::workload
