/**
 * @file
 * Tiny deterministic work sources for unit tests: fixed chunk lists
 * with exactly known event counts and durations.
 */

#ifndef KLEBSIM_WORKLOAD_MICROBENCH_HH
#define KLEBSIM_WORKLOAD_MICROBENCH_HH

#include <vector>

#include "hw/exec_types.hh"

namespace klebsim::workload
{

/**
 * Emits a caller-supplied list of chunks, once.
 */
class FixedWorkSource : public hw::WorkSource
{
  public:
    explicit FixedWorkSource(std::vector<hw::WorkChunk> chunks)
        : chunks_(std::move(chunks))
    {
    }

    bool done() const override { return idx_ >= chunks_.size(); }

    hw::WorkChunk
    nextChunk(hw::MemHierarchy &mem) override
    {
        (void)mem;
        return chunks_[idx_++];
    }

    void reset() override { idx_ = 0; }

    /** Chunks handed out so far. */
    std::size_t emitted() const { return idx_; }

  private:
    std::vector<hw::WorkChunk> chunks_;
    std::size_t idx_ = 0;
};

/**
 * A pure-compute chunk with a simple mix; handy test fixture.
 *
 * @param instructions chunk size
 * @param ipc base IPC (no memory accesses, so also effective IPC)
 */
inline hw::WorkChunk
computeChunk(std::uint64_t instructions, double ipc = 2.0)
{
    hw::WorkChunk c;
    c.instructions = instructions;
    c.branches = instructions / 8;
    c.mispredictRate = 0.0;
    c.baseIpc = ipc;
    return c;
}

/**
 * A FixedWorkSource of @p n identical compute chunks.
 */
inline FixedWorkSource
computeSource(std::size_t n, std::uint64_t instructions,
              double ipc = 2.0)
{
    std::vector<hw::WorkChunk> chunks(n,
                                      computeChunk(instructions,
                                                   ipc));
    return FixedWorkSource(std::move(chunks));
}

} // namespace klebsim::workload

#endif // KLEBSIM_WORKLOAD_MICROBENCH_HH
