/**
 * @file
 * Ablation: K-LEB behaviour under injected faults (src/fault).
 *
 * Runs the same 200M-instruction workload under the K-LEB session
 * while the deterministic fault injector degrades one thing at a
 * time — narrowed counter widths, flaky chardev ops, a dead reader,
 * vetoed module loads, a mid-run target crash — and reports what
 * the hardened lifecycle salvages in each case: count accuracy,
 * drop/retry accounting, and whether the session degraded or
 * aborted.  The fault-free row doubles as the control: it must
 * report zero injections and exact counts.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "tools/harness.hh"
#include "workload/microbench.hh"

using namespace klebsim;
using namespace klebsim::bench;
using namespace klebsim::tools;
using klebsim::workload::FixedWorkSource;
using klebsim::workload::computeChunk;

namespace
{

struct Scenario
{
    const char *label;
    const char *spec;
};

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    const std::size_t chunks = args.quick ? 60 : 200;

    banner("Ablation: fault injection vs the hardened K-LEB "
           "lifecycle");

    const std::vector<Scenario> scenarios = {
        {"fault-free", ""},
        {"24-bit counters", "pmu.width=24"},
        {"flaky chardev", "ioctl.fail=0.2;read.fail=0.2"},
        {"timer misses", "timer.miss=0.1;timer.spike=0.05"},
        {"reader dead", "read.fail=1.0"},
        {"insmod vetoed", "module.initfail=5"},
        {"target crash", "target.crash=8ms"},
    };

    std::vector<RunResult> results = runTrials(
        args.jobs, scenarios.size(), [&](std::size_t k) {
            RunConfig cfg;
            cfg.tool = ToolKind::kleb;
            cfg.seed = 9;
            cfg.period = msToTicks(1);
            cfg.expectedLifetime = msToTicks(40);
            cfg.expectedInstructions =
                static_cast<std::uint64_t>(chunks) * 1000000ULL;
            cfg.faultSpec = scenarios[k].spec;
            cfg.workloadFactory = [chunks](Addr, Random) {
                std::vector<hw::WorkChunk> work(
                    chunks, computeChunk(1000000, 2.0));
                return std::make_unique<FixedWorkSource>(
                    std::move(work));
            };
            return runOnce(cfg);
        });

    Table table({"Scenario", "Lifetime (ms)", "Samples",
                 "Inst err %", "Accepted", "Drops", "Retries",
                 "Wraps", "Load att.", "Outcome", "Injections"});
    for (std::size_t k = 0; k < scenarios.size(); ++k) {
        const RunResult &r = results[k];
        const std::uint64_t true_inst =
            at(r.trueTotals, hw::HwEvent::instRetired);
        double err = 0.0;
        if (!r.totals.empty() && true_inst > 0)
            err = (static_cast<double>(r.totals[0]) -
                   static_cast<double>(true_inst)) /
                  static_cast<double>(true_inst) * 100.0;
        const char *outcome = r.klebAborted
                                  ? "aborted"
                                  : (r.samples == 0 ? "degraded"
                                                    : "clean");
        table.addRow({scenarios[k].label,
                      toFixed(ticksToMs(r.lifetime), 2),
                      std::to_string(r.samples), toFixed(err, 4),
                      std::to_string(r.klebStatus.samplesRecorded),
                      std::to_string(r.klebStatus.samplesDropped),
                      std::to_string(r.klebRetries),
                      std::to_string(r.klebStatus.counterWraps),
                      std::to_string(r.klebLoadAttempts),
                      outcome,
                      std::to_string(r.faultsInjected)});
    }
    table.print();
    if (args.csv)
        table.printCsv();

    std::printf("\nShape check: the fault-free row injects nothing "
                "and reports 0%% count error; narrowed counters "
                "stay at 0%% error (wraps corrected); transient "
                "chardev faults cost retries, not samples; only "
                "the dead-reader row aborts.\n");
    return 0;
}
