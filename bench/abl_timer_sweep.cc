/**
 * @file
 * Ablation: K-LEB overhead versus sampling period.
 *
 * The paper's section VI argues the usable limit is ~100 us: below
 * that, interrupt costs blow up; above it, overhead falls toward
 * the controller/drain floor.  This bench sweeps the period and
 * shows the knee, plus the achieved sample counts.
 */

#include <cstdio>
#include <iterator>

#include "bench_util.hh"
#include "tools/harness.hh"
#include "workload/matmul.hh"

using namespace klebsim;
using namespace klebsim::bench;
using namespace klebsim::tools;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    int runs = args.runsOr(args.quick ? 2 : 5);

    RunConfig cfg;
    std::uint32_t n = args.quick ? 500 : 800;
    cfg.expectedInstructions = static_cast<std::uint64_t>(
        workload::matmulFlops({n}) / 2.0 * 8.0);
    cfg.workloadFactory = [n](Addr base, Random rng) {
        return workload::makeMatMulLoop({n}, base, rng);
    };

    banner("Ablation: K-LEB overhead vs sampling period "
           "(matmul loop)");

    const Tick periods[] = {
        usToTicks(25),  usToTicks(50),  usToTicks(100),
        usToTicks(250), usToTicks(500), msToTicks(1),
        msToTicks(10),  msToTicks(100)};
    const std::size_t n_periods = std::size(periods);

    // Flatten baseline runs, per-period runs, and the per-period
    // fixed-seed probes into one independent-trial grid.
    const auto n_runs = static_cast<std::size_t>(runs);
    std::vector<RunConfig> grid;
    for (std::size_t i = 0; i < n_runs; ++i) {
        RunConfig c = cfg;
        c.tool = ToolKind::none;
        c.seed = trialSeed(
            cfg.seed, static_cast<std::uint64_t>(c.tool), i);
        grid.push_back(c);
    }
    for (std::size_t p = 0; p < n_periods; ++p) {
        for (std::size_t i = 0; i <= n_runs; ++i) {
            RunConfig c = cfg;
            c.tool = ToolKind::kleb;
            c.period = periods[p];
            // Trial n_runs is the fixed-seed probe run.
            c.seed = i == n_runs
                         ? 1
                         : trialSeed(cfg.seed,
                                     static_cast<std::uint64_t>(
                                         c.tool),
                                     i);
            grid.push_back(c);
        }
    }
    std::vector<RunResult> results = runTrials(
        args.jobs, grid.size(),
        [&](std::size_t k) { return runOnce(grid[k]); });

    std::vector<double> baseline;
    for (std::size_t i = 0; i < n_runs; ++i)
        baseline.push_back(results[i].seconds);

    Table table({"Period", "Overhead (%)", "Samples",
                 "Per-sample cost (us)"});
    for (std::size_t p = 0; p < n_periods; ++p) {
        Tick period = periods[p];
        std::size_t base_idx = n_runs + p * (n_runs + 1);
        std::vector<double> secs;
        for (std::size_t i = 0; i < n_runs; ++i)
            secs.push_back(results[base_idx + i].seconds);
        double overhead = overheadPct(secs, baseline);
        const RunResult &probe = results[base_idx + n_runs];
        double base_mean = 0;
        for (double s : baseline)
            base_mean += s;
        base_mean /= static_cast<double>(baseline.size());
        double per_sample_us =
            probe.samples
                ? (overhead / 100.0) * base_mean * 1e6 /
                      static_cast<double>(probe.samples)
                : 0.0;
        table.addRow({csprintf("%8.0f us", ticksToUs(period)),
                      toFixed(overhead, 3),
                      std::to_string(probe.samples),
                      toFixed(per_sample_us, 2)});
    }
    table.print();
    std::printf("\nShape check (paper section VI): overhead grows "
                "sharply below the 100 us recommendation and "
                "flattens toward the drain floor at coarse "
                "periods.\n");
    return 0;
}
