/**
 * @file
 * Fig. 7 reproduction: Meltdown vs non-Meltdown 100 us time series
 * via K-LEB (paper section IV-C).
 *
 * The clean program finishes in <10 ms, so a 10 ms tool (perf stat)
 * yields at most one data point; K-LEB's 100 us series localizes
 * the attack's onset as an LLC-miss-ratio spike, early in the run.
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hh"
#include "kernel/system.hh"
#include "kleb/session.hh"
#include "stats/time_series.hh"
#include "tools/perf.hh"
#include "workload/meltdown.hh"

using namespace klebsim;
using namespace klebsim::bench;
using namespace klebsim::ticks_literals;

namespace
{

struct SeriesResult
{
    stats::TimeSeries deltas{std::vector<std::string>{"x"}};
    Tick lifetime = 0;
    std::string recovered;
};

SeriesResult
runVictim(bool with_attack, std::uint32_t retries)
{
    kernel::System sys(hw::MachineConfig::corei7_920(), 77);
    std::unique_ptr<workload::PhaseWorkload> printer;
    std::unique_ptr<workload::MeltdownWorkload> attack;
    hw::WorkSource *src = nullptr;
    if (with_attack) {
        workload::MeltdownParams params;
        params.retriesPerByte = retries;
        attack = std::make_unique<workload::MeltdownWorkload>(
            params, 0x300000000ULL, sys.forkRng(9));
        src = attack.get();
    } else {
        printer = workload::makeSecretPrinter(0x300000000ULL,
                                              sys.forkRng(9));
        src = printer.get();
    }
    kernel::Process *target =
        sys.kernel().createWorkload("victim", src, 0);

    kleb::Session::Options opts;
    opts.events = {hw::HwEvent::instRetired,
                   hw::HwEvent::llcReference, hw::HwEvent::llcMiss};
    opts.period = 100_us;
    opts.controllerCore = 1;
    kleb::Session session(sys, opts);
    session.monitor(target);
    sys.run();

    SeriesResult out;
    out.deltas = session.deltaSeries();
    out.lifetime = target->lifetime();
    if (attack)
        out.recovered = attack->recoveredSecret();
    return out;
}

void
printSeries(const char *name, const SeriesResult &res)
{
    auto misses = res.deltas.channel("LLC_MISSES");
    auto refs = res.deltas.channel("LLC_REFERENCE");
    const int cols = 64;
    std::vector<double> bucket(cols, 0.0);
    double peak = 1.0;
    for (std::size_t i = 0; i < misses.size(); ++i) {
        int b = static_cast<int>(i * cols /
                                 std::max<std::size_t>(
                                     misses.size(), 1));
        bucket[b] += misses[i];
        peak = std::max(peak, bucket[b]);
    }
    static const char *glyphs = " .:-=+*#%@";
    std::string line;
    for (int b = 0; b < cols; ++b)
        line += glyphs[static_cast<int>(bucket[b] / peak * 9.0)];
    double total_refs = 0, total_misses = 0;
    for (double v : refs)
        total_refs += v;
    for (double v : misses)
        total_misses += v;
    std::printf("%-18s %4zu samples, %6.2f ms | LLC miss series "
                "|%s|\n",
                name, misses.size(), ticksToMs(res.lifetime),
                line.c_str());
    std::printf("%-18s refs=%.0f misses=%.0f miss/ref=%.2f\n", "",
                total_refs, total_misses,
                total_misses / std::max(total_refs, 1.0));
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    std::uint32_t retries = args.quick ? 30 : 65;

    banner("Fig. 7: Meltdown vs non-Meltdown via K-LEB @ 100 us");

    // The clean and attacked victims run on independent machines.
    std::vector<SeriesResult> victims = runTrials(
        args.jobs, 2, [&](std::size_t k) {
            return runVictim(k == 1, retries);
        });
    SeriesResult clean = std::move(victims[0]);
    SeriesResult attacked = std::move(victims[1]);

    printSeries("without Meltdown", clean);
    printSeries("with Meltdown", attacked);

    std::printf("\nside channel: attacker recovered \"%s\"\n",
                attacked.recovered.c_str());

    // How many samples would perf stat's 10 ms floor have yielded
    // on the clean program?
    std::size_t perf_samples = static_cast<std::size_t>(
        clean.lifetime / tools::PerfStatSession::minInterval);
    std::printf("\nperf stat @ its 10 ms floor would capture %zu "
                "interval(s) of the clean program (K-LEB: %zu "
                "samples).\n",
                perf_samples, clean.deltas.size());

    // Point of attack: first sample whose per-interval MPKI is 3x
    // the clean average.
    auto inst = attacked.deltas.channel("INST_RETIRED");
    auto misses = attacked.deltas.channel("LLC_MISSES");
    auto clean_inst = clean.deltas.channel("INST_RETIRED");
    auto clean_misses = clean.deltas.channel("LLC_MISSES");
    double clean_mpki_avg = 0;
    for (std::size_t i = 0; i < clean_inst.size(); ++i)
        clean_mpki_avg +=
            stats::mpki(clean_misses[i],
                        std::max(clean_inst[i], 1.0));
    clean_mpki_avg /= std::max<std::size_t>(clean_inst.size(), 1);
    for (std::size_t i = 0; i < inst.size(); ++i) {
        double mpki =
            stats::mpki(misses[i], std::max(inst[i], 1.0));
        if (mpki > 3.0 * clean_mpki_avg) {
            std::printf("point of attack detected at sample %zu "
                        "(t=%.2f ms), interval MPKI %.1f vs clean "
                        "avg %.1f\n",
                        i,
                        ticksToMs(attacked.deltas.timeAt(i) -
                                  attacked.deltas.timeAt(0)),
                        mpki, clean_mpki_avg);
            break;
        }
    }

    if (args.csv) {
        std::printf("\nsample,inst,llc_ref,llc_miss\n");
        auto refs = attacked.deltas.channel("LLC_REFERENCE");
        for (std::size_t i = 0; i < attacked.deltas.size(); ++i)
            std::printf("%zu,%.0f,%.0f,%.0f\n", i, inst[i],
                        refs[i], misses[i]);
    }
    return 0;
}
