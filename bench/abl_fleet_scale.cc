/**
 * @file
 * Ablation: fleet-scale collection (DESIGN.md section 15).
 *
 * Spins up a fleet of simulated machines — each a full kernel +
 * K-LEB session over a workload mix — streaming epoch-framed
 * records over a lossy link into the central collector, and proves
 * the two properties the fleet design is sold on:
 *
 *  1. determinism at scale: the aggregate CSV and monitor-tree
 *     digest are byte-identical at --jobs 1 and --jobs N, with and
 *     without chaos (machine crashes, link drops/delays) and with
 *     a collector crash + journal-replay restart in the middle;
 *  2. throughput: the collector's merge path sustains millions of
 *     samples per wall-second, measured over a synthetic delivery
 *     stream large enough to dwarf constant costs.
 *
 * --runs N sets the machine count (default 10000; --quick 256).
 * The machine-readable block under `fleet smoke CSV` is gated in CI
 * by `bench_report --check-fleet`.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/invariants.hh"
#include "bench_util.hh"
#include "fleet/fleet.hh"

using namespace klebsim;
using namespace klebsim::bench;
using fleet::Collector;
using fleet::CollectorConfig;
using fleet::Delivery;
using fleet::FleetConfig;
using fleet::FleetResult;

namespace
{

/** One row of the gated smoke CSV. */
struct SmokeRow
{
    std::string scenario;
    unsigned jobs = 0;

    /** Scenario whose digests this row must match ("-" = none). */
    std::string matches = "-";

    FleetResult result;
};

/** The pinned contract bench_report --check-fleet parses. */
constexpr const char *smokeHeader =
    "scenario,jobs,machines,produced,kept,dropped,vanished,"
    "quarantined,accepted,holes,restarts,balanced,matches,"
    "csv_digest,tree_digest";

bool
balanced(const FleetResult &r)
{
    analysis::InvariantChecker checker;
    checker.checkFleetBalance(r, "abl_fleet_scale");
    for (const std::string &v : checker.violations())
        std::fprintf(stderr, "  INVARIANT: %s\n", v.c_str());
    return checker.ok();
}

FleetResult
runScenario(std::uint32_t machines, unsigned jobs,
            const std::string &spec)
{
    FleetConfig cfg;
    cfg.machines = machines;
    cfg.coresPerMachine = 1;
    cfg.rackSize = 64;
    cfg.seed = 42;
    cfg.jobs = jobs;
    cfg.faultSpec = spec;
    return fleet::runFleet(cfg);
}

/**
 * Time the collector merge path alone over a synthetic healthy
 * delivery stream of @p records records; returns the ingest rate
 * in million samples per wall-second.
 */
double
ingestRate(std::uint64_t records)
{
    const std::uint32_t machines = 64;
    const std::uint32_t cores = 2;
    std::vector<Delivery> stream;
    stream.reserve(records);
    const std::uint64_t rounds =
        records / (machines * cores) + 1;
    std::uint64_t made = 0;
    for (std::uint64_t i = 0; i < rounds && made < records; ++i) {
        for (std::uint32_t m = 0;
             m < machines && made < records; ++m) {
            for (std::uint32_t c = 0;
                 c < cores && made < records; ++c) {
                Delivery d;
                d.arrival = usToTicks(100) * (i + 1);
                d.rec.machine = m;
                d.rec.core = static_cast<std::uint16_t>(c);
                d.rec.seq = i;
                d.rec.ts = d.arrival;
                d.rec.counts = {2000 * (i + 1), 1000 * (i + 1),
                                10 * (i + 1)};
                stream.push_back(d);
                ++made;
            }
        }
    }

    CollectorConfig cfg;
    cfg.machines = machines;
    cfg.coresPerMachine = cores;
    // The synthetic stream is a stress clip, not a liveness test:
    // keep every machine healthy for its whole length.
    cfg.heartbeatTimeout = secToTicks(1);
    Collector collector(cfg);

    const auto t0 = std::chrono::steady_clock::now();
    collector.ingest(stream);
    const auto t1 = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(t1 - t0).count();
    const double rate =
        secs > 0.0 ? static_cast<double>(made) / secs / 1e6 : 0.0;
    std::printf("  collector merge: %llu samples in %.3f s -> "
                "%.2f Msamples/s (accepted %llu)\n",
                static_cast<unsigned long long>(made), secs, rate,
                static_cast<unsigned long long>(
                    collector.stats().accepted));
    return rate;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    const std::uint32_t machines = static_cast<std::uint32_t>(
        args.runsOr(args.quick ? 256 : 10000));
    const unsigned many = args.jobs > 1 ? args.jobs : 2;

    banner("Ablation: fleet-scale collection");
    std::printf("  %u machines per fleet, jobs 1 vs %u\n\n",
                machines, many);

    const std::string chaos =
        "machine.crash=0.2;link.drop=0.05;link.delay=0.1;"
        "link.delay.by=500us";

    std::vector<SmokeRow> rows;
    auto add = [&](const char *scenario, unsigned jobs,
                   const char *matches, const std::string &spec) {
        SmokeRow row;
        row.scenario = scenario;
        row.jobs = jobs;
        row.matches = matches;
        row.result = runScenario(machines, jobs, spec);
        rows.push_back(std::move(row));
    };

    add("baseline", 1, "-", "");
    add("baseline", many, "-", "");
    add("chaos", 1, "-", chaos);
    add("chaos", many, "-", chaos);
    // A collector crash mid-drain must replay back to the exact
    // aggregate of the corresponding crash-free scenario.
    add("collector-crash", many, "baseline",
        "collector.crash=1ms");
    add("chaos-crash", many, "chaos",
        chaos + ";collector.crash=1ms");

    Table table({"Scenario", "Jobs", "Produced", "Kept", "Dropped",
                 "Vanished", "Quarantined", "Holes", "Restarts",
                 "Balanced", "CSV digest", "Tree digest"});
    std::vector<std::string> csv_lines;
    for (const SmokeRow &row : rows) {
        const FleetResult &r = row.result;
        std::uint64_t produced = 0, kept = 0, dropped = 0;
        std::uint64_t vanished = 0, quarantined = 0;
        for (const auto &a : r.accounts) {
            produced += a.produced;
            kept += a.kept;
            dropped += a.dropped;
            vanished += a.vanished;
            quarantined += a.quarantined;
        }
        const bool ok = balanced(r);
        table.addRow({row.scenario, std::to_string(row.jobs),
                      std::to_string(produced),
                      std::to_string(kept),
                      std::to_string(dropped),
                      std::to_string(vanished),
                      std::to_string(quarantined),
                      std::to_string(r.holes.size()),
                      std::to_string(r.collector.restarts),
                      ok ? "yes" : "NO",
                      csprintf("%08x", r.csvDigest),
                      csprintf("%08x", r.treeDigest)});
        csv_lines.push_back(csprintf(
            "%s,%u,%u,%llu,%llu,%llu,%llu,%llu,%llu,%zu,%llu,%s,"
            "%s,%08x,%08x",
            row.scenario.c_str(), row.jobs, machines,
            static_cast<unsigned long long>(produced),
            static_cast<unsigned long long>(kept),
            static_cast<unsigned long long>(dropped),
            static_cast<unsigned long long>(vanished),
            static_cast<unsigned long long>(quarantined),
            static_cast<unsigned long long>(r.collector.accepted),
            r.holes.size(),
            static_cast<unsigned long long>(r.collector.restarts),
            ok ? "yes" : "NO", row.matches.c_str(), r.csvDigest,
            r.treeDigest));
    }
    table.print();

    std::printf("\nCollector ingest throughput (synthetic "
                "stream):\n");
    ingestRate(args.quick ? 200000 : 1000000);

    std::printf("\nfleet smoke CSV\n%s\n", smokeHeader);
    for (const std::string &line : csv_lines)
        std::printf("%s\n", line.c_str());

    std::printf(
        "\nShape check: every row balances and carries the same "
        "digest pair as its jobs-1 twin; the crash rows restart "
        "exactly once and still match their crash-free scenario "
        "byte for byte; holes appear only under chaos, and only "
        "for quarantined machines.\n");
    return 0;
}
