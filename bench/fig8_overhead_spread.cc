/**
 * @file
 * Fig. 8 reproduction: box-and-whisker spread of normalized
 * execution time per collection tool (paper section V).
 *
 * The paper's observation: K-LEB not only has the lowest mean
 * overhead but also the smallest spread — it interferes with the
 * monitored process least and most consistently.
 */

#include <cstdio>

#include "bench_util.hh"
#include "stats/summary.hh"
#include "tools/harness.hh"
#include "workload/matmul.hh"

using namespace klebsim;
using namespace klebsim::bench;
using namespace klebsim::tools;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    int runs = args.runsOr(args.quick ? 5 : 20);

    RunConfig cfg;
    cfg.period = msToTicks(10);
    std::uint32_t n = args.quick ? 500 : 1000;
    cfg.expectedInstructions = static_cast<std::uint64_t>(
        workload::matmulFlops({n}) / 2.0 * 8.0);
    cfg.expectedLifetime =
        args.quick ? msToTicks(310) : secToTicks(2.45);
    cfg.workloadFactory = [n](Addr base, Random rng) {
        return workload::makeMatMulLoop({n}, base, rng);
    };

    banner(csprintf("Fig. 8: normalized execution-time spread, "
                    "matmul loop, %d runs/tool",
                    runs));

    // Fan the full (tool, trial) grid out across worker threads.
    const std::vector<ToolKind> &tools = allTools();
    const auto n_runs = static_cast<std::size_t>(runs);
    std::vector<RunResult> results = runTrials(
        args.jobs, tools.size() * n_runs, [&](std::size_t k) {
            RunConfig trial_cfg = cfg;
            trial_cfg.tool = tools[k / n_runs];
            trial_cfg.seed = trialSeed(
                cfg.seed,
                static_cast<std::uint64_t>(trial_cfg.tool),
                k % n_runs);
            return runOnce(trial_cfg);
        });
    auto tool_secs = [&](std::size_t t) {
        std::vector<double> secs;
        for (std::size_t i = 0; i < n_runs; ++i) {
            const RunResult &r = results[t * n_runs + i];
            if (r.supported)
                secs.push_back(r.seconds);
        }
        if (secs.size() != n_runs)
            secs.clear();
        return secs;
    };

    // Normalize against the baseline mean.
    std::vector<double> baseline = tool_secs(0);
    double base_mean = 0;
    for (double s : baseline)
        base_mean += s;
    base_mean /= static_cast<double>(baseline.size());

    Table table({"Tool", "Min", "Q1", "Median", "Q3", "Max",
                 "IQR", "Whisker span"});
    double kleb_iqr = -1;
    double min_other_iqr = 1e300;

    for (std::size_t t = 0; t < tools.size(); ++t) {
        ToolKind tool = tools[t];
        std::vector<double> secs =
            tool == ToolKind::none ? baseline : tool_secs(t);
        if (secs.empty()) {
            table.addRow({toolName(tool), "n/a"});
            continue;
        }
        std::vector<double> normalized;
        normalized.reserve(secs.size());
        for (double s : secs)
            normalized.push_back(s / base_mean);
        stats::FiveNumber f = stats::fiveNumber(normalized);
        if (tool == ToolKind::kleb)
            kleb_iqr = f.iqr();
        else if (tool != ToolKind::none)
            min_other_iqr = std::min(min_other_iqr, f.iqr());
        table.addRow({toolName(tool), toFixed(f.min, 4),
                      toFixed(f.q1, 4), toFixed(f.median, 4),
                      toFixed(f.q3, 4), toFixed(f.max, 4),
                      toFixed(f.iqr(), 4), toFixed(f.range(), 4)});
    }
    table.print();
    std::printf("\nShape check (paper): K-LEB's box is the "
                "tightest of the tools — IQR %.4f vs best other "
                "%.4f (%s).\n",
                kleb_iqr, min_other_iqr,
                kleb_iqr <= min_other_iqr ? "holds"
                                          : "does NOT hold");
    if (args.csv) {
        std::printf("\n");
        table.printCsv();
    }
    return 0;
}
