/**
 * @file
 * Ablation: the value of K-LEB's kernel-space sample pooling
 * (paper section III).
 *
 * K-LEB's design batches samples in a kernel ring buffer so the
 * controller amortizes its syscalls; PAPI-style designs pay a user
 * -> kernel round trip per sample.  This bench sweeps the
 * controller drain interval (batch size) and the buffer capacity,
 * showing both the amortization win and the safety mechanism's
 * pause behaviour with undersized buffers.
 */

#include <cstdio>

#include "bench_util.hh"
#include "kernel/system.hh"
#include "kleb/session.hh"
#include "workload/matmul.hh"

using namespace klebsim;
using namespace klebsim::bench;
using namespace klebsim::ticks_literals;

namespace
{

struct Probe
{
    double sec;
    std::size_t samples;
    std::uint64_t pauses;
};

Probe
run(std::uint32_t n, Tick drain_interval, std::size_t capacity)
{
    kernel::System sys(hw::MachineConfig::corei7_920(), 5);
    auto wl = workload::makeMatMulLoop({n}, 0x100000000ULL,
                                       sys.forkRng(3));
    kernel::Process *target =
        sys.kernel().createWorkload("mm", wl.get(), 0);
    kleb::Session::Options opts;
    opts.period = 100_us;
    opts.bufferCapacity = capacity;
    opts.controllerTuning.drainInterval = drain_interval;
    kleb::Session session(sys, opts);
    session.monitor(target);
    sys.run();

    Probe p;
    p.sec = ticksToSec(target->exitTick());
    p.samples = session.samples().size();
    kleb::KLebStatus st = session.status();
    p.pauses = st.pauseEpisodes;
    return p;
}

double
runBaseline(std::uint32_t n)
{
    kernel::System sys(hw::MachineConfig::corei7_920(), 5);
    auto wl = workload::makeMatMulLoop({n}, 0x100000000ULL,
                                       sys.forkRng(3));
    kernel::Process *target =
        sys.kernel().createWorkload("mm", wl.get(), 0);
    sys.kernel().startProcess(target);
    sys.run();
    return ticksToSec(target->exitTick());
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    std::uint32_t n = args.quick ? 400 : 640;

    const std::vector<Tick> drains = {
        usToTicks(100), msToTicks(1), msToTicks(10),
        msToTicks(50)};
    const std::vector<std::size_t> capacities = {8, 32, 128, 1024,
                                                 16384};

    // Baseline plus every sweep point, each a fresh machine: one
    // independent-trial grid.
    std::vector<Probe> probes = runTrials(
        args.jobs, 1 + drains.size() + capacities.size(),
        [&](std::size_t k) {
            if (k == 0)
                return Probe{runBaseline(n), 0, 0};
            if (k <= drains.size())
                return run(n, drains[k - 1], 16384);
            return run(n, msToTicks(10),
                       capacities[k - 1 - drains.size()]);
        });
    double baseline_sec = probes[0].sec;
    auto overhead_pct = [&](const Probe &p) {
        return (p.sec - baseline_sec) / baseline_sec * 100.0;
    };

    banner("Ablation: kernel-space sample pooling (100 us "
           "sampling, matmul loop)");

    std::printf("-- drain interval sweep (buffer 16384) --\n");
    Table t1({"Drain interval", "Batch size (approx)",
              "Overhead (%)", "Samples"});
    for (std::size_t i = 0; i < drains.size(); ++i) {
        Tick d = drains[i];
        const Probe &p = probes[1 + i];
        t1.addRow({csprintf("%7.1f ms", ticksToMs(d)),
                   std::to_string(std::max<Tick>(d / 100_us, 1)),
                   toFixed(overhead_pct(p), 3),
                   std::to_string(p.samples)});
    }
    t1.print();
    std::printf("\nA 100 us drain interval is the PAPI-style "
                "per-sample round trip; batching drains is "
                "K-LEB's design point.\n");

    std::printf("\n-- buffer capacity sweep (drain every 10 ms, "
                "safety mechanism) --\n");
    Table t2({"Capacity", "Overhead (%)", "Samples", "Pauses"});
    for (std::size_t i = 0; i < capacities.size(); ++i) {
        const Probe &p = probes[1 + drains.size() + i];
        t2.addRow({std::to_string(capacities[i]),
                   toFixed(overhead_pct(p), 3),
                   std::to_string(p.samples),
                   std::to_string(p.pauses)});
    }
    t2.print();
    std::printf("\nUndersized buffers engage the pause/resume "
                "safety mechanism (losing samples to paused time, "
                "never to drops).\n");
    return 0;
}
