/**
 * @file
 * Ablation of a simulator design choice: the per-chunk memory
 * access sample cap (DESIGN.md "two execution fidelities").
 *
 * The chunk engine issues up to memSampleCap real cache accesses
 * per chunk and extrapolates the rest.  This bench sweeps the cap
 * and reports how the measured LLC MPKI and run time converge,
 * along with the simulation cost (sampled accesses issued).
 */

#include <cstdio>

#include "bench_util.hh"
#include "kernel/system.hh"
#include "stats/time_series.hh"
#include "workload/docker.hh"

using namespace klebsim;
using namespace klebsim::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    std::uint64_t instructions =
        args.quick ? 40000000ULL : 200000000ULL;

    banner("Ablation: chunk-engine memory sample cap (mysql "
           "docker image)");

    // Each cap simulates a fresh machine — independent trials.
    const std::vector<std::uint32_t> caps = {16, 48, 96, 192, 384,
                                             768};
    struct CapResult
    {
        double mpki;
        double ms;
        std::uint64_t issued;
    };
    std::vector<CapResult> results = runTrials(
        args.jobs, caps.size(), [&](std::size_t k) {
            hw::MachineConfig machine =
                hw::MachineConfig::corei7_920();
            machine.memSampleCap = caps[k];
            kernel::System sys(machine, 9);
            workload::DockerImageSpec spec =
                workload::dockerImage("mysql");
            spec.instructions = instructions;
            auto wl = workload::makeDockerWorkload(
                spec, 0x200000000ULL, sys.forkRng(2));
            kernel::Process *p =
                sys.kernel().createWorkload("mysql", wl.get(), 0);
            sys.kernel().startProcess(p);
            sys.run();

            const hw::EventVector &ev =
                p->execContext()->totalEvents();
            return CapResult{
                stats::mpki(
                    static_cast<double>(
                        at(ev, hw::HwEvent::llcMiss)),
                    static_cast<double>(
                        at(ev, hw::HwEvent::instRetired))),
                ticksToMs(p->lifetime()),
                sys.core(0).mem().l1().stats().accesses()};
        });

    Table table({"Sample cap", "MPKI", "Run time (ms)",
                 "Cache accesses issued"});
    for (std::size_t k = 0; k < caps.size(); ++k) {
        table.addRow({std::to_string(caps[k]),
                      toFixed(results[k].mpki, 3),
                      toFixed(results[k].ms, 2),
                      std::to_string(results[k].issued)});
    }
    table.print();
    std::printf("\nShape check: MPKI and run time converge well "
                "before the default cap (192); higher caps only "
                "raise simulation cost.\n");
    return 0;
}
