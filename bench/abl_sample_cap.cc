/**
 * @file
 * Ablation of a simulator design choice: the per-chunk memory
 * access sample cap (DESIGN.md "two execution fidelities").
 *
 * The chunk engine issues up to memSampleCap real cache accesses
 * per chunk and extrapolates the rest.  This bench sweeps the cap
 * and reports how the measured LLC MPKI and run time converge,
 * along with the simulation cost (sampled accesses issued).
 */

#include <cstdio>

#include "bench_util.hh"
#include "kernel/system.hh"
#include "stats/time_series.hh"
#include "workload/docker.hh"

using namespace klebsim;
using namespace klebsim::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    std::uint64_t instructions =
        args.quick ? 40000000ULL : 200000000ULL;

    banner("Ablation: chunk-engine memory sample cap (mysql "
           "docker image)");

    Table table({"Sample cap", "MPKI", "Run time (ms)",
                 "Cache accesses issued"});
    for (std::uint32_t cap : {16u, 48u, 96u, 192u, 384u, 768u}) {
        hw::MachineConfig machine =
            hw::MachineConfig::corei7_920();
        machine.memSampleCap = cap;
        kernel::System sys(machine, 9);
        workload::DockerImageSpec spec =
            workload::dockerImage("mysql");
        spec.instructions = instructions;
        auto wl = workload::makeDockerWorkload(
            spec, 0x200000000ULL, sys.forkRng(2));
        kernel::Process *p =
            sys.kernel().createWorkload("mysql", wl.get(), 0);
        sys.kernel().startProcess(p);
        sys.run();

        const hw::EventVector &ev =
            p->execContext()->totalEvents();
        double mpki = stats::mpki(
            static_cast<double>(at(ev, hw::HwEvent::llcMiss)),
            static_cast<double>(at(ev, hw::HwEvent::instRetired)));
        std::uint64_t issued =
            sys.core(0).mem().l1().stats().accesses();
        table.addRow({std::to_string(cap), toFixed(mpki, 3),
                      toFixed(ticksToMs(p->lifetime()), 2),
                      std::to_string(issued)});
    }
    table.print();
    std::printf("\nShape check: MPKI and run time converge well "
                "before the default cap (192); higher caps only "
                "raise simulation cost.\n");
    return 0;
}
