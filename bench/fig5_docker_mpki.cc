/**
 * @file
 * Fig. 5 reproduction: LLC misses-per-kilo-instruction of popular
 * Docker images, measured through K-LEB on the running containers
 * (paper section IV-B).
 *
 * The paper classifies images with MPKI < 10 as computation-
 * intensive and > 10 as memory-intensive (Muralidhara et al.):
 * interpreters (ruby/golang/python) land below 1, mysql/traefik/
 * ghost stay below 10, and the web servers (apache/nginx/tomcat)
 * land well above 10.  The ordering must also be invariant across
 * machines (the paper re-ran on an AWS Xeon).
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hh"
#include "kernel/system.hh"
#include "kleb/session.hh"
#include "stats/time_series.hh"
#include "workload/docker.hh"

using namespace klebsim;
using namespace klebsim::bench;
using namespace klebsim::ticks_literals;

namespace
{

double
measureImage(const hw::MachineConfig &machine,
             const workload::DockerImageSpec &spec,
             std::uint64_t instructions, std::uint64_t seed)
{
    kernel::System sys(machine, seed);
    workload::DockerImageSpec scaled = spec;
    scaled.instructions = instructions;
    auto container = workload::launchContainer(
        sys.kernel(), scaled, 0, 0x200000000ULL,
        sys.forkRng(seed));

    kleb::Session::Options opts;
    opts.events = {hw::HwEvent::instRetired, hw::HwEvent::llcMiss,
                   hw::HwEvent::llcReference};
    opts.period = 1_ms;
    opts.controllerCore = 1;
    kleb::Session session(sys, opts);
    // Monitor the shim PID; the entrypoint is traced as its child.
    session.monitor(container->shim, false);
    sys.run();

    hw::EventVector totals = session.finalTotals();
    return stats::mpki(
        static_cast<double>(at(totals, hw::HwEvent::llcMiss)),
        static_cast<double>(
            at(totals, hw::HwEvent::instRetired)));
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    std::uint64_t instructions =
        args.quick ? 60000000ULL : 400000000ULL;

    banner("Fig. 5: Docker image LLC MPKI via K-LEB "
           "(containerized, multi-PID traced)");

    Table table({"Image", "MPKI (i7-920)", "MPKI (Xeon 8259CL)",
                 "Class", "Expected class"});

    std::vector<std::pair<std::string, double>> i7_order;
    std::vector<std::pair<std::string, double>> xeon_order;
    bool all_classes_match = true;

    // Each (image, machine) measurement is an independent simulated
    // machine; fan the whole catalog out across worker threads.
    const auto &catalog = workload::dockerCatalog();
    std::vector<double> mpki = runTrials(
        args.jobs, catalog.size() * 2, [&](std::size_t k) {
            const auto &spec = catalog[k / 2];
            const hw::MachineConfig machine =
                k % 2 == 0 ? hw::MachineConfig::corei7_920()
                           : hw::MachineConfig::xeon8259cl();
            return measureImage(machine, spec, instructions, 7);
        });

    for (std::size_t s = 0; s < catalog.size(); ++s) {
        const auto &spec = catalog[s];
        double mpki_i7 = mpki[s * 2];
        double mpki_xeon = mpki[s * 2 + 1];
        bool memory_intensive =
            mpki_i7 > workload::memoryIntensiveMpki;
        if (memory_intensive != spec.expectMemoryIntensive)
            all_classes_match = false;
        i7_order.emplace_back(spec.name, mpki_i7);
        xeon_order.emplace_back(spec.name, mpki_xeon);
        table.addRow({spec.name, toFixed(mpki_i7, 2),
                      toFixed(mpki_xeon, 2),
                      memory_intensive ? "memory-intensive"
                                       : "computation-intensive",
                      spec.expectMemoryIntensive
                          ? "memory-intensive"
                          : "computation-intensive"});
    }
    table.print();

    // Cross-machine ordering invariance (paper's AWS validation).
    auto rank = [](std::vector<std::pair<std::string, double>> v) {
        std::sort(v.begin(), v.end(), [](auto &a, auto &b) {
            return a.second < b.second;
        });
        std::vector<std::string> names;
        for (auto &p : v)
            names.push_back(p.first);
        return names;
    };
    bool same_order = rank(i7_order) == rank(xeon_order);
    std::printf("\nClassification matches the paper: %s\n",
                all_classes_match ? "yes" : "NO");
    std::printf("MPKI ordering identical on both machines "
                "(paper's AWS check): %s\n",
                same_order ? "yes" : "NO");
    if (args.csv) {
        std::printf("\n");
        table.printCsv();
    }
    return 0;
}
