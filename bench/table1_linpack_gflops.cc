/**
 * @file
 * Table I reproduction: LINPACK GFLOPS under each profiling tool
 * (paper section IV-A).
 *
 * Paper values (N=5000, 10 trials, 10 ms sample rate):
 *   no profiling 37.24 GFLOPS, K-LEB 37.00 (0.64 % loss),
 *   perf stat 34.78 (7.08 %), perf record 36.89 (0.96 %).
 *
 * The default problem size is scaled down (N=1200) so the sweep
 * completes quickly; GFLOPS sensitivity to monitoring disturbance
 * is duration-relative and unaffected (DESIGN.md section 7).
 */

#include <cstdio>

#include "bench_util.hh"
#include "tools/harness.hh"
#include "workload/linpack.hh"

using namespace klebsim;
using namespace klebsim::bench;
using namespace klebsim::tools;

namespace
{

constexpr double paperGflops[] = {37.24, 37.00, 34.78, 36.89};
constexpr double paperLoss[] = {0.0, 0.64, 7.08, 0.96};

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    int runs = args.runsOr(args.quick ? 2 : 10);

    workload::LinpackParams params;
    params.n = args.quick ? 600 : 1200;
    params.trials = args.quick ? 3 : 10;

    RunConfig cfg;
    cfg.period = msToTicks(10);
    cfg.expectedLifetime =
        args.quick ? msToTicks(40) : msToTicks(330);
    cfg.expectedInstructions = static_cast<std::uint64_t>(
        workload::linpackFlops(params) / 10.0);
    cfg.events = {hw::HwEvent::arithMul, hw::HwEvent::loadRetired,
                  hw::HwEvent::storeRetired,
                  hw::HwEvent::instRetired};
    cfg.workloadFactory = [&params](Addr base, Random rng) {
        return workload::makeLinpack(params, base, rng);
    };

    banner(csprintf("Table I: LINPACK (N=%u, %u trials) GFLOPS "
                    "across profiling tools, %d runs each",
                    params.n, params.trials, runs));

    // The paper's Table I covers none / K-LEB / perf stat / record.
    const std::vector<ToolKind> tools = {
        ToolKind::none, ToolKind::kleb, ToolKind::perfStat,
        ToolKind::perfRecord};

    // Fan the full (tool, trial) grid out across worker threads.
    const auto n_runs = static_cast<std::size_t>(runs);
    std::vector<RunResult> results = runTrials(
        args.jobs, tools.size() * n_runs, [&](std::size_t k) {
            RunConfig trial_cfg = cfg;
            trial_cfg.tool = tools[k / n_runs];
            trial_cfg.seed = trialSeed(
                1, static_cast<std::uint64_t>(trial_cfg.tool),
                k % n_runs);
            return runOnce(trial_cfg);
        });

    double raw_gflops = 0;
    Table table({"Profiling Tool", "GFLOPS", "Perf loss (%)",
                 "Paper GFLOPS", "Paper loss (%)"});
    for (std::size_t t = 0; t < tools.size(); ++t) {
        double mean_gflops = 0;
        for (std::size_t i = 0; i < n_runs; ++i) {
            const RunResult &r = results[t * n_runs + i];
            mean_gflops +=
                workload::linpackGflops(params, r.lifetime);
        }
        mean_gflops /= runs;
        if (tools[t] == ToolKind::none)
            raw_gflops = mean_gflops;
        double loss =
            (raw_gflops - mean_gflops) / raw_gflops * 100.0;
        table.addRow({toolName(tools[t]), toFixed(mean_gflops, 2),
                      tools[t] == ToolKind::none
                          ? "0"
                          : toFixed(loss, 2),
                      toFixed(paperGflops[t], 2),
                      toFixed(paperLoss[t], 2)});
    }
    table.print();
    std::printf("\nShape check: K-LEB's loss is small and close to "
                "perf record's; perf stat loses several percent.\n");
    if (args.csv) {
        std::printf("\n");
        table.printCsv();
    }
    return 0;
}
