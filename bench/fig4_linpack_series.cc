/**
 * @file
 * Fig. 4 reproduction: LINPACK's phase behaviour in hardware
 * performance counter samples collected by K-LEB (paper section
 * IV-A).
 *
 * The paper's figure shows, over time: near-zero user counts during
 * kernel-mode initialization, a LOAD/STORE surge while the matrix
 * is generated, then repeating load -> multiply -> store waves for
 * each solve block.  This bench prints the per-interval series and
 * verifies those landmarks.
 */

#include <cstdio>

#include "bench_util.hh"
#include "kernel/system.hh"
#include "kleb/session.hh"
#include "workload/linpack.hh"

using namespace klebsim;
using namespace klebsim::bench;
using namespace klebsim::ticks_literals;

int
main(int argc, char **argv)
{
    // This figure is one continuous time series from a single
    // simulated machine ("trials" here are LINPACK-internal solve
    // repetitions, not independent runs), so --jobs has nothing to
    // fan out; BenchArgs still validates it.
    BenchArgs args = BenchArgs::parse(argc, argv);
    int trials = args.runsOr(args.quick ? 2 : 10);

    workload::LinpackParams params;
    params.n = args.quick ? 600 : 1200;
    params.trials = static_cast<std::uint32_t>(trials);
    params.blocksPerTrial = 8;

    banner(csprintf("Fig. 4: LINPACK (N=%u, %u trials) counter "
                    "time series via K-LEB",
                    params.n, params.trials));

    kernel::System sys;
    auto linpack = workload::makeLinpack(params, 0x100000000ULL,
                                         sys.forkRng(42));
    kernel::Process *target =
        sys.kernel().createWorkload("linpack", linpack.get(), 0);

    kleb::Session::Options opts;
    opts.events = {hw::HwEvent::arithMul, hw::HwEvent::loadRetired,
                   hw::HwEvent::storeRetired,
                   hw::HwEvent::instRetired};
    // The paper used 10 ms for the full-size problem; scale the
    // period with the problem so the series keeps its resolution.
    opts.period = args.quick ? 100_us : 200_us;
    kleb::Session session(sys, opts);
    session.monitor(target);
    sys.run();

    stats::TimeSeries deltas = session.deltaSeries();
    auto muls = deltas.channel("ARITH_MUL");
    auto loads = deltas.channel("MEM_INST_RETIRED_LOADS");
    auto stores = deltas.channel("MEM_INST_RETIRED_STORES");

    std::printf("samples: %zu, interval: %.1f us\n\n",
                deltas.size(), deltas.meanInterval() / 1.0e6);

    // Compact rendering: bucket the series into 60 columns and
    // print per-event sparklines plus the raw head of the series.
    auto sparkline = [&](const std::vector<double> &v,
                         const char *name) {
        const int cols = 60;
        std::vector<double> bucket(cols, 0.0);
        double peak = 1.0;
        for (std::size_t i = 0; i < v.size(); ++i) {
            int b = static_cast<int>(i * cols / v.size());
            bucket[b] += v[i];
            peak = std::max(peak, bucket[b]);
        }
        static const char *glyphs = " .:-=+*#%@";
        std::string line;
        for (int b = 0; b < cols; ++b) {
            int g = static_cast<int>(bucket[b] / peak * 9.0);
            line += glyphs[g];
        }
        std::printf("%-10s |%s|\n", name, line.c_str());
    };
    sparkline(muls, "ARITH_MUL");
    sparkline(loads, "LOAD");
    sparkline(stores, "STORE");

    // Landmarks the paper calls out: (1) near-zero user counts in
    // the first samples (kernel-mode init); (2) a LOAD/STORE surge
    // with few multiplications while the matrix is generated;
    // (3) MUL-dominated computation afterwards.
    auto inst = deltas.channel("INST_RETIRED");
    double peak_mul = *std::max_element(muls.begin(), muls.end());
    double median_inst = [&] {
        std::vector<double> v = inst;
        std::sort(v.begin(), v.end());
        return v[v.size() / 2];
    }();

    // Init window: leading samples with almost no user activity.
    std::size_t init_end = 0;
    while (init_end < inst.size() &&
           inst[init_end] < 0.05 * median_inst)
        ++init_end;

    // Setup window: from there until MUL activity ramps up.
    std::size_t compute_start = init_end;
    while (compute_start < muls.size() &&
           muls[compute_start] < 0.10 * peak_mul)
        ++compute_start;

    auto rate = [](const std::vector<double> &v, std::size_t lo,
                   std::size_t hi) {
        double s = 0;
        std::size_t n_samples = 0;
        for (std::size_t i = lo; i < hi && i < v.size(); ++i) {
            s += v[i];
            ++n_samples;
        }
        return n_samples ? s / static_cast<double>(n_samples)
                         : 0.0;
    };
    double setup_store = rate(stores, init_end, compute_start);
    double compute_store =
        rate(stores, compute_start, stores.size());
    double setup_mul = rate(muls, init_end, compute_start);
    double compute_mul = rate(muls, compute_start, muls.size());

    std::printf("\nLandmarks (paper section IV-A):\n");
    std::printf("  kernel-mode init:   first %zu sample(s) show "
                "(almost) no user counts\n",
                init_end);
    std::printf("  setup STORE rate:   %.2fx the compute phases' "
                "(surge while generating the matrix)\n",
                setup_store / std::max(compute_store, 1.0));
    std::printf("  setup MUL rate:     %.2fx the compute phases' "
                "(only a small number of ARITH MUL)\n",
                setup_mul / std::max(compute_mul, 1.0));

    if (args.csv) {
        std::printf("\nsample,arith_mul,load,store\n");
        for (std::size_t i = 0; i < deltas.size(); ++i)
            std::printf("%zu,%.0f,%.0f,%.0f\n", i, muls[i],
                        loads[i], stores[i]);
    }
    return 0;
}
