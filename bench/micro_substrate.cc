/**
 * @file
 * Google-benchmark microbenchmarks of the simulation substrate
 * itself: how fast the event queue, cache model, PMU, and chunk
 * engine run on the host.  These bound the wall-clock cost of the
 * experiment benches (a full Table II sweep executes ~10^8 cache
 * accesses).
 */

#include <benchmark/benchmark.h>

#include "bench_support/trial_pool.hh"
#include "fault/fault_plan.hh"
#include "fleet/collector.hh"
#include "fleet/fleet.hh"
#include "hw/cpu_core.hh"
#include "kernel/system.hh"
#include "sim/event_queue.hh"
#include "workload/address_streams.hh"
#include "workload/microbench.hh"

using namespace klebsim;

namespace
{

void
BM_EventQueueSchedule(benchmark::State &state)
{
    sim::EventQueue eq;
    std::uint64_t n = 0;
    for (auto _ : state) {
        eq.scheduleLambda(eq.curTick() + 100,
                          [&n] { ++n; });
        eq.runOne();
    }
    benchmark::DoNotOptimize(n);
}
BENCHMARK(BM_EventQueueSchedule);

void
BM_EventQueueScheduleWithListener(benchmark::State &state)
{
    // Same loop as BM_EventQueueSchedule with a no-op listener
    // attached: the price of having tracing on.
    sim::EventQueue eq;
    sim::EventQueueListener listener;
    eq.addListener(&listener);
    std::uint64_t n = 0;
    for (auto _ : state) {
        eq.scheduleLambda(eq.curTick() + 100,
                          [&n] { ++n; });
        eq.runOne();
    }
    eq.removeListener(&listener);
    benchmark::DoNotOptimize(n);
}
BENCHMARK(BM_EventQueueScheduleWithListener);

void
BM_EventQueueScheduleAfterListenerDetach(benchmark::State &state)
{
    // Attach and detach a listener before timing: throughput must
    // match the never-listened BM_EventQueueSchedule baseline (the
    // empty-check guard; bench_report --compare enforces the pair).
    sim::EventQueue eq;
    sim::EventQueueListener listener;
    eq.addListener(&listener);
    eq.removeListener(&listener);
    std::uint64_t n = 0;
    for (auto _ : state) {
        eq.scheduleLambda(eq.curTick() + 100,
                          [&n] { ++n; });
        eq.runOne();
    }
    benchmark::DoNotOptimize(n);
}
BENCHMARK(BM_EventQueueScheduleAfterListenerDetach);

void
BM_EventQueueScheduleDeschedule(benchmark::State &state)
{
    // Schedule/deschedule-heavy pattern: a standing population of
    // timers where most are cancelled before firing (the kernel's
    // slice-end and hrtimer behaviour under frequent reprogramming).
    struct NopEvent : sim::Event
    {
        void process() override {}
    };
    sim::EventQueue eq;
    constexpr int population = 32;
    NopEvent events[population];
    for (int i = 0; i < population; ++i)
        eq.schedule(&events[i],
                    eq.curTick() + 100 + static_cast<Tick>(i));
    int next = 0;
    for (auto _ : state) {
        sim::Event *ev = &events[next];
        eq.deschedule(ev);
        eq.schedule(ev, eq.curTick() + 100 +
                            static_cast<Tick>(next));
        next = (next + 1) % population;
    }
    for (int i = 0; i < population; ++i)
        eq.deschedule(&events[i]);
}
BENCHMARK(BM_EventQueueScheduleDeschedule);

void
BM_EventQueueMixedPriority(benchmark::State &state)
{
    // Same-tick events across all priority classes (timer expiry,
    // interrupt delivery, scheduler, stats) — exercises bin
    // insertion at several keys per tick, the hrtimer-tick shape.
    sim::EventQueue eq;
    static constexpr int prios[] = {
        sim::Event::timerPriority, sim::Event::interruptPriority,
        sim::Event::defaultPriority, sim::Event::schedulerPriority,
        sim::Event::statsPriority,
    };
    std::uint64_t n = 0;
    for (auto _ : state) {
        Tick when = eq.curTick() + 100;
        for (int prio : prios)
            eq.scheduleLambda(when, [&n] { ++n; }, prio);
        eq.runUntil(when);
    }
    benchmark::DoNotOptimize(n);
}
BENCHMARK(BM_EventQueueMixedPriority);

void
BM_CacheAccessHit(benchmark::State &state)
{
    hw::Cache cache("bench", {32 * 1024, 8, 64,
                              hw::ReplPolicy::lru},
                    Random(1));
    cache.access(0x1000, false);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.access(0x1000, false));
}
BENCHMARK(BM_CacheAccessHit);

void
BM_CacheAccessStream(benchmark::State &state)
{
    hw::Cache cache("bench", {8 * 1024 * 1024, 16, 64,
                              hw::ReplPolicy::lru},
                    Random(1));
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr, false));
        addr += 64;
    }
}
BENCHMARK(BM_CacheAccessStream);

void
BM_CacheEvictLru(benchmark::State &state)
{
    // Every access misses in a full set and evicts via exact LRU —
    // isolates the victim-selection path (recency-list tail read vs.
    // the historical per-set stamp scan).
    hw::Cache cache("bench", {32 * 1024, 8, 64,
                              hw::ReplPolicy::lru},
                    Random(1));
    const std::uint64_t sets = cache.geometry().sets();
    // 9 tags mapping to set 0 of an 8-way set: round-robin over them
    // never hits.
    Addr addr = 0;
    std::uint64_t tag = 0;
    for (auto _ : state) {
        addr = (tag % 9) * sets * 64;
        ++tag;
        benchmark::DoNotOptimize(cache.access(addr, false));
    }
}
BENCHMARK(BM_CacheEvictLru);

void
BM_PmuAddEvents(benchmark::State &state)
{
    hw::Pmu pmu;
    pmu.programCounter(0, hw::HwEvent::llcMiss);
    pmu.programCounter(1, hw::HwEvent::branchRetired);
    pmu.programFixed(0, true, true);
    pmu.globalEnableAll();
    hw::EventVector ev = hw::zeroEvents();
    at(ev, hw::HwEvent::llcMiss) = 3;
    at(ev, hw::HwEvent::branchRetired) = 100;
    at(ev, hw::HwEvent::instRetired) = 1000;
    for (auto _ : state)
        pmu.addEvents(ev, hw::PrivLevel::user);
    benchmark::DoNotOptimize(pmu.counterValue(0));
}
BENCHMARK(BM_PmuAddEvents);

void
BM_ChunkExecution(benchmark::State &state)
{
    // End-to-end cost of simulating one 100k-instruction chunk
    // through scheduler + chunk engine (dominant bench cost).
    for (auto _ : state) {
        state.PauseTiming();
        kernel::System sys;
        workload::FixedWorkSource src = workload::computeSource(
            static_cast<std::size_t>(state.range(0)), 100000, 2.0);
        kernel::Process *p =
            sys.kernel().createWorkload("w", &src, 0);
        state.ResumeTiming();
        sys.kernel().startProcess(p);
        sys.run();
        benchmark::DoNotOptimize(p->exitTick());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChunkExecution)->Arg(16)->Arg(256);

void
BM_ChunkBatched(benchmark::State &state)
{
    // Streamed (memory-sampling) chunk through the chunk engine:
    // Arg 1 = batched SoA fill path (one virtual fillBatch call per
    // chunk), Arg 0 = the retained reference interpreter (one
    // virtual next() per sampled access).  The pair quantifies the
    // dispatch cost the SoA lanes remove; both produce bit-identical
    // counts (ChunkEngineEquivalence pins that).
    hw::MachineConfig cfg = hw::MachineConfig::corei7_920();
    cfg.batchedChunkEngine = state.range(0) != 0;
    workload::MemPatternSpec pat =
        workload::MemPatternSpec::randomUniform(64 * 1024 * 1024);
    std::uint64_t ticks = 0;
    for (auto _ : state) {
        state.PauseTiming();
        sim::EventQueue eq;
        hw::Cache llc("LLC", cfg.llc, Random(2));
        hw::CpuCore core(0, cfg, eq, &llc, Random(3));
        auto stream =
            workload::makeAddressStream(pat, 0x10000000, Random(5));
        hw::WorkChunk chunk;
        chunk.instructions = 100000;
        chunk.loads = 30000;
        chunk.stores = 10000;
        chunk.baseIpc = 2.0;
        chunk.stream = stream.get();
        workload::FixedWorkSource src(
            std::vector<hw::WorkChunk>(64, chunk));
        hw::ExecContext ctx(&src);
        state.ResumeTiming();
        core.attachContext(&ctx);
        Tick total = 0;
        while (true) {
            hw::PrepareResult res = core.prepare(secToTicks(10));
            total += res.available;
            eq.runUntil(total);
            core.syncTo(total);
            if (res.completes)
                break;
        }
        ticks += total;
        core.detachContext();
    }
    benchmark::DoNotOptimize(ticks);
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ChunkBatched)->Arg(0)->Arg(1);

void
BM_FleetParallelPhase1(benchmark::State &state)
{
    // Fleet Phases 1+2 (per-machine simulation + uplink transmit)
    // through the work-stealing pool at Arg jobs.  On a multi-core
    // host the jobs=8 row divides the jobs=1 wall clock by the
    // worker count; outputs are byte-identical either way (the
    // jobs-invariance CI gate).
    fleet::FleetConfig cfg;
    cfg.machines = 32;
    cfg.coresPerMachine = 1;
    cfg.jobs = static_cast<unsigned>(state.range(0));
    fault::FaultPlan plan;
    bench::TrialPool pool(cfg.jobs);
    for (auto _ : state) {
        auto shards =
            fleet::simulateMachines(cfg, plan, pool, nullptr);
        benchmark::DoNotOptimize(shards.size());
    }
    state.SetItemsProcessed(state.iterations() * cfg.machines);
}
BENCHMARK(BM_FleetParallelPhase1)->Arg(1)->Arg(8);

void
BM_RandomStream(benchmark::State &state)
{
    Random rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next64());
}
BENCHMARK(BM_RandomStream);

void
BM_FleetCollectorIngest(benchmark::State &state)
{
    // Per-record cost of the fleet collector's merge path: journal
    // append + liveness bookkeeping + four-level tree fan-out.
    // Bounds the fleet bench's "millions of samples per second"
    // claim from below.
    const std::uint32_t machines = 16;
    constexpr std::uint64_t rounds = 64;
    std::vector<fleet::Delivery> stream;
    stream.reserve(rounds * machines);
    for (std::uint64_t i = 0; i < rounds; ++i) {
        for (std::uint32_t m = 0; m < machines; ++m) {
            fleet::Delivery d;
            d.arrival = usToTicks(100) * (i + 1);
            d.rec.machine = m;
            d.rec.seq = i;
            d.rec.ts = d.arrival;
            d.rec.counts = {2000 * (i + 1), 1000 * (i + 1),
                            10 * (i + 1)};
            stream.push_back(d);
        }
    }
    for (auto _ : state) {
        fleet::CollectorConfig cfg;
        cfg.machines = machines;
        cfg.coresPerMachine = 1;
        cfg.heartbeatTimeout = secToTicks(1);
        fleet::Collector collector(cfg);
        collector.ingest(stream);
        benchmark::DoNotOptimize(collector.stats().accepted);
    }
    state.SetItemsProcessed(state.iterations() * stream.size());
}
BENCHMARK(BM_FleetCollectorIngest);

void
BM_TrialPoolMap(benchmark::State &state)
{
    // Dispatch + commit cost of the bench trial pool for 64 trivial
    // trials; bounds the fan-out overhead the experiment benches
    // pay on top of the simulation itself.
    bench::TrialPool pool(
        static_cast<unsigned>(state.range(0)));
    for (auto _ : state) {
        auto seeds =
            pool.map(64, [](std::size_t i) {
                return bench::trialSeed(1, 2, i);
            });
        benchmark::DoNotOptimize(seeds);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_TrialPoolMap)->Arg(1)->Arg(4);

} // namespace

BENCHMARK_MAIN();
