/**
 * @file
 * Google-benchmark microbenchmarks of the simulation substrate
 * itself: how fast the event queue, cache model, PMU, and chunk
 * engine run on the host.  These bound the wall-clock cost of the
 * experiment benches (a full Table II sweep executes ~10^8 cache
 * accesses).
 */

#include <benchmark/benchmark.h>

#include "bench_support/trial_pool.hh"
#include "hw/cpu_core.hh"
#include "kernel/system.hh"
#include "sim/event_queue.hh"
#include "workload/microbench.hh"

using namespace klebsim;

namespace
{

void
BM_EventQueueSchedule(benchmark::State &state)
{
    sim::EventQueue eq;
    std::uint64_t n = 0;
    for (auto _ : state) {
        eq.scheduleLambda(eq.curTick() + 100,
                          [&n] { ++n; });
        eq.runOne();
    }
    benchmark::DoNotOptimize(n);
}
BENCHMARK(BM_EventQueueSchedule);

void
BM_CacheAccessHit(benchmark::State &state)
{
    hw::Cache cache("bench", {32 * 1024, 8, 64,
                              hw::ReplPolicy::lru},
                    Random(1));
    cache.access(0x1000, false);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.access(0x1000, false));
}
BENCHMARK(BM_CacheAccessHit);

void
BM_CacheAccessStream(benchmark::State &state)
{
    hw::Cache cache("bench", {8 * 1024 * 1024, 16, 64,
                              hw::ReplPolicy::lru},
                    Random(1));
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr, false));
        addr += 64;
    }
}
BENCHMARK(BM_CacheAccessStream);

void
BM_PmuAddEvents(benchmark::State &state)
{
    hw::Pmu pmu;
    pmu.programCounter(0, hw::HwEvent::llcMiss);
    pmu.programCounter(1, hw::HwEvent::branchRetired);
    pmu.programFixed(0, true, true);
    pmu.globalEnableAll();
    hw::EventVector ev = hw::zeroEvents();
    at(ev, hw::HwEvent::llcMiss) = 3;
    at(ev, hw::HwEvent::branchRetired) = 100;
    at(ev, hw::HwEvent::instRetired) = 1000;
    for (auto _ : state)
        pmu.addEvents(ev, hw::PrivLevel::user);
    benchmark::DoNotOptimize(pmu.counterValue(0));
}
BENCHMARK(BM_PmuAddEvents);

void
BM_ChunkExecution(benchmark::State &state)
{
    // End-to-end cost of simulating one 100k-instruction chunk
    // through scheduler + chunk engine (dominant bench cost).
    for (auto _ : state) {
        state.PauseTiming();
        kernel::System sys;
        workload::FixedWorkSource src = workload::computeSource(
            static_cast<std::size_t>(state.range(0)), 100000, 2.0);
        kernel::Process *p =
            sys.kernel().createWorkload("w", &src, 0);
        state.ResumeTiming();
        sys.kernel().startProcess(p);
        sys.run();
        benchmark::DoNotOptimize(p->exitTick());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChunkExecution)->Arg(16)->Arg(256);

void
BM_RandomStream(benchmark::State &state)
{
    Random rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next64());
}
BENCHMARK(BM_RandomStream);

void
BM_TrialPoolMap(benchmark::State &state)
{
    // Dispatch + commit cost of the bench trial pool for 64 trivial
    // trials; bounds the fan-out overhead the experiment benches
    // pay on top of the simulation itself.
    bench::TrialPool pool(
        static_cast<unsigned>(state.range(0)));
    for (auto _ : state) {
        auto seeds =
            pool.map(64, [](std::size_t i) {
                return bench::trialSeed(1, 2, i);
            });
        benchmark::DoNotOptimize(seeds);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_TrialPoolMap)->Arg(1)->Arg(4);

} // namespace

BENCHMARK_MAIN();
