/**
 * @file
 * Ablation: accuracy-vs-overhead Pareto frontier of adaptive
 * sampling.  Runs the table II matmul and the table III MKL dgemm
 * under (a) fixed timer periods and (b) the RateGovernor with a
 * range of overhead budgets, and reports one Pareto row per
 * configuration: measured overhead against the unmonitored
 * baseline, counter accuracy against ground truth, sample volume,
 * and where the governor's period settled.
 *
 * The CSV header is a stable machine-readable contract consumed by
 * `bench_report --check-budget`.
 */

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "tools/harness.hh"
#include "workload/matmul.hh"

using namespace klebsim;
using namespace klebsim::bench;
using namespace klebsim::tools;

namespace
{

/** One Pareto-row configuration. */
struct Row
{
    const char *workload;  //!< "matmul" or "mkl"
    const char *mode;      //!< "baseline", "fixed", "adaptive"
    const char *config;    //!< period label or budget label
    Tick period;           //!< fixed period / adaptive start
    double budget;         //!< overhead budget fraction (adaptive)
};

RunConfig
baseConfig(const char *workload, bool quick)
{
    RunConfig cfg;
    std::uint32_t n = quick ? 640 : 1000;
    double flops = workload::matmulFlops({n});
    if (std::string(workload) == "mkl") {
        cfg.expectedInstructions =
            static_cast<std::uint64_t>(flops / 5.33 * 2.0);
        cfg.expectedLifetime =
            quick ? msToTicks(35) : msToTicks(120);
        cfg.workloadFactory = [n](Addr base, Random rng) {
            return workload::makeMatMulMkl({n}, base, rng);
        };
    } else {
        cfg.expectedInstructions =
            static_cast<std::uint64_t>(flops / 2.0 * 8.0);
        cfg.expectedLifetime =
            quick ? msToTicks(650) : secToTicks(2.45);
        cfg.workloadFactory = [n](Addr base, Random rng) {
            return workload::makeMatMulLoop({n}, base, rng);
        };
    }
    return cfg;
}

const std::vector<Row> &
rows()
{
    static const std::vector<Row> r = {
        {"matmul", "baseline", "-", 0, 0.0},
        {"matmul", "fixed", "100us", usToTicks(100), 0.0},
        {"matmul", "fixed", "1ms", msToTicks(1), 0.0},
        {"matmul", "fixed", "10ms", msToTicks(10), 0.0},
        {"matmul", "adaptive", "b0.5", usToTicks(100), 0.005},
        {"matmul", "adaptive", "b1.0", usToTicks(100), 0.01},
        {"matmul", "adaptive", "b2.0", usToTicks(100), 0.02},
        {"mkl", "baseline", "-", 0, 0.0},
        {"mkl", "fixed", "100us", usToTicks(100), 0.0},
        {"mkl", "fixed", "1ms", msToTicks(1), 0.0},
        {"mkl", "fixed", "10ms", msToTicks(10), 0.0},
        {"mkl", "adaptive", "b0.5", usToTicks(100), 0.005},
        {"mkl", "adaptive", "b1.0", usToTicks(100), 0.01},
        {"mkl", "adaptive", "b2.0", usToTicks(100), 0.02},
    };
    return r;
}

RunConfig
rowConfig(const Row &row, bool quick)
{
    RunConfig cfg = baseConfig(row.workload, quick);
    if (std::string(row.mode) == "baseline") {
        cfg.tool = ToolKind::none;
        return cfg;
    }
    cfg.tool = ToolKind::kleb;
    cfg.period = row.period;
    if (std::string(row.mode) == "adaptive") {
        cfg.adaptive = true;
        cfg.overheadBudget = row.budget;
    }
    return cfg;
}

/** Percent count error of the probe run's first event vs truth. */
double
accuracyErrPct(const RunResult &probe)
{
    if (probe.totals.empty())
        return 0.0;
    double truth = static_cast<double>(
        at(probe.trueTotals, hw::HwEvent::instRetired));
    if (truth <= 0.0)
        return 0.0;
    double got = static_cast<double>(probe.totals[0]);
    return std::fabs(got - truth) / truth * 100.0;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    int runs = args.runsOr(args.quick ? 3 : 10);
    const std::vector<Row> &grid = rows();

    banner("Ablation: adaptive-sampling overhead budget Pareto (" +
           std::to_string(runs) + " runs/config)");

    // One (row, trial) grid on independent simulated machines; the
    // extra fixed-seed trial per row is the probe the accuracy /
    // samples / period columns read.
    const std::size_t per_row =
        static_cast<std::size_t>(runs) + 1;
    std::vector<RunResult> results = runTrials(
        args.jobs, grid.size() * per_row, [&](std::size_t k) {
            const Row &row = grid[k / per_row];
            RunConfig cfg = rowConfig(row, args.quick);
            std::size_t trial = k % per_row;
            cfg.seed =
                trial == static_cast<std::size_t>(runs)
                    ? 1
                    : trialSeed(cfg.seed, k / per_row, trial);
            return runOnce(cfg);
        });

    // Per-workload baseline means, for the overhead column.
    std::vector<double> base_mean(grid.size(), 0.0);
    auto mean_secs = [&](std::size_t row_idx) {
        double sum = 0;
        for (int i = 0; i < runs; ++i)
            sum += results[row_idx * per_row +
                           static_cast<std::size_t>(i)]
                       .seconds;
        return sum / static_cast<double>(runs);
    };
    double current_base = 0.0;
    for (std::size_t r = 0; r < grid.size(); ++r) {
        if (std::string(grid[r].mode) == "baseline")
            current_base = mean_secs(r);
        base_mean[r] = current_base;
    }

    Table table({"workload", "mode", "config", "budget_pct",
                 "overhead_pct", "accuracy_err_pct", "samples",
                 "period_changes", "final_period_us", "mean_s"});
    for (std::size_t r = 0; r < grid.size(); ++r) {
        const Row &row = grid[r];
        double mean = mean_secs(r);
        double overhead =
            (mean - base_mean[r]) / base_mean[r] * 100.0;
        const RunResult &probe =
            results[r * per_row + static_cast<std::size_t>(runs)];
        bool is_base = std::string(row.mode) == "baseline";
        double final_us =
            static_cast<double>(probe.klebStatus.currentPeriod) /
            1e6;
        table.addRow(
            {row.workload, row.mode, row.config,
             is_base ? "-" : toFixed(row.budget * 100.0, 2),
             is_base ? "-" : toFixed(overhead, 3),
             is_base ? "-" : toFixed(accuracyErrPct(probe), 4),
             std::to_string(probe.samples),
             std::to_string(probe.klebStatus.periodChanges),
             toFixed(final_us, 1), toFixed(mean, 4)});
    }

    table.print();
    std::printf("\nAdaptive rows start at the 100 us floor; the "
                "governor backs off until the\nEWMA overhead "
                "estimate sits inside its hysteresis band.\n");
    if (args.csv) {
        std::printf("\n");
        table.printCsv();
    }
    return 0;
}
