/**
 * @file
 * Ablation: perf-style counter multiplexing accuracy (paper
 * section VI).
 *
 * perf works around the 4-programmable-counter limit by rotating
 * event groups and scaling; the paper argues "this estimation may
 * not be suitable for measurement systems that require precision".
 * This bench measures the estimation error on a stationary matmul
 * and on the phase-structured LINPACK, sweeping the rotation
 * interval — K-LEB's alternative (one precise group per run) is
 * the zero-error reference.
 */

#include <cmath>
#include <cstdio>

#include "bench_util.hh"
#include "kernel/system.hh"
#include "stats/summary.hh"
#include "tools/multiplex.hh"
#include "workload/linpack.hh"
#include "workload/matmul.hh"

using namespace klebsim;
using namespace klebsim::bench;
using namespace klebsim::tools;

namespace
{

std::vector<hw::HwEvent>
eightEvents()
{
    return {hw::HwEvent::branchRetired,
            hw::HwEvent::branchMispredicted,
            hw::HwEvent::loadRetired,
            hw::HwEvent::storeRetired,
            hw::HwEvent::arithMul,
            hw::HwEvent::arithDiv,
            hw::HwEvent::fpOpsRetired,
            hw::HwEvent::llcMiss};
}

struct ErrorStats
{
    double mean = 0;
    double worst = 0;
    std::uint64_t rotations = 0;
};

template <typename MakeSource>
ErrorStats
measure(MakeSource make_source, Tick rotate_interval)
{
    kernel::System sys(hw::MachineConfig::corei7_920(), 21);
    auto wl = make_source(sys);
    kernel::Process *target =
        sys.kernel().createWorkload("wl", wl.get(), 0);

    MultiplexedPmuSession::Options opts;
    opts.events = eightEvents();
    opts.rotateInterval = rotate_interval;
    MultiplexedPmuSession mux(sys, target->pid(), opts);
    mux.arm();
    sys.kernel().startProcess(target);
    sys.run();
    mux.disarm();

    auto est = mux.estimates();
    const hw::EventVector &truth =
        target->execContext()->totalEvents();
    ErrorStats stats;
    int counted = 0;
    for (std::size_t i = 0; i < opts.events.size(); ++i) {
        auto truth_v = static_cast<double>(
            at(truth, opts.events[i]));
        if (truth_v < 1000.0)
            continue; // skip near-zero events
        double err = stats::pctDiff(est[i], truth_v);
        stats.mean += err;
        stats.worst = std::max(stats.worst, err);
        ++counted;
    }
    if (counted)
        stats.mean /= counted;
    stats.rotations = mux.rotations();
    return stats;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    std::uint32_t mm_n = args.quick ? 400 : 800;
    std::uint32_t lp_n = args.quick ? 400 : 800;

    banner("Ablation: multiplexing estimation error "
           "(8 events on 4 counters)");

    auto matmul = [mm_n](kernel::System &sys) {
        return workload::makeMatMulLoop({mm_n}, 0x100000000ULL,
                                        sys.forkRng(4));
    };
    auto linpack = [lp_n](kernel::System &sys) {
        workload::LinpackParams params;
        params.n = lp_n;
        params.trials = 4;
        return workload::makeLinpack(params, 0x100000000ULL,
                                     sys.forkRng(4));
    };

    // Each (workload, rotation) cell simulates a fresh machine —
    // fan the grid out across worker threads.
    const std::vector<Tick> rotations = {
        msToTicks(1), msToTicks(4), msToTicks(10), msToTicks(40)};
    std::vector<ErrorStats> cells = runTrials(
        args.jobs, rotations.size() * 2, [&](std::size_t k) {
            Tick rotate = rotations[k / 2];
            return k % 2 == 0 ? measure(matmul, rotate)
                              : measure(linpack, rotate);
        });

    Table table({"Rotation", "matmul mean err (%)",
                 "matmul worst (%)", "linpack mean err (%)",
                 "linpack worst (%)"});
    for (std::size_t k = 0; k < rotations.size(); ++k) {
        const ErrorStats &mm = cells[k * 2];
        const ErrorStats &lp = cells[k * 2 + 1];
        table.addRow({csprintf("%5.0f ms",
                               ticksToMs(rotations[k])),
                      toFixed(mm.mean, 2), toFixed(mm.worst, 2),
                      toFixed(lp.mean, 2), toFixed(lp.worst, 2)});
    }
    table.print();
    std::printf("\nShape check: error is small on the stationary "
                "matmul but large on phase-structured LINPACK and "
                "grows with the rotation interval — the precision "
                "argument for K-LEB's un-multiplexed counting "
                "(paper section VI).\n");
    return 0;
}
