/**
 * @file
 * Table III reproduction: overhead on the Intel MKL dgemm matmul —
 * a <100 ms program where fixed tool setup costs dominate (paper
 * section V).
 *
 * Paper values: K-LEB 1.13 %, perf stat 7.64 %, perf record 2.00 %,
 * PAPI 21.40 %, LiMiT n/a (unsupported OS/kernel).
 */

#include <cstdio>

#include "bench_util.hh"
#include "tools/harness.hh"
#include "workload/matmul.hh"

using namespace klebsim;
using namespace klebsim::bench;
using namespace klebsim::tools;

namespace
{

RunConfig
makeConfig(bool quick)
{
    RunConfig cfg;
    cfg.period = msToTicks(10);
    std::uint32_t n = quick ? 640 : 1000;
    double flops = workload::matmulFlops({n});
    cfg.expectedInstructions =
        static_cast<std::uint64_t>(flops / 5.33 * 2.0);
    cfg.expectedLifetime = quick ? msToTicks(35) : msToTicks(120);
    cfg.workloadFactory = [n](Addr base, Random rng) {
        return workload::makeMatMulMkl({n}, base, rng);
    };
    // The MKL testbed runs a kernel without the LiMiT patch
    // (paper: "unsupported OS and kernel version for LiMiT").
    cfg.limitPatchAvailable = false;
    return cfg;
}

constexpr double paperOverhead[] = {0.0, 1.13, 7.64, 2.00, 21.40,
                                    -1.0};

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    int runs = args.runsOr(args.quick ? 5 : 25);
    RunConfig cfg = makeConfig(args.quick);

    banner("Table III: Intel MKL dgemm overhead @ 10 ms (" +
           std::to_string(runs) + " runs/tool)");

    // One (tool, trial) grid, fanned out across worker threads;
    // each cell simulates a fresh machine.
    const std::vector<ToolKind> &tools = allTools();
    const auto n_runs = static_cast<std::size_t>(runs);
    std::vector<RunResult> results = runTrials(
        args.jobs, tools.size() * n_runs, [&](std::size_t k) {
            RunConfig trial_cfg = cfg;
            trial_cfg.tool = tools[k / n_runs];
            trial_cfg.seed = trialSeed(
                cfg.seed,
                static_cast<std::uint64_t>(trial_cfg.tool),
                k % n_runs);
            return runOnce(trial_cfg);
        });

    std::vector<double> baseline;
    Table table({"Profiling Tool", "Mean time (ms)",
                 "Overhead (%)", "Paper (%)"});
    std::size_t tool_idx = 0;

    for (ToolKind tool : tools) {
        std::vector<double> secs;
        for (std::size_t i = 0; i < n_runs; ++i) {
            const RunResult &r = results[tool_idx * n_runs + i];
            if (r.supported)
                secs.push_back(r.seconds);
        }
        if (secs.size() != n_runs)
            secs.clear();
        if (secs.empty()) {
            table.addRow({toolName(tool), "n/a", "n/a", "n/a"});
            ++tool_idx;
            continue;
        }
        if (tool == ToolKind::none)
            baseline = secs;
        double mean = 0;
        for (double s : secs)
            mean += s;
        mean /= static_cast<double>(secs.size());
        table.addRow(
            {toolName(tool), toFixed(mean * 1000.0, 2),
             tool == ToolKind::none
                 ? "-"
                 : toFixed(overheadPct(secs, baseline), 2),
             paperOverhead[tool_idx] < 0
                 ? "n/a"
                 : toFixed(paperOverhead[tool_idx], 2)});
        ++tool_idx;
    }

    table.print();
    std::printf("\nNote: LiMiT cannot attach (kernel lacks its "
                "patch), matching the paper's missing entry.\n");
    if (args.csv) {
        std::printf("\n");
        table.printCsv();
    }
    return 0;
}
