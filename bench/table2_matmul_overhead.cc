/**
 * @file
 * Table II reproduction: run-time overhead of each monitoring tool
 * on the triple-nested-loop matrix multiplication (paper section V).
 *
 * Paper values (i7-920, 10 ms sample rate, 100 runs):
 *   K-LEB 0.68 %, perf stat 6.01 %, perf record ~1.65 %,
 *   PAPI 6.43 %, LiMiT 4.08 %; K-LEB is >= 58.8 % below the next
 *   best tool.
 */

#include <cstdio>

#include "bench_util.hh"
#include "stats/summary.hh"
#include "tools/harness.hh"
#include "workload/matmul.hh"

using namespace klebsim;
using namespace klebsim::bench;
using namespace klebsim::tools;

namespace
{

RunConfig
makeConfig(bool quick)
{
    RunConfig cfg;
    cfg.period = msToTicks(10);
    std::uint32_t n = quick ? 640 : 1000;
    double flops = workload::matmulFlops({n});
    cfg.expectedInstructions =
        static_cast<std::uint64_t>(flops / 2.0 * 8.0);
    cfg.expectedLifetime =
        quick ? msToTicks(650) : secToTicks(2.45);
    cfg.workloadFactory = [n](Addr base, Random rng) {
        return workload::makeMatMulLoop({n}, base, rng);
    };
    return cfg;
}

/** Paper reference overheads, in table order after baseline. */
constexpr double paperOverhead[] = {0.0, 0.68, 6.01, 1.65, 6.43,
                                    4.08};

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    int runs = args.runsOr(args.quick ? 3 : 15);
    RunConfig cfg = makeConfig(args.quick);

    banner("Table II: triple-nested-loop matmul overhead @ 10 ms "
           "(" + std::to_string(runs) + " runs/tool)");

    // Every (tool, trial) cell is an independent simulated machine:
    // fan the whole table out at once.  The last trial per tool is
    // the fixed-seed probe run the Samples column reports.
    const std::vector<ToolKind> &tools = allTools();
    const std::size_t per_tool =
        static_cast<std::size_t>(runs) + 1;
    std::vector<RunResult> results = runTrials(
        args.jobs, tools.size() * per_tool, [&](std::size_t k) {
            RunConfig trial_cfg = cfg;
            trial_cfg.tool = tools[k / per_tool];
            std::size_t trial = k % per_tool;
            trial_cfg.seed =
                trial == static_cast<std::size_t>(runs)
                    ? 1
                    : trialSeed(cfg.seed,
                                static_cast<std::uint64_t>(
                                    trial_cfg.tool),
                                trial);
            return runOnce(trial_cfg);
        });

    std::vector<double> baseline;
    Table table({"Profiling Tool", "Mean time (s)", "Overhead (%)",
                 "Paper (%)", "Samples"});
    std::size_t tool_idx = 0;
    double kleb_overhead = 0, best_other = 1e9;

    for (ToolKind tool : tools) {
        std::vector<double> secs;
        for (int i = 0; i < runs; ++i) {
            const RunResult &r =
                results[tool_idx * per_tool +
                        static_cast<std::size_t>(i)];
            if (r.supported)
                secs.push_back(r.seconds);
        }
        if (secs.size() != static_cast<std::size_t>(runs)) {
            table.addRow({toolName(tool), "n/a", "n/a", "-", "-"});
            ++tool_idx;
            continue;
        }
        if (tool == ToolKind::none)
            baseline = secs;
        double mean = 0;
        for (double s : secs)
            mean += s;
        mean /= static_cast<double>(secs.size());
        double overhead =
            tool == ToolKind::none
                ? 0.0
                : overheadPct(secs, baseline);
        if (tool == ToolKind::kleb)
            kleb_overhead = overhead;
        else if (tool != ToolKind::none)
            best_other = std::min(best_other, overhead);

        const RunResult &probe =
            results[tool_idx * per_tool +
                    static_cast<std::size_t>(runs)];
        table.addRow({toolName(tool), toFixed(mean, 4),
                      tool == ToolKind::none ? "-"
                                             : toFixed(overhead, 2),
                      toFixed(paperOverhead[tool_idx], 2),
                      std::to_string(probe.samples)});
        ++tool_idx;
    }

    table.print();
    double reduction =
        (1.0 - kleb_overhead / best_other) * 100.0;
    std::printf("\nK-LEB vs next-best tool: %.1f%% lower overhead "
                "(paper: 58.8%%)\n",
                reduction);
    if (args.csv) {
        std::printf("\n");
        table.printCsv();
    }
    return 0;
}
