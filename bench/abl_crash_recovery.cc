/**
 * @file
 * Ablation: crash-survivable monitoring (DESIGN.md section 11).
 *
 * Runs the same workload under a *supervised* K-LEB session while
 * the fault injector kills or wedges the controller at different
 * points of the run — and, post-run, tears or bit-flips the durable
 * log — then reports what the recovery scan salvages: samples
 * recovered vs. collected, frame accounting (kept / dropped /
 * vanished, which must balance against the writer's count exactly),
 * outage gap length, restart count and latency.  The fault-free row
 * is the control: supervision alone must lose nothing and leave no
 * gap.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "tools/harness.hh"
#include "workload/microbench.hh"

using namespace klebsim;
using namespace klebsim::bench;
using namespace klebsim::tools;
using klebsim::workload::FixedWorkSource;
using klebsim::workload::computeChunk;

namespace
{

struct Scenario
{
    const char *label;
    const char *spec;
};

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    const std::size_t chunks = args.quick ? 60 : 200;

    banner("Ablation: controller crashes vs supervised recovery");

    const std::vector<Scenario> scenarios = {
        {"no faults", ""},
        {"crash @ 8ms", "controller.crash=8ms"},
        {"crash @ 16ms", "controller.crash=16ms"},
        {"crash @ 24ms", "controller.crash=24ms"},
        {"crash @ 32ms", "controller.crash=32ms"},
        {"hang @ 12ms", "controller.hang=12ms"},
        {"crash + torn tail",
         "controller.crash=16ms;log.torn_tail=200"},
        {"crash + bitflips", "controller.crash=16ms;log.bitflip=4"},
    };

    std::vector<RunResult> results = runTrials(
        args.jobs, scenarios.size(), [&](std::size_t k) {
            RunConfig cfg;
            cfg.tool = ToolKind::kleb;
            cfg.seed = 9;
            cfg.period = msToTicks(1);
            cfg.supervise = true;
            // Must comfortably exceed the controller's 10 ms drain
            // cadence (each successful drain is a heartbeat), while
            // still catching the hang row within the run.
            cfg.heartbeatTimeout = msToTicks(15);
            cfg.expectedLifetime = msToTicks(40);
            cfg.expectedInstructions =
                static_cast<std::uint64_t>(chunks) * 1000000ULL;
            cfg.faultSpec = scenarios[k].spec;
            cfg.workloadFactory = [chunks](Addr, Random) {
                std::vector<hw::WorkChunk> work(
                    chunks, computeChunk(1000000, 2.0));
                return std::make_unique<FixedWorkSource>(
                    std::move(work));
            };
            return runOnce(cfg);
        });

    Table table({"Scenario", "Lifetime (ms)", "Samples",
                 "Recovered", "Kept", "Dropped", "Vanished",
                 "Gap (ms)", "Restarts", "Outage (ms)", "Balanced",
                 "Injections"});
    for (std::size_t k = 0; k < scenarios.size(); ++k) {
        const RunResult &r = results[k];
        table.addRow(
            {scenarios[k].label, toFixed(ticksToMs(r.lifetime), 2),
             std::to_string(r.samples),
             std::to_string(r.recovery.samplesRecovered),
             std::to_string(r.recovery.framesKept),
             std::to_string(r.recovery.framesDropped),
             std::to_string(r.recovery.framesVanished),
             toFixed(ticksToMs(r.recovery.gapTicks), 2),
             std::to_string(r.supervisor.restarts),
             toFixed(ticksToMs(r.supervisor.totalOutage), 2),
             r.recovery.balanced() ? "yes" : "NO",
             std::to_string(r.faultsInjected)});
    }
    table.print();
    if (args.csv)
        table.printCsv();

    std::printf("\nShape check: every row balances (kept + dropped "
                "+ vanished = emitted); the fault-free row shows "
                "zero restarts and zero gap; crash rows recover "
                "both the pre-crash and post-restart epochs with "
                "one gap covering the outage; torn tails and "
                "bitflips shrink 'Kept', never the balance.\n");
    return 0;
}
