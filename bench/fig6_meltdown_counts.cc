/**
 * @file
 * Fig. 6 reproduction: average LLC references and misses of the
 * secret-printing program with and without the Meltdown attack
 * attached (paper section IV-C), averaged over repeated rounds.
 *
 * Under attack, Flush+Reload hammers the cache: both LLC counts
 * rise sharply, and MPKI jumps from ~7.5 to ~27.5.
 */

#include <cstdio>

#include "bench_util.hh"
#include "kernel/system.hh"
#include "kleb/session.hh"
#include "stats/time_series.hh"
#include "workload/meltdown.hh"

using namespace klebsim;
using namespace klebsim::bench;
using namespace klebsim::ticks_literals;

namespace
{

struct Averages
{
    double llcRef = 0;
    double llcMiss = 0;
    double mpki = 0;
    double ms = 0;
    std::size_t samples = 0;
};

/** One independent round on a fresh machine. */
Averages
measureRound(bool with_attack, std::uint64_t round,
             std::uint32_t retries)
{
    Averages avg;
    {
        kernel::System sys(hw::MachineConfig::corei7_920(),
                           trialSeed(100, with_attack ? 1 : 0,
                                     round));
        std::unique_ptr<workload::PhaseWorkload> printer;
        std::unique_ptr<workload::MeltdownWorkload> attack;
        hw::WorkSource *src = nullptr;
        if (with_attack) {
            workload::MeltdownParams params;
            params.retriesPerByte = retries;
            attack = std::make_unique<workload::MeltdownWorkload>(
                params, 0x300000000ULL, sys.forkRng(9));
            src = attack.get();
        } else {
            printer = workload::makeSecretPrinter(
                0x300000000ULL, sys.forkRng(9));
            src = printer.get();
        }
        kernel::Process *target =
            sys.kernel().createWorkload("victim", src, 0);

        kleb::Session::Options opts;
        opts.events = {hw::HwEvent::instRetired,
                       hw::HwEvent::llcReference,
                       hw::HwEvent::llcMiss};
        opts.period = 100_us;
        opts.controllerCore = 1;
        kleb::Session session(sys, opts);
        session.monitor(target);
        sys.run();

        hw::EventVector totals = session.finalTotals();
        avg.llcRef += static_cast<double>(
            at(totals, hw::HwEvent::llcReference));
        avg.llcMiss += static_cast<double>(
            at(totals, hw::HwEvent::llcMiss));
        avg.mpki += stats::mpki(
            static_cast<double>(at(totals, hw::HwEvent::llcMiss)),
            static_cast<double>(
                at(totals, hw::HwEvent::instRetired)));
        avg.ms += ticksToMs(target->lifetime());
        avg.samples += session.samples().size();
    }
    return avg;
}

/** Average @p rounds independent rounds, fanned across workers. */
Averages
measure(bool with_attack, int rounds, std::uint32_t retries,
        unsigned jobs)
{
    std::vector<Averages> per_round = runTrials(
        jobs, static_cast<std::size_t>(rounds),
        [&](std::size_t round) {
            return measureRound(with_attack, round, retries);
        });
    Averages avg;
    for (const Averages &r : per_round) {
        avg.llcRef += r.llcRef;
        avg.llcMiss += r.llcMiss;
        avg.mpki += r.mpki;
        avg.ms += r.ms;
        avg.samples += r.samples;
    }
    avg.llcRef /= rounds;
    avg.llcMiss /= rounds;
    avg.mpki /= rounds;
    avg.ms /= rounds;
    avg.samples /= static_cast<std::size_t>(rounds);
    return avg;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    // The paper averaged 100 program rounds.
    int rounds = args.runsOr(args.quick ? 5 : 100);
    std::uint32_t retries = args.quick ? 40 : 65;

    banner(csprintf("Fig. 6: Meltdown vs clean program, averaged "
                    "over %d rounds (K-LEB @ 100 us)",
                    rounds));

    Averages clean = measure(false, rounds, retries, args.jobs);
    Averages attacked = measure(true, rounds, retries, args.jobs);

    Table table({"Program", "LLC refs", "LLC misses", "MPKI",
                 "Runtime (ms)", "Samples"});
    table.addRow({"without Meltdown", toFixed(clean.llcRef, 0),
                  toFixed(clean.llcMiss, 0), toFixed(clean.mpki, 2),
                  toFixed(clean.ms, 2),
                  std::to_string(clean.samples)});
    table.addRow({"with Meltdown", toFixed(attacked.llcRef, 0),
                  toFixed(attacked.llcMiss, 0),
                  toFixed(attacked.mpki, 2), toFixed(attacked.ms, 2),
                  std::to_string(attacked.samples)});
    table.print();

    std::printf("\nPaper: MPKI 7.52 (clean) -> 27.53 (attack); "
                "LLC refs/misses far higher under attack.\n");
    std::printf("Measured ratios: refs x%.1f, misses x%.1f, "
                "MPKI %.2f -> %.2f\n",
                attacked.llcRef / clean.llcRef,
                attacked.llcMiss / clean.llcMiss, clean.mpki,
                attacked.mpki);
    if (args.csv) {
        std::printf("\n");
        table.printCsv();
    }
    return 0;
}
