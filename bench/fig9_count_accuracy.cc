/**
 * @file
 * Fig. 9 reproduction: percentage difference in hardware event
 * counts between K-LEB and the other collection tools on
 * deterministic architectural events (paper section V).
 *
 * Paper: <0.0008 % vs perf stat on Branch/Load/Store/Inst retired;
 * perf record (a sampling estimator) within 0.15 % of K-LEB; every
 * cross-tool difference below 0.3 %.
 */

#include <cmath>
#include <cstdio>

#include "bench_util.hh"
#include "stats/summary.hh"
#include "tools/harness.hh"
#include "workload/matmul.hh"

using namespace klebsim;
using namespace klebsim::bench;
using namespace klebsim::tools;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);

    RunConfig cfg;
    cfg.period = msToTicks(10);
    std::uint32_t n = args.quick ? 500 : 1000;
    cfg.expectedInstructions = static_cast<std::uint64_t>(
        workload::matmulFlops({n}) / 2.0 * 8.0);
    cfg.expectedLifetime =
        args.quick ? msToTicks(310) : secToTicks(2.45);
    cfg.workloadFactory = [n](Addr base, Random rng) {
        return workload::makeMatMulLoop({n}, base, rng);
    };
    cfg.events = {hw::HwEvent::branchRetired,
                  hw::HwEvent::loadRetired,
                  hw::HwEvent::storeRetired,
                  hw::HwEvent::instRetired};

    banner("Fig. 9: event-count difference vs K-LEB "
           "(deterministic architectural events, matmul loop)");

    const std::vector<ToolKind> tools = {
        ToolKind::kleb, ToolKind::perfStat, ToolKind::perfRecord,
        ToolKind::papi, ToolKind::limit};
    // All tools measure the same deterministic program (one shared
    // seed), so the five runs are independent machines — fan them
    // out in parallel.
    std::vector<std::vector<std::uint64_t>> totals = runTrials(
        args.jobs, tools.size(), [&](std::size_t t) {
            RunConfig trial_cfg = cfg;
            trial_cfg.tool = tools[t];
            return runOnce(trial_cfg).totals;
        });

    const char *event_names[] = {"BRANCH", "LOAD", "STORE",
                                 "INST_RETIRED"};
    Table table({"Tool vs K-LEB", "BRANCH (%)", "LOAD (%)",
                 "STORE (%)", "INST (%)", "max (%)"});
    double global_max = 0;
    double stat_max = 0;
    double record_max = 0;
    for (std::size_t t = 1; t < tools.size(); ++t) {
        std::vector<std::string> row = {toolName(tools[t])};
        double row_max = 0;
        for (std::size_t e = 0; e < 4; ++e) {
            double diff = stats::pctDiff(
                static_cast<double>(totals[t][e]),
                static_cast<double>(totals[0][e]));
            row.push_back(toFixed(diff, 5));
            row_max = std::max(row_max, diff);
        }
        row.push_back(toFixed(row_max, 5));
        table.addRow(row);
        global_max = std::max(global_max, row_max);
        if (tools[t] == ToolKind::perfStat)
            stat_max = row_max;
        if (tools[t] == ToolKind::perfRecord)
            record_max = row_max;
    }
    table.print();

    std::printf("\n(events: %s %s %s %s)\n", event_names[0],
                event_names[1], event_names[2], event_names[3]);
    std::printf("\nPaper bounds: perf stat < 0.0008%% (%s), "
                "perf record < 0.15%% (%s), all tools < 0.3%% "
                "(%s)\n",
                stat_max < 0.0008 ? "holds" : "exceeded",
                record_max < 0.15 ? "holds" : "exceeded",
                global_max < 0.3 ? "holds" : "exceeded");
    if (args.csv) {
        std::printf("\n");
        table.printCsv();
    }
    return 0;
}
