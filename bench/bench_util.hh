/**
 * @file
 * Shared helpers for the experiment benches: command-line options,
 * parallel trial execution, paper-style table rendering, and CSV
 * emission.
 *
 * Every bench accepts:
 *   --runs N     repetitions per configuration (default varies)
 *   --jobs N     worker threads for independent trials (default:
 *                all host cores); any value yields byte-identical
 *                output
 *   --quick      reduced problem sizes / repetitions (CI-friendly)
 *   --csv        emit machine-readable CSV after the tables
 */

#ifndef KLEBSIM_BENCH_BENCH_UTIL_HH
#define KLEBSIM_BENCH_BENCH_UTIL_HH

#include <charconv>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "base/str.hh"
#include "bench_support/trial_pool.hh"

namespace klebsim::bench
{

/** Parsed common options. */
struct BenchArgs
{
    int runs = 0;      //!< 0 = bench default
    unsigned jobs = 0; //!< resolved to a positive count by parse()
    bool quick = false;
    bool csv = false;

    [[noreturn]] static void
    usageExit(const char *prog)
    {
        std::fprintf(stderr,
                     "usage: %s [--runs N] [--jobs N] [--quick] "
                     "[--csv]\n",
                     prog);
        std::exit(2);
    }

    /**
     * Strict positive-integer parse: the whole token must be
     * numeric and the value > 0.  "abc", "-5", "0", "3x" and
     * out-of-range values all take the usage/exit-2 path, the same
     * as an unknown flag — never a silent fallback to the default.
     */
    static int
    parsePositive(const char *text, const char *prog)
    {
        int value = 0;
        const char *end = text + std::strlen(text);
        auto [ptr, ec] = std::from_chars(text, end, value);
        if (ec != std::errc() || ptr != end || value <= 0)
            usageExit(prog);
        return value;
    }

    static BenchArgs
    parse(int argc, char **argv)
    {
        BenchArgs args;
        for (int i = 1; i < argc; ++i) {
            if (!std::strcmp(argv[i], "--quick")) {
                args.quick = true;
            } else if (!std::strcmp(argv[i], "--csv")) {
                args.csv = true;
            } else if (!std::strcmp(argv[i], "--runs") &&
                       i + 1 < argc) {
                args.runs = parsePositive(argv[++i], argv[0]);
            } else if (!std::strcmp(argv[i], "--jobs") &&
                       i + 1 < argc) {
                args.jobs = static_cast<unsigned>(
                    parsePositive(argv[++i], argv[0]));
            } else {
                usageExit(argv[0]);
            }
        }
        if (args.jobs == 0)
            args.jobs = TrialPool::defaultJobs();
        return args;
    }

    int
    runsOr(int dflt) const
    {
        return runs > 0 ? runs : dflt;
    }
};

/**
 * Run @p count independent trials of @p fn through a TrialPool of
 * @p jobs workers and return the results in trial order.  Every
 * bench's trial loop goes through here; a trial must build its own
 * simulated machine, derive any seed via trialSeed() from its index
 * (never from execution order), and do no printing — rendering
 * happens after all trials committed, so output is byte-identical
 * for every jobs value.
 */
template <typename Fn>
auto
runTrials(unsigned jobs, std::size_t count, Fn &&fn)
{
    TrialPool pool(jobs);
    return pool.map(count, std::forward<Fn>(fn));
}

/** Fixed-width text table, printed like the paper's tables. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {
    }

    void
    addRow(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    void
    print() const
    {
        std::vector<std::size_t> widths(headers_.size());
        for (std::size_t c = 0; c < headers_.size(); ++c)
            widths[c] = headers_[c].size();
        for (const auto &row : rows_)
            for (std::size_t c = 0;
                 c < row.size() && c < widths.size(); ++c)
                widths[c] = std::max(widths[c], row[c].size());

        auto print_row = [&](const std::vector<std::string> &row) {
            std::printf("|");
            for (std::size_t c = 0; c < widths.size(); ++c) {
                std::string cell =
                    c < row.size() ? row[c] : std::string();
                std::printf(" %s |",
                            padRight(cell, widths[c]).c_str());
            }
            std::printf("\n");
        };
        print_row(headers_);
        std::printf("|");
        for (std::size_t c = 0; c < widths.size(); ++c)
            std::printf("%s|",
                        std::string(widths[c] + 2, '-').c_str());
        std::printf("\n");
        for (const auto &row : rows_)
            print_row(row);
    }

    void
    printCsv() const
    {
        std::printf("%s\n", join(headers_, ",").c_str());
        for (const auto &row : rows_)
            std::printf("%s\n", join(row, ",").c_str());
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Banner for a bench section. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

} // namespace klebsim::bench

#endif // KLEBSIM_BENCH_BENCH_UTIL_HH
