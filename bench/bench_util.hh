/**
 * @file
 * Shared helpers for the experiment benches: command-line options,
 * paper-style table rendering, and CSV emission.
 *
 * Every bench accepts:
 *   --runs N     repetitions per configuration (default varies)
 *   --quick      reduced problem sizes / repetitions (CI-friendly)
 *   --csv        emit machine-readable CSV after the tables
 */

#ifndef KLEBSIM_BENCH_BENCH_UTIL_HH
#define KLEBSIM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "base/str.hh"

namespace klebsim::bench
{

/** Parsed common options. */
struct BenchArgs
{
    int runs = 0;      //!< 0 = bench default
    bool quick = false;
    bool csv = false;

    static BenchArgs
    parse(int argc, char **argv)
    {
        BenchArgs args;
        for (int i = 1; i < argc; ++i) {
            if (!std::strcmp(argv[i], "--quick")) {
                args.quick = true;
            } else if (!std::strcmp(argv[i], "--csv")) {
                args.csv = true;
            } else if (!std::strcmp(argv[i], "--runs") &&
                       i + 1 < argc) {
                args.runs = std::atoi(argv[++i]);
            } else {
                std::fprintf(stderr,
                             "usage: %s [--runs N] [--quick] "
                             "[--csv]\n",
                             argv[0]);
                std::exit(2);
            }
        }
        return args;
    }

    int
    runsOr(int dflt) const
    {
        return runs > 0 ? runs : dflt;
    }
};

/** Fixed-width text table, printed like the paper's tables. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {
    }

    void
    addRow(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    void
    print() const
    {
        std::vector<std::size_t> widths(headers_.size());
        for (std::size_t c = 0; c < headers_.size(); ++c)
            widths[c] = headers_[c].size();
        for (const auto &row : rows_)
            for (std::size_t c = 0;
                 c < row.size() && c < widths.size(); ++c)
                widths[c] = std::max(widths[c], row[c].size());

        auto print_row = [&](const std::vector<std::string> &row) {
            std::printf("|");
            for (std::size_t c = 0; c < widths.size(); ++c) {
                std::string cell =
                    c < row.size() ? row[c] : std::string();
                std::printf(" %s |",
                            padRight(cell, widths[c]).c_str());
            }
            std::printf("\n");
        };
        print_row(headers_);
        std::printf("|");
        for (std::size_t c = 0; c < widths.size(); ++c)
            std::printf("%s|",
                        std::string(widths[c] + 2, '-').c_str());
        std::printf("\n");
        for (const auto &row : rows_)
            print_row(row);
    }

    void
    printCsv() const
    {
        std::printf("%s\n", join(headers_, ",").c_str());
        for (const auto &row : rows_)
            std::printf("%s\n", join(row, ",").c_str());
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Banner for a bench section. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

} // namespace klebsim::bench

#endif // KLEBSIM_BENCH_BENCH_UTIL_HH
