/**
 * @file
 * Ablation: HRTimer jitter characterization (paper section VI).
 *
 * The paper bounds K-LEB's usable rate by timer jitter: "even a 1%
 * jitter could cause the collection mechanism to shift an entire
 * time step off with only 100 iterations".  This bench measures
 * the per-expiry lateness distribution, the relative jitter at
 * several periods, and verifies that deadline-based re-arming
 * (hrtimer_forward) prevents drift accumulation.
 */

#include <cstdio>

#include "bench_util.hh"
#include "kernel/system.hh"
#include "stats/histogram.hh"
#include "stats/summary.hh"

using namespace klebsim;
using namespace klebsim::bench;
using namespace klebsim::ticks_literals;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    int expiries = args.quick ? 2000 : 20000;

    banner("Ablation: HRTimer jitter vs sampling period");

    // Each period probes a fresh machine — independent trials.
    const std::vector<Tick> periods = {
        usToTicks(50), usToTicks(100), usToTicks(500),
        msToTicks(1), msToTicks(10)};
    std::vector<std::vector<double>> lateness = runTrials(
        args.jobs, periods.size(), [&](std::size_t k) {
            Tick period = periods[k];
            kernel::System sys(hw::MachineConfig::corei7_920(),
                               31);
            std::vector<double> lateness_us;
            std::vector<Tick> fire_times;
            kernel::HrTimer *timer = sys.kernel().createHrTimer(
                "jitter-probe", 0,
                [&] { fire_times.push_back(sys.now()); }, 0, 0);
            timer->startPeriodic(period);
            sys.run(period * static_cast<Tick>(expiries) +
                    usToTicks(200));
            timer->cancel();
            for (std::size_t i = 0; i < fire_times.size(); ++i) {
                Tick deadline = (i + 1) * period;
                lateness_us.push_back(
                    ticksToUs(fire_times[i] - deadline));
            }
            return lateness_us;
        });

    Table table({"Period", "Mean lateness (us)", "P99 (us)",
                 "Relative jitter (%)", "Drift after N (us)"});
    for (std::size_t k = 0; k < periods.size(); ++k) {
        Tick period = periods[k];
        const std::vector<double> &lateness_us = lateness[k];
        stats::RunningStats st;
        for (double v : lateness_us)
            st.add(v);
        double p99 = stats::percentile(lateness_us, 99.0);
        // Drift: the final expiry's offset from its deadline — with
        // hrtimer_forward this stays bounded by single-shot jitter
        // instead of accumulating N * mean.
        double drift = lateness_us.back();
        table.addRow({csprintf("%8.0f us", ticksToUs(period)),
                      toFixed(st.mean(), 3), toFixed(p99, 3),
                      toFixed(st.mean() / ticksToUs(period) * 100.0,
                              3),
                      toFixed(drift, 3)});
    }
    table.print();

    // Lateness histogram at the paper's 100 us rate.
    std::printf("\nLateness distribution at 100 us (%d "
                "expiries):\n",
                expiries);
    kernel::System sys(hw::MachineConfig::corei7_920(), 32);
    stats::Histogram hist(0.0, 8.0, 16);
    kernel::HrTimer *timer = sys.kernel().createHrTimer(
        "hist-probe", 0, [] {}, 0, 0);
    kernel::HrTimer *observer = timer; // observe via lastLateness
    sys.kernel()
        .createHrTimer("collector", 1,
                       [&] {
                           (void)observer;
                       },
                       0, 0);
    timer->startPeriodic(100_us);
    // Sample lateness by polling after each run segment.
    for (int i = 0; i < expiries; ++i) {
        sys.run(sys.now() + 100_us);
        hist.add(ticksToUs(timer->lastLateness()));
    }
    timer->cancel();
    std::printf("%s", hist.render(1).c_str());
    std::printf("\nShape check: sub-period jitter at 100 us, no "
                "cumulative drift (deadline-gridded re-arm).\n");
    return 0;
}
