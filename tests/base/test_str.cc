#include <gtest/gtest.h>

#include "base/str.hh"

using namespace klebsim;

TEST(Str, Csprintf)
{
    EXPECT_EQ(csprintf("x=%d y=%s", 5, "ab"), "x=5 y=ab");
    EXPECT_EQ(csprintf("%.2f", 3.14159), "3.14");
    EXPECT_EQ(csprintf("empty"), "empty");
}

TEST(Str, CsprintfLongOutput)
{
    std::string big(500, 'a');
    EXPECT_EQ(csprintf("%s!", big.c_str()), big + "!");
}

TEST(Str, Join)
{
    EXPECT_EQ(join({"a", "b", "c"}, ","), "a,b,c");
    EXPECT_EQ(join({"x"}, ","), "x");
    EXPECT_EQ(join({}, ","), "");
}

TEST(Str, ToFixed)
{
    EXPECT_EQ(toFixed(1.23456, 2), "1.23");
    EXPECT_EQ(toFixed(2.0, 0), "2");
    EXPECT_EQ(toFixed(-0.5, 1), "-0.5");
}

TEST(Str, Padding)
{
    EXPECT_EQ(padLeft("ab", 4), "  ab");
    EXPECT_EQ(padRight("ab", 4), "ab  ");
    EXPECT_EQ(padLeft("abcd", 2), "abcd");
    EXPECT_EQ(padRight("abcd", 2), "abcd");
}

TEST(Str, StartsWith)
{
    EXPECT_TRUE(startsWith("hello", "he"));
    EXPECT_TRUE(startsWith("hello", ""));
    EXPECT_FALSE(startsWith("hello", "hello!"));
    EXPECT_FALSE(startsWith("hello", "x"));
}

TEST(Str, Split)
{
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
}
