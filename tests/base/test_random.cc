#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "base/random.hh"

using klebsim::Random;

TEST(Random, DeterministicForSameSeed)
{
    Random a(42, 7);
    Random b(42, 7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next32(), b.next32());
}

TEST(Random, DifferentSeedsDiffer)
{
    Random a(42, 7);
    Random b(43, 7);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next32() == b.next32())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Random, DifferentStreamsDiffer)
{
    Random a(42, 1);
    Random b(42, 2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next32() == b.next32())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Random, BelowRespectsBound)
{
    Random r(1);
    for (std::uint32_t bound : {1u, 2u, 7u, 100u, 1u << 20}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(r.below(bound), bound);
    }
}

TEST(Random, BelowZeroIsZero)
{
    Random r(1);
    EXPECT_EQ(r.below(0), 0u);
}

TEST(Random, BetweenInclusive)
{
    Random r(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = r.between(3, 6);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 6);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Random, BetweenDegenerate)
{
    Random r(5);
    EXPECT_EQ(r.between(9, 9), 9);
    EXPECT_EQ(r.between(9, 3), 9);
}

TEST(Random, UniformInUnitInterval)
{
    Random r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Random, UniformRange)
{
    Random r(12);
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform(-2.0, 3.0);
        ASSERT_GE(u, -2.0);
        ASSERT_LT(u, 3.0);
    }
}

TEST(Random, GaussianMoments)
{
    Random r(13);
    double sum = 0, sum2 = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double g = r.gaussian(10.0, 2.0);
        sum += g;
        sum2 += g * g;
    }
    double mean = sum / n;
    double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.1);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Random, ChanceExtremes)
{
    Random r(14);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Random, ChanceProbability)
{
    Random r(15);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Random, ForkedStreamsIndependent)
{
    Random parent(99);
    Random a = parent.fork(1);
    Random b = parent.fork(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next32() == b.next32())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Random, ForkDeterministic)
{
    Random p1(99), p2(99);
    Random a = p1.fork(7);
    Random b = p2.fork(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}
