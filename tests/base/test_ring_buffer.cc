#include <gtest/gtest.h>

#include "base/ring_buffer.hh"

using klebsim::RingBuffer;

TEST(RingBuffer, StartsEmpty)
{
    RingBuffer<int> rb(4);
    EXPECT_TRUE(rb.empty());
    EXPECT_FALSE(rb.full());
    EXPECT_EQ(rb.size(), 0u);
    EXPECT_EQ(rb.capacity(), 4u);
    EXPECT_EQ(rb.freeSlots(), 4u);
}

TEST(RingBuffer, PushPopFifo)
{
    RingBuffer<int> rb(4);
    EXPECT_TRUE(rb.push(1));
    EXPECT_TRUE(rb.push(2));
    EXPECT_TRUE(rb.push(3));
    int v = 0;
    EXPECT_TRUE(rb.pop(v));
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(rb.pop(v));
    EXPECT_EQ(v, 2);
    EXPECT_TRUE(rb.pop(v));
    EXPECT_EQ(v, 3);
    EXPECT_FALSE(rb.pop(v));
}

TEST(RingBuffer, RejectsWhenFull)
{
    RingBuffer<int> rb(2);
    EXPECT_TRUE(rb.push(1));
    EXPECT_TRUE(rb.push(2));
    EXPECT_TRUE(rb.full());
    EXPECT_FALSE(rb.push(3));
    EXPECT_EQ(rb.size(), 2u);
}

TEST(RingBuffer, WrapAround)
{
    RingBuffer<int> rb(3);
    int v = 0;
    for (int round = 0; round < 10; ++round) {
        EXPECT_TRUE(rb.push(round * 2));
        EXPECT_TRUE(rb.push(round * 2 + 1));
        EXPECT_TRUE(rb.pop(v));
        EXPECT_EQ(v, round * 2);
        EXPECT_TRUE(rb.pop(v));
        EXPECT_EQ(v, round * 2 + 1);
    }
    EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, DrainAll)
{
    RingBuffer<int> rb(8);
    for (int i = 0; i < 5; ++i)
        rb.push(i);
    auto out = rb.drain();
    ASSERT_EQ(out.size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
    EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, DrainBounded)
{
    RingBuffer<int> rb(8);
    for (int i = 0; i < 6; ++i)
        rb.push(i);
    auto out = rb.drain(4);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0], 0);
    EXPECT_EQ(out[3], 3);
    EXPECT_EQ(rb.size(), 2u);
    int v;
    EXPECT_TRUE(rb.pop(v));
    EXPECT_EQ(v, 4);
}

TEST(RingBuffer, DrainAcrossWrap)
{
    RingBuffer<int> rb(4);
    rb.push(0);
    rb.push(1);
    int v;
    rb.pop(v);
    rb.pop(v);
    // head is now at index 2; push 4 elements to wrap.
    for (int i = 10; i < 14; ++i)
        EXPECT_TRUE(rb.push(i));
    auto out = rb.drain();
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out.front(), 10);
    EXPECT_EQ(out.back(), 13);
}

TEST(RingBuffer, Clear)
{
    RingBuffer<int> rb(4);
    rb.push(1);
    rb.push(2);
    rb.clear();
    EXPECT_TRUE(rb.empty());
    EXPECT_TRUE(rb.push(9));
    int v;
    EXPECT_TRUE(rb.pop(v));
    EXPECT_EQ(v, 9);
}

TEST(RingBuffer, CapacityOne)
{
    RingBuffer<int> rb(1);
    EXPECT_TRUE(rb.push(7));
    EXPECT_TRUE(rb.full());
    EXPECT_FALSE(rb.push(8));
    int v;
    EXPECT_TRUE(rb.pop(v));
    EXPECT_EQ(v, 7);
    EXPECT_TRUE(rb.push(8));
}
