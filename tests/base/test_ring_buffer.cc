#include <gtest/gtest.h>

#include "base/ring_buffer.hh"

using klebsim::RingBuffer;

TEST(RingBuffer, StartsEmpty)
{
    RingBuffer<int> rb(4);
    EXPECT_TRUE(rb.empty());
    EXPECT_FALSE(rb.full());
    EXPECT_EQ(rb.size(), 0u);
    EXPECT_EQ(rb.capacity(), 4u);
    EXPECT_EQ(rb.freeSlots(), 4u);
}

TEST(RingBuffer, PushPopFifo)
{
    RingBuffer<int> rb(4);
    EXPECT_TRUE(rb.push(1));
    EXPECT_TRUE(rb.push(2));
    EXPECT_TRUE(rb.push(3));
    int v = 0;
    EXPECT_TRUE(rb.pop(v));
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(rb.pop(v));
    EXPECT_EQ(v, 2);
    EXPECT_TRUE(rb.pop(v));
    EXPECT_EQ(v, 3);
    EXPECT_FALSE(rb.pop(v));
}

TEST(RingBuffer, RejectsWhenFull)
{
    RingBuffer<int> rb(2);
    EXPECT_TRUE(rb.push(1));
    EXPECT_TRUE(rb.push(2));
    EXPECT_TRUE(rb.full());
    EXPECT_FALSE(rb.push(3));
    EXPECT_EQ(rb.size(), 2u);
}

TEST(RingBuffer, WrapAround)
{
    RingBuffer<int> rb(3);
    int v = 0;
    for (int round = 0; round < 10; ++round) {
        EXPECT_TRUE(rb.push(round * 2));
        EXPECT_TRUE(rb.push(round * 2 + 1));
        EXPECT_TRUE(rb.pop(v));
        EXPECT_EQ(v, round * 2);
        EXPECT_TRUE(rb.pop(v));
        EXPECT_EQ(v, round * 2 + 1);
    }
    EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, DrainAll)
{
    RingBuffer<int> rb(8);
    for (int i = 0; i < 5; ++i)
        rb.push(i);
    auto out = rb.drain();
    ASSERT_EQ(out.size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
    EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, DrainBounded)
{
    RingBuffer<int> rb(8);
    for (int i = 0; i < 6; ++i)
        rb.push(i);
    auto out = rb.drain(4);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0], 0);
    EXPECT_EQ(out[3], 3);
    EXPECT_EQ(rb.size(), 2u);
    int v;
    EXPECT_TRUE(rb.pop(v));
    EXPECT_EQ(v, 4);
}

TEST(RingBuffer, DrainAcrossWrap)
{
    RingBuffer<int> rb(4);
    rb.push(0);
    rb.push(1);
    int v;
    rb.pop(v);
    rb.pop(v);
    // head is now at index 2; push 4 elements to wrap.
    for (int i = 10; i < 14; ++i)
        EXPECT_TRUE(rb.push(i));
    auto out = rb.drain();
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out.front(), 10);
    EXPECT_EQ(out.back(), 13);
}

TEST(RingBuffer, Clear)
{
    RingBuffer<int> rb(4);
    rb.push(1);
    rb.push(2);
    rb.clear();
    EXPECT_TRUE(rb.empty());
    EXPECT_TRUE(rb.push(9));
    int v;
    EXPECT_TRUE(rb.pop(v));
    EXPECT_EQ(v, 9);
}

TEST(RingBuffer, CapacityOne)
{
    RingBuffer<int> rb(1);
    EXPECT_TRUE(rb.push(7));
    EXPECT_TRUE(rb.full());
    EXPECT_FALSE(rb.push(8));
    int v;
    EXPECT_TRUE(rb.pop(v));
    EXPECT_EQ(v, 7);
    EXPECT_TRUE(rb.push(8));
}

TEST(RingBuffer, PushBulkFifo)
{
    RingBuffer<int> rb(8);
    const int src[] = {1, 2, 3, 4, 5};
    EXPECT_EQ(rb.pushBulk(src, 5), 5u);
    EXPECT_EQ(rb.size(), 5u);
    int v = 0;
    for (int want = 1; want <= 5; ++want) {
        EXPECT_TRUE(rb.pop(v));
        EXPECT_EQ(v, want);
    }
}

TEST(RingBuffer, PushBulkPartialAcceptAtCapacity)
{
    RingBuffer<int> rb(4);
    rb.push(0);
    rb.push(1);
    const int src[] = {2, 3, 4, 5};
    // Only two free slots: the first two are accepted in order,
    // the rest dropped — same drop-on-full contract as push().
    EXPECT_EQ(rb.pushBulk(src, 4), 2u);
    EXPECT_TRUE(rb.full());
    int v = 0;
    for (int want = 0; want <= 3; ++want) {
        EXPECT_TRUE(rb.pop(v));
        EXPECT_EQ(v, want);
    }
}

TEST(RingBuffer, PushBulkAcrossWrap)
{
    RingBuffer<int> rb(4);
    int v = 0;
    rb.push(-1);
    rb.push(-2);
    rb.pop(v);
    rb.pop(v);
    // tail is at index 2: a 4-element bulk push must split into a
    // 2-element tail segment and a 2-element wrapped segment.
    const int src[] = {10, 11, 12, 13};
    EXPECT_EQ(rb.pushBulk(src, 4), 4u);
    EXPECT_TRUE(rb.full());
    for (int want = 10; want <= 13; ++want) {
        EXPECT_TRUE(rb.pop(v));
        EXPECT_EQ(v, want);
    }
}

TEST(RingBuffer, DrainIntoBoundedFifo)
{
    RingBuffer<int> rb(8);
    for (int i = 0; i < 6; ++i)
        rb.push(i);
    int out[8] = {};
    EXPECT_EQ(rb.drainInto(out, 4), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(out[i], i);
    EXPECT_EQ(rb.size(), 2u);
    EXPECT_EQ(rb.drainInto(out), 2u);
    EXPECT_EQ(out[0], 4);
    EXPECT_EQ(out[1], 5);
    EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, DrainIntoAcrossWrap)
{
    RingBuffer<int> rb(4);
    int v = 0;
    rb.push(0);
    rb.push(1);
    rb.pop(v);
    rb.pop(v);
    for (int i = 10; i < 14; ++i)
        EXPECT_TRUE(rb.push(i));
    // head at index 2: the drain must stitch the two segments back
    // into FIFO order.
    int out[4] = {};
    EXPECT_EQ(rb.drainInto(out), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(out[i], 10 + i);
}

TEST(RingBuffer, BulkOpsMatchScalarReference)
{
    // Drive a bulk ring and a scalar push/pop ring through the same
    // deterministic op sequence; every observable must agree at
    // every step, across many wrap positions.
    RingBuffer<int> bulk(5);
    RingBuffer<int> scalar(5);
    std::uint32_t rng = 12345;
    int next_val = 0;
    for (int step = 0; step < 2000; ++step) {
        rng = rng * 1664525u + 1013904223u;
        std::size_t n = (rng >> 16) % 4 + 1;
        if ((rng >> 24) & 1) {
            int vals[4];
            for (std::size_t i = 0; i < n; ++i)
                vals[i] = next_val++;
            std::size_t accepted = bulk.pushBulk(vals, n);
            std::size_t ref_accepted = 0;
            for (std::size_t i = 0; i < n; ++i)
                ref_accepted +=
                    scalar.push(vals[i]) ? 1u : 0u;
            ASSERT_EQ(accepted, ref_accepted) << "step " << step;
        } else {
            int got[4] = {};
            std::size_t drained = bulk.drainInto(got, n);
            for (std::size_t i = 0; i < drained; ++i) {
                int ref = 0;
                ASSERT_TRUE(scalar.pop(ref)) << "step " << step;
                ASSERT_EQ(got[i], ref) << "step " << step;
            }
            int spare = 0;
            if (drained < n)
                ASSERT_FALSE(scalar.pop(spare))
                    << "step " << step;
        }
        ASSERT_EQ(bulk.size(), scalar.size()) << "step " << step;
    }
}
