#include <gtest/gtest.h>

#include "base/intmath.hh"

using namespace klebsim;

TEST(IntMath, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ULL << 40));
    EXPECT_FALSE(isPowerOf2((1ULL << 40) + 1));
}

TEST(IntMath, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0);
    EXPECT_EQ(floorLog2(2), 1);
    EXPECT_EQ(floorLog2(3), 1);
    EXPECT_EQ(floorLog2(4), 2);
    EXPECT_EQ(floorLog2(1023), 9);
    EXPECT_EQ(floorLog2(1024), 10);
}

TEST(IntMath, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0);
    EXPECT_EQ(ceilLog2(2), 1);
    EXPECT_EQ(ceilLog2(3), 2);
    EXPECT_EQ(ceilLog2(4), 2);
    EXPECT_EQ(ceilLog2(5), 3);
}

TEST(IntMath, Rounding)
{
    EXPECT_EQ(roundUp(0, 8), 0u);
    EXPECT_EQ(roundUp(1, 8), 8u);
    EXPECT_EQ(roundUp(8, 8), 8u);
    EXPECT_EQ(roundUp(9, 8), 16u);
    EXPECT_EQ(roundDown(7, 8), 0u);
    EXPECT_EQ(roundDown(8, 8), 8u);
    EXPECT_EQ(roundDown(15, 8), 8u);
}

TEST(IntMath, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(4, 4), 1u);
    EXPECT_EQ(divCeil(5, 4), 2u);
}

TEST(IntMath, SaturatingShl)
{
    EXPECT_EQ(saturatingShl(0, 63), 0u);
    EXPECT_EQ(saturatingShl(1, 0), 1u);
    EXPECT_EQ(saturatingShl(3, 4), 48u);
    EXPECT_EQ(saturatingShl(1, 63), 1ULL << 63);
    // One past the representable range saturates instead of
    // wrapping or shifting by >= the type width (UB).
    EXPECT_EQ(saturatingShl(2, 63), ~std::uint64_t(0));
    EXPECT_EQ(saturatingShl(1, 64), ~std::uint64_t(0));
    EXPECT_EQ(saturatingShl(5, 1000), ~std::uint64_t(0));
    EXPECT_EQ(saturatingShl(~std::uint64_t(0), 1),
              ~std::uint64_t(0));
    EXPECT_EQ(saturatingShl(7, -1), ~std::uint64_t(0));
}
