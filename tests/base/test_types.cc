#include <gtest/gtest.h>

#include "base/types.hh"

using namespace klebsim;

// The double-argument conversions round to the nearest tick.  A
// truncating cast turned 0.29 us into 289999 ticks (0.29 * 1e6 is
// not representable in binary), which then mis-parsed user-facing
// period arguments; these pins keep the round-to-nearest fix honest.
TEST(Types, DoubleConversionsRoundToNearest)
{
    EXPECT_EQ(usToTicks(0.29), 290000u);
    EXPECT_EQ(usToTicks(1.5), 1500000u);
    EXPECT_EQ(nsToTicks(0.4), 400u);
    EXPECT_EQ(msToTicks(0.1), 100000000u);
    EXPECT_EQ(secToTicks(0.3), 300000000000u);
}

TEST(Types, DoubleConversionsExactOnIntegralValues)
{
    EXPECT_EQ(usToTicks(100.0), 100 * tickPerUs);
    EXPECT_EQ(msToTicks(10.0), 10 * tickPerMs);
    EXPECT_EQ(secToTicks(2.0), 2 * tickPerSec);
}

TEST(Types, RoundToTick)
{
    EXPECT_EQ(roundToTick(0.0), 0u);
    EXPECT_EQ(roundToTick(0.49), 0u);
    EXPECT_EQ(roundToTick(0.5), 1u);
    EXPECT_EQ(roundToTick(12345.7), 12346u);
}
