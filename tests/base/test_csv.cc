#include <gtest/gtest.h>

#include <sstream>

#include "base/csv.hh"

using klebsim::CsvWriter;

TEST(Csv, HeaderAndRows)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.header({"a", "b"});
    csv.row({"1", "2"});
    csv.row({"3", "4"});
    EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
    EXPECT_EQ(csv.rowsWritten(), 2u);
}

TEST(Csv, QuotesWhenNeeded)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.row({"plain", "has,comma", "has\"quote", "has\nnewline"});
    EXPECT_EQ(os.str(),
              "plain,\"has,comma\",\"has\"\"quote\",\"has\n"
              "newline\"\n");
}

TEST(Csv, NumericRow)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.rowNumeric("metric", {1.5, 2.25}, 2);
    EXPECT_EQ(os.str(), "metric,1.50,2.25\n");
}
