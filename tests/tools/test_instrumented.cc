#include <gtest/gtest.h>

#include "kernel/system.hh"
#include "tools/instrumented.hh"
#include "workload/microbench.hh"

using namespace klebsim;
using namespace klebsim::kernel;
using namespace klebsim::tools;
using klebsim::workload::FixedWorkSource;
using klebsim::workload::computeSource;

namespace
{

CostModel
quietCosts()
{
    CostModel c;
    c.costSigma = 0.0;
    c.runSigma = 0.0;
    return c;
}

struct MemFixture
{
    MemFixture()
        : cfg(hw::MachineConfig::corei7_920()),
          llc("LLC", cfg.llc, Random(2)), mem(cfg, &llc, Random(3))
    {
    }

    hw::MachineConfig cfg;
    hw::Cache llc;
    hw::MemHierarchy mem;
};

} // namespace

TEST(InstrumentedSource, InsertsPointsAtSpacing)
{
    MemFixture f;
    FixedWorkSource inner = computeSource(10, 100000, 2.0);
    InstrumentedSource::Options opts;
    opts.readEveryInstr = 250000;
    opts.pointCycles = 1000;
    opts.initCycles = 5000;
    opts.finiCycles = 2000;
    InstrumentedSource src(&inner, opts);

    int points = 0, init_chunks = 0, inner_chunks = 0;
    std::uint64_t total_instr = 0;
    bool first = true;
    while (!src.done()) {
        hw::WorkChunk c = src.nextChunk(f.mem);
        total_instr += c.instructions;
        if (c.fixedCycles != 0) {
            EXPECT_EQ(c.priv, hw::PrivLevel::kernel);
            if (first)
                ++init_chunks;
            else
                ++points;
        } else {
            ++inner_chunks;
        }
        first = false;
    }
    EXPECT_EQ(init_chunks, 1);
    EXPECT_EQ(inner_chunks, 10);
    // 1e6 inner instructions / 250k spacing = 4 points, one of
    // which is the trailing fini chunk.
    EXPECT_EQ(points, 4);
    EXPECT_EQ(src.readPoints(), 3u);
}

TEST(InstrumentedSource, NoPointsWhenSpacingExceedsWork)
{
    MemFixture f;
    FixedWorkSource inner = computeSource(2, 1000, 2.0);
    InstrumentedSource::Options opts;
    opts.readEveryInstr = 1000000;
    opts.pointCycles = 1000;
    InstrumentedSource src(&inner, opts);
    int chunks = 0;
    while (!src.done()) {
        src.nextChunk(f.mem);
        ++chunks;
    }
    EXPECT_EQ(src.readPoints(), 0u);
    EXPECT_EQ(chunks, 3); // 2 inner + fini
}

TEST(InstrumentedSource, ResetReplays)
{
    MemFixture f;
    FixedWorkSource inner = computeSource(4, 100000, 2.0);
    InstrumentedSource::Options opts;
    opts.readEveryInstr = 150000;
    opts.pointCycles = 100;
    InstrumentedSource src(&inner, opts);
    int chunks_a = 0;
    while (!src.done()) {
        src.nextChunk(f.mem);
        ++chunks_a;
    }
    src.reset();
    int chunks_b = 0;
    while (!src.done()) {
        src.nextChunk(f.mem);
        ++chunks_b;
    }
    EXPECT_EQ(chunks_a, chunks_b);
}

TEST(InstrumentedTool, PapiProfileCapturesTotals)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    auto opts = InstrumentedToolSession::papi(2000000);
    opts.events = {hw::HwEvent::instRetired};
    InstrumentedToolSession tool(sys, opts);

    FixedWorkSource inner = computeSource(10, 1000000, 2.0);
    hw::WorkSource *wrapped = tool.wrap(&inner);
    Process *target =
        sys.kernel().createWorkload("t", wrapped, 0);
    tool.profile(target);
    sys.run();

    EXPECT_EQ(target->state(), ProcState::zombie);
    ASSERT_EQ(tool.totals().size(), 1u);
    // Instrumentation chunks run at kernel priv: the user-mode
    // count is exactly the inner workload's instructions.
    EXPECT_EQ(tool.totals()[0], 10000000u);
    // 10 M instructions at 2 M spacing: points after 2,4,6,8,10 M.
    EXPECT_EQ(tool.readPoints(), 5u);
}

TEST(InstrumentedTool, PapiInitDominatesShortRuns)
{
    CostModel costs = quietCosts();
    System sys(hw::MachineConfig::corei7_920(), 1, costs);

    FixedWorkSource base_src = computeSource(10, 1000000, 2.0);
    Process *base =
        sys.kernel().createWorkload("base", &base_src, 1);
    sys.kernel().startProcess(base);

    auto opts = InstrumentedToolSession::papi(100000000);
    InstrumentedToolSession tool(sys, opts);
    FixedWorkSource inner = computeSource(10, 1000000, 2.0);
    hw::WorkSource *wrapped = tool.wrap(&inner);
    Process *target =
        sys.kernel().createWorkload("t", wrapped, 0);
    tool.profile(target);
    sys.run();

    // ~1.9 ms of work + 15.5 ms PAPI init: massive relative cost.
    EXPECT_GT(target->lifetime(), base->lifetime() * 5);
}

TEST(InstrumentedTool, LimitRequiresPatch)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    auto opts = InstrumentedToolSession::limit(1000000, false);
    InstrumentedToolSession tool(sys, opts);
    EXPECT_FALSE(tool.supported());
}

TEST(InstrumentedTool, LimitCheaperThanPapiPerPoint)
{
    auto papi = InstrumentedToolSession::papi(1);
    auto limit = InstrumentedToolSession::limit(1, true);
    EXPECT_LT(limit.pointCost, papi.pointCost);
    EXPECT_LT(limit.initCost, papi.initCost);
}
