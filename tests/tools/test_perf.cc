#include <gtest/gtest.h>

#include "kernel/system.hh"
#include "tools/perf.hh"
#include "workload/microbench.hh"

using namespace klebsim;
using namespace klebsim::kernel;
using namespace klebsim::ticks_literals;
using namespace klebsim::tools;
using klebsim::workload::FixedWorkSource;
using klebsim::workload::computeSource;

namespace
{

CostModel
quietCosts()
{
    CostModel c;
    c.costSigma = 0.0;
    c.runSigma = 0.0;
    return c;
}

} // namespace

TEST(PerfStat, IntervalFloorEnforced)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    setLoggingQuiet(true);
    PerfStatSession::Options opts;
    opts.interval = usToTicks(100); // below the floor
    PerfStatSession session(sys, opts);
    setLoggingQuiet(false);
    EXPECT_EQ(session.effectiveInterval(),
              PerfStatSession::minInterval);
}

TEST(PerfStat, CollectsIntervalsAndExactTotals)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    // ~37 ms of work -> a few 10 ms intervals.
    FixedWorkSource src = computeSource(200, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);

    PerfStatSession::Options opts;
    opts.events = {hw::HwEvent::instRetired,
                   hw::HwEvent::branchRetired};
    PerfStatSession session(sys, opts);
    session.profile(target);
    sys.run();

    EXPECT_TRUE(session.finished());
    EXPECT_EQ(target->state(), ProcState::zombie);
    EXPECT_GE(session.samples().size(), 3u);
    auto totals = session.totals();
    ASSERT_EQ(totals.size(), 2u);
    EXPECT_EQ(totals[0], 200000000u);
    EXPECT_EQ(totals[1], 200 * 125000u);
}

TEST(PerfStat, AddsVisibleOverhead)
{
    CostModel costs = quietCosts();
    System sys(hw::MachineConfig::corei7_920(), 1, costs);
    FixedWorkSource src_base = computeSource(200, 1000000, 2.0);
    Process *base =
        sys.kernel().createWorkload("base", &src_base, 1);
    sys.kernel().startProcess(base);

    FixedWorkSource src_p = computeSource(200, 1000000, 2.0);
    Process *profiled =
        sys.kernel().createWorkload("p", &src_p, 0);
    PerfStatSession session(sys, PerfStatSession::Options{});
    session.profile(profiled);
    sys.run();

    double overhead =
        (static_cast<double>(profiled->lifetime()) -
         static_cast<double>(base->lifetime())) /
        static_cast<double>(base->lifetime()) * 100.0;
    // Per-interval work (~560 us / 10 ms) lands near 6 %.
    EXPECT_GT(overhead, 3.0);
    EXPECT_LT(overhead, 12.0);
}

TEST(PerfRecord, SamplesAtFrequency)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    FixedWorkSource src = computeSource(200, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);

    PerfRecordSession::Options opts;
    opts.events = {hw::HwEvent::instRetired};
    opts.freqHz = 4000.0;
    PerfRecordSession session(sys, opts);
    session.profile(target);
    sys.run();

    EXPECT_TRUE(session.finished());
    // ~37 ms at 4 kHz: on the order of 150 samples.
    EXPECT_GT(session.samples().size(), 100u);
    EXPECT_LT(session.samples().size(), 200u);
}

TEST(PerfRecord, TotalsAreEstimatesWithTailError)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    FixedWorkSource src = computeSource(200, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);

    PerfRecordSession::Options opts;
    opts.events = {hw::HwEvent::instRetired};
    PerfRecordSession session(sys, opts);
    session.profile(target);
    sys.run();

    auto totals = session.totals();
    ASSERT_EQ(totals.size(), 1u);
    const std::uint64_t exact = 200000000u;
    // Sampling stops short of the final stretch: the estimate is
    // below the exact count but within a fraction of a percent
    // (Fig. 9's <0.15 % for perf record).
    EXPECT_LE(totals[0], exact);
    EXPECT_GT(totals[0], exact - exact / 100);
}

TEST(PerfRecord, StopsSamplingWhenTargetOffCore)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    // Two co-runners: the target holds the core only half the time.
    FixedWorkSource src_t = computeSource(100, 1000000, 2.0);
    FixedWorkSource src_o = computeSource(100, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src_t, 0);
    Process *other = sys.kernel().createWorkload("o", &src_o, 0);
    sys.kernel().startProcess(other);

    PerfRecordSession::Options opts;
    opts.events = {hw::HwEvent::instRetired};
    opts.freqHz = 4000.0;
    PerfRecordSession session(sys, opts);
    session.profile(target);
    sys.run();

    // The target ran ~18.7 ms of CPU; samples reflect on-core time
    // only (not the full ~40 ms wall clock).
    EXPECT_LT(session.samples().size(), 110u);
    EXPECT_GT(session.samples().size(), 50u);
}
