#include <gtest/gtest.h>

#include "kernel/system.hh"
#include "stats/summary.hh"
#include "tools/multiplex.hh"
#include "workload/microbench.hh"
#include "workload/phase_workload.hh"

using namespace klebsim;
using namespace klebsim::kernel;
using namespace klebsim::ticks_literals;
using namespace klebsim::tools;
using klebsim::workload::FixedWorkSource;
using klebsim::workload::computeSource;

namespace
{

CostModel
quietCosts()
{
    CostModel c;
    c.costSigma = 0.0;
    c.runSigma = 0.0;
    return c;
}

std::vector<hw::HwEvent>
eightEvents()
{
    return {hw::HwEvent::branchRetired,
            hw::HwEvent::branchMispredicted,
            hw::HwEvent::loadRetired,
            hw::HwEvent::storeRetired,
            hw::HwEvent::arithMul,
            hw::HwEvent::arithDiv,
            hw::HwEvent::fpOpsRetired,
            hw::HwEvent::llcMiss};
}

} // namespace

TEST(Multiplex, GroupsSplitByCounterWidth)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    MultiplexedPmuSession::Options opts;
    opts.events = eightEvents(); // 8 programmable -> 2 groups
    MultiplexedPmuSession mux(sys, 99, opts);
    EXPECT_EQ(mux.groups(), 2u);

    MultiplexedPmuSession::Options small;
    small.events = {hw::HwEvent::llcMiss,
                    hw::HwEvent::instRetired}; // 1 prog + 1 fixed
    MultiplexedPmuSession mux2(sys, 99, small);
    EXPECT_EQ(mux2.groups(), 1u);
}

TEST(Multiplex, StationaryWorkloadEstimatesAccurately)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    // 40 identical chunks: event rates are stationary, so the
    // multiplexed estimate should land close to the truth.
    FixedWorkSource src = computeSource(40, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);

    MultiplexedPmuSession::Options opts;
    opts.events = eightEvents();
    opts.rotateInterval = msToTicks(1);
    MultiplexedPmuSession mux(sys, target->pid(), opts);
    mux.arm();
    sys.kernel().startProcess(target);
    sys.run();
    mux.disarm();

    EXPECT_GE(mux.rotations(), 4u);
    auto est = mux.estimates();
    const hw::EventVector &truth =
        target->execContext()->totalEvents();
    // Branches: 12500/chunk * 40 chunks.
    double true_branches =
        static_cast<double>(at(truth, hw::HwEvent::branchRetired));
    ASSERT_GT(true_branches, 0.0);
    EXPECT_LT(stats::pctDiff(est[0], true_branches), 5.0);
}

TEST(Multiplex, FixedEventsAlwaysExact)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    FixedWorkSource src = computeSource(20, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);

    MultiplexedPmuSession::Options opts;
    opts.events = eightEvents();
    opts.events.push_back(hw::HwEvent::instRetired); // fixed ctr
    opts.rotateInterval = msToTicks(1);
    MultiplexedPmuSession mux(sys, target->pid(), opts);
    mux.arm();
    sys.kernel().startProcess(target);
    sys.run();
    mux.disarm();

    auto est = mux.estimates();
    // instRetired rides a fixed counter in every group: exact.
    EXPECT_NEAR(est.back(), 20000000.0, 1.0);
    // And its enabled time equals the monitored time.
    EXPECT_EQ(mux.enabledTime().back(), mux.monitoredTime());
}

TEST(Multiplex, BurstyWorkloadMisestimates)
{
    // The paper's precision argument: a two-phase program whose
    // event of interest fires only in one phase.  With 2 groups and
    // a coarse rotation, the group holding ARITH_MUL may see a
    // non-representative slice of the run.
    System sys(hw::MachineConfig::corei7_920(), 3, quietCosts());

    workload::Phase quiet;
    quiet.name = "quiet";
    quiet.instructions = 20000000;
    quiet.branchFrac = 0.1;
    quiet.mulFrac = 0.0;
    quiet.baseIpc = 2.0;
    workload::Phase burst;
    burst.name = "burst";
    burst.instructions = 4000000;
    burst.mulFrac = 0.5;
    burst.baseIpc = 2.0;
    workload::PhaseWorkload wl(
        "bursty", {quiet, burst, quiet}, 0x1000,
        sys.forkRng(1));
    Process *target =
        sys.kernel().createWorkload("bursty", &wl, 0);

    MultiplexedPmuSession::Options opts;
    opts.events = eightEvents();
    opts.rotateInterval = msToTicks(4);
    MultiplexedPmuSession mux(sys, target->pid(), opts);
    mux.arm();
    sys.kernel().startProcess(target);
    sys.run();
    mux.disarm();

    auto est = mux.estimates();
    const hw::EventVector &truth =
        target->execContext()->totalEvents();
    double true_mul =
        static_cast<double>(at(truth, hw::HwEvent::arithMul));
    ASSERT_GT(true_mul, 0.0);
    // ARITH_MUL is options_.events[4]; its estimate error is far
    // beyond the stationary case's (burst landed unevenly across
    // rotation windows).
    double err = stats::pctDiff(est[4], true_mul);
    EXPECT_GT(err, 5.0);
}

TEST(Multiplex, GatedBySwitches)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    FixedWorkSource src_t = computeSource(20, 1000000, 2.0);
    FixedWorkSource src_o = computeSource(20, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src_t, 0);
    Process *other = sys.kernel().createWorkload("o", &src_o, 0);

    MultiplexedPmuSession::Options opts;
    opts.events = eightEvents();
    opts.rotateInterval = msToTicks(1);
    MultiplexedPmuSession mux(sys, target->pid(), opts);
    mux.arm();
    sys.kernel().startProcess(other);
    sys.kernel().startProcess(target);
    sys.run();
    mux.disarm();

    // Monitored time covers only the target's share of the core.
    EXPECT_LT(mux.monitoredTime(), msToTicks(6));
    EXPECT_GT(mux.monitoredTime(), msToTicks(3));
    // Estimated branches still near truth (both halves stationary).
    auto est = mux.estimates();
    const hw::EventVector &truth =
        target->execContext()->totalEvents();
    EXPECT_LT(stats::pctDiff(
                  est[0],
                  static_cast<double>(
                      at(truth, hw::HwEvent::branchRetired))),
              8.0);
}
