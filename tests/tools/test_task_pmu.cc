#include <gtest/gtest.h>

#include "kernel/system.hh"
#include "tools/task_pmu.hh"
#include "workload/microbench.hh"

using namespace klebsim;
using namespace klebsim::kernel;
using klebsim::tools::TaskPmuSession;
using klebsim::workload::FixedWorkSource;
using klebsim::workload::computeSource;

namespace
{

CostModel
quietCosts()
{
    CostModel c;
    c.costSigma = 0.0;
    c.runSigma = 0.0;
    return c;
}

} // namespace

TEST(TaskPmu, CountsOnlyTargetUserInstructions)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    FixedWorkSource src_t = computeSource(10, 1000000, 2.0);
    FixedWorkSource src_o = computeSource(10, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src_t, 0);
    Process *other = sys.kernel().createWorkload("o", &src_o, 0);

    TaskPmuSession pmu(sys.kernel(), target->pid(),
                       {hw::HwEvent::instRetired,
                        hw::HwEvent::branchRetired});
    pmu.arm();
    sys.kernel().startProcess(other);
    sys.kernel().startProcess(target);
    sys.run();

    EXPECT_EQ(pmu.read(0), 10000000u);
    EXPECT_EQ(pmu.read(1), 10 * 125000u);
    auto all = pmu.readAll();
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0], 10000000u);
}

TEST(TaskPmu, CountingFlagTracksTarget)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    FixedWorkSource src = computeSource(10, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);
    TaskPmuSession pmu(sys.kernel(), target->pid(),
                       {hw::HwEvent::instRetired});
    pmu.arm();
    EXPECT_FALSE(pmu.counting());
    sys.kernel().startProcess(target);
    sys.run(msToTicks(1));
    EXPECT_TRUE(pmu.counting());
    sys.run();
    EXPECT_FALSE(pmu.counting());
}

TEST(TaskPmu, DisarmStopsCounting)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    FixedWorkSource src = computeSource(20, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);
    TaskPmuSession pmu(sys.kernel(), target->pid(),
                       {hw::HwEvent::instRetired});
    pmu.arm();
    sys.kernel().startProcess(target);
    sys.run(msToTicks(1));
    pmu.disarm();
    std::uint64_t at_disarm = pmu.read(0);
    sys.run();
    EXPECT_EQ(pmu.read(0), at_disarm);
}

TEST(TaskPmu, ArmWhileTargetRunning)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    FixedWorkSource src = computeSource(20, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);
    sys.kernel().startProcess(target);
    sys.run(msToTicks(1));

    TaskPmuSession pmu(sys.kernel(), target->pid(),
                       {hw::HwEvent::instRetired});
    pmu.arm();
    EXPECT_TRUE(pmu.counting()); // picked up mid-run
    sys.run();
    // Counted only the part after arming.
    EXPECT_LT(pmu.read(0), 20000000u);
    EXPECT_GT(pmu.read(0), 0u);
}
