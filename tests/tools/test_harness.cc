#include <gtest/gtest.h>

#include "tools/harness.hh"
#include "workload/microbench.hh"

using namespace klebsim;
using namespace klebsim::tools;
using klebsim::workload::FixedWorkSource;
using klebsim::workload::computeChunk;

namespace
{

RunConfig
smallConfig(ToolKind tool)
{
    RunConfig cfg;
    cfg.tool = tool;
    cfg.costs.costSigma = 0.0;
    cfg.costs.runSigma = 0.0;
    cfg.period = msToTicks(10);
    cfg.expectedLifetime = msToTicks(37);
    cfg.expectedInstructions = 200000000;
    cfg.workloadFactory = [](Addr, Random) {
        std::vector<hw::WorkChunk> chunks(
            200, computeChunk(1000000, 2.0));
        return std::make_unique<FixedWorkSource>(
            std::move(chunks));
    };
    return cfg;
}

} // namespace

TEST(Harness, ToolNames)
{
    EXPECT_STREQ(toolName(ToolKind::none), "no-profiling");
    EXPECT_STREQ(toolName(ToolKind::kleb), "K-LEB");
    EXPECT_STREQ(toolName(ToolKind::perfStat), "perf stat");
    EXPECT_EQ(allTools().size(), 6u);
}

TEST(Harness, BaselineRun)
{
    RunResult r = runOnce(smallConfig(ToolKind::none));
    EXPECT_TRUE(r.supported);
    EXPECT_NEAR(r.seconds, 0.0375, 0.002);
    EXPECT_EQ(at(r.trueTotals, hw::HwEvent::instRetired),
              200000000u);
    EXPECT_TRUE(r.totals.empty());
}

TEST(Harness, EveryToolRuns)
{
    for (ToolKind tool : allTools()) {
        RunResult r = runOnce(smallConfig(tool));
        ASSERT_TRUE(r.supported) << toolName(tool);
        EXPECT_GT(r.seconds, 0.03) << toolName(tool);
        if (tool != ToolKind::none) {
            ASSERT_EQ(r.totals.size(), 4u) << toolName(tool);
            EXPECT_GT(r.samples, 0u) << toolName(tool);
        }
    }
}

TEST(Harness, ToolTotalsAgreeAcrossTools)
{
    // Fig. 9's premise: the same deterministic program measured by
    // different tools yields nearly identical architectural counts.
    std::vector<std::uint64_t> inst_counts;
    for (ToolKind tool : {ToolKind::kleb, ToolKind::perfStat,
                          ToolKind::perfRecord, ToolKind::papi,
                          ToolKind::limit}) {
        RunResult r = runOnce(smallConfig(tool));
        ASSERT_TRUE(r.supported);
        inst_counts.push_back(r.totals[0]);
    }
    std::uint64_t ref = inst_counts[0];
    for (std::uint64_t v : inst_counts) {
        double diff = std::abs(static_cast<double>(v) -
                               static_cast<double>(ref)) /
                      static_cast<double>(ref) * 100.0;
        // perf record's last-sample tail error scales with 1 /
        // lifetime; this scaled-down 37 ms run tolerates ~0.8 %,
        // while the full-length bench asserts the paper's 0.3 %.
        EXPECT_LT(diff, 0.8);
    }
}

TEST(Harness, LimitUnsupportedWithoutPatch)
{
    RunConfig cfg = smallConfig(ToolKind::limit);
    cfg.limitPatchAvailable = false;
    RunResult r = runOnce(cfg);
    EXPECT_FALSE(r.supported);
}

TEST(Harness, RunManyProducesDistinctSeeds)
{
    RunConfig cfg = smallConfig(ToolKind::none);
    cfg.costs.costSigma = 0.08;
    auto secs = runMany(cfg, 3);
    ASSERT_EQ(secs.size(), 3u);
    for (double s : secs)
        EXPECT_GT(s, 0.03);
}

TEST(Harness, OverheadPct)
{
    EXPECT_NEAR(overheadPct({1.05, 1.07}, {1.0, 1.0}), 6.0, 1e-9);
    EXPECT_NEAR(overheadPct({1.0}, {1.0}), 0.0, 1e-9);
}

TEST(Harness, KLebStatusPropagated)
{
    RunResult r = runOnce(smallConfig(ToolKind::kleb));
    EXPECT_GT(r.klebStatus.samplesRecorded, 0u);
    EXPECT_EQ(r.klebStatus.samplesDropped, 0u);
    ASSERT_TRUE(r.series.has_value());
    EXPECT_EQ(r.series->size(), r.samples);
}
