#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "fleet/monitor_tree.hh"

using namespace klebsim;
using fleet::MonitorTree;
using fleet::Reduction;

TEST(Reduction, LifetimeStatsMatchInputs)
{
    Reduction r;
    for (int i = 1; i <= 100; ++i)
        r.add(static_cast<double>(i));
    EXPECT_EQ(r.lifetime().count(), 100u);
    EXPECT_DOUBLE_EQ(r.lifetime().mean(), 50.5);
    EXPECT_DOUBLE_EQ(r.lifetime().min(), 1.0);
    EXPECT_DOUBLE_EQ(r.lifetime().max(), 100.0);
}

TEST(Reduction, WindowTracksOnlyRecentValues)
{
    Reduction r;
    // Push more than one window's worth; the window must only see
    // the most recent Reduction::window values.
    const int total = static_cast<int>(Reduction::window) + 20;
    for (int i = 1; i <= total; ++i)
        r.add(static_cast<double>(i));
    EXPECT_EQ(r.windowCount(), Reduction::window);
    EXPECT_DOUBLE_EQ(r.windowMin(),
                     static_cast<double>(total -
                                         Reduction::window + 1));
    EXPECT_DOUBLE_EQ(r.windowMax(), static_cast<double>(total));
    // Lifetime still remembers everything.
    EXPECT_DOUBLE_EQ(r.lifetime().min(), 1.0);
}

TEST(Reduction, WindowedPercentiles)
{
    Reduction r;
    EXPECT_DOUBLE_EQ(r.windowPercentile(50.0), 0.0); // empty
    for (int i = 1; i <= 5; ++i)
        r.add(static_cast<double>(i)); // {1,2,3,4,5}
    EXPECT_DOUBLE_EQ(r.windowPercentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(r.windowPercentile(50.0), 3.0);
    EXPECT_DOUBLE_EQ(r.windowPercentile(100.0), 5.0);
    // Linear interpolation between closest ranks (numpy default):
    // p25 of {1..5} sits at rank 1.0 exactly -> 2.0; p90 at rank
    // 3.6 -> 4.6.
    EXPECT_DOUBLE_EQ(r.windowPercentile(25.0), 2.0);
    EXPECT_NEAR(r.windowPercentile(90.0), 4.6, 1e-12);
}

TEST(Reduction, EncodeDecodeRoundTripsBitExactly)
{
    Reduction r;
    for (int i = 0; i < 41; ++i)
        r.add(0.1 * i - 1.7);

    std::vector<std::uint64_t> words;
    r.encode(&words);

    Reduction back;
    const std::uint64_t *cur = words.data();
    const std::uint64_t *end = words.data() + words.size();
    ASSERT_TRUE(back.decode(&cur, end));
    EXPECT_EQ(cur, end);

    // Bit-exact: continue both reductions identically and compare.
    r.add(3.25);
    back.add(3.25);
    EXPECT_EQ(r.lifetime().count(), back.lifetime().count());
    EXPECT_EQ(r.lifetime().mean(), back.lifetime().mean());
    EXPECT_EQ(r.lifetime().variance(), back.lifetime().variance());
    EXPECT_EQ(r.windowPercentile(99.0), back.windowPercentile(99.0));

    // Truncated input is rejected, not misread.
    Reduction trunc;
    cur = words.data();
    EXPECT_FALSE(trunc.decode(&cur, words.data() + 2));
}

TEST(MonitorTree, TopologyAndFanOut)
{
    MonitorTree tree(5, 2, 2); // 5 machines, 2 cores, racks of 2
    EXPECT_EQ(tree.racks(), 3u); // last rack partial

    tree.observe(0, 0, 2.0, 1.0);
    tree.observe(0, 1, 1.0, 3.0);
    tree.observe(4, 0, 0.5, 9.0);

    EXPECT_EQ(tree.observations(), 3u);
    EXPECT_EQ(tree.core(0, 0).ipc.lifetime().count(), 1u);
    EXPECT_EQ(tree.core(0, 1).ipc.lifetime().count(), 1u);
    EXPECT_EQ(tree.machine(0).ipc.lifetime().count(), 2u);
    EXPECT_DOUBLE_EQ(tree.machine(0).ipc.lifetime().mean(), 1.5);
    EXPECT_EQ(tree.rack(0).ipc.lifetime().count(), 2u);
    EXPECT_EQ(tree.rack(1).ipc.lifetime().count(), 0u);
    EXPECT_EQ(tree.rack(2).ipc.lifetime().count(), 1u);
    EXPECT_EQ(tree.fleet().ipc.lifetime().count(), 3u);
    EXPECT_DOUBLE_EQ(tree.fleet().mpki.lifetime().max(), 9.0);
}

TEST(MonitorTree, EncodeDecodeRoundTripsAndDigestsAgree)
{
    MonitorTree tree(4, 2, 4);
    for (int i = 0; i < 100; ++i)
        tree.observe(i % 4, i % 2, 1.0 + 0.01 * i, 0.5 * (i % 7));

    std::vector<std::uint8_t> bytes;
    tree.encode(&bytes);

    MonitorTree back(4, 2, 4);
    ASSERT_TRUE(back.decode(bytes));
    EXPECT_EQ(back.observations(), tree.observations());
    EXPECT_EQ(back.digest(), tree.digest());

    // The restored tree must continue bit-identically.
    tree.observe(3, 1, 1.875, 2.0);
    back.observe(3, 1, 1.875, 2.0);
    EXPECT_EQ(back.digest(), tree.digest());
    EXPECT_EQ(back.fleet().ipc.lifetime().variance(),
              tree.fleet().ipc.lifetime().variance());
}

TEST(MonitorTree, DecodeRejectsMalformedInput)
{
    MonitorTree tree(2, 1, 2);
    tree.observe(0, 0, 1.0, 1.0);
    std::vector<std::uint8_t> bytes;
    tree.encode(&bytes);

    // Topology mismatch.
    MonitorTree other(3, 1, 2);
    EXPECT_FALSE(other.decode(bytes));

    // Truncation.
    MonitorTree same(2, 1, 2);
    std::vector<std::uint8_t> cut(bytes.begin(),
                                  bytes.end() - 8);
    EXPECT_FALSE(same.decode(cut));

    // Corrupt magic.
    std::vector<std::uint8_t> bad = bytes;
    bad[0] ^= 0xff;
    EXPECT_FALSE(same.decode(bad));

    // Trailing garbage (length must match exactly).
    std::vector<std::uint8_t> extra = bytes;
    extra.insert(extra.end(), 8, 0);
    EXPECT_FALSE(same.decode(extra));

    // The original still decodes after all the failed attempts.
    EXPECT_TRUE(same.decode(bytes));
    EXPECT_EQ(same.digest(), tree.digest());
}

TEST(MonitorTree, DigestDetectsSingleObservationDifference)
{
    MonitorTree a(2, 2, 2);
    MonitorTree b(2, 2, 2);
    for (int i = 0; i < 50; ++i) {
        a.observe(i % 2, i % 2, 1.0 + i, 2.0);
        b.observe(i % 2, i % 2, 1.0 + i, 2.0);
    }
    EXPECT_EQ(a.digest(), b.digest());
    b.observe(0, 0, 1.0, 2.0);
    EXPECT_NE(a.digest(), b.digest());
}
