#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "analysis/invariants.hh"
#include "fleet/fleet.hh"

using namespace klebsim;
using namespace klebsim::ticks_literals;
using analysis::InvariantChecker;
using fleet::FleetConfig;
using fleet::FleetResult;
using fleet::runFleet;

namespace
{

/** Run checkFleetBalance and assert it came back clean. */
void
expectBalanced(const FleetResult &r, const std::string &label)
{
    InvariantChecker checker;
    checker.checkFleetBalance(r, label);
    EXPECT_TRUE(checker.ok()) << checker.report();
    EXPECT_GT(checker.checksPerformed(), 0u);
}

FleetConfig
smallFleet(std::uint64_t seed)
{
    FleetConfig cfg;
    cfg.machines = 6;
    cfg.coresPerMachine = 2;
    cfg.rackSize = 4;
    cfg.seed = seed;
    cfg.jobs = 1;
    return cfg;
}

/** The chaos mix every robustness sweep injects. */
const char *const chaosSpec =
    "machine.crash=0.4;link.drop=0.08;link.delay=0.15;"
    "link.delay.by=500us";

} // namespace

TEST(FleetChaos, FaultFreeRunBalancesAndFillsTheTree)
{
    FleetResult r = runFleet(smallFleet(1));
    expectBalanced(r, "fault-free");

    EXPECT_TRUE(r.simFailures.empty());
    EXPECT_TRUE(r.holes.empty());
    EXPECT_EQ(r.collector.restarts, 0u);
    EXPECT_GT(r.collector.accepted, 0u);
    EXPECT_GT(r.tree.observations(), 0u);
    EXPECT_GT(r.aggregateAccounted, 0u);

    // Healthy machines keep everything they produce.
    for (const auto &a : r.accounts) {
        EXPECT_FALSE(a.isQuarantined);
        EXPECT_EQ(a.dropped, 0u);
        EXPECT_GT(a.kept, 0u);
    }

    // The aggregate CSV leads with the pinned header and carries
    // one row per rack plus the fleet row.
    ASSERT_NE(r.csv.find(fleet::fleetCsvHeader), std::string::npos);
    EXPECT_EQ(r.csv.find(fleet::fleetCsvHeader), 0u);
    EXPECT_NE(r.csv.find("\nfleet,"), std::string::npos);
    EXPECT_NE(r.csv.find("\nrack0,"), std::string::npos);
}

TEST(FleetChaos, AggregateIsJobsInvariant)
{
    FleetConfig one = smallFleet(7);
    FleetConfig four = one;
    four.jobs = 4;

    FleetResult a = runFleet(one);
    FleetResult b = runFleet(four);

    EXPECT_EQ(a.csvDigest, b.csvDigest);
    EXPECT_EQ(a.treeDigest, b.treeDigest);
    EXPECT_EQ(a.csv, b.csv);
    EXPECT_EQ(a.aggregateAccounted, b.aggregateAccounted);
}

TEST(FleetChaos, JobsInvariantUnderFullChaos)
{
    FleetConfig one = smallFleet(11);
    one.faultSpec = chaosSpec;
    FleetConfig four = one;
    four.jobs = 4;

    FleetResult a = runFleet(one);
    FleetResult b = runFleet(four);
    expectBalanced(a, "chaos-jobs1");
    expectBalanced(b, "chaos-jobs4");

    EXPECT_EQ(a.csvDigest, b.csvDigest);
    EXPECT_EQ(a.treeDigest, b.treeDigest);
    EXPECT_EQ(a.csv, b.csv);
}

TEST(FleetChaos, SixteenSeedChaosSweepStaysBalanced)
{
    std::uint64_t crashed_fleets = 0;
    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
        FleetConfig cfg = smallFleet(seed);
        cfg.machines = 4;
        cfg.coresPerMachine = 1;
        cfg.faultSpec = chaosSpec;
        FleetResult r = runFleet(cfg);
        expectBalanced(r, "sweep seed " + std::to_string(seed));
        for (const auto &a : r.accounts)
            if (a.crashed)
                ++crashed_fleets;
    }
    // With machine.crash=0.4 over 64 machine draws the sweep must
    // actually have exercised the crash path.
    EXPECT_GT(crashed_fleets, 0u);
}

TEST(FleetChaos, MachineCrashBecomesExplicitHolesNeverSilentZeros)
{
    FleetConfig cfg = smallFleet(3);
    cfg.faultSpec = "machine.crash=1.0"; // every machine dies
    FleetResult r = runFleet(cfg);
    expectBalanced(r, "all-crash");

    EXPECT_FALSE(r.holes.empty());
    std::uint64_t vanished = 0;
    for (const auto &a : r.accounts) {
        EXPECT_TRUE(a.crashed);
        EXPECT_TRUE(a.isQuarantined);
        vanished += a.vanished;
    }
    // A crashed machine's unsent tail is vanished, not zeroed.
    EXPECT_GT(vanished, 0u);
    EXPECT_EQ(r.collector.quarantinedMachines, cfg.machines);
}

TEST(FleetChaos, LinkDropIsAccountedPerMachine)
{
    FleetConfig cfg = smallFleet(5);
    cfg.faultSpec = "link.drop=0.5";
    FleetResult r = runFleet(cfg);
    expectBalanced(r, "droppy-link");

    std::uint64_t dropped = 0, sent = 0;
    for (const auto &a : r.accounts) {
        dropped += a.dropped;
        sent += a.sent;
    }
    EXPECT_GT(dropped, 0u);
    EXPECT_LT(dropped, sent); // some records always get through
}

TEST(FleetChaos, CollectorCrashConvergesBitForBit)
{
    FleetConfig plain = smallFleet(9);
    FleetConfig crashy = plain;
    crashy.faultSpec = "collector.crash=1ms";

    FleetResult a = runFleet(plain);
    FleetResult b = runFleet(crashy);
    expectBalanced(b, "collector-crash");

    EXPECT_EQ(a.collector.restarts, 0u);
    EXPECT_EQ(b.collector.restarts, 1u);
    EXPECT_GT(b.collector.replayedRecords, 0u);

    // Restart + journal replay converges to the exact aggregate
    // the uncrashed collector computed.
    EXPECT_EQ(b.treeDigest, a.treeDigest);
    EXPECT_EQ(b.csvDigest, a.csvDigest);
    EXPECT_EQ(b.csv, a.csv);
}

TEST(FleetChaos, CollectorCrashUnderChaosStaysDeterministic)
{
    FleetConfig cfg = smallFleet(13);
    cfg.faultSpec = std::string(chaosSpec) + ";collector.crash=1ms";
    FleetConfig again = cfg;
    again.jobs = 4;

    FleetResult a = runFleet(cfg);
    FleetResult b = runFleet(again);
    expectBalanced(a, "chaos-crash");

    EXPECT_EQ(a.collector.restarts, 1u);
    EXPECT_EQ(a.treeDigest, b.treeDigest);
    EXPECT_EQ(a.csvDigest, b.csvDigest);
}
