#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fleet/collector.hh"
#include "fleet/wire.hh"

using namespace klebsim;
using namespace klebsim::ticks_literals;
using fleet::Collector;
using fleet::CollectorConfig;
using fleet::Delivery;
using fleet::WireRecord;

namespace
{

Delivery
mkDelivery(Tick arrival, fleet::MachineId m, std::uint16_t core,
           std::uint64_t seq, Tick ts, std::uint64_t inst,
           std::uint64_t cycles, std::uint64_t llc,
           bool final = false)
{
    Delivery d;
    d.arrival = arrival;
    d.rec.machine = m;
    d.rec.core = core;
    d.rec.epoch = 0;
    d.rec.seq = seq;
    d.rec.ts = ts;
    d.rec.final = final;
    d.rec.counts = {inst, cycles, llc};
    return d;
}

/**
 * A healthy periodic stream: @p n records per core for @p machines
 * machines, cumulative counts growing linearly, arrivals spaced by
 * @p spacing.
 */
std::vector<Delivery>
healthyStream(std::uint32_t machines, std::uint32_t cores, int n,
              Tick spacing)
{
    std::vector<Delivery> out;
    for (int i = 0; i < n; ++i) {
        for (std::uint32_t m = 0; m < machines; ++m) {
            for (std::uint32_t c = 0; c < cores; ++c) {
                Tick at = spacing * (i + 1);
                std::uint64_t k = i + 1;
                out.push_back(mkDelivery(
                    at, m, c, i, at, 2000 * k, 1000 * k, 10 * k,
                    i == n - 1));
            }
        }
    }
    std::sort(out.begin(), out.end(), fleet::deliveryBefore);
    return out;
}

CollectorConfig
smallConfig(std::uint32_t machines = 2, std::uint32_t cores = 1)
{
    CollectorConfig cfg;
    cfg.machines = machines;
    cfg.coresPerMachine = cores;
    cfg.rackSize = 2;
    return cfg;
}

} // namespace

TEST(Collector, QuarantineAllowanceIsPureOfConfig)
{
    CollectorConfig cfg = smallConfig();
    cfg.heartbeatTimeout = 1_ms;
    cfg.probeBudget = 3;
    Collector col(cfg);
    // H * (2^(budget+1) - 1): 1ms * 15.
    EXPECT_EQ(col.quarantineAfter(), 15_ms);

    cfg.probeBudget = 0;
    Collector tight(cfg);
    EXPECT_EQ(tight.quarantineAfter(), 1_ms);
}

TEST(Collector, MergesHealthyStreamAndDerivesMetrics)
{
    Collector col(smallConfig(2, 2));
    auto stream = healthyStream(2, 2, 10, 20_us);
    col.ingest(stream);
    col.finish(stream.back().arrival + 1);

    auto st = col.stats();
    EXPECT_EQ(st.accepted, stream.size());
    EXPECT_EQ(st.reordered, 0u);
    EXPECT_EQ(st.quarantinedMachines, 0u);
    EXPECT_TRUE(col.holes().empty());

    const auto &tree = col.tree();
    EXPECT_EQ(tree.observations(), stream.size());
    // Each delta is 2000 inst / 1000 cycles / 10 misses: IPC 2.0,
    // MPKI 5.0, on every node of the tree.
    EXPECT_DOUBLE_EQ(tree.fleet().ipc.lifetime().mean(), 2.0);
    EXPECT_DOUBLE_EQ(tree.fleet().mpki.lifetime().mean(), 5.0);
    EXPECT_DOUBLE_EQ(tree.core(1, 1).ipc.windowPercentile(99.0),
                     2.0);

    // Clean shutdown: both machines sent finals on every core, so
    // the end-of-stream sweep quarantined nobody.
    EXPECT_EQ(col.peer(0).finals, 2u);
    EXPECT_FALSE(col.peer(0).quarantined);
}

TEST(Collector, DiscardsReorderedRecords)
{
    Collector col(smallConfig(1, 1));
    std::vector<Delivery> stream = {
        mkDelivery(10_us, 0, 0, 0, 10_us, 2000, 1000, 10),
        mkDelivery(20_us, 0, 0, 1, 30_us, 6000, 3000, 30),
        // Arrives later but carries an older machine timestamp and
        // smaller cumulative counts: must be discarded, not merged
        // as a negative delta.
        mkDelivery(25_us, 0, 0, 2, 20_us, 4000, 2000, 20),
    };
    col.ingest(stream);
    col.finish(30_us);

    auto st = col.stats();
    EXPECT_EQ(st.accepted, 2u);
    EXPECT_EQ(st.reordered, 1u);
    EXPECT_EQ(col.peer(0).reordered, 1u);
    EXPECT_EQ(col.tree().observations(), 2u);
    EXPECT_DOUBLE_EQ(col.tree().fleet().ipc.lifetime().mean(), 2.0);
}

TEST(Collector, StragglersAreProbedThenQuarantined)
{
    CollectorConfig cfg = smallConfig(1, 1);
    cfg.heartbeatTimeout = 100_us;
    cfg.probeBudget = 2;
    Collector col(cfg);
    const Tick allowance = col.quarantineAfter(); // 700us

    std::vector<Delivery> stream = {
        mkDelivery(10_us, 0, 0, 0, 10_us, 2000, 1000, 10),
        // Silent past one heartbeat but within the allowance: a
        // straggler that gets probed, then readmitted.
        mkDelivery(10_us + 250_us, 0, 0, 1, 260_us, 4000, 2000, 20),
        // Silent past the full allowance: quarantined, and the late
        // record is discarded into the quarantine bucket.
        mkDelivery(260_us + allowance + 1, 0, 0, 2, 1_ms, 6000,
                   3000, 30),
    };
    col.ingest(stream);

    const auto &p = col.peer(0);
    EXPECT_TRUE(p.quarantined);
    EXPECT_EQ(p.kept, 2u);
    EXPECT_EQ(p.lateDiscarded, 1u);
    EXPECT_EQ(p.stragglers, 1u);
    // The straggler silence (250us) covered probes at 100us and
    // 300us-deadline... only the first backoff step (>= 1H) fired.
    EXPECT_GE(col.stats().probesSent, 1u);
    EXPECT_EQ(col.stats().quarantinedMachines, 1u);

    ASSERT_EQ(col.holes().size(), 1u);
    EXPECT_EQ(col.holes()[0].machine, 0u);
    EXPECT_LT(col.holes()[0].from, col.holes()[0].to);

    // Once quarantined, everything else from the machine is late.
    col.ingest({mkDelivery(2 * (260_us + allowance), 0, 0, 3, 2_ms,
                           8000, 4000, 40)});
    EXPECT_EQ(col.peer(0).lateDiscarded, 2u);
    EXPECT_EQ(col.tree().observations(), 2u);
}

TEST(Collector, FinishSweepQuarantinesSilentMachines)
{
    CollectorConfig cfg = smallConfig(3, 1);
    cfg.heartbeatTimeout = 100_us;
    cfg.probeBudget = 1;
    Collector col(cfg);

    // Machine 0 finishes cleanly; machine 1 speaks once then goes
    // silent; machine 2 never speaks at all.
    std::vector<Delivery> stream = {
        mkDelivery(10_us, 0, 0, 0, 10_us, 2000, 1000, 10, true),
        mkDelivery(12_us, 1, 0, 0, 12_us, 2000, 1000, 10),
    };
    col.ingest(stream);
    col.finish(10_ms);

    EXPECT_FALSE(col.peer(0).quarantined);
    EXPECT_TRUE(col.peer(1).quarantined);
    EXPECT_TRUE(col.peer(2).quarantined);
    EXPECT_EQ(col.stats().quarantinedMachines, 2u);
    ASSERT_EQ(col.holes().size(), 2u);
    EXPECT_EQ(col.holes()[0].machine, 1u);
    EXPECT_EQ(col.holes()[1].machine, 2u);
    EXPECT_EQ(col.holes()[1].cause, "silence");
    EXPECT_EQ(col.holes()[1].from, 0u); // never seen: hole from 0
}

TEST(Collector, BackpressureIsCountedWhenArrivalsOutrunDrain)
{
    CollectorConfig cfg = smallConfig(1, 1);
    cfg.drainCost = 10_us;       // absurdly slow collector
    cfg.backpressureLag = 20_us;
    Collector col(cfg);

    // 16 records arriving nearly at once: the drain clock falls
    // behind by ~10us per record, blowing the 20us lag budget.
    std::vector<Delivery> stream;
    for (int i = 0; i < 16; ++i) {
        std::uint64_t k = i + 1;
        stream.push_back(mkDelivery(1_us + i, 0, 0, i, 1_us + i,
                                    2000 * k, 1000 * k, 10 * k));
    }
    col.ingest(stream);

    auto st = col.stats();
    EXPECT_GT(st.backpressureEvents, 0u);
    EXPECT_GT(st.maxLag, cfg.backpressureLag);
    EXPECT_EQ(st.accepted, 16u); // lag never loses records
}

TEST(Collector, CrashRestartReplaysToIdenticalTree)
{
    auto stream = healthyStream(2, 2, 40, 20_us);

    // Deliberately coprime with the crash point so the crash lands
    // between checkpoints and there is a journal tail to replay.
    CollectorConfig cfg = smallConfig(2, 2);
    cfg.checkpointEvery = 13;

    Collector healthy(cfg);
    healthy.ingest(stream);
    healthy.finish(stream.back().arrival + 1);

    // Crash roughly mid-stream on the drain clock.
    CollectorConfig crashy = cfg;
    crashy.crashAt = stream[stream.size() / 2].arrival;
    Collector crashed(crashy);
    crashed.ingest(stream);
    crashed.finish(stream.back().arrival + 1);

    EXPECT_EQ(crashed.stats().restarts, 1u);
    EXPECT_GT(crashed.stats().replayedRecords, 0u);
    EXPECT_GT(crashed.stats().checkpoints, 0u);

    // The restored + replayed tree is bit-for-bit the healthy one.
    EXPECT_EQ(crashed.tree().digest(), healthy.tree().digest());
    EXPECT_EQ(crashed.tree().observations(),
              healthy.tree().observations());
    EXPECT_EQ(crashed.stats().accepted, healthy.stats().accepted);
    EXPECT_EQ(crashed.peer(1).kept, healthy.peer(1).kept);
    EXPECT_EQ(crashed.peer(1).finals, healthy.peer(1).finals);
}

TEST(Collector, CrashBeforeFirstCheckpointReplaysFromScratch)
{
    auto stream = healthyStream(1, 1, 10, 20_us);

    CollectorConfig cfg = smallConfig(1, 1);
    cfg.checkpointEvery = 1000; // never reached before the crash

    Collector healthy(cfg);
    healthy.ingest(stream);
    healthy.finish(stream.back().arrival + 1);

    CollectorConfig crashy = cfg;
    crashy.crashAt = stream[4].arrival;
    Collector crashed(crashy);
    crashed.ingest(stream);
    crashed.finish(stream.back().arrival + 1);

    EXPECT_EQ(crashed.stats().restarts, 1u);
    // No checkpoint existed: the whole journal prefix is replayed.
    EXPECT_GE(crashed.stats().replayedRecords, 4u);
    EXPECT_EQ(crashed.tree().digest(), healthy.tree().digest());
}

TEST(Collector, JournalIsWrittenAheadOfDecisions)
{
    Collector col(smallConfig(1, 1));
    std::vector<Delivery> stream = {
        mkDelivery(10_us, 0, 0, 0, 10_us, 2000, 1000, 10),
        // A reordered record is journaled too: replay must be able
        // to re-decide the discard, so the journal sees every
        // delivery, not just the accepted ones.
        mkDelivery(20_us, 0, 0, 1, 5_us, 1000, 500, 5),
    };
    col.ingest(stream);
    EXPECT_EQ(col.stats().accepted, 1u);
    EXPECT_EQ(col.stats().reordered, 1u);
    EXPECT_EQ(col.journal().samplesAppended(), 2u);
}
