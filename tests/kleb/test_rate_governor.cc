#include <gtest/gtest.h>

#include "kleb/rate_governor.hh"

using namespace klebsim;
using namespace klebsim::kleb;
using namespace klebsim::ticks_literals;

namespace
{

/**
 * Governor with a transparent cost model: each drained sample is
 * charged 1 us, nothing per drain, no smoothing (alpha = 1) and no
 * settle window, so every expectation below is a one-step
 * computation on paper.
 */
RateGovernor::Config
plainConfig()
{
    RateGovernor::Config cfg;
    cfg.budget = 0.01;
    cfg.costPerSample = usToTicks(1);
    cfg.costPerDrain = 0;
    cfg.alpha = 1.0;
    cfg.settleObservations = 0;
    return cfg;
}

/**
 * Drive one drain cycle of @p interval with @p drained samples and
 * return the proposal.  Keeps the test's clock in one place.
 */
std::optional<Tick>
cycle(RateGovernor &gov, Tick &now, Tick interval,
      std::size_t drained)
{
    now += interval;
    return gov.observe(now, drained);
}

} // namespace

TEST(RateGovernor, FirstObservationOnlyAnchorsTheClock)
{
    RateGovernor gov(plainConfig(), 100_us);
    // However lopsided the first batch looks, there is no elapsed
    // interval to divide by yet.
    EXPECT_FALSE(gov.observe(10_ms, 5000).has_value());
    EXPECT_EQ(gov.stats().observations, 1u);
    EXPECT_EQ(gov.stats().proposals, 0u);
    EXPECT_EQ(gov.overheadEstimate(), 0.0);
}

TEST(RateGovernor, BacksOffAboveBudget)
{
    RateGovernor gov(plainConfig(), 100_us);
    Tick now = 0;
    cycle(gov, now, 10_ms, 0);
    // 250 us spent over 10 ms = 2.5% against a 1% budget.
    auto p = cycle(gov, now, 10_ms, 250);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(*p, 200_us);
    // The governor holds its period until the controller confirms.
    EXPECT_EQ(gov.period(), 100_us);
    gov.applied(*p);
    EXPECT_EQ(gov.period(), 200_us);
    EXPECT_EQ(gov.stats().backOffs, 1u);
    EXPECT_EQ(gov.stats().proposals, 1u);
}

TEST(RateGovernor, SpeedsUpWellBelowBudget)
{
    RateGovernor gov(plainConfig(), 1_ms);
    Tick now = 0;
    cycle(gov, now, 10_ms, 0);
    // 10 us over 10 ms = 0.1%, under budget * lowWater = 0.45%.
    auto p = cycle(gov, now, 10_ms, 10);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(*p, 500_us);
    gov.applied(*p);
    EXPECT_EQ(gov.stats().speedUps, 1u);
}

TEST(RateGovernor, HoldsInsideTheHysteresisBand)
{
    RateGovernor gov(plainConfig(), 200_us);
    Tick now = 0;
    cycle(gov, now, 10_ms, 0);
    // 80 us over 10 ms = 0.8%: between 0.45% and 1%, so hold.
    EXPECT_FALSE(cycle(gov, now, 10_ms, 80).has_value());
    EXPECT_EQ(gov.stats().holds, 1u);
    EXPECT_EQ(gov.stats().proposals, 0u);
}

TEST(RateGovernor, ClampsToTheConfiguredFloorAndCeiling)
{
    RateGovernor::Config cfg = plainConfig();
    RateGovernor gov(cfg, cfg.minPeriod);
    Tick now = 0;
    cycle(gov, now, 10_ms, 0);
    // Far under budget at the floor: shrinking is clamped to the
    // floor itself, which is a no-op proposal, so the governor
    // holds instead of churning SET_PERIOD ioctls.
    EXPECT_FALSE(cycle(gov, now, 10_ms, 1).has_value());
    EXPECT_EQ(gov.stats().proposals, 0u);

    RateGovernor ceil(cfg, cfg.maxPeriod);
    Tick cnow = 0;
    cycle(ceil, cnow, 10_ms, 0);
    // Hopelessly over budget at the ceiling: same story backing off.
    EXPECT_FALSE(cycle(ceil, cnow, 10_ms, 5000).has_value());
}

TEST(RateGovernor, SettleWindowSuppressesProposals)
{
    RateGovernor::Config cfg = plainConfig();
    cfg.settleObservations = 2;
    RateGovernor gov(cfg, 100_us);
    Tick now = 0;
    cycle(gov, now, 10_ms, 0);
    auto p = cycle(gov, now, 10_ms, 250);
    ASSERT_TRUE(p.has_value());
    gov.applied(*p);
    // Still over budget, but the next two observations fall inside
    // the settle window and must not propose.
    EXPECT_FALSE(cycle(gov, now, 10_ms, 250).has_value());
    EXPECT_FALSE(cycle(gov, now, 10_ms, 250).has_value());
    EXPECT_TRUE(cycle(gov, now, 10_ms, 250).has_value());
}

TEST(RateGovernor, PendingProposalGatesFurtherOnes)
{
    RateGovernor gov(plainConfig(), 100_us);
    Tick now = 0;
    cycle(gov, now, 10_ms, 0);
    ASSERT_TRUE(cycle(gov, now, 10_ms, 250).has_value());
    // The controller has not reported back yet: no second proposal.
    EXPECT_FALSE(cycle(gov, now, 10_ms, 250).has_value());
    gov.rejected();
    EXPECT_EQ(gov.stats().rejected, 1u);
    // After rejection (settle = 0 here) proposing resumes at the
    // old period.
    auto again = cycle(gov, now, 10_ms, 250);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*again, 200_us);
}

TEST(RateGovernor, AdoptResetsTheObservationClock)
{
    RateGovernor gov(plainConfig(), 100_us);
    Tick now = 0;
    cycle(gov, now, 10_ms, 0);
    ASSERT_TRUE(cycle(gov, now, 10_ms, 250).has_value());
    // A re-attach adopts the module's actual period mid-proposal:
    // the pending flag is flushed, no back-off/speed-up is counted,
    // and the next observation only re-anchors the clock (the
    // outage between incarnations must not dilute the estimate).
    gov.adopt(400_us);
    EXPECT_EQ(gov.period(), 400_us);
    EXPECT_EQ(gov.stats().backOffs, 0u);
    EXPECT_EQ(gov.stats().speedUps, 0u);
    // A huge gap and a huge batch: only re-anchors, never divides
    // the outage into the estimate.
    double est = gov.overheadEstimate();
    EXPECT_FALSE(gov.observe(now + 5 * secToTicks(1.0), 9999)
                     .has_value());
    EXPECT_EQ(gov.overheadEstimate(), est);
    // The cycle after the anchor proposes again.
    EXPECT_TRUE(
        gov.observe(now + 5 * secToTicks(1.0) + 10_ms, 250)
            .has_value());
}

TEST(RateGovernor, EwmaSmoothsASpike)
{
    RateGovernor::Config cfg = plainConfig();
    cfg.alpha = 0.3;
    RateGovernor gov(cfg, 200_us);
    Tick now = 0;
    cycle(gov, now, 10_ms, 0);
    // Converge inside the band at 0.8%...
    for (int i = 0; i < 5; ++i)
        EXPECT_FALSE(cycle(gov, now, 10_ms, 80).has_value());
    // ...then one 3% spike: the smoothed estimate (0.3 * 3 + 0.7 *
    // 0.8 = 1.46%) exceeds the band, so one spike IS allowed to
    // trigger a back-off — but the estimate reflects history, not
    // just the spike.
    auto p = cycle(gov, now, 10_ms, 300);
    ASSERT_TRUE(p.has_value());
    EXPECT_NEAR(gov.overheadEstimate(), 0.0146, 1e-6);
}
