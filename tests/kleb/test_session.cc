#include <gtest/gtest.h>

#include "kernel/system.hh"
#include "kleb/session.hh"
#include "workload/microbench.hh"

using namespace klebsim;
using namespace klebsim::kernel;
using namespace klebsim::ticks_literals;
using klebsim::workload::FixedWorkSource;
using klebsim::workload::computeSource;

namespace
{

CostModel
quietCosts()
{
    CostModel c;
    c.costSigma = 0.0;
    c.runSigma = 0.0;
    return c;
}

} // namespace

TEST(Session, EndToEndMonitoring)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    FixedWorkSource src = computeSource(40, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);

    kleb::Session::Options opts;
    opts.events = {hw::HwEvent::instRetired,
                   hw::HwEvent::branchRetired};
    opts.period = 100_us;
    opts.idealTimer = true;
    kleb::Session session(sys, opts);
    session.monitor(target);
    sys.run();

    EXPECT_EQ(target->state(), ProcState::zombie);
    EXPECT_TRUE(session.finished());
    EXPECT_GT(session.samples().size(), 50u);

    // The controller drained everything the module recorded.
    kleb::KLebStatus st = session.status();
    EXPECT_EQ(st.pendingSamples, 0u);
    EXPECT_EQ(st.samplesDropped, 0u);
    EXPECT_EQ(session.samples().size(), st.samplesRecorded);

    // Final totals are the exact user-mode instruction count.
    hw::EventVector totals = session.finalTotals();
    EXPECT_EQ(at(totals, hw::HwEvent::instRetired), 40000000u);
}

TEST(Session, SeriesShapes)
{
    System sys(hw::MachineConfig::corei7_920(), 2, quietCosts());
    FixedWorkSource src = computeSource(20, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);

    kleb::Session::Options opts;
    opts.events = {hw::HwEvent::instRetired,
                   hw::HwEvent::coreCycles};
    opts.period = 200_us;
    opts.idealTimer = true;
    kleb::Session session(sys, opts);
    session.monitor(target);
    sys.run();

    stats::TimeSeries cumulative = session.series();
    ASSERT_GT(cumulative.size(), 5u);
    EXPECT_EQ(cumulative.channels(), 2u);
    EXPECT_EQ(cumulative.channelNames()[0], "INST_RETIRED");

    // Cumulative is monotonic; deltas sum back to the total.
    auto inst = cumulative.channel(0);
    for (std::size_t i = 1; i < inst.size(); ++i)
        EXPECT_GE(inst[i], inst[i - 1]);

    stats::TimeSeries deltas = session.deltaSeries();
    EXPECT_EQ(deltas.size(), cumulative.size());
    double sum = deltas.channelSum(0);
    EXPECT_DOUBLE_EQ(sum, inst.back());
}

TEST(Session, MonitoringFromFirstInstruction)
{
    System sys(hw::MachineConfig::corei7_920(), 3, quietCosts());
    FixedWorkSource src = computeSource(5, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);

    kleb::Session session(sys, kleb::Session::Options{});
    session.monitor(target);
    EXPECT_EQ(target->state(), ProcState::created); // not yet
    sys.run();
    // Every instruction was captured: nothing ran before START.
    hw::EventVector totals = session.finalTotals();
    EXPECT_EQ(at(totals, hw::HwEvent::instRetired), 5000000u);
}

TEST(Session, ControllerOnSameCoreInterferes)
{
    // Baseline on core 1 (no monitoring).
    System sys(hw::MachineConfig::corei7_920(), 4, quietCosts());
    FixedWorkSource src_base = computeSource(40, 1000000, 2.0);
    Process *base =
        sys.kernel().createWorkload("base", &src_base, 1);
    sys.kernel().startProcess(base);

    FixedWorkSource src_mon = computeSource(40, 1000000, 2.0);
    Process *mon = sys.kernel().createWorkload("mon", &src_mon, 0);
    kleb::Session::Options opts;
    opts.period = 100_us;
    kleb::Session session(sys, opts);
    session.monitor(mon);
    sys.run();

    // Monitoring costs something but not much.
    EXPECT_GT(mon->lifetime(), base->lifetime());
    double overhead =
        (static_cast<double>(mon->lifetime()) -
         static_cast<double>(base->lifetime())) /
        static_cast<double>(base->lifetime());
    EXPECT_LT(overhead, 0.40);
}

TEST(Session, TraceChildrenOff)
{
    System sys(hw::MachineConfig::corei7_920(), 5, quietCosts());
    FixedWorkSource parent_src = computeSource(10, 1000000, 2.0);
    Process *parent =
        sys.kernel().createWorkload("p", &parent_src, 0);
    FixedWorkSource child_src = computeSource(10, 1000000, 2.0);
    Process *child = sys.kernel().createWorkload("c", &child_src,
                                                 0, parent->pid());

    kleb::Session::Options opts;
    opts.traceChildren = false;
    opts.period = 100_us;
    kleb::Session session(sys, opts);
    session.monitor(parent);
    sys.kernel().startProcess(child);
    sys.run();

    hw::EventVector totals = session.finalTotals();
    // Only the parent's instructions: children excluded.
    EXPECT_EQ(at(totals, hw::HwEvent::instRetired), 10000000u);
}

TEST(Session, MultipleSessionsDistinctDevices)
{
    System sys(hw::MachineConfig::corei7_920(), 6, quietCosts());
    kleb::Session a(sys, kleb::Session::Options{});
    kleb::Session b(sys, kleb::Session::Options{});
    EXPECT_NE(a.module(), b.module());
}

TEST(Session, DestructorUnloadsModuleExactlyOnce)
{
    // The controller never rmmods: after a clean run the module is
    // still loaded with the controller dead.  The session
    // destructor must reclaim it — exactly once.
    System sys(hw::MachineConfig::corei7_920(), 8, quietCosts());
    FixedWorkSource src = computeSource(5, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);

    int unloads = 0;
    std::string path;
    int hook = sys.kernel().registerModuleHook(
        [&unloads, &path](KernelModule &, const std::string &p,
                          bool loaded) {
            if (!loaded && p == path)
                ++unloads;
        });
    {
        kleb::Session::Options opts;
        opts.period = 100_us;
        kleb::Session session(sys, opts);
        path = session.devPath();
        session.monitor(target);
        sys.run();
        ASSERT_TRUE(session.finished());
        ASSERT_NE(session.module(), nullptr);
        EXPECT_EQ(unloads, 0);
    }
    EXPECT_EQ(unloads, 1);
    EXPECT_EQ(sys.kernel().moduleAt(path), nullptr);
    sys.kernel().unregisterModuleHook(hook);
}

TEST(Session, NoDoubleRmmodAfterExternalUnload)
{
    // Regression: if something else already rmmod'ed our module
    // (the sequential runner, a test, a whole-machine teardown),
    // the destructor must not unload a second time — the path may
    // by then host a different module, or nothing at all.
    System sys(hw::MachineConfig::corei7_920(), 9, quietCosts());
    FixedWorkSource src = computeSource(5, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);

    int unloads = 0;
    std::string path;
    int hook = sys.kernel().registerModuleHook(
        [&unloads, &path](KernelModule &, const std::string &p,
                          bool loaded) {
            if (!loaded && p == path)
                ++unloads;
        });
    {
        kleb::Session::Options opts;
        opts.period = 100_us;
        kleb::Session session(sys, opts);
        path = session.devPath();
        session.monitor(target);
        sys.run();
        ASSERT_TRUE(session.finished());

        sys.kernel().unloadModule(path);
        EXPECT_EQ(unloads, 1);
        EXPECT_EQ(session.module(), nullptr);
        // Status stays answerable off the unload-time snapshot.
        EXPECT_GT(session.status().samplesRecorded, 0u);
    }
    // The destructor did not rmmod again.
    EXPECT_EQ(unloads, 1);
    sys.kernel().unregisterModuleHook(hook);
}
