#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "kleb/durable_log.hh"
#include "kleb/log_recovery.hh"

using namespace klebsim;
using namespace klebsim::kleb;

namespace
{

Sample
sampleAt(std::uint64_t i)
{
    Sample s;
    s.timestamp = 1000 + i * 250;
    s.cause = SampleCause::timer;
    s.numEvents = 3;
    s.counts = {};
    for (std::size_t c = 0; c < 3; ++c)
        s.counts[c] = i * 100 + c * 7;
    return s;
}

} // namespace

// Regression: scanning a zero-length medium used to fall through to
// the header check and report an *invalid* log; a journal that was
// never created must recover as a clean empty report instead.
TEST(LogRecoveryEdges, ZeroLengthJournalIsValidAndEmpty)
{
    RecoveredLog out = LogRecovery::scan({});

    EXPECT_TRUE(out.report.valid);
    EXPECT_EQ(out.report.framesEmitted, 0u);
    EXPECT_EQ(out.report.framesKept, 0u);
    EXPECT_EQ(out.report.framesDropped, 0u);
    EXPECT_EQ(out.report.framesVanished, 0u);
    EXPECT_FALSE(out.report.tornTail);
    EXPECT_EQ(out.report.epochs, 0u);
    EXPECT_EQ(out.report.samplesRecovered, 0u);
    EXPECT_TRUE(out.report.gaps.empty());
    EXPECT_TRUE(out.samples.empty());
    EXPECT_TRUE(out.rateChanges.empty());

    // The accounting identity holds trivially on the empty log.
    EXPECT_EQ(out.report.framesKept + out.report.framesDropped +
                  out.report.framesVanished,
              out.report.framesEmitted);
}

// A header with no frames behind it (a log that was opened but
// never wrote an epoch) is also a clean empty recovery.
TEST(LogRecoveryEdges, HeaderOnlyJournalIsValidAndEmpty)
{
    DurableLog log;
    ASSERT_EQ(log.bytes().size(), DurableLog::headerSize);

    RecoveredLog out = LogRecovery::scan(log.bytes());
    EXPECT_TRUE(out.report.valid);
    EXPECT_EQ(out.report.framesEmitted, 0u);
    EXPECT_FALSE(out.report.tornTail);
    EXPECT_TRUE(out.samples.empty());
}

// Regression: a journal whose medium ends exactly on an epoch
// boundary — the last intact frame is an epoch-begin with no sample
// after it — must come back complete: no torn tail, no spurious
// drop or gap for the trailing epoch.
TEST(LogRecoveryEdges, JournalEndingOnEpochBoundaryIsComplete)
{
    DurableLog log;
    log.beginEpoch(500);
    for (std::uint64_t i = 0; i < 4; ++i)
        log.append(sampleAt(i));
    // A fresh epoch opened right before the writer stopped: the
    // boundary frame is the very last thing on the medium.
    log.beginEpoch(sampleAt(4).timestamp - 50);

    RecoveredLog out = LogRecovery::scan(log.bytes());

    EXPECT_TRUE(out.report.valid);
    EXPECT_FALSE(out.report.tornTail);
    EXPECT_EQ(out.report.framesEmitted, 6u); // 2 epochs + 4 samples
    EXPECT_EQ(out.report.framesKept, 6u);
    EXPECT_EQ(out.report.framesDropped, 0u);
    EXPECT_EQ(out.report.framesVanished, 0u);
    EXPECT_EQ(out.report.epochs, 2u);
    EXPECT_EQ(out.report.samplesRecovered, 4u);
    // No sample ever landed in the trailing epoch, so no outage
    // gap may be synthesized for it.
    EXPECT_TRUE(out.report.gaps.empty());
    ASSERT_EQ(out.samples.size(), 4u);
    ASSERT_EQ(out.sampleEpochs.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(out.sampleEpochs[i], 0u);
}

// Truncation that removes whole trailing frames (a medium cut on an
// exact slot boundary) loses those frames as *vanished*, without
// inventing a torn tail, and still balances the accounting.
TEST(LogRecoveryEdges, ExactFrameTruncationVanishesCleanly)
{
    DurableLog log;
    log.beginEpoch(500);
    for (std::uint64_t i = 0; i < 5; ++i)
        log.append(sampleAt(i));
    std::vector<std::uint8_t> bytes = log.bytes();

    // Chop the last two sample frames off exactly.
    bytes.resize(bytes.size() - 2 * DurableLog::frameSize);

    RecoveredLog out = LogRecovery::scan(bytes);
    EXPECT_TRUE(out.report.valid);
    EXPECT_FALSE(out.report.tornTail);
    EXPECT_EQ(out.report.framesEmitted, 6u);
    EXPECT_EQ(out.report.framesKept, 4u);
    EXPECT_EQ(out.report.framesDropped, 0u);
    EXPECT_EQ(out.report.framesVanished, 2u);
    EXPECT_EQ(out.report.samplesRecovered, 3u);
    EXPECT_EQ(out.report.framesKept + out.report.framesDropped +
                  out.report.framesVanished,
              out.report.framesEmitted);
}

// The epoch-boundary case composed with a torn tail: an epoch frame
// followed by a half-written sample recovers the boundary intact
// and accounts the partial slot as a dropped torn tail.
TEST(LogRecoveryEdges, TornSampleAfterEpochBoundary)
{
    DurableLog log;
    log.beginEpoch(500);
    for (std::uint64_t i = 0; i < 3; ++i)
        log.append(sampleAt(i));
    log.beginEpoch(sampleAt(3).timestamp - 50);
    log.append(sampleAt(3));
    std::vector<std::uint8_t> bytes = log.bytes();

    // Tear the final sample in half.
    bytes.resize(bytes.size() - DurableLog::frameSize / 2);

    RecoveredLog out = LogRecovery::scan(bytes);
    EXPECT_TRUE(out.report.valid);
    EXPECT_TRUE(out.report.tornTail);
    EXPECT_EQ(out.report.epochs, 2u);
    EXPECT_EQ(out.report.samplesRecovered, 3u);
    EXPECT_EQ(out.report.framesDropped, 1u);
    EXPECT_EQ(out.report.framesKept + out.report.framesDropped +
                  out.report.framesVanished,
              out.report.framesEmitted);
}
