#include <gtest/gtest.h>

#include "kernel/system.hh"
#include "kleb/session.hh"
#include "workload/microbench.hh"

using namespace klebsim;
using namespace klebsim::kernel;
using namespace klebsim::ticks_literals;
using klebsim::workload::FixedWorkSource;
using klebsim::workload::computeSource;

namespace
{

CostModel
quietCosts()
{
    CostModel c;
    c.costSigma = 0.0;
    c.runSigma = 0.0;
    return c;
}

/**
 * Invariants of a whole monitoring session, swept across sampling
 * periods (50 us ... 10 ms).
 */
class SessionProperty : public ::testing::TestWithParam<Tick>
{
};

} // namespace

TEST_P(SessionProperty, CountConservationAndMonotonicity)
{
    Tick period = GetParam();
    System sys(hw::MachineConfig::corei7_920(), 17, quietCosts());
    FixedWorkSource src = computeSource(60, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);

    kleb::Session::Options opts;
    opts.events = {hw::HwEvent::instRetired,
                   hw::HwEvent::branchRetired,
                   hw::HwEvent::coreCycles};
    opts.period = period;
    kleb::Session session(sys, opts);
    session.monitor(target);
    sys.run();

    ASSERT_TRUE(session.finished());
    const auto &samples = session.samples();
    ASSERT_FALSE(samples.empty());

    // 1. Timestamps strictly increase; counts never decrease.
    for (std::size_t i = 1; i < samples.size(); ++i) {
        ASSERT_GT(samples[i].timestamp, samples[i - 1].timestamp);
        for (int e = 0; e < samples[i].numEvents; ++e)
            ASSERT_GE(samples[i].counts[e],
                      samples[i - 1].counts[e]);
    }

    // 2. The final snapshot is the exact user-mode total: count
    //    conservation regardless of sampling rate.
    EXPECT_EQ(samples.back().counts[0], 60000000u);
    EXPECT_EQ(samples.back().counts[1], 60u * 125000u);
    EXPECT_EQ(samples.back().cause, kleb::SampleCause::final);

    // 3. Nothing dropped, everything drained.
    kleb::KLebStatus st = session.status();
    EXPECT_EQ(st.samplesDropped, 0u);
    EXPECT_EQ(st.pendingSamples, 0u);
    EXPECT_EQ(samples.size(), st.samplesRecorded);

    // 4. Sample count is consistent with period and CPU time used
    //    by the target (within 3x slack for drains/preemptions).
    Tick cpu = target->execContext()->cpuTime();
    auto expected =
        static_cast<double>(cpu) / static_cast<double>(period);
    EXPECT_GT(static_cast<double>(samples.size()),
              expected * 0.4);
    EXPECT_LT(static_cast<double>(samples.size()),
              expected * 3.0 + 4.0);
}

TEST_P(SessionProperty, IsolationHoldsUnderCoRunners)
{
    Tick period = GetParam();
    System sys(hw::MachineConfig::corei7_920(), 18, quietCosts());
    FixedWorkSource src_t = computeSource(25, 1000000, 2.0);
    FixedWorkSource src_a = computeSource(25, 1000000, 2.0);
    FixedWorkSource src_b = computeSource(25, 1000000, 1.0);
    Process *target = sys.kernel().createWorkload("t", &src_t, 0);
    Process *noise_a =
        sys.kernel().createWorkload("a", &src_a, 0);
    Process *noise_b =
        sys.kernel().createWorkload("b", &src_b, 0);
    sys.kernel().startProcess(noise_a);
    sys.kernel().startProcess(noise_b);

    kleb::Session::Options opts;
    opts.events = {hw::HwEvent::instRetired};
    opts.period = period;
    opts.controllerCore = 1;
    kleb::Session session(sys, opts);
    session.monitor(target);
    sys.run();

    // Exactly the target's instructions, no matter how the three
    // processes interleaved.
    EXPECT_EQ(at(session.finalTotals(), hw::HwEvent::instRetired),
              25000000u);
}

INSTANTIATE_TEST_SUITE_P(
    Periods, SessionProperty,
    ::testing::Values(usToTicks(50), usToTicks(100),
                      usToTicks(500), msToTicks(1), msToTicks(10)),
    [](const ::testing::TestParamInfo<Tick> &info) {
        return "period_" +
               std::to_string(info.param / tickPerUs) + "us";
    });
